// Ablation — the NULL-local-size policy (DESIGN.md decision: 64-item target
// for 1D ranges). Sweeps alternative policy targets and explicit local
// sizes for Square and VectorAdd, showing where the shipped default lands
// relative to the best explicit size (the paper's point: NULL is below
// peak, so programmers should set local size explicitly).
#include "apps_setup.hpp"

namespace {

using namespace mcl;

/// Largest divisor of n that is <= target (the policy's clamping rule).
std::size_t divisor_below(std::size_t n, std::size_t target) {
  for (std::size_t d = std::min(n, target); d >= 1; --d) {
    if (n % d == 0) return d;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Env env;
  if (!env.init(argc, argv, "Ablation: NULL-local-size policy targets"))
    return 0;

  ocl::Context ctx(env.platform().cpu());
  ocl::CommandQueue q(ctx);

  const std::size_t sq_n = env.size<std::size_t>(100'000, 1'000'000, 10'000'000);
  const std::size_t va_n = env.size<std::size_t>(110'000, 1'100'000, 11'445'000);

  core::Table t("Ablation - NULL local-size policy",
                {"benchmark", "policy", "resolved local", "ms/iter",
                 "vs best explicit"});

  for (int app_idx = 0; app_idx < 2; ++app_idx) {
    std::unique_ptr<bench::AppDriver> app;
    if (app_idx == 0) {
      app = std::make_unique<bench::SquareDriver>(sq_n, env.seed());
    } else {
      app = std::make_unique<bench::VectorAddDriver>(va_n, env.seed());
    }
    const std::size_t n = app->global()[0];

    // Best explicit local size over a coarse sweep.
    double best = 1e30;
    std::size_t best_local = 1;
    for (std::size_t target : {16u, 64u, 256u, 1024u, 4096u}) {
      const std::size_t local = divisor_below(n, target);
      const double time = app->time(q, ocl::NDRange{local}, env.opts());
      if (time < best) {
        best = time;
        best_local = local;
      }
    }
    t.add_row({std::string(app->name()),
               std::string("best explicit"),
               static_cast<double>(best_local), best * 1e3, 1.0});

    // Policy candidates (what pick_default_local would do with different
    // targets), plus the shipped NULL behavior.
    for (std::size_t target : {16u, 64u, 256u}) {
      const std::size_t local = divisor_below(n, target);
      const double time = app->time(q, ocl::NDRange{local}, env.opts());
      t.add_row({std::string(app->name()),
                 "policy target " + std::to_string(target),
                 static_cast<double>(local), time * 1e3, best / time});
    }
    const double null_time = app->time(q, ocl::NDRange{}, env.opts());
    t.add_row({std::string(app->name()), std::string("NULL (shipped policy)"),
               static_cast<double>(divisor_below(n, 64)), null_time * 1e3,
               best / null_time});
  }
  t.emit(env.csv(), env.json(), env.md());
  return 0;
}
