// Ablation — workitem executor strategy (DESIGN.md decision #2): the same
// kernels run under the Loop (plain per-item dispatch), Simd (implicit
// vectorization) and Fiber (one ucontext per workitem) executors.
// Quantifies (a) what the implicit vectorizer buys and (b) what true
// barrier support costs when it is not needed.
#include "apps_setup.hpp"

int main(int argc, char** argv) {
  using namespace mcl;
  bench::Env env;
  if (!env.init(argc, argv, "Ablation: CPU workitem executor strategies"))
    return 0;

  const std::size_t sq_n = env.size<std::size_t>(100'000, 1'000'000, 10'000'000);
  const std::size_t bs = env.size<std::size_t>(256, 512, 1280);

  core::Table t("Ablation - workitem executors",
                {"benchmark", "executor", "ms/iter", "speedup vs loop"});

  const std::pair<const char*, ocl::ExecutorKind> executors[] = {
      {"loop", ocl::ExecutorKind::Loop},
      {"simd", ocl::ExecutorKind::Simd},
      {"fiber", ocl::ExecutorKind::Fiber},
  };

  for (int app_idx = 0; app_idx < 2; ++app_idx) {
    double loop_time = 0.0;
    for (const auto& [label, kind] : executors) {
      ocl::CpuDeviceConfig cfg;
      cfg.executor = kind;
      ocl::CpuDevice device(cfg);
      ocl::Context ctx(device);
      ocl::CommandQueue q(ctx);

      std::unique_ptr<bench::AppDriver> app;
      if (app_idx == 0) {
        app = std::make_unique<bench::SquareDriver>(sq_n, env.seed());
      } else {
        app = std::make_unique<bench::BlackScholesDriver>(bs, bs, env.seed());
      }
      const double time = app->time(q, ocl::NDRange{}, env.opts());
      if (kind == ocl::ExecutorKind::Loop) loop_time = time;
      t.add_row({std::string(app->name()), std::string(label), time * 1e3,
                 loop_time / time});
    }
  }
  t.emit(env.csv(), env.json(), env.md());
  return 0;
}
