// Ablation — GPU timing-model parameter sensitivity (DESIGN.md decision #4:
// the GPU series come from an analytical model, so how robust are the
// paper-level conclusions to its parameters?). Re-derives two headline GPU
// results (ILP flatness, small-workgroup penalty) under perturbed memory
// latency, FP latency and warp-slot counts.
#include <cmath>

#include "common.hpp"
#include "gpusim/detailed.hpp"

namespace {

using namespace mcl;

/// Headline metric 1: GPU ILP-4/ILP-1 throughput ratio (paper: ~1, flat).
double ilp_flatness(const gpusim::GpuSpec& spec) {
  gpusim::KernelCost k1{.fp_insts = 64, .mem_insts = 2, .other_insts = 8,
                        .flops_per_fp = 2.0, .ilp = 1.0};
  gpusim::KernelCost k4 = k1;
  k4.ilp = 4.0;
  const gpusim::LaunchGeometry geom{.global_items = 1 << 20,
                                    .local_items = 256};
  return gpusim::simulate(spec, k1, geom).seconds /
         gpusim::simulate(spec, k4, geom).seconds;
}

/// Headline metric 2: slowdown of 1-item workgroups vs 256 (paper: large).
double small_group_penalty(const gpusim::GpuSpec& spec) {
  gpusim::KernelCost k{.fp_insts = 4, .mem_insts = 8, .other_insts = 2};
  const double t1 =
      gpusim::simulate(spec, k, {.global_items = 1 << 18, .local_items = 1})
          .seconds;
  const double t256 =
      gpusim::simulate(spec, k, {.global_items = 1 << 18, .local_items = 256})
          .seconds;
  return t1 / t256;
}

}  // namespace

/// Same headline metrics from the discrete-event simulator.
double ilp_flatness_detailed(const gpusim::GpuSpec& spec) {
  gpusim::KernelCost k1{.fp_insts = 64, .mem_insts = 2, .other_insts = 8,
                        .flops_per_fp = 2.0, .ilp = 1.0};
  gpusim::KernelCost k4 = k1;
  k4.ilp = 4.0;
  const gpusim::LaunchGeometry geom{.global_items = 1 << 17,
                                    .local_items = 256};
  return gpusim::simulate_detailed(spec, k1, geom).seconds /
         gpusim::simulate_detailed(spec, k4, geom).seconds;
}

double small_group_penalty_detailed(const gpusim::GpuSpec& spec) {
  gpusim::KernelCost k{.fp_insts = 4, .mem_insts = 8, .other_insts = 2};
  const double t1 = gpusim::simulate_detailed(
                        spec, k, {.global_items = 1 << 14, .local_items = 1})
                        .seconds;
  const double t256 = gpusim::simulate_detailed(
                          spec, k, {.global_items = 1 << 14, .local_items = 256})
                          .seconds;
  return t1 / t256;
}

int main(int argc, char** argv) {
  bench::Env env;
  if (!env.init(argc, argv,
                "Ablation: GPU analytical-model parameter sensitivity"))
    return 0;

  core::Table t("Ablation - GPU model sensitivity",
                {"configuration", "ILP1/ILP4 ratio (analytical)",
                 "ILP1/ILP4 (discrete-event)",
                 "1-item-group slowdown (analytical)",
                 "slowdown (discrete-event)"});

  auto add = [&](const std::string& label, const gpusim::GpuSpec& spec) {
    t.add_row({label, ilp_flatness(spec), ilp_flatness_detailed(spec),
               small_group_penalty(spec), small_group_penalty_detailed(spec)});
  };

  const gpusim::GpuSpec base = gpusim::GpuSpec::gtx580();
  add("GTX 580 baseline", base);

  for (double scale : {0.5, 2.0}) {
    gpusim::GpuSpec s = base;
    s.mem_latency *= scale;
    add("mem latency x" + core::Table::format_cell(core::Cell{scale}, 2), s);
  }
  for (double scale : {0.5, 2.0}) {
    gpusim::GpuSpec s = base;
    s.fp_latency *= scale;
    add("fp latency x" + core::Table::format_cell(core::Cell{scale}, 2), s);
  }
  for (int warps : {24, 96}) {
    gpusim::GpuSpec s = base;
    s.max_warps_per_sm = warps;
    add("max warps/SM = " + std::to_string(warps), s);
  }
  for (double bw : {96.2, 384.8}) {
    gpusim::GpuSpec s = base;
    s.mem_bandwidth_gbs = bw;
    add("mem bandwidth " + std::to_string(static_cast<int>(bw)) + " GB/s", s);
  }
  t.emit(env.csv(), env.json(), env.md());

  std::printf(
      "\nreading: the paper-level conclusions hold as long as column 2 stays\n"
      "near 1 and column 3 stays far above 1 across the parameter range —\n"
      "i.e. they follow from latency-hiding structure, not tuned constants.\n");
  return 0;
}
