// Ablation — workgroup distribution policy: the central shared counter
// (default; what several CPU OpenCL runtimes shipped) vs TBB-style range
// splitting with work stealing. Stealing trades one contended cache line
// for per-worker ranges — the difference grows with workgroup count, i.e.
// exactly in the many-small-workgroups regime the paper's Fig 1/3 study.
#include <cstdio>

#include "apps_setup.hpp"

int main(int argc, char** argv) {
  using namespace mcl;
  bench::Env env;
  if (!env.init(argc, argv,
                "Ablation: central-counter vs work-stealing workgroup "
                "scheduling"))
    return 0;

  const std::size_t sq_n = env.size<std::size_t>(100'000, 1'000'000, 10'000'000);
  const std::size_t bs = env.size<std::size_t>(256, 512, 1280);

  core::Table t("Ablation - workgroup scheduler",
                {"benchmark", "local", "workgroups", "central ms",
                 "stealing ms", "stealing speedup", "imbalance c/s"});

  struct Config {
    int app;  // 0 = Square, 1 = Blackscholes
    ocl::NDRange local;
  };
  const Config configs[] = {
      {0, ocl::NDRange{10}},    // many tiny groups: scheduling-bound
      {0, ocl::NDRange{1000}},  // few large groups
      {1, ocl::NDRange(4, 4)},  // many medium 2D groups
      {1, ocl::NDRange(16, 16)},
  };

  for (const Config& cfg : configs) {
    double central = 0, stealing = 0;
    double imb_central = 1.0, imb_stealing = 1.0;
    std::size_t groups = 0;
    std::string name, local_str;
    for (threading::ScheduleStrategy strategy :
         {threading::ScheduleStrategy::CentralCounter,
          threading::ScheduleStrategy::WorkStealing}) {
      ocl::CpuDeviceConfig dev_cfg;
      dev_cfg.scheduler = strategy;
      ocl::CpuDevice device(dev_cfg);
      ocl::Context ctx(device);
      ocl::CommandQueue q(ctx);

      std::unique_ptr<bench::AppDriver> app;
      if (cfg.app == 0) {
        app = std::make_unique<bench::SquareDriver>(sq_n, env.seed());
      } else {
        app = std::make_unique<bench::BlackScholesDriver>(bs, bs, env.seed());
      }
      name = app->name();
      local_str = bench::range_str(cfg.local);
      groups = app->global().total() / cfg.local.total();

      const double time = app->time(q, cfg.local, env.opts());
      // One extra launch to sample the balance telemetry.
      app->kernel();  // keep args bound
      const ocl::Event ev = q.enqueue_ndrange(app->kernel(), app->global(),
                                              cfg.local);
      if (strategy == threading::ScheduleStrategy::CentralCounter) {
        central = time * 1e3;
        imb_central = ev.launch.schedule.imbalance;
      } else {
        stealing = time * 1e3;
        imb_stealing = ev.launch.schedule.imbalance;
      }
    }
    char imb[48];
    std::snprintf(imb, sizeof(imb), "%.2f / %.2f", imb_central, imb_stealing);
    t.add_row({name, local_str, static_cast<double>(groups), central, stealing,
               central / stealing, std::string(imb)});
  }
  t.emit(env.csv(), env.json(), env.md());
  return 0;
}
