// mcltune ablation — does the closed measurement->policy loop actually pay?
//
// For every fig workload + Table 2/3 app, four arms on the CPU device:
//
//   paper-default : MCL_TUNE=off, Auto executor, NULL local — exactly what
//                   every figure bench launches today;
//   best-manual   : exhaustive sweep over the explicit executor x workgroup
//                   configurations a careful human would try (the paper's
//                   hand-tuning methodology), keep the fastest;
//   tuned-seed    : MCL_TUNE=seed — the cost model's top-ranked config,
//                   zero measurements taken;
//   tuned-online  : MCL_TUNE=online — repeated single launches until the
//                   tuner converges (bounded explore/exploit), then the
//                   steady-state time under the incumbent. `converged_at`
//                   records how many launches convergence took.
//
// Writes BENCH_tune.json: one JSON object with an "mcltune" version marker
// (validated by tools/plot_results.py --check, smoke-run by tools/tier1.sh).
// The check asserts tuned arms are no worse than paper-default within noise
// and that online converges within the launch budget on >= 3 workloads.
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "apps_setup.hpp"
#include "core/sysinfo.hpp"
#include "tune/tune.hpp"

namespace {

using namespace mcl;

struct Options {
  bool quick = false;
  bool full = false;
  std::uint64_t seed = 42;
  std::size_t threads = 0;      // 0 = one worker per logical CPU
  int repeats = 50;             // online-arm launch budget
  std::string json = "BENCH_tune.json";
};

struct ArmResult {
  double ms = 0.0;
  std::string config;
};

struct WorkloadResult {
  std::string name;
  std::string global;
  ArmResult paper_default;
  ArmResult best_manual;
  ArmResult tuned_seed;
  ArmResult tuned_online;
  int converged_at = 0;       // launches until the tuner converged (0 = never)
  std::uint64_t explore = 0;  // exploration launches the online arm spent
};

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// One timed arm on a fresh device/context/queue (mirrors
/// ablation_executors: per-config device so executor/scheduler state never
/// leaks between arms).
double time_arm(const std::function<std::unique_ptr<bench::AppDriver>()>& make,
                const ocl::CpuDeviceConfig& cfg, const ocl::NDRange& local,
                const core::MeasureOptions& opts) {
  ocl::CpuDevice device(cfg);
  ocl::Context ctx(device);
  ocl::CommandQueue q(ctx);
  std::unique_ptr<bench::AppDriver> app = make();
  return app->time(q, local, opts) * 1e3;
}

/// Candidate explicit workgroup sizes for the manual sweep (NULL first: the
/// runtime default is itself a manual choice). Filtered to legal divisors.
std::vector<ocl::NDRange> manual_locals(const ocl::NDRange& global) {
  std::vector<ocl::NDRange> out;
  out.push_back(ocl::NDRange{});
  auto divides = [&](const ocl::NDRange& l) {
    for (std::size_t d = 0; d < global.dims; ++d) {
      if (l[d] == 0 || global[d] % l[d] != 0) return false;
    }
    return true;
  };
  if (global.dims == 1) {
    for (std::size_t w : {64, 128, 256, 512}) {
      ocl::NDRange l{w};
      if (divides(l)) out.push_back(l);
    }
  } else if (global.dims == 2) {
    for (std::size_t w : {8, 16, 32}) {
      ocl::NDRange l(w, w);
      if (divides(l)) out.push_back(l);
    }
  }
  return out;
}

WorkloadResult run_workload(
    const std::function<std::unique_ptr<bench::AppDriver>()>& make,
    const Options& opt, const core::MeasureOptions& opts) {
  tune::Tuner& tuner = tune::Tuner::instance();
  WorkloadResult r;
  {
    std::unique_ptr<bench::AppDriver> probe = make();
    r.name = probe->name();
    r.global = bench::range_str(probe->global());
  }

  ocl::CpuDeviceConfig base;
  base.threads = opt.threads;

  // Arm 1: paper default (tuning off, Auto executor, NULL local).
  tuner.set_mode(tune::Mode::Off);
  r.paper_default.ms = time_arm(make, base, ocl::NDRange{}, opts);
  r.paper_default.config = "auto/NULL";

  // Arm 2: best manual — sweep explicit executors x workgroup sizes, keep
  // the fastest. Barrier kernels only run under Auto(->Fiber); Simd needs a
  // registered simd form.
  {
    std::unique_ptr<bench::AppDriver> probe = make();
    const ocl::KernelDef& def = probe->kernel().def();
    std::vector<std::pair<const char*, ocl::ExecutorKind>> execs;
    if (def.needs_barrier) {
      execs.emplace_back("auto", ocl::ExecutorKind::Auto);
    } else {
      execs.emplace_back("loop", ocl::ExecutorKind::Loop);
      if (def.simd != nullptr) execs.emplace_back("simd", ocl::ExecutorKind::Simd);
    }
    const std::vector<ocl::NDRange> locals = manual_locals(probe->global());
    r.best_manual.ms = 0.0;
    for (const auto& [elabel, ekind] : execs) {
      for (const ocl::NDRange& local : locals) {
        ocl::CpuDeviceConfig cfg = base;
        cfg.executor = ekind;
        const double ms = time_arm(make, cfg, local, opts);
        if (r.best_manual.ms == 0.0 || ms < r.best_manual.ms) {
          r.best_manual.ms = ms;
          r.best_manual.config =
              std::string(elabel) + "/" + bench::range_str(local);
        }
      }
    }
  }

  // Arm 3: tuned, seed mode — cost-model ranking only, no measurements.
  tuner.reset();
  tuner.set_mode(tune::Mode::Seed);
  r.tuned_seed.ms = time_arm(make, base, ocl::NDRange{}, opts);

  // Arm 4: tuned, online mode — single launches until the entry converges,
  // then the steady-state time under the incumbent config.
  tuner.reset();
  tuner.reset_stats();
  tuner.set_mode(tune::Mode::Online);
  {
    ocl::CpuDevice device(base);
    ocl::Context ctx(device);
    ocl::CommandQueue q(ctx);
    std::unique_ptr<bench::AppDriver> app = make();
    const std::size_t threads = static_cast<std::size_t>(device.compute_units());
    core::MeasureOptions one_shot;
    one_shot.min_time = 0.0;
    one_shot.warmup_iters = 0;
    one_shot.min_iters = 1;
    one_shot.max_iters = 1;
    for (int i = 1; i <= opt.repeats; ++i) {
      (void)app->time(q, ocl::NDRange{}, one_shot);
      if (tuner.converged(app->kernel().def().name, app->global(),
                          ocl::NDRange{}, threads)) {
        r.converged_at = i;
        break;
      }
    }
    r.explore = tuner.stats().explore;
    r.tuned_online.ms = app->time(q, ocl::NDRange{}, opts) * 1e3;
    // Report the configs the tuner settled on (online: the measured
    // incumbent; seed: what the pure ranking would pick).
    if (auto cfg = tuner.tuned_config(app->kernel().def(), app->global(),
                                      ocl::NDRange{}, false, threads)) {
      r.tuned_online.config = cfg->to_string();
    }
  }
  tuner.set_mode(tune::Mode::Seed);
  {
    // Seed-mode config string from a fresh ranking (entry state cleared so
    // online measurements don't leak into the seed arm's label).
    tune::Tuner& t = tuner;
    std::unique_ptr<bench::AppDriver> probe = make();
    ocl::CpuDevice device(base);
    const std::size_t threads = static_cast<std::size_t>(device.compute_units());
    t.reset();
    if (auto cfg = t.tuned_config(probe->kernel().def(), probe->global(),
                                  ocl::NDRange{}, false, threads)) {
      r.tuned_seed.config = cfg->to_string();
    }
  }
  tuner.set_mode(tune::Mode::Off);
  return r;
}

void write_json(const Options& opt, const core::MeasureOptions& opts,
                const std::vector<WorkloadResult>& results) {
  const core::HostInfo host = core::probe_host();
  std::ostringstream out;
  out << "{\n  \"mcltune\": 1,\n";
  out << "  \"bench\": \"ablation_tuning\",\n";
  out << "  \"meta\": {\"host\": \"" << json_escape(host.cpu_model)
      << "\", \"logical_cpus\": " << host.logical_cpus << ", \"simd\": \""
      << json_escape(host.simd_isa) << "\", \"threads\": "
      << (opt.threads == 0 ? static_cast<std::size_t>(host.logical_cpus)
                           : opt.threads)
      << ", \"seed\": " << opt.seed << ", \"repeats\": " << opt.repeats
      << ", \"min_time\": " << opts.min_time
      << ", \"quick\": " << (opt.quick ? "true" : "false")
      << ", \"full\": " << (opt.full ? "true" : "false") << "},\n";
  out << "  \"workloads\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const WorkloadResult& r = results[i];
    out << "    {\"name\": \"" << json_escape(r.name) << "\", \"global\": \""
        << r.global << "\",\n"
        << "     \"paper_default_ms\": " << r.paper_default.ms
        << ", \"best_manual_ms\": " << r.best_manual.ms
        << ", \"tuned_seed_ms\": " << r.tuned_seed.ms
        << ", \"tuned_online_ms\": " << r.tuned_online.ms << ",\n"
        << "     \"converged_at\": " << r.converged_at
        << ", \"explore_launches\": " << r.explore << ",\n"
        << "     \"best_manual_config\": \"" << json_escape(r.best_manual.config)
        << "\", \"tuned_seed_config\": \"" << json_escape(r.tuned_seed.config)
        << "\", \"tuned_online_config\": \""
        << json_escape(r.tuned_online.config) << "\"}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::ofstream f(opt.json);
  f << out.str();
  if (f) {
    std::cout << "wrote " << opt.json
              << " (validate with tools/plot_results.py --check)\n";
  } else {
    std::cerr << "failed to write " << opt.json << "\n";
  }
}

int run(const Options& opt) {
  core::MeasureOptions opts =
      opt.quick ? core::MeasureOptions::quick() : core::MeasureOptions{};

  const std::size_t vec_n =
      opt.quick ? (1u << 17) : (opt.full ? (1u << 23) : (1u << 20));
  const std::size_t mm = opt.quick ? 128 : (opt.full ? 512 : 256);
  const std::size_t bs = opt.quick ? 128 : (opt.full ? 1024 : 512);
  const std::uint64_t seed = opt.seed;

  using Make = std::function<std::unique_ptr<bench::AppDriver>()>;
  const std::vector<Make> workloads = {
      [=] { return std::make_unique<bench::SquareDriver>(vec_n, seed); },
      [=] { return std::make_unique<bench::VectorAddDriver>(vec_n, seed); },
      [=] {
        return std::make_unique<bench::MatMulDriver>(false, mm, mm, mm, seed);
      },
      [=] {
        return std::make_unique<bench::MatMulDriver>(true, mm, mm, mm, seed);
      },
      [=] { return std::make_unique<bench::BlackScholesDriver>(bs, bs, seed); },
  };

  std::vector<WorkloadResult> results;
  core::Table t("Ablation - self-tuning (mcltune)",
                {"workload", "global", "paper default ms", "best manual ms",
                 "tuned seed ms", "tuned online ms", "converged at",
                 "online config"});
  for (const Make& make : workloads) {
    WorkloadResult r = run_workload(make, opt, opts);
    t.add_row({r.name, r.global, r.paper_default.ms, r.best_manual.ms,
               r.tuned_seed.ms, r.tuned_online.ms,
               static_cast<double>(r.converged_at), r.tuned_online.config});
    results.push_back(std::move(r));
  }
  t.emit("", "", "");
  write_json(opt, opts, results);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--quick") {
      opt.quick = true;
    } else if (a == "--full") {
      opt.full = true;
    } else if (a == "--seed") {
      opt.seed = std::stoull(next("--seed"));
    } else if (a == "--threads") {
      opt.threads = std::stoul(next("--threads"));
    } else if (a == "--repeats") {
      opt.repeats = std::stoi(next("--repeats"));
    } else if (a == "--json") {
      opt.json = next("--json");
    } else if (a == "--help" || a == "-h") {
      std::cout
          << "ablation_tuning: mcltune tuned vs paper-default vs best-manual\n"
             "  --quick          small sizes, short measurements\n"
             "  --full           paper-scale sizes\n"
             "  --seed N         input data seed (default 42)\n"
             "  --threads N      CPU-device workers (0 = all logical CPUs)\n"
             "  --repeats N      online-arm launch budget (default 50)\n"
             "  --json PATH      output document (default BENCH_tune.json)\n";
      return 0;
    } else {
      std::cerr << "unknown flag: " << a << " (see --help)\n";
      return 2;
    }
  }
  std::cout << "Ablation: self-tuning runtime (mcltune) vs manual configs\n";
  return run(opt);
}
