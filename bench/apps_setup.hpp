// Shared simple-application setup for fig03 / fig04 / fig07 and the
// ablation benches: builds Table II workloads (scaled by Env unless --full)
// and times launches under a chosen local size.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "apps/blackscholes.hpp"
#include "apps/hostdata.hpp"
#include "apps/matrixmul.hpp"
#include "apps/simple.hpp"
#include "common.hpp"

namespace mcl::bench {

/// Buffer-flag policy for the Fig 7 combination sweep: access flags
/// (read-only/write-only vs read-write) x allocation location (device vs
/// CL_MEM_ALLOC_HOST_PTR).
struct BufferPolicy {
  bool read_write = false;  ///< use ReadWrite instead of ReadOnly/WriteOnly
  bool host_alloc = false;  ///< add AllocHostPtr

  [[nodiscard]] const char* access_str() const {
    return read_write ? "ReadWrite" : "ReadOnly|WriteOnly";
  }
  [[nodiscard]] const char* alloc_str() const {
    return host_alloc ? "host" : "device";
  }
};

/// Base: owns buffers, tracks host<->device traffic for Eq. 1 benches.
class AppDriver {
 public:
  virtual ~AppDriver() = default;

  [[nodiscard]] virtual const char* name() const = 0;
  [[nodiscard]] virtual ocl::NDRange global() const = 0;

  /// Times one launch with the given local size (adjusts local-mem args for
  /// tile-dependent kernels first).
  [[nodiscard]] double time(ocl::CommandQueue& queue, const ocl::NDRange& local,
                            const core::MeasureOptions& opts) {
    prepare_local(local);
    return time_launch(queue, *kernel_, global(), local, opts);
  }

  [[nodiscard]] const std::vector<std::pair<ocl::Buffer*, bool>>& traffic()
      const {
    return traffic_;
  }
  [[nodiscard]] ocl::Kernel& kernel() { return *kernel_; }

 protected:
  virtual void prepare_local(const ocl::NDRange& local) { (void)local; }

  ocl::Buffer& add_input(std::size_t floats, std::uint64_t seed, float lo,
                         float hi) {
    apps::FloatVec data = apps::random_floats(floats, seed, lo, hi);
    ocl::MemFlags flags = policy_.read_write ? ocl::MemFlags::ReadWrite
                                             : ocl::MemFlags::ReadOnly;
    flags = flags | ocl::MemFlags::CopyHostPtr;
    if (policy_.host_alloc) flags = flags | ocl::MemFlags::AllocHostPtr;
    return add_buffer(flags, floats * 4, data.data(), true);
  }
  ocl::Buffer& add_output(std::size_t floats) {
    ocl::MemFlags flags = policy_.read_write ? ocl::MemFlags::ReadWrite
                                             : ocl::MemFlags::WriteOnly;
    if (policy_.host_alloc) flags = flags | ocl::MemFlags::AllocHostPtr;
    return add_buffer(flags, floats * 4, nullptr, false);
  }
  ocl::Buffer& add_buffer(ocl::MemFlags flags, std::size_t bytes, void* host,
                          bool is_input) {
    buffers_.push_back(std::make_unique<ocl::Buffer>(flags, bytes, host));
    traffic_.emplace_back(buffers_.back().get(), is_input);
    return *buffers_.back();
  }
  void make_kernel(const char* kernel_name) {
    kernel_ = std::make_unique<ocl::Kernel>(
        ocl::Program::builtin().lookup(kernel_name));
  }

  std::vector<std::unique_ptr<ocl::Buffer>> buffers_;
  std::vector<std::pair<ocl::Buffer*, bool>> traffic_;
  std::unique_ptr<ocl::Kernel> kernel_;
  BufferPolicy policy_;
};

class SquareDriver final : public AppDriver {
 public:
  SquareDriver(std::size_t n, std::uint64_t seed, BufferPolicy policy = {})
      : n_(n) {
    policy_ = policy;
    make_kernel(apps::kSquareKernel);
    kernel_->set_arg(0, add_input(n, seed, -2.0f, 2.0f));
    kernel_->set_arg(1, add_output(n));
  }
  [[nodiscard]] const char* name() const override { return "Square"; }
  [[nodiscard]] ocl::NDRange global() const override {
    return ocl::NDRange{n_};
  }

 private:
  std::size_t n_;
};

class VectorAddDriver final : public AppDriver {
 public:
  VectorAddDriver(std::size_t n, std::uint64_t seed, BufferPolicy policy = {})
      : n_(n) {
    policy_ = policy;
    make_kernel(apps::kVectorAddKernel);
    kernel_->set_arg(0, add_input(n, seed, -2.0f, 2.0f));
    kernel_->set_arg(1, add_input(n, seed + 1, -2.0f, 2.0f));
    kernel_->set_arg(2, add_output(n));
  }
  [[nodiscard]] const char* name() const override { return "VectorAdd"; }
  [[nodiscard]] ocl::NDRange global() const override {
    return ocl::NDRange{n_};
  }

 private:
  std::size_t n_;
};

/// Naive or tiled matrix multiply; tiled variants re-size local memory when
/// the tile (= local size) changes.
class MatMulDriver final : public AppDriver {
 public:
  MatMulDriver(bool tiled, std::size_t m, std::size_t n, std::size_t k,
               std::uint64_t seed, BufferPolicy policy = {})
      : tiled_(tiled), m_(m), n_(n), k_(k) {
    policy_ = policy;
    make_kernel(tiled ? apps::kMatrixMulKernel : apps::kMatrixMulNaiveKernel);
    kernel_->set_arg(0, add_input(m * k, seed, -1.0f, 1.0f));
    kernel_->set_arg(1, add_input(k * n, seed + 1, -1.0f, 1.0f));
    kernel_->set_arg(2, add_output(m * n));
    kernel_->set_arg(3, static_cast<unsigned>(m));
    kernel_->set_arg(4, static_cast<unsigned>(n));
    kernel_->set_arg(5, static_cast<unsigned>(k));
  }
  [[nodiscard]] const char* name() const override {
    return tiled_ ? "Matrixmul" : "MatrixmulNaive";
  }
  [[nodiscard]] ocl::NDRange global() const override {
    return ocl::NDRange(n_, m_);
  }

 protected:
  void prepare_local(const ocl::NDRange& local) override {
    if (!tiled_) return;
    const std::size_t t = local.is_null() ? 16 : local[0];
    kernel_->set_arg_local(6, t * t * 4);
    kernel_->set_arg_local(7, t * t * 4);
    kernel_->set_arg_local(8, t * t * 4);
  }

 private:
  bool tiled_;
  std::size_t m_, n_, k_;
};

class BlackScholesDriver final : public AppDriver {
 public:
  BlackScholesDriver(std::size_t w, std::size_t h, std::uint64_t seed,
                     BufferPolicy policy = {})
      : w_(w), h_(h) {
    policy_ = policy;
    const std::size_t n = w * h;
    make_kernel(apps::kBlackScholesKernel);
    kernel_->set_arg(0, add_input(n, seed, 5.0f, 30.0f));
    kernel_->set_arg(1, add_input(n, seed + 1, 1.0f, 100.0f));
    kernel_->set_arg(2, add_input(n, seed + 2, 0.25f, 10.0f));
    kernel_->set_arg(3, add_output(n));
    kernel_->set_arg(4, add_output(n));
    kernel_->set_arg(5, 0.02f);
    kernel_->set_arg(6, 0.30f);
  }
  [[nodiscard]] const char* name() const override { return "Blackscholes"; }
  [[nodiscard]] ocl::NDRange global() const override {
    return ocl::NDRange(w_, h_);
  }

 private:
  std::size_t w_, h_;
};

}  // namespace mcl::bench
