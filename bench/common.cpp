#include "common.hpp"

#include <fstream>
#include <iostream>

#include "san/lint.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"

namespace mcl::bench {

Env::~Env() {
  if (trace_path_.empty()) return;
  trace::stop();
  const std::uint64_t dropped = trace::dropped_events();
  const std::vector<trace::TaggedEvent> events = trace::collect();
  if (!trace::write_chrome_trace(trace_path_, events, dropped)) {
    std::cerr << "mcltrace: failed to write " << trace_path_ << "\n";
    return;
  }
  std::cout << "\nmcltrace: wrote " << trace_path_ << " (" << events.size()
            << " events, " << dropped << " dropped; open in Perfetto or "
            << "chrome://tracing)\n";
  std::cout << trace::metrics_text(trace::metrics(events));
  // Dropped events mean the timeline above is truncated — surface that
  // through the sanitizer's lint channel rather than silently.
  if (dropped > 0) std::cout << san::lint_trace(dropped).to_string();
}

bool Env::init(int argc, const char* const* argv, const std::string& description) {
  cli_.add_flag("full", "use the paper's exact workload sizes (slow)");
  cli_.add_flag("threads", "CPU-device worker threads (0 = all logical CPUs)",
                "0");
  if (!cli_.parse(argc, argv)) return false;
  std::cout << description << "\n";

  quick_ = cli_.has("quick");
  full_ = cli_.has("full");
  opts_ = core::measure_options_from(cli_);
  csv_ = cli_.get("csv");
  json_ = cli_.get("json");
  md_ = cli_.get("md");
  seed_ = static_cast<std::uint64_t>(cli_.get_int("seed", 1337));

  ocl::CpuDeviceConfig cpu;
  cpu.threads = static_cast<std::size_t>(cli_.get_int("threads", 0));
  platform_ = std::make_unique<ocl::Platform>(cpu);

  trace_path_ = cli_.get("trace");
  if (!trace_path_.empty()) trace::start();
  return true;
}

void Env::restart_trace() {
  if (!trace_path_.empty()) trace::start();
}

double time_launch(ocl::CommandQueue& queue, const ocl::Kernel& kernel,
                   const ocl::NDRange& global, const ocl::NDRange& local,
                   const core::MeasureOptions& opts) {
  core::MeasureOptions launch_opts = opts;
  if (queue.device().type() == ocl::DeviceType::SimulatedGpu) {
    // Simulated time is deterministic; one invocation suffices.
    launch_opts.min_time = 0.0;
    launch_opts.min_iters = 1;
    launch_opts.warmup_iters = 0;
  }
  const core::Measurement m = core::measure_reported(
      [&] { return queue.enqueue_ndrange(kernel, global, local).seconds; },
      launch_opts);
  return m.per_iter_s;
}

std::string range_str(const ocl::NDRange& r) {
  if (r.is_null()) return "NULL";
  std::string s = std::to_string(r.size[0]);
  for (std::size_t d = 1; d < r.dims; ++d) s += "x" + std::to_string(r.size[d]);
  return s;
}

}  // namespace mcl::bench
