#include "common.hpp"

#include <fstream>
#include <iostream>

#include "core/sysinfo.hpp"
#include "prof/metrics.hpp"
#include "prof/profiler.hpp"
#include "san/lint.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"

namespace mcl::bench {

Env::~Env() {
  if (!profile_path_.empty()) {
    prof::stop();
    std::cout << "\n" << prof::profiles_text();
    std::cout << prof::metrics_text(prof::snapshot());
    // P2: a kernel whose measured vector-lane utilization contradicts its
    // static IR descriptor is surfaced like the T1 trace-drop lint.
    for (const prof::KernelProfile& p : prof::kernel_profiles()) {
      const san::Report lint =
          san::lint_profile(p.name, p.has_simd_form, p.simd_item_fraction());
      if (!lint.diagnostics.empty()) std::cout << lint.to_string();
    }
    if (profile_path_ != "1") {
      if (prof::write_profile_json(profile_path_)) {
        std::cout << "mclprof: wrote " << profile_path_
                  << " (validate with tools/plot_results.py --check)\n";
      } else {
        std::cerr << "mclprof: failed to write " << profile_path_ << "\n";
      }
    }
  }
  if (trace_path_.empty()) return;
  trace::stop();
  const std::uint64_t dropped = trace::dropped_events();
  const std::vector<trace::TaggedEvent> events = trace::collect();
  if (!trace::write_chrome_trace(trace_path_, events, dropped)) {
    std::cerr << "mcltrace: failed to write " << trace_path_ << "\n";
    return;
  }
  std::cout << "\nmcltrace: wrote " << trace_path_ << " (" << events.size()
            << " events, " << dropped << " dropped; open in Perfetto or "
            << "chrome://tracing)\n";
  std::cout << trace::metrics_text(trace::metrics(events));
  // Dropped events mean the timeline above is truncated — surface that
  // through the sanitizer's lint channel rather than silently.
  if (dropped > 0) std::cout << san::lint_trace(dropped).to_string();
}

bool Env::init(int argc, const char* const* argv, const std::string& description) {
  cli_.add_flag("full", "use the paper's exact workload sizes (slow)");
  cli_.add_flag("threads", "CPU-device worker threads (0 = all logical CPUs)",
                "0");
  if (!cli_.parse(argc, argv)) return false;
  std::cout << description << "\n";

  quick_ = cli_.has("quick");
  full_ = cli_.has("full");
  opts_ = core::measure_options_from(cli_);
  csv_ = cli_.get("csv");
  json_ = cli_.get("json");
  md_ = cli_.get("md");
  seed_ = static_cast<std::uint64_t>(cli_.get_int("seed", 1337));

  ocl::CpuDeviceConfig cpu;
  cpu.threads = static_cast<std::size_t>(cli_.get_int("threads", 0));
  platform_ = std::make_unique<ocl::Platform>(cpu);

  trace_path_ = cli_.get("trace");
  if (!trace_path_.empty()) trace::start();

  profile_path_ = cli_.get("profile");
  if (!profile_path_.empty()) {
    prof::start();
    std::cout << "mclprof: profiling on (perf: " << prof::availability().detail
              << ")\n";
  }

  write_provenance(description);
  return true;
}

void Env::write_provenance(const std::string& description) const {
  // A provenance block ahead of the result tables, so an exported CSV/JSONL
  // file is self-describing: which host, which flags, which seed, and
  // whether the profile columns came from real hardware counters.
  const core::HostInfo host = core::probe_host();
  const prof::PerfAvailability& perf = prof::availability();
  if (!csv_.empty()) {
    std::ofstream out(csv_, std::ios::app);
    if (out) {
      out << "# mclbench: " << description << "\n"
          << "# host: " << host.cpu_model << " (" << host.logical_cpus
          << " logical CPUs, " << host.simd_isa << ")\n"
          << "# flags: quick=" << (quick_ ? 1 : 0)
          << " full=" << (full_ ? 1 : 0) << " min_time=" << opts_.min_time
          << " seed=" << seed_ << " profile=" << (profiling() ? 1 : 0) << "\n"
          << "# perf: " << perf.detail << "\n";
    }
  }
  if (!json_.empty()) {
    std::ofstream out(json_, std::ios::app);
    if (out) {
      auto quote = [](const std::string& s) {
        std::string q = "\"";
        for (char c : s) {
          if (c == '"' || c == '\\') q += '\\';
          q += c;
        }
        return q + "\"";
      };
      out << "{\"meta\":{\"bench\":" << quote(description)
          << ",\"host\":" << quote(host.cpu_model)
          << ",\"logical_cpus\":" << host.logical_cpus
          << ",\"simd\":" << quote(host.simd_isa)
          << ",\"quick\":" << (quick_ ? "true" : "false")
          << ",\"full\":" << (full_ ? "true" : "false")
          << ",\"min_time\":" << opts_.min_time << ",\"seed\":" << seed_
          << ",\"perf\":{\"usable\":" << (perf.usable ? "true" : "false")
          << ",\"paranoid\":" << perf.paranoid
          << ",\"events_ok\":" << perf.events_ok
          << ",\"detail\":" << quote(perf.detail) << "}}}\n";
    }
  }
}

void Env::restart_trace() {
  if (!trace_path_.empty()) trace::start();
}

double time_launch(ocl::CommandQueue& queue, const ocl::Kernel& kernel,
                   const ocl::NDRange& global, const ocl::NDRange& local,
                   const core::MeasureOptions& opts) {
  core::MeasureOptions launch_opts = opts;
  if (queue.device().type() == ocl::DeviceType::SimulatedGpu) {
    // Simulated time is deterministic; one invocation suffices.
    launch_opts.min_time = 0.0;
    launch_opts.min_iters = 1;
    launch_opts.warmup_iters = 0;
  }
  const core::Measurement m = core::measure_reported(
      [&] { return queue.enqueue_ndrange(kernel, global, local).seconds; },
      launch_opts);
  return m.per_iter_s;
}

void emit_profile_addendum(const Env& env, const std::string& title,
                           const std::vector<std::string>& kernels) {
  if (!env.profiling()) return;
  core::Table t(title, {"kernel", "src", "IPC", "cache miss %", "GB/s",
                        "SIMD item %"});
  for (const std::string& name : kernels) {
    const prof::KernelProfile p = prof::kernel_profile(name);
    if (p.launches == 0) continue;
    t.add_row({name, std::string(p.hardware ? "hw" : "sw"),
               p.hardware ? core::Cell{p.ipc()} : core::Cell{std::string("-")},
               p.hardware ? core::Cell{p.cache_miss_rate() * 100.0}
                          : core::Cell{std::string("-")},
               p.achieved_gbps(), p.simd_item_fraction() * 100.0});
  }
  if (t.row_count() > 0) t.emit(env.csv(), env.json(), env.md());
}

std::string range_str(const ocl::NDRange& r) {
  if (r.is_null()) return "NULL";
  std::string s = std::to_string(r.size[0]);
  for (std::size_t d = 1; d < r.dims; ++d) s += "x" + std::to_string(r.size[d]);
  return s;
}

}  // namespace mcl::bench
