// Shared scaffolding for the figure/table bench binaries.
//
// Every bench binary follows the same pattern: parse the standard flags
// (--quick, --full, --min-time, --csv, --seed), build a Platform, measure
// each configuration with the paper's repeat-until-min-time methodology,
// and emit a Table whose rows mirror the corresponding figure series.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/cli.hpp"
#include "core/harness.hpp"
#include "core/table.hpp"
#include "ocl/platform.hpp"
#include "ocl/queue.hpp"

namespace mcl::bench {

class Env {
 public:
  Env() = default;
  /// Teardown reporting: with --profile, stops the mclprof session, prints
  /// the per-kernel profile table + metrics registry, runs the P2
  /// profile-vs-IR lint, and writes the profile JSON when a path was given;
  /// with --trace, stops the trace session, writes the Chrome JSON, and
  /// prints the aggregate metrics + drop report.
  ~Env();
  Env(const Env&) = delete;
  Env& operator=(const Env&) = delete;

  /// Parses flags; returns false when --help was requested. Starts an
  /// mcltrace session when --trace=<path> is present.
  [[nodiscard]] bool init(int argc, const char* const* argv,
                          const std::string& description);

  [[nodiscard]] ocl::Platform& platform() { return *platform_; }
  [[nodiscard]] const core::MeasureOptions& opts() const { return opts_; }
  [[nodiscard]] const std::string& csv() const { return csv_; }
  [[nodiscard]] const std::string& json() const { return json_; }
  [[nodiscard]] const std::string& md() const { return md_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] bool quick() const { return quick_; }
  /// --full selects the paper's exact workload sizes; the default is scaled
  /// down to keep a laptop run in seconds.
  [[nodiscard]] bool full() const { return full_; }

  [[nodiscard]] bool tracing() const { return !trace_path_.empty(); }
  [[nodiscard]] const std::string& trace_path() const { return trace_path_; }
  /// Restarts the trace session, discarding everything recorded so far.
  /// Benches with a --trace addendum call this so the exported timeline
  /// holds only the labeled replay, not the measurement-loop flood.
  void restart_trace();

  /// True when --profile was given (an mclprof session is recording).
  [[nodiscard]] bool profiling() const { return !profile_path_.empty(); }
  /// The --profile value; "1" (bare flag) means report-only, no JSON file.
  [[nodiscard]] const std::string& profile_path() const {
    return profile_path_;
  }

  /// Picks a size: quick -> small, default -> medium, --full -> paper size.
  template <typename T>
  [[nodiscard]] T size(T small, T medium, T paper) const {
    return quick_ ? small : (full_ ? paper : medium);
  }

 private:
  core::Cli cli_ = core::make_bench_cli();
  std::unique_ptr<ocl::Platform> platform_;
  core::MeasureOptions opts_;
  std::string csv_;
  std::string json_;
  std::string md_;
  std::uint64_t seed_ = 1337;
  bool quick_ = false;
  bool full_ = false;
  std::string trace_path_;
  std::string profile_path_;

  void write_provenance(const std::string& description) const;
};

/// Times kernel launches using event-reported seconds (wall time on the CPU
/// device, simulated time on the GPU device) with the min-time methodology.
[[nodiscard]] double time_launch(ocl::CommandQueue& queue,
                                 const ocl::Kernel& kernel,
                                 const ocl::NDRange& global,
                                 const ocl::NDRange& local,
                                 const core::MeasureOptions& opts);

/// Formats an NDRange as "800x1600" / "NULL".
[[nodiscard]] std::string range_str(const ocl::NDRange& r);

/// With --profile, emits an mclprof addendum table — per-kernel IPC,
/// cache-miss rate, achieved GB/s, and SIMD item fraction — for the named
/// kernels, read from the live session. IPC/miss-rate cells show "-" when
/// hardware counters were unavailable (the GB/s column is always real).
/// No-op without --profile.
void emit_profile_addendum(const Env& env, const std::string& title,
                           const std::vector<std::string>& kernels);

}  // namespace mcl::bench
