// Figure 1 + Table IV — performance of Square and Vectoraddition with
// different workload per workitem (coalescing 10/100/1000 workitems into
// one), on the CPU device (measured) and the simulated GPU (modeled).
// Normalized throughput is base_time / time, per device, as in the paper.
//
// Expected shape: CPU throughput rises with coalescing (scheduling overhead
// amortized), GPU throughput collapses at 1000x (TLP starved).
#include <vector>

#include "apps/hostdata.hpp"
#include "apps/simple.hpp"
#include "common.hpp"

namespace {

using namespace mcl;

struct AppSpec {
  const char* name;
  const char* plain_kernel;
  const char* coalesced_kernel;
  std::vector<std::size_t> sizes;
};

/// Table IV rule: never fewer than 100 workitems.
std::size_t workitems_for(std::size_t n, std::size_t factor) {
  const std::size_t w = n / factor;
  return w < 100 ? 100 : w;
}

double run_config(ocl::Device& device, const AppSpec& app, std::size_t n,
                  std::size_t factor, const core::MeasureOptions& opts,
                  std::uint64_t seed) {
  ocl::Context ctx(device);
  ocl::CommandQueue queue(ctx);
  const bool is_square = std::string(app.name) == "Square";
  const apps::FloatVec a = apps::random_floats(n, seed);
  const apps::FloatVec b = apps::random_floats(n, seed + 1);

  ocl::Buffer ba = ctx.create_buffer(
      ocl::MemFlags::ReadOnly | ocl::MemFlags::CopyHostPtr, n * 4,
      const_cast<float*>(a.data()));
  ocl::Buffer bb = ctx.create_buffer(
      ocl::MemFlags::ReadOnly | ocl::MemFlags::CopyHostPtr, n * 4,
      const_cast<float*>(b.data()));
  ocl::Buffer bout = ctx.create_buffer(ocl::MemFlags::WriteOnly, n * 4);

  const std::size_t items = workitems_for(n, factor);
  const auto per_item = static_cast<unsigned>(n / items);

  ocl::Kernel k = ctx.create_kernel(
      ocl::Program::builtin(),
      factor == 1 ? app.plain_kernel : app.coalesced_kernel);
  std::size_t arg = 0;
  k.set_arg(arg++, ba);
  if (!is_square) k.set_arg(arg++, bb);
  k.set_arg(arg++, bout);
  if (factor != 1) k.set_arg(arg++, per_item);
  return bench::time_launch(queue, k, ocl::NDRange{items}, ocl::NDRange{},
                            opts);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Env env;
  if (!env.init(argc, argv,
                "Figure 1 / Table IV: workload per workitem (coalescing), "
                "CPU measured vs GPU simulated"))
    return 0;

  std::vector<AppSpec> specs = {
      {"Square", apps::kSquareKernel, apps::kSquareCoalescedKernel,
       {10'000, 100'000, 1'000'000, 10'000'000}},
      {"VectorAdd", apps::kVectorAddKernel, apps::kVectorAddCoalescedKernel,
       {110'000, 1'100'000, 5'500'000, 11'445'000}},
  };
  if (!env.full()) {
    specs[0].sizes = env.quick() ? std::vector<std::size_t>{10'000}
                                 : std::vector<std::size_t>{10'000, 100'000,
                                                            1'000'000};
    specs[1].sizes = env.quick() ? std::vector<std::size_t>{110'000}
                                 : std::vector<std::size_t>{110'000, 1'100'000};
  }

  core::Table t("Figure 1 - normalized throughput vs workitems coalesced",
                {"benchmark", "global size", "factor", "workitems",
                 "norm CPU", "norm GPU (sim)"});
  core::Table t4("Table IV - number of workitems per configuration",
                 {"benchmark", "base", "10x", "100x", "1000x"});

  for (const AppSpec& app : specs) {
    int idx = 1;
    for (std::size_t n : app.sizes) {
      double cpu_base = 0.0, gpu_base = 0.0;
      std::vector<core::Cell> t4row{app.name + std::string("_") +
                                    std::to_string(idx++)};
      for (std::size_t factor : {1ul, 10ul, 100ul, 1000ul}) {
        const double cpu_t = run_config(env.platform().cpu(), app, n, factor,
                                        env.opts(), env.seed());
        const double gpu_t = run_config(env.platform().gpu(), app, n, factor,
                                        env.opts(), env.seed());
        if (factor == 1) {
          cpu_base = cpu_t;
          gpu_base = gpu_t;
        }
        t.add_row({std::string(app.name), static_cast<double>(n),
                   static_cast<double>(factor),
                   static_cast<double>(workitems_for(n, factor)),
                   core::normalized_throughput(cpu_base, cpu_t),
                   core::normalized_throughput(gpu_base, gpu_t)});
        t4row.emplace_back(static_cast<double>(workitems_for(n, factor)));
      }
      t4.add_row(std::move(t4row));
    }
  }
  t.emit(env.csv(), env.json(), env.md());
  t4.emit(env.csv(), env.json(), env.md());
  return 0;
}
