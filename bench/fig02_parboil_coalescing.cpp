// Figure 2 — Parboil benchmarks with different workload per workitem
// (base / 2x / 4x coalescing) on the CPU device. Normalized throughput is
// base_time / time. The paper finds gains for every kernel except
// MRI-FHD:RhoPhi, which stays flat.
#include "parboil_setup.hpp"

int main(int argc, char** argv) {
  using namespace mcl;
  bench::Env env;
  if (!env.init(argc, argv,
                "Figure 2: Parboil workload-per-workitem (CPU device)"))
    return 0;

  const bench::ParboilSizes sizes = bench::parboil_sizes(env);
  ocl::Context ctx(env.platform().cpu());
  ocl::CommandQueue queue(ctx);

  core::Table t("Figure 2 - Parboil normalized throughput vs coalescing",
                {"kernel", "base", "2x", "4x"});

  const char* kernels[] = {
      apps::kCpCenergyKernel, apps::kMriqPhiMagKernel, apps::kMriqComputeQKernel,
      apps::kMrifhdRhoPhiKernel, apps::kMrifhdFhKernel};
  for (const char* name : kernels) {
    bench::ParboilDriver driver(name, sizes, env.seed());
    std::vector<core::Cell> row{std::string(name)};
    double base = 0.0;
    for (unsigned per : {1u, 2u, 4u}) {
      const double time = driver.time(queue, ocl::NDRange{}, per, env.opts());
      if (per == 1) base = time;
      row.emplace_back(core::normalized_throughput(base, time));
    }
    t.add_row(std::move(row));
  }
  t.emit(env.csv(), env.json(), env.md());
  return 0;
}
