// Figure 3 + Table V — performance with different workgroup sizes on the
// CPU device (measured) and simulated GPU (modeled), normalized to the
// "base" configuration of Table V per device.
//
// Expected shape: Square/VectorAdd/MatrixmulNaive climb with workgroup size
// and saturate; Matrixmul (tiled) peaks at a platform-dependent tile;
// Blackscholes is flat on the CPU but sensitive on the GPU (see fig04).
#include <optional>

#include "apps_setup.hpp"
#include "ompx/ompx.hpp"
#include "trace/trace.hpp"

namespace {

using namespace mcl;

struct CaseSet {
  std::unique_ptr<bench::AppDriver> driver;
  std::vector<ocl::NDRange> cases;  ///< [0] is "base"
  std::vector<std::string> labels;
  // Blackscholes pins the Loop executor: the paper's Intel compiler did not
  // vectorize this transcendental-heavy kernel, and letting tiny workgroups
  // also disable SPMD vectorization would conflate two effects — Fig 3/4
  // isolate per-workgroup scheduling overhead.
  ocl::ExecutorKind executor = ocl::ExecutorKind::Auto;
};

void run_caseset(bench::Env& env, CaseSet& cs, core::Table& t) {
  ocl::CpuDevice cpu_override(ocl::CpuDeviceConfig{.executor = cs.executor});
  ocl::Context cpu_ctx(cs.executor == ocl::ExecutorKind::Auto
                           ? static_cast<ocl::Device&>(env.platform().cpu())
                           : static_cast<ocl::Device&>(cpu_override));
  ocl::Context gpu_ctx(env.platform().gpu());
  ocl::CommandQueue cpu_q(cpu_ctx);
  ocl::CommandQueue gpu_q(gpu_ctx);

  double cpu_base = 0.0, gpu_base = 0.0;
  for (std::size_t i = 0; i < cs.cases.size(); ++i) {
    const ocl::NDRange& local = cs.cases[i];
    const double cpu_t = cs.driver->time(cpu_q, local, env.opts());
    const double gpu_t = cs.driver->time(gpu_q, local, env.opts());
    if (i == 0) {
      cpu_base = cpu_t;
      gpu_base = gpu_t;
    }
    t.add_row({std::string(cs.driver->name()),
               bench::range_str(cs.driver->global()), cs.labels[i],
               bench::range_str(local),
               core::normalized_throughput(cpu_base, cpu_t),
               core::normalized_throughput(gpu_base, gpu_t)});
  }
}

std::vector<ocl::NDRange> locals_1d(std::initializer_list<std::size_t> sizes) {
  std::vector<ocl::NDRange> v{ocl::NDRange{}};  // base = NULL
  for (std::size_t s : sizes) v.push_back(ocl::NDRange{s});
  return v;
}

// --trace addendum (mirrors the fig07/fig08 profiling addenda): replay each
// workgroup-size case of one CaseSet exactly once under a fresh trace
// session, so the exported timeline shows the Fig 3 cliff as per-workgroup
// spans — many tiny groups vs few large ones — instead of the measurement
// loop's flood. An equivalent ompx parallel_for runs last so the
// OpenCL-vs-OpenMP execution styles are comparable on one timeline (the
// paper's Figs 10-11 framing).
void trace_addendum(bench::Env& env, CaseSet& cs) {
  env.restart_trace();
  ocl::Context ctx(env.platform().cpu());
  ocl::CommandQueue q(ctx);
  const core::MeasureOptions once{
      .min_time = 0.0, .warmup_iters = 0, .min_iters = 1, .max_iters = 1};
  for (std::size_t i = 0; i < cs.cases.size(); ++i) {
    MCL_TRACE_INSTANT(trace::intern("fig03.case:" + cs.labels[i]));
    (void)cs.driver->time(q, cs.cases[i], once);
  }

  MCL_TRACE_INSTANT("fig03.ompx");
  const std::size_t total = cs.driver->global().total();
  std::vector<float> out(total);
  ompx::Team team;
  team.parallel_for(0, total, [&out](std::size_t i) {
    const float x = static_cast<float>(i);
    out[i] = x * x;
  });
}

}  // namespace

int main(int argc, char** argv) {
  bench::Env env;
  if (!env.init(argc, argv,
                "Figure 3 / Table V: workgroup-size sweep, CPU vs simulated "
                "GPU"))
    return 0;

  const std::size_t square_n = env.size<std::size_t>(10'000, 100'000, 100'000);
  const std::size_t vadd_n = env.size<std::size_t>(110'000, 1'100'000, 1'100'000);
  const std::size_t mm_n = env.size<std::size_t>(128, 256, 800);
  const std::size_t mm_m = env.size<std::size_t>(256, 512, 1600);
  const std::size_t mm_k = env.size<std::size_t>(64, 256, 800);
  const std::size_t bs_wh = env.size<std::size_t>(256, 512, 1280);

  std::vector<CaseSet> sets;
  sets.push_back(
      {std::make_unique<bench::SquareDriver>(square_n, env.seed()),
       locals_1d({1, 10, 100, 1000}),
       {"base(NULL)", "case_1(1)", "case_2(10)", "case_3(100)", "case_4(1000)"}});
  sets.push_back(
      {std::make_unique<bench::VectorAddDriver>(vadd_n, env.seed()),
       locals_1d({1, 10, 100, 1000}),
       {"base(NULL)", "case_1(1)", "case_2(10)", "case_3(100)", "case_4(1000)"}});
  sets.push_back({std::make_unique<bench::MatMulDriver>(true, mm_m, mm_n, mm_k,
                                                        env.seed()),
                  {ocl::NDRange(16, 16), ocl::NDRange(1, 1), ocl::NDRange(2, 2),
                   ocl::NDRange(4, 4), ocl::NDRange(8, 8)},
                  {"base(16x16)", "case_1(1x1)", "case_2(2x2)", "case_3(4x4)",
                   "case_4(8x8)"}});
  sets.push_back({std::make_unique<bench::BlackScholesDriver>(bs_wh, bs_wh,
                                                              env.seed()),
                  {ocl::NDRange(16, 16), ocl::NDRange(1, 1), ocl::NDRange(1, 2),
                   ocl::NDRange(2, 2), ocl::NDRange(2, 4)},
                  {"base(16x16)", "case_1(1x1)", "case_2(1x2)", "case_3(2x2)",
                   "case_4(2x4)"},
                  ocl::ExecutorKind::Loop});
  sets.push_back({std::make_unique<bench::MatMulDriver>(false, mm_m, mm_n,
                                                        mm_k, env.seed()),
                  {ocl::NDRange(16, 16), ocl::NDRange(1, 1), ocl::NDRange(2, 2),
                   ocl::NDRange(4, 4), ocl::NDRange(8, 8)},
                  {"base(16x16)", "case_1(1x1)", "case_2(2x2)", "case_3(4x4)",
                   "case_4(8x8)"}});

  core::Table t("Figure 3 - normalized throughput vs workgroup size",
                {"benchmark", "global", "case", "local", "norm CPU",
                 "norm GPU (sim)"});
  for (CaseSet& cs : sets) run_caseset(env, cs, t);
  t.emit(env.csv(), env.json(), env.md());

  // sets[2] is the tiled matmul — the case with the sharpest Fig 3 cliff.
  if (env.tracing()) trace_addendum(env, sets[2]);
  return 0;
}
