// Figure 4 — Blackscholes with different workgroup sizes, two input sizes,
// CPU vs simulated GPU (the paper's example of inverted sensitivity: CPU
// flat because per-workitem work is large; GPU throttled by small groups).
#include "apps_setup.hpp"

int main(int argc, char** argv) {
  using namespace mcl;
  bench::Env env;
  if (!env.init(argc, argv,
                "Figure 4: Blackscholes workgroup-size sweep, CPU vs GPU"))
    return 0;

  const std::size_t size1 = env.size<std::size_t>(256, 512, 1280);
  const std::size_t size2 = env.size<std::size_t>(512, 1024, 2560);

  const std::vector<ocl::NDRange> cases = {
      ocl::NDRange(16, 16), ocl::NDRange(1, 1), ocl::NDRange(1, 2),
      ocl::NDRange(2, 2), ocl::NDRange(2, 4)};
  const char* labels[] = {"base(16x16)", "case_1(1x1)", "case_2(1x2)",
                          "case_3(2x2)", "case_4(2x4)"};

  core::Table t("Figure 4 - Blackscholes normalized throughput vs workgroup "
                "size",
                {"input", "case", "norm CPU", "norm GPU (sim)"});

  // Loop executor: see fig03 — isolates scheduling overhead from the
  // SPMD-vectorization loss tiny workgroups would add.
  ocl::CpuDevice cpu_device(ocl::CpuDeviceConfig{.executor = ocl::ExecutorKind::Loop});
  ocl::Context cpu_ctx(cpu_device);
  ocl::Context gpu_ctx(env.platform().gpu());
  ocl::CommandQueue cpu_q(cpu_ctx);
  ocl::CommandQueue gpu_q(gpu_ctx);

  int input_idx = 1;
  for (std::size_t wh : {size1, size2}) {
    bench::BlackScholesDriver driver(wh, wh, env.seed());
    double cpu_base = 0.0, gpu_base = 0.0;
    for (std::size_t i = 0; i < cases.size(); ++i) {
      const double cpu_t = driver.time(cpu_q, cases[i], env.opts());
      const double gpu_t = driver.time(gpu_q, cases[i], env.opts());
      if (i == 0) {
        cpu_base = cpu_t;
        gpu_base = gpu_t;
      }
      t.add_row({std::string("blackscholes_") + std::to_string(input_idx),
                 std::string(labels[i]),
                 core::normalized_throughput(cpu_base, cpu_t),
                 core::normalized_throughput(gpu_base, gpu_t)});
    }
    ++input_idx;
  }
  t.emit(env.csv(), env.json(), env.md());
  return 0;
}
