// Figure 5 — Parboil benchmarks with different workgroup sizes on the CPU
// device. CP:cenergy sweeps the 2D local size along X (1x8..16x8) and along
// Y (16x1..16x16); the 1D MRI kernels multiply the base size 1..16x.
// Normalized to the smallest workgroup per series, as in the paper's x-axis
// (1, 2, 4, 8, 16).
#include "parboil_setup.hpp"

int main(int argc, char** argv) {
  using namespace mcl;
  bench::Env env;
  if (!env.init(argc, argv,
                "Figure 5: Parboil workgroup-size sweep (CPU device)"))
    return 0;

  const bench::ParboilSizes sizes = bench::parboil_sizes(env);
  ocl::Context ctx(env.platform().cpu());
  ocl::CommandQueue queue(ctx);

  core::Table t("Figure 5 - Parboil normalized throughput vs workgroup scale",
                {"series", "1", "2", "4", "8", "16"});

  struct Series {
    std::string label;
    const char* kernel;
    std::vector<ocl::NDRange> locals;
  };
  std::vector<Series> series;
  series.push_back({"CP: cenergy(X)",
                    apps::kCpCenergyKernel,
                    {ocl::NDRange(1, 8), ocl::NDRange(2, 8), ocl::NDRange(4, 8),
                     ocl::NDRange(8, 8), ocl::NDRange(16, 8)}});
  series.push_back({"CP: cenergy(Y)",
                    apps::kCpCenergyKernel,
                    {ocl::NDRange(16, 1), ocl::NDRange(16, 2),
                     ocl::NDRange(16, 4), ocl::NDRange(16, 8),
                     ocl::NDRange(16, 16)}});
  // 1D kernels: base/16 .. base local size, x1..x16.
  const auto scale_1d = [](std::size_t base) {
    return std::vector<ocl::NDRange>{
        ocl::NDRange{base / 16}, ocl::NDRange{base / 8}, ocl::NDRange{base / 4},
        ocl::NDRange{base / 2}, ocl::NDRange{base}};
  };
  series.push_back(
      {"MRI-Q: computePhiMag", apps::kMriqPhiMagKernel, scale_1d(512)});
  series.push_back(
      {"MRI-Q: computeQ", apps::kMriqComputeQKernel, scale_1d(256)});
  series.push_back(
      {"MRI-FHD: RhoPhi", apps::kMrifhdRhoPhiKernel, scale_1d(512)});
  series.push_back({"MRI-FHD: FH", apps::kMrifhdFhKernel, scale_1d(256)});

  for (const Series& s : series) {
    bench::ParboilDriver driver(s.kernel, sizes, env.seed());
    std::vector<core::Cell> row{s.label};
    double base = 0.0;
    for (std::size_t i = 0; i < s.locals.size(); ++i) {
      const double time = driver.time(queue, s.locals[i], 1, env.opts());
      if (i == 0) base = time;
      row.emplace_back(core::normalized_throughput(base, time));
    }
    t.add_row(std::move(row));
  }
  t.emit(env.csv(), env.json(), env.md());
  return 0;
}
