// Figure 6 — ILP micro-benchmark: throughput (Gflop/s) of kernels that
// differ only in the number of independent FMA chains, on the CPU (left
// axis, measured) and the simulated GPU (right axis, modeled).
//
// Expected shape: CPU throughput climbs with ILP (the OoO core fills its
// pipelines); the GPU line stays flat (warps already hide latency).
#include "apps/hostdata.hpp"
#include "apps/ilp.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace mcl;
  bench::Env env;
  if (!env.init(argc, argv,
                "Figure 6: ILP micro-benchmark, CPU measured vs GPU simulated"))
    return 0;

  const std::size_t cpu_items = env.size<std::size_t>(4096, 16384, 65536);
  const std::size_t gpu_items = 1 << 20;
  const unsigned iters = 64;
  const double flops = apps::ilp_flops_per_item(iters);

  ocl::Context cpu_ctx(env.platform().cpu());
  ocl::Context gpu_ctx(env.platform().gpu());
  ocl::CommandQueue cpu_q(cpu_ctx);
  ocl::CommandQueue gpu_q(gpu_ctx);

  core::Table t("Figure 6 - ILP microbenchmark throughput",
                {"ILP", "CPU Gflop/s (measured)", "GPU Gflop/s (simulated)"});

  const apps::FloatVec cpu_in = apps::random_floats(cpu_items, env.seed());
  ocl::Buffer cpu_bin = cpu_ctx.create_buffer(
      ocl::MemFlags::ReadOnly | ocl::MemFlags::CopyHostPtr, cpu_items * 4,
      const_cast<float*>(cpu_in.data()));
  ocl::Buffer cpu_bout = cpu_ctx.create_buffer(ocl::MemFlags::WriteOnly,
                                               cpu_items * 4);
  ocl::Buffer gpu_bin = gpu_ctx.create_buffer(ocl::MemFlags::ReadWrite,
                                              gpu_items * 4);
  ocl::Buffer gpu_bout = gpu_ctx.create_buffer(ocl::MemFlags::ReadWrite,
                                               gpu_items * 4);

  for (int level : apps::kIlpLevels) {
    ocl::Kernel ck = cpu_ctx.create_kernel(ocl::Program::builtin(),
                                           apps::ilp_kernel_name(level));
    ck.set_arg(0, cpu_bin);
    ck.set_arg(1, cpu_bout);
    ck.set_arg(2, iters);
    const double cpu_t = bench::time_launch(
        cpu_q, ck, ocl::NDRange{cpu_items}, ocl::NDRange{256}, env.opts());
    const double cpu_gflops =
        static_cast<double>(cpu_items) * flops / cpu_t / 1e9;

    ocl::Kernel gk = gpu_ctx.create_kernel(ocl::Program::builtin(),
                                           apps::ilp_kernel_name(level));
    gk.set_arg(0, gpu_bin);
    gk.set_arg(1, gpu_bout);
    gk.set_arg(2, iters);
    const ocl::Event ev =
        gpu_q.enqueue_ndrange(gk, ocl::NDRange{gpu_items}, ocl::NDRange{256});
    const double gpu_gflops =
        static_cast<double>(gpu_items) * flops / ev.seconds / 1e9;

    t.add_row({static_cast<double>(level), cpu_gflops, gpu_gflops});
  }
  t.emit(env.csv(), env.json(), env.md());

  std::vector<std::string> kernels;
  for (int level : apps::kIlpLevels)
    kernels.push_back(apps::ilp_kernel_name(level));
  bench::emit_profile_addendum(
      env, "Figure 6 profile addendum (mclprof, CPU launches)", kernels);
  return 0;
}
