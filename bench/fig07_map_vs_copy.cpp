// Figure 7 — normalized application throughput (Eq. 1) of mapping over
// copying, for every combination of access flags (ReadOnly/WriteOnly vs
// ReadWrite) and allocation location (device vs host/ALLOC_HOST_PTR), on
// the CPU device.
//
// Per invocation the copy path pays clEnqueueWriteBuffer for every input
// and clEnqueueReadBuffer for every output; the map path pays
// clEnqueueMapBuffer/Unmap, which on a CPU device only returns a pointer.
// Expected shape: mapping wins everywhere; allocation location is
// irrelevant (same DRAM).
#include "apps_setup.hpp"

namespace {

using namespace mcl;

/// Seconds of transfer per invocation using explicit copies.
double copy_transfer_seconds(ocl::CommandQueue& q, bench::AppDriver& app,
                             std::vector<std::byte>& scratch) {
  double total = 0.0;
  for (const auto& [buf, is_input] : app.traffic()) {
    if (scratch.size() < buf->size()) scratch.resize(buf->size());
    if (is_input) {
      total += q.enqueue_write_buffer(*buf, 0, buf->size(), scratch.data())
                   .seconds;
    } else {
      total += q.enqueue_read_buffer(*buf, 0, buf->size(), scratch.data())
                   .seconds;
    }
  }
  return total;
}

/// Seconds of transfer per invocation using map/unmap.
double map_transfer_seconds(ocl::CommandQueue& q, bench::AppDriver& app) {
  double total = 0.0;
  for (const auto& [buf, is_input] : app.traffic()) {
    ocl::Event ev;
    void* p = q.enqueue_map_buffer(
        *buf, is_input ? ocl::MapFlags::Write : ocl::MapFlags::Read, 0,
        buf->size(), &ev);
    total += ev.seconds;
    total += q.enqueue_unmap(*buf, p).seconds;
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Env env;
  if (!env.init(argc, argv,
                "Figure 7: mapping vs copying across allocation-flag "
                "combinations (CPU device)"))
    return 0;

  ocl::Context ctx(env.platform().cpu());
  ocl::CommandQueue q(ctx);

  const std::size_t sq_n = env.size<std::size_t>(100'000, 1'000'000, 10'000'000);
  const std::size_t va_n = env.size<std::size_t>(110'000, 1'100'000, 11'445'000);
  const std::size_t mm = env.size<std::size_t>(128, 256, 800);
  const std::size_t bs = env.size<std::size_t>(256, 512, 1280);

  core::Table t("Figure 7 - normalized throughput of mapping over copying",
                {"benchmark", "access flags", "allocation",
                 "map/copy throughput", "copy ms/iter", "map ms/iter"});

  for (bool read_write : {false, true}) {
    for (bool host_alloc : {false, true}) {
      const bench::BufferPolicy policy{read_write, host_alloc};
      std::vector<std::unique_ptr<bench::AppDriver>> drivers;
      drivers.push_back(
          std::make_unique<bench::SquareDriver>(sq_n, env.seed(), policy));
      drivers.push_back(
          std::make_unique<bench::VectorAddDriver>(va_n, env.seed(), policy));
      drivers.push_back(std::make_unique<bench::MatMulDriver>(
          false, mm * 2, mm, mm / 2, env.seed(), policy));
      drivers.push_back(std::make_unique<bench::BlackScholesDriver>(
          bs, bs, env.seed(), policy));

      std::vector<std::byte> scratch;
      for (auto& app : drivers) {
        const double kernel_s = app->time(q, ocl::NDRange{}, env.opts());
        const core::Measurement copy_m = core::measure_reported(
            [&] { return copy_transfer_seconds(q, *app, scratch); },
            env.opts());
        const core::Measurement map_m = core::measure_reported(
            [&] { return map_transfer_seconds(q, *app); }, env.opts());

        const double work = static_cast<double>(app->global().total());
        const double tp_copy =
            core::app_throughput(work, kernel_s, copy_m.per_iter_s);
        const double tp_map =
            core::app_throughput(work, kernel_s, map_m.per_iter_s);
        t.add_row({std::string(app->name()), std::string(policy.access_str()),
                   std::string(policy.alloc_str()), tp_map / tp_copy,
                   (kernel_s + copy_m.per_iter_s) * 1e3,
                   (kernel_s + map_m.per_iter_s) * 1e3});
      }
    }
  }
  t.emit(env.csv(), env.json(), env.md());

  // Addendum: per-command event profiling on the async copy path. The same
  // traffic as the copy rows above, enqueued non-blocking on an in-order
  // queue; the four clGetEventProfilingInfo-style timestamps break each
  // transfer into queue wait (queued->submitted), scheduling (submitted->
  // started) and execution (started->ended) phases.
  {
    bench::SquareDriver app(sq_n, env.seed(), bench::BufferPolicy{});
    (void)app.time(q, ocl::NDRange{}, env.opts());
    std::vector<std::byte> scratch;
    core::Table tp("Figure 7 addendum - async transfer event profiling",
                   {"command", "MiB", "queued->submit us", "submit->start us",
                    "start->end ms"});
    struct Row {
      std::string name;
      std::size_t bytes;
      ocl::AsyncEventPtr ev;
    };
    std::vector<Row> rows;
    for (const auto& [buf, is_input] : app.traffic()) {
      if (scratch.size() < buf->size()) scratch.resize(buf->size());
      rows.push_back(
          {is_input ? "WriteBuffer" : "ReadBuffer", buf->size(),
           is_input ? q.enqueue_write_buffer_async(*buf, 0, buf->size(),
                                                   scratch.data())
                    : q.enqueue_read_buffer_async(*buf, 0, buf->size(),
                                                  scratch.data())});
    }
    q.finish();
    for (const auto& row : rows) {
      const ocl::ProfilingInfo p = row.ev->profiling_ns();
      tp.add_row({row.name, static_cast<double>(row.bytes) / (1024.0 * 1024.0),
                  static_cast<double>(p.submitted_ns - p.queued_ns) * 1e-3,
                  static_cast<double>(p.started_ns - p.submitted_ns) * 1e-3,
                  static_cast<double>(p.ended_ns - p.started_ns) * 1e-6});
    }
    tp.emit(env.csv(), env.json(), env.md());
  }
  return 0;
}
