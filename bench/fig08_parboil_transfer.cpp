// Figure 8 — Parboil data-transfer time with different APIs: host-to-device
// (upper) and device-to-host (lower), copy vs map, in milliseconds. Kernel
// execution time is unaffected by the API choice; only transfers differ.
#include "parboil_setup.hpp"

namespace {

using namespace mcl;

struct TransferTimes {
  double h2d_copy, h2d_map, d2h_copy, d2h_map;
};

TransferTimes measure(ocl::CommandQueue& q, bench::ParboilDriver& driver,
                      const core::MeasureOptions& opts) {
  std::vector<std::byte> scratch;
  auto copy_dir = [&](bool inputs) {
    return core::measure_reported(
               [&] {
                 double total = 0.0;
                 for (const auto& [buf, is_input] : driver.traffic()) {
                   if (is_input != inputs) continue;
                   if (scratch.size() < buf->size()) scratch.resize(buf->size());
                   total += inputs
                                ? q.enqueue_write_buffer(*buf, 0, buf->size(),
                                                         scratch.data())
                                      .seconds
                                : q.enqueue_read_buffer(*buf, 0, buf->size(),
                                                        scratch.data())
                                      .seconds;
                 }
                 return total;
               },
               opts)
        .per_iter_s;
  };
  auto map_dir = [&](bool inputs) {
    return core::measure_reported(
               [&] {
                 double total = 0.0;
                 for (const auto& [buf, is_input] : driver.traffic()) {
                   if (is_input != inputs) continue;
                   ocl::Event ev;
                   void* p = q.enqueue_map_buffer(
                       *buf,
                       inputs ? ocl::MapFlags::Write : ocl::MapFlags::Read, 0,
                       buf->size(), &ev);
                   total += ev.seconds;
                   total += q.enqueue_unmap(*buf, p).seconds;
                 }
                 return total;
               },
               opts)
        .per_iter_s;
  };
  return TransferTimes{copy_dir(true), map_dir(true), copy_dir(false),
                       map_dir(false)};
}

}  // namespace

int main(int argc, char** argv) {
  bench::Env env;
  if (!env.init(argc, argv,
                "Figure 8: Parboil transfer time, copy vs map (CPU device)"))
    return 0;

  const bench::ParboilSizes sizes = bench::parboil_sizes(env);
  ocl::Context ctx(env.platform().cpu());
  ocl::CommandQueue q(ctx);

  // One driver per benchmark suite; traffic covers every kernel's buffers.
  struct Suite {
    const char* label;
    std::vector<const char*> kernels;
  };
  const Suite suites[] = {
      {"CP", {apps::kCpCenergyKernel}},
      {"MRI-Q", {apps::kMriqPhiMagKernel, apps::kMriqComputeQKernel}},
      {"MRI-FHD", {apps::kMrifhdRhoPhiKernel, apps::kMrifhdFhKernel}},
  };

  core::Table up("Figure 8 (upper) - host-to-device transfer time",
                 {"benchmark", "bytes", "Copying ms", "Mapping ms"});
  core::Table down("Figure 8 (lower) - device-to-host transfer time",
                   {"benchmark", "bytes", "Copying ms", "Mapping ms"});

  for (const Suite& suite : suites) {
    double h2d_copy = 0, h2d_map = 0, d2h_copy = 0, d2h_map = 0;
    std::size_t in_bytes = 0, out_bytes = 0;
    for (const char* kname : suite.kernels) {
      bench::ParboilDriver driver(kname, sizes, env.seed());
      const TransferTimes tt = measure(q, driver, env.opts());
      h2d_copy += tt.h2d_copy;
      h2d_map += tt.h2d_map;
      d2h_copy += tt.d2h_copy;
      d2h_map += tt.d2h_map;
      const auto [in_b, out_b] = driver.transfer_bytes();
      in_bytes += in_b;
      out_bytes += out_b;
    }
    up.add_row({std::string(suite.label), static_cast<double>(in_bytes),
                h2d_copy * 1e3, h2d_map * 1e3});
    down.add_row({std::string(suite.label), static_cast<double>(out_bytes),
                  d2h_copy * 1e3, d2h_map * 1e3});
  }
  up.emit(env.csv(), env.json(), env.md());
  down.emit(env.csv(), env.json(), env.md());

  // Addendum: event-profiling breakdown of one full async H2D+D2H pass per
  // suite. Aggregates the per-command clGetEventProfilingInfo-style phases:
  // queue wait (queued->submitted), scheduling (submitted->started) and
  // execution (started->ended).
  core::Table prof("Figure 8 addendum - async transfer event profiling",
                   {"benchmark", "commands", "queued->submit us",
                    "submit->start us", "start->end ms"});
  for (const Suite& suite : suites) {
    double queue_us = 0.0, sched_us = 0.0, exec_ms = 0.0;
    std::size_t commands = 0;
    std::vector<std::byte> scratch;
    for (const char* kname : suite.kernels) {
      bench::ParboilDriver driver(kname, sizes, env.seed());
      std::vector<ocl::AsyncEventPtr> events;
      for (const auto& [buf, is_input] : driver.traffic()) {
        if (scratch.size() < buf->size()) scratch.resize(buf->size());
        events.push_back(
            is_input ? q.enqueue_write_buffer_async(*buf, 0, buf->size(),
                                                    scratch.data())
                     : q.enqueue_read_buffer_async(*buf, 0, buf->size(),
                                                   scratch.data()));
      }
      q.finish();
      for (const auto& ev : events) {
        const ocl::ProfilingInfo p = ev->profiling_ns();
        queue_us += static_cast<double>(p.submitted_ns - p.queued_ns) * 1e-3;
        sched_us += static_cast<double>(p.started_ns - p.submitted_ns) * 1e-3;
        exec_ms += static_cast<double>(p.ended_ns - p.started_ns) * 1e-6;
        ++commands;
      }
    }
    prof.add_row({std::string(suite.label), static_cast<double>(commands),
                  queue_us, sched_us, exec_ms});
  }
  prof.emit(env.csv(), env.json(), env.md());
  return 0;
}
