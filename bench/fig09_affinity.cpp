// Figure 9 — performance impact of CPU affinity. Two dependent kernels
// (vector addition producing c, then vector multiplication consuming c) are
// distributed over 8 cores. "Aligned" keeps each core on the slice it
// produced; "misaligned" shifts the mapping by one core, so phase 2 misses
// the private caches. The paper measured ~15% slowdown for misaligned.
//
// The host machine may have a single core, so the experiment runs on the
// cache-hierarchy simulator with Xeon-E5645-like geometry (deterministic),
// and additionally on real threads via the ompx runtime for reference.
#include "cachesim/hierarchy.hpp"
#include "apps_setup.hpp"
#include "apps/hostdata.hpp"
#include "ompx/ompx.hpp"
#include "prof/profiler.hpp"
#include "threading/affinity.hpp"
#include "trace/trace.hpp"

namespace {

using namespace mcl;

struct SimResultRow {
  std::uint64_t aligned_cycles;
  std::uint64_t misaligned_cycles;
  cachesim::CoherenceStats aligned_coherence;
  cachesim::CoherenceStats misaligned_coherence;
};

/// Replays the two kernels' memory traces through the simulated machine.
SimResultRow simulate_affinity(std::size_t n, int cores,
                               bool prefetch = false) {
  const std::uint64_t base_a = 0x0100'0000, base_b = 0x0200'0000,
                      base_c = 0x0300'0000, base_d = 0x0400'0000;
  auto run = [&](bool aligned) {
    cachesim::MachineConfig cfg = cachesim::MachineConfig::xeon_e5645(cores);
    cfg.prefetch_next_line = prefetch;
    cachesim::Machine m(cfg);
    const std::size_t slice = n / cores;
    const auto kernel_pair = [&] {
      // Kernel 1: c[i] = a[i] + b[i]
      for (int c = 0; c < cores; ++c) {
        for (std::size_t i = c * slice; i < (c + 1) * slice; ++i) {
          m.access(c, base_a + i * 4, 4, false);
          m.access(c, base_b + i * 4, 4, false);
          m.access(c, base_c + i * 4, 4, true);
        }
      }
      // Kernel 2: d[i] = c[i] * b[i]
      for (int c = 0; c < cores; ++c) {
        const int owner = aligned ? c : (c + 1) % cores;
        for (std::size_t i = owner * slice; i < (owner + 1) * slice; ++i) {
          m.access(c, base_c + i * 4, 4, false);
          m.access(c, base_b + i * 4, 4, false);
          m.access(c, base_d + i * 4, 4, true);
        }
      }
    };
    // The paper re-executes the kernel pair until 90 s accumulate, so what
    // it reports is the steady state: warm one iteration, measure the next.
    kernel_pair();
    m.reset_cycles();
    m.reset_stats();
    kernel_pair();
    return std::make_pair(m.makespan_cycles(), m.coherence());
  };
  const auto [ac, acoh] = run(true);
  const auto [mc, mcoh] = run(false);
  return SimResultRow{ac, mc, acoh, mcoh};
}

/// Same experiment with real threads pinned via the ompx affinity controls
/// (meaningful only on multi-core hosts; reported for completeness).
std::pair<double, double> run_real(std::size_t n, int cores,
                                   const core::MeasureOptions& opts) {
  apps::FloatVec a = apps::random_floats(n, 1), b = apps::random_floats(n, 2);
  apps::FloatVec c(n, 0.0f), d(n, 0.0f);
  ompx::Team team(ompx::TeamOptions{
      .threads = static_cast<std::size_t>(cores), .proc_bind = true, .affinity_list = {}});

  auto run_once = [&](bool aligned) {
    const std::size_t slice = n / cores;
    team.run([&](std::size_t tid) {
      const std::size_t lo = tid * slice;
      for (std::size_t i = lo; i < lo + slice; ++i) c[i] = a[i] + b[i];
    });
    team.run([&](std::size_t tid) {
      const std::size_t owner = aligned ? tid : (tid + 1) % cores;
      const std::size_t lo = owner * slice;
      for (std::size_t i = lo; i < lo + slice; ++i) d[i] = c[i] * b[i];
    });
  };
  const double t_aligned =
      core::measure([&] { run_once(true); }, opts).per_iter_s;
  const double t_misaligned =
      core::measure([&] { run_once(false); }, opts).per_iter_s;
  return {t_aligned, t_misaligned};
}

// --trace addendum: one aligned and one misaligned replay of the dependent
// kernel pair under a fresh trace session, in both execution styles —
// real-thread phases via ompx (region + per-tid work spans) and the MiniCL
// pinned-launch extension (per-workgroup spans tagged with the CPU each
// group ran on), so the shifted mapping is visible directly on the timeline.
void trace_addendum(bench::Env& env, std::size_t n, int cores) {
  env.restart_trace();

  {
    apps::FloatVec a = apps::random_floats(n, 1), b = apps::random_floats(n, 2);
    apps::FloatVec c(n, 0.0f), d(n, 0.0f);
    ompx::Team team(ompx::TeamOptions{
        .threads = static_cast<std::size_t>(cores), .proc_bind = true});
    const std::size_t slice = n / cores;
    for (const bool aligned : {true, false}) {
      MCL_TRACE_INSTANT(aligned ? "fig09.ompx.aligned"
                                : "fig09.ompx.misaligned");
      team.run([&](std::size_t tid) {
        const std::size_t lo = tid * slice;
        for (std::size_t i = lo; i < lo + slice; ++i) c[i] = a[i] + b[i];
      });
      team.run([&](std::size_t tid) {
        const std::size_t owner =
            aligned ? tid : (tid + 1) % static_cast<std::size_t>(cores);
        const std::size_t lo = owner * slice;
        for (std::size_t i = lo; i < lo + slice; ++i) d[i] = c[i] * b[i];
      });
    }
  }

  ocl::Context ctx(env.platform().cpu());
  ocl::CommandQueue q(ctx);
  bench::VectorAddDriver driver(n, env.seed());
  // One workgroup per "core slice": group g computes slice g.
  const ocl::NDRange global = driver.global();
  const ocl::NDRange local{n / static_cast<std::size_t>(cores)};
  std::vector<int> map(static_cast<std::size_t>(cores));
  for (const bool aligned : {true, false}) {
    for (std::size_t g = 0; g < map.size(); ++g) {
      map[g] = static_cast<int>(aligned ? g : (g + 1) % map.size());
    }
    MCL_TRACE_INSTANT(aligned ? "fig09.pinned.aligned"
                              : "fig09.pinned.misaligned");
    (void)q.enqueue_ndrange_pinned(driver.kernel(), global, local, map);
  }
}

// --profile addendum: one aligned and one misaligned pinned launch, each
// bracketed by KernelProfile snapshots, so the counter deltas (cycles,
// cache misses when hardware counters are up; wall seconds and GB/s always)
// attribute to exactly one mapping. On a multi-core host with perf access
// the misaligned row shows the extra cache misses the simulator predicts.
void profile_addendum(bench::Env& env, std::size_t n, int cores) {
  ocl::Context ctx(env.platform().cpu());
  ocl::CommandQueue q(ctx);
  bench::VectorAddDriver driver(n, env.seed());
  const ocl::NDRange global = driver.global();
  const ocl::NDRange local{n / static_cast<std::size_t>(cores)};
  const std::string kname = driver.kernel().def().name;
  std::vector<int> map(static_cast<std::size_t>(cores));

  core::Table t("Figure 9 profile addendum (mclprof, pinned launches)",
                {"mapping", "src", "cycles", "cache misses", "seconds",
                 "GB/s"});
  for (const bool aligned : {true, false}) {
    for (std::size_t g = 0; g < map.size(); ++g) {
      map[g] = static_cast<int>(aligned ? g : (g + 1) % map.size());
    }
    const prof::KernelProfile before = prof::kernel_profile(kname);
    (void)q.enqueue_ndrange_pinned(driver.kernel(), global, local, map);
    const prof::KernelProfile delta =
        prof::kernel_profile(kname).minus(before);
    t.add_row({std::string(aligned ? "aligned" : "misaligned"),
               std::string(delta.hardware ? "hw" : "sw"),
               static_cast<double>(delta.cycles),
               static_cast<double>(delta.cache_misses), delta.seconds,
               delta.achieved_gbps()});
  }
  t.emit(env.csv(), env.json(), env.md());
}

}  // namespace

int main(int argc, char** argv) {
  bench::Env env;
  if (!env.init(argc, argv,
                "Figure 9: CPU affinity, aligned vs misaligned kernel->core "
                "mapping"))
    return 0;

  const int cores = 8;  // the paper distributes over eight cores
  // Size so each core's slices of b/c/d together fit its private L2 (the
  // regime the paper measured): larger sets overflow L2 even when aligned
  // and the locality advantage disappears for both mappings alike.
  const std::size_t n = env.size<std::size_t>(1 << 14, 1 << 16, 1 << 17);

  core::Table t("Figure 9 - affinity impact (cache simulator, E5645-like)",
                {"mapping", "total cycles", "slowdown vs aligned",
                 "remote M transfers", "invalidations"});
  const SimResultRow sim = simulate_affinity(n, cores);
  t.add_row({std::string("aligned"), static_cast<double>(sim.aligned_cycles),
             1.0, static_cast<double>(sim.aligned_coherence.remote_transfers),
             static_cast<double>(sim.aligned_coherence.invalidations)});
  t.add_row({std::string("misaligned"),
             static_cast<double>(sim.misaligned_cycles),
             static_cast<double>(sim.misaligned_cycles) /
                 static_cast<double>(sim.aligned_cycles),
             static_cast<double>(sim.misaligned_coherence.remote_transfers),
             static_cast<double>(sim.misaligned_coherence.invalidations)});
  // Robustness row: the effect must survive a next-line prefetcher (the
  // streamer hides sequential misses for BOTH mappings, not the coherence
  // transfers the misaligned mapping suffers).
  const SimResultRow pf = simulate_affinity(n, cores, true);
  t.add_row({std::string("aligned + prefetcher"),
             static_cast<double>(pf.aligned_cycles), 1.0,
             static_cast<double>(pf.aligned_coherence.remote_transfers),
             static_cast<double>(pf.aligned_coherence.invalidations)});
  t.add_row({std::string("misaligned + prefetcher"),
             static_cast<double>(pf.misaligned_cycles),
             static_cast<double>(pf.misaligned_cycles) /
                 static_cast<double>(pf.aligned_cycles),
             static_cast<double>(pf.misaligned_coherence.remote_transfers),
             static_cast<double>(pf.misaligned_coherence.invalidations)});
  t.emit(env.csv(), env.json(), env.md());

  core::Table rt("Figure 9 (reference) - real threads via ompx proc_bind",
                 {"mapping", "seconds/iter", "slowdown vs aligned",
                  "host logical CPUs"});
  const auto [ta, tm] = run_real(n, cores, env.opts());
  const double host_cpus = threading::logical_cpu_count();
  rt.add_row({std::string("aligned"), ta, 1.0, host_cpus});
  rt.add_row({std::string("misaligned"), tm, tm / ta, host_cpus});
  rt.emit(env.csv(), env.json(), env.md());

  if (host_cpus < cores) {
    std::printf(
        "\nnote: host exposes %d logical CPU(s) < %d requested cores; the\n"
        "real-thread run time-shares and will not show the private-cache\n"
        "effect — the simulator rows above are the Fig 9 reproduction.\n",
        static_cast<int>(host_cpus), cores);
  }

  if (env.tracing()) trace_addendum(env, n, cores);
  if (env.profiling()) profile_addendum(env, n, cores);
  return 0;
}
