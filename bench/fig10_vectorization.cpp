// Figure 10 — performance impact of vectorization policy: MBench1-8 as
// OpenMP loops (auto-vectorized only when veclegal proves legality) vs
// OpenCL kernels (SPMD-vectorized across workitems). Reported in Gflop/s,
// as in the paper's log-scale figure.
//
// Expected shape: OpenCL >= OpenMP everywhere; large gaps exactly where the
// loop vectorizer refuses (MBench2/3/5/6/7).
#include "apps/hostdata.hpp"
#include "apps/mbench.hpp"
#include "common.hpp"
#include "ompx/ompx.hpp"
#include "simd/vec.hpp"
#include "veclegal/analysis.hpp"

int main(int argc, char** argv) {
  using namespace mcl;
  bench::Env env;
  if (!env.init(argc, argv,
                "Figure 10: OpenMP (loop vectorizer) vs OpenCL (SPMD "
                "vectorizer), MBench1-8"))
    return 0;

  const std::size_t n = env.size<std::size_t>(1 << 16, 1 << 20, 1 << 22);

  ompx::Team team;
  ocl::Context ctx(env.platform().cpu());
  ocl::CommandQueue q(ctx);

  core::Table t("Figure 10 - vectorization: Gflop/s by programming model",
                {"benchmark", "loop-vectorizable?", "OpenMP Gflop/s",
                 "OpenCL Gflop/s", "OpenCL/OpenMP"});

  for (const apps::MBenchInfo& mb : apps::all_mbenches()) {
    const veclegal::Verdict loop_v =
        veclegal::analyze(mb.ir, veclegal::Model::Loop, simd::kNativeFloatWidth);
    const veclegal::Verdict spmd_v =
        veclegal::analyze(mb.ir, veclegal::Model::Spmd);

    // Fresh data per benchmark (MBench2/5 mutate a).
    apps::FloatVec a_omp = apps::random_floats(3 * n + 1, env.seed(), 0.9f, 1.1f);
    apps::FloatVec a_ocl = a_omp;
    const apps::FloatVec b = apps::random_floats(n, env.seed() + 1, 0.9f, 1.1f);
    apps::FloatVec c_omp(2 * n, 0.0f), c_ocl(2 * n, 0.0f);

    // OpenMP path: the compiler emits the vector body only when legal.
    apps::MBenchData d{a_omp.data(), b.data(), c_omp.data(), 1.5f, n};
    const apps::LoopFn body =
        loop_v.vectorizable ? mb.loop_simd : mb.loop_scalar;
    const double omp_t =
        core::measure(
            [&] {
              team.parallel_for_ranges(
                  0, n,
                  [&](std::size_t lo, std::size_t hi) { body(d, lo, hi); });
            },
            env.opts())
            .per_iter_s;

    // OpenCL path: SPMD vectorization across workitems (always legal here).
    ocl::Buffer ba(ocl::MemFlags::ReadWrite | ocl::MemFlags::UseHostPtr,
                   a_ocl.size() * 4, a_ocl.data());
    ocl::Buffer bb(ocl::MemFlags::ReadOnly | ocl::MemFlags::CopyHostPtr, n * 4,
                   const_cast<float*>(b.data()));
    ocl::Buffer bc(ocl::MemFlags::ReadWrite | ocl::MemFlags::UseHostPtr,
                   c_ocl.size() * 4, c_ocl.data());
    ocl::Kernel k = ctx.create_kernel(ocl::Program::builtin(), mb.kernel);
    k.set_arg(0, ba);
    k.set_arg(1, bb);
    k.set_arg(2, bc);
    k.set_arg(3, 1.5f);
    const double ocl_t =
        bench::time_launch(q, k, ocl::NDRange{n}, ocl::NDRange{1024}, env.opts());

    const double flops = static_cast<double>(n) * mb.flops_per_elem;
    t.add_row({std::string(mb.name),
               std::string(loop_v.vectorizable ? "yes" : "no"),
               flops / omp_t / 1e9, flops / ocl_t / 1e9, omp_t / ocl_t});
    (void)spmd_v;
  }
  t.emit(env.csv(), env.json(), env.md());

  std::vector<std::string> kernels;
  for (const apps::MBenchInfo& mb : apps::all_mbenches())
    kernels.emplace_back(mb.kernel);
  bench::emit_profile_addendum(
      env, "Figure 10 profile addendum (mclprof, OpenCL launches)", kernels);
  return 0;
}
