// Figure 11 — vectorization on OpenCL vs OpenMP. The paper shows a loop of
// six dependent FMULs that the OpenMP compiler cannot vectorize while the
// OpenCL kernel compiler can (it packs workitems, not iterations). This
// binary runs the legality analyzer on that exact body and on MBench1-8,
// printing both models' verdicts with their reasons.
#include <iostream>

#include "apps/mbench.hpp"
#include "common.hpp"
#include "simd/vec.hpp"
#include "veclegal/analysis.hpp"
#include "veclegal/nest.hpp"

int main(int argc, char** argv) {
  using namespace mcl;
  bench::Env env;
  if (!env.init(argc, argv,
                "Figure 11: vectorization-legality verdicts (loop vs SPMD)"))
    return 0;

  using namespace veclegal;

  // The paper's Fig 11 body:
  //   for (int j = 0; j < 4; j++) {
  //     FMUL(_a[j], _b[j])  x6   // a[j] = a[j] * b[j], six times
  //   }
  LoopBody fig11{.name = "Fig11 FMUL chain", .stmts = {}, .trip_count = 4};
  for (int i = 0; i < 6; ++i) {
    fig11.stmts.push_back(
        store(ref(0), {ref(0), ref(1)}, "FMUL(_a[j], _b[j])"));
  }
  std::cout << "\n" << explain_both(fig11, simd::kNativeFloatWidth) << "\n";

  core::Table t("Figure 11 - legality verdicts per benchmark",
                {"body", "loop model", "SPMD model", "first loop-model reason"});
  auto add = [&](const LoopBody& body, const std::string& label) {
    const Verdict lv = analyze(body, Model::Loop, simd::kNativeFloatWidth);
    const Verdict sv = analyze(body, Model::Spmd);
    t.add_row({label, std::string(lv.vectorizable ? "vectorizable" : "refused"),
               std::string(sv.vectorizable ? "vectorizable" : "refused"),
               lv.reasons.empty() ? std::string() : lv.reasons.front()});
  };
  add(fig11, "Fig11 FMUL chain");
  for (const apps::MBenchInfo& mb : apps::all_mbenches()) add(mb.ir, mb.name);
  t.emit(env.csv(), env.json(), env.md());

  // Extension: two-level nests — the shapes a 2D OpenMP port presents to a
  // loop vectorizer, with distance-vector verdicts and the interchange
  // strategy (see src/veclegal/nest.hpp).
  core::Table nt("Extension - loop-nest verdicts (i outer, j inner)",
                 {"nest", "inner vectorizable?", "interchange legal?",
                  "strategy"});
  auto add_nest = [&](const veclegal::LoopNest& nest) {
    nt.add_row({nest.name,
                std::string(veclegal::analyze_inner(nest).vectorizable
                                ? "yes"
                                : "no"),
                std::string(veclegal::can_interchange(nest).vectorizable
                                ? "yes"
                                : "no"),
                veclegal::vectorization_strategy(nest)});
  };
  using veclegal::ArrayRef2;
  using veclegal::LoopNest;
  using veclegal::Stmt2;
  auto ref2 = [](int array, long long i_off, long long j_off) {
    return ArrayRef2{array, {{1, 0, i_off}, {0, 1, j_off}}};
  };
  auto nest_of = [&](const char* name, ArrayRef2 w,
                     std::vector<ArrayRef2> reads, const char* text) {
    Stmt2 st;
    st.array_write = std::move(w);
    st.array_reads = std::move(reads);
    st.text = text;
    return LoopNest{name, 128, 128, {st}};
  };
  add_nest(nest_of("a[i][j] = b[i][j]", ref2(0, 0, 0), {ref2(1, 0, 0)},
                   "elementwise"));
  add_nest(nest_of("a[i][j] = a[i][j-1]", ref2(0, 0, 0), {ref2(0, 0, -1)},
                   "inner recurrence"));
  add_nest(nest_of("a[i][j] = a[i-1][j]", ref2(0, 0, 0), {ref2(0, -1, 0)},
                   "outer recurrence"));
  add_nest(nest_of("a[i][j] = a[i-1][j+1]", ref2(0, 0, 0), {ref2(0, -1, 1)},
                   "anti-diagonal"));
  add_nest(nest_of("a[i][j] = a[i][j-1] + a[i-1][j]", ref2(0, 0, 0),
                   {ref2(0, 0, -1), ref2(0, -1, 0)}, "wavefront"));
  nt.emit(env.csv(), env.json(), env.md());
  return 0;
}
