// Micro-benchmark regression guards (google-benchmark): the primitive costs
// the figure-level results are built from — SIMD math throughput, thread-
// pool dispatch, NDRange launch overhead, fiber barrier switches, and the
// map-vs-copy primitive gap.
#include <benchmark/benchmark.h>

#include <vector>

#include "apps/hostdata.hpp"
#include "obs/obs.hpp"
#include "ocl/platform.hpp"
#include "ocl/queue.hpp"
#include "simd/math.hpp"
#include "prof/metrics.hpp"
#include "threading/fiber.hpp"
#include "threading/thread_pool.hpp"
#include "trace/trace.hpp"

namespace {

using namespace mcl;

// --- SIMD math vs libm -------------------------------------------------------

void BM_ExpScalarLibm(benchmark::State& state) {
  const apps::FloatVec in = apps::random_floats(4096, 1, -10.0f, 10.0f);
  apps::FloatVec out(4096);
  for (auto _ : state) {
    for (std::size_t i = 0; i < in.size(); ++i) out[i] = std::exp(in[i]);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_ExpScalarLibm);

void BM_ExpSimd(benchmark::State& state) {
  const apps::FloatVec in = apps::random_floats(4096, 1, -10.0f, 10.0f);
  apps::FloatVec out(4096);
  constexpr int w = simd::kNativeFloatWidth;
  for (auto _ : state) {
    for (std::size_t i = 0; i < in.size(); i += w) {
      simd::vexp(simd::vfloatn::load_aligned(in.data() + i))
          .store_aligned(out.data() + i);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_ExpSimd);

void BM_NormalCdfSimd(benchmark::State& state) {
  const apps::FloatVec in = apps::random_floats(4096, 2, -5.0f, 5.0f);
  apps::FloatVec out(4096);
  constexpr int w = simd::kNativeFloatWidth;
  for (auto _ : state) {
    for (std::size_t i = 0; i < in.size(); i += w) {
      simd::normal_cdf(simd::vfloatn::load_aligned(in.data() + i))
          .store_aligned(out.data() + i);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_NormalCdfSimd);

// --- thread pool dispatch -----------------------------------------------------

void BM_PoolParallelRun(benchmark::State& state) {
  threading::ThreadPool pool(2);
  const auto tasks = static_cast<std::size_t>(state.range(0));
  std::atomic<std::size_t> sink{0};
  for (auto _ : state) {
    pool.parallel_run(tasks, [&](std::size_t i) {
      sink.fetch_add(i, std::memory_order_relaxed);
    });
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(tasks));
}
BENCHMARK(BM_PoolParallelRun)->Arg(1)->Arg(64)->Arg(4096);

// --- NDRange launch overhead ---------------------------------------------------

void BM_NDRangeLaunch(benchmark::State& state) {
  // Tiny kernel: the launch cost (validation + partition + dispatch)
  // dominates; this is the per-launch constant the Fig 1/3 effects sit on.
  ocl::CpuDevice device(ocl::CpuDeviceConfig{.threads = 2});
  ocl::Context ctx(device);
  ocl::CommandQueue q(ctx);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  ocl::Buffer bin(ocl::MemFlags::ReadWrite, n * 4);
  ocl::Buffer bout(ocl::MemFlags::ReadWrite, n * 4);
  ocl::Kernel k = ctx.create_kernel(ocl::Program::builtin(), "square");
  k.set_arg(0, bin);
  k.set_arg(1, bout);
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.enqueue_ndrange(k, ocl::NDRange{n}).seconds);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_NDRangeLaunch)->Arg(64)->Arg(4096)->Arg(262144);

// --- fiber switches --------------------------------------------------------------

void BM_FiberBarrierRound(benchmark::State& state) {
  const auto fibers = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    threading::run_fiber_group(fibers,
                               [](std::size_t, threading::FiberYield& y) {
                                 y.barrier();
                                 y.barrier();
                               });
  }
  // two barriers + start/finish per fiber per iteration
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fibers) * 4);
}
BENCHMARK(BM_FiberBarrierRound)->Arg(16)->Arg(256);

// --- map vs copy primitive --------------------------------------------------------

void BM_TransferCopy(benchmark::State& state) {
  ocl::CpuDevice device;
  ocl::Context ctx(device);
  ocl::CommandQueue q(ctx);
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  ocl::Buffer buf(ocl::MemFlags::ReadWrite, bytes);
  std::vector<std::byte> host(bytes);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        q.enqueue_write_buffer(buf, 0, bytes, host.data()).seconds);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_TransferCopy)->Arg(1 << 12)->Arg(1 << 20)->Arg(1 << 24);

void BM_TransferMap(benchmark::State& state) {
  ocl::CpuDevice device;
  ocl::Context ctx(device);
  ocl::CommandQueue q(ctx);
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  ocl::Buffer buf(ocl::MemFlags::ReadWrite, bytes);
  for (auto _ : state) {
    void* p = q.enqueue_map_buffer(buf, ocl::MapFlags::Write, 0, bytes);
    benchmark::DoNotOptimize(p);
    (void)q.enqueue_unmap(buf, p);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_TransferMap)->Arg(1 << 12)->Arg(1 << 20)->Arg(1 << 24);

// --- mcltrace overhead -------------------------------------------------------

// The always-on contract: with tracing off, an instrumentation site costs
// one relaxed atomic load. This guard is the "no measurable regression with
// MCL_TRACE unset" acceptance check in code form.
void BM_TraceScopeDisabled(benchmark::State& state) {
  for (auto _ : state) {
    MCL_TRACE_SCOPE("bench.disabled", "i", 1);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_TraceScopeDisabled);

// mclobs shares the contract: with observability off, the launch-path gate
// (obs::enabled()) is one relaxed atomic load and a not-taken branch. The
// body mirrors the real instrumentation sites in queue.cpp/serve.cpp.
void BM_ObsDisabled(benchmark::State& state) {
  obs::set_enabled(false);
  std::uint64_t ctx = 0;
  for (auto _ : state) {
    if (obs::enabled()) ctx = obs::ensure_context();
    benchmark::DoNotOptimize(ctx);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ObsDisabled);

// Enabled cost per span: two clock reads + one SPSC ring push. start(0)
// disables the drainer thread; the ring wraps and drops, which is fine —
// push cost is identical either way.
void BM_TraceScopeEnabled(benchmark::State& state) {
  trace::start(0);
  for (auto _ : state) {
    MCL_TRACE_SCOPE("bench.enabled", "i", 1);
    benchmark::ClobberMemory();
  }
  trace::stop();
}
BENCHMARK(BM_TraceScopeEnabled);

// --- mclprof overhead --------------------------------------------------------

// Same always-on contract as MCL_TRACE_SCOPE: with metrics off, a counter
// site costs one relaxed atomic load and a not-taken branch (the ISSUE's
// "counters-disabled site <= 2 ns" acceptance guard).
void BM_MetricsDisabled(benchmark::State& state) {
  prof::set_enabled(false);
  for (auto _ : state) {
    MCL_PROF_COUNT("bench.prof_disabled", 1);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_MetricsDisabled);

// Enabled cost: one relaxed fetch_add in this thread's shard (counters) or
// a bucket index + fetch_add (histograms). No locks on the hot path.
void BM_MetricsEnabled(benchmark::State& state) {
  prof::set_enabled(true);
  for (auto _ : state) {
    MCL_PROF_COUNT("bench.prof_enabled", 1);
    benchmark::ClobberMemory();
  }
  prof::set_enabled(false);
}
BENCHMARK(BM_MetricsEnabled);

void BM_MetricsHistEnabled(benchmark::State& state) {
  prof::set_enabled(true);
  std::uint64_t v = 1;
  for (auto _ : state) {
    MCL_PROF_HIST("bench.prof_hist", v);
    v = (v * 2) | 1;
    benchmark::ClobberMemory();
  }
  prof::set_enabled(false);
}
BENCHMARK(BM_MetricsHistEnabled);

}  // namespace

BENCHMARK_MAIN();
