// Shared Parboil workload setup for fig02 / fig05 / fig08: builds the input
// sets of Table III (scaled by Env unless --full) and offers one-call timing
// of each kernel under a given local size and coalescing factor.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "apps/hostdata.hpp"
#include "apps/parboil.hpp"
#include "common.hpp"

namespace mcl::bench {

struct ParboilSizes {
  std::size_t cp_gx, cp_gy, natoms;
  std::size_t mri_small;   ///< computePhiMag / RhoPhi sample count
  std::size_t mri_big;     ///< computeQ / FH sample count
  std::size_t num_k;       ///< k-space samples in the inner loop
};

[[nodiscard]] inline ParboilSizes parboil_sizes(const Env& env) {
  ParboilSizes s;
  s.cp_gx = env.size<std::size_t>(128, 512, 512);
  s.cp_gy = env.size<std::size_t>(16, 64, 64);
  s.natoms = env.size<std::size_t>(64, 400, 4000);
  s.mri_small = 3072;  // paper size already tiny
  s.mri_big = env.size<std::size_t>(2048, 4096, 32768);
  s.num_k = env.size<std::size_t>(64, 512, 3072);
  return s;
}

/// Owns buffers + kernel for one Parboil kernel; time() measures a launch.
class ParboilDriver {
 public:
  ParboilDriver(const std::string& kernel_name, const ParboilSizes& s,
                std::uint64_t seed)
      : name_(kernel_name), sizes_(s), seed_(seed) {
    build();
  }

  /// Global size for coalescing factor `per_item` (shrinks dim 0).
  [[nodiscard]] ocl::NDRange global(unsigned per_item = 1) const {
    if (name_ == apps::kCpCenergyKernel) {
      return ocl::NDRange(sizes_.cp_gx / per_item, sizes_.cp_gy);
    }
    if (name_ == apps::kMriqPhiMagKernel || name_ == apps::kMrifhdRhoPhiKernel) {
      return ocl::NDRange{sizes_.mri_small / per_item};
    }
    return ocl::NDRange{sizes_.mri_big / per_item};
  }

  [[nodiscard]] double time(ocl::CommandQueue& queue, const ocl::NDRange& local,
                            unsigned per_item,
                            const core::MeasureOptions& opts) {
    set_per_item(per_item);
    return time_launch(queue, *kernel_, global(per_item), local, opts);
  }

  /// (bytes in, bytes out) moved per invocation — used by the Fig 8 bench.
  [[nodiscard]] std::pair<std::size_t, std::size_t> transfer_bytes() const {
    std::size_t in = 0, out = 0;
    for (const auto& [buf, is_input] : traffic_) {
      (is_input ? in : out) += buf->size();
    }
    return {in, out};
  }
  [[nodiscard]] const std::vector<std::pair<ocl::Buffer*, bool>>& traffic()
      const {
    return traffic_;
  }

 private:
  void set_per_item(unsigned per_item) {
    kernel_->set_arg(per_item_index_, per_item);
  }

  ocl::Buffer& add(std::size_t floats, bool is_input, std::uint64_t salt,
                   float lo = -1.0f, float hi = 1.0f) {
    if (is_input) {
      apps::FloatVec data = apps::random_floats(floats, seed_ + salt, lo, hi);
      buffers_.push_back(std::make_unique<ocl::Buffer>(
          ocl::MemFlags::ReadOnly | ocl::MemFlags::CopyHostPtr, floats * 4,
          data.data()));
    } else {
      buffers_.push_back(std::make_unique<ocl::Buffer>(
          ocl::MemFlags::ReadWrite, floats * 4));
    }
    traffic_.emplace_back(buffers_.back().get(), is_input);
    return *buffers_.back();
  }

  void build() {
    kernel_ = std::make_unique<ocl::Kernel>(
        ocl::Program::builtin().lookup(name_));
    const ParboilSizes& s = sizes_;
    if (name_ == apps::kCpCenergyKernel) {
      kernel_->set_arg(0, add(s.natoms * 4, true, 1, 0.5f, 10.0f));
      kernel_->set_arg(1, add(s.cp_gx * s.cp_gy, false, 2));
      kernel_->set_arg(2, static_cast<unsigned>(s.natoms));
      kernel_->set_arg(3, 0.1f);
      kernel_->set_arg(4, 1.5f);
      per_item_index_ = 5;
    } else if (name_ == apps::kMriqPhiMagKernel) {
      kernel_->set_arg(0, add(s.mri_small, true, 1));
      kernel_->set_arg(1, add(s.mri_small, true, 2));
      kernel_->set_arg(2, add(s.mri_small, false, 3));
      per_item_index_ = 3;
    } else if (name_ == apps::kMriqComputeQKernel) {
      for (std::size_t i = 0; i < 3; ++i) {
        kernel_->set_arg(i, add(s.mri_big, true, i + 1, -0.5f, 0.5f));
      }
      for (std::size_t i = 3; i < 7; ++i) {
        kernel_->set_arg(i, add(s.num_k, true, i + 1));
      }
      kernel_->set_arg(7, add(s.mri_big, false, 11));
      kernel_->set_arg(8, add(s.mri_big, false, 12));
      kernel_->set_arg(9, static_cast<unsigned>(s.num_k));
      per_item_index_ = 10;
    } else if (name_ == apps::kMrifhdRhoPhiKernel) {
      for (std::size_t i = 0; i < 4; ++i) {
        kernel_->set_arg(i, add(s.mri_small, true, i + 1));
      }
      kernel_->set_arg(4, add(s.mri_small, false, 11));
      kernel_->set_arg(5, add(s.mri_small, false, 12));
      per_item_index_ = 6;
    } else if (name_ == apps::kMrifhdFhKernel) {
      for (std::size_t i = 0; i < 3; ++i) {
        kernel_->set_arg(i, add(s.mri_big, true, i + 1, -0.5f, 0.5f));
      }
      for (std::size_t i = 3; i < 8; ++i) {
        kernel_->set_arg(i, add(s.num_k, true, i + 1));
      }
      kernel_->set_arg(8, add(s.mri_big, false, 11));
      kernel_->set_arg(9, add(s.mri_big, false, 12));
      kernel_->set_arg(10, static_cast<unsigned>(s.num_k));
      per_item_index_ = 11;
    } else {
      throw core::Error(core::Status::InvalidKernelName,
                        "unknown Parboil kernel " + name_);
    }
  }

  std::string name_;
  ParboilSizes sizes_;
  std::uint64_t seed_;
  std::vector<std::unique_ptr<ocl::Buffer>> buffers_;
  std::vector<std::pair<ocl::Buffer*, bool>> traffic_;  ///< (buffer, is_input)
  std::unique_ptr<ocl::Kernel> kernel_;
  std::size_t per_item_index_ = 0;
};

}  // namespace mcl::bench
