// Closed-loop load harness for mclserve (docs/serve.md).
//
// N client threads — one per tenant — drive a shared Server with mixed
// profiles (batched small launches, bulk launches, write/launch/read
// transfer chains, in-order streams, and a reject-policy burst tenant that
// retries on admission failure). Each client keeps a bounded window of
// requests outstanding (closed loop: a new request is only submitted once
// an old one retired), so offered load tracks service rate instead of
// overrunning the queues.
//
// Latency percentiles come from the always-on mclprof histograms the server
// records into ("serve.latency_ns" and the per-tenant variants); the harness
// enables metrics recording, runs the configured request count, and writes a
// single-object JSON document (--json, default BENCH_serve.json) with the
// throughput timeline and per-tenant accounting. tools/plot_results.py
// --check validates the document (monotonic timeline, p50 <= p99 <= p999,
// conservation of requests per tenant).
//
// The harness fails (exit 1) when any ticket is lost or hung: every
// submitted request must retire as completed within the deadline, and the
// server must end with zero in-flight commands.
//
//   build/bench/serve_load --requests 1000000 --tenants 8 --seed 42
//   build/bench/serve_load --quick          # tier-1 smoke (50k requests)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "check/case.hpp"
#include "check/generator.hpp"
#include "check/interp.hpp"
#include "core/time.hpp"
#include "obs/obs.hpp"
#include "ocl/queue.hpp"
#include "prof/metrics.hpp"
#include "serve/serve.hpp"
#include "tune/tune.hpp"
#include "veclegal/kernel_ir.hpp"

namespace {

using namespace mcl;

struct Options {
  std::size_t requests = 1'000'000;  ///< total across all tenants
  std::size_t tenants = 8;
  std::uint64_t seed = 42;
  std::string json = "BENCH_serve.json";
  bool quick = false;
  bool obs = false;          ///< mclobs: exact critical-path accounting
  std::string obs_dump;      ///< write a .mclobs snapshot here at exit
};

/// xorshift64* — deterministic per-client jitter without <random> overhead.
std::uint64_t next_rand(std::uint64_t& state) {
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return state * 0x2545F4914F6CDD1DULL;
}

/// The tenant archetypes the load mix cycles through.
enum class Profile { Small, Bulk, Chain, InOrder, Burst, Generated };

const char* profile_name(Profile p) {
  switch (p) {
    case Profile::Small: return "small-batched";
    case Profile::Bulk: return "bulk";
    case Profile::Chain: return "transfer-chain";
    case Profile::InOrder: return "in-order";
    case Profile::Burst: return "burst-reject";
    case Profile::Generated: return "generated";
  }
  return "?";
}

/// mclcheck-generated kernels for the Generated profile (ISSUE 8 satellite):
/// serve traffic that exercises arbitrary generated programs — and the
/// tuner's feature/candidate machinery — rather than only the five paper
/// kernels. Built once on the main thread before any client spawns
/// (Program::builtin().add and the IR registry are not safe to mutate
/// concurrently); clients resolve them by name like any registered kernel.
struct GeneratedKernels {
  std::vector<check::Case> cases;  ///< stable storage; kernels read via Case*
  std::vector<std::string> names;
};
GeneratedKernels g_generated;

constexpr std::size_t kGeneratedKernels = 6;

void register_generated_kernels(std::uint64_t run_seed) {
  g_generated.cases.reserve(kGeneratedKernels);
  for (std::size_t i = 0; i < kGeneratedKernels; ++i) {
    g_generated.cases.push_back(
        check::generate_case(check::case_seed(run_seed, i)));
  }
  for (const check::Case& c : g_generated.cases) {
    ocl::KernelDef def = check::make_kernel_def(c, /*with_simd=*/false);
    def.name = "gen." + std::to_string(c.seed);
    g_generated.names.push_back(def.name);
    // Register the lowered IR too so mclverify facts (and tuner features)
    // exist for generated kernels exactly as for the paper kernels.
    veclegal::KernelIrRegistry::instance().add(def.name, check::lower_to_ir(c));
    ocl::Program::builtin().add(std::move(def));
  }
}

serve::TenantConfig tenant_config(Profile profile, const std::string& name) {
  serve::TenantConfig cfg;
  cfg.name = name;
  switch (profile) {
    case Profile::Small:
      // Many tiny contiguous launches: the batcher's target workload.
      cfg.weight = 1.0;
      cfg.max_queue_depth = 128;
      cfg.batch_max_items = 4096;
      break;
    case Profile::Bulk:
      cfg.weight = 4.0;
      cfg.max_queue_depth = 32;
      break;
    case Profile::Chain:
      cfg.weight = 2.0;
      cfg.max_queue_depth = 96;
      break;
    case Profile::InOrder:
      cfg.weight = 1.0;
      cfg.max_queue_depth = 64;
      cfg.in_order = true;
      break;
    case Profile::Burst:
      cfg.weight = 1.0;
      cfg.max_queue_depth = 16;
      cfg.admission = serve::AdmissionPolicy::Reject;
      break;
    case Profile::Generated:
      cfg.weight = 1.0;
      cfg.max_queue_depth = 64;
      break;
  }
  return cfg;
}

struct ClientResult {
  std::size_t submitted = 0;
  std::size_t retries = 0;  ///< reject-policy re-submissions
  bool ok = true;
  std::string error;
};

/// One closed-loop client. Keeps at most `window` tickets outstanding,
/// waiting on the oldest before submitting a replacement.
void run_client(serve::Session session, Profile profile, std::size_t requests,
                std::uint64_t seed, std::atomic<std::size_t>& completed,
                ClientResult& result) {
  using namespace std::chrono_literals;
  constexpr std::size_t kSmallItems = 64;
  constexpr std::size_t kBulkItems = 4096;
  constexpr std::size_t kChainBytes = 16 * 1024;

  ocl::Buffer in(ocl::MemFlags::ReadWrite, kBulkItems * 4);
  ocl::Buffer out(ocl::MemFlags::ReadWrite, kBulkItems * 4);
  std::uint64_t rng = seed;

  const std::size_t window = profile == Profile::Burst ? 8 : 32;

  // Bulk and Burst kernels write the full output range, and chains reuse
  // host staging — with `window` requests in flight those would be genuine
  // data races on shared memory. Each window slot therefore owns its
  // buffers: a slot's ticket is always drained before the slot is reused,
  // and that completion happens-before the resubmission, so slot-private
  // memory is race-free by construction. Small keeps the shared buffers
  // (its per-request offsets are disjoint across the window, and identical
  // arg bindings are what lets consecutive requests fuse); InOrder keeps
  // them because its stream is serialized.
  struct SlotMem {
    ocl::Buffer in{ocl::MemFlags::ReadWrite, 4096 * 4};
    ocl::Buffer out{ocl::MemFlags::ReadWrite, 4096 * 4};
    std::vector<float> host = std::vector<float>(16 * 1024 / 4, 1.0f);
  };
  const bool slotted = profile == Profile::Bulk || profile == Profile::Burst ||
                       profile == Profile::Chain;
  std::vector<SlotMem> slots(slotted ? window : 0);

  // Generated-profile storage: [slot][case][array]. Writable generated
  // arrays are read-modify-written, so concurrent in-flight launches of one
  // kernel must not share buffers — same slot-privacy argument as SlotMem.
  // Local arrays get no buffer (they ride as ArgSpec::local requests).
  std::vector<std::vector<std::vector<std::unique_ptr<ocl::Buffer>>>> gen;
  if (profile == Profile::Generated) {
    gen.resize(window);
    for (auto& slot_cases : gen) {
      slot_cases.resize(g_generated.cases.size());
      for (std::size_t ci = 0; ci < g_generated.cases.size(); ++ci) {
        const check::Case& c = g_generated.cases[ci];
        for (const check::Array& a : c.arrays) {
          slot_cases[ci].push_back(
              a.local ? nullptr
                      : std::make_unique<ocl::Buffer>(
                            ocl::MemFlags::ReadWrite,
                            static_cast<std::size_t>(a.extent) * 4));
        }
      }
    }
  }

  std::vector<serve::Ticket> live;
  live.reserve(window);
  std::size_t oldest = 0;

  auto drain_oldest = [&]() -> bool {
    serve::Ticket& t = live[oldest];
    if (!t.wait_for(30s)) {
      result.ok = false;
      result.error = "hung ticket: no completion within 30s";
      return false;
    }
    if (t.status() != core::Status::Success) {
      result.ok = false;
      result.error = std::string("ticket failed: ") +
                     std::string(core::to_string(t.status()));
      return false;
    }
    completed.fetch_add(1, std::memory_order_relaxed);
    return true;
  };

  // The slot at `oldest` is always drained (by submit_one) before being
  // overwritten here.
  auto push = [&](serve::Ticket t) -> bool {
    if (live.size() < window) {
      live.push_back(std::move(t));
    } else {
      live[oldest] = std::move(t);
      oldest = (oldest + 1) % window;
    }
    return true;
  };

  auto submit_one = [&](std::size_t i) -> bool {
    // Closed loop: free a slot first when the window is full.
    if (live.size() == window) {
      if (!drain_oldest()) return false;
    }
    // The slot this request's ticket will occupy — just drained above (or
    // never used), so its SlotMem is quiescent.
    const std::size_t slot = live.size() == window ? oldest : live.size();
    serve::LaunchSpec spec;
    spec.kernel = "square";
    spec.args = {serve::ArgSpec::buf(in), serve::ArgSpec::buf(out)};
    switch (profile) {
      case Profile::Small: {
        // Contiguous offsets so consecutive requests fuse.
        const std::size_t slot = i % (kBulkItems / kSmallItems);
        spec.global = ocl::NDRange{kSmallItems};
        if (slot != 0) spec.offset = ocl::NDRange{slot * kSmallItems};
        return push(session.submit(std::move(spec)));
      }
      case Profile::Bulk:
        spec.global = ocl::NDRange{kBulkItems};
        spec.args = {serve::ArgSpec::buf(slots[slot].in),
                     serve::ArgSpec::buf(slots[slot].out)};
        return push(session.submit(std::move(spec)));
      case Profile::InOrder:
        spec.global = ocl::NDRange{kSmallItems};
        return push(session.submit(std::move(spec)));
      case Profile::Chain: {
        // write -> launch -> read; only the tail ticket joins the window
        // (its completion implies the whole chain retired).
        SlotMem& m = slots[slot];
        const std::size_t n = kChainBytes / 4;
        serve::Ticket w =
            session.submit_write(m.in, 0, kChainBytes, m.host.data());
        spec.global = ocl::NDRange{n};
        spec.args = {serve::ArgSpec::buf(m.in), serve::ArgSpec::buf(m.out)};
        serve::Ticket l = session.submit(std::move(spec), {w});
        serve::Ticket r =
            session.submit_read(m.out, 0, kChainBytes, m.host.data(), {l});
        return push(std::move(r));
      }
      case Profile::Burst: {
        spec.global = ocl::NDRange{kSmallItems};
        spec.args = {serve::ArgSpec::buf(slots[slot].in),
                     serve::ArgSpec::buf(slots[slot].out)};
        for (;;) {
          auto maybe = session.try_submit(spec);
          if (maybe) return push(std::move(*maybe));
          ++result.retries;
          // Brief jittered backoff before re-offering the request.
          std::this_thread::sleep_for(
              std::chrono::microseconds(1 + next_rand(rng) % 50));
        }
      }
      case Profile::Generated: {
        const std::size_t ci = next_rand(rng) % g_generated.cases.size();
        const check::Case& c = g_generated.cases[ci];
        spec.kernel = g_generated.names[ci];
        spec.args.clear();
        spec.args.push_back(serve::ArgSpec::scalar_of(&c));
        for (std::size_t ai = 0; ai < c.arrays.size(); ++ai) {
          const check::Array& a = c.arrays[ai];
          if (a.local) {
            spec.args.push_back(serve::ArgSpec::local(
                static_cast<std::size_t>(a.extent) * 4));
          } else {
            spec.args.push_back(serve::ArgSpec::buf(*gen[slot][ci][ai]));
          }
        }
        spec.global = ocl::NDRange{c.global};
        // Barrier/local cases were proven against their generated local
        // size; plain cases leave local to the runtime (and the tuner).
        if (c.has_barrier() || c.has_local()) {
          spec.local = ocl::NDRange{c.local};
        }
        return push(session.submit(std::move(spec)));
      }
    }
    return false;
  };

  for (std::size_t i = 0; i < requests; ++i) {
    if (!submit_one(i)) return;
    ++result.submitted;
    if (profile == Profile::Chain) result.submitted += 2;
  }
  for (std::size_t k = 0; k < live.size(); ++k) {
    if (!drain_oldest()) return;
    oldest = (oldest + 1) % live.size();
  }
  session.finish();
}

std::uint64_t find_histogram_percentile(const prof::Snapshot& snap,
                                        const std::string& name, double p) {
  for (const auto& h : snap.histograms) {
    if (h.name == name) return h.data.percentile(p);
  }
  return 0;
}

/// Exact per-request critical-path records, teed off obs::set_complete_sink.
/// The mclprof histograms are log-bucketed (2x resolution) — fine for
/// dashboards, useless for asserting "segments sum to within 5% of the
/// measured latency". The sink gives us the un-bucketed Record stream.
struct ObsCollector {
  std::mutex mu;
  std::vector<obs::Record> records;

  void add(const obs::Record& r) {
    const std::lock_guard<std::mutex> lock(mu);
    records.push_back(r);
  }
};

/// Per-tenant critical-path summary over the exact records.
struct PathSummary {
  std::uint64_t count = 0;
  std::uint64_t p50_total_ns = 0;
  std::uint64_t p99_total_ns = 0;
  // Segment values of the nearest-rank p99 request (not per-segment p99s:
  // those would not sum to any single request's latency).
  obs::PathSegments p99_request;
  double mean_admission_ns = 0.0;
  double mean_dependency_ns = 0.0;
  double mean_queue_ns = 0.0;
  double mean_exec_ns = 0.0;
  double mean_total_ns = 0.0;
  double mean_coverage = 0.0;  ///< mean named_sum/total over all requests
};

obs::PathSegments segments_of(const obs::Record& r) {
  obs::PathSegments s;
  s.admission_ns = r.args[0];
  s.dependency_ns = r.args[1];
  s.queue_ns = r.args[2];
  s.exec_ns = r.args[3];
  s.total_ns = r.args[4];
  s.is_kernel = r.args[5] != 0;
  return s;
}

PathSummary summarize_paths(std::vector<const obs::Record*>& recs) {
  PathSummary out;
  out.count = recs.size();
  if (recs.empty()) return out;
  std::sort(recs.begin(), recs.end(),
            [](const obs::Record* a, const obs::Record* b) {
              return a->args[4] < b->args[4];
            });
  const auto rank = [&](double p) {
    const std::size_t n = recs.size();
    std::size_t r = static_cast<std::size_t>(p / 100.0 * static_cast<double>(n));
    return r >= n ? n - 1 : r;
  };
  out.p50_total_ns = recs[rank(50.0)]->args[4];
  out.p99_total_ns = recs[rank(99.0)]->args[4];
  out.p99_request = segments_of(*recs[rank(99.0)]);
  double cov = 0.0;
  for (const obs::Record* r : recs) {
    const obs::PathSegments s = segments_of(*r);
    out.mean_admission_ns += static_cast<double>(s.admission_ns);
    out.mean_dependency_ns += static_cast<double>(s.dependency_ns);
    out.mean_queue_ns += static_cast<double>(s.queue_ns);
    out.mean_exec_ns += static_cast<double>(s.exec_ns);
    out.mean_total_ns += static_cast<double>(s.total_ns);
    cov += s.total_ns > 0 ? static_cast<double>(s.named_sum()) /
                                static_cast<double>(s.total_ns)
                          : 1.0;
  }
  const double n = static_cast<double>(recs.size());
  out.mean_admission_ns /= n;
  out.mean_dependency_ns /= n;
  out.mean_queue_ns /= n;
  out.mean_exec_ns /= n;
  out.mean_total_ns /= n;
  out.mean_coverage = cov / n;
  return out;
}

struct TimelinePoint {
  double t_s = 0.0;
  std::size_t completed = 0;
};

void json_escape_append(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

int run(const Options& opt) {
  ocl::CpuDevice device;
  ocl::Context context(device);
  prof::set_enabled(true);  // serve's latency histograms record only when on
  ObsCollector collector;
  if (opt.obs) {
    obs::set_enabled(true);
    obs::set_complete_sink(
        [&collector](const obs::Record& r) { collector.add(r); });
  }
  register_generated_kernels(opt.seed);

  serve::Server server(context);
  const Profile kMix[] = {Profile::Small,   Profile::Bulk,
                          Profile::Chain,   Profile::InOrder,
                          Profile::Burst,   Profile::Generated};
  struct Client {
    serve::Session session;
    Profile profile = Profile::Small;
    std::string name;
    std::size_t requests = 0;
    ClientResult result;
  };
  std::vector<Client> clients(opt.tenants);
  // Chain tenants retire 3 tickets per loop iteration; divide their share so
  // the configured total is the *ticket* count, the unit the stats report.
  std::size_t assigned = 0;
  for (std::size_t t = 0; t < opt.tenants; ++t) {
    Client& c = clients[t];
    c.profile = kMix[t % std::size(kMix)];
    c.name = std::string(profile_name(c.profile)) + "-" + std::to_string(t);
    std::size_t share = opt.requests / opt.tenants;
    if (t + 1 == opt.tenants) share = opt.requests - assigned;
    assigned += share;
    c.requests = c.profile == Profile::Chain ? std::max<std::size_t>(1, share / 3)
                                             : share;
    c.session = server.create_session(tenant_config(c.profile, c.name));
  }

  std::atomic<std::size_t> completed{0};
  std::atomic<bool> done{false};
  std::vector<TimelinePoint> timeline;
  const core::TimePoint t0 = core::now();

  // Sampler: throughput trajectory at ~50 ms resolution (monotonic clock).
  std::thread sampler([&] {
    while (!done.load(std::memory_order_acquire)) {
      timeline.push_back({core::elapsed_s(t0, core::now()),
                          completed.load(std::memory_order_relaxed)});
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    timeline.push_back({core::elapsed_s(t0, core::now()),
                        completed.load(std::memory_order_relaxed)});
  });

  std::vector<std::thread> threads;
  threads.reserve(clients.size());
  for (std::size_t t = 0; t < clients.size(); ++t) {
    Client& c = clients[t];
    threads.emplace_back([&c, &completed, seed = opt.seed + t] {
      run_client(c.session, c.profile, c.requests, seed | 1, completed,
                 c.result);
    });
  }
  for (auto& th : threads) th.join();
  done.store(true, std::memory_order_release);
  sampler.join();
  const double duration_s = core::elapsed_s(t0, core::now());
  if (opt.obs) obs::set_complete_sink(nullptr);

  bool ok = true;
  for (const Client& c : clients) {
    if (!c.result.ok) {
      std::fprintf(stderr, "serve_load: tenant %s FAILED: %s\n",
                   c.name.c_str(), c.result.error.c_str());
      ok = false;
    }
  }

  // Lost/hung detection: every admitted request must have retired, and the
  // server must be idle.
  const serve::ServerStats sstats = server.stats();
  if (sstats.in_flight != 0) {
    std::fprintf(stderr, "serve_load: %zu commands still in flight at exit\n",
                 sstats.in_flight);
    ok = false;
  }
  std::size_t total_submitted = 0, total_completed = 0;
  for (const serve::SessionStats& ts : sstats.tenants) {
    total_submitted += ts.submitted;
    total_completed += ts.completed;
    if (ts.outstanding != 0) {
      std::fprintf(stderr, "serve_load: tenant %s has %zu lost requests\n",
                   ts.name.c_str(), ts.outstanding);
      ok = false;
    }
    if (ts.completed + ts.failed + ts.cancelled + ts.timed_out != ts.submitted) {
      std::fprintf(stderr, "serve_load: tenant %s accounting leak\n",
                   ts.name.c_str());
      ok = false;
    }
  }

  const prof::Snapshot snap = prof::snapshot();
  const std::string all = "serve.latency_ns";

  std::string json;
  json.reserve(4096 + 64 * timeline.size());
  char buf[512];
  json += "{\n  \"mclserve\": 1,\n  \"bench\": \"serve_load\",\n";
  std::snprintf(buf, sizeof buf, "  \"obs\": %d,\n", opt.obs ? 1 : 0);
  json += buf;
  std::snprintf(buf, sizeof buf,
                "  \"seed\": %llu,\n  \"tenants\": %zu,\n"
                "  \"requests\": %zu,\n  \"completed\": %zu,\n"
                "  \"duration_s\": %.6f,\n  \"throughput_rps\": %.1f,\n",
                static_cast<unsigned long long>(opt.seed), opt.tenants,
                total_submitted, total_completed, duration_s,
                duration_s > 0 ? static_cast<double>(total_completed) / duration_s
                               : 0.0);
  json += buf;
  std::snprintf(buf, sizeof buf,
                "  \"latency_ns\": {\"p50\": %llu, \"p99\": %llu, "
                "\"p999\": %llu},\n",
                static_cast<unsigned long long>(
                    find_histogram_percentile(snap, all, 50.0)),
                static_cast<unsigned long long>(
                    find_histogram_percentile(snap, all, 99.0)),
                static_cast<unsigned long long>(
                    find_histogram_percentile(snap, all, 99.9)));
  json += buf;
  std::snprintf(buf, sizeof buf,
                "  \"server\": {\"forwarded_commands\": %llu, "
                "\"fused_requests\": %llu},\n",
                static_cast<unsigned long long>(sstats.forwarded_commands),
                static_cast<unsigned long long>(sstats.fused_requests));
  json += buf;

  json += "  \"timeline\": [";
  for (std::size_t i = 0; i < timeline.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%s\n    {\"t_s\": %.6f, \"completed\": %zu}",
                  i ? "," : "", timeline[i].t_s, timeline[i].completed);
    json += buf;
  }
  json += "\n  ],\n";

  json += "  \"tenant_stats\": [";
  for (std::size_t i = 0; i < sstats.tenants.size(); ++i) {
    const serve::SessionStats& ts = sstats.tenants[i];
    const std::string hist = all + "." + ts.name;
    json += i ? ",\n    {" : "\n    {";
    json += "\"name\": \"";
    json_escape_append(json, ts.name);
    json += "\", ";
    std::snprintf(
        buf, sizeof buf,
        "\"submitted\": %zu, \"completed\": %zu, \"failed\": %zu, "
        "\"rejected\": %zu, \"cancelled\": %zu, \"timed_out\": %zu, "
        "\"batched\": %zu, \"forwarded\": %zu, ",
        ts.submitted, ts.completed, ts.failed, ts.rejected, ts.cancelled,
        ts.timed_out, ts.batched, ts.forwarded);
    json += buf;
    std::snprintf(buf, sizeof buf,
                  "\"cache_hits\": %zu, \"cache_misses\": %zu, "
                  "\"p50_ns\": %llu, \"p99_ns\": %llu, \"p999_ns\": %llu, ",
                  ts.cache_hits, ts.cache_misses,
                  static_cast<unsigned long long>(
                      find_histogram_percentile(snap, hist, 50.0)),
                  static_cast<unsigned long long>(
                      find_histogram_percentile(snap, hist, 99.0)),
                  static_cast<unsigned long long>(
                      find_histogram_percentile(snap, hist, 99.9)));
    json += buf;
    // Admission-wait (submit -> dispatch) and service (dispatch -> complete)
    // recorded separately by the server, so queueing delay under load is
    // visible apart from how long commands actually took.
    const std::string adm = "serve.admission_ns." + ts.name;
    const std::string svc = "serve.service_ns." + ts.name;
    std::snprintf(
        buf, sizeof buf,
        "\"admission_p50_ns\": %llu, \"admission_p99_ns\": %llu, "
        "\"service_p50_ns\": %llu, \"service_p99_ns\": %llu}",
        static_cast<unsigned long long>(
            find_histogram_percentile(snap, adm, 50.0)),
        static_cast<unsigned long long>(
            find_histogram_percentile(snap, adm, 99.0)),
        static_cast<unsigned long long>(
            find_histogram_percentile(snap, svc, 50.0)),
        static_cast<unsigned long long>(
            find_histogram_percentile(snap, svc, 99.0)));
    json += buf;
  }
  json += "\n  ]";

  if (opt.obs) {
    // Exact per-request critical paths, grouped by the tenant id packed into
    // each record. Acceptance: the nearest-rank p99 request's named segments
    // must cover >= 95% of its measured end-to-end latency, per tenant.
    std::vector<std::vector<const obs::Record*>> by_tenant(
        sstats.tenants.size() + 1);
    {
      const std::lock_guard<std::mutex> lock(collector.mu);
      for (const obs::Record& r : collector.records) {
        if (r.tenant < by_tenant.size()) by_tenant[r.tenant].push_back(&r);
      }
    }
    json += ",\n  \"critical_path\": [";
    bool first = true;
    for (std::size_t i = 0; i < sstats.tenants.size(); ++i) {
      auto& recs = by_tenant[i + 1];  // tenant ids are 1-based creation order
      if (recs.empty()) continue;
      const PathSummary ps = summarize_paths(recs);
      const double cover =
          ps.p99_request.total_ns > 0
              ? static_cast<double>(ps.p99_request.named_sum()) /
                    static_cast<double>(ps.p99_request.total_ns)
              : 1.0;
      if (cover < 0.95) {
        std::fprintf(stderr,
                     "serve_load: tenant %s p99 critical-path coverage %.1f%% "
                     "(< 95%% of measured latency)\n",
                     sstats.tenants[i].name.c_str(), cover * 100.0);
        ok = false;
      }
      json += first ? "\n    {" : ",\n    {";
      first = false;
      json += "\"name\": \"";
      json_escape_append(json, sstats.tenants[i].name);
      json += "\", ";
      std::snprintf(buf, sizeof buf,
                    "\"count\": %llu, \"p50_total_ns\": %llu, "
                    "\"p99_total_ns\": %llu, \"mean_coverage\": %.4f,\n     ",
                    static_cast<unsigned long long>(ps.count),
                    static_cast<unsigned long long>(ps.p50_total_ns),
                    static_cast<unsigned long long>(ps.p99_total_ns),
                    ps.mean_coverage);
      json += buf;
      std::snprintf(
          buf, sizeof buf,
          "\"p99_request\": {\"admission_ns\": %llu, \"dependency_ns\": %llu, "
          "\"queue_ns\": %llu, \"exec_ns\": %llu, \"total_ns\": %llu},\n     ",
          static_cast<unsigned long long>(ps.p99_request.admission_ns),
          static_cast<unsigned long long>(ps.p99_request.dependency_ns),
          static_cast<unsigned long long>(ps.p99_request.queue_ns),
          static_cast<unsigned long long>(ps.p99_request.exec_ns),
          static_cast<unsigned long long>(ps.p99_request.total_ns));
      json += buf;
      std::snprintf(
          buf, sizeof buf,
          "\"mean\": {\"admission_ns\": %.1f, \"dependency_ns\": %.1f, "
          "\"queue_ns\": %.1f, \"exec_ns\": %.1f, \"total_ns\": %.1f}}",
          ps.mean_admission_ns, ps.mean_dependency_ns, ps.mean_queue_ns,
          ps.mean_exec_ns, ps.mean_total_ns);
      json += buf;
    }
    json += "\n  ]";
  }
  json += "\n}\n";

  if (!opt.obs_dump.empty()) {
    const std::string written =
        obs::dump_now(obs::Kind::Mark, 0, "serve_load --obs", opt.obs_dump);
    if (written.empty()) {
      std::fprintf(stderr, "serve_load: failed to write obs dump %s\n",
                   opt.obs_dump.c_str());
      ok = false;
    }
  }

  std::ofstream f(opt.json);
  if (!f) {
    std::fprintf(stderr, "serve_load: cannot open %s\n", opt.json.c_str());
    return 1;
  }
  f << json;
  f.close();

  std::printf(
      "serve_load: %zu requests, %zu tenants, %.2f s, %.0f req/s, "
      "p50=%llu ns p99=%llu ns (%s)\n",
      total_submitted, opt.tenants, duration_s,
      duration_s > 0 ? static_cast<double>(total_completed) / duration_s : 0.0,
      static_cast<unsigned long long>(
          find_histogram_percentile(snap, all, 50.0)),
      static_cast<unsigned long long>(
          find_histogram_percentile(snap, all, 99.0)),
      ok ? "ok" : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "serve_load: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--requests") {
      opt.requests = std::stoull(value());
    } else if (arg == "--tenants") {
      opt.tenants = std::stoull(value());
    } else if (arg == "--seed") {
      opt.seed = std::stoull(value());
    } else if (arg == "--json") {
      opt.json = value();
    } else if (arg == "--quick") {
      opt.quick = true;
      opt.requests = 50'000;
    } else if (arg == "--obs") {
      opt.obs = true;
    } else if (arg == "--obs-dump") {
      opt.obs = true;
      opt.obs_dump = value();
    } else if (arg == "--tune") {
      // Convenience override of MCL_TUNE for load runs under tuning.
      const std::string m = value();
      if (m == "off") {
        mcl::tune::Tuner::instance().set_mode(mcl::tune::Mode::Off);
      } else if (m == "seed") {
        mcl::tune::Tuner::instance().set_mode(mcl::tune::Mode::Seed);
      } else if (m == "online") {
        mcl::tune::Tuner::instance().set_mode(mcl::tune::Mode::Online);
      } else {
        std::fprintf(stderr, "serve_load: --tune must be off|seed|online\n");
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: serve_load [--requests N] [--tenants N] [--seed S]\n"
          "                  [--json PATH] [--quick] [--tune off|seed|online]\n"
          "                  [--obs] [--obs-dump PATH]\n");
      return 0;
    } else {
      std::fprintf(stderr, "serve_load: unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  if (opt.tenants == 0 || opt.requests == 0) {
    std::fprintf(stderr, "serve_load: --tenants and --requests must be > 0\n");
    return 2;
  }
  return run(opt);
}
