// Extension suite — SpMV (CSR), the gather-heavy workload beyond the
// paper's set. Sweeps matrix density on the CPU device and both GPU timing
// models, showing (a) the SIMD executor's limited leverage on ragged
// gather loops and (b) the uncoalesced-access penalty the GPU models charge
// (cf. the paper's coalescing discussion and MBench6).
#include "apps/spmv.hpp"
#include "common.hpp"
#include "gpusim/detailed.hpp"

int main(int argc, char** argv) {
  using namespace mcl;
  bench::Env env;
  if (!env.init(argc, argv, "Extension suite: SpMV (CSR) density sweep"))
    return 0;

  const std::size_t rows = env.size<std::size_t>(4'096, 65'536, 262'144);

  core::Table t("Extension - SpMV CSR",
                {"rows", "avg nnz/row", "CPU ms (loop)", "CPU ms (simd)",
                 "GPU ms (analytical)", "GPU ms (discrete-event)", "valid"});

  for (std::size_t nnz_per_row : {2u, 8u, 32u}) {
    const apps::CsrMatrix m =
        apps::make_random_csr(rows, rows, nnz_per_row, env.seed());
    const apps::FloatVec x = apps::random_floats(rows, env.seed() + 1);
    apps::FloatVec expect(rows);
    apps::spmv_reference(m, x, expect);

    double cpu_loop = 0, cpu_simd = 0, gpu_analytic = 0, gpu_detailed = 0;
    bool valid = true;
    for (int pass = 0; pass < 3; ++pass) {
      ocl::CpuDevice cpu_loop_dev(
          ocl::CpuDeviceConfig{.executor = ocl::ExecutorKind::Loop});
      ocl::CpuDevice cpu_simd_dev(
          ocl::CpuDeviceConfig{.executor = ocl::ExecutorKind::Simd});
      ocl::Device& dev =
          pass == 0 ? static_cast<ocl::Device&>(cpu_loop_dev)
          : pass == 1 ? static_cast<ocl::Device&>(cpu_simd_dev)
                      : static_cast<ocl::Device&>(env.platform().gpu());
      ocl::Context ctx(dev);
      ocl::CommandQueue q(ctx);

      ocl::Buffer bval(ocl::MemFlags::ReadOnly | ocl::MemFlags::CopyHostPtr,
                       m.values.size() * 4,
                       const_cast<float*>(m.values.data()));
      ocl::Buffer bcol(ocl::MemFlags::ReadOnly | ocl::MemFlags::CopyHostPtr,
                       m.col_idx.size() * 4,
                       const_cast<unsigned*>(m.col_idx.data()));
      ocl::Buffer brow(ocl::MemFlags::ReadOnly | ocl::MemFlags::CopyHostPtr,
                       m.row_ptr.size() * 4,
                       const_cast<unsigned*>(m.row_ptr.data()));
      ocl::Buffer bx(ocl::MemFlags::ReadOnly | ocl::MemFlags::CopyHostPtr,
                     rows * 4, const_cast<float*>(x.data()));
      ocl::Buffer by(ocl::MemFlags::WriteOnly, rows * 4);
      ocl::Kernel k = ctx.create_kernel(ocl::Program::builtin(),
                                        apps::kSpmvKernel);
      k.set_arg(0, bval);
      k.set_arg(1, bcol);
      k.set_arg(2, brow);
      k.set_arg(3, bx);
      k.set_arg(4, by);

      const double time = bench::time_launch(q, k, ocl::NDRange{rows},
                                             ocl::NDRange{64}, env.opts());
      if (pass == 0) cpu_loop = time * 1e3;
      if (pass == 1) cpu_simd = time * 1e3;
      if (pass == 2) {
        gpu_analytic = time * 1e3;
        // The discrete-event model on the same cost descriptor.
        const gpusim::KernelCost cost = ocl::Program::builtin()
                                            .lookup(apps::kSpmvKernel)
                                            .gpu_cost(k.args(),
                                                      ocl::NDRange{rows},
                                                      ocl::NDRange{64});
        gpu_detailed = gpusim::simulate_detailed(
                           env.platform().gpu().spec(), cost,
                           {.global_items = rows, .local_items = 64})
                           .seconds *
                       1e3;
      }
      valid = valid &&
              apps::max_rel_diff({by.as<float>(), rows}, expect, 1e-3) < 1e-5;
    }
    t.add_row({static_cast<double>(rows),
               static_cast<double>(m.nnz()) / static_cast<double>(rows),
               cpu_loop, cpu_simd, gpu_analytic, gpu_detailed,
               std::string(valid ? "yes" : "NO")});
  }
  t.emit(env.csv(), env.json(), env.md());
  return 0;
}
