// Table II coverage — the applications no figure sweeps (Reduction,
// Histogram, Prefixsum, Binomialoption) run end-to-end at their Table II
// configurations on the CPU device and the simulated GPU, validated against
// the serial references. Completes the suite so every Table II row is
// exercised by a bench binary.
#include "apps/blackscholes.hpp"
#include "apps/hostdata.hpp"
#include "apps/reduction.hpp"
#include "common.hpp"

namespace {

using namespace mcl;

struct Row {
  std::string name;
  double cpu_ms;
  double gpu_ms;
  bool valid;
};

Row run_reduction(bench::Env& env, std::size_t n, std::size_t local) {
  const apps::FloatVec in = apps::random_floats(n, env.seed(), 0.0f, 1.0f);
  const double expect = apps::reduce_reference(in);
  Row row{"Reduction n=" + std::to_string(n), 0, 0, true};

  for (int pass = 0; pass < 2; ++pass) {
    ocl::Device& dev = pass == 0
                           ? static_cast<ocl::Device&>(env.platform().cpu())
                           : static_cast<ocl::Device&>(env.platform().gpu());
    ocl::Context ctx(dev);
    ocl::CommandQueue q(ctx);
    ocl::Buffer bin(ocl::MemFlags::ReadOnly | ocl::MemFlags::CopyHostPtr,
                    n * 4, const_cast<float*>(in.data()));
    ocl::Buffer bpart(ocl::MemFlags::ReadWrite, (n / local) * 4);
    ocl::Kernel k = ctx.create_kernel(ocl::Program::builtin(),
                                      apps::kReduceKernel);
    k.set_arg(0, bin);
    k.set_arg(1, bpart);
    k.set_arg_local(2, local * 4);
    const double t = bench::time_launch(q, k, ocl::NDRange{n},
                                        ocl::NDRange{local}, env.opts());
    (pass == 0 ? row.cpu_ms : row.gpu_ms) = t * 1e3;

    double total = 0;
    for (std::size_t g = 0; g < n / local; ++g) total += bpart.as<float>()[g];
    row.valid = row.valid && std::abs(total - expect) < 1e-4 * n;
  }
  return row;
}

Row run_histogram(bench::Env& env, std::size_t n) {
  apps::UintVec in(n);
  core::Rng rng(env.seed());
  for (auto& v : in) v = static_cast<unsigned>(rng.next_below(256));
  std::vector<unsigned> expect(256);
  apps::histogram_reference(in, expect);
  Row row{"Histogram n=" + std::to_string(n), 0, 0, true};

  for (int pass = 0; pass < 2; ++pass) {
    ocl::Device& dev = pass == 0
                           ? static_cast<ocl::Device&>(env.platform().cpu())
                           : static_cast<ocl::Device&>(env.platform().gpu());
    ocl::Context ctx(dev);
    ocl::CommandQueue q(ctx);
    ocl::Buffer bin(ocl::MemFlags::ReadOnly | ocl::MemFlags::CopyHostPtr,
                    n * 4, in.data());
    ocl::Buffer bbins(ocl::MemFlags::ReadWrite, 256 * 4);
    ocl::Kernel k = ctx.create_kernel(ocl::Program::builtin(),
                                      apps::kHistogramKernel);
    k.set_arg(0, bin);
    k.set_arg(1, bbins);
    k.set_arg_local(2, 256 * 4);
    // One clean launch for validation (bins accumulate across launches).
    const unsigned zero = 0;
    (void)q.enqueue_fill_buffer(bbins, &zero, 4, 0, 256 * 4);
    const ocl::Event ev = q.enqueue_ndrange(k, ocl::NDRange{n},
                                            ocl::NDRange{128});
    (pass == 0 ? row.cpu_ms : row.gpu_ms) = ev.seconds * 1e3;
    for (int b = 0; b < 256; ++b) {
      row.valid = row.valid && bbins.as<unsigned>()[b] == expect[b];
    }
  }
  return row;
}

Row run_prefixsum(bench::Env& env, std::size_t n) {
  const apps::FloatVec in = apps::random_floats(n, env.seed(), 0.0f, 1.0f);
  apps::FloatVec expect(n);
  apps::prefixsum_reference(in, expect);
  Row row{"Prefixsum n=" + std::to_string(n), 0, 0, true};

  for (int pass = 0; pass < 2; ++pass) {
    ocl::Device& dev = pass == 0
                           ? static_cast<ocl::Device&>(env.platform().cpu())
                           : static_cast<ocl::Device&>(env.platform().gpu());
    ocl::Context ctx(dev);
    ocl::CommandQueue q(ctx);
    ocl::Buffer bin(ocl::MemFlags::ReadOnly | ocl::MemFlags::CopyHostPtr,
                    n * 4, const_cast<float*>(in.data()));
    ocl::Buffer bout(ocl::MemFlags::WriteOnly, n * 4);
    ocl::Kernel k = ctx.create_kernel(ocl::Program::builtin(),
                                      apps::kPrefixSumKernel);
    k.set_arg(0, bin);
    k.set_arg(1, bout);
    k.set_arg_local(2, n * 4);
    k.set_arg_local(3, n * 4);
    const double t = bench::time_launch(q, k, ocl::NDRange{n}, ocl::NDRange{n},
                                        env.opts());
    (pass == 0 ? row.cpu_ms : row.gpu_ms) = t * 1e3;
    row.valid = row.valid &&
                apps::max_rel_diff({bout.as<float>(), n}, expect, 1e-3) < 1e-4;
  }
  return row;
}

Row run_binomial(bench::Env& env, std::size_t options, unsigned steps) {
  const apps::FloatVec s = apps::random_floats(options, env.seed(), 50, 150);
  const apps::FloatVec x = apps::random_floats(options, env.seed() + 1, 50, 150);
  const apps::FloatVec t = apps::random_floats(options, env.seed() + 2, 0.5f, 3);
  const float r = 0.03f, v = 0.3f;
  Row row{"Binomial opts=" + std::to_string(options) +
              " steps=" + std::to_string(steps),
          0, 0, true};

  for (int pass = 0; pass < 2; ++pass) {
    ocl::Device& dev = pass == 0
                           ? static_cast<ocl::Device&>(env.platform().cpu())
                           : static_cast<ocl::Device&>(env.platform().gpu());
    ocl::Context ctx(dev);
    ocl::CommandQueue q(ctx);
    ocl::Buffer bs(ocl::MemFlags::ReadOnly | ocl::MemFlags::CopyHostPtr,
                   options * 4, const_cast<float*>(s.data()));
    ocl::Buffer bx(ocl::MemFlags::ReadOnly | ocl::MemFlags::CopyHostPtr,
                   options * 4, const_cast<float*>(x.data()));
    ocl::Buffer bt(ocl::MemFlags::ReadOnly | ocl::MemFlags::CopyHostPtr,
                   options * 4, const_cast<float*>(t.data()));
    ocl::Buffer bout(ocl::MemFlags::WriteOnly, options * 4);
    ocl::Kernel k = ctx.create_kernel(ocl::Program::builtin(),
                                      apps::kBinomialKernel);
    k.set_arg(0, bs);
    k.set_arg(1, bx);
    k.set_arg(2, bt);
    k.set_arg(3, bout);
    k.set_arg(4, r);
    k.set_arg(5, v);
    k.set_arg(6, steps);
    k.set_arg_local(7, (steps + 1) * 4);
    const double time = bench::time_launch(
        q, k, ocl::NDRange{options * steps}, ocl::NDRange{steps}, env.opts());
    (pass == 0 ? row.cpu_ms : row.gpu_ms) = time * 1e3;
    // Spot-validate a few options against the serial lattice.
    for (std::size_t o = 0; o < options; o += options / 4 + 1) {
      const float expect = apps::binomial_reference(s[o], x[o], t[o], r, v,
                                                    steps);
      row.valid = row.valid && std::abs(bout.as<float>()[o] - expect) <
                                   1e-2f * (1.0f + expect);
    }
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Env env;
  if (!env.init(argc, argv,
                "Table II coverage: Reduction / Histogram / Prefixsum / "
                "Binomialoption on both devices"))
    return 0;

  core::Table t("Table II extra suite",
                {"benchmark", "CPU ms/iter", "GPU ms/iter (sim)", "valid"});
  std::vector<Row> rows;
  rows.push_back(run_reduction(env, env.size<std::size_t>(64'000, 640'000,
                                                          2'560'000), 256));
  rows.push_back(run_histogram(env, env.size<std::size_t>(40'960, 409'600,
                                                          409'600)));
  rows.push_back(run_prefixsum(env, 1024));  // Table II: 1024, local 1024
  rows.push_back(run_binomial(
      env, env.size<std::size_t>(100, 1000, 255'000 / 255), 255));

  bool all_valid = true;
  for (const Row& r : rows) {
    t.add_row({r.name, r.cpu_ms, r.gpu_ms,
               std::string(r.valid ? "yes" : "NO")});
    all_valid = all_valid && r.valid;
  }
  t.emit(env.csv(), env.json(), env.md());
  return all_valid ? 0 : 1;
}
