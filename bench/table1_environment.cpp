// Table I — experimental environment. Prints the probed host CPU (the
// paper's Xeon E5645 slot) and the simulated GTX 580 (Hong-Kim model
// parameters), in the layout of the paper's Table I.
#include "common.hpp"
#include "core/sysinfo.hpp"
#include "prof/hw.hpp"
#include "simd/vec.hpp"

int main(int argc, char** argv) {
  using namespace mcl;
  bench::Env env;
  if (!env.init(argc, argv, "Table I: experimental environment")) return 0;

  const core::HostInfo host = core::probe_host();
  const gpusim::GpuSpec gpu = env.platform().gpu().spec();

  core::Table t("Table I - Experimental environment",
                {"field", "this run", "paper"});
  t.add_row({std::string("CPU"), host.cpu_model,
             std::string("Intel(R) Xeon(R) CPU E5645")});
  t.add_row({std::string("Vector width"),
             host.simd_isa + ", " + std::to_string(host.simd_float_lanes) +
                 " single precision FP",
             std::string("SSE 4.2, 4 single precision FP")});
  t.add_row({std::string("Caches L1D/L2/L3"),
             core::format_bytes(host.l1d_bytes) + "/" +
                 core::format_bytes(host.l2_bytes) + "/" +
                 core::format_bytes(host.l3_bytes),
             std::string("64K/256K/12M")});
  t.add_row({std::string("Logical CPUs"),
             static_cast<double>(host.logical_cpus), std::string("12 (2x6)")});
  t.add_row({std::string("GPU"), env.platform().gpu().name(),
             std::string("NVidia GeForce GTX 580")});
  t.add_row({std::string("GPU # SMs"), static_cast<double>(gpu.num_sm),
             std::string("16")});
  t.add_row({std::string("GPU FP peak (Gflop/s)"), gpu.peak_gflops(),
             std::string("1560")});
  t.add_row({std::string("GPU shader clock (MHz)"), gpu.clock_ghz * 1000.0,
             std::string("1544")});
  t.add_row({std::string("O/S"), host.os, std::string("Ubuntu 12.04.1 LTS")});
  t.add_row({std::string("perf_event_paranoid"),
             static_cast<double>(host.perf_event_paranoid),
             std::string("n/a")});
  t.add_row({std::string("Perf counters"), prof::availability().detail,
             std::string("n/a (paper reports wall time only)")});
  t.add_row({std::string("Platform (CPU)"), std::string(ocl::Platform::version()),
             std::string("Intel OpenCL Platform")});
  t.add_row({std::string("Platform (GPU)"),
             std::string("MiniCL SimGpuDevice (Hong-Kim analytical timing)"),
             std::string("NVidia OpenCL Platform")});
  t.add_row({std::string("Compiler"), host.compiler,
             std::string("Intel C/C++ compiler")});
  t.emit(env.csv(), env.json(), env.md());
  return 0;
}
