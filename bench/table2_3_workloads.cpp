// Tables II and III — characteristics of the simple applications and the
// Parboil benchmarks: kernel names, global and local work sizes exactly as
// the paper lists them, plus the MiniCL kernel each maps to.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace mcl;
  bench::Env env;
  if (!env.init(argc, argv, "Tables II & III: workload characteristics"))
    return 0;

  core::Table t2("Table II - Characteristics of the simple applications",
                 {"benchmark", "kernel (MiniCL)", "global work size",
                  "local work size"});
  t2.add_row({std::string("Square"), std::string("square"),
              std::string("10000, 100000, 1000000, 10000000"),
              std::string("NULL")});
  t2.add_row({std::string("Vectoraddition"), std::string("vectoradd"),
              std::string("110000, 1100000, 5500000, 11445000"),
              std::string("NULL")});
  t2.add_row({std::string("Matrixmul"), std::string("matrixmul"),
              std::string("800x1600, 1600x3200, 4000x8000"),
              std::string("16x16")});
  t2.add_row({std::string("Reduction"), std::string("reduce"),
              std::string("640000, 2560000, 10240000"), std::string("256")});
  t2.add_row({std::string("Histogram"), std::string("histogram256"),
              std::string("409600"), std::string("128")});
  t2.add_row({std::string("Prefixsum"), std::string("prefixsum"),
              std::string("1024"), std::string("1024")});
  t2.add_row({std::string("Blackscholes"), std::string("blackscholes"),
              std::string("1280x1280, 2560x2560"), std::string("16x16")});
  t2.add_row({std::string("Binomialoption"), std::string("binomialoption"),
              std::string("255000, 2550000"), std::string("255")});
  t2.add_row({std::string("MatrixmulNaive"), std::string("matrixmul_naive"),
              std::string("800x1600, 1600x3200, 4000x8000"),
              std::string("16x16")});
  t2.emit(env.csv(), env.json(), env.md());

  core::Table t3("Table III - Characteristics of the Parboil benchmarks",
                 {"benchmark", "kernel (MiniCL)", "global work size",
                  "local work size"});
  t3.add_row({std::string("CP"), std::string("cp_cenergy"),
              std::string("64x512"), std::string("16x8")});
  t3.add_row({std::string("MRI-Q"), std::string("mriq_computephimag"),
              std::string("3072"), std::string("512")});
  t3.add_row({std::string("MRI-Q"), std::string("mriq_computeq"),
              std::string("32768"), std::string("256")});
  t3.add_row({std::string("MRI-FHD"), std::string("mrifhd_rhophi"),
              std::string("3072"), std::string("512")});
  t3.add_row({std::string("MRI-FHD"), std::string("mrifhd_fh"),
              std::string("32768"), std::string("256")});
  t3.emit(env.csv(), env.json(), env.md());
  return 0;
}
