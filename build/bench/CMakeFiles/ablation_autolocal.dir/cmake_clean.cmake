file(REMOVE_RECURSE
  "CMakeFiles/ablation_autolocal.dir/ablation_autolocal.cpp.o"
  "CMakeFiles/ablation_autolocal.dir/ablation_autolocal.cpp.o.d"
  "ablation_autolocal"
  "ablation_autolocal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_autolocal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
