# Empty compiler generated dependencies file for ablation_autolocal.
# This may be replaced when dependencies are built.
