file(REMOVE_RECURSE
  "CMakeFiles/ablation_executors.dir/ablation_executors.cpp.o"
  "CMakeFiles/ablation_executors.dir/ablation_executors.cpp.o.d"
  "ablation_executors"
  "ablation_executors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_executors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
