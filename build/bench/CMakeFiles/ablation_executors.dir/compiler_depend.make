# Empty compiler generated dependencies file for ablation_executors.
# This may be replaced when dependencies are built.
