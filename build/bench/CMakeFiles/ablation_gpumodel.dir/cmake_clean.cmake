file(REMOVE_RECURSE
  "CMakeFiles/ablation_gpumodel.dir/ablation_gpumodel.cpp.o"
  "CMakeFiles/ablation_gpumodel.dir/ablation_gpumodel.cpp.o.d"
  "ablation_gpumodel"
  "ablation_gpumodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gpumodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
