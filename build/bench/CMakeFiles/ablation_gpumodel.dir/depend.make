# Empty dependencies file for ablation_gpumodel.
# This may be replaced when dependencies are built.
