file(REMOVE_RECURSE
  "CMakeFiles/fig01_workitem_coalescing.dir/fig01_workitem_coalescing.cpp.o"
  "CMakeFiles/fig01_workitem_coalescing.dir/fig01_workitem_coalescing.cpp.o.d"
  "fig01_workitem_coalescing"
  "fig01_workitem_coalescing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_workitem_coalescing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
