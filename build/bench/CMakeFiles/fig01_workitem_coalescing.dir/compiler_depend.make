# Empty compiler generated dependencies file for fig01_workitem_coalescing.
# This may be replaced when dependencies are built.
