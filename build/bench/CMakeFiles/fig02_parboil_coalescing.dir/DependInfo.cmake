
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig02_parboil_coalescing.cpp" "bench/CMakeFiles/fig02_parboil_coalescing.dir/fig02_parboil_coalescing.cpp.o" "gcc" "bench/CMakeFiles/fig02_parboil_coalescing.dir/fig02_parboil_coalescing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/mcl_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/ocl/CMakeFiles/mcl_ocl.dir/DependInfo.cmake"
  "/root/repo/build/src/ompx/CMakeFiles/mcl_ompx.dir/DependInfo.cmake"
  "/root/repo/build/src/cachesim/CMakeFiles/mcl_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/mcl_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/veclegal/CMakeFiles/mcl_veclegal.dir/DependInfo.cmake"
  "/root/repo/build/src/threading/CMakeFiles/mcl_threading.dir/DependInfo.cmake"
  "/root/repo/build/src/simd/CMakeFiles/mcl_simd.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mcl_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
