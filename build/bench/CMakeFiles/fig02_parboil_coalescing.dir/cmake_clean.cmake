file(REMOVE_RECURSE
  "CMakeFiles/fig02_parboil_coalescing.dir/fig02_parboil_coalescing.cpp.o"
  "CMakeFiles/fig02_parboil_coalescing.dir/fig02_parboil_coalescing.cpp.o.d"
  "fig02_parboil_coalescing"
  "fig02_parboil_coalescing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_parboil_coalescing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
