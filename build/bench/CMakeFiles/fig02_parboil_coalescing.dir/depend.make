# Empty dependencies file for fig02_parboil_coalescing.
# This may be replaced when dependencies are built.
