file(REMOVE_RECURSE
  "CMakeFiles/fig03_workgroup_size.dir/fig03_workgroup_size.cpp.o"
  "CMakeFiles/fig03_workgroup_size.dir/fig03_workgroup_size.cpp.o.d"
  "fig03_workgroup_size"
  "fig03_workgroup_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_workgroup_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
