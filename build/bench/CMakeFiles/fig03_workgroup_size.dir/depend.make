# Empty dependencies file for fig03_workgroup_size.
# This may be replaced when dependencies are built.
