file(REMOVE_RECURSE
  "CMakeFiles/fig04_blackscholes_wgsize.dir/fig04_blackscholes_wgsize.cpp.o"
  "CMakeFiles/fig04_blackscholes_wgsize.dir/fig04_blackscholes_wgsize.cpp.o.d"
  "fig04_blackscholes_wgsize"
  "fig04_blackscholes_wgsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_blackscholes_wgsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
