# Empty dependencies file for fig04_blackscholes_wgsize.
# This may be replaced when dependencies are built.
