file(REMOVE_RECURSE
  "CMakeFiles/fig05_parboil_wgsize.dir/fig05_parboil_wgsize.cpp.o"
  "CMakeFiles/fig05_parboil_wgsize.dir/fig05_parboil_wgsize.cpp.o.d"
  "fig05_parboil_wgsize"
  "fig05_parboil_wgsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_parboil_wgsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
