# Empty dependencies file for fig05_parboil_wgsize.
# This may be replaced when dependencies are built.
