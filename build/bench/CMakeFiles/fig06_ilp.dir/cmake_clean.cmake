file(REMOVE_RECURSE
  "CMakeFiles/fig06_ilp.dir/fig06_ilp.cpp.o"
  "CMakeFiles/fig06_ilp.dir/fig06_ilp.cpp.o.d"
  "fig06_ilp"
  "fig06_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
