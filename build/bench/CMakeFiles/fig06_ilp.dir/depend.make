# Empty dependencies file for fig06_ilp.
# This may be replaced when dependencies are built.
