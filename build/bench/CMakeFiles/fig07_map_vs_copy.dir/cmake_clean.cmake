file(REMOVE_RECURSE
  "CMakeFiles/fig07_map_vs_copy.dir/fig07_map_vs_copy.cpp.o"
  "CMakeFiles/fig07_map_vs_copy.dir/fig07_map_vs_copy.cpp.o.d"
  "fig07_map_vs_copy"
  "fig07_map_vs_copy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_map_vs_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
