# Empty compiler generated dependencies file for fig07_map_vs_copy.
# This may be replaced when dependencies are built.
