file(REMOVE_RECURSE
  "CMakeFiles/fig08_parboil_transfer.dir/fig08_parboil_transfer.cpp.o"
  "CMakeFiles/fig08_parboil_transfer.dir/fig08_parboil_transfer.cpp.o.d"
  "fig08_parboil_transfer"
  "fig08_parboil_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_parboil_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
