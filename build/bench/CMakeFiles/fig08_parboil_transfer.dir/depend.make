# Empty dependencies file for fig08_parboil_transfer.
# This may be replaced when dependencies are built.
