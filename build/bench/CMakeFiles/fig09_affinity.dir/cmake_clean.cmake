file(REMOVE_RECURSE
  "CMakeFiles/fig09_affinity.dir/fig09_affinity.cpp.o"
  "CMakeFiles/fig09_affinity.dir/fig09_affinity.cpp.o.d"
  "fig09_affinity"
  "fig09_affinity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_affinity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
