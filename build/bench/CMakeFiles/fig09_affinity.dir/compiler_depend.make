# Empty compiler generated dependencies file for fig09_affinity.
# This may be replaced when dependencies are built.
