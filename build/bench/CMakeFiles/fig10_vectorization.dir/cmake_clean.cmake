file(REMOVE_RECURSE
  "CMakeFiles/fig10_vectorization.dir/fig10_vectorization.cpp.o"
  "CMakeFiles/fig10_vectorization.dir/fig10_vectorization.cpp.o.d"
  "fig10_vectorization"
  "fig10_vectorization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_vectorization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
