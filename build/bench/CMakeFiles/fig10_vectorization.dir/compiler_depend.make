# Empty compiler generated dependencies file for fig10_vectorization.
# This may be replaced when dependencies are built.
