file(REMOVE_RECURSE
  "CMakeFiles/fig11_veclegal_demo.dir/fig11_veclegal_demo.cpp.o"
  "CMakeFiles/fig11_veclegal_demo.dir/fig11_veclegal_demo.cpp.o.d"
  "fig11_veclegal_demo"
  "fig11_veclegal_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_veclegal_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
