# Empty dependencies file for fig11_veclegal_demo.
# This may be replaced when dependencies are built.
