file(REMOVE_RECURSE
  "CMakeFiles/suite_extensions.dir/suite_extensions.cpp.o"
  "CMakeFiles/suite_extensions.dir/suite_extensions.cpp.o.d"
  "suite_extensions"
  "suite_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suite_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
