# Empty dependencies file for suite_extensions.
# This may be replaced when dependencies are built.
