file(REMOVE_RECURSE
  "CMakeFiles/suite_table2_extra.dir/suite_table2_extra.cpp.o"
  "CMakeFiles/suite_table2_extra.dir/suite_table2_extra.cpp.o.d"
  "suite_table2_extra"
  "suite_table2_extra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suite_table2_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
