# Empty dependencies file for suite_table2_extra.
# This may be replaced when dependencies are built.
