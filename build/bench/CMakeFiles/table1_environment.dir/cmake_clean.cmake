file(REMOVE_RECURSE
  "CMakeFiles/table1_environment.dir/table1_environment.cpp.o"
  "CMakeFiles/table1_environment.dir/table1_environment.cpp.o.d"
  "table1_environment"
  "table1_environment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_environment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
