# Empty compiler generated dependencies file for table2_3_workloads.
# This may be replaced when dependencies are built.
