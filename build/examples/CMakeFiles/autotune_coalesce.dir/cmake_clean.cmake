file(REMOVE_RECURSE
  "CMakeFiles/autotune_coalesce.dir/autotune_coalesce.cpp.o"
  "CMakeFiles/autotune_coalesce.dir/autotune_coalesce.cpp.o.d"
  "autotune_coalesce"
  "autotune_coalesce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotune_coalesce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
