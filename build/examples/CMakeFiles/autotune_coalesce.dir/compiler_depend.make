# Empty compiler generated dependencies file for autotune_coalesce.
# This may be replaced when dependencies are built.
