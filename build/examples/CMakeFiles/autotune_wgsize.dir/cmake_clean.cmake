file(REMOVE_RECURSE
  "CMakeFiles/autotune_wgsize.dir/autotune_wgsize.cpp.o"
  "CMakeFiles/autotune_wgsize.dir/autotune_wgsize.cpp.o.d"
  "autotune_wgsize"
  "autotune_wgsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotune_wgsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
