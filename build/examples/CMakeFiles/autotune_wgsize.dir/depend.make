# Empty dependencies file for autotune_wgsize.
# This may be replaced when dependencies are built.
