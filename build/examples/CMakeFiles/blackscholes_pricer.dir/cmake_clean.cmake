file(REMOVE_RECURSE
  "CMakeFiles/blackscholes_pricer.dir/blackscholes_pricer.cpp.o"
  "CMakeFiles/blackscholes_pricer.dir/blackscholes_pricer.cpp.o.d"
  "blackscholes_pricer"
  "blackscholes_pricer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blackscholes_pricer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
