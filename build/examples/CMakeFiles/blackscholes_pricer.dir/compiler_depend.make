# Empty compiler generated dependencies file for blackscholes_pricer.
# This may be replaced when dependencies are built.
