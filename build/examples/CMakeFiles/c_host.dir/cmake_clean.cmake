file(REMOVE_RECURSE
  "CMakeFiles/c_host.dir/c_host.c.o"
  "CMakeFiles/c_host.dir/c_host.c.o.d"
  "c_host"
  "c_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang C)
  include(CMakeFiles/c_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
