# Empty compiler generated dependencies file for c_host.
# This may be replaced when dependencies are built.
