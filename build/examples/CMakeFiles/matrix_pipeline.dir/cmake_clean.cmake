file(REMOVE_RECURSE
  "CMakeFiles/matrix_pipeline.dir/matrix_pipeline.cpp.o"
  "CMakeFiles/matrix_pipeline.dir/matrix_pipeline.cpp.o.d"
  "matrix_pipeline"
  "matrix_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matrix_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
