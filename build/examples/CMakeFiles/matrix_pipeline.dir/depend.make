# Empty dependencies file for matrix_pipeline.
# This may be replaced when dependencies are built.
