# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;11;mcl_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_blackscholes_pricer "/root/repo/build/examples/blackscholes_pricer")
set_tests_properties(example_blackscholes_pricer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;12;mcl_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_matrix_pipeline "/root/repo/build/examples/matrix_pipeline")
set_tests_properties(example_matrix_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;13;mcl_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_device_explorer "/root/repo/build/examples/device_explorer")
set_tests_properties(example_device_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;14;mcl_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_autotune_wgsize "/root/repo/build/examples/autotune_wgsize")
set_tests_properties(example_autotune_wgsize PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;15;mcl_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_autotune_coalesce "/root/repo/build/examples/autotune_coalesce")
set_tests_properties(example_autotune_coalesce PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;16;mcl_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_async_pipeline "/root/repo/build/examples/async_pipeline")
set_tests_properties(example_async_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;17;mcl_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_image_blur "/root/repo/build/examples/image_blur")
set_tests_properties(example_image_blur PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;18;mcl_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_c_host "/root/repo/build/examples/c_host")
set_tests_properties(example_c_host PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
