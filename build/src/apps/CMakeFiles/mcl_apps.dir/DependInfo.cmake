
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/blackscholes.cpp" "src/apps/CMakeFiles/mcl_apps.dir/blackscholes.cpp.o" "gcc" "src/apps/CMakeFiles/mcl_apps.dir/blackscholes.cpp.o.d"
  "/root/repo/src/apps/convolution.cpp" "src/apps/CMakeFiles/mcl_apps.dir/convolution.cpp.o" "gcc" "src/apps/CMakeFiles/mcl_apps.dir/convolution.cpp.o.d"
  "/root/repo/src/apps/ilp.cpp" "src/apps/CMakeFiles/mcl_apps.dir/ilp.cpp.o" "gcc" "src/apps/CMakeFiles/mcl_apps.dir/ilp.cpp.o.d"
  "/root/repo/src/apps/matrixmul.cpp" "src/apps/CMakeFiles/mcl_apps.dir/matrixmul.cpp.o" "gcc" "src/apps/CMakeFiles/mcl_apps.dir/matrixmul.cpp.o.d"
  "/root/repo/src/apps/mbench.cpp" "src/apps/CMakeFiles/mcl_apps.dir/mbench.cpp.o" "gcc" "src/apps/CMakeFiles/mcl_apps.dir/mbench.cpp.o.d"
  "/root/repo/src/apps/parboil.cpp" "src/apps/CMakeFiles/mcl_apps.dir/parboil.cpp.o" "gcc" "src/apps/CMakeFiles/mcl_apps.dir/parboil.cpp.o.d"
  "/root/repo/src/apps/reduction.cpp" "src/apps/CMakeFiles/mcl_apps.dir/reduction.cpp.o" "gcc" "src/apps/CMakeFiles/mcl_apps.dir/reduction.cpp.o.d"
  "/root/repo/src/apps/simple.cpp" "src/apps/CMakeFiles/mcl_apps.dir/simple.cpp.o" "gcc" "src/apps/CMakeFiles/mcl_apps.dir/simple.cpp.o.d"
  "/root/repo/src/apps/spmv.cpp" "src/apps/CMakeFiles/mcl_apps.dir/spmv.cpp.o" "gcc" "src/apps/CMakeFiles/mcl_apps.dir/spmv.cpp.o.d"
  "/root/repo/src/apps/transpose.cpp" "src/apps/CMakeFiles/mcl_apps.dir/transpose.cpp.o" "gcc" "src/apps/CMakeFiles/mcl_apps.dir/transpose.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ocl/CMakeFiles/mcl_ocl.dir/DependInfo.cmake"
  "/root/repo/build/src/simd/CMakeFiles/mcl_simd.dir/DependInfo.cmake"
  "/root/repo/build/src/veclegal/CMakeFiles/mcl_veclegal.dir/DependInfo.cmake"
  "/root/repo/build/src/threading/CMakeFiles/mcl_threading.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/mcl_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mcl_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
