file(REMOVE_RECURSE
  "CMakeFiles/mcl_apps.dir/blackscholes.cpp.o"
  "CMakeFiles/mcl_apps.dir/blackscholes.cpp.o.d"
  "CMakeFiles/mcl_apps.dir/convolution.cpp.o"
  "CMakeFiles/mcl_apps.dir/convolution.cpp.o.d"
  "CMakeFiles/mcl_apps.dir/ilp.cpp.o"
  "CMakeFiles/mcl_apps.dir/ilp.cpp.o.d"
  "CMakeFiles/mcl_apps.dir/matrixmul.cpp.o"
  "CMakeFiles/mcl_apps.dir/matrixmul.cpp.o.d"
  "CMakeFiles/mcl_apps.dir/mbench.cpp.o"
  "CMakeFiles/mcl_apps.dir/mbench.cpp.o.d"
  "CMakeFiles/mcl_apps.dir/parboil.cpp.o"
  "CMakeFiles/mcl_apps.dir/parboil.cpp.o.d"
  "CMakeFiles/mcl_apps.dir/reduction.cpp.o"
  "CMakeFiles/mcl_apps.dir/reduction.cpp.o.d"
  "CMakeFiles/mcl_apps.dir/simple.cpp.o"
  "CMakeFiles/mcl_apps.dir/simple.cpp.o.d"
  "CMakeFiles/mcl_apps.dir/spmv.cpp.o"
  "CMakeFiles/mcl_apps.dir/spmv.cpp.o.d"
  "CMakeFiles/mcl_apps.dir/transpose.cpp.o"
  "CMakeFiles/mcl_apps.dir/transpose.cpp.o.d"
  "libmcl_apps.a"
  "libmcl_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcl_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
