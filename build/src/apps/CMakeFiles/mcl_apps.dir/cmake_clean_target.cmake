file(REMOVE_RECURSE
  "libmcl_apps.a"
)
