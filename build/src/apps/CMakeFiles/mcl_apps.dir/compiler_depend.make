# Empty compiler generated dependencies file for mcl_apps.
# This may be replaced when dependencies are built.
