file(REMOVE_RECURSE
  "CMakeFiles/mcl_cachesim.dir/cache.cpp.o"
  "CMakeFiles/mcl_cachesim.dir/cache.cpp.o.d"
  "CMakeFiles/mcl_cachesim.dir/hierarchy.cpp.o"
  "CMakeFiles/mcl_cachesim.dir/hierarchy.cpp.o.d"
  "libmcl_cachesim.a"
  "libmcl_cachesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcl_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
