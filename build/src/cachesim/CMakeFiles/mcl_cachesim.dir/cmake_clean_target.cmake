file(REMOVE_RECURSE
  "libmcl_cachesim.a"
)
