# Empty dependencies file for mcl_cachesim.
# This may be replaced when dependencies are built.
