
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/advisor.cpp" "src/core/CMakeFiles/mcl_core.dir/advisor.cpp.o" "gcc" "src/core/CMakeFiles/mcl_core.dir/advisor.cpp.o.d"
  "/root/repo/src/core/cli.cpp" "src/core/CMakeFiles/mcl_core.dir/cli.cpp.o" "gcc" "src/core/CMakeFiles/mcl_core.dir/cli.cpp.o.d"
  "/root/repo/src/core/error.cpp" "src/core/CMakeFiles/mcl_core.dir/error.cpp.o" "gcc" "src/core/CMakeFiles/mcl_core.dir/error.cpp.o.d"
  "/root/repo/src/core/harness.cpp" "src/core/CMakeFiles/mcl_core.dir/harness.cpp.o" "gcc" "src/core/CMakeFiles/mcl_core.dir/harness.cpp.o.d"
  "/root/repo/src/core/stats.cpp" "src/core/CMakeFiles/mcl_core.dir/stats.cpp.o" "gcc" "src/core/CMakeFiles/mcl_core.dir/stats.cpp.o.d"
  "/root/repo/src/core/sysinfo.cpp" "src/core/CMakeFiles/mcl_core.dir/sysinfo.cpp.o" "gcc" "src/core/CMakeFiles/mcl_core.dir/sysinfo.cpp.o.d"
  "/root/repo/src/core/table.cpp" "src/core/CMakeFiles/mcl_core.dir/table.cpp.o" "gcc" "src/core/CMakeFiles/mcl_core.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
