file(REMOVE_RECURSE
  "CMakeFiles/mcl_core.dir/advisor.cpp.o"
  "CMakeFiles/mcl_core.dir/advisor.cpp.o.d"
  "CMakeFiles/mcl_core.dir/cli.cpp.o"
  "CMakeFiles/mcl_core.dir/cli.cpp.o.d"
  "CMakeFiles/mcl_core.dir/error.cpp.o"
  "CMakeFiles/mcl_core.dir/error.cpp.o.d"
  "CMakeFiles/mcl_core.dir/harness.cpp.o"
  "CMakeFiles/mcl_core.dir/harness.cpp.o.d"
  "CMakeFiles/mcl_core.dir/stats.cpp.o"
  "CMakeFiles/mcl_core.dir/stats.cpp.o.d"
  "CMakeFiles/mcl_core.dir/sysinfo.cpp.o"
  "CMakeFiles/mcl_core.dir/sysinfo.cpp.o.d"
  "CMakeFiles/mcl_core.dir/table.cpp.o"
  "CMakeFiles/mcl_core.dir/table.cpp.o.d"
  "libmcl_core.a"
  "libmcl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
