file(REMOVE_RECURSE
  "libmcl_core.a"
)
