# Empty dependencies file for mcl_core.
# This may be replaced when dependencies are built.
