
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpusim/detailed.cpp" "src/gpusim/CMakeFiles/mcl_gpusim.dir/detailed.cpp.o" "gcc" "src/gpusim/CMakeFiles/mcl_gpusim.dir/detailed.cpp.o.d"
  "/root/repo/src/gpusim/gpusim.cpp" "src/gpusim/CMakeFiles/mcl_gpusim.dir/gpusim.cpp.o" "gcc" "src/gpusim/CMakeFiles/mcl_gpusim.dir/gpusim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mcl_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
