file(REMOVE_RECURSE
  "CMakeFiles/mcl_gpusim.dir/detailed.cpp.o"
  "CMakeFiles/mcl_gpusim.dir/detailed.cpp.o.d"
  "CMakeFiles/mcl_gpusim.dir/gpusim.cpp.o"
  "CMakeFiles/mcl_gpusim.dir/gpusim.cpp.o.d"
  "libmcl_gpusim.a"
  "libmcl_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcl_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
