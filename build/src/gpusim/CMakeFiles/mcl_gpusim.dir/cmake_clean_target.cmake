file(REMOVE_RECURSE
  "libmcl_gpusim.a"
)
