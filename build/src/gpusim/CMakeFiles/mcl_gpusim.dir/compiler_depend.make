# Empty compiler generated dependencies file for mcl_gpusim.
# This may be replaced when dependencies are built.
