
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ocl/buffer.cpp" "src/ocl/CMakeFiles/mcl_ocl.dir/buffer.cpp.o" "gcc" "src/ocl/CMakeFiles/mcl_ocl.dir/buffer.cpp.o.d"
  "/root/repo/src/ocl/capi.cpp" "src/ocl/CMakeFiles/mcl_ocl.dir/capi.cpp.o" "gcc" "src/ocl/CMakeFiles/mcl_ocl.dir/capi.cpp.o.d"
  "/root/repo/src/ocl/cpu_device.cpp" "src/ocl/CMakeFiles/mcl_ocl.dir/cpu_device.cpp.o" "gcc" "src/ocl/CMakeFiles/mcl_ocl.dir/cpu_device.cpp.o.d"
  "/root/repo/src/ocl/detail/group_runner.cpp" "src/ocl/CMakeFiles/mcl_ocl.dir/detail/group_runner.cpp.o" "gcc" "src/ocl/CMakeFiles/mcl_ocl.dir/detail/group_runner.cpp.o.d"
  "/root/repo/src/ocl/image.cpp" "src/ocl/CMakeFiles/mcl_ocl.dir/image.cpp.o" "gcc" "src/ocl/CMakeFiles/mcl_ocl.dir/image.cpp.o.d"
  "/root/repo/src/ocl/info.cpp" "src/ocl/CMakeFiles/mcl_ocl.dir/info.cpp.o" "gcc" "src/ocl/CMakeFiles/mcl_ocl.dir/info.cpp.o.d"
  "/root/repo/src/ocl/kernel.cpp" "src/ocl/CMakeFiles/mcl_ocl.dir/kernel.cpp.o" "gcc" "src/ocl/CMakeFiles/mcl_ocl.dir/kernel.cpp.o.d"
  "/root/repo/src/ocl/platform.cpp" "src/ocl/CMakeFiles/mcl_ocl.dir/platform.cpp.o" "gcc" "src/ocl/CMakeFiles/mcl_ocl.dir/platform.cpp.o.d"
  "/root/repo/src/ocl/queue.cpp" "src/ocl/CMakeFiles/mcl_ocl.dir/queue.cpp.o" "gcc" "src/ocl/CMakeFiles/mcl_ocl.dir/queue.cpp.o.d"
  "/root/repo/src/ocl/sim_gpu_device.cpp" "src/ocl/CMakeFiles/mcl_ocl.dir/sim_gpu_device.cpp.o" "gcc" "src/ocl/CMakeFiles/mcl_ocl.dir/sim_gpu_device.cpp.o.d"
  "/root/repo/src/ocl/types.cpp" "src/ocl/CMakeFiles/mcl_ocl.dir/types.cpp.o" "gcc" "src/ocl/CMakeFiles/mcl_ocl.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mcl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/threading/CMakeFiles/mcl_threading.dir/DependInfo.cmake"
  "/root/repo/build/src/simd/CMakeFiles/mcl_simd.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/mcl_gpusim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
