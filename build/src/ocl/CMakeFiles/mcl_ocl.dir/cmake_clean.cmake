file(REMOVE_RECURSE
  "CMakeFiles/mcl_ocl.dir/buffer.cpp.o"
  "CMakeFiles/mcl_ocl.dir/buffer.cpp.o.d"
  "CMakeFiles/mcl_ocl.dir/capi.cpp.o"
  "CMakeFiles/mcl_ocl.dir/capi.cpp.o.d"
  "CMakeFiles/mcl_ocl.dir/cpu_device.cpp.o"
  "CMakeFiles/mcl_ocl.dir/cpu_device.cpp.o.d"
  "CMakeFiles/mcl_ocl.dir/detail/group_runner.cpp.o"
  "CMakeFiles/mcl_ocl.dir/detail/group_runner.cpp.o.d"
  "CMakeFiles/mcl_ocl.dir/image.cpp.o"
  "CMakeFiles/mcl_ocl.dir/image.cpp.o.d"
  "CMakeFiles/mcl_ocl.dir/info.cpp.o"
  "CMakeFiles/mcl_ocl.dir/info.cpp.o.d"
  "CMakeFiles/mcl_ocl.dir/kernel.cpp.o"
  "CMakeFiles/mcl_ocl.dir/kernel.cpp.o.d"
  "CMakeFiles/mcl_ocl.dir/platform.cpp.o"
  "CMakeFiles/mcl_ocl.dir/platform.cpp.o.d"
  "CMakeFiles/mcl_ocl.dir/queue.cpp.o"
  "CMakeFiles/mcl_ocl.dir/queue.cpp.o.d"
  "CMakeFiles/mcl_ocl.dir/sim_gpu_device.cpp.o"
  "CMakeFiles/mcl_ocl.dir/sim_gpu_device.cpp.o.d"
  "CMakeFiles/mcl_ocl.dir/types.cpp.o"
  "CMakeFiles/mcl_ocl.dir/types.cpp.o.d"
  "libmcl_ocl.a"
  "libmcl_ocl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcl_ocl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
