file(REMOVE_RECURSE
  "libmcl_ocl.a"
)
