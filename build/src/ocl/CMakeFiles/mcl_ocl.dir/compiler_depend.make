# Empty compiler generated dependencies file for mcl_ocl.
# This may be replaced when dependencies are built.
