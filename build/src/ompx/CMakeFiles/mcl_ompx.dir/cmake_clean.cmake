file(REMOVE_RECURSE
  "CMakeFiles/mcl_ompx.dir/ompx.cpp.o"
  "CMakeFiles/mcl_ompx.dir/ompx.cpp.o.d"
  "libmcl_ompx.a"
  "libmcl_ompx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcl_ompx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
