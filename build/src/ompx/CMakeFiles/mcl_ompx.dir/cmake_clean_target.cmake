file(REMOVE_RECURSE
  "libmcl_ompx.a"
)
