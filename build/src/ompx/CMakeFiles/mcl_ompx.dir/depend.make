# Empty dependencies file for mcl_ompx.
# This may be replaced when dependencies are built.
