file(REMOVE_RECURSE
  "CMakeFiles/mcl_simd.dir/isa.cpp.o"
  "CMakeFiles/mcl_simd.dir/isa.cpp.o.d"
  "libmcl_simd.a"
  "libmcl_simd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcl_simd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
