file(REMOVE_RECURSE
  "libmcl_simd.a"
)
