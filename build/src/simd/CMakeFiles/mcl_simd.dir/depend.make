# Empty dependencies file for mcl_simd.
# This may be replaced when dependencies are built.
