file(REMOVE_RECURSE
  "CMakeFiles/mcl_threading.dir/affinity.cpp.o"
  "CMakeFiles/mcl_threading.dir/affinity.cpp.o.d"
  "CMakeFiles/mcl_threading.dir/fiber.cpp.o"
  "CMakeFiles/mcl_threading.dir/fiber.cpp.o.d"
  "CMakeFiles/mcl_threading.dir/thread_pool.cpp.o"
  "CMakeFiles/mcl_threading.dir/thread_pool.cpp.o.d"
  "libmcl_threading.a"
  "libmcl_threading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcl_threading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
