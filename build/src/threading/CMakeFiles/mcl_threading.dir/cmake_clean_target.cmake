file(REMOVE_RECURSE
  "libmcl_threading.a"
)
