# Empty compiler generated dependencies file for mcl_threading.
# This may be replaced when dependencies are built.
