file(REMOVE_RECURSE
  "CMakeFiles/mcl_veclegal.dir/analysis.cpp.o"
  "CMakeFiles/mcl_veclegal.dir/analysis.cpp.o.d"
  "CMakeFiles/mcl_veclegal.dir/nest.cpp.o"
  "CMakeFiles/mcl_veclegal.dir/nest.cpp.o.d"
  "libmcl_veclegal.a"
  "libmcl_veclegal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcl_veclegal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
