file(REMOVE_RECURSE
  "libmcl_veclegal.a"
)
