# Empty dependencies file for mcl_veclegal.
# This may be replaced when dependencies are built.
