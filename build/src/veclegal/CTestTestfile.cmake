# CMake generated Testfile for 
# Source directory: /root/repo/src/veclegal
# Build directory: /root/repo/build/src/veclegal
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
