file(REMOVE_RECURSE
  "CMakeFiles/ompx_test.dir/ompx_test.cpp.o"
  "CMakeFiles/ompx_test.dir/ompx_test.cpp.o.d"
  "ompx_test"
  "ompx_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ompx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
