# Empty compiler generated dependencies file for ompx_test.
# This may be replaced when dependencies are built.
