file(REMOVE_RECURSE
  "CMakeFiles/veclegal_test.dir/veclegal_test.cpp.o"
  "CMakeFiles/veclegal_test.dir/veclegal_test.cpp.o.d"
  "veclegal_test"
  "veclegal_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veclegal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
