# Empty dependencies file for veclegal_test.
# This may be replaced when dependencies are built.
