# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;13;mcl_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(advisor_test "/root/repo/build/tests/advisor_test")
set_tests_properties(advisor_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;14;mcl_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(threading_test "/root/repo/build/tests/threading_test")
set_tests_properties(threading_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;15;mcl_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(simd_test "/root/repo/build/tests/simd_test")
set_tests_properties(simd_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;16;mcl_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ompx_test "/root/repo/build/tests/ompx_test")
set_tests_properties(ompx_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;17;mcl_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cachesim_test "/root/repo/build/tests/cachesim_test")
set_tests_properties(cachesim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;18;mcl_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(gpusim_test "/root/repo/build/tests/gpusim_test")
set_tests_properties(gpusim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;19;mcl_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ocl_test "/root/repo/build/tests/ocl_test")
set_tests_properties(ocl_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;20;mcl_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(veclegal_test "/root/repo/build/tests/veclegal_test")
set_tests_properties(veclegal_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;21;mcl_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(apps_test "/root/repo/build/tests/apps_test")
set_tests_properties(apps_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;22;mcl_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;23;mcl_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(capi_test "/root/repo/build/tests/capi_test")
set_tests_properties(capi_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;31;add_test;/root/repo/tests/CMakeLists.txt;0;")
