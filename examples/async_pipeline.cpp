// Streaming pipeline with the asynchronous queue API: batches of options
// flow through write -> price -> read without the host blocking per step,
// using double buffering and cross-queue event dependencies — the classic
// OpenCL overlap pattern, expressed in MiniCL.
#include <cstdio>
#include <vector>

#include "apps/blackscholes.hpp"
#include "apps/hostdata.hpp"
#include "core/time.hpp"
#include "ocl/platform.hpp"
#include "ocl/queue.hpp"

int main() {
  using namespace mcl;
  const std::size_t batch = 64 * 1024;
  const int batches = 8;
  const float r = 0.02f, v = 0.30f;

  ocl::Platform platform;
  ocl::Context ctx(platform.cpu());
  ocl::CommandQueue queue(ctx);

  // Two in-flight slots (double buffering).
  struct Slot {
    ocl::Buffer s, x, t, call, put;
    apps::FloatVec host_s, host_x, host_t, host_call;
    ocl::AsyncEventPtr done;
  };
  auto make_slot = [&](std::uint64_t seed) {
    return Slot{
        ctx.create_buffer(ocl::MemFlags::ReadOnly, batch * 4),
        ctx.create_buffer(ocl::MemFlags::ReadOnly, batch * 4),
        ctx.create_buffer(ocl::MemFlags::ReadOnly, batch * 4),
        ctx.create_buffer(ocl::MemFlags::WriteOnly, batch * 4),
        ctx.create_buffer(ocl::MemFlags::WriteOnly, batch * 4),
        apps::random_floats(batch, seed, 5.0f, 30.0f),
        apps::random_floats(batch, seed + 1, 1.0f, 100.0f),
        apps::random_floats(batch, seed + 2, 0.25f, 10.0f),
        apps::FloatVec(batch, 0.0f),
        nullptr};
  };
  Slot slots[2] = {make_slot(100), make_slot(200)};

  const core::WallTimer timer;
  double priced = 0;
  for (int b = 0; b < batches; ++b) {
    Slot& slot = slots[b % 2];
    // Wait for this slot's previous round-trip before reusing its buffers.
    if (slot.done) slot.done->wait();

    ocl::Kernel k = ctx.create_kernel(ocl::Program::builtin(),
                                      apps::kBlackScholesKernel);
    k.set_arg(0, slot.s);
    k.set_arg(1, slot.x);
    k.set_arg(2, slot.t);
    k.set_arg(3, slot.call);
    k.set_arg(4, slot.put);
    k.set_arg(5, r);
    k.set_arg(6, v);

    // write -> kernel -> read, all non-blocking; the queue keeps them in
    // order while the host immediately moves on to feed the other slot.
    (void)queue.enqueue_write_buffer_async(slot.s, 0, batch * 4,
                                           slot.host_s.data());
    (void)queue.enqueue_write_buffer_async(slot.x, 0, batch * 4,
                                           slot.host_x.data());
    (void)queue.enqueue_write_buffer_async(slot.t, 0, batch * 4,
                                           slot.host_t.data());
    (void)queue.enqueue_ndrange_async(k, ocl::NDRange{batch},
                                      ocl::NDRange{256});
    slot.done = queue.enqueue_read_buffer_async(slot.call, 0, batch * 4,
                                                slot.host_call.data());
    priced += static_cast<double>(batch);
  }
  queue.finish();
  const double elapsed = timer.elapsed();

  // Validate the last batch against the serial reference.
  Slot& last = slots[(batches - 1) % 2];
  apps::FloatVec expect_call(batch), expect_put(batch);
  apps::blackscholes_reference(last.host_s, last.host_x, last.host_t,
                               expect_call, expect_put, r, v);
  const double err = apps::max_abs_diff(last.host_call, expect_call);

  std::printf("priced %d batches x %zu options in %.1f ms (%.1f Mopt/s)\n",
              batches, batch, elapsed * 1e3, priced / elapsed / 1e6);
  std::printf("last batch max error vs reference: %.2e -> %s\n", err,
              err < 2e-4 ? "OK" : "MISMATCH");
  return err < 2e-4 ? 0 : 1;
}
