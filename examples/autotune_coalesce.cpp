// Workitem-coalescing autotuner: the paper's finding 1 (work per workitem)
// operationalized. For an elementwise workload of a given size, sweeps the
// coalescing factor (elements per workitem), reports the throughput curve,
// and shows where the advisor's static rule of thumb lands relative to the
// measured optimum.
//
// Usage: autotune_coalesce [n]   (default 1000000)
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>

#include "apps/hostdata.hpp"
#include "apps/simple.hpp"
#include "core/advisor.hpp"
#include "core/harness.hpp"
#include "core/table.hpp"
#include "ocl/platform.hpp"
#include "ocl/queue.hpp"

int main(int argc, char** argv) {
  using namespace mcl;
  const std::size_t n = argc > 1 ? std::stoul(argv[1]) : 1'000'000;

  ocl::Platform platform;
  ocl::Context ctx(platform.cpu());
  ocl::CommandQueue queue(ctx);

  const apps::FloatVec in = apps::random_floats(n, 1, -2.0f, 2.0f);
  ocl::Buffer bin = ctx.create_buffer(
      ocl::MemFlags::ReadOnly | ocl::MemFlags::CopyHostPtr, n * 4,
      const_cast<float*>(in.data()));
  ocl::Buffer bout = ctx.create_buffer(ocl::MemFlags::WriteOnly, n * 4);

  const core::MeasureOptions opts{.min_time = 0.05, .warmup_iters = 1,
                                  .min_iters = 3};
  core::Table t("Coalescing sweep: square, n=" + std::to_string(n),
                {"elems/workitem", "workitems", "ms/iter", "Melem/s",
                 "advisor verdict"});

  double best = 1e30;
  unsigned best_factor = 1;
  for (unsigned factor = 1; factor <= 4096 && n / factor >= 64; factor *= 4) {
    if (n % factor != 0) continue;
    const std::size_t items = n / factor;

    ocl::Kernel k = ctx.create_kernel(
        ocl::Program::builtin(),
        factor == 1 ? apps::kSquareKernel : apps::kSquareCoalescedKernel);
    k.set_arg(0, bin);
    k.set_arg(1, bout);
    if (factor != 1) k.set_arg(2, factor);

    const double time =
        core::measure_reported(
            [&] {
              return queue.enqueue_ndrange(k, ocl::NDRange{items}).seconds;
            },
            opts)
            .per_iter_s;

    // What would the advisor say about this configuration?
    advisor::LaunchProfile profile;
    profile.global_items = items;
    profile.local_items = 64;
    profile.flops_per_item = factor;          // 1 mul per element
    profile.bytes_per_item = 8ull * factor;   // load + store per element
    profile.ilp_chains = factor > 1 ? 2 : 1;
    profile.cpu_logical_cores = platform.cpu().compute_units();
    const auto advice = advisor::analyze(profile);
    const bool flagged = std::any_of(
        advice.begin(), advice.end(), [](const advisor::Advice& a) {
          return a.finding == advisor::Finding::WorkPerItem;
        });

    t.add_row({static_cast<double>(factor), static_cast<double>(items),
               time * 1e3, static_cast<double>(n) / time / 1e6,
               std::string(flagged ? "coalesce more" : "ok")});
    if (time < best) {
      best = time;
      best_factor = factor;
    }
  }
  t.print(std::cout);
  std::printf("\nbest factor: %u elements/workitem (%.1f Melem/s)\n",
              best_factor, static_cast<double>(n) / best / 1e6);
  return 0;
}
