// Workgroup-size autotuner: the paper's finding 1 operationalized. Given a
// registered kernel and a 1D problem size, sweeps candidate local sizes on
// the CPU device, reports the measured curve, and contrasts the winner with
// the runtime's NULL-local-size default.
//
// Usage: autotune_wgsize [kernel] [n]   (default: square 1000000)
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>

#include "apps/hostdata.hpp"
#include "apps/simple.hpp"
#include "core/harness.hpp"
#include "core/table.hpp"
#include "ocl/platform.hpp"
#include "ocl/queue.hpp"

int main(int argc, char** argv) {
  using namespace mcl;
  const std::string kernel_name = argc > 1 ? argv[1] : "square";
  const std::size_t n = argc > 2 ? std::stoul(argv[2]) : 1'000'000;

  ocl::Platform platform;
  ocl::Context ctx(platform.cpu());
  ocl::CommandQueue queue(ctx);

  // The tuner handles the two-buffer elementwise kernels (square) and the
  // three-buffer ones (vectoradd); both ship with the apps library.
  const bool three_buffers = kernel_name == "vectoradd";
  const apps::FloatVec a = apps::random_floats(n, 1);
  ocl::Buffer in1 = ctx.create_buffer(
      ocl::MemFlags::ReadOnly | ocl::MemFlags::CopyHostPtr, n * 4,
      const_cast<float*>(a.data()));
  ocl::Buffer in2 = ctx.create_buffer(
      ocl::MemFlags::ReadOnly | ocl::MemFlags::CopyHostPtr, n * 4,
      const_cast<float*>(a.data()));
  ocl::Buffer out = ctx.create_buffer(ocl::MemFlags::WriteOnly, n * 4);

  ocl::Kernel kernel = ctx.create_kernel(ocl::Program::builtin(), kernel_name);
  kernel.set_arg(0, in1);
  if (three_buffers) {
    kernel.set_arg(1, in2);
    kernel.set_arg(2, out);
  } else {
    kernel.set_arg(1, out);
  }

  const core::MeasureOptions opts{.min_time = 0.05, .warmup_iters = 1,
                                  .min_iters = 3};
  auto time_local = [&](const ocl::NDRange& local) {
    return core::measure_reported(
               [&] {
                 return queue.enqueue_ndrange(kernel, ocl::NDRange{n}, local)
                     .seconds;
               },
               opts)
        .per_iter_s;
  };

  core::Table t("Autotune '" + kernel_name + "' (n=" + std::to_string(n) + ")",
                {"local size", "ms/iter", "Melem/s"});
  double best = 1e30;
  std::size_t best_local = 0;
  std::size_t prev = 0;
  for (std::size_t target = 1; target <= 8192 && target <= n; target *= 4) {
    // Candidate = largest divisor of n at or below the target, so sizes like
    // n = 100000 still get a useful sweep (50, 200, 800, ...).
    std::size_t local = 1;
    for (std::size_t d = std::min(n, target); d >= 1; --d) {
      if (n % d == 0) {
        local = d;
        break;
      }
    }
    if (local == prev) continue;
    prev = local;
    const double time = time_local(ocl::NDRange{local});
    t.add_row({static_cast<double>(local), time * 1e3,
               static_cast<double>(n) / time / 1e6});
    if (time < best) {
      best = time;
      best_local = local;
    }
  }
  const double null_time = time_local(ocl::NDRange{});
  t.add_row({std::string("NULL (runtime default)"), null_time * 1e3,
             static_cast<double>(n) / null_time / 1e6});
  t.print(std::cout);

  std::printf("\nbest local size: %zu (%.2fx over the NULL default)\n",
              best_local, null_time / best);
  std::printf("the paper's finding 1: set local size explicitly on CPUs.\n");
  return 0;
}
