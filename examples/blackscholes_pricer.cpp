// Option-pricing service: prices a portfolio of European options with the
// Black-Scholes kernel, applying the paper's CPU guidance end to end:
//   - map/unmap instead of explicit copies (finding 3, Fig 7),
//   - an explicit, swept workgroup size rather than NULL (finding 1, Fig 3),
//   - the advisor validating the final launch configuration.
#include <cstdio>
#include <string>

#include "apps/blackscholes.hpp"
#include "apps/hostdata.hpp"
#include "core/advisor.hpp"
#include "core/harness.hpp"
#include "ocl/platform.hpp"
#include "ocl/queue.hpp"

int main(int argc, char** argv) {
  using namespace mcl;
  const std::size_t side = argc > 1 ? std::stoul(argv[1]) : 512;
  const std::size_t n = side * side;
  const float risk_free = 0.02f, volatility = 0.30f;

  ocl::Platform platform;
  ocl::Context ctx(platform.cpu());
  ocl::CommandQueue queue(ctx);

  // Host-visible buffers: the host writes inputs through mapped pointers,
  // so no staging copies ever happen (Fig 7's winning configuration).
  auto make = [&](ocl::MemFlags access) {
    return ctx.create_buffer(access | ocl::MemFlags::AllocHostPtr,
                             n * sizeof(float));
  };
  ocl::Buffer spot = make(ocl::MemFlags::ReadOnly);
  ocl::Buffer strike = make(ocl::MemFlags::ReadOnly);
  ocl::Buffer expiry = make(ocl::MemFlags::ReadOnly);
  ocl::Buffer call = make(ocl::MemFlags::WriteOnly);
  ocl::Buffer put = make(ocl::MemFlags::WriteOnly);

  // Produce the portfolio directly into mapped memory.
  {
    auto fill = [&](ocl::Buffer& buf, std::uint64_t seed, float lo, float hi) {
      auto* p = static_cast<float*>(
          queue.enqueue_map_buffer(buf, ocl::MapFlags::Write, 0, buf.size()));
      core::fill_uniform({p, n}, seed, lo, hi);
      (void)queue.enqueue_unmap(buf, p);
    };
    fill(spot, 11, 5.0f, 30.0f);
    fill(strike, 12, 1.0f, 100.0f);
    fill(expiry, 13, 0.25f, 10.0f);
  }

  ocl::Kernel kernel = ctx.create_kernel(ocl::Program::builtin(),
                                         apps::kBlackScholesKernel);
  kernel.set_arg(0, spot);
  kernel.set_arg(1, strike);
  kernel.set_arg(2, expiry);
  kernel.set_arg(3, call);
  kernel.set_arg(4, put);
  kernel.set_arg(5, risk_free);
  kernel.set_arg(6, volatility);

  // Sweep a few workgroup sizes instead of trusting NULL (Fig 3's lesson).
  ocl::NDRange best_local;
  double best_time = 1e30;
  for (std::size_t lx : {8u, 16u, 32u}) {
    for (std::size_t ly : {4u, 8u, 16u}) {
      if (side % lx != 0 || side % ly != 0) continue;
      const auto m = core::measure_reported(
          [&] {
            return queue
                .enqueue_ndrange(kernel, ocl::NDRange(side, side),
                                 ocl::NDRange(lx, ly))
                .seconds;
          },
          {.min_time = 0.02, .warmup_iters = 1, .min_iters = 2});
      if (m.per_iter_s < best_time) {
        best_time = m.per_iter_s;
        best_local = ocl::NDRange(lx, ly);
      }
    }
  }
  std::printf("priced %zu options in %.2f ms (local %zux%zu, %.1f Mopt/s)\n",
              n, best_time * 1e3, best_local[0], best_local[1],
              static_cast<double>(n) / best_time / 1e6);

  // Ask the advisor whether this launch leaves CPU performance on the table.
  advisor::LaunchProfile profile;
  profile.global_items = n;
  profile.local_items = best_local.total();
  profile.flops_per_item = 70;
  profile.bytes_per_item = 20;
  profile.ilp_chains = 2;
  profile.uses_explicit_copy = false;
  profile.cpu_logical_cores = platform.cpu().compute_units();
  const auto advice = advisor::analyze(profile);
  if (advice.empty()) {
    std::printf("advisor: launch configuration follows all five findings\n");
  }
  for (const auto& a : advice) {
    std::printf("advisor [%s/%s]: %s\n", to_string(a.severity).data(),
                to_string(a.finding).data(), a.message.c_str());
  }

  // Spot-check against the serial reference.
  auto* c_ptr = static_cast<float*>(
      queue.enqueue_map_buffer(call, ocl::MapFlags::Read, 0, call.size()));
  auto* s_ptr = static_cast<float*>(
      queue.enqueue_map_buffer(spot, ocl::MapFlags::Read, 0, spot.size()));
  std::printf("sample: spot %.2f -> call %.4f\n", s_ptr[0], c_ptr[0]);
  (void)queue.enqueue_unmap(call, c_ptr);
  (void)queue.enqueue_unmap(spot, s_ptr);
  return 0;
}
