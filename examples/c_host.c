/* Host program written in plain C against the MiniCL C API (mcl.h):
 * discovers devices, prices nothing fancy — squares a vector on the CPU
 * device and verifies the result. Build target proves the C binding is
 * usable without any C++ in the host code. */
#include <stdio.h>
#include <stdlib.h>

#include "ocl/mcl.h"

int main(void) {
  mcl_device_id device;
  mcl_uint ndev = 0;
  if (mclGetDeviceIDs(MCL_DEVICE_TYPE_CPU, 1, &device, &ndev) != MCL_SUCCESS ||
      ndev == 0) {
    fprintf(stderr, "no CPU device\n");
    return 1;
  }
  char name[128];
  mclGetDeviceName(device, sizeof(name), name);
  printf("device: %s\n", name);

  mcl_int err;
  mcl_context ctx = mclCreateContext(device, &err);
  mcl_command_queue queue = mclCreateCommandQueue(ctx, &err);

  enum { N = 1 << 16 };
  float* in = (float*)malloc(N * sizeof(float));
  float* out = (float*)malloc(N * sizeof(float));
  for (int i = 0; i < N; ++i) in[i] = (float)i * 0.5f;

  mcl_mem min = mclCreateBuffer(ctx, MCL_MEM_READ_ONLY | MCL_MEM_COPY_HOST_PTR,
                                N * sizeof(float), in, &err);
  mcl_mem mout =
      mclCreateBuffer(ctx, MCL_MEM_WRITE_ONLY, N * sizeof(float), NULL, &err);

  mcl_kernel kernel = mclCreateKernel(ctx, "square", &err);
  mclSetKernelArg(kernel, 0, sizeof(mcl_mem), &min);
  mclSetKernelArg(kernel, 1, sizeof(mcl_mem), &mout);

  size_t global = N, local = 256;
  if (mclEnqueueNDRangeKernel(queue, kernel, 1, &global, &local) !=
      MCL_SUCCESS) {
    fprintf(stderr, "launch failed\n");
    return 1;
  }
  mclEnqueueReadBuffer(queue, mout, MCL_TRUE, 0, N * sizeof(float), out);

  int bad = 0;
  for (int i = 0; i < N; ++i) {
    const float expect = in[i] * in[i];
    if (out[i] != expect) ++bad;
  }
  printf("%d elements squared, %d mismatches -> %s\n", N, bad,
         bad == 0 ? "OK" : "FAIL");

  mclReleaseKernel(kernel);
  mclReleaseMemObject(min);
  mclReleaseMemObject(mout);
  mclReleaseCommandQueue(queue);
  mclReleaseContext(ctx);
  free(in);
  free(out);
  return bad == 0 ? 0 : 1;
}
