/*
 * hello_opencl.c — a classic OpenCL 1.1 "hello world" host program:
 * discover the platform and a CPU device, build a program from source,
 * square a vector through a buffer round-trip, and verify the result via
 * both an element-wise reference check and a golden FNV-1a digest.
 *
 * This file is deliberately written the way third-party OpenCL samples are
 * written: plain C99, includes only <CL/cl.h> and libc, no vendor or
 * MiniCL-specific headers. It is the conformance proof that unmodified
 * host programs compile and run against include/CL/cl.h.
 *
 * Output contract (checked by ctest): prints "conformance: PASSED" on
 * success, "conformance: FAILED (...)" and exits nonzero otherwise.
 */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#include <CL/cl.h>

#define N (1 << 16)
#define GOLDEN_DIGEST 0x8d9f543eu

static const char* kSource =
    "__kernel void square(__global const float* in, __global float* out) {\n"
    "  size_t i = get_global_id(0);\n"
    "  out[i] = in[i] * in[i];\n"
    "}\n";

static unsigned fnv1a(const void* data, size_t n) {
  const unsigned char* p = (const unsigned char*)data;
  unsigned h = 2166136261u;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 16777619u;
  }
  return h;
}

static int fail(const char* what, cl_int err) {
  printf("conformance: FAILED (%s, err=%d)\n", what, (int)err);
  return 1;
}

int main(void) {
  cl_int err;

  /* --- discovery --- */
  cl_platform_id platform;
  cl_uint num_platforms;
  err = clGetPlatformIDs(1, &platform, &num_platforms);
  if (err != CL_SUCCESS || num_platforms == 0) {
    return fail("clGetPlatformIDs", err);
  }
  char name[256];
  err = clGetPlatformInfo(platform, CL_PLATFORM_NAME, sizeof(name), name,
                          NULL);
  if (err != CL_SUCCESS) return fail("clGetPlatformInfo", err);
  printf("platform: %s\n", name);

  cl_device_id device;
  err = clGetDeviceIDs(platform, CL_DEVICE_TYPE_CPU, 1, &device, NULL);
  if (err != CL_SUCCESS) return fail("clGetDeviceIDs", err);
  err = clGetDeviceInfo(device, CL_DEVICE_NAME, sizeof(name), name, NULL);
  if (err != CL_SUCCESS) return fail("clGetDeviceInfo", err);
  cl_uint units = 0;
  err = clGetDeviceInfo(device, CL_DEVICE_MAX_COMPUTE_UNITS, sizeof(units),
                        &units, NULL);
  if (err != CL_SUCCESS) return fail("clGetDeviceInfo(units)", err);
  printf("device: %s (%u compute units)\n", name, (unsigned)units);

  /* --- context + queue --- */
  cl_context context =
      clCreateContext(NULL, 1, &device, NULL, NULL, &err);
  if (err != CL_SUCCESS) return fail("clCreateContext", err);
  cl_command_queue queue =
      clCreateCommandQueue(context, device, CL_QUEUE_PROFILING_ENABLE, &err);
  if (err != CL_SUCCESS) return fail("clCreateCommandQueue", err);

  /* --- program + kernel --- */
  cl_program program =
      clCreateProgramWithSource(context, 1, &kSource, NULL, &err);
  if (err != CL_SUCCESS) return fail("clCreateProgramWithSource", err);
  err = clBuildProgram(program, 1, &device, "", NULL, NULL);
  if (err != CL_SUCCESS) {
    char log[2048];
    clGetProgramBuildInfo(program, device, CL_PROGRAM_BUILD_LOG, sizeof(log),
                          log, NULL);
    printf("build log: %s\n", log);
    return fail("clBuildProgram", err);
  }
  cl_kernel kernel = clCreateKernel(program, "square", &err);
  if (err != CL_SUCCESS) return fail("clCreateKernel", err);

  /* --- buffers --- */
  float* input = (float*)malloc(N * sizeof(float));
  float* output = (float*)malloc(N * sizeof(float));
  if (input == NULL || output == NULL) return fail("malloc", 0);
  for (size_t i = 0; i < N; ++i) input[i] = (float)(i % 1000) * 0.5f;

  cl_mem in_buf =
      clCreateBuffer(context, CL_MEM_READ_ONLY | CL_MEM_COPY_HOST_PTR,
                     N * sizeof(float), input, &err);
  if (err != CL_SUCCESS) return fail("clCreateBuffer(in)", err);
  cl_mem out_buf = clCreateBuffer(context, CL_MEM_WRITE_ONLY,
                                  N * sizeof(float), NULL, &err);
  if (err != CL_SUCCESS) return fail("clCreateBuffer(out)", err);

  /* --- launch --- */
  err = clSetKernelArg(kernel, 0, sizeof(cl_mem), &in_buf);
  if (err != CL_SUCCESS) return fail("clSetKernelArg(0)", err);
  err = clSetKernelArg(kernel, 1, sizeof(cl_mem), &out_buf);
  if (err != CL_SUCCESS) return fail("clSetKernelArg(1)", err);

  size_t global = N;
  size_t local = 64;
  cl_event kernel_event;
  err = clEnqueueNDRangeKernel(queue, kernel, 1, NULL, &global, &local, 0,
                               NULL, &kernel_event);
  if (err != CL_SUCCESS) return fail("clEnqueueNDRangeKernel", err);

  err = clEnqueueReadBuffer(queue, out_buf, CL_TRUE, 0, N * sizeof(float),
                            output, 1, &kernel_event, NULL);
  if (err != CL_SUCCESS) return fail("clEnqueueReadBuffer", err);
  err = clFinish(queue);
  if (err != CL_SUCCESS) return fail("clFinish", err);

  /* --- profiling sanity: START <= END, both nonzero --- */
  cl_ulong t_start = 0, t_end = 0;
  err = clGetEventProfilingInfo(kernel_event, CL_PROFILING_COMMAND_START,
                                sizeof(t_start), &t_start, NULL);
  if (err != CL_SUCCESS) return fail("clGetEventProfilingInfo(start)", err);
  err = clGetEventProfilingInfo(kernel_event, CL_PROFILING_COMMAND_END,
                                sizeof(t_end), &t_end, NULL);
  if (err != CL_SUCCESS) return fail("clGetEventProfilingInfo(end)", err);
  if (t_end < t_start) return fail("profiling timestamps out of order", 0);
  clReleaseEvent(kernel_event);

  /* --- verify: element-wise against the host reference --- */
  for (size_t i = 0; i < N; ++i) {
    float want = input[i] * input[i];
    if (output[i] != want) {
      printf("mismatch at %zu: got %f want %f\n", i, output[i], want);
      return fail("result verification", 0);
    }
  }

  /* --- verify again through the zero-copy map path --- */
  void* mapped = clEnqueueMapBuffer(queue, out_buf, CL_TRUE, CL_MAP_READ, 0,
                                    N * sizeof(float), 0, NULL, NULL, &err);
  if (err != CL_SUCCESS || mapped == NULL) {
    return fail("clEnqueueMapBuffer", err);
  }
  unsigned digest = fnv1a(mapped, N * sizeof(float));
  err = clEnqueueUnmapMemObject(queue, out_buf, mapped, 0, NULL, NULL);
  if (err != CL_SUCCESS) return fail("clEnqueueUnmapMemObject", err);

  printf("digest: 0x%08x\n", digest);
  if (digest != GOLDEN_DIGEST) {
    printf("conformance: FAILED (digest mismatch, want 0x%08x)\n",
           GOLDEN_DIGEST);
    return 1;
  }

  /* --- teardown (any order: handles are reference counted) --- */
  clReleaseMemObject(in_buf);
  clReleaseMemObject(out_buf);
  clReleaseKernel(kernel);
  clReleaseProgram(program);
  clReleaseCommandQueue(queue);
  clReleaseContext(context);
  free(input);
  free(output);

  printf("conformance: PASSED\n");
  return 0;
}
