/*
 * parallel_min.c — an OpenCL 1.1 two-stage minimum reduction in the shape
 * of the classic AMD "ParallelMin" sample: each workgroup computes a local
 * minimum through a __local scratch tree, writes one partial per group, and
 * the host folds the partials. Exercises local-memory kernel arguments
 * (clSetKernelArg with a NULL value), non-blocking writes with event wait
 * lists, clWaitForEvents, and event profiling.
 *
 * Plain C99 against <CL/cl.h> only — no vendor or MiniCL-specific headers.
 *
 * Output contract (checked by ctest): prints "conformance: PASSED" on
 * success, "conformance: FAILED (...)" and exits nonzero otherwise.
 */
#include <stdio.h>
#include <stdlib.h>

#include <CL/cl.h>

#define N (1 << 18)
#define LOCAL 128
#define GROUPS (N / LOCAL)

static const char* kSource =
    "__kernel void parallel_min(__global const uint* in,\n"
    "                           __global uint* partials,\n"
    "                           __local uint* scratch) {\n"
    "  size_t lid = get_local_id(0);\n"
    "  scratch[lid] = in[get_global_id(0)];\n"
    "  barrier(CLK_LOCAL_MEM_FENCE);\n"
    "  for (size_t s = get_local_size(0) / 2; s > 0; s >>= 1) {\n"
    "    if (lid < s && scratch[lid + s] < scratch[lid])\n"
    "      scratch[lid] = scratch[lid + s];\n"
    "    barrier(CLK_LOCAL_MEM_FENCE);\n"
    "  }\n"
    "  if (lid == 0) partials[get_group_id(0)] = scratch[0];\n"
    "}\n";

static int fail(const char* what, cl_int err) {
  printf("conformance: FAILED (%s, err=%d)\n", what, (int)err);
  return 1;
}

/* Deterministic xorshift32 stream so the expected minimum is reproducible. */
static unsigned next_value(unsigned* state) {
  unsigned x = *state;
  x ^= x << 13;
  x ^= x >> 17;
  x ^= x << 5;
  *state = x;
  return x;
}

int main(void) {
  cl_int err;

  cl_platform_id platform;
  err = clGetPlatformIDs(1, &platform, NULL);
  if (err != CL_SUCCESS) return fail("clGetPlatformIDs", err);
  cl_device_id device;
  err = clGetDeviceIDs(platform, CL_DEVICE_TYPE_DEFAULT, 1, &device, NULL);
  if (err != CL_SUCCESS) return fail("clGetDeviceIDs", err);

  cl_context context = clCreateContext(NULL, 1, &device, NULL, NULL, &err);
  if (err != CL_SUCCESS) return fail("clCreateContext", err);
  cl_command_queue queue =
      clCreateCommandQueue(context, device, CL_QUEUE_PROFILING_ENABLE, &err);
  if (err != CL_SUCCESS) return fail("clCreateCommandQueue", err);

  cl_program program =
      clCreateProgramWithSource(context, 1, &kSource, NULL, &err);
  if (err != CL_SUCCESS) return fail("clCreateProgramWithSource", err);
  err = clBuildProgram(program, 0, NULL, NULL, NULL, NULL);
  if (err != CL_SUCCESS) {
    size_t log_size = 0;
    clGetProgramBuildInfo(program, device, CL_PROGRAM_BUILD_LOG, 0, NULL,
                          &log_size);
    char* log = (char*)malloc(log_size + 1);
    if (log != NULL) {
      clGetProgramBuildInfo(program, device, CL_PROGRAM_BUILD_LOG, log_size,
                            log, NULL);
      log[log_size] = '\0';
      printf("build log: %s\n", log);
      free(log);
    }
    return fail("clBuildProgram", err);
  }
  cl_kernel kernel = clCreateKernel(program, "parallel_min", &err);
  if (err != CL_SUCCESS) return fail("clCreateKernel", err);

  unsigned* input = (unsigned*)malloc(N * sizeof(unsigned));
  unsigned* partials = (unsigned*)malloc(GROUPS * sizeof(unsigned));
  if (input == NULL || partials == NULL) return fail("malloc", 0);
  unsigned state = 0x12345678u;
  unsigned expected = 0xffffffffu;
  for (size_t i = 0; i < N; ++i) {
    input[i] = next_value(&state);
    if (input[i] < expected) expected = input[i];
  }

  cl_mem in_buf = clCreateBuffer(context, CL_MEM_READ_ONLY,
                                 N * sizeof(unsigned), NULL, &err);
  if (err != CL_SUCCESS) return fail("clCreateBuffer(in)", err);
  cl_mem partials_buf = clCreateBuffer(context, CL_MEM_WRITE_ONLY,
                                       GROUPS * sizeof(unsigned), NULL, &err);
  if (err != CL_SUCCESS) return fail("clCreateBuffer(partials)", err);

  /* Non-blocking upload chained into the launch through its wait list. */
  cl_event write_event;
  err = clEnqueueWriteBuffer(queue, in_buf, CL_FALSE, 0, N * sizeof(unsigned),
                             input, 0, NULL, &write_event);
  if (err != CL_SUCCESS) return fail("clEnqueueWriteBuffer", err);

  err = clSetKernelArg(kernel, 0, sizeof(cl_mem), &in_buf);
  if (err != CL_SUCCESS) return fail("clSetKernelArg(0)", err);
  err = clSetKernelArg(kernel, 1, sizeof(cl_mem), &partials_buf);
  if (err != CL_SUCCESS) return fail("clSetKernelArg(1)", err);
  err = clSetKernelArg(kernel, 2, LOCAL * sizeof(unsigned), NULL);
  if (err != CL_SUCCESS) return fail("clSetKernelArg(2,local)", err);

  size_t global = N;
  size_t local = LOCAL;
  cl_event kernel_event;
  err = clEnqueueNDRangeKernel(queue, kernel, 1, NULL, &global, &local, 1,
                               &write_event, &kernel_event);
  if (err != CL_SUCCESS) return fail("clEnqueueNDRangeKernel", err);
  err = clWaitForEvents(1, &kernel_event);
  if (err != CL_SUCCESS) return fail("clWaitForEvents", err);

  err = clEnqueueReadBuffer(queue, partials_buf, CL_TRUE, 0,
                            GROUPS * sizeof(unsigned), partials, 0, NULL,
                            NULL);
  if (err != CL_SUCCESS) return fail("clEnqueueReadBuffer", err);

  /* Host-side fold of the per-group partial minima (stage two). */
  unsigned result = 0xffffffffu;
  for (size_t g = 0; g < GROUPS; ++g) {
    if (partials[g] < result) result = partials[g];
  }

  cl_ulong t_queued = 0, t_end = 0;
  err = clGetEventProfilingInfo(kernel_event, CL_PROFILING_COMMAND_QUEUED,
                                sizeof(t_queued), &t_queued, NULL);
  if (err != CL_SUCCESS) return fail("clGetEventProfilingInfo(queued)", err);
  err = clGetEventProfilingInfo(kernel_event, CL_PROFILING_COMMAND_END,
                                sizeof(t_end), &t_end, NULL);
  if (err != CL_SUCCESS) return fail("clGetEventProfilingInfo(end)", err);
  if (t_end < t_queued) return fail("profiling timestamps out of order", 0);

  clReleaseEvent(write_event);
  clReleaseEvent(kernel_event);

  printf("min: device=0x%08x host=0x%08x\n", result, expected);
  if (result != expected) return fail("minimum mismatch", 0);

  clReleaseMemObject(in_buf);
  clReleaseMemObject(partials_buf);
  clReleaseKernel(kernel);
  clReleaseProgram(program);
  clReleaseCommandQueue(queue);
  clReleaseContext(context);
  free(input);
  free(partials);

  printf("conformance: PASSED\n");
  return 0;
}
