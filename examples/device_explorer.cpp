// clinfo-style device explorer plus a what-if occupancy table from the GPU
// timing model: for a kernel of your shape (flops / memory ops per item),
// how does workgroup size drive occupancy and predicted time on the
// simulated GTX 580? Useful for understanding the Fig 3/4 GPU curves.
#include <cstdio>
#include <iostream>
#include <string>

#include "core/sysinfo.hpp"
#include "core/table.hpp"
#include "gpusim/gpusim.hpp"
#include "ocl/platform.hpp"
#include "simd/vec.hpp"

int main(int argc, char** argv) {
  using namespace mcl;
  const double fp = argc > 1 ? std::stod(argv[1]) : 64.0;
  const double mem = argc > 2 ? std::stod(argv[2]) : 8.0;

  ocl::Platform platform;
  core::Table devices("Devices", {"property", "CPU device", "GPU device"});
  const core::HostInfo host = core::probe_host();
  const gpusim::GpuSpec spec = platform.gpu().spec();
  devices.add_row({std::string("name"), platform.cpu().name(),
                   platform.gpu().name()});
  devices.add_row({std::string("compute units"),
                   static_cast<double>(platform.cpu().compute_units()),
                   static_cast<double>(platform.gpu().compute_units())});
  devices.add_row({std::string("SIMD"),
                   std::string(simd::native_isa_name()) + " x" +
                       std::to_string(simd::kNativeFloatWidth),
                   std::string("32-wide warps")});
  devices.add_row({std::string("kernel timing"), std::string("measured"),
                   std::string("Hong-Kim analytical model")});
  devices.add_row({std::string("peak SP Gflop/s"),
                   std::string("(not modeled)"),
                   std::to_string(spec.peak_gflops())});
  devices.add_row({std::string("host caches L1D/L2/L3"),
                   core::format_bytes(host.l1d_bytes) + "/" +
                       core::format_bytes(host.l2_bytes) + "/" +
                       core::format_bytes(host.l3_bytes),
                   std::string("16K/768K (modeled)")});
  devices.print(std::cout);

  core::Table occ("GPU what-if: kernel with " + std::to_string(fp) +
                      " FP / " + std::to_string(mem) + " mem insts per item, "
                      "1M items",
                  {"local size", "resident blocks/SM", "resident warps/SM",
                   "MWP", "CWP", "predicted ms", "achieved Gflop/s"});
  gpusim::KernelCost cost{.fp_insts = fp, .mem_insts = mem,
                          .other_insts = fp / 4, .flops_per_fp = 2.0};
  for (std::size_t local : {1u, 8u, 32u, 64u, 128u, 256u, 512u, 1024u}) {
    const gpusim::SimResult r = gpusim::simulate(
        spec, cost, {.global_items = 1 << 20, .local_items = local});
    occ.add_row({static_cast<double>(local),
                 static_cast<double>(r.resident_blocks),
                 static_cast<double>(r.resident_warps), r.mwp, r.cwp,
                 r.seconds * 1e3, r.achieved_gflops});
  }
  occ.print(std::cout);
  return 0;
}
