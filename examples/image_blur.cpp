// Image processing with Image2D objects: generates a synthetic test chart,
// blurs it with a Gaussian stencil on the CPU device, sharpens with an
// unsharp-mask pass, and writes before/after PGM files you can open in any
// viewer. Demonstrates image kernel args, 2D NDRanges and multi-pass
// pipelines over shared images.
//
// Usage: image_blur [width] [height] [out_dir]
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "apps/convolution.hpp"
#include "ocl/image.hpp"
#include "ocl/platform.hpp"
#include "ocl/queue.hpp"

namespace {

using namespace mcl;

/// Synthetic chart: gradient background + concentric rings + a grid.
void paint_chart(ocl::Image2D& img) {
  const auto w = static_cast<float>(img.width());
  const auto h = static_cast<float>(img.height());
  for (std::size_t y = 0; y < img.height(); ++y) {
    for (std::size_t x = 0; x < img.width(); ++x) {
      const float fx = static_cast<float>(x), fy = static_cast<float>(y);
      float v = 0.25f * (fx / w + fy / h);
      const float dx = fx - w / 2, dy = fy - h / 2;
      v += 0.4f * (0.5f + 0.5f * std::sin(std::sqrt(dx * dx + dy * dy) * 0.35f));
      if (x % 24 == 0 || y % 24 == 0) v = 1.0f;
      img.view().write(x, y, std::fmin(v, 1.0f));
    }
  }
}

void write_pgm(const ocl::Image2D& img, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  f << "P5\n" << img.width() << " " << img.height() << "\n255\n";
  for (std::size_t i = 0; i < img.float_count(); ++i) {
    const float v = std::fmin(std::fmax(img.data()[i], 0.0f), 1.0f);
    f.put(static_cast<char>(v * 255.0f));
  }
}

double run_filter(ocl::Context& ctx, ocl::CommandQueue& q, ocl::Image2D& in,
                  ocl::Image2D& out, const std::vector<float>& filter,
                  unsigned k) {
  ocl::Buffer bf(ocl::MemFlags::ReadOnly | ocl::MemFlags::CopyHostPtr,
                 filter.size() * 4, const_cast<float*>(filter.data()));
  ocl::Kernel kern = ctx.create_kernel(ocl::Program::builtin(),
                                       apps::kConvolveKernel);
  kern.set_arg(0, in);
  kern.set_arg(1, out);
  kern.set_arg(2, bf);
  kern.set_arg(3, k);
  return q.enqueue_ndrange(kern, ocl::NDRange(in.width(), in.height()),
                           ocl::NDRange(16, 8))
      .seconds;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t w = argc > 1 ? std::stoul(argv[1]) : 512;
  const std::size_t h = argc > 2 ? std::stoul(argv[2]) : 384;
  const std::string dir = argc > 3 ? argv[3] : ".";

  ocl::Platform platform;
  ocl::Context ctx(platform.cpu());
  ocl::CommandQueue q(ctx);

  ocl::Image2D original(w, h, 1);
  ocl::Image2D blurred(w, h, 1);
  ocl::Image2D sharpened(w, h, 1);
  paint_chart(original);

  const double t_blur =
      run_filter(ctx, q, original, blurred, apps::gaussian3(), 3);

  // Unsharp mask as a single 3x3 stencil: 2*identity - gaussian.
  std::vector<float> unsharp = apps::gaussian3();
  for (float& v : unsharp) v = -v;
  unsharp[4] += 2.0f;
  const double t_sharp =
      run_filter(ctx, q, blurred, sharpened, unsharp, 3);

  write_pgm(original, dir + "/chart_original.pgm");
  write_pgm(blurred, dir + "/chart_blurred.pgm");
  write_pgm(sharpened, dir + "/chart_sharpened.pgm");

  const double mpix = static_cast<double>(w * h) / 1e6;
  std::printf("blur   %4zux%-4zu: %.2f ms (%.1f Mpix/s)\n", w, h, t_blur * 1e3,
              mpix / t_blur);
  std::printf("sharpen %4zux%-4zu: %.2f ms (%.1f Mpix/s)\n", w, h,
              t_sharp * 1e3, mpix / t_sharp);
  std::printf("wrote chart_{original,blurred,sharpened}.pgm to %s\n",
              dir.c_str());
  return 0;
}
