// Two-kernel pipeline with data reuse: C = A x B (tiled, local memory),
// then a tree reduction over C — the dependent-kernel pattern the paper's
// affinity discussion (Sec. III-E) is about. Demonstrates:
//   - local-memory kernels and the workgroup-phase programming model,
//   - buffer reuse between kernels with zero copies,
//   - the MiniCL affinity extension (enqueue_ndrange_pinned), which gives
//     OpenCL the workgroup->core control the paper argues it should have.
#include <cstdio>
#include <numeric>
#include <vector>

#include "apps/hostdata.hpp"
#include "apps/matrixmul.hpp"
#include "apps/reduction.hpp"
#include "ocl/platform.hpp"
#include "ocl/queue.hpp"
#include "threading/affinity.hpp"

int main() {
  using namespace mcl;
  const std::size_t m = 256, n = 256, k = 128, tile = 16, red_local = 256;

  ocl::Platform platform;
  ocl::Context ctx(platform.cpu());
  ocl::CommandQueue queue(ctx);

  const apps::FloatVec a = apps::random_floats(m * k, 1, -1.0f, 1.0f);
  const apps::FloatVec b = apps::random_floats(k * n, 2, -1.0f, 1.0f);
  ocl::Buffer buf_a = ctx.create_buffer(
      ocl::MemFlags::ReadOnly | ocl::MemFlags::CopyHostPtr, m * k * 4,
      const_cast<float*>(a.data()));
  ocl::Buffer buf_b = ctx.create_buffer(
      ocl::MemFlags::ReadOnly | ocl::MemFlags::CopyHostPtr, k * n * 4,
      const_cast<float*>(b.data()));
  ocl::Buffer buf_c = ctx.create_buffer(ocl::MemFlags::ReadWrite, m * n * 4);
  ocl::Buffer partials =
      ctx.create_buffer(ocl::MemFlags::ReadWrite, (m * n / red_local) * 4);

  // Kernel 1: tiled matrix multiply (local-memory tiles, phase barriers).
  ocl::Kernel mm = ctx.create_kernel(ocl::Program::builtin(),
                                     apps::kMatrixMulKernel);
  mm.set_arg(0, buf_a);
  mm.set_arg(1, buf_b);
  mm.set_arg(2, buf_c);
  mm.set_arg(3, static_cast<unsigned>(m));
  mm.set_arg(4, static_cast<unsigned>(n));
  mm.set_arg(5, static_cast<unsigned>(k));
  mm.set_arg_local(6, tile * tile * 4);
  mm.set_arg_local(7, tile * tile * 4);
  mm.set_arg_local(8, tile * tile * 4);

  // Kernel 2: per-group tree reduction over C.
  ocl::Kernel red = ctx.create_kernel(ocl::Program::builtin(),
                                      apps::kReduceKernel);
  red.set_arg(0, buf_c);
  red.set_arg(1, partials);
  red.set_arg_local(2, red_local * 4);

  // Align both kernels' workgroups to cores: group g of both launches lands
  // on the same logical CPU, so kernel 2 finds kernel 1's output hot in the
  // private caches (the paper's "aligned" case — impossible in stock
  // OpenCL, a one-liner with the MiniCL extension).
  const int cpus = threading::logical_cpu_count();
  const std::size_t mm_groups = (m / tile) * (n / tile);
  const std::size_t red_groups = m * n / red_local;
  std::vector<int> mm_map(mm_groups), red_map(red_groups);
  for (std::size_t g = 0; g < mm_groups; ++g) {
    mm_map[g] = static_cast<int>(g * cpus / mm_groups);
  }
  for (std::size_t g = 0; g < red_groups; ++g) {
    red_map[g] = static_cast<int>(g * cpus / red_groups);
  }

  const ocl::Event ev1 = queue.enqueue_ndrange_pinned(
      mm, ocl::NDRange(n, m), ocl::NDRange(tile, tile), mm_map);
  const ocl::Event ev2 = queue.enqueue_ndrange_pinned(
      red, ocl::NDRange{m * n}, ocl::NDRange{red_local}, red_map);

  double total = 0.0;
  for (std::size_t g = 0; g < red_groups; ++g) {
    total += partials.as<const float>()[g];
  }

  // Validate against the serial reference.
  apps::FloatVec c_ref(m * n);
  apps::matmul_reference(a, b, c_ref, m, n, k);
  const double expect = apps::reduce_reference(c_ref);

  std::printf("matmul %.2f ms + reduce %.2f ms on %d core(s)\n",
              ev1.seconds * 1e3, ev2.seconds * 1e3, cpus);
  std::printf("sum(C) = %.3f (reference %.3f)\n", total, expect);
  const bool ok = std::abs(total - expect) < 1e-2 * (1.0 + std::abs(expect));
  std::printf("%s\n", ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
