// Quickstart: the MiniCL host API end to end — platform, device, context,
// queue, buffers, kernel args, NDRange launch, and reading results back.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "apps/simple.hpp"      // registers the "vectoradd" kernel
#include "ocl/platform.hpp"
#include "ocl/queue.hpp"

int main() {
  using namespace mcl::ocl;

  // 1. Pick a device. A Platform exposes the CPU device (host threads) and
  //    a simulated GTX 580 (functional execution + modeled time).
  Platform platform;
  Device& device = platform.cpu();
  std::printf("device: %s (%d compute units)\n", device.name().c_str(),
              device.compute_units());

  // 2. Context + in-order command queue.
  Context ctx(device);
  CommandQueue queue(ctx);

  // 3. Buffers. CopyHostPtr seeds device memory from host arrays.
  const std::size_t n = 1 << 16;
  std::vector<float> a(n, 1.25f), b(n, 2.5f), c(n, 0.0f);
  Buffer buf_a = ctx.create_buffer(MemFlags::ReadOnly | MemFlags::CopyHostPtr,
                                   n * sizeof(float), a.data());
  Buffer buf_b = ctx.create_buffer(MemFlags::ReadOnly | MemFlags::CopyHostPtr,
                                   n * sizeof(float), b.data());
  Buffer buf_c = ctx.create_buffer(MemFlags::WriteOnly, n * sizeof(float));

  // 4. Kernel + args ("vectoradd" ships with the apps library; your own
  //    kernels register a KernelDef with Program::builtin()).
  Kernel kernel = ctx.create_kernel(Program::builtin(), "vectoradd");
  kernel.set_arg(0, buf_a);
  kernel.set_arg(1, buf_b);
  kernel.set_arg(2, buf_c);

  // 5. Launch. NDRange{} as the local size lets the runtime pick (and the
  //    paper's Fig 3 explains why you may not want that).
  const Event ev = queue.enqueue_ndrange(kernel, NDRange{n}, NDRange{256});
  std::printf("kernel time: %.3f us (executor: %s)\n", ev.seconds * 1e6,
              ev.launch.executor_used == ExecutorKind::Simd ? "simd" : "loop");

  // 6. Read back — or better, map (zero-copy on the CPU device; see Fig 7).
  (void)queue.enqueue_read_buffer(buf_c, 0, n * sizeof(float), c.data());
  std::printf("c[0] = %.2f (expect 3.75)\n", c[0]);
  return c[0] == 3.75f ? 0 : 1;
}
