/* MiniCL binary-compatible OpenCL host header (CL_TARGET_OPENCL_VERSION 110
 * semantics, plus the OpenCL 1.2 device-fission trio clCreateSubDevices /
 * clRetainDevice / clReleaseDevice).
 *
 * Unmodified OpenCL 1.1 host programs compile against this header and link
 * against the MiniCL runtime: the entry points are a thin C shim
 * (src/ocl/cl_shim.cpp) over the same C++ runtime behind mcl.h. One
 * deliberate deviation: MiniCL has no OpenCL C compiler — kernels are
 * pre-registered native bodies — so clBuildProgram *binds* the __kernel
 * names found in the source text against the registered kernel-descriptor
 * table, and fails with CL_BUILD_PROGRAM_FAILURE (and a build log naming the
 * unbindable kernels) when a source kernel has no registered implementation.
 * See docs/cl_shim.md for the full surface matrix and porting walkthrough.
 */
#ifndef MCL_CL_H_
#define MCL_CL_H_

#include <CL/cl_platform.h>

#ifdef __cplusplus
extern "C" {
#endif

#ifndef CL_TARGET_OPENCL_VERSION
#define CL_TARGET_OPENCL_VERSION 110
#endif

/* --- object handles ------------------------------------------------------- */

typedef struct _cl_platform_id* cl_platform_id;
typedef struct _cl_device_id* cl_device_id;
typedef struct _cl_context* cl_context;
typedef struct _cl_command_queue* cl_command_queue;
typedef struct _cl_mem* cl_mem;
typedef struct _cl_program* cl_program;
typedef struct _cl_kernel* cl_kernel;
typedef struct _cl_event* cl_event;
typedef struct _cl_sampler* cl_sampler;

typedef cl_uint cl_bool;
typedef cl_ulong cl_bitfield;
typedef cl_bitfield cl_device_type;
typedef cl_uint cl_platform_info;
typedef cl_uint cl_device_info;
typedef cl_bitfield cl_device_fp_config;
typedef cl_uint cl_device_mem_cache_type;
typedef cl_uint cl_device_local_mem_type;
typedef cl_bitfield cl_device_exec_capabilities;
typedef cl_bitfield cl_command_queue_properties;
typedef intptr_t cl_device_partition_property;
typedef intptr_t cl_context_properties;
typedef cl_uint cl_context_info;
typedef cl_uint cl_command_queue_info;
typedef cl_uint cl_channel_order;
typedef cl_uint cl_channel_type;
typedef cl_bitfield cl_mem_flags;
typedef cl_uint cl_mem_object_type;
typedef cl_uint cl_mem_info;
typedef cl_uint cl_image_info;
typedef cl_uint cl_buffer_create_type;
typedef cl_uint cl_addressing_mode;
typedef cl_uint cl_filter_mode;
typedef cl_uint cl_sampler_info;
typedef cl_bitfield cl_map_flags;
typedef cl_uint cl_program_info;
typedef cl_uint cl_program_build_info;
typedef cl_int cl_build_status;
typedef cl_uint cl_kernel_info;
typedef cl_uint cl_kernel_work_group_info;
typedef cl_uint cl_event_info;
typedef cl_uint cl_command_type;
typedef cl_uint cl_profiling_info;

typedef struct _cl_image_format {
  cl_channel_order image_channel_order;
  cl_channel_type image_channel_data_type;
} cl_image_format;

typedef struct _cl_buffer_region {
  size_t origin;
  size_t size;
} cl_buffer_region;

/* --- error codes ---------------------------------------------------------- */

#define CL_SUCCESS 0
#define CL_DEVICE_NOT_FOUND -1
#define CL_DEVICE_NOT_AVAILABLE -2
#define CL_COMPILER_NOT_AVAILABLE -3
#define CL_MEM_OBJECT_ALLOCATION_FAILURE -4
#define CL_OUT_OF_RESOURCES -5
#define CL_OUT_OF_HOST_MEMORY -6
#define CL_PROFILING_INFO_NOT_AVAILABLE -7
#define CL_MEM_COPY_OVERLAP -8
#define CL_IMAGE_FORMAT_MISMATCH -9
#define CL_IMAGE_FORMAT_NOT_SUPPORTED -10
#define CL_BUILD_PROGRAM_FAILURE -11
#define CL_MAP_FAILURE -12
#define CL_MISALIGNED_SUB_BUFFER_OFFSET -13
#define CL_EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST -14

#define CL_INVALID_VALUE -30
#define CL_INVALID_DEVICE_TYPE -31
#define CL_INVALID_PLATFORM -32
#define CL_INVALID_DEVICE -33
#define CL_INVALID_CONTEXT -34
#define CL_INVALID_QUEUE_PROPERTIES -35
#define CL_INVALID_COMMAND_QUEUE -36
#define CL_INVALID_HOST_PTR -37
#define CL_INVALID_MEM_OBJECT -38
#define CL_INVALID_IMAGE_FORMAT_DESCRIPTOR -39
#define CL_INVALID_IMAGE_SIZE -40
#define CL_INVALID_SAMPLER -41
#define CL_INVALID_BINARY -42
#define CL_INVALID_BUILD_OPTIONS -43
#define CL_INVALID_PROGRAM -44
#define CL_INVALID_PROGRAM_EXECUTABLE -45
#define CL_INVALID_KERNEL_NAME -46
#define CL_INVALID_KERNEL_DEFINITION -47
#define CL_INVALID_KERNEL -48
#define CL_INVALID_ARG_INDEX -49
#define CL_INVALID_ARG_VALUE -50
#define CL_INVALID_ARG_SIZE -51
#define CL_INVALID_KERNEL_ARGS -52
#define CL_INVALID_WORK_DIMENSION -53
#define CL_INVALID_WORK_GROUP_SIZE -54
#define CL_INVALID_WORK_ITEM_SIZE -55
#define CL_INVALID_GLOBAL_OFFSET -56
#define CL_INVALID_EVENT_WAIT_LIST -57
#define CL_INVALID_EVENT -58
#define CL_INVALID_OPERATION -59
#define CL_INVALID_GL_OBJECT -60
#define CL_INVALID_BUFFER_SIZE -61
#define CL_INVALID_MIP_LEVEL -62
#define CL_INVALID_GLOBAL_WORK_SIZE -63
#define CL_INVALID_PROPERTY -64
/* OpenCL 1.2 (device fission) */
#define CL_INVALID_DEVICE_PARTITION_COUNT -68

/* --- cl_bool -------------------------------------------------------------- */

#define CL_FALSE 0
#define CL_TRUE 1
#define CL_BLOCKING CL_TRUE
#define CL_NON_BLOCKING CL_FALSE

/* --- cl_platform_info ----------------------------------------------------- */

#define CL_PLATFORM_PROFILE 0x0900
#define CL_PLATFORM_VERSION 0x0901
#define CL_PLATFORM_NAME 0x0902
#define CL_PLATFORM_VENDOR 0x0903
#define CL_PLATFORM_EXTENSIONS 0x0904

/* --- cl_device_type ------------------------------------------------------- */

#define CL_DEVICE_TYPE_DEFAULT (1 << 0)
#define CL_DEVICE_TYPE_CPU (1 << 1)
#define CL_DEVICE_TYPE_GPU (1 << 2)
#define CL_DEVICE_TYPE_ACCELERATOR (1 << 3)
#define CL_DEVICE_TYPE_ALL 0xFFFFFFFF

/* --- cl_device_info (host-relevant subset) -------------------------------- */

#define CL_DEVICE_TYPE 0x1000
#define CL_DEVICE_VENDOR_ID 0x1001
#define CL_DEVICE_MAX_COMPUTE_UNITS 0x1002
#define CL_DEVICE_MAX_WORK_ITEM_DIMENSIONS 0x1003
#define CL_DEVICE_MAX_WORK_GROUP_SIZE 0x1004
#define CL_DEVICE_MAX_WORK_ITEM_SIZES 0x1005
#define CL_DEVICE_MAX_CLOCK_FREQUENCY 0x100C
#define CL_DEVICE_ADDRESS_BITS 0x100D
#define CL_DEVICE_MAX_MEM_ALLOC_SIZE 0x1010
#define CL_DEVICE_GLOBAL_MEM_SIZE 0x101F
#define CL_DEVICE_LOCAL_MEM_SIZE 0x1023
#define CL_DEVICE_AVAILABLE 0x1027
#define CL_DEVICE_COMPILER_AVAILABLE 0x1028
#define CL_DEVICE_QUEUE_PROPERTIES 0x102A
#define CL_DEVICE_NAME 0x102B
#define CL_DEVICE_VENDOR 0x102C
#define CL_DRIVER_VERSION 0x102D
#define CL_DEVICE_PROFILE 0x102E
#define CL_DEVICE_VERSION 0x102F
#define CL_DEVICE_EXTENSIONS 0x1030
#define CL_DEVICE_PLATFORM 0x1031
#define CL_DEVICE_OPENCL_C_VERSION 0x103D
/* OpenCL 1.2 device-fission queries */
#define CL_DEVICE_PARENT_DEVICE 0x1042
#define CL_DEVICE_PARTITION_MAX_SUB_DEVICES 0x1043
#define CL_DEVICE_PARTITION_PROPERTIES 0x1044
#define CL_DEVICE_PARTITION_TYPE 0x1046
#define CL_DEVICE_REFERENCE_COUNT 0x1047

/* --- cl_device_partition_property (OpenCL 1.2 device fission) ------------- */

#define CL_DEVICE_PARTITION_EQUALLY 0x1086
#define CL_DEVICE_PARTITION_BY_COUNTS 0x1087
#define CL_DEVICE_PARTITION_BY_COUNTS_LIST_END 0x0
#define CL_DEVICE_PARTITION_BY_AFFINITY_DOMAIN 0x1088

/* --- cl_context_info / properties ----------------------------------------- */

#define CL_CONTEXT_REFERENCE_COUNT 0x1080
#define CL_CONTEXT_DEVICES 0x1081
#define CL_CONTEXT_PROPERTIES 0x1082
#define CL_CONTEXT_NUM_DEVICES 0x1083
#define CL_CONTEXT_PLATFORM 0x1084

/* --- cl_command_queue_properties / info ----------------------------------- */

#define CL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE (1 << 0)
#define CL_QUEUE_PROFILING_ENABLE (1 << 1)

#define CL_QUEUE_CONTEXT 0x1090
#define CL_QUEUE_DEVICE 0x1091
#define CL_QUEUE_REFERENCE_COUNT 0x1092
#define CL_QUEUE_PROPERTIES 0x1093

/* --- cl_mem_flags ---------------------------------------------------------- */

#define CL_MEM_READ_WRITE (1 << 0)
#define CL_MEM_WRITE_ONLY (1 << 1)
#define CL_MEM_READ_ONLY (1 << 2)
#define CL_MEM_USE_HOST_PTR (1 << 3)
#define CL_MEM_ALLOC_HOST_PTR (1 << 4)
#define CL_MEM_COPY_HOST_PTR (1 << 5)

/* --- cl_mem_object_type / cl_mem_info -------------------------------------- */

#define CL_MEM_OBJECT_BUFFER 0x10F0
#define CL_MEM_OBJECT_IMAGE2D 0x10F1
#define CL_MEM_OBJECT_IMAGE3D 0x10F2

#define CL_MEM_TYPE 0x1100
#define CL_MEM_FLAGS 0x1101
#define CL_MEM_SIZE 0x1102
#define CL_MEM_HOST_PTR 0x1103
#define CL_MEM_MAP_COUNT 0x1104
#define CL_MEM_REFERENCE_COUNT 0x1105
#define CL_MEM_CONTEXT 0x1106
#define CL_MEM_ASSOCIATED_MEMOBJECT 0x1107
#define CL_MEM_OFFSET 0x1108

#define CL_BUFFER_CREATE_TYPE_REGION 0x1220

/* --- cl_map_flags ---------------------------------------------------------- */

#define CL_MAP_READ (1 << 0)
#define CL_MAP_WRITE (1 << 1)

/* --- cl_program_info / build info ------------------------------------------ */

#define CL_PROGRAM_REFERENCE_COUNT 0x1160
#define CL_PROGRAM_CONTEXT 0x1161
#define CL_PROGRAM_NUM_DEVICES 0x1162
#define CL_PROGRAM_DEVICES 0x1163
#define CL_PROGRAM_SOURCE 0x1164
#define CL_PROGRAM_BINARY_SIZES 0x1165
#define CL_PROGRAM_BINARIES 0x1166

#define CL_PROGRAM_BUILD_STATUS 0x1181
#define CL_PROGRAM_BUILD_OPTIONS 0x1182
#define CL_PROGRAM_BUILD_LOG 0x1183

#define CL_BUILD_SUCCESS 0
#define CL_BUILD_NONE -1
#define CL_BUILD_ERROR -2
#define CL_BUILD_IN_PROGRESS -3

/* --- cl_kernel_info / work-group info -------------------------------------- */

#define CL_KERNEL_FUNCTION_NAME 0x1190
#define CL_KERNEL_NUM_ARGS 0x1191
#define CL_KERNEL_REFERENCE_COUNT 0x1192
#define CL_KERNEL_CONTEXT 0x1193
#define CL_KERNEL_PROGRAM 0x1194

#define CL_KERNEL_WORK_GROUP_SIZE 0x11B0
#define CL_KERNEL_COMPILE_WORK_GROUP_SIZE 0x11B1
#define CL_KERNEL_LOCAL_MEM_SIZE 0x11B2
#define CL_KERNEL_PREFERRED_WORK_GROUP_SIZE_MULTIPLE 0x11B3
#define CL_KERNEL_PRIVATE_MEM_SIZE 0x11B4

/* --- cl_event_info / execution status / command type ----------------------- */

#define CL_EVENT_COMMAND_QUEUE 0x11D0
#define CL_EVENT_COMMAND_TYPE 0x11D1
#define CL_EVENT_REFERENCE_COUNT 0x11D2
#define CL_EVENT_COMMAND_EXECUTION_STATUS 0x11D3
#define CL_EVENT_CONTEXT 0x11D4

#define CL_COMPLETE 0x0
#define CL_RUNNING 0x1
#define CL_SUBMITTED 0x2
#define CL_QUEUED 0x3

#define CL_COMMAND_NDRANGE_KERNEL 0x11F0
#define CL_COMMAND_TASK 0x11F1
#define CL_COMMAND_NATIVE_KERNEL 0x11F2
#define CL_COMMAND_READ_BUFFER 0x11F3
#define CL_COMMAND_WRITE_BUFFER 0x11F4
#define CL_COMMAND_COPY_BUFFER 0x11F5
#define CL_COMMAND_READ_IMAGE 0x11F6
#define CL_COMMAND_WRITE_IMAGE 0x11F7
#define CL_COMMAND_COPY_IMAGE 0x11F8
#define CL_COMMAND_COPY_IMAGE_TO_BUFFER 0x11F9
#define CL_COMMAND_COPY_BUFFER_TO_IMAGE 0x11FA
#define CL_COMMAND_MAP_BUFFER 0x11FB
#define CL_COMMAND_MAP_IMAGE 0x11FC
#define CL_COMMAND_UNMAP_MEM_OBJECT 0x11FD
#define CL_COMMAND_MARKER 0x11FE
#define CL_COMMAND_READ_BUFFER_RECT 0x1201
#define CL_COMMAND_WRITE_BUFFER_RECT 0x1202
#define CL_COMMAND_COPY_BUFFER_RECT 0x1203
#define CL_COMMAND_USER 0x1204
#define CL_COMMAND_BARRIER 0x1206

/* --- cl_profiling_info ------------------------------------------------------ */

#define CL_PROFILING_COMMAND_QUEUED 0x1280
#define CL_PROFILING_COMMAND_SUBMIT 0x1281
#define CL_PROFILING_COMMAND_START 0x1282
#define CL_PROFILING_COMMAND_END 0x1283

/* --- platform / device discovery ------------------------------------------- */

CL_API_ENTRY cl_int CL_API_CALL clGetPlatformIDs(
    cl_uint num_entries, cl_platform_id* platforms,
    cl_uint* num_platforms) CL_API_SUFFIX__VERSION_1_0;

CL_API_ENTRY cl_int CL_API_CALL clGetPlatformInfo(
    cl_platform_id platform, cl_platform_info param_name,
    size_t param_value_size, void* param_value,
    size_t* param_value_size_ret) CL_API_SUFFIX__VERSION_1_0;

CL_API_ENTRY cl_int CL_API_CALL clGetDeviceIDs(
    cl_platform_id platform, cl_device_type device_type, cl_uint num_entries,
    cl_device_id* devices, cl_uint* num_devices) CL_API_SUFFIX__VERSION_1_0;

CL_API_ENTRY cl_int CL_API_CALL clGetDeviceInfo(
    cl_device_id device, cl_device_info param_name, size_t param_value_size,
    void* param_value, size_t* param_value_size_ret) CL_API_SUFFIX__VERSION_1_0;

/* OpenCL 1.2 device fission, provided for CPU partitioning: the CPU device
 * partitions its worker pool into disjoint shards (CL_DEVICE_PARTITION_
 * EQUALLY / CL_DEVICE_PARTITION_BY_COUNTS); sub-devices are refcounted. */
CL_API_ENTRY cl_int CL_API_CALL clCreateSubDevices(
    cl_device_id in_device, const cl_device_partition_property* properties,
    cl_uint num_devices, cl_device_id* out_devices,
    cl_uint* num_devices_ret) CL_API_SUFFIX__VERSION_1_2;

CL_API_ENTRY cl_int CL_API_CALL
clRetainDevice(cl_device_id device) CL_API_SUFFIX__VERSION_1_2;

CL_API_ENTRY cl_int CL_API_CALL
clReleaseDevice(cl_device_id device) CL_API_SUFFIX__VERSION_1_2;

/* --- contexts --------------------------------------------------------------- */

CL_API_ENTRY cl_context CL_API_CALL clCreateContext(
    const cl_context_properties* properties, cl_uint num_devices,
    const cl_device_id* devices,
    void(CL_CALLBACK* pfn_notify)(const char* errinfo, const void* private_info,
                                  size_t cb, void* user_data),
    void* user_data, cl_int* errcode_ret) CL_API_SUFFIX__VERSION_1_0;

CL_API_ENTRY cl_context CL_API_CALL clCreateContextFromType(
    const cl_context_properties* properties, cl_device_type device_type,
    void(CL_CALLBACK* pfn_notify)(const char* errinfo, const void* private_info,
                                  size_t cb, void* user_data),
    void* user_data, cl_int* errcode_ret) CL_API_SUFFIX__VERSION_1_0;

CL_API_ENTRY cl_int CL_API_CALL
clRetainContext(cl_context context) CL_API_SUFFIX__VERSION_1_0;

CL_API_ENTRY cl_int CL_API_CALL
clReleaseContext(cl_context context) CL_API_SUFFIX__VERSION_1_0;

CL_API_ENTRY cl_int CL_API_CALL clGetContextInfo(
    cl_context context, cl_context_info param_name, size_t param_value_size,
    void* param_value, size_t* param_value_size_ret) CL_API_SUFFIX__VERSION_1_0;

/* --- command queues --------------------------------------------------------- */

CL_API_ENTRY cl_command_queue CL_API_CALL clCreateCommandQueue(
    cl_context context, cl_device_id device,
    cl_command_queue_properties properties,
    cl_int* errcode_ret) CL_API_SUFFIX__VERSION_1_0;

CL_API_ENTRY cl_int CL_API_CALL
clRetainCommandQueue(cl_command_queue command_queue) CL_API_SUFFIX__VERSION_1_0;

CL_API_ENTRY cl_int CL_API_CALL clReleaseCommandQueue(
    cl_command_queue command_queue) CL_API_SUFFIX__VERSION_1_0;

CL_API_ENTRY cl_int CL_API_CALL clGetCommandQueueInfo(
    cl_command_queue command_queue, cl_command_queue_info param_name,
    size_t param_value_size, void* param_value,
    size_t* param_value_size_ret) CL_API_SUFFIX__VERSION_1_0;

/* --- memory objects --------------------------------------------------------- */

CL_API_ENTRY cl_mem CL_API_CALL clCreateBuffer(
    cl_context context, cl_mem_flags flags, size_t size, void* host_ptr,
    cl_int* errcode_ret) CL_API_SUFFIX__VERSION_1_0;

CL_API_ENTRY cl_mem CL_API_CALL clCreateSubBuffer(
    cl_mem buffer, cl_mem_flags flags, cl_buffer_create_type buffer_create_type,
    const void* buffer_create_info,
    cl_int* errcode_ret) CL_API_SUFFIX__VERSION_1_1;

CL_API_ENTRY cl_int CL_API_CALL
clRetainMemObject(cl_mem memobj) CL_API_SUFFIX__VERSION_1_0;

CL_API_ENTRY cl_int CL_API_CALL
clReleaseMemObject(cl_mem memobj) CL_API_SUFFIX__VERSION_1_0;

CL_API_ENTRY cl_int CL_API_CALL clGetMemObjectInfo(
    cl_mem memobj, cl_mem_info param_name, size_t param_value_size,
    void* param_value, size_t* param_value_size_ret) CL_API_SUFFIX__VERSION_1_0;

CL_API_ENTRY cl_int CL_API_CALL clGetSupportedImageFormats(
    cl_context context, cl_mem_flags flags, cl_mem_object_type image_type,
    cl_uint num_entries, cl_image_format* image_formats,
    cl_uint* num_image_formats) CL_API_SUFFIX__VERSION_1_0;

/* --- programs ---------------------------------------------------------------- */

CL_API_ENTRY cl_program CL_API_CALL clCreateProgramWithSource(
    cl_context context, cl_uint count, const char** strings,
    const size_t* lengths, cl_int* errcode_ret) CL_API_SUFFIX__VERSION_1_0;

CL_API_ENTRY cl_program CL_API_CALL clCreateProgramWithBinary(
    cl_context context, cl_uint num_devices, const cl_device_id* device_list,
    const size_t* lengths, const unsigned char** binaries,
    cl_int* binary_status, cl_int* errcode_ret) CL_API_SUFFIX__VERSION_1_0;

CL_API_ENTRY cl_int CL_API_CALL
clRetainProgram(cl_program program) CL_API_SUFFIX__VERSION_1_0;

CL_API_ENTRY cl_int CL_API_CALL
clReleaseProgram(cl_program program) CL_API_SUFFIX__VERSION_1_0;

CL_API_ENTRY cl_int CL_API_CALL clBuildProgram(
    cl_program program, cl_uint num_devices, const cl_device_id* device_list,
    const char* options,
    void(CL_CALLBACK* pfn_notify)(cl_program program, void* user_data),
    void* user_data) CL_API_SUFFIX__VERSION_1_0;

CL_API_ENTRY cl_int CL_API_CALL
clUnloadCompiler(void) CL_API_SUFFIX__VERSION_1_0;

CL_API_ENTRY cl_int CL_API_CALL clGetProgramInfo(
    cl_program program, cl_program_info param_name, size_t param_value_size,
    void* param_value, size_t* param_value_size_ret) CL_API_SUFFIX__VERSION_1_0;

CL_API_ENTRY cl_int CL_API_CALL clGetProgramBuildInfo(
    cl_program program, cl_device_id device, cl_program_build_info param_name,
    size_t param_value_size, void* param_value,
    size_t* param_value_size_ret) CL_API_SUFFIX__VERSION_1_0;

/* --- kernels ----------------------------------------------------------------- */

CL_API_ENTRY cl_kernel CL_API_CALL clCreateKernel(
    cl_program program, const char* kernel_name,
    cl_int* errcode_ret) CL_API_SUFFIX__VERSION_1_0;

CL_API_ENTRY cl_int CL_API_CALL clCreateKernelsInProgram(
    cl_program program, cl_uint num_kernels, cl_kernel* kernels,
    cl_uint* num_kernels_ret) CL_API_SUFFIX__VERSION_1_0;

CL_API_ENTRY cl_int CL_API_CALL
clRetainKernel(cl_kernel kernel) CL_API_SUFFIX__VERSION_1_0;

CL_API_ENTRY cl_int CL_API_CALL
clReleaseKernel(cl_kernel kernel) CL_API_SUFFIX__VERSION_1_0;

CL_API_ENTRY cl_int CL_API_CALL clSetKernelArg(
    cl_kernel kernel, cl_uint arg_index, size_t arg_size,
    const void* arg_value) CL_API_SUFFIX__VERSION_1_0;

CL_API_ENTRY cl_int CL_API_CALL clGetKernelInfo(
    cl_kernel kernel, cl_kernel_info param_name, size_t param_value_size,
    void* param_value, size_t* param_value_size_ret) CL_API_SUFFIX__VERSION_1_0;

CL_API_ENTRY cl_int CL_API_CALL clGetKernelWorkGroupInfo(
    cl_kernel kernel, cl_device_id device,
    cl_kernel_work_group_info param_name, size_t param_value_size,
    void* param_value, size_t* param_value_size_ret) CL_API_SUFFIX__VERSION_1_0;

/* --- events ------------------------------------------------------------------ */

CL_API_ENTRY cl_int CL_API_CALL clWaitForEvents(
    cl_uint num_events, const cl_event* event_list) CL_API_SUFFIX__VERSION_1_0;

CL_API_ENTRY cl_int CL_API_CALL clGetEventInfo(
    cl_event event, cl_event_info param_name, size_t param_value_size,
    void* param_value, size_t* param_value_size_ret) CL_API_SUFFIX__VERSION_1_0;

CL_API_ENTRY cl_event CL_API_CALL clCreateUserEvent(
    cl_context context, cl_int* errcode_ret) CL_API_SUFFIX__VERSION_1_1;

CL_API_ENTRY cl_int CL_API_CALL
clRetainEvent(cl_event event) CL_API_SUFFIX__VERSION_1_0;

CL_API_ENTRY cl_int CL_API_CALL
clReleaseEvent(cl_event event) CL_API_SUFFIX__VERSION_1_0;

CL_API_ENTRY cl_int CL_API_CALL clSetUserEventStatus(
    cl_event event, cl_int execution_status) CL_API_SUFFIX__VERSION_1_1;

CL_API_ENTRY cl_int CL_API_CALL clSetEventCallback(
    cl_event event, cl_int command_exec_callback_type,
    void(CL_CALLBACK* pfn_notify)(cl_event event, cl_int event_command_status,
                                  void* user_data),
    void* user_data) CL_API_SUFFIX__VERSION_1_1;

CL_API_ENTRY cl_int CL_API_CALL clGetEventProfilingInfo(
    cl_event event, cl_profiling_info param_name, size_t param_value_size,
    void* param_value, size_t* param_value_size_ret) CL_API_SUFFIX__VERSION_1_0;

/* --- flush / finish ---------------------------------------------------------- */

CL_API_ENTRY cl_int CL_API_CALL
clFlush(cl_command_queue command_queue) CL_API_SUFFIX__VERSION_1_0;

CL_API_ENTRY cl_int CL_API_CALL
clFinish(cl_command_queue command_queue) CL_API_SUFFIX__VERSION_1_0;

/* --- enqueued commands -------------------------------------------------------- */

CL_API_ENTRY cl_int CL_API_CALL clEnqueueReadBuffer(
    cl_command_queue command_queue, cl_mem buffer, cl_bool blocking_read,
    size_t offset, size_t size, void* ptr, cl_uint num_events_in_wait_list,
    const cl_event* event_wait_list,
    cl_event* event) CL_API_SUFFIX__VERSION_1_0;

CL_API_ENTRY cl_int CL_API_CALL clEnqueueReadBufferRect(
    cl_command_queue command_queue, cl_mem buffer, cl_bool blocking_read,
    const size_t* buffer_origin, const size_t* host_origin,
    const size_t* region, size_t buffer_row_pitch, size_t buffer_slice_pitch,
    size_t host_row_pitch, size_t host_slice_pitch, void* ptr,
    cl_uint num_events_in_wait_list, const cl_event* event_wait_list,
    cl_event* event) CL_API_SUFFIX__VERSION_1_1;

CL_API_ENTRY cl_int CL_API_CALL clEnqueueWriteBuffer(
    cl_command_queue command_queue, cl_mem buffer, cl_bool blocking_write,
    size_t offset, size_t size, const void* ptr,
    cl_uint num_events_in_wait_list, const cl_event* event_wait_list,
    cl_event* event) CL_API_SUFFIX__VERSION_1_0;

CL_API_ENTRY cl_int CL_API_CALL clEnqueueWriteBufferRect(
    cl_command_queue command_queue, cl_mem buffer, cl_bool blocking_write,
    const size_t* buffer_origin, const size_t* host_origin,
    const size_t* region, size_t buffer_row_pitch, size_t buffer_slice_pitch,
    size_t host_row_pitch, size_t host_slice_pitch, const void* ptr,
    cl_uint num_events_in_wait_list, const cl_event* event_wait_list,
    cl_event* event) CL_API_SUFFIX__VERSION_1_1;

CL_API_ENTRY cl_int CL_API_CALL clEnqueueCopyBuffer(
    cl_command_queue command_queue, cl_mem src_buffer, cl_mem dst_buffer,
    size_t src_offset, size_t dst_offset, size_t size,
    cl_uint num_events_in_wait_list, const cl_event* event_wait_list,
    cl_event* event) CL_API_SUFFIX__VERSION_1_0;

CL_API_ENTRY void* CL_API_CALL clEnqueueMapBuffer(
    cl_command_queue command_queue, cl_mem buffer, cl_bool blocking_map,
    cl_map_flags map_flags, size_t offset, size_t size,
    cl_uint num_events_in_wait_list, const cl_event* event_wait_list,
    cl_event* event, cl_int* errcode_ret) CL_API_SUFFIX__VERSION_1_0;

CL_API_ENTRY cl_int CL_API_CALL clEnqueueUnmapMemObject(
    cl_command_queue command_queue, cl_mem memobj, void* mapped_ptr,
    cl_uint num_events_in_wait_list, const cl_event* event_wait_list,
    cl_event* event) CL_API_SUFFIX__VERSION_1_0;

CL_API_ENTRY cl_int CL_API_CALL clEnqueueNDRangeKernel(
    cl_command_queue command_queue, cl_kernel kernel, cl_uint work_dim,
    const size_t* global_work_offset, const size_t* global_work_size,
    const size_t* local_work_size, cl_uint num_events_in_wait_list,
    const cl_event* event_wait_list,
    cl_event* event) CL_API_SUFFIX__VERSION_1_0;

CL_API_ENTRY cl_int CL_API_CALL clEnqueueTask(
    cl_command_queue command_queue, cl_kernel kernel,
    cl_uint num_events_in_wait_list, const cl_event* event_wait_list,
    cl_event* event) CL_API_SUFFIX__VERSION_1_0;

CL_API_ENTRY cl_int CL_API_CALL clEnqueueNativeKernel(
    cl_command_queue command_queue, void(CL_CALLBACK* user_func)(void*),
    void* args, size_t cb_args, cl_uint num_mem_objects, const cl_mem* mem_list,
    const void** args_mem_loc, cl_uint num_events_in_wait_list,
    const cl_event* event_wait_list,
    cl_event* event) CL_API_SUFFIX__VERSION_1_0;

CL_API_ENTRY cl_int CL_API_CALL clEnqueueMarker(
    cl_command_queue command_queue, cl_event* event) CL_API_SUFFIX__VERSION_1_0;

CL_API_ENTRY cl_int CL_API_CALL clEnqueueWaitForEvents(
    cl_command_queue command_queue, cl_uint num_events,
    const cl_event* event_list) CL_API_SUFFIX__VERSION_1_0;

CL_API_ENTRY cl_int CL_API_CALL
clEnqueueBarrier(cl_command_queue command_queue) CL_API_SUFFIX__VERSION_1_0;

CL_API_ENTRY void* CL_API_CALL clGetExtensionFunctionAddress(
    const char* func_name) CL_API_SUFFIX__VERSION_1_0;

#ifdef __cplusplus
}
#endif

#endif /* MCL_CL_H_ */
