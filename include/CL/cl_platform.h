/* MiniCL binary-compatible OpenCL platform header.
 *
 * Scalar type and calling-convention definitions for CL/cl.h, matching the
 * Khronos OpenCL 1.1 layout so unmodified host programs compile against the
 * MiniCL runtime. Only the host-side subset is provided (no vector types or
 * device-side builtins: MiniCL has no OpenCL C compiler — kernels are
 * pre-registered native bodies; see docs/cl_shim.md).
 */
#ifndef MCL_CL_PLATFORM_H_
#define MCL_CL_PLATFORM_H_

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

/* Calling-convention / visibility macros: plain functions here. */
#define CL_API_ENTRY
#define CL_API_CALL
#define CL_CALLBACK
#define CL_API_SUFFIX__VERSION_1_0
#define CL_API_SUFFIX__VERSION_1_1
#define CL_API_SUFFIX__VERSION_1_2
#define CL_EXT_SUFFIX__VERSION_1_1
#define CL_EXT_PREFIX__VERSION_1_1_DEPRECATED
#define CL_EXT_SUFFIX__VERSION_1_1_DEPRECATED
#define CL_EXT_PREFIX__VERSION_1_2_DEPRECATED
#define CL_EXT_SUFFIX__VERSION_1_2_DEPRECATED

typedef int8_t cl_char;
typedef uint8_t cl_uchar;
typedef int16_t cl_short;
typedef uint16_t cl_ushort;
typedef int32_t cl_int;
typedef uint32_t cl_uint;
typedef int64_t cl_long;
typedef uint64_t cl_ulong;
typedef uint16_t cl_half;
typedef float cl_float;
typedef double cl_double;

#define CL_CHAR_BIT 8
#define CL_SCHAR_MAX 127
#define CL_SCHAR_MIN (-127 - 1)
#define CL_CHAR_MAX CL_SCHAR_MAX
#define CL_CHAR_MIN CL_SCHAR_MIN
#define CL_UCHAR_MAX 255
#define CL_SHRT_MAX 32767
#define CL_SHRT_MIN (-32767 - 1)
#define CL_USHRT_MAX 65535
#define CL_INT_MAX 2147483647
#define CL_INT_MIN (-2147483647 - 1)
#define CL_UINT_MAX 0xffffffffU
#define CL_LONG_MAX ((cl_long)0x7FFFFFFFFFFFFFFFLL)
#define CL_LONG_MIN ((cl_long)-0x7FFFFFFFFFFFFFFFLL - 1LL)
#define CL_ULONG_MAX ((cl_ulong)0xFFFFFFFFFFFFFFFFULL)
#define CL_FLT_MAX 3.402823466e+38f
#define CL_FLT_MIN 1.175494351e-38f
#define CL_FLT_EPSILON 1.192092896e-07f
#define CL_DBL_MAX 1.7976931348623158e+308
#define CL_DBL_MIN 2.225073858507201e-308
#define CL_DBL_EPSILON 2.220446049250313e-16

#ifdef __cplusplus
}
#endif

#endif /* MCL_CL_PLATFORM_H_ */
