/* MiniCL convenience umbrella header (mirrors Khronos CL/opencl.h). */
#ifndef MCL_CL_OPENCL_H_
#define MCL_CL_OPENCL_H_

#include <CL/cl.h>

#endif /* MCL_CL_OPENCL_H_ */
