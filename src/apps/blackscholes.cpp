#include "apps/blackscholes.hpp"

#include <cmath>
#include <vector>

#include "ocl/kernel.hpp"
#include "simd/math.hpp"

namespace mcl::apps {

namespace {

using ocl::KernelArgs;
using ocl::KernelDef;
using ocl::KernelRegistrar;
using ocl::NDRange;
using ocl::SimdItemCtx;
using ocl::WorkGroupCtx;
using ocl::WorkItemCtx;

constexpr int kW = simd::kNativeFloatWidth;

/// Shared pricing body: the scalar reference, the scalar kernel and the SIMD
/// kernel all instantiate this template, so every path computes identically.
template <int W>
void bs_at(const float* s, const float* x, const float* t, float* call,
           float* put, float r, float v, std::size_t i) {
  using V = simd::vfloat<W>;
  const V vs = V::load(s + i);
  const V vx = V::load(x + i);
  const V vt = V::load(t + i);
  const V vr{r}, vv{v};

  const V sqrt_t = simd::sqrt(vt);
  const V d1 = (simd::vlog(vs / vx) +
                (vr + vv * vv * V{0.5f}) * vt) /
               (vv * sqrt_t);
  const V d2 = d1 - vv * sqrt_t;
  const V cnd1 = simd::normal_cdf(d1);
  const V cnd2 = simd::normal_cdf(d2);
  const V exp_rt = simd::vexp(V{0.0f} - vr * vt);
  const V c = vs * cnd1 - vx * exp_rt * cnd2;
  const V p = vx * exp_rt * (V{1.0f} - cnd2) - vs * (V{1.0f} - cnd1);
  c.store(call + i);
  p.store(put + i);
}

void bs_scalar(const KernelArgs& a, const WorkItemCtx& c) {
  const std::size_t i = c.global_id(1) * c.global_size(0) + c.global_id(0);
  bs_at<1>(a.buffer<const float>(0), a.buffer<const float>(1),
           a.buffer<const float>(2), a.buffer<float>(3), a.buffer<float>(4),
           a.scalar<float>(5), a.scalar<float>(6), i);
}
void bs_simd(const KernelArgs& a, const SimdItemCtx& c) {
  const std::size_t row = c.global_id(1) * c.global_size(0);
  for (std::size_t g = 0; g < c.lane_groups(); ++g) {
    bs_at<kW>(a.buffer<const float>(0), a.buffer<const float>(1),
              a.buffer<const float>(2), a.buffer<float>(3), a.buffer<float>(4),
              a.scalar<float>(5), a.scalar<float>(6),
              row + c.global_base() + g * kW);
  }
}
gpusim::KernelCost bs_cost(const KernelArgs&, const NDRange&, const NDRange&) {
  // log + exp + 2x CND polynomial + arithmetic: ~70 FP instructions, two
  // mostly independent chains (call/put legs).
  return {.fp_insts = 70, .mem_insts = 5, .other_insts = 5, .ilp = 2.0};
}

// --- binomial option (one option per workgroup, barrier per lattice level) --

void binomial_workgroup(const KernelArgs& args, const WorkGroupCtx& wg) {
  const float* s = args.buffer<const float>(0);
  const float* x = args.buffer<const float>(1);
  const float* t = args.buffer<const float>(2);
  float* out = args.buffer<float>(3);
  const float r = args.scalar<float>(4);
  const float v = args.scalar<float>(5);
  const unsigned steps = args.scalar<unsigned>(6);
  float* lattice = wg.local_mem<float>(7);

  const std::size_t opt = wg.group_id(0);
  const float dt = t[opt] / static_cast<float>(steps);
  const float u = std::exp(v * std::sqrt(dt));
  const float d = 1.0f / u;
  const float disc = std::exp(-r * dt);
  const float pu = (std::exp(r * dt) - d) / (u - d);
  const float pd = 1.0f - pu;

  // Terminal payoffs: node j holds S * u^j * d^(steps-j). Workitems stride
  // the lattice (local size may be < steps+1).
  wg.for_each_item([&](const WorkItemCtx& it) {
    for (std::size_t j = it.local_id(0); j <= steps; j += it.local_size(0)) {
      const float price =
          s[opt] * std::pow(u, static_cast<float>(j)) *
          std::pow(d, static_cast<float>(steps - j));
      lattice[j] = std::fmax(price - x[opt], 0.0f);
    }
  });
  // Backward induction; one barrier (phase) per level.
  for (unsigned level = steps; level > 0; --level) {
    wg.for_each_item([&](const WorkItemCtx& it) {
      for (std::size_t j = it.local_id(0); j < level; j += it.local_size(0)) {
        lattice[j] = disc * (pu * lattice[j + 1] + pd * lattice[j]);
      }
    });
  }
  wg.for_each_item([&](const WorkItemCtx& it) {
    if (it.local_id(0) == 0) out[opt] = lattice[0];
  });
}

gpusim::KernelCost binomial_cost(const KernelArgs& args, const NDRange&,
                                 const NDRange& local) {
  const auto steps = static_cast<double>(args.scalar<unsigned>(6));
  const double l = static_cast<double>(local.is_null() ? 255 : local[0]);
  // Per item: ~steps^2 / (2*l) lattice updates of 3 FP each; local-memory
  // traffic dominates "other".
  const double updates = steps * steps / (2.0 * l);
  return {.fp_insts = 3 * updates,
          .mem_insts = 2,
          .other_insts = 2 * updates,
          .flops_per_fp = 1.0,
          .ilp = 1.0};
}

const KernelRegistrar reg_bs{KernelDef{.name = kBlackScholesKernel,
                                       .scalar = &bs_scalar,
                                       .simd = &bs_simd,
                                       .gpu_cost = &bs_cost}};
const KernelRegistrar reg_binomial{KernelDef{.name = kBinomialKernel,
                                             .workgroup = &binomial_workgroup,
                                             .gpu_cost = &binomial_cost}};

}  // namespace

void blackscholes_reference(std::span<const float> s, std::span<const float> x,
                            std::span<const float> t, std::span<float> call,
                            std::span<float> put, float r, float v) {
  for (std::size_t i = 0; i < s.size(); ++i) {
    bs_at<1>(s.data(), x.data(), t.data(), call.data(), put.data(), r, v, i);
  }
}

float binomial_reference(float s, float x, float t, float r, float v,
                         unsigned steps) {
  const float dt = t / static_cast<float>(steps);
  const float u = std::exp(v * std::sqrt(dt));
  const float d = 1.0f / u;
  const float disc = std::exp(-r * dt);
  const float pu = (std::exp(r * dt) - d) / (u - d);
  const float pd = 1.0f - pu;
  std::vector<float> lattice(steps + 1);
  for (unsigned j = 0; j <= steps; ++j) {
    const float price = s * std::pow(u, static_cast<float>(j)) *
                        std::pow(d, static_cast<float>(steps - j));
    lattice[j] = std::fmax(price - x, 0.0f);
  }
  for (unsigned level = steps; level > 0; --level) {
    for (unsigned j = 0; j < level; ++j) {
      lattice[j] = disc * (pu * lattice[j + 1] + pd * lattice[j]);
    }
  }
  return lattice[0];
}

}  // namespace mcl::apps
