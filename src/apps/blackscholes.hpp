// Black-Scholes European option pricing and the binomial-lattice pricer
// (Table II: Blackscholes, Binomialoption).
//
// Kernel argument conventions:
//   "blackscholes": 0=S(float*), 1=X(float*), 2=T(float*),
//                   3=call(float*), 4=put(float*), 5=R(float), 6=V(float)
//                   2D NDRange; option index = gid1 * gsize0 + gid0.
//   "binomialoption": one option per workgroup, local = #steps workitems:
//                   0=S, 1=X, 2=T, 3=out(float*, one per option),
//                   4=R(float), 5=V(float), 6=steps(uint),
//                   7=local lattice ((steps+1) floats)
#pragma once

#include <cstddef>
#include <span>

namespace mcl::apps {

inline constexpr const char* kBlackScholesKernel = "blackscholes";
inline constexpr const char* kBinomialKernel = "binomialoption";

/// Serial Black-Scholes (call & put) with the same CND polynomial.
void blackscholes_reference(std::span<const float> s, std::span<const float> x,
                            std::span<const float> t, std::span<float> call,
                            std::span<float> put, float r, float v);

/// Serial CRR binomial European call price for one option.
[[nodiscard]] float binomial_reference(float s, float x, float t, float r,
                                       float v, unsigned steps);

}  // namespace mcl::apps
