#include "apps/convolution.hpp"

#include <vector>

#include "ocl/kernel.hpp"

namespace mcl::apps {

namespace {

using ocl::ImageView;
using ocl::KernelArgs;
using ocl::KernelDef;
using ocl::KernelRegistrar;
using ocl::NDRange;
using ocl::WorkItemCtx;

float convolve_at(const ImageView& in, std::span<const float> filter,
                  std::size_t k, long long x, long long y) {
  const long long r = static_cast<long long>(k) / 2;
  float acc = 0.0f;
  for (long long fy = 0; fy < static_cast<long long>(k); ++fy) {
    for (long long fx = 0; fx < static_cast<long long>(k); ++fx) {
      acc += filter[static_cast<std::size_t>(fy * static_cast<long long>(k) + fx)] *
             in.read_clamped(x + fx - r, y + fy - r);
    }
  }
  return acc;
}

void convolve_scalar(const KernelArgs& args, const WorkItemCtx& c) {
  const ImageView& in = args.image(0);
  const ImageView& out = args.image(1);
  const float* filter = args.buffer<const float>(2);
  const auto k = args.scalar<unsigned>(3);
  const std::size_t x = c.global_id(0);
  const std::size_t y = c.global_id(1);
  out.write(x, y,
            convolve_at(in, {filter, static_cast<std::size_t>(k) * k}, k,
                        static_cast<long long>(x), static_cast<long long>(y)));
}

gpusim::KernelCost convolve_cost(const KernelArgs& args, const NDRange&,
                                 const NDRange&) {
  const auto k = static_cast<double>(args.scalar<unsigned>(3));
  // k^2 taps: one FMA + one (mostly cached, but windowed) load each.
  return {.fp_insts = k * k,
          .mem_insts = k * k / 4 + 1,
          .other_insts = 2 * k * k,
          .flops_per_fp = 2.0,
          .ilp = 2.0};
}

const KernelRegistrar reg_convolve{KernelDef{.name = kConvolveKernel,
                                             .scalar = &convolve_scalar,
                                             .gpu_cost = &convolve_cost}};

}  // namespace

void convolve_reference(const ocl::ImageView& in, const ocl::ImageView& out,
                        std::span<const float> filter, std::size_t k) {
  for (std::size_t y = 0; y < in.height; ++y) {
    for (std::size_t x = 0; x < in.width; ++x) {
      out.write(x, y,
                convolve_at(in, filter, k, static_cast<long long>(x),
                            static_cast<long long>(y)));
    }
  }
}

std::vector<float> box_filter(std::size_t k) {
  return std::vector<float>(k * k, 1.0f / static_cast<float>(k * k));
}

std::vector<float> gaussian3() {
  std::vector<float> f = {1, 2, 1, 2, 4, 2, 1, 2, 1};
  for (float& v : f) v /= 16.0f;
  return f;
}

}  // namespace mcl::apps
