// 2D convolution over image objects — the stencil workload this repo adds
// beyond the paper's suite. Exercises the Image2D API and a neighborhood
// access pattern (each workitem reads a KxK window with clamp-to-edge
// sampling).
//
// Kernel argument conventions:
//   "convolve2d": 0=input(Image2D, 1 channel), 1=output(Image2D, 1 channel),
//                 2=filter(float* buffer, k*k coefficients, row-major),
//                 3=k(uint, odd filter extent)
//                 NDRange: global = (width, height).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ocl/image.hpp"

namespace mcl::apps {

inline constexpr const char* kConvolveKernel = "convolve2d";

/// Serial reference with the same clamp-to-edge semantics.
void convolve_reference(const ocl::ImageView& in, const ocl::ImageView& out,
                        std::span<const float> filter, std::size_t k);

/// Normalized kxk box filter (all coefficients 1/k^2).
[[nodiscard]] std::vector<float> box_filter(std::size_t k);

/// 3x3 Gaussian (1 2 1 / 2 4 2 / 1 2 1, normalized).
[[nodiscard]] std::vector<float> gaussian3();

}  // namespace mcl::apps
