// Host-side data helpers shared by all benchmark applications: aligned
// vectors, deterministic input generation, and result validation.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "core/rng.hpp"

namespace mcl::apps {

/// 64-byte aligned allocator so SIMD kernels can use aligned loads and
/// buffers behave like OpenCL allocations.
template <typename T>
struct AlignedAllocator {
  using value_type = T;
  static constexpr std::align_val_t kAlign{64};

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new[](n * sizeof(T), kAlign));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete[](p, kAlign);
  }
  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
};

using FloatVec = std::vector<float, AlignedAllocator<float>>;
using UintVec = std::vector<unsigned, AlignedAllocator<unsigned>>;

/// Deterministic uniform floats in [lo, hi).
[[nodiscard]] inline FloatVec random_floats(std::size_t n, std::uint64_t seed,
                                            float lo = 0.0f, float hi = 1.0f) {
  FloatVec v(n);
  core::Rng rng(seed);
  for (auto& x : v) x = rng.next_float(lo, hi);
  return v;
}

/// Max absolute difference.
[[nodiscard]] inline double max_abs_diff(std::span<const float> a,
                                         std::span<const float> b) {
  double m = 0.0;
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double d = std::fabs(static_cast<double>(a[i]) - b[i]);
    if (d > m) m = d;
  }
  return m;
}

/// Max relative difference with absolute floor `atol` (mixed tolerance).
[[nodiscard]] inline double max_rel_diff(std::span<const float> a,
                                         std::span<const float> b,
                                         double atol = 1e-6) {
  double m = 0.0;
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double denom = std::fmax(std::fabs(static_cast<double>(b[i])), atol);
    const double d = std::fabs(static_cast<double>(a[i]) - b[i]) / denom;
    if (d > m) m = d;
  }
  return m;
}

}  // namespace mcl::apps
