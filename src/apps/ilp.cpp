#include "apps/ilp.hpp"

#include "core/error.hpp"
#include "ocl/kernel.hpp"
#include "simd/vec.hpp"

namespace mcl::apps {

namespace {

using ocl::KernelArgs;
using ocl::KernelDef;
using ocl::KernelRegistrar;
using ocl::NDRange;
using ocl::SimdItemCtx;
using ocl::WorkItemCtx;

constexpr int kW = simd::kNativeFloatWidth;

/// The measured body: kIlpUnroll FMAs per iteration over K chains. K is a
/// compile-time constant so each kernel compiles to a fixed dependence
/// structure, exactly like hand-written micro-benchmark variants.
template <int W, int K>
simd::vfloat<W> ilp_body(simd::vfloat<W> x, unsigned iters) {
  using V = simd::vfloat<W>;
  static_assert(kIlpUnroll % K == 0, "unroll must divide evenly over chains");
  std::array<V, K> acc;
  for (int k = 0; k < K; ++k) acc[k] = x + V{static_cast<float>(k) * 0.25f};
  // b close to 1 keeps values finite over many iterations.
  const V b{0.9999f};
  const V c{1e-6f};
  for (unsigned it = 0; it < iters; ++it) {
#pragma GCC unroll 24
    for (int u = 0; u < kIlpUnroll; ++u) {
      const int k = u % K;  // round-robin: K independent chains
      acc[k] = simd::fmadd(acc[k], b, c);
    }
  }
  V sum{0.0f};
  for (int k = 0; k < K; ++k) sum += acc[k];
  return sum;
}

template <int W, int K>
void ilp_at(const KernelArgs& args, std::size_t i) {
  using V = simd::vfloat<W>;
  const float* in = args.buffer<const float>(0);
  float* out = args.buffer<float>(1);
  const auto iters = args.scalar<unsigned>(2);
  ilp_body<W, K>(V::load(in + i), iters).store(out + i);
}

template <int K>
void ilp_scalar(const KernelArgs& a, const WorkItemCtx& c) {
  ilp_at<1, K>(a, c.global_id(0));
}
template <int K>
void ilp_simd(const KernelArgs& a, const SimdItemCtx& c) {
  for (std::size_t g = 0; g < c.lane_groups(); ++g) {
    ilp_at<kW, K>(a, c.global_base() + g * kW);
  }
}
template <int K>
gpusim::KernelCost ilp_cost(const KernelArgs& a, const NDRange&,
                            const NDRange&) {
  const auto iters = static_cast<double>(a.scalar<unsigned>(2));
  return {.fp_insts = kIlpUnroll * iters,
          .mem_insts = 2,
          .other_insts = iters,
          .flops_per_fp = 2.0,
          .ilp = static_cast<double>(K)};
}

template <int K>
KernelDef make_def(const char* name) {
  return KernelDef{.name = name,
                   .scalar = &ilp_scalar<K>,
                   .simd = &ilp_simd<K>,
                   .gpu_cost = &ilp_cost<K>};
}

const KernelRegistrar reg1{make_def<1>("ilp1")};
const KernelRegistrar reg2{make_def<2>("ilp2")};
const KernelRegistrar reg3{make_def<3>("ilp3")};
const KernelRegistrar reg4{make_def<4>("ilp4")};
const KernelRegistrar reg6{make_def<6>("ilp6")};
const KernelRegistrar reg8{make_def<8>("ilp8")};

}  // namespace

const char* ilp_kernel_name(int k) {
  switch (k) {
    case 1: return "ilp1";
    case 2: return "ilp2";
    case 3: return "ilp3";
    case 4: return "ilp4";
    case 6: return "ilp6";
    case 8: return "ilp8";
    default:
      throw core::Error(core::Status::InvalidValue,
                        "no ILP kernel with " + std::to_string(k) + " chains");
  }
}

float ilp_reference(float x, unsigned iters, int k) {
  using V = simd::vfloat<1>;
  switch (k) {
    case 1: return ilp_body<1, 1>(V{x}, iters).v;
    case 2: return ilp_body<1, 2>(V{x}, iters).v;
    case 3: return ilp_body<1, 3>(V{x}, iters).v;
    case 4: return ilp_body<1, 4>(V{x}, iters).v;
    case 6: return ilp_body<1, 6>(V{x}, iters).v;
    case 8: return ilp_body<1, 8>(V{x}, iters).v;
    default:
      throw core::Error(core::Status::InvalidValue, "bad ILP level");
  }
}

}  // namespace mcl::apps
