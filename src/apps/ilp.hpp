// ILP micro-benchmark family (Sec. III-C / Fig 6).
//
// Every kernel executes the identical number of memory accesses, FMA
// operations and loop iterations; the only difference is how many
// independent dependence chains the FMAs form (the paper's "ILP value").
// kUnroll FMAs run per loop iteration, split round-robin over K chains.
//
// Kernel argument conventions ("ilp1","ilp2","ilp3","ilp4","ilp6","ilp8"):
//   0=in(float*), 1=out(float*), 2=iters(uint)
#pragma once

#include <array>
#include <cstddef>

namespace mcl::apps {

inline constexpr int kIlpUnroll = 24;  ///< FMAs per loop iteration
inline constexpr std::array<int, 6> kIlpLevels{1, 2, 3, 4, 6, 8};

/// Kernel name for chain count k (must be one of kIlpLevels).
[[nodiscard]] const char* ilp_kernel_name(int k);

/// Flops one workitem performs with `iters` loop iterations.
[[nodiscard]] constexpr double ilp_flops_per_item(unsigned iters) {
  return 2.0 * kIlpUnroll * iters;  // FMA = 2 flops
}

/// Serial reference of the ILP-k kernel for one element.
[[nodiscard]] float ilp_reference(float x, unsigned iters, int k);

}  // namespace mcl::apps
