#include "apps/matrixmul.hpp"

#include "ocl/kernel.hpp"
#include "simd/vec.hpp"

namespace mcl::apps {

void matmul_reference(std::span<const float> a, std::span<const float> b,
                      std::span<float> c, std::size_t m, std::size_t n,
                      std::size_t k) {
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t col = 0; col < n; ++col) {
      float acc = 0.0f;
      for (std::size_t i = 0; i < k; ++i) acc += a[r * k + i] * b[i * n + col];
      c[r * n + col] = acc;
    }
  }
}

namespace {

using ocl::KernelArgs;
using ocl::KernelDef;
using ocl::KernelRegistrar;
using ocl::NDRange;
using ocl::SimdItemCtx;
using ocl::WorkGroupCtx;
using ocl::WorkItemCtx;

constexpr int kW = simd::kNativeFloatWidth;

// --- naive ---------------------------------------------------------------

template <int W>
void naive_at(const KernelArgs& args, std::size_t col, std::size_t row) {
  using V = simd::vfloat<W>;
  const float* a = args.buffer<const float>(0);
  const float* b = args.buffer<const float>(1);
  float* c = args.buffer<float>(2);
  const auto n = args.scalar<unsigned>(4);
  const auto k = args.scalar<unsigned>(5);

  V acc{0.0f};
  const float* arow = a + row * k;
  for (unsigned i = 0; i < k; ++i) {
    // A element broadcasts across lanes; B row is unit-stride across lanes.
    acc = simd::fmadd(V{arow[i]}, V::load(b + i * n + col), acc);
  }
  acc.store(c + row * n + col);
}

void naive_scalar(const KernelArgs& a, const WorkItemCtx& c) {
  naive_at<1>(a, c.global_id(0), c.global_id(1));
}
void naive_simd(const KernelArgs& a, const SimdItemCtx& c) {
  for (std::size_t g = 0; g < c.lane_groups(); ++g) {
    naive_at<kW>(a, c.global_base() + g * kW, c.global_id(1));
  }
}
gpusim::KernelCost naive_cost(const KernelArgs& a, const NDRange&,
                              const NDRange&) {
  const auto k = static_cast<double>(a.scalar<unsigned>(5));
  return {.fp_insts = k,
          .mem_insts = 2 * k,
          .other_insts = k,
          .flops_per_fp = 2.0};
}

// --- tiled, workgroup (phase) form ----------------------------------------

void tiled_workgroup(const KernelArgs& args, const WorkGroupCtx& wg) {
  const float* a = args.buffer<const float>(0);
  const float* b = args.buffer<const float>(1);
  float* c = args.buffer<float>(2);
  const auto n = args.scalar<unsigned>(4);
  const auto k = args.scalar<unsigned>(5);
  float* as = wg.local_mem<float>(6);
  float* bs = wg.local_mem<float>(7);
  float* cacc = wg.local_mem<float>(8);

  const std::size_t t = wg.local_size(0);  // square tile: local = (T, T)
  const std::size_t tiles = k / t;

  wg.for_each_item([&](const WorkItemCtx& it) {
    cacc[it.local_id(1) * t + it.local_id(0)] = 0.0f;
  });
  for (std::size_t tile = 0; tile < tiles; ++tile) {
    // Load phase (implicit barrier follows).
    wg.for_each_item([&](const WorkItemCtx& it) {
      const std::size_t lx = it.local_id(0);
      const std::size_t ly = it.local_id(1);
      as[ly * t + lx] = a[it.global_id(1) * k + tile * t + lx];
      bs[ly * t + lx] = b[(tile * t + ly) * n + it.global_id(0)];
    });
    // Accumulate phase.
    wg.for_each_item([&](const WorkItemCtx& it) {
      const std::size_t lx = it.local_id(0);
      const std::size_t ly = it.local_id(1);
      float sum = cacc[ly * t + lx];
      for (std::size_t i = 0; i < t; ++i) sum += as[ly * t + i] * bs[i * t + lx];
      cacc[ly * t + lx] = sum;
    });
  }
  wg.for_each_item([&](const WorkItemCtx& it) {
    c[it.global_id(1) * n + it.global_id(0)] =
        cacc[it.local_id(1) * t + it.local_id(0)];
  });
}

gpusim::KernelCost tiled_cost(const KernelArgs& a, const NDRange&,
                              const NDRange& local) {
  const auto k = static_cast<double>(a.scalar<unsigned>(5));
  const double t = static_cast<double>(local.is_null() ? 16 : local[0]);
  // Global loads drop by the tile factor; shared-memory traffic issues as
  // cheap "other" instructions.
  return {.fp_insts = k,
          .mem_insts = 2 * k / t,
          .other_insts = 3 * k,
          .flops_per_fp = 2.0};
}

// --- tiled, true-barrier (fiber) form --------------------------------------

void tiled_fiber_scalar(const KernelArgs& args, const WorkItemCtx& it) {
  const float* a = args.buffer<const float>(0);
  const float* b = args.buffer<const float>(1);
  float* c = args.buffer<float>(2);
  const auto n = args.scalar<unsigned>(4);
  const auto k = args.scalar<unsigned>(5);
  float* as = it.local_mem<float>(6);
  float* bs = it.local_mem<float>(7);

  const std::size_t t = it.local_size(0);
  const std::size_t lx = it.local_id(0);
  const std::size_t ly = it.local_id(1);
  float acc = 0.0f;
  for (std::size_t tile = 0; tile * t < k; ++tile) {
    as[ly * t + lx] = a[it.global_id(1) * k + tile * t + lx];
    bs[ly * t + lx] = b[(tile * t + ly) * n + it.global_id(0)];
    it.barrier();
    for (std::size_t i = 0; i < t; ++i) acc += as[ly * t + i] * bs[i * t + lx];
    it.barrier();
  }
  c[it.global_id(1) * n + it.global_id(0)] = acc;
}

const KernelRegistrar reg_naive{KernelDef{.name = kMatrixMulNaiveKernel,
                                          .scalar = &naive_scalar,
                                          .simd = &naive_simd,
                                          .gpu_cost = &naive_cost}};
const KernelRegistrar reg_tiled{KernelDef{.name = kMatrixMulKernel,
                                          .workgroup = &tiled_workgroup,
                                          .gpu_cost = &tiled_cost}};
const KernelRegistrar reg_fiber{KernelDef{.name = kMatrixMulFiberKernel,
                                          .scalar = &tiled_fiber_scalar,
                                          .gpu_cost = &tiled_cost,
                                          .needs_barrier = true}};

}  // namespace
}  // namespace mcl::apps
