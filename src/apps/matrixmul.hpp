// Matrix multiplication kernels (Table II: Matrixmul and MatrixmulNaive).
//
// C (M rows x N cols, row-major) = A (M x K) * B (K x N).
// NDRange convention: global = (N, M), i.e. dim 0 walks columns.
//
// Kernel argument conventions:
//   "matrixmul_naive": 0=A, 1=B, 2=C, 3=M(uint), 4=N(uint), 5=K(uint)
//   "matrixmul"      : the local-memory tiled version (workgroup form;
//                      square tiles, local size (T, T), K % T == 0):
//                      0=A, 1=B, 2=C, 3=M, 4=N, 5=K,
//                      6=local As (T*T floats), 7=local Bs (T*T floats),
//                      8=local Cacc (T*T floats)
//   "matrixmul_fiber": same args 0..7 as the tiled version minus Cacc; the
//                      scalar body calls barrier() (fiber-executor kernel;
//                      exists to validate fibers against the phase form)
#pragma once

#include <cstddef>
#include <span>

namespace mcl::apps {

inline constexpr const char* kMatrixMulNaiveKernel = "matrixmul_naive";
inline constexpr const char* kMatrixMulKernel = "matrixmul";
inline constexpr const char* kMatrixMulFiberKernel = "matrixmul_fiber";

void matmul_reference(std::span<const float> a, std::span<const float> b,
                      std::span<float> c, std::size_t m, std::size_t n,
                      std::size_t k);

}  // namespace mcl::apps
