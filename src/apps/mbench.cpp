#include "apps/mbench.hpp"

#include "ocl/kernel.hpp"
#include "simd/vec.hpp"
#include "veclegal/kernel_ir.hpp"

namespace mcl::apps {

namespace {

using ocl::KernelArgs;
using ocl::KernelDef;
using ocl::KernelRegistrar;
using ocl::NDRange;
using ocl::SimdItemCtx;
using ocl::WorkItemCtx;
using veclegal::assign_temp;
using veclegal::LoopBody;
using veclegal::ref;
using veclegal::store;

constexpr int kW = simd::kNativeFloatWidth;

// ---------------------------------------------------------------------------
// Element bodies, templated over width. For strided/gather benches the
// vector form does per-lane addressing, as a real vectorizer would emit.
// ---------------------------------------------------------------------------

template <int W>
void mb1_at(const MBenchData& d, std::size_t i) {
  using V = simd::vfloat<W>;
  (V::load(d.a + i) + V::load(d.b + i)).store(d.c + i);
}

template <int W>
void mb2_at(const MBenchData& d, std::size_t i) {
  using V = simd::vfloat<W>;
  const V b = V::load(d.b + i);
  V a = V::load(d.a + i);
  a = a * b;  // six dependent multiplies through memory location a[i]
  a = a * b;
  a = a * b;
  a = a * b;
  a = a * b;
  a = a * b;
  a.store(d.a + i);
}

template <int W>
void mb3_at(const MBenchData& d, std::size_t i) {
  using V = simd::vfloat<W>;
  const V r = V::load(d.a + i) + V::load(d.b + i);
  if constexpr (W == 1) {
    d.c[2 * i] = r.v;
  } else {
    for (int l = 0; l < W; ++l) d.c[2 * (i + l)] = r.lane(l);  // scatter
  }
}

template <int W>
void mb4_at(const MBenchData& d, std::size_t i) {
  using V = simd::vfloat<W>;
  const V a = V::load(d.a + i);
  const V b = V::load(d.b + i);
  const V t0 = a * b;
  const V t1 = t0 * b + a;
  const V t2 = t1 * t1 + b;
  const V t3 = t2 * a + t1;
  t3.store(d.c + i);
}

template <int W>
void mb5_at(const MBenchData& d, std::size_t i) {
  using V = simd::vfloat<W>;
  // Loop-carried: a[i+1] = a[i] * b[i]. Vector form reads a whole lane group
  // before writing (vector semantics — the defined behavior of the SPMD
  // model, where item order is unspecified).
  (V::load(d.a + i) * V::load(d.b + i)).store(d.a + i + 1);
}

template <int W>
void mb6_at(const MBenchData& d, std::size_t i) {
  using V = simd::vfloat<W>;
  V ga;
  if constexpr (W == 1) {
    ga = V{d.a[3 * i]};
  } else {
    alignas(64) float tmp[W];
    for (int l = 0; l < W; ++l) tmp[l] = d.a[3 * (i + l)];  // gather
    ga = V::load_aligned(tmp);
  }
  simd::fmadd(V{d.alpha}, ga, V::load(d.b + i)).store(d.c + i);
}

template <int W>
void mb7_at(const MBenchData& d, std::size_t i) {
  using V = simd::vfloat<W>;
  const V a = V::load(d.a + i);
  const V b = V::load(d.b + i);
  if constexpr (W == 1) {
    d.c[i] = a.v > 0.5f ? a.v * a.v : b.v;  // the branchy scalar form
  } else {
    simd::select(simd::cmp_gt(a, V{0.5f}), a * a, b).store(d.c + i);
  }
}

template <int W>
void mb8_at(const MBenchData& d, std::size_t i) {
  using V = simd::vfloat<W>;
  simd::fmadd(V{d.alpha}, V::load(d.a + i), V::load(d.c + i)).store(d.c + i);
}

// ---------------------------------------------------------------------------
// Host loop wrappers (OpenMP-model codegen): scalar always exists; the simd
// one strides by W with a scalar tail.
// ---------------------------------------------------------------------------

// The modeled loop compiler *refused* to vectorize bodies run through this
// wrapper, so the real compiler must not re-vectorize them behind its back
// (GCC would happily vectorize most MBench bodies; the 2013-era fragility
// being modeled is the whole point of Fig 10).
template <void (*ScalarAt)(const MBenchData&, std::size_t)>
__attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
void loop_scalar_impl(const MBenchData& d, std::size_t b, std::size_t e) {
  for (std::size_t i = b; i < e; ++i) ScalarAt(d, i);
}

template <void (*ScalarAt)(const MBenchData&, std::size_t),
          void (*VecAt)(const MBenchData&, std::size_t)>
void loop_simd_impl(const MBenchData& d, std::size_t b, std::size_t e) {
  std::size_t i = b;
  if (e > b + static_cast<std::size_t>(kW)) {
    for (; i + kW <= e; i += kW) VecAt(d, i);
  }
  for (; i < e; ++i) ScalarAt(d, i);
}

// ---------------------------------------------------------------------------
// MiniCL kernels: args 0=a, 1=b, 2=c, 3=alpha.
// ---------------------------------------------------------------------------

MBenchData data_from_args(const KernelArgs& args) {
  MBenchData d;
  d.a = args.buffer<float>(0);
  d.b = args.buffer<const float>(1);
  d.c = args.buffer<float>(2);
  d.alpha = args.scalar<float>(3);
  return d;
}

template <void (*At)(const MBenchData&, std::size_t)>
void kernel_scalar(const KernelArgs& args, const WorkItemCtx& c) {
  At(data_from_args(args), c.global_id(0));
}
template <void (*At)(const MBenchData&, std::size_t)>
void kernel_simd(const KernelArgs& args, const SimdItemCtx& c) {
  const MBenchData d = data_from_args(args);
  for (std::size_t g = 0; g < c.lane_groups(); ++g) {
    At(d, c.global_base() + g * kW);
  }
}

gpusim::KernelCost mbench_cost(const KernelArgs&, const NDRange&,
                               const NDRange&) {
  return {.fp_insts = 4, .mem_insts = 3, .other_insts = 1};
}

template <void (*ScalarAt)(const MBenchData&, std::size_t),
          void (*VecAt)(const MBenchData&, std::size_t)>
KernelDef make_kernel(const char* name) {
  return KernelDef{.name = name,
                   .scalar = &kernel_scalar<ScalarAt>,
                   .simd = &kernel_simd<VecAt>,
                   .gpu_cost = &mbench_cost};
}

const KernelRegistrar r1{make_kernel<&mb1_at<1>, &mb1_at<kW>>("mbench1")};
const KernelRegistrar r2{make_kernel<&mb2_at<1>, &mb2_at<kW>>("mbench2")};
const KernelRegistrar r3{make_kernel<&mb3_at<1>, &mb3_at<kW>>("mbench3")};
const KernelRegistrar r4{make_kernel<&mb4_at<1>, &mb4_at<kW>>("mbench4")};
const KernelRegistrar r5{make_kernel<&mb5_at<1>, &mb5_at<kW>>("mbench5")};
const KernelRegistrar r6{make_kernel<&mb6_at<1>, &mb6_at<kW>>("mbench6")};
const KernelRegistrar r7{make_kernel<&mb7_at<1>, &mb7_at<kW>>("mbench7")};
const KernelRegistrar r8{make_kernel<&mb8_at<1>, &mb8_at<kW>>("mbench8")};

// ---------------------------------------------------------------------------
// IR declarations (arrays: 0=a, 1=b, 2=c).
// ---------------------------------------------------------------------------

constexpr long long kNominalTrip = 1024;

LoopBody ir_mb1() {
  LoopBody l{.name = "MBench1", .stmts = {}, .trip_count = kNominalTrip};
  l.stmts.push_back(store(ref(2), {ref(0), ref(1)}, "c[i] = a[i] + b[i]"));
  return l;
}
LoopBody ir_mb2() {
  LoopBody l{.name = "MBench2", .stmts = {}, .trip_count = kNominalTrip};
  for (int rep = 0; rep < 6; ++rep) {
    l.stmts.push_back(store(ref(0), {ref(0), ref(1)}, "a[i] = a[i] * b[i]"));
  }
  return l;
}
LoopBody ir_mb3() {
  LoopBody l{.name = "MBench3", .stmts = {}, .trip_count = kNominalTrip};
  l.stmts.push_back(store(ref(2, 2), {ref(0), ref(1)}, "c[2i] = a[i] + b[i]"));
  return l;
}
LoopBody ir_mb4() {
  LoopBody l{.name = "MBench4", .stmts = {}, .trip_count = kNominalTrip};
  l.stmts.push_back(assign_temp(0, {ref(0), ref(1)}, {}, "t0 = a[i] * b[i]"));
  l.stmts.push_back(
      assign_temp(1, {ref(1), ref(0)}, {0}, "t1 = t0 * b[i] + a[i]"));
  l.stmts.push_back(assign_temp(2, {ref(1)}, {1}, "t2 = t1 * t1 + b[i]"));
  l.stmts.push_back(assign_temp(3, {ref(0)}, {2, 1}, "t3 = t2 * a[i] + t1"));
  l.stmts.push_back(store(ref(2), {}, "c[i] = t3", {3}));
  return l;
}
LoopBody ir_mb5() {
  LoopBody l{.name = "MBench5", .stmts = {}, .trip_count = kNominalTrip};
  l.stmts.push_back(
      store(ref(0, 1, 1), {ref(0), ref(1)}, "a[i+1] = a[i] * b[i]"));
  return l;
}
LoopBody ir_mb6() {
  LoopBody l{.name = "MBench6", .stmts = {}, .trip_count = kNominalTrip};
  l.stmts.push_back(store(ref(2), {ref(0, 3), ref(1)},
                          "c[i] = alpha * a[3i] + b[i]"));
  return l;
}
LoopBody ir_mb7() {
  LoopBody l{.name = "MBench7",
             .stmts = {},
             .trip_count = kNominalTrip,
             .single_entry_exit = true,
             .straight_line = false};
  l.stmts.push_back(store(ref(2), {ref(0), ref(1)},
                          "c[i] = a[i] > 0.5f ? a[i]*a[i] : b[i]"));
  return l;
}
LoopBody ir_mb8() {
  LoopBody l{.name = "MBench8", .stmts = {}, .trip_count = kNominalTrip};
  l.stmts.push_back(
      store(ref(2), {ref(0), ref(2)}, "c[i] = alpha * a[i] + c[i]"));
  return l;
}

// ---------------------------------------------------------------------------
// Sanitizer descriptors: the same IR, annotated with the argument binding and
// the buffer sizing contract (a: 3n+1, b: n, c: 2n — see mbench.hpp) at the
// nominal trip, so mclsan can bounds-check and replay accesses.
// ---------------------------------------------------------------------------

veclegal::KernelIr mbench_ir(LoopBody body) {
  veclegal::KernelIr ir;
  ir.body = std::move(body);
  ir.arrays = {
      veclegal::ArrayInfo{
          .array = 0, .arg_index = 0, .extent = 3 * kNominalTrip + 1},
      veclegal::ArrayInfo{
          .array = 1, .arg_index = 1, .extent = kNominalTrip, .read_only = true},
      veclegal::ArrayInfo{
          .array = 2, .arg_index = 2, .extent = 2 * kNominalTrip},
  };
  return ir;
}

const veclegal::KernelIrRegistrar ir_reg1{"mbench1", mbench_ir(ir_mb1())};
const veclegal::KernelIrRegistrar ir_reg2{"mbench2", mbench_ir(ir_mb2())};
const veclegal::KernelIrRegistrar ir_reg3{"mbench3", mbench_ir(ir_mb3())};
const veclegal::KernelIrRegistrar ir_reg4{"mbench4", mbench_ir(ir_mb4())};
const veclegal::KernelIrRegistrar ir_reg5{"mbench5", mbench_ir(ir_mb5())};
const veclegal::KernelIrRegistrar ir_reg6{"mbench6", mbench_ir(ir_mb6())};
const veclegal::KernelIrRegistrar ir_reg7{"mbench7", mbench_ir(ir_mb7())};
const veclegal::KernelIrRegistrar ir_reg8{"mbench8", mbench_ir(ir_mb8())};

}  // namespace

const std::vector<MBenchInfo>& all_mbenches() {
  static const std::vector<MBenchInfo> benches = [] {
    std::vector<MBenchInfo> v;
    v.push_back({"MBench1", "mbench1", ir_mb1(),
                 &loop_scalar_impl<&mb1_at<1>>,
                 &loop_simd_impl<&mb1_at<1>, &mb1_at<kW>>, 1.0, true});
    v.push_back({"MBench2", "mbench2", ir_mb2(),
                 &loop_scalar_impl<&mb2_at<1>>,
                 &loop_simd_impl<&mb2_at<1>, &mb2_at<kW>>, 6.0, true});
    v.push_back({"MBench3", "mbench3", ir_mb3(),
                 &loop_scalar_impl<&mb3_at<1>>,
                 &loop_simd_impl<&mb3_at<1>, &mb3_at<kW>>, 1.0, true});
    v.push_back({"MBench4", "mbench4", ir_mb4(),
                 &loop_scalar_impl<&mb4_at<1>>,
                 &loop_simd_impl<&mb4_at<1>, &mb4_at<kW>>, 7.0, true});
    v.push_back({"MBench5", "mbench5", ir_mb5(),
                 &loop_scalar_impl<&mb5_at<1>>,
                 &loop_simd_impl<&mb5_at<1>, &mb5_at<kW>>, 1.0, false});
    v.push_back({"MBench6", "mbench6", ir_mb6(),
                 &loop_scalar_impl<&mb6_at<1>>,
                 &loop_simd_impl<&mb6_at<1>, &mb6_at<kW>>, 2.0, true});
    v.push_back({"MBench7", "mbench7", ir_mb7(),
                 &loop_scalar_impl<&mb7_at<1>>,
                 &loop_simd_impl<&mb7_at<1>, &mb7_at<kW>>, 2.0, true});
    v.push_back({"MBench8", "mbench8", ir_mb8(),
                 &loop_scalar_impl<&mb8_at<1>>,
                 &loop_simd_impl<&mb8_at<1>, &mb8_at<kW>>, 2.0, true});
    return v;
  }();
  return benches;
}

}  // namespace mcl::apps
