// MBench1-8: the vectorization study workloads (Sec. III-F / Fig 10).
//
// Each benchmark is declared three ways, all computing the same thing:
//   1. a veclegal::LoopBody IR — the analyzable form the "compilers" see;
//   2. host loop implementations (scalar and SIMD) — what the OpenMP-model
//      compiler emits, with the SIMD one only usable when veclegal proves
//      the loop vectorizable;
//   3. a MiniCL kernel (scalar + SIMD forms) — what the SPMD compiler emits.
//
// Buffer sizing contract (see MBenchData): a needs 3n+1 floats (MBench5
// writes a[i+1], MBench6 reads a[3i]), b needs n, c needs 2n (MBench3
// stores c[2i]).
//
// Kernel argument convention for "mbench1".."mbench8":
//   0=a(float*), 1=b(float*), 2=c(float*), 3=alpha(float)
#pragma once

#include <cstddef>
#include <vector>

#include "veclegal/ir.hpp"

namespace mcl::apps {

struct MBenchData {
  float* a = nullptr;        ///< 3n+1 floats
  const float* b = nullptr;  ///< n floats
  float* c = nullptr;        ///< 2n floats
  float alpha = 1.5f;
  std::size_t n = 0;
};

/// Host-side loop body over [begin, end) — the OpenMP-model codegen units.
using LoopFn = void (*)(const MBenchData&, std::size_t begin, std::size_t end);

struct MBenchInfo {
  const char* name;         ///< "MBench1"...
  const char* kernel;       ///< MiniCL kernel name
  veclegal::LoopBody ir;    ///< analyzable form
  LoopFn loop_scalar;       ///< scalar loop body
  LoopFn loop_simd;         ///< vectorized loop body
  double flops_per_elem;    ///< for GFlops reporting
  bool deterministic;       ///< false when cross-item races make the result
                            ///< schedule-dependent (MBench5)
};

/// All eight benchmarks, in paper order.
[[nodiscard]] const std::vector<MBenchInfo>& all_mbenches();

}  // namespace mcl::apps
