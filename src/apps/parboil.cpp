#include "apps/parboil.hpp"

#include "ocl/kernel.hpp"
#include "simd/math.hpp"

namespace mcl::apps {

namespace {

using ocl::KernelArgs;
using ocl::KernelDef;
using ocl::KernelRegistrar;
using ocl::NDRange;
using ocl::SimdItemCtx;
using ocl::WorkItemCtx;

constexpr int kW = simd::kNativeFloatWidth;
constexpr float kTwoPi = 6.2831853071795864769f;

// --- CP: cenergy -------------------------------------------------------------

/// W consecutive x-grid-points per call; the atom loop broadcasts.
template <int W>
void cenergy_item(const KernelArgs& args, std::size_t ix, std::size_t iy,
                  std::size_t gx) {
  using V = simd::vfloat<W>;
  const float* atoms = args.buffer<const float>(0);
  float* energy = args.buffer<float>(1);
  const auto natoms = args.scalar<unsigned>(2);
  const float spacing = args.scalar<float>(3);
  const float z = args.scalar<float>(4);

  const V x = V::iota(static_cast<float>(ix)) * V{spacing};
  const V y{static_cast<float>(iy) * spacing};
  V en{0.0f};
  for (unsigned a = 0; a < natoms; ++a) {
    const V dx = x - V{atoms[4 * a + 0]};
    const V dy = y - V{atoms[4 * a + 1]};
    const V dz = V{z} - V{atoms[4 * a + 2]};
    const V r2 = dx * dx + dy * dy + dz * dz;
    en += V{atoms[4 * a + 3]} / simd::sqrt(r2);
  }
  en.store(energy + iy * gx + ix);
}

void cenergy_scalar(const KernelArgs& a, const WorkItemCtx& c) {
  const auto per = a.scalar<unsigned>(5);
  const std::size_t gx = c.global_size(0) * per;  // true grid width
  const std::size_t base = c.global_id(0) * per;
  for (unsigned j = 0; j < per; ++j) {
    cenergy_item<1>(a, base + j, c.global_id(1), gx);
  }
}
void cenergy_simd(const KernelArgs& a, const SimdItemCtx& c) {
  const auto per = a.scalar<unsigned>(5);
  const std::size_t gx = c.global_size(0) * per;
  const std::size_t total =
      per * static_cast<std::size_t>(kW) * c.lane_groups();
  const std::size_t base = c.global_base() * per;
  for (std::size_t off = 0; off < total; off += kW) {
    cenergy_item<kW>(a, base + off, c.global_id(1), gx);
  }
}
gpusim::KernelCost cenergy_cost(const KernelArgs& a, const NDRange&,
                                const NDRange&) {
  const auto natoms = static_cast<double>(a.scalar<unsigned>(2));
  const auto per = static_cast<double>(a.scalar<unsigned>(5));
  // ~10 FP ops per atom (3 sub, 3 mul-add, sqrt, div); atom data is cached.
  return {.fp_insts = 10 * natoms * per,
          .mem_insts = per,
          .other_insts = 2 * natoms * per,
          .flops_per_fp = 1.0,
          .ilp = 2.0};
}

// Coalescing adapter for the 1D elementwise kernels: workitem i covers
// elements [i*per, (i+1)*per); the vector form walks the combined lane-group
// range at unit stride, exactly like the simple-app coalesced kernels.
template <int W, void (*At)(const KernelArgs&, std::size_t)>
void coalesced_1d(const KernelArgs& args, std::size_t item_base, unsigned per,
                  std::size_t lane_groups = 1) {
  const std::size_t base = item_base * per;
  const std::size_t total = static_cast<std::size_t>(per) * W * lane_groups;
  for (std::size_t off = 0; off < total; off += W) At(args, base + off);
}

// --- MRI-Q --------------------------------------------------------------------

template <int W>
void phimag_at(const KernelArgs& args, std::size_t i) {
  using V = simd::vfloat<W>;
  const float* pr = args.buffer<const float>(0);
  const float* pi = args.buffer<const float>(1);
  float* mag = args.buffer<float>(2);
  const V r = V::load(pr + i);
  const V im = V::load(pi + i);
  (r * r + im * im).store(mag + i);
}
void phimag_scalar(const KernelArgs& a, const WorkItemCtx& c) {
  coalesced_1d<1, &phimag_at<1>>(a, c.global_id(0), a.scalar<unsigned>(3));
}
void phimag_simd(const KernelArgs& a, const SimdItemCtx& c) {
  coalesced_1d<kW, &phimag_at<kW>>(a, c.global_base(), a.scalar<unsigned>(3),
                                   c.lane_groups());
}
gpusim::KernelCost phimag_cost(const KernelArgs& a, const NDRange&,
                               const NDRange&) {
  const auto per = static_cast<double>(a.scalar<unsigned>(3));
  return {.fp_insts = 3 * per,
          .mem_insts = 3 * per,
          .other_insts = per,
          .ilp = 2.0};
}

template <int W>
void computeq_at(const KernelArgs& args, std::size_t i) {
  using V = simd::vfloat<W>;
  const float* x = args.buffer<const float>(0);
  const float* y = args.buffer<const float>(1);
  const float* z = args.buffer<const float>(2);
  const float* kx = args.buffer<const float>(3);
  const float* ky = args.buffer<const float>(4);
  const float* kz = args.buffer<const float>(5);
  const float* mag = args.buffer<const float>(6);
  float* qr = args.buffer<float>(7);
  float* qi = args.buffer<float>(8);
  const auto num_k = args.scalar<unsigned>(9);

  const V xi = V::load(x + i), yi = V::load(y + i), zi = V::load(z + i);
  V acc_r{0.0f}, acc_i{0.0f};
  for (unsigned k = 0; k < num_k; ++k) {
    const V arg = V{kTwoPi} * (V{kx[k]} * xi + V{ky[k]} * yi + V{kz[k]} * zi);
    V s, c;
    simd::vsincos(arg, s, c);
    acc_r = simd::fmadd(V{mag[k]}, c, acc_r);
    acc_i = simd::fmadd(V{mag[k]}, s, acc_i);
  }
  acc_r.store(qr + i);
  acc_i.store(qi + i);
}
void computeq_scalar(const KernelArgs& a, const WorkItemCtx& c) {
  coalesced_1d<1, &computeq_at<1>>(a, c.global_id(0), a.scalar<unsigned>(10));
}
void computeq_simd(const KernelArgs& a, const SimdItemCtx& c) {
  coalesced_1d<kW, &computeq_at<kW>>(a, c.global_base(),
                                     a.scalar<unsigned>(10), c.lane_groups());
}
gpusim::KernelCost computeq_cost(const KernelArgs& a, const NDRange&,
                                 const NDRange&) {
  const auto num_k = static_cast<double>(a.scalar<unsigned>(9));
  const auto per = static_cast<double>(a.scalar<unsigned>(10));
  return {.fp_insts = 30 * num_k * per,
          .mem_insts = 5 * per,
          .other_insts = 4 * num_k * per,
          .ilp = 2.0};
}

// --- MRI-FHD ------------------------------------------------------------------

template <int W>
void rhophi_at(const KernelArgs& args, std::size_t i) {
  using V = simd::vfloat<W>;
  const float* pr = args.buffer<const float>(0);
  const float* pi = args.buffer<const float>(1);
  const float* dr = args.buffer<const float>(2);
  const float* di = args.buffer<const float>(3);
  float* rr = args.buffer<float>(4);
  float* ri = args.buffer<float>(5);
  const V vpr = V::load(pr + i), vpi = V::load(pi + i);
  const V vdr = V::load(dr + i), vdi = V::load(di + i);
  (vpr * vdr + vpi * vdi).store(rr + i);
  (vpr * vdi - vpi * vdr).store(ri + i);
}
void rhophi_scalar(const KernelArgs& a, const WorkItemCtx& c) {
  coalesced_1d<1, &rhophi_at<1>>(a, c.global_id(0), a.scalar<unsigned>(6));
}
void rhophi_simd(const KernelArgs& a, const SimdItemCtx& c) {
  coalesced_1d<kW, &rhophi_at<kW>>(a, c.global_base(), a.scalar<unsigned>(6),
                                   c.lane_groups());
}
gpusim::KernelCost rhophi_cost(const KernelArgs& a, const NDRange&,
                               const NDRange&) {
  const auto per = static_cast<double>(a.scalar<unsigned>(6));
  return {.fp_insts = 6 * per,
          .mem_insts = 6 * per,
          .other_insts = per,
          .ilp = 2.0};
}

template <int W>
void fh_at(const KernelArgs& args, std::size_t i) {
  using V = simd::vfloat<W>;
  const float* x = args.buffer<const float>(0);
  const float* y = args.buffer<const float>(1);
  const float* z = args.buffer<const float>(2);
  const float* kx = args.buffer<const float>(3);
  const float* ky = args.buffer<const float>(4);
  const float* kz = args.buffer<const float>(5);
  const float* r_rho = args.buffer<const float>(6);
  const float* i_rho = args.buffer<const float>(7);
  float* r_fh = args.buffer<float>(8);
  float* i_fh = args.buffer<float>(9);
  const auto num_k = args.scalar<unsigned>(10);

  const V xi = V::load(x + i), yi = V::load(y + i), zi = V::load(z + i);
  V acc_r{0.0f}, acc_i{0.0f};
  for (unsigned k = 0; k < num_k; ++k) {
    const V arg = V{kTwoPi} * (V{kx[k]} * xi + V{ky[k]} * yi + V{kz[k]} * zi);
    V s, c;
    simd::vsincos(arg, s, c);
    acc_r = acc_r + (V{r_rho[k]} * c - V{i_rho[k]} * s);
    acc_i = acc_i + (V{i_rho[k]} * c + V{r_rho[k]} * s);
  }
  acc_r.store(r_fh + i);
  acc_i.store(i_fh + i);
}
void fh_scalar(const KernelArgs& a, const WorkItemCtx& c) {
  coalesced_1d<1, &fh_at<1>>(a, c.global_id(0), a.scalar<unsigned>(11));
}
void fh_simd(const KernelArgs& a, const SimdItemCtx& c) {
  coalesced_1d<kW, &fh_at<kW>>(a, c.global_base(), a.scalar<unsigned>(11),
                               c.lane_groups());
}
gpusim::KernelCost fh_cost(const KernelArgs& a, const NDRange&, const NDRange&) {
  const auto num_k = static_cast<double>(a.scalar<unsigned>(10));
  const auto per = static_cast<double>(a.scalar<unsigned>(11));
  return {.fp_insts = 34 * num_k * per,
          .mem_insts = 5 * per,
          .other_insts = 4 * num_k * per,
          .ilp = 2.0};
}

const KernelRegistrar reg_cenergy{KernelDef{.name = kCpCenergyKernel,
                                            .scalar = &cenergy_scalar,
                                            .simd = &cenergy_simd,
                                            .gpu_cost = &cenergy_cost}};
const KernelRegistrar reg_phimag{KernelDef{.name = kMriqPhiMagKernel,
                                           .scalar = &phimag_scalar,
                                           .simd = &phimag_simd,
                                           .gpu_cost = &phimag_cost}};
const KernelRegistrar reg_computeq{KernelDef{.name = kMriqComputeQKernel,
                                             .scalar = &computeq_scalar,
                                             .simd = &computeq_simd,
                                             .gpu_cost = &computeq_cost}};
const KernelRegistrar reg_rhophi{KernelDef{.name = kMrifhdRhoPhiKernel,
                                           .scalar = &rhophi_scalar,
                                           .simd = &rhophi_simd,
                                           .gpu_cost = &rhophi_cost}};
const KernelRegistrar reg_fh{KernelDef{.name = kMrifhdFhKernel,
                                       .scalar = &fh_scalar,
                                       .simd = &fh_simd,
                                       .gpu_cost = &fh_cost}};

}  // namespace

// --- references (scalar instantiations of the same templates) ----------------

void cp_cenergy_reference(std::span<const float> atoms, std::span<float> energy,
                          std::size_t gx, std::size_t gy, float gridspacing,
                          float z) {
  for (std::size_t iy = 0; iy < gy; ++iy) {
    for (std::size_t ix = 0; ix < gx; ++ix) {
      float en = 0.0f;
      const float x = static_cast<float>(ix) * gridspacing;
      const float y = static_cast<float>(iy) * gridspacing;
      for (std::size_t a = 0; a * 4 < atoms.size(); ++a) {
        const float dx = x - atoms[4 * a + 0];
        const float dy = y - atoms[4 * a + 1];
        const float dz = z - atoms[4 * a + 2];
        en += atoms[4 * a + 3] /
              simd::sqrt(simd::vfloat<1>{dx * dx + dy * dy + dz * dz}).v;
      }
      energy[iy * gx + ix] = en;
    }
  }
}

void mriq_phimag_reference(std::span<const float> phi_r,
                           std::span<const float> phi_i,
                           std::span<float> phi_mag) {
  for (std::size_t i = 0; i < phi_r.size(); ++i) {
    phi_mag[i] = phi_r[i] * phi_r[i] + phi_i[i] * phi_i[i];
  }
}

void mriq_computeq_reference(std::span<const float> x, std::span<const float> y,
                             std::span<const float> z,
                             std::span<const float> kx,
                             std::span<const float> ky,
                             std::span<const float> kz,
                             std::span<const float> phi_mag,
                             std::span<float> qr, std::span<float> qi) {
  using V = simd::vfloat<1>;
  for (std::size_t i = 0; i < x.size(); ++i) {
    float ar = 0.0f, ai = 0.0f;
    for (std::size_t k = 0; k < kx.size(); ++k) {
      const float arg = kTwoPi * (kx[k] * x[i] + ky[k] * y[i] + kz[k] * z[i]);
      V s, c;
      simd::vsincos(V{arg}, s, c);
      ar += phi_mag[k] * c.v;
      ai += phi_mag[k] * s.v;
    }
    qr[i] = ar;
    qi[i] = ai;
  }
}

void mrifhd_rhophi_reference(std::span<const float> phi_r,
                             std::span<const float> phi_i,
                             std::span<const float> d_r,
                             std::span<const float> d_i,
                             std::span<float> r_rho, std::span<float> i_rho) {
  for (std::size_t i = 0; i < phi_r.size(); ++i) {
    r_rho[i] = phi_r[i] * d_r[i] + phi_i[i] * d_i[i];
    i_rho[i] = phi_r[i] * d_i[i] - phi_i[i] * d_r[i];
  }
}

void mrifhd_fh_reference(std::span<const float> x, std::span<const float> y,
                         std::span<const float> z, std::span<const float> kx,
                         std::span<const float> ky, std::span<const float> kz,
                         std::span<const float> r_rho,
                         std::span<const float> i_rho, std::span<float> r_fh,
                         std::span<float> i_fh) {
  using V = simd::vfloat<1>;
  for (std::size_t i = 0; i < x.size(); ++i) {
    float ar = 0.0f, ai = 0.0f;
    for (std::size_t k = 0; k < kx.size(); ++k) {
      const float arg = kTwoPi * (kx[k] * x[i] + ky[k] * y[i] + kz[k] * z[i]);
      V s, c;
      simd::vsincos(V{arg}, s, c);
      ar += r_rho[k] * c.v - i_rho[k] * s.v;
      ai += i_rho[k] * c.v + r_rho[k] * s.v;
    }
    r_fh[i] = ar;
    i_fh[i] = ai;
  }
}

}  // namespace mcl::apps
