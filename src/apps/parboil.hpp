// Parboil benchmark kernels (Table III), as used by Grewe & O'Boyle's
// OpenCL port: CP (cenergy), MRI-Q (computePhiMag, computeQ) and MRI-FHD
// (RhoPhi, FH).
//
// Every kernel takes a trailing `per_item` (uint) argument — the workitem-
// coalescing factor of Sec. III-B1/Fig 2: each workitem processes per_item
// consecutive elements (grid columns for cenergy), and the launch shrinks
// the corresponding global dimension by the same factor. per_item = 1
// reproduces the plain kernels.
//
// Kernel argument conventions:
//   "cp_cenergy": Coulombic potential over a 2D grid slice.
//     0=atoms(float4 interleaved: x,y,z,q), 1=energy(float*, gx*gy),
//     2=natoms(uint), 3=gridspacing(float), 4=plane z(float),
//     5=per_item(uint)                  NDRange: global = (gx/per_item, gy).
//   "mriq_computephimag": 0=phiR, 1=phiI, 2=phiMag, 3=per_item(uint).
//   "mriq_computeq": 0=x, 1=y, 2=z, 3=kx, 4=ky, 5=kz, 6=phiMag,
//     7=Qr(out), 8=Qi(out), 9=numK(uint), 10=per_item(uint).
//   "mrifhd_rhophi": 0=phiR, 1=phiI, 2=dR, 3=dI, 4=rRho(out), 5=iRho(out),
//     6=per_item(uint).
//   "mrifhd_fh": 0=x, 1=y, 2=z, 3=kx, 4=ky, 5=kz, 6=rRho, 7=iRho,
//     8=rFH(out), 9=iFH(out), 10=numK(uint), 11=per_item(uint).
#pragma once

#include <cstddef>
#include <span>

namespace mcl::apps {

inline constexpr const char* kCpCenergyKernel = "cp_cenergy";
inline constexpr const char* kMriqPhiMagKernel = "mriq_computephimag";
inline constexpr const char* kMriqComputeQKernel = "mriq_computeq";
inline constexpr const char* kMrifhdRhoPhiKernel = "mrifhd_rhophi";
inline constexpr const char* kMrifhdFhKernel = "mrifhd_fh";

void cp_cenergy_reference(std::span<const float> atoms, std::span<float> energy,
                          std::size_t gx, std::size_t gy, float gridspacing,
                          float z);
void mriq_phimag_reference(std::span<const float> phi_r,
                           std::span<const float> phi_i,
                           std::span<float> phi_mag);
void mriq_computeq_reference(std::span<const float> x, std::span<const float> y,
                             std::span<const float> z,
                             std::span<const float> kx,
                             std::span<const float> ky,
                             std::span<const float> kz,
                             std::span<const float> phi_mag,
                             std::span<float> qr, std::span<float> qi);
void mrifhd_rhophi_reference(std::span<const float> phi_r,
                             std::span<const float> phi_i,
                             std::span<const float> d_r,
                             std::span<const float> d_i,
                             std::span<float> r_rho, std::span<float> i_rho);
void mrifhd_fh_reference(std::span<const float> x, std::span<const float> y,
                         std::span<const float> z, std::span<const float> kx,
                         std::span<const float> ky, std::span<const float> kz,
                         std::span<const float> r_rho,
                         std::span<const float> i_rho, std::span<float> r_fh,
                         std::span<float> i_fh);

}  // namespace mcl::apps
