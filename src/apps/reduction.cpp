#include "apps/reduction.hpp"

#include <atomic>

#include "ocl/kernel.hpp"

namespace mcl::apps {

double reduce_reference(std::span<const float> in) {
  double acc = 0.0;
  for (float v : in) acc += v;
  return acc;
}

void histogram_reference(std::span<const unsigned> in,
                         std::span<unsigned> bins) {
  for (auto& b : bins) b = 0;
  for (unsigned v : in) ++bins[v & 0xff];
}

unsigned parallel_min_reference(std::span<const unsigned> in) {
  unsigned best = ~0u;
  for (unsigned v : in) {
    if (v < best) best = v;
  }
  return best;
}

void prefixsum_reference(std::span<const float> in, std::span<float> out) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < in.size(); ++i) {
    acc += in[i];
    out[i] = acc;
  }
}

namespace {

using ocl::KernelArgs;
using ocl::KernelDef;
using ocl::KernelRegistrar;
using ocl::NDRange;
using ocl::WorkGroupCtx;
using ocl::WorkItemCtx;

// --- reduce -----------------------------------------------------------------

void reduce_workgroup(const KernelArgs& args, const WorkGroupCtx& wg) {
  const float* in = args.buffer<const float>(0);
  float* partials = args.buffer<float>(1);
  float* scratch = wg.local_mem<float>(2);
  const std::size_t l = wg.local_size(0);

  wg.for_each_item([&](const WorkItemCtx& it) {
    scratch[it.local_id(0)] = in[it.global_id(0)];
  });
  // Fold the tail into the largest power of two, then run a clean tree.
  std::size_t p = 1;
  while (p * 2 <= l) p *= 2;
  if (p < l) {
    wg.for_each_item([&](const WorkItemCtx& it) {
      const std::size_t lid = it.local_id(0);
      if (lid + p < l) scratch[lid] += scratch[lid + p];
    });
  }
  for (std::size_t stride = p / 2; stride > 0; stride /= 2) {
    wg.for_each_item([&](const WorkItemCtx& it) {
      const std::size_t lid = it.local_id(0);
      if (lid < stride) scratch[lid] += scratch[lid + stride];
    });
  }
  wg.for_each_item([&](const WorkItemCtx& it) {
    if (it.local_id(0) == 0) partials[it.group_id(0)] = scratch[0];
  });
}

gpusim::KernelCost reduce_cost(const KernelArgs&, const NDRange&,
                               const NDRange& local) {
  const double l = static_cast<double>(local.is_null() ? 256 : local[0]);
  // log2(l) tree steps; one global load per item; local traffic as "other".
  double steps = 0;
  for (double x = l; x > 1; x /= 2) ++steps;
  return {.fp_insts = steps / l + 1,
          .mem_insts = 1,
          .other_insts = 2 * steps / l + 2};
}

// --- parallel_min -------------------------------------------------------------

void parallel_min_workgroup(const KernelArgs& args, const WorkGroupCtx& wg) {
  const unsigned* in = args.buffer<const unsigned>(0);
  unsigned* partials = args.buffer<unsigned>(1);
  unsigned* scratch = wg.local_mem<unsigned>(2);
  const std::size_t l = wg.local_size(0);

  wg.for_each_item([&](const WorkItemCtx& it) {
    scratch[it.local_id(0)] = in[it.global_id(0)];
  });
  // Fold the tail into the largest power of two, then a clean min tree.
  std::size_t p = 1;
  while (p * 2 <= l) p *= 2;
  if (p < l) {
    wg.for_each_item([&](const WorkItemCtx& it) {
      const std::size_t lid = it.local_id(0);
      if (lid + p < l && scratch[lid + p] < scratch[lid]) {
        scratch[lid] = scratch[lid + p];
      }
    });
  }
  for (std::size_t stride = p / 2; stride > 0; stride /= 2) {
    wg.for_each_item([&](const WorkItemCtx& it) {
      const std::size_t lid = it.local_id(0);
      if (lid < stride && scratch[lid + stride] < scratch[lid]) {
        scratch[lid] = scratch[lid + stride];
      }
    });
  }
  wg.for_each_item([&](const WorkItemCtx& it) {
    if (it.local_id(0) == 0) partials[it.group_id(0)] = scratch[0];
  });
}

// --- histogram256 -------------------------------------------------------------

void histogram_workgroup(const KernelArgs& args, const WorkGroupCtx& wg) {
  const unsigned* in = args.buffer<const unsigned>(0);
  unsigned* bins = args.buffer<unsigned>(1);
  unsigned* local_bins = wg.local_mem<unsigned>(2);

  for (std::size_t i = 0; i < 256; ++i) local_bins[i] = 0;
  wg.for_each_item([&](const WorkItemCtx& it) {
    ++local_bins[in[it.global_id(0)] & 0xff];
  });
  // Merge: global bins are shared across concurrently executing groups.
  for (std::size_t i = 0; i < 256; ++i) {
    if (local_bins[i] != 0) {
      std::atomic_ref<unsigned>(bins[i]).fetch_add(local_bins[i],
                                                   std::memory_order_relaxed);
    }
  }
}

gpusim::KernelCost histogram_cost(const KernelArgs&, const NDRange&,
                                  const NDRange& local) {
  const double l = static_cast<double>(local.is_null() ? 256 : local[0]);
  return {.fp_insts = 0,
          .mem_insts = 1 + 512 / l,  // input + amortized merge
          .other_insts = 4,
          .coalesced = false};  // data-dependent bin addresses
}

// --- prefixsum -----------------------------------------------------------------

void prefixsum_workgroup(const KernelArgs& args, const WorkGroupCtx& wg) {
  const float* in = args.buffer<const float>(0);
  float* out = args.buffer<float>(1);
  float* ping = wg.local_mem<float>(2);
  float* pong = wg.local_mem<float>(3);
  const std::size_t n = wg.local_size(0);

  wg.for_each_item([&](const WorkItemCtx& it) {
    ping[it.local_id(0)] = in[it.global_id(0)];
  });
  float* src = ping;
  float* dst = pong;
  for (std::size_t d = 1; d < n; d *= 2) {
    wg.for_each_item([&](const WorkItemCtx& it) {
      const std::size_t i = it.local_id(0);
      dst[i] = i >= d ? src[i] + src[i - d] : src[i];
    });
    std::swap(src, dst);
  }
  wg.for_each_item([&](const WorkItemCtx& it) {
    out[it.global_id(0)] = src[it.local_id(0)];
  });
}

gpusim::KernelCost prefixsum_cost(const KernelArgs&, const NDRange&,
                                  const NDRange& local) {
  const double l = static_cast<double>(local.is_null() ? 1024 : local[0]);
  double steps = 0;
  for (double x = 1; x < l; x *= 2) ++steps;
  return {.fp_insts = steps, .mem_insts = 2, .other_insts = 3 * steps};
}

const KernelRegistrar reg_reduce{KernelDef{.name = kReduceKernel,
                                           .workgroup = &reduce_workgroup,
                                           .gpu_cost = &reduce_cost}};
const KernelRegistrar reg_histogram{KernelDef{.name = kHistogramKernel,
                                              .workgroup = &histogram_workgroup,
                                              .gpu_cost = &histogram_cost}};
const KernelRegistrar reg_prefixsum{KernelDef{.name = kPrefixSumKernel,
                                              .workgroup = &prefixsum_workgroup,
                                              .gpu_cost = &prefixsum_cost}};
const KernelRegistrar reg_parallel_min{
    KernelDef{.name = kParallelMinKernel,
              .workgroup = &parallel_min_workgroup,
              .gpu_cost = &reduce_cost}};  // same tree shape as reduce

}  // namespace
}  // namespace mcl::apps
