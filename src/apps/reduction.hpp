// Reduction, Histogram256 and Prefixsum (Table II group-local kernels).
//
// Kernel argument conventions:
//   "reduce":       0=in(float*), 1=partials(float*, one per workgroup),
//                   2=local scratch (local_size floats)
//                   Tree reduction in local memory; the host (or a second
//                   launch) folds the per-group partials.
//   "histogram256": 0=in(uint*, values < 256), 1=bins(uint*, 256),
//                   2=local bins (256 uints). Per-group local histogram,
//                   then an atomic merge into the global bins.
//   "prefixsum":    0=in(float*), 1=out(float*), 2=local ping (n floats),
//                   3=local pong (n floats). Single-workgroup inclusive
//                   Hillis-Steele scan (global size == local size).
//   "parallel_min": 0=in(uint*), 1=partials(uint*, one per workgroup),
//                   2=local scratch (local_size uints). Tree minimum in
//                   local memory (the classic AMD ParallelMin sample shape);
//                   the host folds the per-group partial minima.
#pragma once

#include <cstddef>
#include <span>

namespace mcl::apps {

inline constexpr const char* kReduceKernel = "reduce";
inline constexpr const char* kHistogramKernel = "histogram256";
inline constexpr const char* kPrefixSumKernel = "prefixsum";
inline constexpr const char* kParallelMinKernel = "parallel_min";

[[nodiscard]] double reduce_reference(std::span<const float> in);
void histogram_reference(std::span<const unsigned> in, std::span<unsigned> bins);
void prefixsum_reference(std::span<const float> in, std::span<float> out);
[[nodiscard]] unsigned parallel_min_reference(std::span<const unsigned> in);

}  // namespace mcl::apps
