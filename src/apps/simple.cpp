#include "apps/simple.hpp"

#include "ocl/kernel.hpp"
#include "simd/vec.hpp"
#include "veclegal/kernel_ir.hpp"

namespace mcl::apps {

void square_reference(std::span<const float> in, std::span<float> out) {
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = in[i] * in[i];
}

void vectoradd_reference(std::span<const float> a, std::span<const float> b,
                         std::span<float> c) {
  for (std::size_t i = 0; i < a.size(); ++i) c[i] = a[i] + b[i];
}

namespace {

using ocl::KernelArgs;
using ocl::KernelDef;
using ocl::KernelRegistrar;
using ocl::NDRange;
using ocl::SimdItemCtx;
using ocl::WorkItemCtx;

constexpr int kW = simd::kNativeFloatWidth;

// --- square ------------------------------------------------------------------

template <int W>
void square_at(const KernelArgs& a, std::size_t i) {
  using V = simd::vfloat<W>;
  const float* in = a.buffer<const float>(0);
  float* out = a.buffer<float>(1);
  const V x = V::load(in + i);
  (x * x).store(out + i);
}

void square_scalar(const KernelArgs& a, const WorkItemCtx& c) {
  square_at<1>(a, c.global_id(0));
}
void square_simd(const KernelArgs& a, const SimdItemCtx& c) {
  for (std::size_t g = 0; g < c.lane_groups(); ++g) {
    square_at<kW>(a, c.global_base() + g * kW);
  }
}
gpusim::KernelCost square_cost(const KernelArgs&, const NDRange&,
                               const NDRange&) {
  return {.fp_insts = 1, .mem_insts = 2, .other_insts = 1};
}

// --- square_coalesced ---------------------------------------------------------

template <int W>
void square_chunk(const KernelArgs& a, std::size_t begin, std::size_t per_item) {
  using V = simd::vfloat<W>;
  const float* in = a.buffer<const float>(0);
  float* out = a.buffer<float>(1);
  // W lanes each own a contiguous chunk would gather; instead lanes cover
  // consecutive elements and the loop strides by W — same totals, unit
  // stride (what the implicit vectorizer emits for a coalesced body).
  const std::size_t total = per_item * static_cast<std::size_t>(W);
  for (std::size_t off = 0; off < total; off += W) {
    const V x = V::load(in + begin + off);
    (x * x).store(out + begin + off);
  }
}

void square_coalesced_scalar(const KernelArgs& a, const WorkItemCtx& c) {
  const auto per_item = a.scalar<unsigned>(2);
  square_chunk<1>(a, c.global_id(0) * per_item, per_item);
}
void square_coalesced_simd(const KernelArgs& a, const SimdItemCtx& c) {
  const auto per_item = a.scalar<unsigned>(2);
  for (std::size_t g = 0; g < c.lane_groups(); ++g) {
    square_chunk<kW>(a, (c.global_base() + g * kW) * per_item, per_item);
  }
}
gpusim::KernelCost square_coalesced_cost(const KernelArgs& a, const NDRange&,
                                         const NDRange&) {
  const auto per_item = static_cast<double>(a.scalar<unsigned>(2));
  return {.fp_insts = per_item,
          .mem_insts = 2 * per_item,
          .other_insts = 2 * per_item,
          .ilp = 2.0};
}

// --- vectoradd -----------------------------------------------------------------

template <int W>
void vadd_at(const KernelArgs& a, std::size_t i) {
  using V = simd::vfloat<W>;
  const float* x = a.buffer<const float>(0);
  const float* y = a.buffer<const float>(1);
  float* z = a.buffer<float>(2);
  (V::load(x + i) + V::load(y + i)).store(z + i);
}

void vadd_scalar(const KernelArgs& a, const WorkItemCtx& c) {
  vadd_at<1>(a, c.global_id(0));
}
void vadd_simd(const KernelArgs& a, const SimdItemCtx& c) {
  for (std::size_t g = 0; g < c.lane_groups(); ++g) {
    vadd_at<kW>(a, c.global_base() + g * kW);
  }
}
gpusim::KernelCost vadd_cost(const KernelArgs&, const NDRange&, const NDRange&) {
  return {.fp_insts = 1, .mem_insts = 3, .other_insts = 1};
}

// --- vectoradd_coalesced --------------------------------------------------------

template <int W>
void vadd_chunk(const KernelArgs& a, std::size_t begin, std::size_t per_item) {
  using V = simd::vfloat<W>;
  const float* x = a.buffer<const float>(0);
  const float* y = a.buffer<const float>(1);
  float* z = a.buffer<float>(2);
  const std::size_t total = per_item * static_cast<std::size_t>(W);
  for (std::size_t off = 0; off < total; off += W) {
    (V::load(x + begin + off) + V::load(y + begin + off)).store(z + begin + off);
  }
}

void vadd_coalesced_scalar(const KernelArgs& a, const WorkItemCtx& c) {
  const auto per_item = a.scalar<unsigned>(3);
  vadd_chunk<1>(a, c.global_id(0) * per_item, per_item);
}
void vadd_coalesced_simd(const KernelArgs& a, const SimdItemCtx& c) {
  const auto per_item = a.scalar<unsigned>(3);
  for (std::size_t g = 0; g < c.lane_groups(); ++g) {
    vadd_chunk<kW>(a, (c.global_base() + g * kW) * per_item, per_item);
  }
}
gpusim::KernelCost vadd_coalesced_cost(const KernelArgs& a, const NDRange&,
                                       const NDRange&) {
  const auto per_item = static_cast<double>(a.scalar<unsigned>(3));
  return {.fp_insts = per_item,
          .mem_insts = 3 * per_item,
          .other_insts = 2 * per_item,
          .ilp = 2.0};
}

const KernelRegistrar reg_square{KernelDef{.name = kSquareKernel,
                                           .scalar = &square_scalar,
                                           .simd = &square_simd,
                                           .gpu_cost = &square_cost}};
const KernelRegistrar reg_square_coalesced{
    KernelDef{.name = kSquareCoalescedKernel,
              .scalar = &square_coalesced_scalar,
              .simd = &square_coalesced_simd,
              .gpu_cost = &square_coalesced_cost}};
const KernelRegistrar reg_vadd{KernelDef{.name = kVectorAddKernel,
                                         .scalar = &vadd_scalar,
                                         .simd = &vadd_simd,
                                         .gpu_cost = &vadd_cost}};
const KernelRegistrar reg_vadd_coalesced{
    KernelDef{.name = kVectorAddCoalescedKernel,
              .scalar = &vadd_coalesced_scalar,
              .simd = &vadd_coalesced_simd,
              .gpu_cost = &vadd_coalesced_cost}};

// Sanitizer descriptors. Extent 0 = launch-sized (the Checked executor takes
// it from the bound buffer); trip 0 = any global size. The coalesced
// variants index through a runtime per_item scalar, which the affine IR
// cannot express, so they carry no descriptor.
veclegal::KernelIr square_ir() {
  veclegal::KernelIr ir;
  ir.body.name = "square";
  ir.body.stmts.push_back(
      veclegal::store(veclegal::ref(1), {veclegal::ref(0), veclegal::ref(0)},
                      "out[i] = in[i] * in[i]"));
  ir.arrays = {
      veclegal::ArrayInfo{.array = 0, .arg_index = 0, .read_only = true},
      veclegal::ArrayInfo{.array = 1, .arg_index = 1},
  };
  return ir;
}
veclegal::KernelIr vadd_ir() {
  veclegal::KernelIr ir;
  ir.body.name = "vectoradd";
  ir.body.stmts.push_back(
      veclegal::store(veclegal::ref(2), {veclegal::ref(0), veclegal::ref(1)},
                      "c[i] = a[i] + b[i]"));
  ir.arrays = {
      veclegal::ArrayInfo{.array = 0, .arg_index = 0, .read_only = true},
      veclegal::ArrayInfo{.array = 1, .arg_index = 1, .read_only = true},
      veclegal::ArrayInfo{.array = 2, .arg_index = 2},
  };
  return ir;
}
const veclegal::KernelIrRegistrar ir_reg_square{kSquareKernel, square_ir()};
const veclegal::KernelIrRegistrar ir_reg_vadd{kVectorAddKernel, vadd_ir()};

}  // namespace
}  // namespace mcl::apps
