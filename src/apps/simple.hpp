// Simple applications of Table II: Square and VectorAddition, in plain and
// workitem-coalesced forms (Sec. III-B1 / Fig 1 / Table IV).
//
// Kernel argument conventions (documented per kernel):
//   "square":            0=in(float*), 1=out(float*)
//   "square_coalesced":  0=in, 1=out, 2=per_item(uint) — each workitem
//                        squares the contiguous chunk
//                        [gid*per_item, (gid+1)*per_item)
//   "vectoradd":           0=a, 1=b, 2=c
//   "vectoradd_coalesced": 0=a, 1=b, 2=c, 3=per_item(uint)
#pragma once

#include <span>

namespace mcl::apps {

inline constexpr const char* kSquareKernel = "square";
inline constexpr const char* kSquareCoalescedKernel = "square_coalesced";
inline constexpr const char* kVectorAddKernel = "vectoradd";
inline constexpr const char* kVectorAddCoalescedKernel = "vectoradd_coalesced";

/// Serial references for validation.
void square_reference(std::span<const float> in, std::span<float> out);
void vectoradd_reference(std::span<const float> a, std::span<const float> b,
                         std::span<float> c);

}  // namespace mcl::apps
