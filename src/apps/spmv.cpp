#include "apps/spmv.hpp"

#include <algorithm>

#include "ocl/kernel.hpp"
#include "simd/vec.hpp"

namespace mcl::apps {

CsrMatrix make_random_csr(std::size_t rows, std::size_t cols,
                          std::size_t nnz_per_row, std::uint64_t seed) {
  CsrMatrix m;
  m.rows = rows;
  m.cols = cols;
  m.row_ptr.resize(rows + 1);
  core::Rng rng(seed);

  m.row_ptr[0] = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    // Banded sparsity around the (scaled) diagonal keeps column indices
    // valid for any rows/cols ratio while staying irregular.
    const std::size_t center = r * cols / std::max<std::size_t>(rows, 1);
    const std::size_t band = std::max<std::size_t>(4 * nnz_per_row, 16);
    const std::size_t lo = center > band / 2 ? center - band / 2 : 0;
    const std::size_t count =
        1 + rng.next_below(2 * nnz_per_row);  // 1 .. 2*nnz_per_row
    std::size_t prev = lo;
    for (std::size_t k = 0; k < count; ++k) {
      const std::size_t col = std::min(cols - 1, prev + rng.next_below(4));
      m.col_idx.push_back(static_cast<unsigned>(col));
      m.values.push_back(rng.next_float(-1.0f, 1.0f));
      prev = col + 1;
      if (prev >= cols) break;
    }
    m.row_ptr[r + 1] = static_cast<unsigned>(m.values.size());
  }
  return m;
}

void spmv_reference(const CsrMatrix& a, std::span<const float> x,
                    std::span<float> y) {
  for (std::size_t r = 0; r < a.rows; ++r) {
    float acc = 0.0f;
    for (unsigned j = a.row_ptr[r]; j < a.row_ptr[r + 1]; ++j) {
      acc += a.values[j] * x[a.col_idx[j]];
    }
    y[r] = acc;
  }
}

namespace {

using ocl::KernelArgs;
using ocl::KernelDef;
using ocl::KernelRegistrar;
using ocl::NDRange;
using ocl::SimdItemCtx;
using ocl::WorkItemCtx;

constexpr int kW = simd::kNativeFloatWidth;

void spmv_row(const KernelArgs& a, std::size_t row) {
  const float* values = a.buffer<const float>(0);
  const unsigned* col_idx = a.buffer<const unsigned>(1);
  const unsigned* row_ptr = a.buffer<const unsigned>(2);
  const float* x = a.buffer<const float>(3);
  float* y = a.buffer<float>(4);

  float acc = 0.0f;
  for (unsigned j = row_ptr[row]; j < row_ptr[row + 1]; ++j) {
    acc += values[j] * x[col_idx[j]];
  }
  y[row] = acc;
}

void spmv_scalar(const KernelArgs& a, const WorkItemCtx& c) {
  spmv_row(a, c.global_id(0));
}

/// SPMD-vectorized form: lanes own consecutive rows; row lengths differ, so
/// the inner product runs per lane (the gather-and-ragged-loop shape a real
/// SPMD vectorizer emits for CSR with divergent trip counts).
void spmv_simd(const KernelArgs& a, const SimdItemCtx& c) {
  const std::size_t base = c.global_base();
  const std::size_t total = static_cast<std::size_t>(kW) * c.lane_groups();
  for (std::size_t l = 0; l < total; ++l) spmv_row(a, base + l);
}

gpusim::KernelCost spmv_cost(const KernelArgs& a, const NDRange& global,
                             const NDRange&) {
  const unsigned* row_ptr = a.buffer<const unsigned>(2);
  const double rows = static_cast<double>(global[0]);
  const double nnz = static_cast<double>(row_ptr[global[0]]);
  const double per_row = rows > 0 ? nnz / rows : 0.0;
  // Per row: nnz loads of values+cols (streamed) and x (gathered,
  // uncoalesced), one FMA per nnz.
  return {.fp_insts = per_row,
          .mem_insts = 3 * per_row + 1,
          .other_insts = per_row + 2,
          .flops_per_fp = 2.0,
          .coalesced = false};
}

const KernelRegistrar reg_spmv{KernelDef{.name = kSpmvKernel,
                                         .scalar = &spmv_scalar,
                                         .simd = &spmv_simd,
                                         .gpu_cost = &spmv_cost}};

}  // namespace
}  // namespace mcl::apps
