// Sparse matrix-vector multiply (CSR), an extension workload beyond the
// paper's suite: its gather accesses (x[col[j]]) exercise the uncoalesced
// memory path of the GPU model and the per-lane gather path of the SIMD
// executor — the access pattern Fig 10's MBench6 isolates, in a real kernel.
//
// Kernel argument conventions ("spmv_csr"):
//   0=values(float*), 1=col_idx(uint*), 2=row_ptr(uint*, rows+1),
//   3=x(float*), 4=y(float* out)
//   NDRange: global = rows (one row per workitem).
#pragma once

#include <cstddef>
#include <span>

#include "apps/hostdata.hpp"

namespace mcl::apps {

inline constexpr const char* kSpmvKernel = "spmv_csr";

/// CSR matrix with deterministic random sparsity.
struct CsrMatrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  FloatVec values;
  UintVec col_idx;
  UintVec row_ptr;  ///< rows + 1 entries

  [[nodiscard]] std::size_t nnz() const noexcept { return values.size(); }
};

/// Builds a random CSR matrix with ~nnz_per_row entries per row (banded
/// around the diagonal, deterministic for a given seed).
[[nodiscard]] CsrMatrix make_random_csr(std::size_t rows, std::size_t cols,
                                        std::size_t nnz_per_row,
                                        std::uint64_t seed);

/// y = A * x, serial reference.
void spmv_reference(const CsrMatrix& a, std::span<const float> x,
                    std::span<float> y);

}  // namespace mcl::apps
