#include "apps/transpose.hpp"

#include "ocl/kernel.hpp"
#include "simd/vec.hpp"

namespace mcl::apps {

void transpose_reference(std::span<const float> in, std::span<float> out,
                         std::size_t w, std::size_t h) {
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      out[x * h + y] = in[y * w + x];
    }
  }
}

namespace {

using ocl::KernelArgs;
using ocl::KernelDef;
using ocl::KernelRegistrar;
using ocl::NDRange;
using ocl::WorkGroupCtx;
using ocl::WorkItemCtx;

// --- naive: out[x][y] = in[y][x] (strided store) -----------------------------

void naive_scalar(const KernelArgs& a, const WorkItemCtx& c) {
  const float* in = a.buffer<const float>(0);
  float* out = a.buffer<float>(1);
  const auto w = a.scalar<unsigned>(2);
  const auto h = a.scalar<unsigned>(3);
  const std::size_t x = c.global_id(0);
  const std::size_t y = c.global_id(1);
  (void)w;
  out[x * h + y] = in[y * w + x];
}

gpusim::KernelCost naive_cost(const KernelArgs&, const NDRange&,
                              const NDRange&) {
  // One coalesced load + one uncoalesced (column) store per item.
  return {.fp_insts = 0,
          .mem_insts = 2,
          .other_insts = 3,
          .coalesced = false};
}

// --- tiled: stage a TxT block through local memory ---------------------------

void tiled_workgroup(const KernelArgs& a, const WorkGroupCtx& wg) {
  const float* in = a.buffer<const float>(0);
  float* out = a.buffer<float>(1);
  const auto w = a.scalar<unsigned>(2);
  const auto h = a.scalar<unsigned>(3);
  float* tile = wg.local_mem<float>(4);
  const std::size_t t = wg.local_size(0);

  // Phase 1: contiguous read of the block at (bx, by) into the tile,
  // transposed in local memory.
  wg.for_each_item([&](const WorkItemCtx& it) {
    const std::size_t gx = it.global_id(0);
    const std::size_t gy = it.global_id(1);
    tile[it.local_id(0) * t + it.local_id(1)] = in[gy * w + gx];
  });
  // Phase 2 (after the implicit barrier): contiguous write of the
  // transposed block at (by, bx).
  wg.for_each_item([&](const WorkItemCtx& it) {
    const std::size_t ox = it.group_id(1) * t + it.local_id(0);  // along h
    const std::size_t oy = it.group_id(0) * t + it.local_id(1);  // along w
    out[oy * h + ox] = tile[it.local_id(1) * t + it.local_id(0)];
  });
}

gpusim::KernelCost tiled_cost(const KernelArgs&, const NDRange&,
                              const NDRange&) {
  // Both global accesses coalesced; local-memory traffic as "other".
  return {.fp_insts = 0, .mem_insts = 2, .other_insts = 5, .coalesced = true};
}

const KernelRegistrar reg_naive{KernelDef{.name = kTransposeNaiveKernel,
                                          .scalar = &naive_scalar,
                                          .gpu_cost = &naive_cost}};
const KernelRegistrar reg_tiled{KernelDef{.name = kTransposeTiledKernel,
                                          .workgroup = &tiled_workgroup,
                                          .gpu_cost = &tiled_cost}};

}  // namespace
}  // namespace mcl::apps
