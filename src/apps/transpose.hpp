// Matrix transpose — the classic memory-coalescing workload. The naive
// kernel writes columns (uncoalesced on GPUs, strided on CPUs); the tiled
// kernel stages a TxT block in local memory so both the read and the write
// are contiguous. Extends the paper's coalescing discussion with the
// canonical example its GPU sources used.
//
// Kernel argument conventions:
//   "transpose_naive": 0=in(float*, h x w row-major),
//                      1=out(float*, w x h row-major),
//                      2=w(uint), 3=h(uint)
//                      NDRange: global = (w, h).
//   "transpose_tiled": same args 0-3 plus 4=local tile (T*T floats);
//                      workgroup form, square local (T, T), T | w and T | h.
#pragma once

#include <cstddef>
#include <span>

namespace mcl::apps {

inline constexpr const char* kTransposeNaiveKernel = "transpose_naive";
inline constexpr const char* kTransposeTiledKernel = "transpose_tiled";

void transpose_reference(std::span<const float> in, std::span<float> out,
                         std::size_t w, std::size_t h);

}  // namespace mcl::apps
