#include "cachesim/cache.hpp"

#include "core/error.hpp"

namespace mcl::cachesim {

Cache::Cache(const CacheConfig& config) : config_(config) {
  core::check(config_.line_bytes > 0 && (config_.line_bytes & (config_.line_bytes - 1)) == 0,
              core::Status::InvalidValue, "cache line size must be a power of two");
  core::check(config_.ways > 0, core::Status::InvalidValue, "cache needs >=1 way");
  sets_ = config_.num_sets();
  core::check(sets_ > 0, core::Status::InvalidValue,
              "cache size must cover at least one set");
  lines_.resize(sets_ * config_.ways);
}

Cache::Line* Cache::find(std::uint64_t addr) {
  const std::uint64_t line = line_of(addr);
  const std::size_t set = static_cast<std::size_t>(line % sets_);
  Line* base = &lines_[set * config_.ways];
  for (std::size_t w = 0; w < config_.ways; ++w) {
    if (base[w].valid && base[w].tag == line) return &base[w];
  }
  return nullptr;
}

const Cache::Line* Cache::find(std::uint64_t addr) const {
  return const_cast<Cache*>(this)->find(addr);
}

bool Cache::access(std::uint64_t addr, bool is_write) {
  const std::uint64_t line = line_of(addr);
  const std::size_t set = static_cast<std::size_t>(line % sets_);
  Line* base = &lines_[set * config_.ways];
  ++tick_;

  Line* victim = base;
  for (std::size_t w = 0; w < config_.ways; ++w) {
    Line& l = base[w];
    if (l.valid && l.tag == line) {
      l.lru = tick_;
      l.dirty = l.dirty || is_write;
      ++stats_.hits;
      return true;
    }
    if (!l.valid) {
      victim = &l;  // prefer filling an invalid way
    } else if (victim->valid && l.lru < victim->lru) {
      victim = &l;
    }
  }
  ++stats_.misses;
  victim->valid = true;
  victim->tag = line;
  victim->lru = tick_;
  victim->dirty = is_write;
  return false;
}

bool Cache::invalidate(std::uint64_t addr) {
  if (Line* l = find(addr)) {
    l->valid = false;
    l->dirty = false;
    ++stats_.invalidations;
    return true;
  }
  return false;
}

bool Cache::contains(std::uint64_t addr) const { return find(addr) != nullptr; }

bool Cache::is_dirty(std::uint64_t addr) const {
  const Line* l = find(addr);
  return l != nullptr && l->dirty;
}

bool Cache::downgrade(std::uint64_t addr) {
  if (Line* l = find(addr); l != nullptr && l->dirty) {
    l->dirty = false;
    ++stats_.downgrades;
    return true;
  }
  return false;
}

void Cache::install(std::uint64_t addr) {
  const std::uint64_t line = line_of(addr);
  const std::size_t set = static_cast<std::size_t>(line % sets_);
  Line* base = &lines_[set * config_.ways];
  ++tick_;
  Line* victim = base;
  for (std::size_t w = 0; w < config_.ways; ++w) {
    Line& l = base[w];
    if (l.valid && l.tag == line) {
      l.lru = tick_;
      return;  // already resident
    }
    if (!l.valid) {
      victim = &l;
    } else if (victim->valid && l.lru < victim->lru) {
      victim = &l;
    }
  }
  victim->valid = true;
  victim->tag = line;
  victim->lru = tick_;
  victim->dirty = false;
}

void Cache::flush() {
  for (Line& l : lines_) {
    l.valid = false;
    l.dirty = false;
  }
}

}  // namespace mcl::cachesim
