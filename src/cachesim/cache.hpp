// Set-associative cache with true-LRU replacement.
//
// Building block of the multi-core hierarchy in hierarchy.hpp. Addresses are
// byte addresses; the cache operates on lines.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mcl::cachesim {

struct CacheConfig {
  std::size_t size_bytes = 32 * 1024;
  std::size_t line_bytes = 64;
  std::size_t ways = 8;

  [[nodiscard]] std::size_t num_sets() const noexcept {
    return size_bytes / (line_bytes * ways);
  }
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t downgrades = 0;  ///< M -> S transitions (remote read snoops)

  [[nodiscard]] double miss_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(misses) / static_cast<double>(total);
  }
};

class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  /// Looks up the line containing `addr`; on miss installs it (evicting
  /// LRU). Writes mark the line dirty (MESI M state). Returns true on hit.
  bool access(std::uint64_t addr, bool is_write = false);

  /// Removes the line containing `addr` if present (coherence invalidate).
  /// Returns true when a copy existed.
  bool invalidate(std::uint64_t addr);

  /// True if the line is currently resident (no LRU update — probe only).
  [[nodiscard]] bool contains(std::uint64_t addr) const;

  /// True if the line is resident and dirty (M state).
  [[nodiscard]] bool is_dirty(std::uint64_t addr) const;

  /// M -> S: clears the dirty bit if the line is resident (a remote read
  /// snoop hit this owner). Returns true when a dirty copy was downgraded.
  bool downgrade(std::uint64_t addr);

  /// Installs the line clean without touching hit/miss statistics (used by
  /// prefetchers — their fills are not demand accesses).
  void install(std::uint64_t addr);

  void reset_stats() noexcept { stats_ = {}; }
  void flush();

  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const CacheConfig& config() const noexcept { return config_; }

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  ///< larger = more recently used
    bool valid = false;
    bool dirty = false;     ///< MESI M (vs S/E collapsed into clean-valid)
  };

  [[nodiscard]] Line* find(std::uint64_t addr);
  [[nodiscard]] const Line* find(std::uint64_t addr) const;

  [[nodiscard]] std::uint64_t line_of(std::uint64_t addr) const noexcept {
    return addr / config_.line_bytes;
  }

  CacheConfig config_;
  std::size_t sets_;
  std::vector<Line> lines_;  ///< sets_ * ways, row-major by set
  std::uint64_t tick_ = 0;
  CacheStats stats_;
};

}  // namespace mcl::cachesim
