#include "cachesim/hierarchy.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace mcl::cachesim {

Machine::Machine(const MachineConfig& config)
    : config_(config), l3_(config.l3) {
  core::check(config_.cores > 0, core::Status::InvalidValue,
              "machine needs >=1 core");
  l1_.reserve(static_cast<std::size_t>(config_.cores));
  l2_.reserve(static_cast<std::size_t>(config_.cores));
  for (int c = 0; c < config_.cores; ++c) {
    l1_.emplace_back(config_.l1);
    l2_.emplace_back(config_.l2);
  }
  cycles_.assign(static_cast<std::size_t>(config_.cores), 0);
}

AccessResult Machine::access_line(int core, std::uint64_t addr, bool is_write) {
  const auto c = static_cast<std::size_t>(core);
  AccessResult r;

  bool remote_dirty = false;
  if (is_write) {
    // Write-invalidate: strip the line from every other private cache. A
    // dirty remote copy must be transferred before this core may own it.
    for (std::size_t other = 0; other < l1_.size(); ++other) {
      if (other == c) continue;
      remote_dirty |= l1_[other].is_dirty(addr) || l2_[other].is_dirty(addr);
      if (l1_[other].invalidate(addr)) ++coherence_.invalidations;
      if (l2_[other].invalidate(addr)) ++coherence_.invalidations;
    }
  }

  const bool l1_hit = l1_[c].access(addr, is_write);
  if (l1_hit && !remote_dirty) {
    r.cycles = config_.lat_l1;
    r.hit_level = 1;
    return r;
  }
  // Note: Cache::access installs on miss, so the L1 lookup above already
  // filled the line into L1; lower levels only decide the latency.
  const bool l2_hit = l2_[c].access(addr, is_write);
  if (l2_hit && !remote_dirty) {
    r.cycles = config_.lat_l2;
    r.hit_level = 2;
    return r;
  }

  if (!is_write) {
    // Read miss: a remote M-state copy services it cache-to-cache and the
    // owner downgrades to shared.
    for (std::size_t other = 0; other < l1_.size(); ++other) {
      if (other == c) continue;
      if (l1_[other].is_dirty(addr) || l2_[other].is_dirty(addr)) {
        l1_[other].downgrade(addr);
        l2_[other].downgrade(addr);
        ++coherence_.downgrades;
        ++coherence_.remote_transfers;
        (void)l3_.access(addr);  // the transfer also refreshes L3
        r.cycles = config_.lat_remote;
        r.hit_level = 5;
        return r;
      }
    }
  } else if (remote_dirty) {
    ++coherence_.remote_transfers;
    (void)l3_.access(addr, true);
    r.cycles = config_.lat_remote;
    r.hit_level = 5;
    return r;
  }

  if (l3_.access(addr, is_write)) {
    r.cycles = config_.lat_l3;
    r.hit_level = 3;
  } else {
    r.cycles = config_.lat_mem;
    r.hit_level = 4;
  }
  return r;
}

AccessResult Machine::access(int core, std::uint64_t addr, std::uint64_t bytes,
                             bool is_write) {
  core::check(core >= 0 && core < config_.cores, core::Status::InvalidValue,
              "core id out of range");
  const std::uint64_t line = config_.l1.line_bytes;
  const std::uint64_t first = addr / line;
  const std::uint64_t last = bytes == 0 ? first : (addr + bytes - 1) / line;
  AccessResult total;
  for (std::uint64_t l = first; l <= last; ++l) {
    const AccessResult r = access_line(core, l * line, is_write);
    total.cycles += r.cycles;
    total.hit_level = std::max(total.hit_level, r.hit_level);
    if (config_.prefetch_next_line && r.hit_level > 2) {
      // Demand miss in the private caches: stream the next line in clean
      // (untimed; no coherence action — a real streamer drops lines that
      // would need ownership).
      const auto c = static_cast<std::size_t>(core);
      const std::uint64_t next = (l + 1) * line;
      bool remote_dirty = false;
      for (std::size_t other = 0; other < l1_.size(); ++other) {
        if (other == c) continue;
        remote_dirty |=
            l1_[other].is_dirty(next) || l2_[other].is_dirty(next);
      }
      if (!remote_dirty) {
        l1_[c].install(next);
        l2_[c].install(next);
        l3_.install(next);
      }
    }
  }
  cycles_[static_cast<std::size_t>(core)] += total.cycles;
  return total;
}

std::uint64_t Machine::makespan_cycles() const {
  return *std::max_element(cycles_.begin(), cycles_.end());
}

void Machine::reset_cycles() { std::fill(cycles_.begin(), cycles_.end(), 0); }

void Machine::reset_stats() {
  for (auto& c : l1_) c.reset_stats();
  for (auto& c : l2_) c.reset_stats();
  l3_.reset_stats();
  coherence_ = {};
}

void Machine::flush_all() {
  for (auto& c : l1_) c.flush();
  for (auto& c : l2_) c.flush();
  l3_.flush();
}

}  // namespace mcl::cachesim
