// Multi-core cache hierarchy: private L1/L2 per core, shared L3, DRAM.
//
// Geometry and latencies default to a Xeon E5645-like machine (the paper's
// Table I CPU). Coherence is MESI-style at line granularity: writes
// invalidate remote copies; a read that misses locally but finds a remote
// *dirty* (M-state) copy pays the cache-to-cache transfer latency and
// downgrades the owner to shared — the costly path the Fig 9 misaligned
// mapping keeps hitting.
#pragma once

#include <cstdint>
#include <vector>

#include "cachesim/cache.hpp"

namespace mcl::cachesim {

struct MachineConfig {
  int cores = 6;  // E5645: 6 cores (paper used 2-socket x 6; 6 is enough)
  CacheConfig l1{32 * 1024, 64, 8};
  CacheConfig l2{256 * 1024, 64, 8};
  CacheConfig l3{12 * 1024 * 1024, 64, 16};
  // Approximate Westmere load-to-use latencies (cycles).
  std::uint64_t lat_l1 = 4;
  std::uint64_t lat_l2 = 10;
  std::uint64_t lat_l3 = 40;
  std::uint64_t lat_mem = 200;
  /// Cache-to-cache transfer when another core owns the line in M state
  /// (dirty): costlier than a clean L3 hit on real parts.
  std::uint64_t lat_remote = 75;
  /// Next-line prefetch: a private-cache miss also installs line+1 clean in
  /// the missing core's L1/L2 (no latency charged — it overlaps the demand
  /// fill). Models the L1 streamer all the candidate machines have.
  bool prefetch_next_line = false;

  /// E5645-like default (used by the Fig 9 bench with cores=8 to match the
  /// paper's 8-way work distribution).
  [[nodiscard]] static MachineConfig xeon_e5645(int cores = 6) {
    MachineConfig m;
    m.cores = cores;
    return m;
  }
};

/// Result of one memory access walked through the hierarchy.
struct AccessResult {
  std::uint64_t cycles = 0;
  int hit_level = 0;  ///< 1=L1, 2=L2, 3=L3, 4=memory, 5=remote M copy
};

/// Machine-wide coherence event counters.
struct CoherenceStats {
  std::uint64_t invalidations = 0;     ///< copies killed by remote writes
  std::uint64_t remote_transfers = 0;  ///< dirty cache-to-cache transfers
  std::uint64_t downgrades = 0;        ///< M -> S on remote read snoops
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config);

  /// One access of `bytes` bytes at `addr` by `core`; walks line by line.
  /// Writes invalidate other cores' private copies.
  AccessResult access(int core, std::uint64_t addr, std::uint64_t bytes,
                      bool is_write);

  /// Per-core accumulated cycles (caller-managed via add_cycles/access).
  [[nodiscard]] std::uint64_t core_cycles(int core) const {
    return cycles_.at(static_cast<std::size_t>(core));
  }
  /// Longest per-core cycle count — the makespan of a parallel phase.
  [[nodiscard]] std::uint64_t makespan_cycles() const;

  void reset_cycles();
  void reset_stats();
  void flush_all();

  [[nodiscard]] const CoherenceStats& coherence() const noexcept {
    return coherence_;
  }

  [[nodiscard]] const MachineConfig& config() const noexcept { return config_; }
  [[nodiscard]] const Cache& l1(int core) const {
    return l1_[static_cast<std::size_t>(core)];
  }
  [[nodiscard]] const Cache& l2(int core) const {
    return l2_[static_cast<std::size_t>(core)];
  }
  [[nodiscard]] const Cache& l3() const noexcept { return l3_; }

 private:
  AccessResult access_line(int core, std::uint64_t addr, bool is_write);

  MachineConfig config_;
  std::vector<Cache> l1_;
  std::vector<Cache> l2_;
  Cache l3_;
  std::vector<std::uint64_t> cycles_;
  CoherenceStats coherence_;
};

}  // namespace mcl::cachesim
