#include "check/case.hpp"

#include <bit>
#include <sstream>

namespace mcl::check {

namespace {

constexpr long long kMaxGlobal = 1 << 20;
constexpr long long kMaxExtent = 1 << 22;
constexpr std::size_t kMaxStmts = 64;

/// Subscript as pseudo-source ("i", "2*i+1", "L-1-l", ...).
std::string subscript_text(const Access& a, bool local) {
  const char* id = local ? "l" : "i";
  std::ostringstream out;
  if (a.scale == 0) {
    out << a.offset;
    return out.str();
  }
  if (a.scale == 1) {
    out << id;
  } else if (a.scale == -1) {
    out << "-" << id;
  } else {
    out << a.scale << "*" << id;
  }
  if (a.offset > 0) out << "+" << a.offset;
  if (a.offset < 0) out << a.offset;
  return out.str();
}

std::string access_text(const Case& c, const Access& a) {
  std::ostringstream out;
  out << "A" << a.array << "["
      << subscript_text(a, c.arrays[a.array].local) << "]";
  return out.str();
}

std::string stmt_text(const Case& c, const Stmt& s) {
  if (s.barrier) return "barrier()";
  std::ostringstream out;
  if (s.dst_array >= 0) {
    out << access_text(c, s.dst);
  } else {
    out << "T" << s.dst_temp;
  }
  out << " = " << to_string(s.op) << "(0x" << std::hex << s.init_bits
      << std::dec;
  for (const Access& r : s.reads) out << ", " << access_text(c, r);
  for (int t : s.temp_reads) out << ", T" << t;
  out << ")";
  return out.str();
}

/// Min/max of scale*id + offset over id in [0, n).
void affine_bounds(long long scale, long long offset, long long n,
                   long long& lo, long long& hi) {
  const long long at0 = offset;
  const long long atN = scale * (n - 1) + offset;
  lo = at0 < atN ? at0 : atN;
  hi = at0 < atN ? atN : at0;
}

}  // namespace

bool Case::has_barrier() const noexcept {
  for (const Stmt& s : stmts) {
    if (s.barrier) return true;
  }
  return false;
}

bool Case::has_local() const noexcept {
  for (const Array& a : arrays) {
    if (a.local) return true;
  }
  return false;
}

std::uint32_t sanitize_bits(Ty type, std::uint32_t bits) {
  if (type != Ty::F32) return bits;
  const std::uint32_t exp = (bits >> 23) & 0xffu;
  if (exp == 0xffu) {
    // Inf/NaN: remap to a finite value in [1, 2) keeping the mantissa, so
    // propagation stays deterministic regardless of NaN payload rules.
    return (bits & 0x007fffffu) | 0x3f800000u;
  }
  if (exp == 0 && (bits & 0x007fffffu) != 0) {
    // Subnormal: flush to signed zero so FTZ/DAZ build flavors agree.
    return bits & 0x80000000u;
  }
  return bits;
}

std::uint32_t apply_op(Ty type, Op op, std::uint32_t acc, std::uint32_t v) {
  if (type == Ty::I32) {
    switch (op) {
      case Op::Add: return acc + v;
      case Op::Sub: return acc - v;
      case Op::Mul: return acc * v;
      case Op::Min:
        return static_cast<std::int32_t>(v) < static_cast<std::int32_t>(acc)
                   ? v
                   : acc;
      case Op::Max:
        return static_cast<std::int32_t>(v) > static_cast<std::int32_t>(acc)
                   ? v
                   : acc;
      case Op::Xor: return acc ^ v;
      case Op::And: return acc & v;
      case Op::Or: return acc | v;
    }
    return acc;
  }
  // F32: bitwise ops degrade to their integer forms (the generator does not
  // emit them for floats, but replayed files must stay deterministic).
  const float a = std::bit_cast<float>(acc);
  const float b = std::bit_cast<float>(v);
  float r = a;
  switch (op) {
    case Op::Add: r = a + b; break;
    case Op::Sub: r = a - b; break;
    case Op::Mul: r = a * b; break;
    case Op::Min: r = b < a ? b : a; break;
    case Op::Max: r = b > a ? b : a; break;
    case Op::Xor: return sanitize_bits(type, acc ^ v);
    case Op::And: return sanitize_bits(type, acc & v);
    case Op::Or: return sanitize_bits(type, acc | v);
  }
  return sanitize_bits(type, std::bit_cast<std::uint32_t>(r));
}

void eval_stmt(const Case& c, const Stmt& s, long long gid, long long lid,
               std::uint32_t* const* mem, std::uint32_t* temps) {
  std::uint32_t acc = sanitize_bits(c.type, s.init_bits);
  for (const Access& r : s.reads) {
    const long long id = c.arrays[r.array].local ? lid : gid;
    acc = apply_op(c.type, s.op, acc, mem[r.array][r.scale * id + r.offset]);
  }
  for (int t : s.temp_reads) acc = apply_op(c.type, s.op, acc, temps[t]);
  if (s.dst_temp >= 0) {
    temps[s.dst_temp] = acc;
    return;
  }
  const long long id = c.arrays[s.dst_array].local ? lid : gid;
  mem[s.dst_array][s.dst.scale * id + s.dst.offset] = acc;
}

const char* to_string(Op op) {
  switch (op) {
    case Op::Add: return "add";
    case Op::Sub: return "sub";
    case Op::Mul: return "mul";
    case Op::Min: return "min";
    case Op::Max: return "max";
    case Op::Xor: return "xor";
    case Op::And: return "and";
    case Op::Or: return "or";
  }
  return "?";
}

std::optional<Op> parse_op(const std::string& name) {
  for (Op op : {Op::Add, Op::Sub, Op::Mul, Op::Min, Op::Max, Op::Xor, Op::And,
                Op::Or}) {
    if (name == to_string(op)) return op;
  }
  return std::nullopt;
}

std::optional<std::string> validate(const Case& c) {
  const auto fail = [](const std::string& why) {
    return std::optional<std::string>(why);
  };
  if (c.arrays.empty() || c.arrays.size() > kMaxArrays) {
    return fail("array count out of [1, kMaxArrays]");
  }
  if (c.num_temps < 0 || c.num_temps > kMaxTemps) {
    return fail("temp count out of [0, kMaxTemps]");
  }
  if (c.stmts.size() > kMaxStmts) return fail("too many statements");
  if (c.global < 1 || static_cast<long long>(c.global) > kMaxGlobal) {
    return fail("global size out of range");
  }
  if (c.local < 1 || c.local > c.global) {
    return fail("local size must be in [1, global]");
  }
  if (c.work_items < 1 || c.work_items > static_cast<long long>(c.global)) {
    return fail("work_items must be in [1, global]");
  }
  if (c.global % c.local != 0) {
    // The runtime enforces the OpenCL 1.x uniform-workgroup rule for every
    // launch, so the descriptor space does too.
    return fail("global size must be a multiple of the local size");
  }
  const bool synced = c.has_barrier() || c.has_local();
  if (synced) {
    if (c.work_items != static_cast<long long>(c.global)) {
      return fail("barrier/local cases must not guard the tail");
    }
  }
  for (std::size_t i = 0; i < c.arrays.size(); ++i) {
    const Array& a = c.arrays[i];
    if (a.extent < 1 || a.extent > kMaxExtent) {
      return fail("array extent out of range");
    }
    if (a.local && a.extent != static_cast<long long>(c.local)) {
      return fail("local array extent must equal the local size");
    }
    if (a.local && a.read_only) return fail("local arrays cannot be read-only");
  }

  const auto in_bounds = [&](const Access& acc) {
    const Array& a = c.arrays[acc.array];
    const long long n = a.local ? static_cast<long long>(c.local)
                                : c.work_items;
    long long lo = 0;
    long long hi = 0;
    affine_bounds(acc.scale, acc.offset, n, lo, hi);
    return lo >= 0 && hi < a.extent;
  };

  // writer[a]: the unique write access of global array a, if any.
  std::vector<std::optional<Access>> writer(c.arrays.size());
  int epoch = 0;
  std::vector<int> local_write_epoch(c.arrays.size(), -1);
  std::vector<bool> temp_defined(static_cast<std::size_t>(kMaxTemps), false);
  for (const Stmt& s : c.stmts) {
    if (s.barrier) {
      if (s.dst_array >= 0 || s.dst_temp >= 0 || !s.reads.empty() ||
          !s.temp_reads.empty()) {
        return fail("barrier statement must carry no accesses");
      }
      if (!synced) return fail("barrier in a case without uniform groups");
      ++epoch;
      continue;
    }
    if ((s.dst_array >= 0) == (s.dst_temp >= 0)) {
      return fail("statement must target exactly one of array/temp");
    }
    for (const Access& r : s.reads) {
      if (r.array < 0 || r.array >= static_cast<int>(c.arrays.size())) {
        return fail("read of unknown array");
      }
      const Array& a = c.arrays[r.array];
      if (!in_bounds(r)) return fail("read subscript out of bounds");
      if (a.local) {
        if (local_write_epoch[r.array] < 0 ||
            local_write_epoch[r.array] >= epoch) {
          return fail("local array read without an earlier-epoch write");
        }
      } else if (!a.read_only && writer[r.array].has_value() &&
                 !(r == *writer[r.array])) {
        return fail("writable global array read away from its write subscript");
      }
    }
    for (int t : s.temp_reads) {
      if (t < 0 || t >= c.num_temps || !temp_defined[t]) {
        return fail("read of undefined temp");
      }
    }
    if (s.dst_temp >= 0) {
      if (s.dst_temp >= c.num_temps) return fail("temp index out of range");
      temp_defined[s.dst_temp] = true;
      continue;
    }
    if (s.dst_array >= static_cast<int>(c.arrays.size()) ||
        s.dst.array != s.dst_array) {
      return fail("malformed write destination");
    }
    const Array& a = c.arrays[s.dst_array];
    if (a.read_only) return fail("write to a read-only array");
    if (!in_bounds(s.dst)) return fail("write subscript out of bounds");
    if (a.local) {
      if (s.dst.scale != 1 || s.dst.offset != 0) {
        return fail("local writes must target local[lid]");
      }
      if (local_write_epoch[s.dst_array] < 0) {
        local_write_epoch[s.dst_array] = epoch;
      }
    } else {
      if (s.dst.scale != 1 && s.dst.scale != -1) {
        return fail("global writes must be item-injective (|scale| == 1)");
      }
      if (writer[s.dst_array].has_value()) {
        return fail("writable global array written more than once");
      }
      writer[s.dst_array] = s.dst;
      // Reads up to and including this statement must already have used
      // this subscript (later reads are checked as they are reached).
      for (const Stmt& prior : c.stmts) {
        for (const Access& r : prior.reads) {
          if (r.array == s.dst_array && !(r == s.dst)) {
            return fail(
                "writable global array read away from its write subscript");
          }
        }
        if (&prior == &s) break;
      }
    }
  }
  return std::nullopt;
}

veclegal::KernelIr lower_to_ir(const Case& c) {
  veclegal::KernelIr ir;
  ir.body.name = "mclcheck.case";
  ir.body.trip_count = c.work_items;
  for (const Stmt& s : c.stmts) {
    if (s.barrier) {
      ir.body.stmts.push_back(veclegal::barrier_stmt());
      continue;
    }
    veclegal::Stmt out;
    out.text = stmt_text(c, s);
    for (const Access& r : s.reads) {
      if (c.arrays[r.array].local) continue;  // lid-indexed: inexpressible
      out.array_reads.push_back(veclegal::ref(r.array, r.scale, r.offset));
    }
    out.temp_reads = s.temp_reads;
    if (s.dst_temp >= 0) {
      out.temp_write = s.dst_temp;
    } else if (!c.arrays[s.dst_array].local) {
      out.array_write = veclegal::ref(s.dst_array, s.dst.scale, s.dst.offset);
    } else if (out.array_reads.empty() && out.temp_reads.empty()) {
      continue;  // pure local-memory statement: nothing the IR can model
    }
    ir.body.stmts.push_back(std::move(out));
  }
  for (std::size_t i = 0; i < c.arrays.size(); ++i) {
    const Array& a = c.arrays[i];
    if (a.local) continue;
    ir.arrays.push_back(veclegal::array_info(
        static_cast<int>(i), a.extent, static_cast<int>(i) + 1, a.read_only,
        /*local=*/false, sizeof(std::uint32_t)));
  }
  return ir;
}

std::string describe(const Case& c) {
  std::ostringstream out;
  out << "case seed=" << c.seed
      << " type=" << (c.type == Ty::F32 ? "f32" : "i32")
      << " global=" << c.global << " local=" << c.local
      << " work_items=" << c.work_items << " temps=" << c.num_temps
      << " plan=" << (c.plan.map_inputs ? "map" : "write") << "/"
      << (c.plan.map_outputs ? "map" : "read") << "\n";
  for (std::size_t i = 0; i < c.arrays.size(); ++i) {
    const Array& a = c.arrays[i];
    out << "  A" << i << ": extent=" << a.extent;
    if (a.read_only) out << " read_only";
    if (a.local) out << " local";
    out << " init_seed=" << a.init_seed << "\n";
  }
  for (const Stmt& s : c.stmts) out << "  " << stmt_text(c, s) << "\n";
  return out.str();
}

}  // namespace mcl::check
