// mclcheck case model: one generated kernel program + launch geometry +
// host transfer plan — everything a differential test needs to run, compare,
// shrink, and replay.
//
// The model is a typed, executable sibling of the veclegal affine IR: array
// subscripts are affine in the dim-0 global id (local arrays: in the local
// id), statements execute in order per workitem, barriers split the body
// into workgroup-synchronized epochs. A Case lowers losslessly (minus
// local-array accesses, which the gid-indexed IR cannot express) to a
// veclegal::KernelIr so the mclsan static analyzer can certify every
// generated program race- and bounds-free before the backends run it.
//
// Determinism contract (what makes bit-exact differential testing possible):
//  - every writable global array is written by at most one statement, whose
//    subscript has |scale| == 1 (injective across workitems);
//  - a writable global array may be read only at the exact subscript its
//    writer uses (the distance-0 read-modify-write shape — legal under SPMD,
//    rule S3);
//  - local arrays appear only in barrier cases, are written pre-barrier at
//    local[lid], and read post-barrier at lid-affine subscripts inside
//    [0, local);
//  - all arithmetic funnels through the one compiled eval_stmt() below, so
//    no backend can see a different FP contraction or association;
//  - non-finite floats are remapped to a value derived from their bit
//    pattern (sanitize_bits), so Inf/NaN propagation cannot introduce
//    platform-dependent payloads.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "veclegal/kernel_ir.hpp"

namespace mcl::check {

/// Element type of a case. One per case: every array, temp and constant of
/// the program shares it (4 bytes either way; storage is raw bit patterns).
enum class Ty : std::uint8_t { F32, I32 };

/// Fold operator applied between the accumulator and each operand.
/// F32 uses Add..Max; I32 additionally uses the bitwise ops. Integer
/// arithmetic wraps as uint32 (no UB); min/max compare as int32.
enum class Op : std::uint8_t { Add, Sub, Mul, Min, Max, Xor, And, Or };

/// Affine array access: element index scale*id + offset, where id is the
/// global id for global arrays and the local id for local arrays.
struct Access {
  int array = 0;
  long long scale = 1;
  long long offset = 0;

  [[nodiscard]] bool operator==(const Access&) const = default;
};

/// One statement: dst = fold(op, init, reads..., temps...) or a barrier.
/// Exactly one of {dst_array, dst_temp, barrier} is active.
struct Stmt {
  bool barrier = false;
  int dst_array = -1;  ///< >= 0: array store through `dst`
  Access dst;          ///< valid when dst_array >= 0 (dst.array == dst_array)
  int dst_temp = -1;   ///< >= 0: scalar temp definition
  Op op = Op::Add;
  std::uint32_t init_bits = 0;  ///< fold seed (bit pattern of Ty)
  std::vector<Access> reads;
  std::vector<int> temp_reads;

  [[nodiscard]] bool operator==(const Stmt&) const = default;
};

/// One array of the program. Global arrays bind to a Buffer at KernelArgs
/// slot 1 + index; local arrays to a set_arg_local request of extent
/// elements (extent == the case's local size).
struct Array {
  long long extent = 0;
  bool read_only = false;       ///< input: the kernel never writes it
  bool local = false;           ///< workgroup-local scratch
  std::uint64_t init_seed = 0;  ///< content seed (inputs and writable init)

  [[nodiscard]] bool operator==(const Array&) const = default;
};

/// Host transfer plan: how inputs reach the buffers and how outputs come
/// back. Metamorphically equivalent on a CPU device — flipping either bit
/// must not change results.
struct Plan {
  bool map_inputs = false;   ///< map+memcpy+unmap instead of write_buffer
  bool map_outputs = false;  ///< map instead of read_buffer

  [[nodiscard]] bool operator==(const Plan&) const = default;
};

/// Maximum shape bounds. Kernel-side interpretation indexes fixed arrays of
/// these sizes; validate() enforces them so replayed files cannot overflow.
inline constexpr int kMaxArrays = 8;
inline constexpr int kMaxTemps = 8;

struct Case {
  std::uint64_t seed = 0;  ///< generator seed that produced it (provenance)
  Ty type = Ty::F32;
  std::vector<Array> arrays;
  std::vector<Stmt> stmts;
  int num_temps = 0;
  std::size_t global = 1;      ///< 1D launch global size
  std::size_t local = 1;       ///< 1D launch local size
  long long work_items = 1;    ///< active items; the body guards id < this
  Plan plan;

  [[nodiscard]] bool has_barrier() const noexcept;
  [[nodiscard]] bool has_local() const noexcept;
  [[nodiscard]] bool operator==(const Case&) const = default;
};

// --- shared evaluation core (the single compiled semantics) -----------------

/// Remaps non-finite F32 bit patterns to a finite value in [1, 2) derived
/// from the mantissa bits; identity for finite values and for I32.
[[nodiscard]] std::uint32_t sanitize_bits(Ty type, std::uint32_t bits);

/// acc = op(acc, v) in the bit domain of `type` (uint32 wrap for I32;
/// result sanitized for F32).
[[nodiscard]] std::uint32_t apply_op(Ty type, Op op, std::uint32_t acc,
                                     std::uint32_t v);

/// Executes one non-barrier statement for one workitem. `mem[a]` is array
/// a's storage base (the buffer for globals, the group's block for locals);
/// `temps` is the item's register file (>= kMaxTemps slots). Global
/// subscripts use `gid`, local subscripts `lid`. The ONLY definition of
/// statement semantics: reference interpreter and kernel-side interpreter
/// both call this compiled function, so no backend pair can disagree on
/// FP contraction or evaluation order.
void eval_stmt(const Case& c, const Stmt& s, long long gid, long long lid,
               std::uint32_t* const* mem, std::uint32_t* temps);

// --- structure helpers ------------------------------------------------------

/// [name] of an Op for printing/parsing.
[[nodiscard]] const char* to_string(Op op);
[[nodiscard]] std::optional<Op> parse_op(const std::string& name);

/// Checks every invariant the determinism contract needs (shape bounds,
/// write injectivity, RMW-only reads of writable globals, barrier/local
/// structure, in-bounds subscripts for all active items). Returns an error
/// description, or nullopt when the case is well-formed. Gate for replayed
/// files and a self-check on the generator.
[[nodiscard]] std::optional<std::string> validate(const Case& c);

/// Lowers the case to a veclegal::KernelIr over the active-item space
/// [0, work_items). Local-array accesses are dropped (their index space is
/// the local id, which the IR cannot express); statements left with no
/// effect are skipped. Exact for cases without local arrays.
[[nodiscard]] veclegal::KernelIr lower_to_ir(const Case& c);

/// Human-readable dump (geometry, plan, arrays, statement pseudo-source).
[[nodiscard]] std::string describe(const Case& c);

}  // namespace mcl::check
