#include "check/differ.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <sstream>
#include <vector>

#include "check/interp.hpp"
#include "core/error.hpp"
#include "core/rng.hpp"
#include "ocl/queue.hpp"
#include "san/static_analysis.hpp"
#include "veclegal/analysis.hpp"

namespace mcl::check {

namespace {

/// Mutable permutation consulted by the serial device's dispatch_order hook.
/// Falls back to reversed order when the stored permutation does not match
/// the launch's group count (e.g. a golden test reusing the device).
struct DispatchPerm {
  std::vector<std::size_t> perm;
  std::size_t order(std::size_t k, std::size_t total) const {
    return perm.size() == total ? perm[k] : total - 1 - k;
  }
};

/// Devices are expensive to build (thread pools), so one set serves every
/// case of the process. run_case is not thread-safe — one fuzzing driver.
struct Session {
  DispatchPerm perm;
  ocl::CpuDevice pooled;
  ocl::CpuDevice checked;
  ocl::CpuDevice serial;
  ocl::SimGpuDevice gpusim;

  Session()
      : pooled(ocl::CpuDeviceConfig{}),
        checked(make_checked()),
        serial(make_serial(&perm)),
        gpusim() {}

  static ocl::CpuDeviceConfig make_checked() {
    ocl::CpuDeviceConfig cfg;
    cfg.executor = ocl::ExecutorKind::Checked;
    return cfg;
  }
  static ocl::CpuDeviceConfig make_serial(DispatchPerm* perm) {
    ocl::CpuDeviceConfig cfg;
    cfg.threads = 1;  // the hook bypasses the pool; keep it tiny anyway
    cfg.dispatch_order = [perm](std::size_t k, std::size_t total) {
      return perm->order(k, total);
    };
    return cfg;
  }
};

Session& session() {
  static Session s;
  return s;
}

std::vector<ocl::Buffer> make_buffers(ocl::Context& ctx, const Case& c) {
  std::vector<ocl::Buffer> buffers;
  buffers.reserve(c.arrays.size());
  for (const Array& a : c.arrays) {
    // Local arrays get a 4-byte placeholder so indices line up; it is never
    // bound (bind_args issues set_arg_local for those slots).
    const std::size_t bytes =
        a.local ? sizeof(std::uint32_t)
                : static_cast<std::size_t>(a.extent) * sizeof(std::uint32_t);
    buffers.push_back(ctx.create_buffer(
        a.read_only ? ocl::MemFlags::ReadOnly : ocl::MemFlags::ReadWrite,
        bytes));
  }
  return buffers;
}

void upload(ocl::CommandQueue& q, const Case& c, const Memory& init,
            std::vector<ocl::Buffer>& buffers, bool map_inputs) {
  for (std::size_t i = 0; i < c.arrays.size(); ++i) {
    if (c.arrays[i].local) continue;
    const std::size_t bytes = init.arrays[i].size() * sizeof(std::uint32_t);
    if (map_inputs) {
      void* p = q.enqueue_map_buffer(buffers[i], ocl::MapFlags::Write, 0,
                                     bytes);
      std::memcpy(p, init.arrays[i].data(), bytes);
      q.enqueue_unmap(buffers[i], p);
    } else {
      q.enqueue_write_buffer(buffers[i], 0, bytes, init.arrays[i].data());
    }
  }
}

Memory download(ocl::CommandQueue& q, const Case& c,
                std::vector<ocl::Buffer>& buffers, bool map_outputs) {
  Memory out;
  out.arrays.resize(c.arrays.size());
  for (std::size_t i = 0; i < c.arrays.size(); ++i) {
    if (c.arrays[i].local) continue;
    out.arrays[i].resize(static_cast<std::size_t>(c.arrays[i].extent));
    const std::size_t bytes = out.arrays[i].size() * sizeof(std::uint32_t);
    if (map_outputs) {
      void* p =
          q.enqueue_map_buffer(buffers[i], ocl::MapFlags::Read, 0, bytes);
      std::memcpy(out.arrays[i].data(), p, bytes);
      q.enqueue_unmap(buffers[i], p);
    } else {
      q.enqueue_read_buffer(buffers[i], 0, bytes, out.arrays[i].data());
    }
  }
  return out;
}

/// Blocking in-order run on `device`: plan-controlled transfers, one
/// NDRange, full readback (inputs included, to catch stray writes).
Memory run_blocking(ocl::Device& device, const Case& c, const Memory& init,
                    bool with_simd, std::size_t local_override,
                    const Plan& plan) {
  ocl::Context ctx(device);
  std::vector<ocl::Buffer> buffers = make_buffers(ctx, c);
  ocl::CommandQueue q(ctx);
  upload(q, c, init, buffers, plan.map_inputs);

  const ocl::KernelDef def = make_kernel_def(c, with_simd);
  ocl::Kernel kernel(def);
  std::vector<ocl::Buffer*> ptrs;
  for (ocl::Buffer& b : buffers) ptrs.push_back(&b);
  bind_args(kernel, c, ptrs);
  const std::size_t local = local_override != 0 ? local_override : c.local;
  (void)q.enqueue_ndrange(kernel, ocl::NDRange(c.global),
                          ocl::NDRange(local));
  return download(q, c, buffers, plan.map_outputs);
}

/// Split NDRange across two OutOfOrder queues with async transfers and a
/// randomized wait-list DAG (uploads -> both slices -> readbacks, plus
/// random extra edges, some crossing queues).
Memory run_split_async(ocl::Device& device, const Case& c, const Memory& init,
                       core::Rng& rng) {
  ocl::Context ctx(device);
  std::vector<ocl::Buffer> buffers = make_buffers(ctx, c);
  ocl::CommandQueue q1(ctx, ocl::QueueProperties::OutOfOrder);
  ocl::CommandQueue q2(ctx, ocl::QueueProperties::OutOfOrder);
  const auto pick_queue = [&]() -> ocl::CommandQueue& {
    return rng.next_below(2) == 0 ? q1 : q2;
  };

  std::vector<ocl::AsyncEventPtr> uploads;
  for (std::size_t i = 0; i < c.arrays.size(); ++i) {
    if (c.arrays[i].local) continue;
    const std::size_t bytes = init.arrays[i].size() * sizeof(std::uint32_t);
    uploads.push_back(pick_queue().enqueue_write_buffer_async(
        buffers[i], 0, bytes, init.arrays[i].data()));
  }

  const ocl::KernelDef def = make_kernel_def(c, /*with_simd=*/false);
  ocl::Kernel kernel(def);
  std::vector<ocl::Buffer*> ptrs;
  for (ocl::Buffer& b : buffers) ptrs.push_back(&b);
  bind_args(kernel, c, ptrs);

  // Cut at a random group boundary (>= 1 group per side; caller guarantees
  // at least two groups).
  const std::size_t groups = (c.global + c.local - 1) / c.local;
  const std::size_t cut = c.local * (1 + rng.next_below(groups - 1));

  ocl::AsyncEventPtr a = q1.enqueue_ndrange_async(
      kernel, ocl::NDRange(cut), ocl::NDRange(c.local), uploads);
  std::vector<ocl::AsyncEventPtr> b_waits = uploads;
  if (rng.next_below(2) == 0) b_waits.push_back(a);  // cross-queue edge
  ocl::AsyncEventPtr b = q2.enqueue_ndrange_async(
      kernel, ocl::NDRange(c.global - cut), ocl::NDRange(c.local),
      std::move(b_waits), ocl::NDRange(cut));
  std::vector<ocl::AsyncEventPtr> slice_events{a, b};
  if (rng.next_below(2) == 0) {
    slice_events.push_back(pick_queue().enqueue_marker_async(slice_events));
  }

  Memory out;
  out.arrays.resize(c.arrays.size());
  std::vector<ocl::AsyncEventPtr> reads;
  for (std::size_t i = 0; i < c.arrays.size(); ++i) {
    if (c.arrays[i].local) continue;
    out.arrays[i].resize(static_cast<std::size_t>(c.arrays[i].extent));
    const std::size_t bytes = out.arrays[i].size() * sizeof(std::uint32_t);
    reads.push_back(pick_queue().enqueue_read_buffer_async(
        buffers[i], 0, bytes, out.arrays[i].data(), slice_events));
  }
  for (const auto& ev : reads) ev->wait();
  q1.finish();
  q2.finish();
  return out;
}

/// Compares `got` against `expected`, honoring the F32 ULP tolerance.
std::optional<Mismatch> compare(const Case& c, const std::string& backend,
                                const Memory& expected, const Memory& got,
                                std::uint32_t ulp_tol) {
  for (std::size_t i = 0; i < c.arrays.size(); ++i) {
    if (c.arrays[i].local) continue;
    for (std::size_t j = 0; j < expected.arrays[i].size(); ++j) {
      const std::uint32_t e = expected.arrays[i][j];
      const std::uint32_t g = got.arrays[i][j];
      if (e == g) continue;
      if (c.type == Ty::F32 && ulp_tol > 0 && ulp_distance(e, g) <= ulp_tol) {
        continue;
      }
      Mismatch m;
      m.backend = backend;
      m.array = static_cast<int>(i);
      m.index = static_cast<long long>(j);
      m.expected = e;
      m.actual = g;
      return m;
    }
  }
  return std::nullopt;
}

/// Runs one backend callable, converting thrown runtime errors into a
/// Mismatch (a validated case must not make any backend throw).
template <typename Fn>
std::optional<Mismatch> run_backend(const Case& c, const std::string& name,
                                    const Memory& expected,
                                    std::uint32_t ulp_tol, Fn&& fn) {
  try {
    const Memory got = fn();
    return compare(c, name, expected, got, ulp_tol);
  } catch (const core::Error& e) {
    Mismatch m;
    m.backend = name;
    m.detail = e.what();
    return m;
  }
}

}  // namespace

std::string Mismatch::to_string() const {
  std::ostringstream out;
  out << "backend '" << backend << "': ";
  if (!detail.empty()) {
    out << detail;
  } else {
    out << "A" << array << "[" << index << "] expected 0x" << std::hex
        << expected << " got 0x" << actual << std::dec;
  }
  return out.str();
}

std::uint64_t ulp_distance(std::uint32_t a, std::uint32_t b) {
  const auto key = [](std::uint32_t u) -> std::int64_t {
    // Monotone mapping: negative floats below positive, -0 next to +0.
    return (u & 0x80000000u) != 0
               ? -static_cast<std::int64_t>(u & 0x7fffffffu)
               : static_cast<std::int64_t>(u & 0x7fffffffu);
  };
  const std::int64_t d = key(a) - key(b);
  return static_cast<std::uint64_t>(d < 0 ? -d : d);
}

std::optional<Mismatch> run_case(const Case& c, const DiffOptions& opt) {
  if (auto why = validate(c)) {
    throw core::Error(core::Status::InternalError, "invalid case: " + *why);
  }
  // Self-check: the lowered IR must be certifiably race/bounds-free, or the
  // generator (not a backend) is broken and every comparison is suspect.
  const veclegal::KernelIr ir = lower_to_ir(c);
  const san::Report report = san::analyze_kernel("mclcheck.case", ir);
  if (!report.clean()) {
    throw core::Error(core::Status::InternalError,
                      "generated case failed static analysis:\n" +
                          report.to_string());
  }

  const Memory expected = reference_result(c);
  const Memory init = initial_memory(c);
  Session& s = session();
  core::Rng rng(opt.transform_seed ^ (c.seed * 0x9e3779b97f4a7c15ULL));
  const bool local_free = !c.has_barrier() && !c.has_local();

  if (auto m = run_backend(c, "pooled", expected, opt.ulp_tol, [&] {
        return run_blocking(s.pooled, c, init, false, 0, c.plan);
      })) {
    return m;
  }

  if (local_free &&
      veclegal::analyze(ir.body, veclegal::Model::Spmd).vectorizable) {
    if (auto m = run_backend(c, "simd", expected, opt.ulp_tol, [&] {
          return run_blocking(s.pooled, c, init, true, 0, c.plan);
        })) {
      return m;
    }
  }

  if (auto m = run_backend(c, "checked", expected, opt.ulp_tol, [&] {
        return run_blocking(s.checked, c, init, false, 0, c.plan);
      })) {
    return m;
  }

  if (opt.run_gpusim) {
    if (auto m = run_backend(c, "gpusim", expected, opt.ulp_tol, [&] {
          return run_blocking(s.gpusim, c, init, false, 0, c.plan);
        })) {
      return m;
    }
  }

  {
    const std::size_t groups = (c.global + c.local - 1) / c.local;
    s.perm.perm.resize(groups);
    std::iota(s.perm.perm.begin(), s.perm.perm.end(), std::size_t{0});
    for (std::size_t i = groups; i > 1; --i) {  // Fisher-Yates
      std::swap(s.perm.perm[i - 1], s.perm.perm[rng.next_below(i)]);
    }
    auto m = run_backend(c, "dispatch-order", expected, opt.ulp_tol, [&] {
      return run_blocking(s.serial, c, init, false, 0, c.plan);
    });
    s.perm.perm.clear();
    if (m) return m;
  }

  if (local_free) {
    // Re-chunk with a random *divisor* of the global size, so the launch
    // still satisfies the uniform-workgroup rule.
    std::vector<std::size_t> divisors;
    for (std::size_t d = 1; d <= c.global && d <= 64; ++d) {
      if (c.global % d == 0) divisors.push_back(d);
    }
    const std::size_t relocal = divisors[rng.next_below(divisors.size())];
    if (auto m = run_backend(c, "rechunk", expected, opt.ulp_tol, [&] {
          return run_blocking(s.pooled, c, init, false, relocal, c.plan);
        })) {
      return m;
    }
    if (c.global / c.local >= 2) {
      if (auto m = run_backend(c, "split-oo", expected, opt.ulp_tol, [&] {
            return run_split_async(s.pooled, c, init, rng);
          })) {
        return m;
      }
    }
  }

  const Plan flipped{!c.plan.map_inputs, !c.plan.map_outputs};
  if (auto m = run_backend(c, "plan-flip", expected, opt.ulp_tol, [&] {
        return run_blocking(s.pooled, c, init, false, 0, flipped);
      })) {
    return m;
  }

  return std::nullopt;
}

}  // namespace mcl::check
