// mclcheck differential driver: one Case through every backend and
// metamorphic transform, compared element-wise against the reference oracle.
//
// Backends (gated on case shape where noted):
//   reference       scalar interpreter — the oracle, not a backend
//   pooled          CpuDevice, Auto executor (Loop, or Fiber for barriers)
//   simd            Simd executor via the lane-group form (barrier-free,
//                   local-free cases the veclegal SPMD model approves)
//   checked         mclsan Checked executor (serial, instrumented; a
//                   sanitizer finding on a validated case is a failure)
//   gpusim          SimGpuDevice functional execution
//   dispatch-order  serial execution in a seeded random workgroup
//                   permutation (CpuDeviceConfig::dispatch_order hook)
//   rechunk         pooled, with a different workgroup size (local-free)
//   split-oo        NDRange split at a group boundary into two offset
//                   launches on two OutOfOrder queues, async transfers,
//                   random wait-list DAG with cross-queue edges (local-free)
//   plan-flip       pooled, with the map-vs-copy host plan inverted
//
// Integer cases must agree bit-exactly; float cases within ulp_tol ULPs
// (default 0 — exact, which holds by construction since every backend runs
// the same compiled eval_stmt()).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "check/case.hpp"
#include "check/reference.hpp"

namespace mcl::check {

/// First divergence found, or a backend error. `index < 0` with a nonempty
/// `detail` means the backend threw instead of producing wrong data.
struct Mismatch {
  std::string backend;
  int array = -1;
  long long index = -1;
  std::uint32_t expected = 0;
  std::uint32_t actual = 0;
  std::string detail;

  [[nodiscard]] std::string to_string() const;
};

struct DiffOptions {
  std::uint32_t ulp_tol = 0;           ///< F32 tolerance (0 = bit-exact)
  std::uint64_t transform_seed = 0x7ea5;  ///< dispatch perm / DAG shapes
  bool run_gpusim = true;
};

/// |a - b| in ULPs over the monotone integer mapping of IEEE-754 floats.
[[nodiscard]] std::uint64_t ulp_distance(std::uint32_t a, std::uint32_t b);

/// Runs the case through every applicable backend. Returns the first
/// mismatch, or nullopt when all agree with the reference. Throws
/// core::Error(InternalError) if the case fails validate() or the mclsan
/// static analyzer flags the lowered IR — both mean the case itself (not a
/// backend) is broken.
[[nodiscard]] std::optional<Mismatch> run_case(const Case& c,
                                               const DiffOptions& opt = {});

}  // namespace mcl::check
