#include "check/generator.hpp"

#include <algorithm>
#include <bit>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace mcl::check {

namespace {

/// Records the largest index each array needs so extents can be assigned
/// after all accesses exist.
struct ExtentTracker {
  std::vector<long long> need;

  void note(const Access& a, long long n) {
    const long long at0 = a.offset;
    const long long atN = a.scale * (n - 1) + a.offset;
    need[a.array] = std::max({need[a.array], at0 + 1, atN + 1});
  }
};

Op pick_op(core::Rng& rng, Ty type) {
  // F32 sticks to arithmetic/min/max; I32 adds the bitwise ops.
  const int n = type == Ty::F32 ? 5 : 8;
  return static_cast<Op>(rng.next_below(static_cast<std::uint64_t>(n)));
}

std::uint32_t pick_const(core::Rng& rng, Ty type) {
  if (type == Ty::I32) return static_cast<std::uint32_t>(rng.next_u64());
  return sanitize_bits(
      Ty::F32, std::bit_cast<std::uint32_t>(rng.next_float(-2.0f, 2.0f)));
}

/// Read access into a read-only global array: identity, shifted, reversed,
/// broadcast, or strided gather — all non-negative over id in [0, n).
Access pick_input_access(core::Rng& rng, int array, long long n) {
  switch (rng.next_below(5)) {
    case 0: return {array, 1, 0};
    case 1: return {array, 1, static_cast<long long>(rng.next_below(5))};
    case 2:
      return {array, -1, n - 1 + static_cast<long long>(rng.next_below(3))};
    case 3: return {array, 0, static_cast<long long>(rng.next_below(5))};
    default: return {array, 2, static_cast<long long>(rng.next_below(3))};
  }
}

/// Write access for a writable global array: item-injective (|scale| == 1).
Access pick_write_access(core::Rng& rng, int array, long long n) {
  switch (rng.next_below(3)) {
    case 0: return {array, 1, 0};
    case 1: return {array, 1, static_cast<long long>(rng.next_below(3))};
    default: return {array, -1, n - 1};
  }
}

/// Read access into a local array, affine in lid over [0, local).
Access pick_local_access(core::Rng& rng, int array, long long local) {
  switch (rng.next_below(3)) {
    case 0: return {array, 1, 0};
    case 1: return {array, -1, local - 1};
    default:
      return {array, 0,
              static_cast<long long>(rng.next_below(
                  static_cast<std::uint64_t>(local)))};
  }
}

}  // namespace

std::uint64_t case_seed(std::uint64_t run_seed, std::uint64_t i) {
  std::uint64_t state = run_seed + 0x9e3779b97f4a7c15ULL * (i + 1);
  return core::splitmix64(state);
}

Case generate_case(std::uint64_t seed) {
  core::Rng rng(seed ^ 0x6d636c6368656b21ULL);
  Case c;
  c.seed = seed;
  c.type = rng.next_below(10) < 7 ? Ty::F32 : Ty::I32;

  const std::uint64_t shape = rng.next_below(10);
  const bool barrier_case = shape >= 8;
  const bool guarded = !barrier_case && shape >= 6;

  if (barrier_case) {
    constexpr std::size_t kLocals[] = {2, 4, 8, 16};
    c.local = kLocals[rng.next_below(4)];
    c.global = c.local * (1 + rng.next_below(8));
    c.work_items = static_cast<long long>(c.global);
  } else {
    // OpenCL 1.x rule: the local size must divide the global size.
    c.local = 1 + rng.next_below(32);
    c.global = c.local * (1 + rng.next_below(std::max<std::uint64_t>(
                                  1, 192 / c.local)));
    c.work_items =
        guarded ? static_cast<long long>(1 + rng.next_below(c.global))
                : static_cast<long long>(c.global);
  }
  const long long n = c.work_items;

  const int n_inputs = static_cast<int>(1 + rng.next_below(3));
  const int n_outputs = static_cast<int>(1 + rng.next_below(2));
  const int n_locals = barrier_case ? static_cast<int>(1 + rng.next_below(2)) : 0;
  for (int i = 0; i < n_inputs; ++i) {
    c.arrays.push_back(Array{1, /*read_only=*/true, false, rng.next_u64()});
  }
  for (int i = 0; i < n_outputs; ++i) {
    c.arrays.push_back(Array{1, false, false, rng.next_u64()});
  }
  for (int i = 0; i < n_locals; ++i) {
    c.arrays.push_back(Array{static_cast<long long>(c.local), false,
                             /*local=*/true, rng.next_u64()});
  }
  const auto input_id = [&](std::uint64_t i) { return static_cast<int>(i); };
  const auto output_id = [&](int i) { return n_inputs + i; };
  const auto local_id = [&](int i) { return n_inputs + n_outputs + i; };

  ExtentTracker need{std::vector<long long>(c.arrays.size(), 0)};
  c.num_temps = static_cast<int>(rng.next_below(4));  // 0..3 scalar temps

  // Operand list for one statement: read-only gathers and defined temps.
  const auto add_operands = [&](Stmt& s, int defined_temps) {
    const int count = static_cast<int>(1 + rng.next_below(2));
    for (int r = 0; r < count; ++r) {
      if (defined_temps > 0 && rng.next_below(3) == 0) {
        s.temp_reads.push_back(
            static_cast<int>(rng.next_below(defined_temps)));
      } else {
        const Access a = pick_input_access(
            rng, input_id(rng.next_below(n_inputs)), n);
        need.note(a, n);
        s.reads.push_back(a);
      }
    }
  };

  // ILP chain: temp definitions feeding later statements.
  int defined = 0;
  for (; defined < c.num_temps; ++defined) {
    Stmt s;
    s.dst_temp = defined;
    s.op = pick_op(rng, c.type);
    s.init_bits = pick_const(rng, c.type);
    add_operands(s, defined);
    c.stmts.push_back(std::move(s));
  }

  if (barrier_case) {
    // Epoch 0: every local array filled at local[lid] from global inputs.
    for (int l = 0; l < n_locals; ++l) {
      Stmt s;
      s.dst_array = local_id(l);
      s.dst = Access{s.dst_array, 1, 0};
      s.op = pick_op(rng, c.type);
      s.init_bits = pick_const(rng, c.type);
      add_operands(s, defined);
      c.stmts.push_back(std::move(s));
    }
    Stmt bar;
    bar.barrier = true;
    c.stmts.push_back(std::move(bar));
  }

  // Output statements: one write per writable global array.
  for (int w = 0; w < n_outputs; ++w) {
    Stmt s;
    s.dst_array = output_id(w);
    s.dst = pick_write_access(rng, s.dst_array, n);
    need.note(s.dst, n);
    s.op = pick_op(rng, c.type);
    s.init_bits = pick_const(rng, c.type);
    if (barrier_case) {
      // Epoch 1 reads the transposed/broadcast local data — the pattern the
      // barrier exists for.
      const int count = static_cast<int>(1 + rng.next_below(2));
      for (int r = 0; r < count; ++r) {
        s.reads.push_back(pick_local_access(
            rng, local_id(static_cast<int>(rng.next_below(n_locals))),
            static_cast<long long>(c.local)));
      }
      if (rng.next_below(2) == 0) add_operands(s, defined);
    } else {
      add_operands(s, defined);
    }
    if (rng.next_below(10) < 3) {
      // Read-modify-write of the output at its own subscript (distance-0,
      // the Fig 11 FMUL shape).
      s.reads.push_back(s.dst);
    }
    c.stmts.push_back(std::move(s));
  }

  // Extents: what the accesses need plus a little slack, so boundary cases
  // (extent == max index + 1) and slack cases both occur.
  for (std::size_t i = 0; i < c.arrays.size(); ++i) {
    if (c.arrays[i].local) continue;
    c.arrays[i].extent =
        std::max<long long>(1, need.need[i]) +
        static_cast<long long>(rng.next_below(3));
  }

  c.plan.map_inputs = rng.next_below(2) == 0;
  c.plan.map_outputs = rng.next_below(2) == 0;

  if (auto why = validate(c)) {
    throw core::Error(core::Status::InternalError,
                      "generator produced an invalid case (seed " +
                          std::to_string(seed) + "): " + *why);
  }
  return c;
}

}  // namespace mcl::check
