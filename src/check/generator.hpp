// mclcheck case generator: seeded, deterministic random programs over the
// Case model (see case.hpp for the determinism contract it constructs by).
//
// Shapes drawn (weights in generator.cpp):
//  - plain:    straight-line arithmetic/gather chains over global arrays,
//              optional read-modify-write of an output, scalar temp ILP;
//  - guarded:  same, but launched over a padded NDRange with a boundary
//              guard (gid < work_items) — the tail-handling shape;
//  - barrier:  local-memory kernels structured as write-local[lid] /
//              barrier / read-phase epochs (the loop-fission shape), with
//              uniform workgroups.
#pragma once

#include <cstdint>

#include "check/case.hpp"

namespace mcl::check {

/// Deterministic: equal seeds yield equal cases, on every platform. The
/// result always satisfies validate() — the differential driver treats a
/// violation as an internal error of the generator itself.
[[nodiscard]] Case generate_case(std::uint64_t seed);

/// Seed for case index i of a run seeded with `run_seed` (splitmix64 mix, so
/// neighboring indices share no structure).
[[nodiscard]] std::uint64_t case_seed(std::uint64_t run_seed, std::uint64_t i);

}  // namespace mcl::check
