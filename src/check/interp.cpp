#include "check/interp.hpp"

#include "core/error.hpp"

namespace mcl::check {

namespace {

/// Splits into barrier epochs on the fly: executes stmts [begin, end) where
/// end is the next barrier (or the end of the program).
void run_item(const Case& c, long long gid, long long lid,
              std::uint32_t* const* mem, std::uint32_t* temps,
              const ocl::WorkItemCtx& ctx) {
  const bool active = gid < c.work_items;
  for (const Stmt& s : c.stmts) {
    if (s.barrier) {
      // Every item of the group reaches the barrier (validate() forbids
      // guarded tails in barrier cases, so `active` is uniform).
      ctx.barrier();
      continue;
    }
    if (active) eval_stmt(c, s, gid, lid, mem, temps);
  }
}

void fill_mem_table(const Case& c, const ocl::KernelArgs& args,
                    const ocl::WorkItemCtx* ctx,
                    std::uint32_t** mem) {
  for (std::size_t i = 0; i < c.arrays.size(); ++i) {
    const std::size_t slot = i + 1;
    mem[i] = c.arrays[i].local ? ctx->local_mem<std::uint32_t>(slot)
                               : args.buffer<std::uint32_t>(slot);
  }
}

void interp_scalar(const ocl::KernelArgs& args, const ocl::WorkItemCtx& ctx) {
  const Case* c = args.scalar<const Case*>(0);
  std::uint32_t* mem[kMaxArrays] = {};
  fill_mem_table(*c, args, &ctx, mem);
  std::uint32_t temps[kMaxTemps] = {};
  run_item(*c, static_cast<long long>(ctx.global_id(0)),
           static_cast<long long>(ctx.local_id(0)), mem, temps, ctx);
}

void interp_simd(const ocl::KernelArgs& args, const ocl::SimdItemCtx& ctx) {
  // Lane-group form for barrier-free, local-free cases only: each lane is
  // interpreted with the shared eval_stmt, so the Simd executor's batching
  // and remainder handling are what this form actually tests.
  const Case* c = args.scalar<const Case*>(0);
  std::uint32_t* mem[kMaxArrays] = {};
  for (std::size_t i = 0; i < c->arrays.size(); ++i) {
    mem[i] = args.buffer<std::uint32_t>(i + 1);
  }
  const std::size_t width = static_cast<std::size_t>(ctx.width());
  for (std::size_t g = 0; g < ctx.lane_groups(); ++g) {
    for (std::size_t lane = 0; lane < width; ++lane) {
      const long long gid =
          static_cast<long long>(ctx.global_base() + g * width + lane);
      if (gid >= c->work_items) continue;
      std::uint32_t temps[kMaxTemps] = {};
      for (const Stmt& s : c->stmts) {
        eval_stmt(*c, s, gid, /*lid=*/0, mem, temps);
      }
    }
  }
}

}  // namespace

ocl::KernelDef make_kernel_def(const Case& c, bool with_simd) {
  ocl::KernelDef def;
  def.name = "mclcheck.case";
  def.scalar = &interp_scalar;
  def.needs_barrier = c.has_barrier();
  if (with_simd) {
    core::check(!c.has_barrier() && !c.has_local(),
                core::Status::InvalidOperation,
                "simd form requires a barrier-free, local-free case");
    def.simd = &interp_simd;
  }
  return def;
}

void bind_args(ocl::Kernel& kernel, const Case& c,
               const std::vector<ocl::Buffer*>& buffers) {
  kernel.set_arg(0, static_cast<const Case*>(&c));
  for (std::size_t i = 0; i < c.arrays.size(); ++i) {
    if (c.arrays[i].local) {
      kernel.set_arg_local(
          i + 1, static_cast<std::size_t>(c.arrays[i].extent) *
                     sizeof(std::uint32_t));
    } else {
      kernel.set_arg(i + 1, *buffers[i]);
    }
  }
}

}  // namespace mcl::check
