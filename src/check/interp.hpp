// mclcheck kernel-side interpreter: runs a Case as a real MiniCL kernel.
//
// The KernelDef's function pointers are ordinary registered-kernel shapes
// (scalar + optional simd form); the Case* travels through KernelArgs scalar
// slot 0 and the arrays bind at slots 1 + index (buffers for globals,
// set_arg_local requests for locals). Both forms call the same compiled
// eval_stmt() the reference oracle uses, so a result difference can only
// come from the runtime underneath — executors, pool, event graph, transfer
// plumbing — never from duplicated arithmetic.
#pragma once

#include "check/case.hpp"
#include "ocl/kernel.hpp"

namespace mcl::check {

/// Builds the kernel definition for a case. `with_simd` attaches the SIMD
/// lane-group form (caller gates it on the veclegal SPMD verdict and on the
/// case having no local memory); needs_barrier is set from the case.
[[nodiscard]] ocl::KernelDef make_kernel_def(const Case& c, bool with_simd);

/// Binds `c` (slot 0) and its array storage (slots 1 + i) onto `kernel`.
/// `buffers[i]` must be the buffer for global array i (ignored for locals).
/// The Case must outlive every launch of the kernel.
void bind_args(ocl::Kernel& kernel, const Case& c,
               const std::vector<ocl::Buffer*>& buffers);

}  // namespace mcl::check
