#include "check/reference.hpp"

#include <algorithm>
#include <array>
#include <bit>

#include "core/rng.hpp"

namespace mcl::check {

Memory initial_memory(const Case& c) {
  Memory mem;
  mem.arrays.resize(c.arrays.size());
  for (std::size_t i = 0; i < c.arrays.size(); ++i) {
    const Array& a = c.arrays[i];
    if (a.local) continue;  // per-group scratch: no host-observable storage
    core::Rng rng(a.init_seed);
    mem.arrays[i].resize(static_cast<std::size_t>(a.extent));
    for (std::uint32_t& v : mem.arrays[i]) {
      if (c.type == Ty::F32) {
        v = sanitize_bits(
            Ty::F32, std::bit_cast<std::uint32_t>(rng.next_float(-2.0f, 2.0f)));
      } else {
        v = static_cast<std::uint32_t>(rng.next_u64());
      }
    }
  }
  return mem;
}

void run_reference(const Case& c, Memory& mem) {
  // Barrier statements split the body into epochs; within one group every
  // item finishes epoch e before any item starts e+1 — exactly the barrier
  // contract, realized by the serial loop order.
  std::vector<std::vector<const Stmt*>> epochs(1);
  for (const Stmt& s : c.stmts) {
    if (s.barrier) {
      epochs.emplace_back();
    } else {
      epochs.back().push_back(&s);
    }
  }

  const std::size_t groups = (c.global + c.local - 1) / c.local;
  std::vector<std::vector<std::uint32_t>> local_store(c.arrays.size());
  std::vector<std::uint32_t*> ptrs(c.arrays.size(), nullptr);
  for (std::size_t g = 0; g < groups; ++g) {
    const long long base = static_cast<long long>(g * c.local);
    const long long items = std::min<long long>(
        static_cast<long long>(c.local),
        static_cast<long long>(c.global) - base);
    for (std::size_t i = 0; i < c.arrays.size(); ++i) {
      if (c.arrays[i].local) {
        local_store[i].assign(static_cast<std::size_t>(c.arrays[i].extent),
                              0xABABABABu);
        ptrs[i] = local_store[i].data();
      } else {
        ptrs[i] = mem.arrays[i].data();
      }
    }
    // Temps persist across epochs within one item (they live on the item's
    // stack/fiber in the real executors), so the register files are per
    // group-item, reset per group.
    std::vector<std::array<std::uint32_t, kMaxTemps>> temps(
        static_cast<std::size_t>(items));
    for (auto& t : temps) t.fill(0);
    for (const auto& epoch : epochs) {
      for (long long it = 0; it < items; ++it) {
        const long long gid = base + it;
        if (gid >= c.work_items) continue;
        for (const Stmt* s : epoch) {
          eval_stmt(c, *s, gid, it, ptrs.data(), temps[it].data());
        }
      }
    }
  }
}

Memory reference_result(const Case& c) {
  Memory mem = initial_memory(c);
  run_reference(c, mem);
  return mem;
}

}  // namespace mcl::check
