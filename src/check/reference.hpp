// mclcheck reference oracle: scalar interpretation of a Case with no thread
// pool, no SIMD, no reordering — workgroups in linear order, workitems in
// linear order within each barrier epoch, on the calling thread.
#pragma once

#include <cstdint>
#include <vector>

#include "check/case.hpp"

namespace mcl::check {

/// Contents of every global array, as raw 4-byte bit patterns. arrays[i] has
/// the case's extent[i] elements; local arrays get an empty placeholder slot
/// (they are per-group scratch, not memory a host could observe).
struct Memory {
  std::vector<std::vector<std::uint32_t>> arrays;

  [[nodiscard]] bool operator==(const Memory&) const = default;
};

/// The deterministic initial contents every backend starts from: read-only
/// arrays filled from their init_seed (finite floats for F32 cases),
/// writable global arrays filled from theirs (the kernel may leave elements
/// untouched, so the comparison covers the fill too).
[[nodiscard]] Memory initial_memory(const Case& c);

/// Executes the case over `mem` in place. Local arrays are simulated with a
/// fresh 0xABABABAB-filled block per workgroup (the sentinel is never read
/// when validate() holds: every local read is preceded by a full-group
/// local[lid] write in an earlier epoch).
void run_reference(const Case& c, Memory& mem);

/// initial_memory + run_reference: the expected final state.
[[nodiscard]] Memory reference_result(const Case& c);

}  // namespace mcl::check
