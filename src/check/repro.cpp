#include "check/repro.hpp"

#include <sstream>

namespace mcl::check {

namespace {

std::string access_token(const Access& a) {
  std::ostringstream out;
  out << a.array << ":" << a.scale << ":" << a.offset;
  return out.str();
}

bool parse_access(const std::string& token, Access& out) {
  std::istringstream in(token);
  char c1 = 0;
  char c2 = 0;
  if (!(in >> out.array >> c1 >> out.scale >> c2 >> out.offset)) return false;
  return c1 == ':' && c2 == ':' && in.eof();
}

}  // namespace

std::string serialize_repro(const Case& c, bool minimized,
                            const std::string& note) {
  std::ostringstream out;
  out << "mclcheck-repro v1\n";
  if (!note.empty()) {
    std::istringstream lines(note);
    std::string line;
    while (std::getline(lines, line)) out << "# " << line << "\n";
  }
  out << "seed " << c.seed << "\n";
  out << "minimized " << (minimized ? 1 : 0) << "\n";
  out << "type " << (c.type == Ty::F32 ? "f32" : "i32") << "\n";
  out << "geometry " << c.global << " " << c.local << " " << c.work_items
      << "\n";
  out << "temps " << c.num_temps << "\n";
  out << "plan " << (c.plan.map_inputs ? "map" : "write") << " "
      << (c.plan.map_outputs ? "map" : "read") << "\n";
  for (std::size_t i = 0; i < c.arrays.size(); ++i) {
    const Array& a = c.arrays[i];
    out << "array " << i << " " << a.extent << " "
        << (a.read_only ? "ro" : "rw") << " " << (a.local ? "local" : "global")
        << " " << a.init_seed << "\n";
  }
  for (const Stmt& s : c.stmts) {
    if (s.barrier) {
      out << "stmt barrier\n";
      continue;
    }
    out << "stmt ";
    if (s.dst_temp >= 0) {
      out << "temp " << s.dst_temp;
    } else {
      out << "array " << s.dst_array << " " << s.dst.scale << " "
          << s.dst.offset;
    }
    out << " op " << to_string(s.op) << " init 0x" << std::hex << s.init_bits
        << std::dec << " reads";
    for (const Access& r : s.reads) out << " " << access_token(r);
    out << " temps";
    for (int t : s.temp_reads) out << " " << t;
    out << "\n";
  }
  out << "end\n";
  return out.str();
}

std::optional<ParsedRepro> parse_repro(const std::string& text,
                                       std::string* error) {
  const auto fail = [&](const std::string& why) -> std::optional<ParsedRepro> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };

  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "mclcheck-repro v1") {
    return fail("missing 'mclcheck-repro v1' header");
  }

  ParsedRepro out;
  Case& c = out.kase;
  c.arrays.clear();
  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "end") {
      saw_end = true;
      break;
    } else if (key == "seed") {
      if (!(ls >> c.seed)) return fail("bad seed line");
    } else if (key == "minimized") {
      int v = 0;
      if (!(ls >> v)) return fail("bad minimized line");
      out.minimized = v != 0;
    } else if (key == "type") {
      std::string t;
      ls >> t;
      if (t == "f32") {
        c.type = Ty::F32;
      } else if (t == "i32") {
        c.type = Ty::I32;
      } else {
        return fail("bad type '" + t + "'");
      }
    } else if (key == "geometry") {
      if (!(ls >> c.global >> c.local >> c.work_items)) {
        return fail("bad geometry line");
      }
    } else if (key == "temps") {
      if (!(ls >> c.num_temps)) return fail("bad temps line");
    } else if (key == "plan") {
      std::string input;
      std::string output;
      if (!(ls >> input >> output)) return fail("bad plan line");
      if ((input != "map" && input != "write") ||
          (output != "map" && output != "read")) {
        return fail("bad plan tokens");
      }
      c.plan.map_inputs = input == "map";
      c.plan.map_outputs = output == "map";
    } else if (key == "array") {
      std::size_t id = 0;
      Array a;
      std::string access;
      std::string scope;
      if (!(ls >> id >> a.extent >> access >> scope >> a.init_seed)) {
        return fail("bad array line");
      }
      if ((access != "ro" && access != "rw") ||
          (scope != "global" && scope != "local")) {
        return fail("bad array tokens");
      }
      a.read_only = access == "ro";
      a.local = scope == "local";
      if (id != c.arrays.size()) return fail("array ids must be sequential");
      c.arrays.push_back(a);
    } else if (key == "stmt") {
      std::string kind;
      ls >> kind;
      Stmt s;
      if (kind == "barrier") {
        s.barrier = true;
        c.stmts.push_back(std::move(s));
        continue;
      }
      if (kind == "temp") {
        if (!(ls >> s.dst_temp)) return fail("bad temp destination");
      } else if (kind == "array") {
        if (!(ls >> s.dst_array >> s.dst.scale >> s.dst.offset)) {
          return fail("bad array destination");
        }
        s.dst.array = s.dst_array;
      } else {
        return fail("bad stmt kind '" + kind + "'");
      }
      std::string kw;
      std::string op_name;
      if (!(ls >> kw >> op_name) || kw != "op") return fail("missing op");
      const auto op = parse_op(op_name);
      if (!op) return fail("unknown op '" + op_name + "'");
      s.op = *op;
      std::string init_token;
      if (!(ls >> kw >> init_token) || kw != "init") {
        return fail("missing init");
      }
      try {
        s.init_bits = static_cast<std::uint32_t>(
            std::stoul(init_token, nullptr, 0));
      } catch (...) {
        return fail("bad init constant '" + init_token + "'");
      }
      if (!(ls >> kw) || kw != "reads") return fail("missing reads");
      std::string token;
      bool in_temps = false;
      while (ls >> token) {
        if (token == "temps") {
          in_temps = true;
          continue;
        }
        if (in_temps) {
          try {
            s.temp_reads.push_back(std::stoi(token));
          } catch (...) {
            return fail("bad temp read '" + token + "'");
          }
        } else {
          Access a;
          if (!parse_access(token, a)) {
            return fail("bad access token '" + token + "'");
          }
          s.reads.push_back(a);
        }
      }
      if (!in_temps) return fail("missing temps section");
      c.stmts.push_back(std::move(s));
    } else {
      return fail("unknown directive '" + key + "'");
    }
  }
  if (!saw_end) return fail("missing 'end' line");
  if (auto why = validate(c)) return fail("invalid case: " + *why);
  return out;
}

}  // namespace mcl::check
