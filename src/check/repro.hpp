// mclcheck repro files: a self-contained, text, line-based serialization of
// one Case, replayable with `tools/mclcheck --replay <file>`.
//
// Format (see docs/mclcheck.md for the grammar):
//   mclcheck-repro v1
//   # free-form comment lines
//   seed <u64>
//   minimized <0|1>
//   type <f32|i32>
//   geometry <global> <local> <work_items>
//   temps <n>
//   plan <write|map> <read|map>
//   array <id> <extent> <ro|rw> <global|local> <init_seed>
//   stmt barrier
//   stmt temp <t> op <name> init <hex> reads [<a>:<scale>:<offset>...]
//        temps [<t>...]
//   stmt array <a> <scale> <offset> op <name> init <hex> reads ... temps ...
//   end
//
// Parsing re-validates the case (validate()), so a hand-edited file cannot
// smuggle an out-of-bounds or racy program into the backends.
#pragma once

#include <optional>
#include <string>

#include "check/case.hpp"

namespace mcl::check {

/// Serializes the case. `minimized` marks whether the shrinker ran to a
/// fixpoint — committed repro files must say 1 (plot_results.py --check
/// enforces it). `note` becomes leading # comment lines.
[[nodiscard]] std::string serialize_repro(const Case& c, bool minimized,
                                          const std::string& note = {});

struct ParsedRepro {
  Case kase;
  bool minimized = false;
};

/// Parses and validates; on any syntax or invariant error returns nullopt
/// and fills `error` (when non-null) with the reason.
[[nodiscard]] std::optional<ParsedRepro> parse_repro(const std::string& text,
                                                     std::string* error);

}  // namespace mcl::check
