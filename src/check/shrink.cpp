#include "check/shrink.hpp"

#include <algorithm>
#include <vector>

namespace mcl::check {

namespace {

/// Sets a new local size, rebuilding everything derived from it: local
/// array extents and lid-affine access offsets (reversed reads track
/// local-1, broadcasts clamp into range).
Case with_local(const Case& c, std::size_t new_local) {
  Case n = c;
  n.local = new_local;
  const long long L = static_cast<long long>(new_local);
  for (Array& a : n.arrays) {
    if (a.local) a.extent = L;
  }
  const auto fix = [&](Access& acc) {
    if (!n.arrays[acc.array].local) return;
    if (acc.scale == -1) acc.offset = L - 1;
    if (acc.scale == 0) acc.offset = std::min(acc.offset, L - 1);
  };
  for (Stmt& s : n.stmts) {
    for (Access& r : s.reads) fix(r);
    if (s.dst_array >= 0) fix(s.dst);
  }
  return n;
}

std::vector<Case> geometry_candidates(const Case& c) {
  std::vector<Case> out;
  const bool synced = c.has_barrier() || c.has_local();
  // Every candidate keeps uniform workgroups (local | global) and only
  // shrinks, so the search is monotone and terminates.
  const auto with_geom = [&](std::size_t g, std::size_t l) {
    if (l < 1 || g < l || g % l != 0 || g > c.global || l > c.local) return;
    Case n = c;
    n.global = g;
    n.local = l;
    n.work_items = synced ? static_cast<long long>(g)
                          : std::min(n.work_items, static_cast<long long>(g));
    out.push_back(std::move(n));
  };
  if (synced) {
    with_geom(std::max(c.local, (c.global / 2) / c.local * c.local), c.local);
    with_geom(c.local, c.local);
    if (c.local > 1) {
      Case n = with_local(c, c.local / 2);
      n.global = n.local * std::max<std::size_t>(1, c.global / c.local / 2);
      n.work_items = static_cast<long long>(n.global);
      out.push_back(std::move(n));
      Case n1 = with_local(c, 1);
      n1.global = std::max<std::size_t>(1, c.global / c.local);
      n1.work_items = static_cast<long long>(n1.global);
      out.push_back(std::move(n1));
    }
  } else {
    with_geom((c.global / 2) / c.local * c.local, c.local);
    // Round work_items up to a whole number of groups (never exceeds
    // c.global, which is itself a multiple of c.local).
    with_geom(
        (static_cast<std::size_t>(c.work_items) + c.local - 1) / c.local *
            c.local,
        c.local);
    with_geom(2, 1);
    with_geom(c.global, 1);
    if (c.local > 1) with_geom(c.global, c.local / 2);
    if (c.work_items > 1) {
      Case n = c;
      n.work_items = c.work_items / 2;
      out.push_back(std::move(n));
    }
  }
  return out;
}

/// Removes stmt k, dropping reads of anything only it defined (temps, local
/// arrays) so the survivor is still well-formed.
Case remove_stmt(const Case& c, std::size_t k) {
  Case n = c;
  const Stmt victim = n.stmts[k];
  n.stmts.erase(n.stmts.begin() + static_cast<std::ptrdiff_t>(k));
  if (victim.dst_temp >= 0) {
    bool redefined = false;
    for (const Stmt& s : n.stmts) redefined |= s.dst_temp == victim.dst_temp;
    if (!redefined) {
      for (Stmt& s : n.stmts) {
        std::erase(s.temp_reads, victim.dst_temp);
      }
    }
  }
  if (victim.dst_array >= 0 && c.arrays[victim.dst_array].local) {
    bool rewritten = false;
    for (const Stmt& s : n.stmts) rewritten |= s.dst_array == victim.dst_array;
    if (!rewritten) {
      for (Stmt& s : n.stmts) {
        std::erase_if(s.reads, [&](const Access& r) {
          return r.array == victim.dst_array;
        });
      }
    }
  }
  return n;
}

/// Shrinks every global array's extent to exactly what the remaining
/// accesses touch.
Case tight_extents(const Case& c) {
  Case n = c;
  std::vector<long long> need(n.arrays.size(), 1);
  const auto note = [&](const Access& a) {
    const long long span = n.arrays[a.array].local
                               ? static_cast<long long>(n.local)
                               : n.work_items;
    const long long at0 = a.offset;
    const long long atN = a.scale * (span - 1) + a.offset;
    need[a.array] = std::max({need[a.array], at0 + 1, atN + 1});
  };
  for (const Stmt& s : n.stmts) {
    for (const Access& r : s.reads) note(r);
    if (s.dst_array >= 0) note(s.dst);
  }
  for (std::size_t i = 0; i < n.arrays.size(); ++i) {
    if (!n.arrays[i].local) n.arrays[i].extent = need[i];
  }
  return n;
}

struct Search {
  const std::function<bool(const Case&)>& fails;
  ShrinkStats* stats;
  int max_attempts;

  /// Validates + tries one candidate; on survival it replaces `current`.
  bool accept(Case& current, Case candidate) {
    if (stats->attempts >= max_attempts) return false;
    if (candidate == current) return false;
    if (validate(candidate).has_value()) return false;
    ++stats->attempts;
    if (!fails(candidate)) return false;
    ++stats->accepted;
    current = std::move(candidate);
    return true;
  }
};

}  // namespace

Case shrink_case(Case c, const std::function<bool(const Case&)>& fails,
                 int max_attempts, ShrinkStats* stats) {
  ShrinkStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  Search search{fails, stats, max_attempts};

  bool progress = true;
  while (progress && stats->attempts < max_attempts) {
    progress = false;

    // Geometry first: smaller NDRanges make every later predicate run cheap.
    for (bool moved = true; moved;) {
      moved = false;
      for (Case& cand : geometry_candidates(c)) {
        if (search.accept(c, std::move(cand))) {
          moved = true;
          progress = true;
          break;
        }
      }
    }

    // Whole statements, last-to-first so indices stay valid across accepts.
    for (std::size_t k = c.stmts.size(); k-- > 0;) {
      if (search.accept(c, remove_stmt(c, k))) progress = true;
      if (k > c.stmts.size()) k = c.stmts.size();
    }

    // Individual operands.
    for (std::size_t k = 0; k < c.stmts.size(); ++k) {
      for (std::size_t r = c.stmts[k].reads.size(); r-- > 0;) {
        Case cand = c;
        cand.stmts[k].reads.erase(cand.stmts[k].reads.begin() +
                                  static_cast<std::ptrdiff_t>(r));
        if (search.accept(c, std::move(cand))) progress = true;
      }
      for (std::size_t r = c.stmts[k].temp_reads.size(); r-- > 0;) {
        Case cand = c;
        cand.stmts[k].temp_reads.erase(cand.stmts[k].temp_reads.begin() +
                                       static_cast<std::ptrdiff_t>(r));
        if (search.accept(c, std::move(cand))) progress = true;
      }
    }

    // Data: tight extents, zeroed constants.
    if (search.accept(c, tight_extents(c))) progress = true;
    for (std::size_t k = 0; k < c.stmts.size(); ++k) {
      if (c.stmts[k].init_bits == 0) continue;
      Case cand = c;
      cand.stmts[k].init_bits = 0;
      if (search.accept(c, std::move(cand))) progress = true;
    }
  }
  return c;
}

}  // namespace mcl::check
