// mclcheck minimizer: greedy fixpoint reduction of a failing case.
//
// Passes, in order (each repeated until no candidate keeps the failure):
//   geometry   halve the global size, shrink the local size, shrink the
//              guarded-item count;
//   program    drop whole statements (patching dangling temp/local reads),
//              then drop individual operands;
//   data       shrink array extents to what the remaining accesses touch,
//              zero fold constants.
//
// Every candidate is validated before it is tried, so the shrinker can only
// move within the space of well-formed cases; `fails` decides survival.
#pragma once

#include <functional>

#include "check/case.hpp"

namespace mcl::check {

struct ShrinkStats {
  int attempts = 0;   ///< candidates tried
  int accepted = 0;   ///< candidates that kept the failure
};

/// Returns the smallest failing case the passes reach. `fails(c)` must
/// return true when `c` still reproduces the bug (deterministically — the
/// driver runs it with fixed seeds). `max_attempts` bounds the search.
[[nodiscard]] Case shrink_case(Case c,
                               const std::function<bool(const Case&)>& fails,
                               int max_attempts = 400,
                               ShrinkStats* stats = nullptr);

}  // namespace mcl::check
