#include "check/soundness.hpp"

#include <cstdint>
#include <set>
#include <sstream>
#include <vector>

#include "check/interp.hpp"
#include "check/reference.hpp"
#include "core/error.hpp"
#include "ocl/detail/checked_runner.hpp"
#include "ocl/device.hpp"
#include "ocl/queue.hpp"
#include "veclegal/kernel_ir.hpp"
#include "verify/interval.hpp"
#include "verify/verify.hpp"

namespace mcl::check {

namespace {

/// Registry name the oracle (re)registers under. Distinct from
/// "mclcheck.case" so soundness runs can never leave stale IR behind for the
/// differential fuzzer sharing the process.
constexpr const char* kName = "mclcheck.soundness";

constexpr std::size_t kFailureCap = 16;

/// What one forced-full-replay launch produced: the discharged proof (copied
/// out of the runner) and the ground-truth flagged set.
struct Outcome {
  bool has_proof = false;
  verify::LaunchProof proof;
  std::set<int> flagged;
  std::vector<std::string> findings;
};

void record_failure(SoundnessStats& stats, std::string line) {
  ++stats.violations;
  if (stats.failures.size() < kFailureCap)
    stats.failures.push_back(std::move(line));
}

/// Cross-checks one launch: every array the proof covers must be absent from
/// the dynamic replay's flagged set. Returns false on a violation.
bool check_outcome(const Case& c, const verify::KernelFacts& facts,
                   const Outcome& o, const char* phase,
                   SoundnessStats& stats) {
  if (!o.has_proof) return true;  // no replay/proof (e.g. MCL_VERIFY=off)
  bool ok = true;
  const std::size_t count =
      facts.arrays.size() < o.proof.array_proven.size()
          ? facts.arrays.size()
          : o.proof.array_proven.size();
  for (std::size_t i = 0; i < count; ++i) {
    if (!o.proof.array_proven[i]) continue;
    ++stats.proven_arrays;
    const int id = facts.arrays[i].array;
    if (o.flagged.count(id) != 0) {
      ok = false;
      std::ostringstream msg;
      msg << "seed " << c.seed << " [" << phase << "]: array #" << id
          << " statically proven safe but dynamically flagged";
      for (const std::string& f : o.findings) msg << "\n    " << f;
      record_failure(stats, msg.str());
    }
  }
  if (o.proof.all_proven()) ++stats.fully_proven;
  stats.accesses_covered += o.proof.accesses_covered;
  return ok;
}

}  // namespace

bool run_soundness_case(const Case& c, SoundnessStats& stats) {
  ++stats.cases;
  if (const auto err = validate(c)) {
    throw core::Error(core::Status::InvalidValue,
                      "soundness: invalid case (seed " +
                          std::to_string(c.seed) + "): " + *err);
  }

  // The IR and its proofs cover the active-item space [0, work_items); a
  // guarded case launches more items than that, with the extras masked by the
  // body's id guard, which the gid-indexed IR cannot express. Reshape the
  // launch to exactly the active space — legal because guarded cases are
  // barrier- and local-free by construction (see generator.cpp), so neither
  // group geometry nor epoch structure can change the program.
  Case sc = c;
  if (static_cast<long long>(sc.global) != sc.work_items) {
    sc.global = static_cast<std::size_t>(sc.work_items);
    sc.local = 1;
  }

  const veclegal::KernelIr ir = lower_to_ir(sc);
  auto& reg = veclegal::KernelIrRegistry::instance();
  // Re-registering per case is deliberate: it exercises the registry's
  // analysis-cache invalidation on every single program the fuzzer makes.
  reg.add(kName, ir);

  ocl::KernelDef def = make_kernel_def(sc, /*with_simd=*/false);
  def.name = kName;

  // One device for the whole fuzzing run (thread pools are expensive); the
  // checking itself happens in the CheckedRunner driven directly below, so
  // the device only provides transfer plumbing.
  static ocl::CpuDevice device{ocl::CpuDeviceConfig{}};
  ocl::Context ctx(device);
  std::vector<ocl::Buffer> buffers;
  buffers.reserve(sc.arrays.size());
  for (const Array& a : sc.arrays) {
    // Local arrays get a 4-byte placeholder so indices line up; bind_args
    // issues set_arg_local for those slots instead of binding the buffer.
    const std::size_t bytes =
        a.local ? sizeof(std::uint32_t)
                : static_cast<std::size_t>(a.extent) * sizeof(std::uint32_t);
    buffers.push_back(ctx.create_buffer(
        a.read_only ? ocl::MemFlags::ReadOnly : ocl::MemFlags::ReadWrite,
        bytes));
  }
  ocl::CommandQueue q(ctx);
  const Memory init = initial_memory(sc);
  for (std::size_t i = 0; i < sc.arrays.size(); ++i) {
    if (sc.arrays[i].local) continue;
    q.enqueue_write_buffer(buffers[i], 0,
                           init.arrays[i].size() * sizeof(std::uint32_t),
                           init.arrays[i].data());
  }

  ocl::Kernel kernel(def);
  std::vector<ocl::Buffer*> ptrs;
  for (ocl::Buffer& b : buffers) ptrs.push_back(&b);
  bind_args(kernel, sc, ptrs);

  // The kernel and args are shape-invariant across the two runs; only the
  // registered IR changes between them, and the runner re-reads it (and
  // re-discharges the proof) on every run().
  const auto drive = [&]() {
    ocl::detail::CheckedRunner runner(def, kernel.args(),
                                      ocl::NDRange(sc.global),
                                      ocl::NDRange(sc.local), 64 * 1024);
    runner.set_force_full_replay(true);
    try {
      runner.run();
    } catch (const core::Error&) {
      // Findings (the ground truth) stay recorded on the runner; a throwing
      // run is exactly what the boundary variant expects.
    }
    ++stats.launches;
    Outcome o;
    o.flagged = runner.flagged_arrays();
    o.findings = runner.findings();
    if (runner.launch_proof() != nullptr) {
      o.has_proof = true;
      o.proof = *runner.launch_proof();
    }
    return o;
  };

  const auto facts = verify::facts_for(kName);
  const Outcome base = drive();
  bool ok = facts != nullptr && check_outcome(sc, *facts, base, "base", stats);
  if (facts == nullptr) ok = true;  // registry lookup raced/disabled: nothing to check

  // ---- boundary variant ----------------------------------------------------
  // Shrink ONE proven array's DECLARED extent to exactly the highest index
  // the launch reaches, so the dynamic replay must flag B1 on it while an
  // honest discharge must now refuse the proof (the obligation is hi <
  // extent, and hi == extent after the shrink). Only the declared metadata
  // changes — the real buffer keeps its full size, so the interpreter never
  // actually runs out of bounds. Under MCL_CHECK_INJECT=verify the discharge
  // is deliberately lax (hi <= extent) and MUST produce a violation here.
  if (facts != nullptr && base.has_proof) {
    int victim = -1;
    verify::Wide victim_hi = 0;
    for (std::size_t i = 0;
         i < facts->arrays.size() && i < base.proof.array_proven.size(); ++i) {
      const verify::ArrayFacts& af = facts->arrays[i];
      if (!base.proof.array_proven[i] || af.accesses.empty() || af.local)
        continue;
      verify::Wide hi = 0;
      for (const verify::AccessFacts& a : af.accesses) {
        const verify::Interval iv = verify::Interval::affine(
            a.scale, a.offset, 0, static_cast<verify::Wide>(sc.global));
        if (iv.hi > hi) hi = iv.hi;
      }
      // hi >= 1 keeps the shrunk extent positive (discharge refuses extent
      // <= 0 outright, injected or not, which would mask the fault hook).
      if (hi >= 1) {
        victim = af.array;
        victim_hi = hi;
        break;
      }
    }
    if (victim >= 0) {
      ++stats.boundary_checks;
      veclegal::KernelIr shrunk = ir;
      for (veclegal::ArrayInfo& info : shrunk.arrays) {
        if (info.array == victim)
          info.extent = static_cast<long long>(victim_hi);
      }
      reg.add(kName, shrunk);
      const auto facts2 = verify::facts_for(kName);
      const Outcome variant = drive();
      if (variant.flagged.count(victim) == 0) {
        // The oracle's own ground truth failed to fire: index hi == extent
        // is reached by construction, so a missing B1 means the replay (not
        // the proof) is broken. Loud failure either way.
        ok = false;
        record_failure(stats,
                       "seed " + std::to_string(c.seed) +
                           " [boundary]: shrunk array #" +
                           std::to_string(victim) +
                           " was not flagged by full replay (oracle broken)");
      }
      if (facts2 != nullptr &&
          !check_outcome(sc, *facts2, variant, "boundary", stats)) {
        ok = false;
      }
    }
  }

  return ok;
}

}  // namespace mcl::check
