// mclcheck soundness oracle for mclverify's proof-carrying launches.
//
// The contract under test: an array the static verifier proves safe for a
// launch shape is exempted from the Checked executor's shadow replay — so an
// unsound proof would silently disable the sanitizer exactly where it is
// wrong. This mode closes that loop with the generator: every generated
// program is lowered to IR, registered (re-registration per case exercises
// the KernelIrRegistry analysis-cache invalidation), analyzed, and run under
// a CheckedRunner with FULL replay forced. The assertion is that no array
// the discharged proof covers is ever flagged by the dynamic replay
// (B1/S2/S3/W1).
//
// Each case is additionally rerun as a boundary variant: the declared extent
// of one array is shrunk to exactly the highest index the launch reaches, so
// dynamic replay must flag B1 while a correct discharge must refuse the
// proof. Under MCL_CHECK_INJECT=verify the discharge is deliberately lax
// (accepts one element past the extent) and the oracle MUST report a
// violation — proving the check can fail.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "check/case.hpp"

namespace mcl::check {

struct SoundnessStats {
  std::size_t cases = 0;
  std::size_t launches = 0;         ///< forced-full-replay runs driven
  std::size_t proven_arrays = 0;    ///< arrays covered by discharged proofs
  std::size_t fully_proven = 0;     ///< launches with every array proven
  std::size_t accesses_covered = 0; ///< declared accesses proofs would exempt
  std::size_t boundary_checks = 0;  ///< shrunk-extent variants driven
  std::size_t violations = 0;       ///< proven-and-flagged arrays seen
  std::vector<std::string> failures;

  [[nodiscard]] bool sound() const noexcept { return violations == 0; }
};

/// Runs the oracle on one generated case (base launch + boundary variant).
/// Returns false when any statically proven array was dynamically flagged;
/// details are appended to `stats.failures`.
bool run_soundness_case(const Case& c, SoundnessStats& stats);

}  // namespace mcl::check
