#include "core/advisor.hpp"

#include <algorithm>

namespace mcl::advisor {

namespace {

void add(std::vector<Advice>& out, Finding f, Severity sev, std::string msg,
         std::string why) {
  out.push_back(Advice{f, sev, std::move(msg), std::move(why)});
}

}  // namespace

std::vector<Advice> analyze(const LaunchProfile& p) {
  std::vector<Advice> out;
  if (!p.device_is_cpu) {
    // The paper's guidance targets CPU devices; GPUs invert several rules.
    return out;
  }

  const std::size_t work_per_item = p.flops_per_item + p.bytes_per_item;

  // Finding (1a): workload per workitem. Fig 1 shows up to ~4x for Square /
  // VectorAdd when 10-1000 workitems are coalesced into one.
  if (p.global_items > 0 && work_per_item > 0 && work_per_item < kMinWorkPerItem &&
      p.global_items >= 10'000) {
    add(out, Finding::WorkPerItem, Severity::Critical,
        "workitems carry ~" + std::to_string(work_per_item) +
            " ops each; coalesce 10-1000 workitems into one (loop inside the "
            "kernel) and shrink the NDRange accordingly",
        "Fig 1/Table IV: Square and VectorAddition gain up to ~4x on CPUs when "
        "workitems are coalesced; GPUs lose TLP instead, so keep a CPU-specific "
        "range");
  }

  // Finding (1b): workgroup size. Fig 3 shows throughput rising with local
  // size until saturation; NULL lets the runtime pick, which the paper found
  // below peak for Square/VectorAddition.
  if (p.local_items != 0 && p.local_items < kMinCpuWorkGroup &&
      work_per_item < 4096) {
    add(out, Finding::WorkGroupSize, Severity::Warning,
        "workgroup size " + std::to_string(p.local_items) +
            " is small for a short kernel; raise it (>=64, ideally the "
            "saturation point measured by bench/fig03) to cut per-group "
            "scheduling cost",
        "Fig 3: Square/VectorAddition/naive MatrixMul throughput climbs with "
        "workgroup size on CPUs and saturates; Fig 4: long kernels "
        "(Blackscholes) are insensitive");
  }
  if (p.local_items == 0) {
    add(out, Finding::WorkGroupSize, Severity::Info,
        "local size is NULL (runtime-chosen); the paper measured below-peak "
        "performance for that default — set it explicitly after a sweep",
        "Fig 3: NULL workgroup size underperforms the best explicit size for "
        "Square and VectorAddition");
  }

  // Finding (2): ILP. Fig 6 shows CPU throughput scaling with independent
  // chains while the GPU stays flat.
  if (p.ilp_chains <= 1 && p.flops_per_item >= 8) {
    add(out, Finding::Ilp, Severity::Warning,
        "kernel body is a single dependence chain (ILP 1); restructure into "
        ">=2 independent chains (e.g. process 2-4 elements per workitem)",
        "Fig 6: the ILP microbenchmark speeds up substantially from ILP 1 to 4 "
        "on the CPU; GPU throughput is flat because warps already hide latency");
  }

  // Finding (3): transfer API.
  if (p.uses_explicit_copy) {
    add(out, Finding::TransferApi, Severity::Warning,
        "host<->device traffic uses clEnqueueRead/WriteBuffer; switch to "
        "clEnqueueMapBuffer/Unmap — on a CPU device mapping returns a pointer "
        "and skips the staging copy",
        "Fig 7: mapping beats copying for every allocation-flag combination; "
        "Fig 8: Parboil transfer times drop with mapping in both directions. "
        "Allocation location flags showed no effect (shared DRAM)");
  }

  // Finding (4): affinity.
  if (p.kernels_share_data && !p.affinity_pinned && p.cpu_logical_cores > 1) {
    add(out, Finding::Affinity, Severity::Warning,
        "dependent kernels share buffers but threads are not pinned; OpenCL "
        "offers no affinity control — pin via the runtime extension (or "
        "align workgroup->core mapping across kernels) to keep reused data in "
        "private caches",
        "Fig 9: the misaligned thread<->data mapping ran ~15% longer than the "
        "aligned one due to private-cache misses");
  }

  // Finding (5): vectorization is a property of the programming model; on a
  // CPU device the SPMD compiler vectorizes across workitems even when the
  // kernel body carries a dependence chain. Surface as info so users know
  // not to hand-unroll.
  if (p.flops_per_item >= 4) {
    add(out, Finding::Vectorization, Severity::Info,
        "rely on the implicit SPMD vectorizer (workitems map to SIMD lanes); "
        "an equivalent OpenMP loop with an intra-iteration dependence chain "
        "would not auto-vectorize",
        "Fig 10/11: OpenCL kernels outperform OpenMP ports of MBench1-8 "
        "because loop vectorization legality is stricter than SPMD legality");
  }

  std::stable_sort(out.begin(), out.end(), [](const Advice& a, const Advice& b) {
    return static_cast<int>(a.severity) > static_cast<int>(b.severity);
  });
  return out;
}

std::string_view to_string(Finding f) noexcept {
  switch (f) {
    case Finding::WorkGroupSize: return "workgroup-size";
    case Finding::WorkPerItem: return "work-per-item";
    case Finding::Ilp: return "ilp";
    case Finding::TransferApi: return "transfer-api";
    case Finding::Affinity: return "affinity";
    case Finding::Vectorization: return "vectorization";
  }
  return "unknown";
}

std::string_view to_string(Severity s) noexcept {
  switch (s) {
    case Severity::Info: return "info";
    case Severity::Warning: return "warning";
    case Severity::Critical: return "critical";
  }
  return "unknown";
}

}  // namespace mcl::advisor
