// Performance advisor — the paper's contribution as executable guidance.
//
// Lee et al. conclude with five findings about OpenCL on multicore CPUs
// (Sec. V). This module codifies each finding as a lint rule over a kernel
// launch description, so a programmer (or the examples/autotuner in this
// repo) can ask "will this launch configuration utilize the CPU well?" and
// receive the paper's guidance with the quantitative rationale attached.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mcl::advisor {

/// Which of the paper's findings a piece of advice derives from.
enum class Finding {
  WorkGroupSize,     ///< (1) large workgroups amortize scheduling overhead
  WorkPerItem,       ///< (1) coalesce workitems: scheduling overhead, Fig 1/2
  Ilp,               ///< (2) independent chains feed the OoO core, Fig 6
  TransferApi,       ///< (3) map beats copy; alloc flags don't matter, Fig 7/8
  Affinity,          ///< (4) bind threads when kernels share data, Fig 9
  Vectorization,     ///< (5) SPMD vectorizes where loop vectorizers give up
};

enum class Severity { Info, Warning, Critical };

/// Description of a kernel launch, decoupled from the runtime types so the
/// advisor can be used against any OpenCL-like API.
struct LaunchProfile {
  std::size_t global_items = 0;
  std::size_t local_items = 0;        ///< 0 = implementation-chosen (NULL)
  std::size_t flops_per_item = 0;     ///< arithmetic per workitem
  std::size_t bytes_per_item = 0;     ///< memory traffic per workitem
  int ilp_chains = 1;                 ///< independent dependence chains
  bool uses_explicit_copy = false;    ///< clEnqueueRead/WriteBuffer style
  bool device_is_cpu = true;
  int cpu_logical_cores = 1;
  bool kernels_share_data = false;    ///< successive kernels reuse buffers
  bool affinity_pinned = false;
};

struct Advice {
  Finding finding;
  Severity severity;
  std::string message;        ///< what to change
  std::string rationale;      ///< which experiment quantifies it
};

/// Runs all rules; returned advice is ordered most severe first.
[[nodiscard]] std::vector<Advice> analyze(const LaunchProfile& profile);

/// Rule-of-thumb minimum work per workitem (flops+bytes) under which
/// workitem scheduling overhead dominates on a CPU device (Fig 1 regime).
inline constexpr std::size_t kMinWorkPerItem = 64;

/// Workgroup sizes below this leave measurable scheduling overhead on CPUs
/// for short kernels (Fig 3 saturation point).
inline constexpr std::size_t kMinCpuWorkGroup = 64;

[[nodiscard]] std::string_view to_string(Finding f) noexcept;
[[nodiscard]] std::string_view to_string(Severity s) noexcept;

}  // namespace mcl::advisor
