#include "core/cli.hpp"

#include <cstdlib>
#include <iostream>

#include "core/error.hpp"

namespace mcl::core {

void Cli::add_flag(const std::string& name, const std::string& help,
                   std::optional<std::string> default_value) {
  specs_[name] = Spec{help, std::move(default_value)};
}

bool Cli::parse(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "bench";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << "Usage: " << program_ << " [flags]\n";
      for (const auto& [name, spec] : specs_) {
        std::cout << "  --" << name;
        if (spec.default_value) std::cout << " (default: " << *spec.default_value << ")";
        std::cout << "\n      " << spec.help << '\n';
      }
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value = "1";
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    } else if (i + 1 < argc && specs_.count(name) != 0 &&
               std::string(argv[i + 1]).rfind("--", 0) != 0) {
      // --flag value form, only when the flag is declared and next token is
      // not itself a flag.
      value = argv[++i];
    }
    check(specs_.count(name) != 0, Status::InvalidValue, "unknown flag --" + name);
    values_[name] = value;
  }
  return true;
}

bool Cli::has(const std::string& name) const { return values_.count(name) != 0; }

std::string Cli::get(const std::string& name, const std::string& fallback) const {
  if (auto it = values_.find(name); it != values_.end()) return it->second;
  if (auto it = specs_.find(name); it != specs_.end() && it->second.default_value)
    return *it->second.default_value;
  return fallback;
}

double Cli::get_double(const std::string& name, double fallback) const {
  const std::string v = get(name);
  if (v.empty()) return fallback;
  return std::strtod(v.c_str(), nullptr);
}

long long Cli::get_int(const std::string& name, long long fallback) const {
  const std::string v = get(name);
  if (v.empty()) return fallback;
  return std::strtoll(v.c_str(), nullptr, 10);
}

Cli make_bench_cli() {
  Cli cli;
  cli.add_flag("quick", "run a fast smoke version of the experiment");
  cli.add_flag("min-time", "minimum accumulated seconds per configuration", "0.2");
  cli.add_flag("csv", "append results as CSV to this path");
  cli.add_flag("json", "append results as JSON lines to this path");
  cli.add_flag("md", "append results as Markdown tables to this path");
  cli.add_flag("seed", "input-generation seed", "1337");
  cli.add_flag("trace",
               "write a Chrome-trace JSON (mcltrace) of the run to this path");
  cli.add_flag("profile",
               "profile kernels with hardware counters (mclprof); pass a path "
               "to also write the profile JSON there");
  return cli;
}

MeasureOptions measure_options_from(const Cli& cli) {
  MeasureOptions opts = cli.has("quick") ? MeasureOptions::quick() : MeasureOptions{};
  if (cli.has("min-time")) opts.min_time = cli.get_double("min-time", opts.min_time);
  return opts;
}

}  // namespace mcl::core
