// Tiny command-line flag parser shared by bench binaries and examples.
//
// Supported syntax: --flag, --flag=value, --flag value. Unknown flags are an
// error so that typos in experiment scripts fail loudly.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/harness.hpp"

namespace mcl::core {

class Cli {
 public:
  /// Declares a flag before parse(); help is printed by --help.
  void add_flag(const std::string& name, const std::string& help,
                std::optional<std::string> default_value = std::nullopt);

  /// Parses argv. Returns false if --help was requested (help printed).
  /// Throws Error(InvalidValue) on unknown flags.
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback = {}) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] long long get_int(const std::string& name, long long fallback) const;

  /// Positional (non-flag) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  struct Spec {
    std::string help;
    std::optional<std::string> default_value;
  };
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  std::string program_;
};

/// Standard bench flags: --quick, --min-time=<s>, --csv=<path>, --seed=<n>.
/// Returns a Cli with those flags pre-registered.
[[nodiscard]] Cli make_bench_cli();

/// Derives MeasureOptions from the standard bench flags.
[[nodiscard]] MeasureOptions measure_options_from(const Cli& cli);

}  // namespace mcl::core
