#include "core/error.hpp"

namespace mcl::core {

std::string_view to_string(Status s) noexcept {
  switch (s) {
    case Status::Success: return "Success";
    case Status::InvalidValue: return "InvalidValue";
    case Status::InvalidBufferSize: return "InvalidBufferSize";
    case Status::InvalidMemFlags: return "InvalidMemFlags";
    case Status::InvalidKernelArgs: return "InvalidKernelArgs";
    case Status::InvalidWorkGroupSize: return "InvalidWorkGroupSize";
    case Status::InvalidGlobalWorkSize: return "InvalidGlobalWorkSize";
    case Status::InvalidKernelName: return "InvalidKernelName";
    case Status::InvalidOperation: return "InvalidOperation";
    case Status::InvalidLaunch: return "InvalidLaunch";
    case Status::MapFailure: return "MapFailure";
    case Status::OutOfResources: return "OutOfResources";
    case Status::DeviceNotFound: return "DeviceNotFound";
    case Status::BuildProgramFailure: return "BuildProgramFailure";
    case Status::SanitizerViolation: return "SanitizerViolation";
    case Status::Cancelled: return "Cancelled";
    case Status::InternalError: return "InternalError";
  }
  return "UnknownStatus";
}

}  // namespace mcl::core
