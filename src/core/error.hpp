// Error handling primitives shared by every MiniCL module.
//
// The runtime surfaces failures as exceptions carrying a Status code, in the
// spirit of the OpenCL C++ bindings' cl::Error. Hot paths never throw; all
// validation happens at API boundaries.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace mcl::core {

/// Status codes loosely mirroring the OpenCL error space.
enum class Status : std::int32_t {
  Success = 0,
  InvalidValue,
  InvalidBufferSize,
  InvalidMemFlags,
  InvalidKernelArgs,
  InvalidWorkGroupSize,
  InvalidGlobalWorkSize,
  InvalidKernelName,
  InvalidOperation,
  InvalidLaunch,
  MapFailure,
  OutOfResources,
  DeviceNotFound,
  BuildProgramFailure,
  SanitizerViolation,
  Cancelled,  ///< request cancelled or timed out before running (mclserve)
  InternalError,
};

/// Human-readable name for a status code.
[[nodiscard]] std::string_view to_string(Status s) noexcept;

/// Exception thrown by MiniCL API entry points on invalid use.
class Error : public std::runtime_error {
 public:
  Error(Status status, const std::string& what)
      : std::runtime_error(std::string(to_string(status)) + ": " + what),
        status_(status) {}

  [[nodiscard]] Status status() const noexcept { return status_; }

 private:
  Status status_;
};

/// Throws Error(status, msg) unless cond holds. Use at API boundaries only.
inline void check(bool cond, Status status, const std::string& msg) {
  if (!cond) throw Error(status, msg);
}

}  // namespace mcl::core
