#include "core/harness.hpp"

namespace mcl::core {

namespace {

template <typename SampleFn>
Measurement run_loop(SampleFn&& sample, const MeasureOptions& opts) {
  Measurement m;
  std::vector<double> samples;
  samples.reserve(64);
  while ((m.total_s < opts.min_time || m.iterations < opts.min_iters) &&
         m.iterations < opts.max_iters) {
    const Seconds dt = sample();
    samples.push_back(dt);
    m.total_s += dt;
    ++m.iterations;
  }
  if (m.iterations > 0) m.per_iter_s = m.total_s / static_cast<double>(m.iterations);
  m.per_iter_stats = summarize(samples);
  return m;
}

}  // namespace

Measurement measure(const std::function<void()>& fn, const MeasureOptions& opts) {
  for (std::size_t i = 0; i < opts.warmup_iters; ++i) fn();
  return run_loop(
      [&fn]() {
        const TimePoint t0 = now();
        fn();
        return elapsed_s(t0, now());
      },
      opts);
}

Measurement measure_reported(const std::function<Seconds()>& fn,
                             const MeasureOptions& opts) {
  for (std::size_t i = 0; i < opts.warmup_iters; ++i) (void)fn();
  return run_loop([&fn]() { return fn(); }, opts);
}

}  // namespace mcl::core
