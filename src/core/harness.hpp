// Measurement harness implementing the paper's methodology (Sec. III-A):
// a kernel is re-executed until the accumulated wall time passes a threshold
// (90 s in the paper; configurable and much smaller here), and the mean time
// per invocation is reported. Throughput figures are then normalized to a
// baseline configuration.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "core/stats.hpp"
#include "core/time.hpp"

namespace mcl::core {

/// Controls one measurement run.
struct MeasureOptions {
  Seconds min_time = 0.2;       ///< keep iterating until this much wall time accrues
  std::size_t warmup_iters = 1; ///< un-timed invocations before measuring
  std::size_t min_iters = 3;    ///< lower bound on timed invocations
  std::size_t max_iters = 1'000'000;  ///< safety bound

  /// Returns options scaled for quick smoke runs (--quick).
  [[nodiscard]] static MeasureOptions quick() {
    return MeasureOptions{.min_time = 0.02, .warmup_iters = 1, .min_iters = 2,
                          .max_iters = 10'000};
  }
};

/// Result of measuring one configuration.
struct Measurement {
  std::size_t iterations = 0;
  Seconds total_s = 0.0;
  Seconds per_iter_s = 0.0;       ///< total_s / iterations
  Summary per_iter_stats;         ///< statistics over individual samples
};

/// Repeatedly invokes fn, timing each invocation, per MeasureOptions.
[[nodiscard]] Measurement measure(const std::function<void()>& fn,
                                  const MeasureOptions& opts = {});

/// Like measure(), but fn reports its own duration (e.g. simulated device
/// time from the GPU model, or event-profiled time). fn returns seconds.
[[nodiscard]] Measurement measure_reported(const std::function<Seconds()>& fn,
                                           const MeasureOptions& opts = {});

/// Paper Equation (1): application throughput once transfer time is charged.
///   Throughput_app = Throughput_kernel / (kernel_time + transfer_time)
/// Expressed here as work items (or flops) per second over the total time.
[[nodiscard]] inline double app_throughput(double work_per_invocation,
                                           Seconds kernel_time,
                                           Seconds transfer_time) noexcept {
  const Seconds total = kernel_time + transfer_time;
  return total > 0.0 ? work_per_invocation / total : 0.0;
}

/// Normalized throughput of `t` against `baseline` (both per-invocation
/// times for identical total work): baseline_time / t.
[[nodiscard]] inline double normalized_throughput(Seconds baseline_time,
                                                  Seconds t) noexcept {
  return t > 0.0 ? baseline_time / t : 0.0;
}

}  // namespace mcl::core
