// Deterministic pseudo-random generation for workload inputs.
//
// All experiment inputs are generated from fixed seeds so that every run of a
// bench binary measures the same computation (splitmix64 + xoshiro256**).
#pragma once

#include <cstdint>
#include <span>

namespace mcl::core {

/// splitmix64 — used to seed xoshiro and for cheap hashing.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 — fast, high-quality, deterministic across platforms.
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed = 0x5eedULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  [[nodiscard]] constexpr std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  [[nodiscard]] constexpr double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [lo, hi).
  [[nodiscard]] constexpr float next_float(float lo, float hi) noexcept {
    return lo + static_cast<float>(next_double()) * (hi - lo);
  }

  /// Uniform integer in [0, bound).
  [[nodiscard]] constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    return bound == 0 ? 0 : next_u64() % bound;
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

/// Fills a span with uniform floats in [lo, hi).
inline void fill_uniform(std::span<float> out, std::uint64_t seed,
                         float lo = 0.0f, float hi = 1.0f) {
  Rng rng(seed);
  for (auto& v : out) v = rng.next_float(lo, hi);
}

}  // namespace mcl::core
