#include "core/stats.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace mcl::core {

Summary summarize(std::span<const double> samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;

  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  const std::size_t n = sorted.size();
  s.median = (n % 2 == 1) ? sorted[n / 2]
                          : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);

  double sum = 0.0;
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(n);

  if (n > 1) {
    double sq = 0.0;
    for (double v : sorted) {
      const double d = v - s.mean;
      sq += d * d;
    }
    s.stdev = std::sqrt(sq / static_cast<double>(n - 1));
    s.ci95_half = 1.96 * s.stdev / std::sqrt(static_cast<double>(n));
  }
  return s;
}

double relative_spread(const Summary& s) noexcept {
  if (s.count < 2 || s.min <= 0.0) return 0.0;
  return s.max / s.min - 1.0;
}

}  // namespace mcl::core
