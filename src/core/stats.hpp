// Sample statistics for timing measurements.
#pragma once

#include <cstddef>
#include <span>

namespace mcl::core {

/// Summary statistics over a set of timing samples (seconds).
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double median = 0.0;
  double stdev = 0.0;   ///< sample standard deviation (n-1)
  double min = 0.0;
  double max = 0.0;
  double ci95_half = 0.0;  ///< half-width of the 95% normal-approx CI of the mean
};

/// Computes summary statistics; tolerates empty input (all-zero summary).
[[nodiscard]] Summary summarize(std::span<const double> samples);

/// Relative spread max/min - 1; 0 for fewer than two samples.
[[nodiscard]] double relative_spread(const Summary& s) noexcept;

}  // namespace mcl::core
