#include "core/sysinfo.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

namespace mcl::core {

namespace {

std::string read_first_line(const std::string& path) {
  std::ifstream f(path);
  std::string line;
  if (f) std::getline(f, line);
  return line;
}

// Parses sysfs cache size strings like "32K" / "12288K".
std::size_t parse_cache_size(const std::string& s) {
  if (s.empty()) return 0;
  char unit = 0;
  unsigned long long value = 0;
  std::sscanf(s.c_str(), "%llu%c", &value, &unit);
  switch (unit) {
    case 'K': return value * 1024ULL;
    case 'M': return value * 1024ULL * 1024ULL;
    case 'G': return value * 1024ULL * 1024ULL * 1024ULL;
    default: return value;
  }
}

}  // namespace

HostInfo probe_host() {
  HostInfo info;
  info.logical_cpus = static_cast<int>(std::thread::hardware_concurrency());
  if (info.logical_cpus <= 0) info.logical_cpus = 1;

  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (cpuinfo && std::getline(cpuinfo, line)) {
    if (line.rfind("model name", 0) == 0) {
      if (auto colon = line.find(':'); colon != std::string::npos) {
        info.cpu_model = line.substr(colon + 2);
      }
      break;
    }
  }

  // cache levels of cpu0: index0=L1D, index1=L1I (usually), index2=L2, index3=L3
  const std::string base = "/sys/devices/system/cpu/cpu0/cache/";
  for (int idx = 0; idx < 8; ++idx) {
    const std::string dir = base + "index" + std::to_string(idx) + "/";
    const std::string level = read_first_line(dir + "level");
    const std::string type = read_first_line(dir + "type");
    if (level.empty()) continue;
    const std::size_t size = parse_cache_size(read_first_line(dir + "size"));
    if (level == "1" && type != "Instruction") info.l1d_bytes = size;
    if (level == "2") info.l2_bytes = size;
    if (level == "3") info.l3_bytes = size;
  }

#if defined(__AVX2__)
  info.simd_isa = "AVX2";
  info.simd_float_lanes = 8;
#elif defined(__AVX__)
  info.simd_isa = "AVX";
  info.simd_float_lanes = 8;
#elif defined(__SSE4_2__)
  info.simd_isa = "SSE4.2";
  info.simd_float_lanes = 4;
#elif defined(__SSE2__)
  info.simd_isa = "SSE2";
  info.simd_float_lanes = 4;
#else
  info.simd_isa = "scalar";
  info.simd_float_lanes = 1;
#endif

#if defined(__linux__)
  info.os = "Linux";
#else
  info.os = "unknown";
#endif

  {
    const std::string paranoid =
        read_first_line("/proc/sys/kernel/perf_event_paranoid");
    if (!paranoid.empty()) {
      info.perf_event_paranoid =
          static_cast<int>(std::strtol(paranoid.c_str(), nullptr, 10));
    }
  }

#if defined(__clang__)
  info.compiler = "clang " __clang_version__;
#elif defined(__GNUC__)
  info.compiler = "gcc " + std::to_string(__GNUC__) + "." +
                  std::to_string(__GNUC_MINOR__);
#else
  info.compiler = "unknown";
#endif
  return info;
}

std::string format_bytes(std::size_t bytes) {
  if (bytes == 0) return "n/a";
  if (bytes % (1024ULL * 1024ULL) == 0)
    return std::to_string(bytes / (1024ULL * 1024ULL)) + "M";
  if (bytes % 1024ULL == 0) return std::to_string(bytes / 1024ULL) + "K";
  return std::to_string(bytes) + "B";
}

}  // namespace mcl::core
