// Host-system probing used by the Table I (experimental environment) bench.
#pragma once

#include <cstddef>
#include <string>

namespace mcl::core {

/// What we can discover about the machine the CPU experiments run on.
struct HostInfo {
  std::string cpu_model;        ///< e.g. "Intel(R) Xeon(R) CPU E5645"
  int logical_cpus = 1;
  std::size_t l1d_bytes = 0;    ///< 0 when undiscoverable
  std::size_t l2_bytes = 0;
  std::size_t l3_bytes = 0;
  std::string simd_isa;         ///< widest ISA this binary was compiled for
  int simd_float_lanes = 1;     ///< single-precision lanes per vector
  std::string os;
  std::string compiler;
  /// /proc/sys/kernel/perf_event_paranoid (-99 when unreadable) — governs
  /// whether mclprof can open hardware counters; Table I reports it.
  int perf_event_paranoid = -99;
};

/// Probes /proc and sysfs (best effort; missing fields stay defaulted).
[[nodiscard]] HostInfo probe_host();

/// "12K", "3M" style formatting for cache sizes.
[[nodiscard]] std::string format_bytes(std::size_t bytes);

}  // namespace mcl::core
