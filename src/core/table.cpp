#include "core/table.hpp"

#include <algorithm>
#include <cstdio>
#include <cmath>
#include <fstream>
#include <iostream>
#include <ostream>

namespace mcl::core {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void Table::add_row(std::vector<Cell> row) {
  row.resize(columns_.size(), Cell{std::string{}});
  rows_.push_back(std::move(row));
}

std::string Table::format_cell(const Cell& c, int precision) {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, std::get<double>(c));
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  std::vector<std::vector<std::string>> cells(rows_.size());
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    cells[r].reserve(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      cells[r].push_back(format_cell(rows_[r][c]));
      widths[c] = std::max(widths[c], cells[r][c].size());
    }
  }
  std::size_t total = widths.empty() ? 0 : 2 * (widths.size() - 1);
  for (auto w : widths) total += w;

  os << "\n== " << title_ << " ==\n";
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << columns_[c] << std::string(widths[c] - columns_[c].size(), ' ');
    os << (c + 1 < columns_.size() ? "  " : "");
  }
  os << '\n' << std::string(total, '-') << '\n';
  for (const auto& row : cells) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(widths[c] - row[c].size(), ' ');
      os << (c + 1 < row.size() ? "  " : "");
    }
    os << '\n';
  }
  os.flush();
}

void Table::write_csv(std::ostream& os) const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  os << "# " << title_ << '\n';
  for (std::size_t c = 0; c < columns_.size(); ++c)
    os << escape(columns_[c]) << (c + 1 < columns_.size() ? "," : "");
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << escape(format_cell(row[c], 9)) << (c + 1 < row.size() ? "," : "");
    os << '\n';
  }
}

void Table::write_json(std::ostream& os) const {
  auto json_string = [](const std::string& s) {
    std::string out = "\"";
    for (char ch : s) {
      switch (ch) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(ch) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
            out += buf;
          } else {
            out += ch;
          }
      }
    }
    return out + "\"";
  };
  auto json_cell = [&](const Cell& c) {
    if (const auto* s = std::get_if<std::string>(&c)) return json_string(*s);
    const double v = std::get<double>(c);
    // JSON has no NaN/Inf; degrade to null.
    if (!std::isfinite(v)) return std::string("null");
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return std::string(buf);
  };

  os << "{\"title\":" << json_string(title_) << ",\"columns\":[";
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << json_string(columns_[c]) << (c + 1 < columns_.size() ? "," : "");
  }
  os << "],\"rows\":[";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << "[";
    for (std::size_t c = 0; c < rows_[r].size(); ++c) {
      os << json_cell(rows_[r][c]) << (c + 1 < rows_[r].size() ? "," : "");
    }
    os << "]" << (r + 1 < rows_.size() ? "," : "");
  }
  os << "]}\n";
}

void Table::write_markdown(std::ostream& os) const {
  auto escape = [](const std::string& s) {
    std::string out;
    for (char ch : s) {
      if (ch == '|') out += "\\|";
      else out += ch;
    }
    return out;
  };
  os << "\n### " << escape(title_) << "\n\n|";
  for (const std::string& c : columns_) os << " " << escape(c) << " |";
  os << "\n|";
  for (std::size_t c = 0; c < columns_.size(); ++c) os << "---|";
  os << "\n";
  for (const auto& row : rows_) {
    os << "|";
    for (const Cell& c : row) os << " " << escape(format_cell(c)) << " |";
    os << "\n";
  }
}

void Table::emit(const std::string& csv_path, const std::string& json_path,
                 const std::string& md_path) const {
  print(std::cout);
  if (!csv_path.empty()) {
    std::ofstream f(csv_path, std::ios::app);
    if (f) write_csv(f);
  }
  if (!json_path.empty()) {
    std::ofstream f(json_path, std::ios::app);
    if (f) write_json(f);  // one JSON object per line (JSONL)
  }
  if (!md_path.empty()) {
    std::ofstream f(md_path, std::ios::app);
    if (f) write_markdown(f);
  }
}

}  // namespace mcl::core
