// Console table / CSV reporting used by every bench binary.
//
// Each bench builds a Table whose rows mirror the corresponding table or
// figure series in the paper, prints it, and optionally appends it to a CSV
// file for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace mcl::core {

/// One table cell: text or a number (formatted with %.4g by default).
using Cell = std::variant<std::string, double>;

class Table {
 public:
  explicit Table(std::string title, std::vector<std::string> columns);

  /// Appends a row; pads/truncates to the column count.
  void add_row(std::vector<Cell> row);

  [[nodiscard]] const std::string& title() const noexcept { return title_; }
  [[nodiscard]] const std::vector<std::string>& columns() const noexcept {
    return columns_;
  }
  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<Cell>& row(std::size_t i) const {
    return rows_.at(i);
  }

  /// Pretty-prints with aligned columns and a title rule.
  void print(std::ostream& os) const;

  /// Appends as CSV (with a `# title` comment line and a header row).
  void write_csv(std::ostream& os) const;

  /// Writes as a JSON object: {"title": ..., "columns": [...],
  /// "rows": [[...], ...]} with numbers kept numeric. For machine-readable
  /// experiment pipelines.
  void write_json(std::ostream& os) const;

  /// Writes as a GitHub-flavored Markdown table with a ### heading.
  void write_markdown(std::ostream& os) const;

  /// Convenience: prints to stdout, appends CSV to `csv_path`, JSON lines
  /// to `json_path` and Markdown to `md_path` when nonempty.
  void emit(const std::string& csv_path = {}, const std::string& json_path = {},
            const std::string& md_path = {}) const;

  /// Formats a cell the same way print() does.
  [[nodiscard]] static std::string format_cell(const Cell& c, int precision = 4);

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace mcl::core
