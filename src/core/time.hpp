// Wall-clock timing utilities used by the measurement harness.
#pragma once

#include <chrono>
#include <cstdint>

namespace mcl::core {

using Clock = std::chrono::steady_clock;
using TimePoint = Clock::time_point;

/// Seconds as double — the unit every reported duration uses.
using Seconds = double;

[[nodiscard]] inline TimePoint now() noexcept { return Clock::now(); }

/// Absolute steady-clock nanoseconds. The single monotonic epoch shared by
/// AsyncEvent profiling timestamps (ocl/queue.cpp) and mcltrace events
/// (trace/trace.cpp), so both land on one timeline when exported.
[[nodiscard]] inline std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

[[nodiscard]] inline Seconds elapsed_s(TimePoint start, TimePoint end) noexcept {
  return std::chrono::duration<double>(end - start).count();
}

/// Simple RAII-free stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(now()) {}

  void reset() noexcept { start_ = now(); }

  /// Seconds since construction or the last reset().
  [[nodiscard]] Seconds elapsed() const noexcept { return elapsed_s(start_, now()); }

 private:
  TimePoint start_;
};

}  // namespace mcl::core
