#include "gpusim/detailed.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

namespace mcl::gpusim {

namespace {

enum class InstType : std::uint8_t { Fp, Other, Mem };

struct Inst {
  InstType type;
  std::uint8_t chain;  ///< dependence chain this instruction extends
};

/// Builds the per-warp instruction stream implied by a cost descriptor:
/// memory requests spread evenly through `ilp` interleaved compute chains.
std::vector<Inst> build_stream(const KernelCost& cost, double inflation) {
  const auto n_fp = static_cast<std::size_t>(std::llround(cost.fp_insts * inflation));
  const auto n_other =
      static_cast<std::size_t>(std::llround(cost.other_insts * inflation));
  const auto n_mem =
      static_cast<std::size_t>(std::llround(cost.mem_insts * inflation));
  const auto chains =
      static_cast<std::uint8_t>(std::clamp(cost.ilp, 1.0, 32.0));

  std::vector<Inst> stream;
  stream.reserve(n_fp + n_other + n_mem);
  const std::size_t compute_total = n_fp + n_other;
  // Interval between memory instructions within the compute stream.
  const std::size_t mem_interval =
      n_mem > 0 ? std::max<std::size_t>(1, (compute_total + n_mem) / n_mem) : 0;

  std::size_t emitted_mem = 0;
  std::uint8_t chain = 0;
  for (std::size_t i = 0; i < compute_total; ++i) {
    if (n_mem > 0 && mem_interval > 0 && i % mem_interval == 0 &&
        emitted_mem < n_mem) {
      stream.push_back({InstType::Mem, chain});
      ++emitted_mem;
    }
    stream.push_back({i < n_fp ? InstType::Fp : InstType::Other, chain});
    chain = static_cast<std::uint8_t>((chain + 1) % chains);
  }
  while (emitted_mem < n_mem) {
    stream.push_back({InstType::Mem, chain});
    ++emitted_mem;
    chain = static_cast<std::uint8_t>((chain + 1) % chains);
  }
  if (stream.empty()) stream.push_back({InstType::Other, 0});
  return stream;
}

struct WarpState {
  std::size_t pc = 0;
  // Cycle at which each chain's latest producer result becomes available.
  std::array<std::uint64_t, 32> chain_ready{};
  bool done = false;
};

}  // namespace

DetailedResult simulate_detailed(const GpuSpec& spec, const KernelCost& cost,
                                 const LaunchGeometry& geometry) {
  DetailedResult out;
  if (geometry.global_items == 0) return out;

  std::size_t local = geometry.local_items != 0 ? geometry.local_items : 256;
  local = std::min(local, geometry.global_items);

  // Occupancy — identical rules to the analytical model.
  const int warps_per_block = static_cast<int>(
      (local + static_cast<std::size_t>(spec.warp_size) - 1) /
      static_cast<std::size_t>(spec.warp_size));
  int blocks_per_sm =
      std::min(spec.max_blocks_per_sm,
               std::max(1, spec.max_warps_per_sm / std::max(1, warps_per_block)));
  const std::size_t total_blocks = (geometry.global_items + local - 1) / local;
  const std::size_t my_blocks = std::max<std::size_t>(
      1, (total_blocks + static_cast<std::size_t>(spec.num_sm) - 1) /
             static_cast<std::size_t>(spec.num_sm));
  blocks_per_sm =
      std::min<int>(blocks_per_sm, static_cast<int>(my_blocks));

  const double warp_occupancy =
      static_cast<double>(local) /
      (warps_per_block * static_cast<double>(spec.warp_size));
  const double inflation = 1.0 / std::max(warp_occupancy, 1e-9);

  const std::vector<Inst> stream = build_stream(cost, inflation);

  // Memory subsystem per SM: bandwidth-derived cap on concurrent requests
  // (same formula as the analytical MWP bound) plus a departure delay.
  const double departure = cost.coalesced ? spec.departure_delay_coalesced
                                          : spec.departure_delay_uncoalesced;
  const double bw_per_warp_gbs =
      (static_cast<double>(spec.warp_size) * cost.bytes_per_mem) /
      (spec.mem_latency / (spec.clock_ghz * 1e9)) / 1e9;
  const int mem_slots = std::max(
      1, static_cast<int>(std::min(
             {spec.mem_latency / departure,
              spec.mem_bandwidth_gbs /
                  std::max(1e-9, bw_per_warp_gbs * spec.num_sm),
              128.0})));

  const int resident_warps = blocks_per_sm * warps_per_block;
  std::vector<WarpState> warps(static_cast<std::size_t>(resident_warps));

  std::uint64_t now = 0;
  std::size_t blocks_done = 0;
  std::size_t blocks_launched = static_cast<std::size_t>(blocks_per_sm);
  std::vector<std::uint64_t> mem_free_at;  // completion times of in-flight reqs
  std::uint64_t mem_port_free = 0;         // departure-delay gate
  std::size_t rr = 0;                      // round-robin scan start

  const auto warp_blocked_until = [&](const WarpState& w) -> std::uint64_t {
    const Inst& inst = stream[w.pc];
    std::uint64_t ready = w.chain_ready[inst.chain];
    if (inst.type == InstType::Mem) {
      ready = std::max(ready, mem_port_free);
      if (mem_free_at.size() >= static_cast<std::size_t>(mem_slots)) {
        ready = std::max(ready, *std::min_element(mem_free_at.begin(),
                                                  mem_free_at.end()));
      }
    }
    return ready;
  };

  while (blocks_done < my_blocks) {
    // Retire completed memory requests.
    std::erase_if(mem_free_at, [&](std::uint64_t t) { return t <= now; });

    // Round-robin: issue at most one instruction this cycle.
    bool issued = false;
    for (int scan = 0; scan < resident_warps && !issued; ++scan) {
      WarpState& w = warps[(rr + scan) % warps.size()];
      if (w.done) continue;
      if (warp_blocked_until(w) > now) continue;

      const Inst& inst = stream[w.pc];
      switch (inst.type) {
        case InstType::Fp:
          w.chain_ready[inst.chain] =
              now + static_cast<std::uint64_t>(spec.fp_latency);
          break;
        case InstType::Other:
          w.chain_ready[inst.chain] = now + 1;
          break;
        case InstType::Mem: {
          const auto done_at =
              now + static_cast<std::uint64_t>(spec.mem_latency);
          mem_free_at.push_back(done_at);
          mem_port_free = now + static_cast<std::uint64_t>(departure);
          w.chain_ready[inst.chain] = done_at;
          break;
        }
      }
      ++out.issued_insts;
      issued = true;
      rr = (rr + scan + 1) % warps.size();

      if (++w.pc >= stream.size()) {
        w.done = true;
        // Block-granularity retirement: when warps_per_block consecutive
        // warps of one block are done, refill them with a fresh block.
        const std::size_t block_first =
            ((&w - warps.data()) / warps_per_block) * warps_per_block;
        bool block_done = true;
        for (int k = 0; k < warps_per_block; ++k) {
          block_done = block_done && warps[block_first + k].done;
        }
        if (block_done) {
          ++blocks_done;
          if (blocks_launched < my_blocks) {
            ++blocks_launched;
            for (int k = 0; k < warps_per_block; ++k) {
              warps[block_first + k] = WarpState{};
            }
          }
        }
      }
    }

    if (issued) {
      now += static_cast<std::uint64_t>(spec.issue_cycles);
      continue;
    }
    // Nothing issueable: jump to the earliest wake-up instead of ticking.
    std::uint64_t next = UINT64_MAX;
    for (const WarpState& w : warps) {
      if (!w.done) next = std::min(next, warp_blocked_until(w));
    }
    ++out.stall_cycles;
    now = next == UINT64_MAX ? now + 1 : std::max(next, now + 1);
  }

  out.cycles = now;
  out.seconds = static_cast<double>(now) / (spec.clock_ghz * 1e9);
  out.occupancy_warps = resident_warps;
  const double total_flops = static_cast<double>(geometry.global_items) *
                             cost.fp_insts * cost.flops_per_fp;
  out.achieved_gflops =
      out.seconds > 0.0 ? total_flops / out.seconds / 1e9 : 0.0;
  return out;
}

}  // namespace mcl::gpusim
