// Discrete-event SIMT timing simulator — the detailed counterpart of the
// analytical Hong-Kim model in gpusim.hpp.
//
// One SM is simulated cycle by cycle: resident warps are round-robin
// scheduled; each warp executes an instruction stream derived from the
// KernelCost descriptor (fp/other instructions arranged into `ilp`
// independent chains, memory instructions spread evenly); a warp stalls
// when its next instruction depends on a result that is still in flight
// (fp_latency) or on an outstanding memory request (mem_latency), and
// memory-level parallelism is capped by a bandwidth-derived limit of
// concurrent requests per SM. Other SMs are assumed identical (the grid is
// divided evenly), matching the analytical model's assumptions.
//
// Purpose: validate that the paper-level GPU conclusions do not depend on
// the closed-form approximations — tests cross-check both models for
// agreement on orderings and rough magnitudes, and
// bench/ablation_gpumodel compares them side by side.
#pragma once

#include <cstdint>

#include "gpusim/gpusim.hpp"

namespace mcl::gpusim {

/// Per-run outputs of the detailed simulator.
struct DetailedResult {
  double seconds = 0.0;
  std::uint64_t cycles = 0;        ///< per-SM cycles for its share of blocks
  std::uint64_t issued_insts = 0;  ///< warp-instructions issued on the SM
  std::uint64_t stall_cycles = 0;  ///< cycles with no issueable warp
  double occupancy_warps = 0.0;    ///< resident warps during main phase
  double achieved_gflops = 0.0;
};

/// Runs the discrete-event simulation. Deterministic; cost/geometry
/// semantics identical to gpusim::simulate.
[[nodiscard]] DetailedResult simulate_detailed(const GpuSpec& spec,
                                               const KernelCost& cost,
                                               const LaunchGeometry& geometry);

}  // namespace mcl::gpusim
