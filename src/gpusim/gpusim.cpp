#include "gpusim/gpusim.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace mcl::gpusim {

SimResult simulate(const GpuSpec& spec, const KernelCost& cost,
                   const LaunchGeometry& geometry) {
  SimResult r;
  if (geometry.global_items == 0) return r;

  std::size_t local = geometry.local_items != 0 ? geometry.local_items : 256;
  local = std::min(local, geometry.global_items);

  // --- occupancy -----------------------------------------------------------
  const int warps_per_block = static_cast<int>(
      (local + static_cast<std::size_t>(spec.warp_size) - 1) /
      static_cast<std::size_t>(spec.warp_size));
  int blocks_per_sm =
      std::min(spec.max_blocks_per_sm,
               std::max(1, spec.max_warps_per_sm / std::max(1, warps_per_block)));
  const std::size_t total_blocks =
      (geometry.global_items + local - 1) / local;

  // Fewer blocks than the machine can hold: spread them across SMs.
  const double blocks_per_sm_avail =
      static_cast<double>(total_blocks) / spec.num_sm;
  if (blocks_per_sm_avail < blocks_per_sm) {
    blocks_per_sm = std::max(1, static_cast<int>(std::ceil(blocks_per_sm_avail)));
  }
  const int resident_warps = blocks_per_sm * warps_per_block;
  r.resident_blocks = blocks_per_sm;
  r.resident_warps = resident_warps;
  r.rounds = std::max(
      1.0, std::ceil(static_cast<double>(total_blocks) /
                     (static_cast<double>(spec.num_sm) * blocks_per_sm)));

  const double n_warps = static_cast<double>(resident_warps);

  // --- per-warp instruction counts (one warp-inst covers warp_size items) --
  const double items_per_block = static_cast<double>(local);
  const double warp_occupancy =
      items_per_block / (warps_per_block * static_cast<double>(spec.warp_size));
  // Partially filled warps still issue full warp instructions; account by
  // inflating per-item work.
  const double eff = std::max(warp_occupancy, 1e-9);

  const double fp_insts = cost.fp_insts / eff;
  const double mem_insts = cost.mem_insts / eff;
  const double other_insts = cost.other_insts / eff;

  // --- compute cycles per warp ---------------------------------------------
  // A dependent chain stalls fp_latency cycles per instruction; with N warps
  // and `ilp` independent chains the scheduler hides latency, so effective
  // CPI = max(issue, fp_latency / (N * ilp)).
  const double hide = std::max(1.0, n_warps * std::max(1.0, cost.ilp));
  const double cpi_fp = std::max(spec.issue_cycles, spec.fp_latency / hide);
  const double comp_cycles =
      fp_insts * cpi_fp + other_insts * spec.issue_cycles;

  // --- memory cycles per warp ----------------------------------------------
  const double departure = cost.coalesced ? spec.departure_delay_coalesced
                                          : spec.departure_delay_uncoalesced;
  const double mem_cycles = mem_insts * spec.mem_latency;

  double exec_cycles = 0.0;
  if (mem_insts <= 0.0) {
    // Pure compute: warps pipeline perfectly; total = comp work of all warps
    // issued back-to-back, bounded below by one warp's latency chain.
    const double issue_bound =
        (fp_insts + other_insts) * spec.issue_cycles * n_warps;
    const double latency_bound =
        fp_insts * (spec.fp_latency / std::max(1.0, cost.ilp)) + other_insts;
    exec_cycles = std::max(issue_bound, latency_bound);
  } else {
    // Hong-Kim MWP/CWP.
    const double mwp_latency = spec.mem_latency / departure;
    const double bw_per_warp_gbs =
        (static_cast<double>(spec.warp_size) * cost.bytes_per_mem) /
        (spec.mem_latency / (spec.clock_ghz * 1e9)) / 1e9;
    const double mwp_bw =
        spec.mem_bandwidth_gbs / std::max(1e-9, bw_per_warp_gbs * spec.num_sm);
    r.mwp = std::min({mwp_latency, mwp_bw, n_warps});
    r.mwp = std::max(1.0, r.mwp);

    const double comp_per_mem = comp_cycles / mem_insts;
    r.cwp = std::min(n_warps, (mem_cycles + comp_cycles) / std::max(1.0, comp_cycles));

    if (r.mwp >= r.cwp && comp_cycles > 0.0) {
      // Computation-bound: memory fully hidden.
      exec_cycles = mem_cycles + comp_cycles * n_warps;
    } else {
      // Memory-bound: each group of MWP warps overlaps its memory time.
      exec_cycles =
          mem_cycles * (n_warps / r.mwp) + comp_per_mem * (r.mwp - 1.0) +
          comp_cycles;
    }
  }

  r.cycles_per_sm_round = exec_cycles;
  const double total_cycles = exec_cycles * r.rounds;
  r.seconds = total_cycles / (spec.clock_ghz * 1e9);

  const double total_flops = static_cast<double>(geometry.global_items) *
                             cost.fp_insts * cost.flops_per_fp;
  r.achieved_gflops = r.seconds > 0.0 ? total_flops / r.seconds / 1e9 : 0.0;
  return r;
}

double transfer_seconds(const GpuSpec& spec, std::size_t bytes) {
  return spec.pcie_latency_s +
         static_cast<double>(bytes) / (spec.pcie_bandwidth_gbs * 1e9);
}

}  // namespace mcl::gpusim
