// Analytical SIMT GPU timing model (Hong & Kim, ISCA'09 style — the paper's
// own reference [18]), parameterized as a GTX 580.
//
// The paper's GPU-side observations are first-order consequences of
// warp-level latency hiding:
//   - Fig 1: coalescing workitems starves the GPU of warps -> collapse;
//   - Fig 3/4: small workgroups cap resident warps per SM -> slow;
//   - Fig 6: with enough warps, intra-thread ILP is irrelevant -> flat line.
// This module computes kernel time from a per-workitem cost descriptor and
// the launch geometry using MWP/CWP (memory/computation warp parallelism).
// Kernels still execute *functionally* on the host (see ocl::SimGpuDevice);
// only the reported time comes from this model.
#pragma once

#include <cstddef>

namespace mcl::gpusim {

/// Hardware description. Defaults are irrelevant — use gtx580().
struct GpuSpec {
  int num_sm = 16;
  int warp_size = 32;
  int max_warps_per_sm = 48;
  int max_blocks_per_sm = 8;
  double clock_ghz = 1.544;        ///< shader clock
  double issue_cycles = 1.0;       ///< cycles to issue one warp instruction
  double fp_latency = 18.0;        ///< dependent-issue latency of FP pipe
  double mem_latency = 400.0;      ///< DRAM round trip (cycles)
  double departure_delay_coalesced = 4.0;    ///< cycles between mem warps
  double departure_delay_uncoalesced = 40.0;
  double mem_bandwidth_gbs = 192.4;
  double pcie_bandwidth_gbs = 6.0;  ///< host<->device copies
  double pcie_latency_s = 10e-6;

  /// NVIDIA GeForce GTX 580 (the paper's Table I GPU).
  [[nodiscard]] static GpuSpec gtx580() { return GpuSpec{}; }

  /// Peak single-precision Gflop/s (FMA counted as 2 flops, 32 cores/SM).
  [[nodiscard]] double peak_gflops() const {
    return num_sm * 32 * 2 * clock_ghz;
  }
};

/// Per-workitem dynamic cost of a kernel, as a compiler/profiler would
/// summarize it. Apps register a cost model producing this from their args.
struct KernelCost {
  double fp_insts = 0.0;       ///< FP warp-instructions per workitem
  double mem_insts = 0.0;      ///< memory warp-instructions per workitem
  double other_insts = 0.0;    ///< integer/control overhead per workitem
  double flops_per_fp = 1.0;   ///< 2.0 when fp_insts are FMAs
  double ilp = 1.0;            ///< independent dependence chains in the body
  double bytes_per_mem = 4.0;  ///< bytes moved per mem inst per thread
  bool coalesced = true;
};

struct LaunchGeometry {
  std::size_t global_items = 0;
  std::size_t local_items = 0;  ///< 0 = runtime picks (256)
};

/// Model outputs; seconds is what the device reports as kernel time.
struct SimResult {
  double seconds = 0.0;
  double cycles_per_sm_round = 0.0;
  int resident_blocks = 0;
  int resident_warps = 0;
  double mwp = 0.0;   ///< memory warp parallelism
  double cwp = 0.0;   ///< computation warp parallelism
  double rounds = 0.0;  ///< sequential batches of resident blocks per SM
  double achieved_gflops = 0.0;
};

/// Runs the analytical model. global_items == 0 yields zero time.
[[nodiscard]] SimResult simulate(const GpuSpec& spec, const KernelCost& cost,
                                 const LaunchGeometry& geometry);

/// PCIe transfer model for explicit copies to/from the simulated device.
[[nodiscard]] double transfer_seconds(const GpuSpec& spec, std::size_t bytes);

}  // namespace mcl::gpusim
