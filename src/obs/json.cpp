// Recursive-descent JSON parser for mclobs tooling.
#include "obs/json.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace mcl::obs::json {

namespace {

struct Parser {
  const char* p;
  const char* end;
  std::string error;

  void skip_ws() {
    while (p != end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r'))
      ++p;
  }

  bool fail(const std::string& msg) {
    if (error.empty()) {
      error = msg + " at offset " + std::to_string(offset());
    }
    return false;
  }

  [[nodiscard]] std::size_t offset() const {
    return static_cast<std::size_t>(p - begin);
  }
  const char* begin = nullptr;

  bool parse_value(Value& out) {
    skip_ws();
    if (p == end) return fail("unexpected end of input");
    switch (*p) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': {
        out.type = Type::String;
        return parse_string(out.string);
      }
      case 't':
        if (end - p >= 4 && std::strncmp(p, "true", 4) == 0) {
          out.type = Type::Bool;
          out.boolean = true;
          p += 4;
          return true;
        }
        return fail("bad literal");
      case 'f':
        if (end - p >= 5 && std::strncmp(p, "false", 5) == 0) {
          out.type = Type::Bool;
          out.boolean = false;
          p += 5;
          return true;
        }
        return fail("bad literal");
      case 'n':
        if (end - p >= 4 && std::strncmp(p, "null", 4) == 0) {
          out.type = Type::Null;
          p += 4;
          return true;
        }
        return fail("bad literal");
      default:
        return parse_number(out);
    }
  }

  bool parse_object(Value& out) {
    out.type = Type::Object;
    ++p;  // '{'
    skip_ws();
    if (p != end && *p == '}') {
      ++p;
      return true;
    }
    while (true) {
      skip_ws();
      if (p == end || *p != '"') return fail("expected object key");
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (p == end || *p != ':') return fail("expected ':'");
      ++p;
      auto child = std::make_shared<Value>();
      if (!parse_value(*child)) return false;
      out.object[key] = std::move(child);
      skip_ws();
      if (p == end) return fail("unterminated object");
      if (*p == ',') {
        ++p;
        continue;
      }
      if (*p == '}') {
        ++p;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(Value& out) {
    out.type = Type::Array;
    ++p;  // '['
    skip_ws();
    if (p != end && *p == ']') {
      ++p;
      return true;
    }
    while (true) {
      auto child = std::make_shared<Value>();
      if (!parse_value(*child)) return false;
      out.array.push_back(std::move(child));
      skip_ws();
      if (p == end) return fail("unterminated array");
      if (*p == ',') {
        ++p;
        continue;
      }
      if (*p == ']') {
        ++p;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string& out) {
    ++p;  // opening quote
    out.clear();
    while (p != end && *p != '"') {
      char c = *p++;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (p == end) return fail("unterminated escape");
      c = *p++;
      switch (c) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (end - p < 4) return fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = *p++;
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return fail("bad \\u escape");
          }
          // UTF-8 encode (no surrogate-pair handling; MiniCL output is
          // ASCII plus escaped control characters).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return fail("bad escape");
      }
    }
    if (p == end) return fail("unterminated string");
    ++p;  // closing quote
    return true;
  }

  bool parse_number(Value& out) {
    const char* start = p;
    if (p != end && *p == '-') ++p;
    while (p != end && (std::isdigit(static_cast<unsigned char>(*p)) != 0))
      ++p;
    bool integral = true;
    if (p != end && *p == '.') {
      integral = false;
      ++p;
      while (p != end && std::isdigit(static_cast<unsigned char>(*p)) != 0)
        ++p;
    }
    if (p != end && (*p == 'e' || *p == 'E')) {
      integral = false;
      ++p;
      if (p != end && (*p == '+' || *p == '-')) ++p;
      while (p != end && std::isdigit(static_cast<unsigned char>(*p)) != 0)
        ++p;
    }
    if (p == start) return fail("expected value");
    const std::string text(start, p);
    out.type = Type::Number;
    out.number = std::strtod(text.c_str(), nullptr);
    if (integral && text[0] != '-') {
      errno = 0;
      const unsigned long long v = std::strtoull(text.c_str(), nullptr, 10);
      if (errno == 0) {
        out.u64 = v;
        out.is_integer = true;
      }
    }
    return true;
  }
};

}  // namespace

const Value* Value::get(const std::string& key) const {
  if (type != Type::Object) return nullptr;
  const auto it = object.find(key);
  return it == object.end() ? nullptr : it->second.get();
}

std::uint64_t Value::get_u64(const std::string& key, std::uint64_t def) const {
  const Value* v = get(key);
  if (v == nullptr || !v->is_number()) return def;
  return v->is_integer ? v->u64 : static_cast<std::uint64_t>(v->number);
}

double Value::get_number(const std::string& key, double def) const {
  const Value* v = get(key);
  return (v != nullptr && v->is_number()) ? v->number : def;
}

std::string Value::get_string(const std::string& key,
                              const std::string& def) const {
  const Value* v = get(key);
  return (v != nullptr && v->is_string()) ? v->string : def;
}

ValuePtr parse(const std::string& text, std::string* error) {
  Parser parser;
  parser.begin = text.data();
  parser.p = text.data();
  parser.end = text.data() + text.size();
  auto root = std::make_shared<Value>();
  if (!parser.parse_value(*root)) {
    if (error != nullptr) *error = parser.error;
    return nullptr;
  }
  parser.skip_ws();
  if (parser.p != parser.end) {
    if (error != nullptr) *error = "trailing garbage after document";
    return nullptr;
  }
  return root;
}

ValuePtr parse_file(const std::string& path, std::string* error) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    if (error != nullptr) *error = "cannot open " + path;
    return nullptr;
  }
  std::ostringstream buf;
  buf << file.rdbuf();
  return parse(buf.str(), error);
}

}  // namespace mcl::obs::json
