// Minimal JSON reader for mclobs tooling (mclstat, tests). Parses the
// documents MiniCL itself writes (`.mclobs` dumps, BENCH_*.json) — strict
// enough to reject malformed output, small enough to stay dependency-free.
// Integer literals that fit a uint64 keep their exact value alongside the
// double, so 64-bit context ids round-trip losslessly.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace mcl::obs::json {

class Value;
using ValuePtr = std::shared_ptr<Value>;

enum class Type : std::uint8_t { Null, Bool, Number, String, Array, Object };

class Value {
 public:
  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::uint64_t u64 = 0;   ///< exact value when `is_integer`
  bool is_integer = false;
  std::string string;
  std::vector<ValuePtr> array;
  std::map<std::string, ValuePtr> object;  // sorted; fine for tooling

  [[nodiscard]] bool is_null() const noexcept { return type == Type::Null; }
  [[nodiscard]] bool is_object() const noexcept {
    return type == Type::Object;
  }
  [[nodiscard]] bool is_array() const noexcept { return type == Type::Array; }
  [[nodiscard]] bool is_number() const noexcept {
    return type == Type::Number;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type == Type::String;
  }

  /// Object member, or nullptr when absent / not an object.
  [[nodiscard]] const Value* get(const std::string& key) const;
  /// Member's exact uint64 (fallback: truncated double); `def` when absent.
  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t def = 0) const;
  [[nodiscard]] double get_number(const std::string& key,
                                  double def = 0.0) const;
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& def = "") const;
};

/// Parses a complete document. Returns nullptr on any syntax error (and
/// writes a short description into *error when given).
[[nodiscard]] ValuePtr parse(const std::string& text,
                             std::string* error = nullptr);

/// Reads and parses a file; nullptr on IO or syntax error.
[[nodiscard]] ValuePtr parse_file(const std::string& path,
                                  std::string* error = nullptr);

}  // namespace mcl::obs::json
