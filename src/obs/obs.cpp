// mclobs implementation: the flight-recorder ring, context minting, the
// MCL_OBS / MCL_OBS_INJECT environment hooks, and the `.mclobs` dump writer.
#include "obs/obs.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <utility>

#include "prof/metrics.hpp"
#include "trace/trace.hpp"

namespace mcl::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}

namespace {

std::atomic<std::uint64_t> g_next_seq{1};

struct SectionEntry {
  int token = 0;
  std::string name;
  SectionFn fn;
};

// Recorder state. One mutex for the ring/config/rate-limit, a second for
// the section registry so a dump can run section callbacks (which take
// subsystem locks) without stalling record() on hot paths.
struct State {
  std::mutex mu;
  std::vector<Record> ring{std::vector<Record>(kDefaultRingCapacity)};
  std::size_t capacity = kDefaultRingCapacity;
  std::uint64_t appended = 0;  // total records ever; ring holds the tail
  CompleteSink complete_sink;
  std::string dump_dir;
  std::uint32_t max_dumps = 8;
  std::uint64_t min_dump_interval_ns = 1'000'000'000;  // 1 s
  std::uint32_t dumps_written = 0;
  std::uint64_t last_dump_ns = 0;
  std::uint64_t last_drop_check = 0;   // trace::dropped_events() at last check
  std::uint64_t completes_since_check = 0;

  std::mutex sections_mu;
  std::vector<SectionEntry> sections;
  int next_token = 1;
};

State& state() {
  // Leaked on purpose: atexit-time anomaly paths may outlive non-leaked
  // static destruction (same pattern as the trace session).
  static State* const s = new State;
  return *s;
}

void append_locked(State& s, const Record& r) {
  s.ring[s.appended % s.capacity] = r;
  ++s.appended;
}

void json_escape(std::string& out, const char* p) {
  for (; *p != '\0'; ++p) {
    const char c = *p;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_record(std::string& out, const Record& r) {
  out += "{\"ts_ns\":";
  append_u64(out, r.ts_ns);
  out += ",\"ctx\":";
  append_u64(out, r.ctx);
  out += ",\"tenant\":";
  append_u64(out, r.tenant);
  out += ",\"kind\":\"";
  out += kind_name(r.kind);
  out += "\",\"status\":\"";
  json_escape(out, std::string(core::to_string(r.status)).c_str());
  out += "\",\"detail\":";
  if (r.detail != nullptr) {
    out += '"';
    json_escape(out, r.detail);
    out += '"';
  } else {
    out += "null";
  }
  out += ",\"args\":[";
  for (std::size_t i = 0; i < 6; ++i) {
    if (i > 0) out += ',';
    append_u64(out, r.args[i]);
  }
  out += "]}";
}

// Armed fault, cached from MCL_OBS_INJECT on first use; -1 = not read yet.
std::atomic<int> g_inject{-1};

std::uint64_t sub_sat(std::uint64_t a, std::uint64_t b) noexcept {
  return a > b ? a - b : 0;
}

}  // namespace

const char* kind_name(Kind k) noexcept {
  switch (k) {
    case Kind::Submit: return "submit";
    case Kind::Forward: return "forward";
    case Kind::Complete: return "complete";
    case Kind::Timeout: return "timeout";
    case Kind::Cancel: return "cancel";
    case Kind::Error: return "error";
    case Kind::Quarantine: return "quarantine";
    case Kind::DropBurst: return "drop_burst";
    case Kind::Inject: return "inject";
    case Kind::Mark: return "mark";
  }
  return "?";
}

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t mint_context(std::uint32_t tenant_id) noexcept {
  const std::uint64_t seq =
      g_next_seq.fetch_add(1, std::memory_order_relaxed);
  return (static_cast<std::uint64_t>(tenant_id) << 48) |
         (seq & ((std::uint64_t{1} << 48) - 1));
}

std::uint64_t ensure_context() noexcept {
  const std::uint64_t cur = trace::current_context();
  return cur != 0 ? cur : mint_context(0);
}

PathSegments decompose(const RequestTimes& t) noexcept {
  PathSegments out;
  out.is_kernel = t.is_kernel;
  // Direct-enqueue callers only have ProfilingInfo; treat the command's
  // enqueue as both submit and forward so pre-queue segments are empty.
  const std::uint64_t submit = t.submit_ns != 0 ? t.submit_ns : t.queued_ns;
  const std::uint64_t forward = t.forward_ns != 0 ? t.forward_ns : t.queued_ns;
  const std::uint64_t done = t.done_ns != 0 ? t.done_ns : t.ended_ns;
  out.total_ns = sub_sat(done, submit);

  const std::uint64_t pre_forward = sub_sat(forward, submit);
  const std::uint64_t serve_dep =
      std::min(pre_forward, sub_sat(t.dep_ready_ns, submit));
  out.admission_ns = pre_forward - serve_dep;
  out.dependency_ns = serve_dep + sub_sat(t.submitted_ns, t.queued_ns);
  out.queue_ns = sub_sat(t.started_ns, t.submitted_ns);
  out.exec_ns = sub_sat(t.ended_ns, t.started_ns);
  return out;
}

void note_request_complete(std::uint64_t ctx, std::uint32_t tenant,
                           const PathSegments& segs, core::Status status) {
  if (!enabled()) return;
  Record r;
  r.ts_ns = trace::clock_ns();
  r.ctx = ctx;
  r.tenant = tenant;
  r.kind = Kind::Complete;
  r.status = status;
  r.args[0] = segs.admission_ns;
  r.args[1] = segs.dependency_ns;
  r.args[2] = segs.queue_ns;
  r.args[3] = segs.exec_ns;
  r.args[4] = segs.total_ns;
  r.args[5] = segs.is_kernel ? 1 : 0;

  bool drop_burst = false;
  std::uint64_t drop_delta = 0;
  {
    State& s = state();
    std::lock_guard lock(s.mu);
    append_locked(s, r);
    if (s.complete_sink) s.complete_sink(r);
    // Drop-burst detector: poll the tracer's drop counter every 256
    // completions (dropped_events() takes the trace session lock).
    if (++s.completes_since_check >= 256) {
      s.completes_since_check = 0;
      const std::uint64_t now_dropped = trace::dropped_events();
      drop_delta = sub_sat(now_dropped, s.last_drop_check);
      s.last_drop_check = now_dropped;
      drop_burst = drop_delta >= kDropBurstThreshold;
    }
  }
  if (prof::enabled()) {
    static const prof::Histogram h_admission =
        prof::histogram("obs.admission_ns");
    static const prof::Histogram h_dependency =
        prof::histogram("obs.dependency_ns");
    static const prof::Histogram h_queue = prof::histogram("obs.queue_ns");
    static const prof::Histogram h_kernel = prof::histogram("obs.kernel_ns");
    static const prof::Histogram h_transfer =
        prof::histogram("obs.transfer_ns");
    static const prof::Histogram h_total = prof::histogram("obs.total_ns");
    h_admission.record(segs.admission_ns);
    h_dependency.record(segs.dependency_ns);
    h_queue.record(segs.queue_ns);
    (segs.is_kernel ? h_kernel : h_transfer).record(segs.exec_ns);
    h_total.record(segs.total_ns);
  }
  if (drop_burst) {
    anomaly(Kind::DropBurst, ctx, "trace ring drop burst",
            core::Status::Success, drop_delta);
  }
}

void set_complete_sink(CompleteSink sink) {
  State& s = state();
  std::lock_guard lock(s.mu);
  s.complete_sink = std::move(sink);
}

void record(const Record& r) {
  if (!enabled()) return;
  State& s = state();
  std::lock_guard lock(s.mu);
  append_locked(s, r);
}

std::vector<Record> snapshot_records() {
  State& s = state();
  std::lock_guard lock(s.mu);
  std::vector<Record> out;
  const std::uint64_t n = std::min<std::uint64_t>(s.appended, s.capacity);
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = s.appended - n; i < s.appended; ++i) {
    out.push_back(s.ring[i % s.capacity]);
  }
  return out;
}

std::uint64_t total_recorded() {
  State& s = state();
  std::lock_guard lock(s.mu);
  return s.appended;
}

void set_ring_capacity(std::size_t capacity) {
  State& s = state();
  std::lock_guard lock(s.mu);
  s.capacity = std::max<std::size_t>(capacity, 1);
  s.ring.assign(s.capacity, Record{});
  s.appended = 0;
}

void reset() {
  State& s = state();
  std::lock_guard lock(s.mu);
  s.ring.assign(s.capacity, Record{});
  s.appended = 0;
  s.dumps_written = 0;
  s.last_dump_ns = 0;
  s.last_drop_check = trace::dropped_events();
  s.completes_since_check = 0;
}

void anomaly(Kind kind, std::uint64_t ctx, const char* detail,
             core::Status status, std::uint64_t a0) {
  if (!enabled()) return;
  Record r;
  r.ts_ns = trace::clock_ns();
  r.ctx = ctx;
  r.tenant = context_tenant(ctx);
  r.kind = kind;
  r.status = status;
  r.detail = detail;
  r.args[0] = a0;
  bool allow = false;
  {
    State& s = state();
    std::lock_guard lock(s.mu);
    append_locked(s, r);
    if (!s.dump_dir.empty() && s.dumps_written < s.max_dumps &&
        (s.last_dump_ns == 0 ||
         r.ts_ns - s.last_dump_ns >= s.min_dump_interval_ns)) {
      allow = true;
      ++s.dumps_written;
      s.last_dump_ns = r.ts_ns;
    }
  }
  if (allow) dump_now(kind, ctx, detail);
}

void set_dump_dir(const std::string& dir) {
  State& s = state();
  std::lock_guard lock(s.mu);
  s.dump_dir = dir;
}

std::string dump_dir() {
  State& s = state();
  std::lock_guard lock(s.mu);
  return s.dump_dir;
}

void set_dump_limit(std::uint32_t max_dumps, std::uint64_t min_interval_ns) {
  State& s = state();
  std::lock_guard lock(s.mu);
  s.max_dumps = max_dumps;
  s.min_dump_interval_ns = min_interval_ns;
}

std::string snapshot_json(Kind trigger_kind, std::uint64_t trigger_ctx,
                          const char* detail) {
  const std::vector<Record> records = snapshot_records();
  std::uint64_t appended = 0;
  {
    State& s = state();
    std::lock_guard lock(s.mu);
    appended = s.appended;
  }

  std::string out;
  out.reserve(records.size() * 160 + 4096);
  out += "{\"mclobs\":1,\"clock\":\"steady_clock\",\"trigger\":{\"kind\":\"";
  out += kind_name(trigger_kind);
  out += "\",\"ctx\":";
  append_u64(out, trigger_ctx);
  out += ",\"tenant\":";
  append_u64(out, context_tenant(trigger_ctx));
  out += ",\"ts_ns\":";
  append_u64(out, trace::clock_ns());
  out += ",\"detail\":";
  if (detail != nullptr) {
    out += '"';
    json_escape(out, detail);
    out += '"';
  } else {
    out += "null";
  }
  out += "},\"total_recorded\":";
  append_u64(out, appended);
  out += ",\"events\":[";
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (i > 0) out += ',';
    out += '\n';
    append_record(out, records[i]);
  }
  out += "],\"related_events\":[";
  if (trigger_ctx != 0) {
    bool first = true;
    for (const Record& r : records) {
      if (r.ctx != trigger_ctx) continue;
      if (!first) out += ',';
      first = false;
      out += '\n';
      append_record(out, r);
    }
  }
  out += "],\"metrics\":";
  out += prof::metrics_json(prof::snapshot());
  out += ",\"sections\":{";
  {
    State& s = state();
    std::lock_guard lock(s.sections_mu);
    bool first = true;
    for (const SectionEntry& e : s.sections) {
      if (!first) out += ',';
      first = false;
      out += "\n\"";
      json_escape(out, e.name.c_str());
      out += "\":";
      out += e.fn();
    }
  }
  out += "}}\n";
  return out;
}

std::string dump_now(Kind trigger_kind, std::uint64_t trigger_ctx,
                     const char* detail, const std::string& path) {
  std::string target = path;
  if (target.empty()) {
    std::string dir;
    std::uint32_t seq = 0;
    {
      State& s = state();
      std::lock_guard lock(s.mu);
      dir = s.dump_dir;
      seq = s.dumps_written;
    }
    if (dir.empty()) return "";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    target = dir + "/mclobs-" + kind_name(trigger_kind) + "-" +
             std::to_string(seq) + ".mclobs";
  }
  const std::string doc = snapshot_json(trigger_kind, trigger_ctx, detail);
  std::ofstream file(target, std::ios::binary);
  if (!file) return "";
  file.write(doc.data(), static_cast<std::streamsize>(doc.size()));
  if (!file) return "";
  std::fprintf(stderr, "mclobs: wrote %s (trigger %s, ctx %llu)\n",
               target.c_str(), kind_name(trigger_kind),
               static_cast<unsigned long long>(trigger_ctx));
  return target;
}

int register_section(const std::string& name, SectionFn fn) {
  State& s = state();
  std::lock_guard lock(s.sections_mu);
  const int token = s.next_token++;
  s.sections.push_back({token, name, std::move(fn)});
  return token;
}

void unregister_section(int token) {
  State& s = state();
  std::lock_guard lock(s.sections_mu);
  std::erase_if(s.sections,
                [token](const SectionEntry& e) { return e.token == token; });
}

Inject parse_inject(const char* value) noexcept {
  if (value == nullptr) return Inject::None;
  if (std::strcmp(value, "hang") == 0) return Inject::Hang;
  if (std::strcmp(value, "error") == 0) return Inject::Error;
  return Inject::None;
}

Inject inject() noexcept {
  int v = g_inject.load(std::memory_order_relaxed);
  if (v < 0) {
    v = static_cast<int>(parse_inject(std::getenv("MCL_OBS_INJECT")));
    g_inject.store(v, std::memory_order_relaxed);
  }
  return static_cast<Inject>(v);
}

void set_inject(Inject mode) {
  g_inject.store(static_cast<int>(mode), std::memory_order_relaxed);
}

namespace {

// MCL_OBS=1 arms the recorder; MCL_OBS=<dir> also enables anomaly dumps.
struct EnvAutoStart {
  EnvAutoStart() {
    const char* v = std::getenv("MCL_OBS");
    if (v == nullptr || *v == '\0' || std::strcmp(v, "0") == 0) return;
    if (std::strcmp(v, "1") != 0) set_dump_dir(v);
    set_enabled(true);
  }
};
const EnvAutoStart g_env_autostart;

}  // namespace

}  // namespace mcl::obs
