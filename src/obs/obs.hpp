// mclobs — causal observability for MiniCL: context ids, a critical-path
// analyzer, and an always-on anomaly flight recorder.
//
// Model: a 64-bit context id (tenant in the top 16 bits, a process-wide
// sequence below) is minted at mclserve admission — or lazily at direct
// enqueue for non-serve users — and carried on the thread-local slot that
// mcltrace already stamps into every event (trace::current_context). On top
// of that identity sit three pieces:
//
//  * decompose(): turns the timestamps a request already produces
//    (serve submit/forward, AsyncEvent ProfilingInfo, completion) into
//    admission / dependency / queue / kernel-or-transfer segments whose sum
//    equals the measured end-to-end latency by construction. All inputs
//    share the core::steady_now_ns epoch, so the arithmetic is exact.
//  * a flight recorder: a bounded mutex-guarded ring of Records that keeps
//    the *most recent* context-annotated lifecycle events (oldest entries
//    are overwritten, never the newest — postmortems want the tail).
//  * anomaly(): records a trigger (ticket timeout/cancel, Status::Error,
//    tuner quarantine, trace-drop burst) and — when a dump directory is
//    configured and the rate limit allows — writes a self-contained
//    `.mclobs` JSON snapshot: recent events, the mclprof metrics snapshot,
//    and every registered section (serve queue state, tuner incumbents).
//
// Cost when observability is off: every instrumentation site performs
// exactly one relaxed atomic load (enabled()) and branches out — the same
// budget as MCL_TRACE_SCOPE, guarded by bench/gbench_micro (BM_ObsDisabled).
//
// Dependency rule: obs sits above core/trace/prof only. ocl, serve, and
// tune link *against* obs and call into it; obs reaches back into them only
// through the opaque section callbacks they register. That keeps the
// library DAG acyclic and lets decompose() stay a pure function over plain
// timestamps.
//
// Environment: MCL_OBS=1 enables recording; MCL_OBS=<dir> enables recording
// and writes anomaly dumps into <dir>. MCL_OBS_INJECT=hang|error arms a
// fault for the flight-recorder tests (see docs/observability.md).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/error.hpp"

namespace mcl::obs {

/// Flight-recorder ring capacity (records, not bytes). Overridable for
/// tests via set_ring_capacity().
inline constexpr std::size_t kDefaultRingCapacity = std::size_t{1} << 14;

/// A trace-drop delta at least this large between two recorder checks is an
/// anomaly (DropBurst).
inline constexpr std::uint64_t kDropBurstThreshold = 1024;

/// Lifecycle / anomaly record kinds. The first three narrate a request's
/// life; the rest are anomaly triggers.
enum class Kind : std::uint8_t {
  Submit,     ///< admitted into a serve session (ctx minted here)
  Forward,    ///< scheduler dispatched the request onto a device queue
  Complete,   ///< terminal; args hold the critical-path segments
  Timeout,    ///< ticket deadline expired before completion
  Cancel,     ///< ticket explicitly cancelled
  Error,      ///< a command finalized with Status::Error propagation
  Quarantine, ///< the tuner quarantined a kernel's candidate set
  DropBurst,  ///< the tracer dropped >= kDropBurstThreshold events
  Inject,     ///< a fault armed via MCL_OBS_INJECT fired
  Mark,       ///< free-form marker (manual dumps, tests)
};

/// Stable lower-case name for a kind ("submit", "drop_burst", ...).
[[nodiscard]] const char* kind_name(Kind k) noexcept;

/// One flight-recorder entry. `detail` must outlive the process (string
/// literal or trace::intern()ed). For Kind::Complete, args[0..4] are the
/// admission/dependency/queue/exec/total segment durations in ns and
/// args[5] is 1 for kernel work, 0 for a transfer.
struct Record {
  std::uint64_t ts_ns = 0;
  std::uint64_t ctx = 0;
  std::uint32_t tenant = 0;
  Kind kind = Kind::Mark;
  core::Status status = core::Status::Success;
  const char* detail = nullptr;
  std::uint64_t args[6] = {0, 0, 0, 0, 0, 0};
};

namespace detail {
extern std::atomic<bool> g_enabled;
}

/// True while the flight recorder is armed. The only cost paid at an
/// instrumentation site when observability is off.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Arms / disarms recording. MCL_OBS=... calls this before main().
void set_enabled(bool on);

// --- context ids -------------------------------------------------------------

/// Mints a fresh context id: (tenant_id << 48) | sequence. tenant_id 0 is
/// the anonymous/direct-enqueue tenant. Never returns 0.
[[nodiscard]] std::uint64_t mint_context(std::uint32_t tenant_id) noexcept;

/// The calling thread's current context (trace::current_context), or a
/// freshly minted anonymous id when none is set. Used at direct enqueue so
/// every command is attributable even outside mclserve.
[[nodiscard]] std::uint64_t ensure_context() noexcept;

/// Tenant id packed into a context id.
[[nodiscard]] inline std::uint32_t context_tenant(std::uint64_t ctx) noexcept {
  return static_cast<std::uint32_t>(ctx >> 48);
}

// --- critical-path decomposition --------------------------------------------

/// Timestamps a request accumulates on its way through the stack, all on
/// the core::steady_now_ns epoch. Zeros are allowed anywhere and clamp to
/// empty segments, so direct-enqueue callers can fill only the
/// ProfilingInfo fields.
struct RequestTimes {
  std::uint64_t submit_ns = 0;     ///< serve admission (Session::submit)
  std::uint64_t forward_ns = 0;    ///< scheduler enqueued onto the device
  std::uint64_t dep_ready_ns = 0;  ///< last serve-level dependency finished
  std::uint64_t queued_ns = 0;     ///< ProfilingInfo: command enqueued
  std::uint64_t submitted_ns = 0;  ///< ProfilingInfo: wait-list resolved
  std::uint64_t started_ns = 0;    ///< ProfilingInfo: execution began
  std::uint64_t ended_ns = 0;      ///< ProfilingInfo: execution finished
  std::uint64_t done_ns = 0;       ///< completion observed (ticket terminal)
  bool is_kernel = true;           ///< kernel launch vs transfer
};

/// Critical-path segments of one request. admission + dependency + queue +
/// exec <= total; the (small) remainder is completion-callback dispatch.
struct PathSegments {
  std::uint64_t admission_ns = 0;   ///< waiting for WFQ/admission to forward
  std::uint64_t dependency_ns = 0;  ///< blocked on wait-list dependencies
  std::uint64_t queue_ns = 0;       ///< dispatched, waiting for a worker
  std::uint64_t exec_ns = 0;        ///< kernel or transfer execution
  std::uint64_t total_ns = 0;       ///< done - submit (end-to-end latency)
  bool is_kernel = true;

  [[nodiscard]] std::uint64_t named_sum() const noexcept {
    return admission_ns + dependency_ns + queue_ns + exec_ns;
  }
};

/// Pure arithmetic over RequestTimes; saturating, never throws.
/// Serve-level dependency wait (dep_ready - submit, clamped into the
/// pre-forward window) and queue-level wait-list wait (submitted - queued)
/// both count as dependency_ns; admission_ns is the pre-forward remainder.
[[nodiscard]] PathSegments decompose(const RequestTimes& t) noexcept;

/// Records a Kind::Complete entry and feeds the obs.* histograms
/// (obs.admission_ns, obs.dependency_ns, obs.queue_ns, obs.kernel_ns /
/// obs.transfer_ns, obs.total_ns — recorded when mclprof is enabled).
/// Also runs the trace-drop-burst detector. Call at lock-free sites only:
/// an armed anomaly may dump, and dump sections take subsystem locks.
void note_request_complete(std::uint64_t ctx, std::uint32_t tenant,
                           const PathSegments& segs, core::Status status);

/// Optional tee of every Kind::Complete record, for exact (non-bucketed)
/// percentile work by harnesses like serve_load --obs. Called under the
/// recorder mutex; keep it cheap. Pass nullptr to clear.
using CompleteSink = std::function<void(const Record&)>;
void set_complete_sink(CompleteSink sink);

// --- flight recorder ---------------------------------------------------------

/// Appends to the ring (no-op when disabled). Oldest entries are
/// overwritten once the ring is full — the recorder keeps the recent tail.
void record(const Record& r);

/// Chronological copy of the ring contents.
[[nodiscard]] std::vector<Record> snapshot_records();

/// Records ever appended (>= snapshot_records().size()).
[[nodiscard]] std::uint64_t total_recorded();

/// Tests: replaces the ring with an empty one of the given capacity.
void set_ring_capacity(std::size_t capacity);

/// Tests: clears the ring, counters, and dump rate-limit state (sections
/// and configuration survive).
void reset();

// --- anomalies and dumps -----------------------------------------------------

/// Records an anomaly and, when a dump directory is set and the rate limit
/// allows, writes a `.mclobs` snapshot triggered by it. Must only be called
/// while holding no subsystem lock that a dump section could take (server,
/// tuner): dumps run inline on the calling thread.
void anomaly(Kind kind, std::uint64_t ctx, const char* detail,
             core::Status status = core::Status::Success,
             std::uint64_t a0 = 0);

/// Where anomaly dumps land ("" disables dumping; the default). The
/// directory is created on demand.
void set_dump_dir(const std::string& dir);
[[nodiscard]] std::string dump_dir();

/// At most `max_dumps` dumps per process, spaced >= min_interval_ns apart.
void set_dump_limit(std::uint32_t max_dumps, std::uint64_t min_interval_ns);

/// The `.mclobs` document for a hypothetical trigger: ring contents,
/// trigger-related events, mclprof metrics, registered sections.
[[nodiscard]] std::string snapshot_json(Kind trigger_kind,
                                        std::uint64_t trigger_ctx,
                                        const char* detail);

/// Unconditionally writes a snapshot (ignores the rate limit, still needs a
/// dump dir unless `path` is given). Returns the written path, "" on
/// failure.
std::string dump_now(Kind trigger_kind, std::uint64_t trigger_ctx,
                     const char* detail, const std::string& path = "");

/// Registers a named dump section; fn returns a JSON *value* spliced
/// verbatim into the dump's "sections" object. Returns a token for
/// unregister_section. fn may take subsystem locks (see anomaly()).
using SectionFn = std::function<std::string()>;
int register_section(const std::string& name, SectionFn fn);
void unregister_section(int token);

// --- fault injection ---------------------------------------------------------

enum class Inject : std::uint8_t {
  None,
  Hang,   ///< mclserve parks the first eligible request forever
  Error,  ///< mclserve fails the first forwarded request
};

/// Cached MCL_OBS_INJECT value (or a set_inject override).
[[nodiscard]] Inject inject() noexcept;
/// Tests: overrides the armed fault.
void set_inject(Inject mode);
/// Parses "hang"/"error"/anything-else (exposed for tests).
[[nodiscard]] Inject parse_inject(const char* value) noexcept;

}  // namespace mcl::obs
