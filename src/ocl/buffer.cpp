#include "ocl/buffer.hpp"

#include <cstring>
#include <new>

namespace mcl::ocl {

namespace {

bool exactly_one_access_flag(MemFlags f) {
  const int n = (has_flag(f, MemFlags::ReadWrite) ? 1 : 0) +
                (has_flag(f, MemFlags::ReadOnly) ? 1 : 0) +
                (has_flag(f, MemFlags::WriteOnly) ? 1 : 0);
  return n <= 1;  // zero means the ReadWrite default
}

}  // namespace

Buffer::Buffer(MemFlags flags, std::size_t bytes, void* host_ptr)
    : flags_(flags), bytes_(bytes) {
  core::check(bytes > 0, core::Status::InvalidBufferSize,
              "buffer size must be nonzero");
  core::check(exactly_one_access_flag(flags), core::Status::InvalidMemFlags,
              "at most one of ReadWrite/ReadOnly/WriteOnly");
  const bool use_host = has_flag(flags, MemFlags::UseHostPtr);
  const bool copy_host = has_flag(flags, MemFlags::CopyHostPtr);
  core::check(!(use_host && copy_host), core::Status::InvalidMemFlags,
              "UseHostPtr and CopyHostPtr are mutually exclusive");
  core::check((host_ptr != nullptr) == (use_host || copy_host),
              core::Status::InvalidMemFlags,
              "host_ptr must be given exactly when UseHostPtr/CopyHostPtr is set");

  if (use_host) {
    data_ = host_ptr;
    return;
  }
  owned_.reset(static_cast<std::byte*>(
      ::operator new[](bytes, std::align_val_t{64})));
  data_ = owned_.get();
  if (copy_host) {
    std::memcpy(data_, host_ptr, bytes);
  } else {
    std::memset(data_, 0, bytes);
  }
}

Buffer Buffer::sub_buffer(std::size_t offset, std::size_t bytes) {
  core::check(bytes > 0 && offset + bytes <= bytes_,
              core::Status::InvalidBufferSize,
              "sub-buffer region exceeds parent");
  Buffer sub(flags_ & ~(MemFlags::UseHostPtr | MemFlags::CopyHostPtr),
             static_cast<std::byte*>(data_) + offset, bytes, this);
  return sub;
}

Buffer::Buffer(MemFlags flags, std::byte* view, std::size_t bytes,
               const Buffer* parent)
    : flags_(flags), bytes_(bytes), data_(view), parent_(parent) {}

}  // namespace mcl::ocl
