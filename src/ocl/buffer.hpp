// Memory objects (clCreateBuffer analogue).
//
// Allocation semantics mirror what the paper measures on a CPU device:
//  - default ("device") allocation and CL_MEM_ALLOC_HOST_PTR ("pinned host")
//    allocation are both plain DRAM on a CPU — the flag is recorded, both
//    paths allocate the same way, and benchmarks confirm the paper's finding
//    that the location flag does not change performance;
//  - CL_MEM_USE_HOST_PTR wraps caller memory (zero-copy);
//  - access flags (READ_ONLY/WRITE_ONLY/READ_WRITE) describe kernel-side
//    access and are validated when set as kernel args.
#pragma once

#include <cstddef>
#include <memory>

#include "ocl/types.hpp"

namespace mcl::ocl {

class Buffer {
 public:
  /// Creates a buffer of `bytes` bytes. `host_ptr` is required for
  /// UseHostPtr/CopyHostPtr and forbidden otherwise (as in OpenCL).
  Buffer(MemFlags flags, std::size_t bytes, void* host_ptr = nullptr);

  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;
  Buffer(Buffer&&) noexcept = default;
  Buffer& operator=(Buffer&&) noexcept = default;

  [[nodiscard]] std::size_t size() const noexcept { return bytes_; }
  [[nodiscard]] MemFlags flags() const noexcept { return flags_; }

  /// Whether kernels may read / write this object.
  [[nodiscard]] bool kernel_readable() const noexcept {
    return !has_flag(flags_, MemFlags::WriteOnly);
  }
  [[nodiscard]] bool kernel_writable() const noexcept {
    return !has_flag(flags_, MemFlags::ReadOnly);
  }
  /// True when mapping can return the canonical pointer without a copy
  /// (always on the CPU device; the distinction matters for SimulatedGpu).
  [[nodiscard]] bool host_visible() const noexcept {
    return has_flag(flags_, MemFlags::AllocHostPtr) ||
           has_flag(flags_, MemFlags::UseHostPtr);
  }

  /// The device-side storage (what kernels dereference).
  [[nodiscard]] void* device_ptr() noexcept { return data_; }
  [[nodiscard]] const void* device_ptr() const noexcept { return data_; }

  template <typename T>
  [[nodiscard]] T* as() noexcept {
    return static_cast<T*>(data_);
  }
  template <typename T>
  [[nodiscard]] const T* as() const noexcept {
    return static_cast<const T*>(data_);
  }

  /// clCreateSubBuffer analogue: a non-owning view of [offset, offset+bytes)
  /// sharing this buffer's storage. The parent must outlive the sub-buffer.
  /// Access flags are inherited unless narrowed via `flags`.
  [[nodiscard]] Buffer sub_buffer(std::size_t offset, std::size_t bytes);
  [[nodiscard]] bool is_sub_buffer() const noexcept { return parent_ != nullptr; }
  [[nodiscard]] const Buffer* parent() const noexcept { return parent_; }

  /// Map bookkeeping (used by the queue to validate unmap calls).
  void note_mapped() noexcept { ++map_count_; }
  bool note_unmapped() noexcept {
    if (map_count_ == 0) return false;
    --map_count_;
    return true;
  }
  [[nodiscard]] int map_count() const noexcept { return map_count_; }

 private:
  /// Sub-buffer view constructor.
  Buffer(MemFlags flags, std::byte* view, std::size_t bytes,
         const Buffer* parent);

  struct AlignedFree {
    void operator()(void* p) const noexcept { ::operator delete[](p, std::align_val_t{64}); }
  };

  MemFlags flags_{MemFlags::ReadWrite};
  std::size_t bytes_ = 0;
  std::unique_ptr<std::byte[], AlignedFree> owned_;
  void* data_ = nullptr;  ///< owned_, the wrapped host pointer, or a view
  const Buffer* parent_ = nullptr;  ///< non-null for sub-buffers
  int map_count_ = 0;
};

}  // namespace mcl::ocl
