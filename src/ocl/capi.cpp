// Implementation of the MiniCL C API (mcl.h) over the C++ runtime.
#include "ocl/mcl.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

#include "ocl/cl_status.hpp"
#include "ocl/platform.hpp"
#include "ocl/queue.hpp"
#include "prof/metrics.hpp"
#include "prof/profiler.hpp"
#include "trace/trace.hpp"
#include "tune/tune.hpp"

namespace {

using namespace mcl;

// Handle object definitions: each C handle owns (or references) the C++
// object behind it. Names must match the forward declarations in mcl.h.
struct LiveHandles {
  std::mutex mutex;
  std::unordered_set<const void*> mems;

  static LiveHandles& instance() {
    static LiveHandles handles;
    return handles;
  }
  void add(const void* h) {
    std::lock_guard lock(mutex);
    mems.insert(h);
  }
  void remove(const void* h) {
    std::lock_guard lock(mutex);
    mems.erase(h);
  }
  bool contains(const void* h) {
    std::lock_guard lock(mutex);
    return mems.count(h) != 0;
  }
};

mcl_int status_to_code(core::Status s) {
  // One shared Status -> CL-code table serves this API and the CL/cl.h shim
  // (the MCL_* constants use the OpenCL numeric values); see cl_status.hpp.
  return static_cast<mcl_int>(mcl::ocl::status_to_cl_code(s));
}

/// Runs fn, translating MiniCL exceptions into C error codes.
template <typename Fn>
mcl_int guarded(Fn&& fn) {
  try {
    fn();
    return MCL_SUCCESS;
  } catch (const core::Error& e) {
    return status_to_code(e.status());
  } catch (...) {
    return MCL_INVALID_VALUE;
  }
}

void set_err(mcl_int* errcode_ret, mcl_int code) {
  if (errcode_ret != nullptr) *errcode_ret = code;
}

}  // namespace

// Handle layouts (C-visible struct tags from mcl.h).
struct mcl_device_obj {
  mcl::ocl::Device* device;  // global singleton; not owned
};
struct mcl_context_obj {
  std::unique_ptr<mcl::ocl::Context> context;
};
struct mcl_queue_obj {
  std::unique_ptr<mcl::ocl::CommandQueue> queue;
};
struct mcl_mem_obj {
  std::unique_ptr<mcl::ocl::Buffer> buffer;
};
struct mcl_kernel_obj {
  std::unique_ptr<mcl::ocl::Kernel> kernel;
};
struct mcl_event_obj {
  mcl::ocl::AsyncEventPtr event;
};

namespace {

/// Collects a C wait list into the C++ vector form; returns false (and sets
/// the caller's error) for a malformed list.
bool collect_wait_list(mcl_uint num_events, const mcl_event* event_wait_list,
                       std::vector<mcl::ocl::AsyncEventPtr>& out) {
  if ((num_events == 0) != (event_wait_list == nullptr)) return false;
  out.reserve(num_events);
  for (mcl_uint i = 0; i < num_events; ++i) {
    if (event_wait_list[i] == nullptr || !event_wait_list[i]->event) {
      return false;
    }
    out.push_back(event_wait_list[i]->event);
  }
  return true;
}

/// Wraps an AsyncEventPtr into a C handle if the caller asked for one.
void export_event(mcl::ocl::AsyncEventPtr ev, mcl_event* event_out) {
  if (event_out != nullptr) {
    *event_out = new mcl_event_obj{std::move(ev)};
  }
}

}  // namespace

extern "C" {

mcl_int mclGetDeviceIDs(mcl_bitfield device_type, mcl_uint num_entries,
                        mcl_device_id* devices, mcl_uint* num_devices) {
  if (devices == nullptr && num_devices == nullptr) return MCL_INVALID_VALUE;
  if (devices != nullptr && num_entries == 0) return MCL_INVALID_VALUE;

  // Stable per-process handles for the two singleton devices.
  static mcl_device_obj cpu_handle{&ocl::Platform::default_instance().cpu()};
  static mcl_device_obj gpu_handle{&ocl::Platform::default_instance().gpu()};

  mcl_device_id found[2];
  mcl_uint count = 0;
  if (device_type & MCL_DEVICE_TYPE_CPU) found[count++] = &cpu_handle;
  if (device_type & MCL_DEVICE_TYPE_GPU) found[count++] = &gpu_handle;
  if (count == 0) return MCL_DEVICE_NOT_FOUND;

  if (num_devices != nullptr) *num_devices = count;
  if (devices != nullptr) {
    for (mcl_uint i = 0; i < count && i < num_entries; ++i) {
      devices[i] = found[i];
    }
  }
  return MCL_SUCCESS;
}

mcl_int mclGetDeviceName(mcl_device_id device, size_t buf_size, char* buf) {
  if (device == nullptr || buf == nullptr || buf_size == 0) {
    return MCL_INVALID_VALUE;
  }
  const std::string name = device->device->name();
  std::strncpy(buf, name.c_str(), buf_size - 1);
  buf[buf_size - 1] = '\0';
  return MCL_SUCCESS;
}

mcl_context mclCreateContext(mcl_device_id device, mcl_int* errcode_ret) {
  if (device == nullptr) {
    set_err(errcode_ret, MCL_INVALID_DEVICE);
    return nullptr;
  }
  auto* handle = new mcl_context_obj{
      std::make_unique<ocl::Context>(*device->device)};
  set_err(errcode_ret, MCL_SUCCESS);
  return handle;
}

mcl_int mclReleaseContext(mcl_context context) {
  if (context == nullptr) return MCL_INVALID_CONTEXT;
  delete context;
  return MCL_SUCCESS;
}

mcl_command_queue mclCreateCommandQueue(mcl_context context,
                                        mcl_int* errcode_ret) {
  if (context == nullptr) {
    set_err(errcode_ret, MCL_INVALID_CONTEXT);
    return nullptr;
  }
  auto* handle = new mcl_queue_obj{
      std::make_unique<ocl::CommandQueue>(*context->context)};
  set_err(errcode_ret, MCL_SUCCESS);
  return handle;
}

mcl_command_queue mclCreateCommandQueueWithProperties(mcl_context context,
                                                      mcl_bitfield properties,
                                                      mcl_int* errcode_ret) {
  if (context == nullptr) {
    set_err(errcode_ret, MCL_INVALID_CONTEXT);
    return nullptr;
  }
  if ((properties & ~static_cast<mcl_bitfield>(
                        MCL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE)) != 0) {
    set_err(errcode_ret, MCL_INVALID_VALUE);
    return nullptr;
  }
  ocl::QueueProperties props = ocl::QueueProperties::Default;
  if (properties & MCL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE) {
    props = props | ocl::QueueProperties::OutOfOrder;
  }
  auto* handle = new mcl_queue_obj{
      std::make_unique<ocl::CommandQueue>(*context->context, props)};
  set_err(errcode_ret, MCL_SUCCESS);
  return handle;
}

mcl_int mclReleaseCommandQueue(mcl_command_queue queue) {
  if (queue == nullptr) return MCL_INVALID_VALUE;
  delete queue;
  return MCL_SUCCESS;
}

mcl_int mclFinish(mcl_command_queue queue) {
  if (queue == nullptr) return MCL_INVALID_VALUE;
  return guarded([&] { queue->queue->finish(); });
}

mcl_int mclWaitForEvents(mcl_uint num_events, const mcl_event* event_list) {
  if (num_events == 0 || event_list == nullptr) return MCL_INVALID_VALUE;
  for (mcl_uint i = 0; i < num_events; ++i) {
    if (event_list[i] == nullptr || !event_list[i]->event) {
      return MCL_INVALID_EVENT;
    }
  }
  bool any_failed = false;
  for (mcl_uint i = 0; i < num_events; ++i) {
    const mcl_int code =
        guarded([&] { event_list[i]->event->wait(); });
    if (code != MCL_SUCCESS) any_failed = true;
  }
  return any_failed ? MCL_EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST
                    : MCL_SUCCESS;
}

mcl_int mclGetEventProfilingInfo(mcl_event event, mcl_uint param_name,
                                 size_t value_size, void* value,
                                 size_t* value_size_ret) {
  if (event == nullptr || !event->event) return MCL_INVALID_EVENT;
  if (value != nullptr && value_size < sizeof(mcl_ulong)) {
    return MCL_INVALID_VALUE;
  }
  ocl::ProfilingInfo prof;
  try {
    prof = event->event->profiling_ns();
  } catch (const core::Error&) {
    return MCL_PROFILING_INFO_NOT_AVAILABLE;
  }
  mcl_ulong ns = 0;
  switch (param_name) {
    case MCL_PROFILING_COMMAND_QUEUED: ns = prof.queued_ns; break;
    case MCL_PROFILING_COMMAND_SUBMIT: ns = prof.submitted_ns; break;
    case MCL_PROFILING_COMMAND_START: ns = prof.started_ns; break;
    case MCL_PROFILING_COMMAND_END: ns = prof.ended_ns; break;
    default: return MCL_INVALID_VALUE;
  }
  if (value != nullptr) std::memcpy(value, &ns, sizeof(ns));
  if (value_size_ret != nullptr) *value_size_ret = sizeof(mcl_ulong);
  return MCL_SUCCESS;
}

mcl_int mclReleaseEvent(mcl_event event) {
  if (event == nullptr) return MCL_INVALID_EVENT;
  delete event;
  return MCL_SUCCESS;
}

mcl_mem mclCreateBuffer(mcl_context context, mcl_bitfield flags, size_t size,
                        void* host_ptr, mcl_int* errcode_ret) {
  if (context == nullptr) {
    set_err(errcode_ret, MCL_INVALID_CONTEXT);
    return nullptr;
  }
  ocl::MemFlags mf{};
  bool any_access = false;
  if (flags & MCL_MEM_READ_WRITE) {
    mf = mf | ocl::MemFlags::ReadWrite;
    any_access = true;
  }
  if (flags & MCL_MEM_READ_ONLY) {
    mf = mf | ocl::MemFlags::ReadOnly;
    any_access = true;
  }
  if (flags & MCL_MEM_WRITE_ONLY) {
    mf = mf | ocl::MemFlags::WriteOnly;
    any_access = true;
  }
  if (!any_access) mf = mf | ocl::MemFlags::ReadWrite;
  if (flags & MCL_MEM_USE_HOST_PTR) mf = mf | ocl::MemFlags::UseHostPtr;
  if (flags & MCL_MEM_ALLOC_HOST_PTR) mf = mf | ocl::MemFlags::AllocHostPtr;
  if (flags & MCL_MEM_COPY_HOST_PTR) mf = mf | ocl::MemFlags::CopyHostPtr;

  mcl_mem handle = nullptr;
  const mcl_int code = guarded([&] {
    handle = new mcl_mem_obj{std::make_unique<ocl::Buffer>(
        context->context->create_buffer(mf, size, host_ptr))};
  });
  set_err(errcode_ret, code);
  if (code != MCL_SUCCESS) return nullptr;
  LiveHandles::instance().add(handle);
  return handle;
}

mcl_int mclReleaseMemObject(mcl_mem mem) {
  if (mem == nullptr) return MCL_INVALID_MEM_OBJECT;
  LiveHandles::instance().remove(mem);
  delete mem;
  return MCL_SUCCESS;
}

mcl_int mclEnqueueWriteBuffer(mcl_command_queue queue, mcl_mem mem,
                              mcl_int /*blocking*/, size_t offset, size_t size,
                              const void* ptr) {
  if (queue == nullptr || mem == nullptr) return MCL_INVALID_VALUE;
  return guarded([&] {
    (void)queue->queue->enqueue_write_buffer(*mem->buffer, offset, size, ptr);
  });
}

mcl_int mclEnqueueReadBuffer(mcl_command_queue queue, mcl_mem mem,
                             mcl_int /*blocking*/, size_t offset, size_t size,
                             void* ptr) {
  if (queue == nullptr || mem == nullptr) return MCL_INVALID_VALUE;
  return guarded([&] {
    (void)queue->queue->enqueue_read_buffer(*mem->buffer, offset, size, ptr);
  });
}

mcl_int mclEnqueueWriteBufferAsync(mcl_command_queue queue, mcl_mem mem,
                                   size_t offset, size_t size, const void* ptr,
                                   mcl_uint num_events_in_wait_list,
                                   const mcl_event* event_wait_list,
                                   mcl_event* event) {
  if (queue == nullptr || mem == nullptr) return MCL_INVALID_VALUE;
  std::vector<ocl::AsyncEventPtr> waits;
  if (!collect_wait_list(num_events_in_wait_list, event_wait_list, waits)) {
    return MCL_INVALID_EVENT_WAIT_LIST;
  }
  return guarded([&] {
    export_event(queue->queue->enqueue_write_buffer_async(
                     *mem->buffer, offset, size, ptr, std::move(waits)),
                 event);
  });
}

mcl_int mclEnqueueReadBufferAsync(mcl_command_queue queue, mcl_mem mem,
                                  size_t offset, size_t size, void* ptr,
                                  mcl_uint num_events_in_wait_list,
                                  const mcl_event* event_wait_list,
                                  mcl_event* event) {
  if (queue == nullptr || mem == nullptr) return MCL_INVALID_VALUE;
  std::vector<ocl::AsyncEventPtr> waits;
  if (!collect_wait_list(num_events_in_wait_list, event_wait_list, waits)) {
    return MCL_INVALID_EVENT_WAIT_LIST;
  }
  return guarded([&] {
    export_event(queue->queue->enqueue_read_buffer_async(
                     *mem->buffer, offset, size, ptr, std::move(waits)),
                 event);
  });
}

mcl_int mclEnqueueMarkerWithWaitList(mcl_command_queue queue,
                                     mcl_uint num_events_in_wait_list,
                                     const mcl_event* event_wait_list,
                                     mcl_event* event) {
  if (queue == nullptr) return MCL_INVALID_VALUE;
  std::vector<ocl::AsyncEventPtr> waits;
  if (!collect_wait_list(num_events_in_wait_list, event_wait_list, waits)) {
    return MCL_INVALID_EVENT_WAIT_LIST;
  }
  return guarded([&] {
    export_event(queue->queue->enqueue_marker_async(std::move(waits)), event);
  });
}

mcl_int mclEnqueueBarrierWithWaitList(mcl_command_queue queue,
                                      mcl_uint num_events_in_wait_list,
                                      const mcl_event* event_wait_list,
                                      mcl_event* event) {
  if (queue == nullptr) return MCL_INVALID_VALUE;
  std::vector<ocl::AsyncEventPtr> waits;
  if (!collect_wait_list(num_events_in_wait_list, event_wait_list, waits)) {
    return MCL_INVALID_EVENT_WAIT_LIST;
  }
  return guarded([&] {
    export_event(queue->queue->enqueue_barrier_async(std::move(waits)), event);
  });
}

void* mclEnqueueMapBuffer(mcl_command_queue queue, mcl_mem mem,
                          mcl_bitfield map_flags, size_t offset, size_t size,
                          mcl_int* errcode_ret) {
  if (queue == nullptr || mem == nullptr) {
    set_err(errcode_ret, MCL_INVALID_VALUE);
    return nullptr;
  }
  ocl::MapFlags mf = ocl::MapFlags::ReadWrite;
  if ((map_flags & (MCL_MAP_READ | MCL_MAP_WRITE)) == MCL_MAP_READ) {
    mf = ocl::MapFlags::Read;
  } else if ((map_flags & (MCL_MAP_READ | MCL_MAP_WRITE)) == MCL_MAP_WRITE) {
    mf = ocl::MapFlags::Write;
  }
  void* ptr = nullptr;
  const mcl_int code = guarded([&] {
    ptr = queue->queue->enqueue_map_buffer(*mem->buffer, mf, offset, size);
  });
  set_err(errcode_ret, code);
  return code == MCL_SUCCESS ? ptr : nullptr;
}

mcl_int mclEnqueueUnmapMemObject(mcl_command_queue queue, mcl_mem mem,
                                 void* mapped_ptr) {
  if (queue == nullptr || mem == nullptr) return MCL_INVALID_VALUE;
  return guarded(
      [&] { (void)queue->queue->enqueue_unmap(*mem->buffer, mapped_ptr); });
}

mcl_kernel mclCreateKernel(mcl_context context, const char* kernel_name,
                           mcl_int* errcode_ret) {
  if (context == nullptr || kernel_name == nullptr) {
    set_err(errcode_ret, MCL_INVALID_VALUE);
    return nullptr;
  }
  mcl_kernel handle = nullptr;
  const mcl_int code = guarded([&] {
    handle = new mcl_kernel_obj{std::make_unique<ocl::Kernel>(
        context->context->create_kernel(ocl::Program::builtin(), kernel_name))};
  });
  set_err(errcode_ret, code);
  return code == MCL_SUCCESS ? handle : nullptr;
}

mcl_int mclReleaseKernel(mcl_kernel kernel) {
  if (kernel == nullptr) return MCL_INVALID_VALUE;
  delete kernel;
  return MCL_SUCCESS;
}

mcl_int mclSetKernelArg(mcl_kernel kernel, mcl_uint arg_index, size_t arg_size,
                        const void* arg_value) {
  if (kernel == nullptr) return MCL_INVALID_VALUE;
  return guarded([&] {
    if (arg_value == nullptr) {
      // Local memory request (clSetKernelArg with NULL value).
      kernel->kernel->set_arg_local(arg_index, arg_size);
      return;
    }
    if (arg_size == sizeof(mcl_mem)) {
      mcl_mem candidate;
      std::memcpy(&candidate, arg_value, sizeof(candidate));
      if (candidate != nullptr && LiveHandles::instance().contains(candidate)) {
        kernel->kernel->set_arg(arg_index, *candidate->buffer);
        return;
      }
    }
    // Raw scalar: the slot stores exactly arg_size bytes, so odd sizes
    // (3-byte structs, 12-byte float3) round-trip without padding.
    kernel->kernel->set_arg_bytes(arg_index, arg_value, arg_size);
  });
}

mcl_int mclEnqueueNDRangeKernel(mcl_command_queue queue, mcl_kernel kernel,
                                mcl_uint work_dim, const size_t* global_size,
                                const size_t* local_size) {
  if (queue == nullptr || kernel == nullptr || global_size == nullptr ||
      work_dim < 1 || work_dim > 3) {
    return MCL_INVALID_VALUE;
  }
  ocl::NDRange global, local;
  global.dims = work_dim;
  for (mcl_uint d = 0; d < 3; ++d) {
    global.size[d] = d < work_dim ? global_size[d] : 1;
  }
  if (local_size != nullptr) {
    local.dims = work_dim;
    for (mcl_uint d = 0; d < 3; ++d) {
      local.size[d] = d < work_dim ? local_size[d] : 1;
    }
  }
  return guarded([&] {
    (void)queue->queue->enqueue_ndrange(*kernel->kernel, global, local);
  });
}

mcl_int mclEnqueueNDRangeKernelAsync(mcl_command_queue queue, mcl_kernel kernel,
                                     mcl_uint work_dim,
                                     const size_t* global_size,
                                     const size_t* local_size,
                                     mcl_uint num_events_in_wait_list,
                                     const mcl_event* event_wait_list,
                                     mcl_event* event) {
  if (queue == nullptr || kernel == nullptr || global_size == nullptr ||
      work_dim < 1 || work_dim > 3) {
    return MCL_INVALID_VALUE;
  }
  std::vector<ocl::AsyncEventPtr> waits;
  if (!collect_wait_list(num_events_in_wait_list, event_wait_list, waits)) {
    return MCL_INVALID_EVENT_WAIT_LIST;
  }
  ocl::NDRange global, local;
  global.dims = work_dim;
  for (mcl_uint d = 0; d < 3; ++d) {
    global.size[d] = d < work_dim ? global_size[d] : 1;
  }
  if (local_size != nullptr) {
    local.dims = work_dim;
    for (mcl_uint d = 0; d < 3; ++d) {
      local.size[d] = d < work_dim ? local_size[d] : 1;
    }
  }
  return guarded([&] {
    export_event(queue->queue->enqueue_ndrange_async(*kernel->kernel, global,
                                                     local, std::move(waits)),
                 event);
  });
}

/* --- tracing ----------------------------------------------------------------- */

mcl_int mclTraceBegin(const char* name) {
  if (name == nullptr) return MCL_INVALID_VALUE;
  // intern() only when recording: C callers may pass transient strings, and
  // the disabled path must stay at one relaxed load.
  if (mcl::trace::enabled()) mcl::trace::span_begin(mcl::trace::intern(name));
  return MCL_SUCCESS;
}

mcl_int mclTraceEnd(const char* name) {
  if (name == nullptr) return MCL_INVALID_VALUE;
  if (mcl::trace::enabled()) mcl::trace::span_end(mcl::trace::intern(name));
  return MCL_SUCCESS;
}

mcl_int mclTraceCounter(const char* name, double value) {
  if (name == nullptr) return MCL_INVALID_VALUE;
  if (mcl::trace::enabled()) {
    mcl::trace::counter(mcl::trace::intern(name), value);
  }
  return MCL_SUCCESS;
}

/* --- profiling --------------------------------------------------------------- */

mcl_int mclGetEventProfile(mcl_event event, mcl_kernel_profile* profile) {
  if (event == nullptr || !event->event) return MCL_INVALID_EVENT;
  if (profile == nullptr) return MCL_INVALID_VALUE;
  mcl::prof::KernelProfile p;
  try {
    p = event->event->kernel_profile();
  } catch (const core::Error&) {
    return MCL_PROFILING_INFO_NOT_AVAILABLE;
  }
  if (p.launches == 0) return MCL_PROFILING_INFO_NOT_AVAILABLE;
  std::memset(profile, 0, sizeof(*profile));
  std::strncpy(profile->kernel, p.name.c_str(), sizeof(profile->kernel) - 1);
  profile->kernel[sizeof(profile->kernel) - 1] = '\0';
  profile->launches = p.launches;
  profile->workgroups = p.groups;
  profile->items = p.items;
  profile->cycles = p.cycles;
  profile->instructions = p.instructions;
  profile->cache_references = p.cache_references;
  profile->cache_misses = p.cache_misses;
  profile->branches = p.branches;
  profile->branch_misses = p.branch_misses;
  profile->seconds = p.seconds;
  profile->ipc = p.ipc();
  profile->cache_miss_rate = p.cache_miss_rate();
  profile->bytes_per_cycle = p.bytes_per_cycle();
  profile->achieved_gbps = p.achieved_gbps();
  profile->hardware = p.hardware ? MCL_TRUE : MCL_FALSE;
  return MCL_SUCCESS;
}

mcl_int mclMetricsSnapshot(char* buf, size_t buf_size, size_t* size_ret) {
  if (buf == nullptr && size_ret == nullptr) return MCL_INVALID_VALUE;
  const std::string json = mcl::prof::metrics_json(mcl::prof::snapshot());
  if (size_ret != nullptr) *size_ret = json.size() + 1;
  if (buf != nullptr && buf_size > 0) {
    const size_t n = std::min(buf_size - 1, json.size());
    std::memcpy(buf, json.data(), n);
    buf[n] = '\0';
  }
  return MCL_SUCCESS;
}

/* --- self-tuning -------------------------------------------------------------- */

mcl_int mclSetTuning(mcl_int mode) {
  mcl::tune::Mode m;
  switch (mode) {
    case MCL_TUNE_OFF: m = mcl::tune::Mode::Off; break;
    case MCL_TUNE_SEED: m = mcl::tune::Mode::Seed; break;
    case MCL_TUNE_ONLINE: m = mcl::tune::Mode::Online; break;
    default: return MCL_INVALID_VALUE;
  }
  mcl::tune::Tuner::instance().set_mode(m);
  return MCL_SUCCESS;
}

namespace {

mcl_int tuned_config_impl(const char* kernel_name, mcl_uint work_dim,
                          const size_t* global_size, mcl_tuned_config* config,
                          std::size_t threads) {
  if (kernel_name == nullptr || config == nullptr || global_size == nullptr ||
      work_dim < 1 || work_dim > 3) {
    return MCL_INVALID_VALUE;
  }
  if (!mcl::ocl::Program::builtin().contains(kernel_name)) {
    return MCL_INVALID_KERNEL_NAME;
  }
  const mcl::ocl::KernelDef& def =
      mcl::ocl::Program::builtin().lookup(kernel_name);
  mcl::ocl::NDRange global;
  global.dims = work_dim;
  for (mcl_uint d = 0; d < 3; ++d) {
    global.size[d] = d < work_dim ? global_size[d] : 1;
  }
  return guarded([&] {
    // The query models a caller-chosen launch with NULL local and no local
    // args — the shape mclEnqueueNDRangeKernel(…, NULL) produces.
    const std::optional<mcl::tune::TunedConfig> best =
        mcl::tune::Tuner::instance().tuned_config(
            def, global, mcl::ocl::NDRange{}, /*has_local_args=*/false,
            threads);
    core::check(best.has_value(), core::Status::InvalidOperation,
                "no tunable configuration for this launch shape");
    std::memset(config, 0, sizeof(*config));
    config->work_dim = static_cast<mcl_uint>(best->local.dims);
    for (std::size_t d = 0; d < 3; ++d) {
      config->local_size[d] = best->local.size[d];
    }
    switch (best->executor) {
      case mcl::ocl::ExecutorKind::Auto: config->executor = 0; break;
      case mcl::ocl::ExecutorKind::Loop: config->executor = 1; break;
      case mcl::ocl::ExecutorKind::Fiber: config->executor = 2; break;
      case mcl::ocl::ExecutorKind::Simd: config->executor = 3; break;
      case mcl::ocl::ExecutorKind::Checked: config->executor = 0; break;
    }
    config->chunk_divisor = static_cast<mcl_uint>(best->chunk_divisor);
    config->work_stealing =
        best->scheduler == mcl::threading::ScheduleStrategy::WorkStealing
            ? MCL_TRUE
            : MCL_FALSE;
    config->prefer_map = best->prefer_map ? MCL_TRUE : MCL_FALSE;
  });
}

}  // namespace

mcl_int mclGetTunedConfig(const char* kernel_name, mcl_uint work_dim,
                          const size_t* global_size, mcl_tuned_config* config) {
  // Same thread count the launch path keys tuner entries with (the CPU
  // device pool's size, which a configured pool makes differ from
  // hardware_concurrency) — otherwise the query misses the learned
  // incumbent and silently falls back to the static seed ranking.
  const std::size_t threads = static_cast<std::size_t>(
      std::max(1, mcl::ocl::Platform::default_instance().cpu().compute_units()));
  return tuned_config_impl(kernel_name, work_dim, global_size, config, threads);
}

mcl_int mclGetTunedConfigForDevice(mcl_device_id device,
                                   const char* kernel_name, mcl_uint work_dim,
                                   const size_t* global_size,
                                   mcl_tuned_config* config) {
  if (device == nullptr || device->device == nullptr) {
    return MCL_INVALID_DEVICE;
  }
  // Launches on a partitioned (sub-)device key tuner entries on the SHARD
  // width, not the parent pool size; the query must use the same key or a
  // sub-device caller silently reads the wrong entry.
  const std::size_t threads = static_cast<std::size_t>(
      std::max(1, device->device->compute_units()));
  return tuned_config_impl(kernel_name, work_dim, global_size, config, threads);
}

}  // extern "C"
