// The CL 1.1 C shim: every entry point declared in include/CL/cl.h,
// implemented over the C++ runtime (Platform/Context/CommandQueue/Buffer/
// Kernel). Handles are heap objects with OpenCL reference-count semantics
// and implicit retain chains (a queue retains its context and device, a
// kernel its program, an event its queue...), so teardown order never
// matters to the host program — exactly the contract real CL programs rely
// on.
//
// Deliberate deviations (documented in docs/cl_shim.md):
//  - clBuildProgram has no OpenCL C compiler behind it: it *binds* the
//    __kernel names found in the source text to registered kernel
//    descriptors (Program::builtin()), failing with CL_BUILD_PROGRAM_FAILURE
//    and a build log naming any kernel that has no registered implementation.
//  - CL_KERNEL_NUM_ARGS reports the currently-bound argument count (the
//    descriptor table does not record arity).
//  - The rect transfer and map commands execute synchronously after their
//    wait list resolves (legal: enqueue may be eager), so their events carry
//    marker timestamps.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include <CL/cl.h>

#include "core/error.hpp"
#include "ocl/buffer.hpp"
#include "ocl/cl_status.hpp"
#include "ocl/device.hpp"
#include "ocl/kernel.hpp"
#include "ocl/platform.hpp"
#include "ocl/queue.hpp"
#include "ocl/types.hpp"

namespace mocl = mcl::ocl;
namespace mcore = mcl::core;
using mcore::Status;

// --- handle definitions (the struct tags CL/cl.h forward-declares) ----------

struct _cl_platform_id {
  int tag = 0;
};

struct _cl_device_id {
  mocl::Device* device = nullptr;
  std::shared_ptr<mocl::CpuSubDevice> sub;  ///< owning, for sub-devices
  _cl_device_id* parent = nullptr;          ///< non-null iff sub-device
  std::vector<cl_device_partition_property> partition_type;
  std::atomic<int> refs{1};
};

struct _cl_context {
  std::unique_ptr<mocl::Context> context;
  std::vector<_cl_device_id*> devices;  ///< retained
  std::vector<cl_context_properties> props;
  std::atomic<int> refs{1};
};

struct _cl_command_queue {
  std::unique_ptr<mocl::CommandQueue> queue;
  _cl_context* context = nullptr;  ///< retained
  _cl_device_id* device = nullptr;  ///< retained (counts on sub-devices)
  cl_command_queue_properties properties = 0;
  std::atomic<int> refs{1};
};

struct _cl_mem {
  std::unique_ptr<mocl::Buffer> buffer;
  _cl_context* context = nullptr;  ///< retained
  _cl_mem* parent = nullptr;       ///< retained; non-null iff sub-buffer
  std::size_t origin = 0;          ///< sub-buffer offset into the parent
  cl_mem_flags flags = 0;
  void* host_ptr = nullptr;  ///< as passed to clCreateBuffer
  std::atomic<int> refs{1};
};

struct _cl_program {
  _cl_context* context = nullptr;  ///< retained
  std::string source;
  std::string build_options;
  std::string build_log;
  std::vector<std::string> kernel_names;  ///< bound by a successful build
  cl_build_status build_status = CL_BUILD_NONE;
  std::mutex mutex;  ///< guards the build state
  std::atomic<int> refs{1};
};

struct _cl_kernel {
  std::unique_ptr<mocl::Kernel> kernel;
  _cl_program* program = nullptr;  ///< retained
  std::string name;
  /// Parameter count of the __kernel declaration in the program source
  /// (SIZE_MAX when unparseable — arg validation is then skipped).
  std::size_t num_args = SIZE_MAX;
  std::mutex mutex;  ///< guards argument binding vs. enqueue snapshots
  std::atomic<int> refs{1};
};

struct _cl_event {
  mocl::AsyncEventPtr event;
  _cl_command_queue* queue = nullptr;  ///< retained; null for user events
  _cl_context* context = nullptr;      ///< retained
  cl_command_type command_type = CL_COMMAND_MARKER;
  std::atomic<int> refs{1};
};

namespace {

// --- live-handle registries --------------------------------------------------
// Devices: validates cl_device_id arguments (roots + live sub-device
// handles). Mems: lets clSetKernelArg distinguish a cl_mem argument from a
// pointer-sized scalar, the same trick the mcl C API uses.

std::mutex& device_registry_mutex() {
  static std::mutex m;
  return m;
}
std::unordered_set<_cl_device_id*>& device_registry() {
  static std::unordered_set<_cl_device_id*> s;
  return s;
}
std::mutex& mem_registry_mutex() {
  static std::mutex m;
  return m;
}
std::unordered_set<_cl_mem*>& mem_registry() {
  static std::unordered_set<_cl_mem*> s;
  return s;
}

cl_platform_id the_platform() {
  static _cl_platform_id platform;
  return &platform;
}

_cl_device_id* make_root_device(mocl::Device* device) {
  auto* handle = new _cl_device_id;
  handle->device = device;
  std::lock_guard<std::mutex> lock(device_registry_mutex());
  device_registry().insert(handle);
  return handle;
}

cl_device_id cpu_root() {
  static _cl_device_id* d =
      make_root_device(&mocl::Platform::default_instance().cpu());
  return d;
}

cl_device_id gpu_root() {
  static _cl_device_id* d =
      make_root_device(&mocl::Platform::default_instance().gpu());
  return d;
}

bool device_live(cl_device_id d) {
  if (d == nullptr) return false;
  std::lock_guard<std::mutex> lock(device_registry_mutex());
  return device_registry().count(d) != 0;
}

bool mem_live(cl_mem m) {
  if (m == nullptr) return false;
  std::lock_guard<std::mutex> lock(mem_registry_mutex());
  return mem_registry().count(m) != 0;
}

// --- reference counting ------------------------------------------------------

void retain_device_handle(cl_device_id d) {
  if (d != nullptr && d->parent != nullptr) {
    d->refs.fetch_add(1, std::memory_order_relaxed);
  }
}

void release_device_handle(cl_device_id d) {
  if (d == nullptr || d->parent == nullptr) return;  // roots are immortal
  if (d->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    {
      std::lock_guard<std::mutex> lock(device_registry_mutex());
      device_registry().erase(d);
    }
    delete d;
  }
}

void retain_context_handle(cl_context c) {
  c->refs.fetch_add(1, std::memory_order_relaxed);
}

void release_context_handle(cl_context c) {
  if (c->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    c->context.reset();  // before the devices it references
    for (_cl_device_id* d : c->devices) release_device_handle(d);
    delete c;
  }
}

void retain_queue_handle(cl_command_queue q) {
  q->refs.fetch_add(1, std::memory_order_relaxed);
}

void release_queue_handle(cl_command_queue q) {
  if (q->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    try {
      if (q->queue) q->queue->finish();
    } catch (...) {
      // A failed async command surfaces via its event; the release itself
      // must still tear the queue down.
    }
    q->queue.reset();
    release_context_handle(q->context);
    release_device_handle(q->device);
    delete q;
  }
}

void release_mem_handle(cl_mem m) {
  if (m->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    {
      std::lock_guard<std::mutex> lock(mem_registry_mutex());
      mem_registry().erase(m);
    }
    m->buffer.reset();  // a sub-buffer's view dies before the parent storage
    if (m->parent != nullptr) release_mem_handle(m->parent);
    release_context_handle(m->context);
    delete m;
  }
}

void release_program_handle(cl_program p) {
  if (p->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    release_context_handle(p->context);
    delete p;
  }
}

void release_kernel_handle(cl_kernel k) {
  if (k->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    release_program_handle(k->program);
    delete k;
  }
}

void retain_event_handle(cl_event e) {
  e->refs.fetch_add(1, std::memory_order_relaxed);
}

void release_event_handle(cl_event e) {
  if (e->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    e->event.reset();
    if (e->queue != nullptr) release_queue_handle(e->queue);
    if (e->context != nullptr) release_context_handle(e->context);
    delete e;
  }
}

// --- small helpers -----------------------------------------------------------

void set_err(cl_int* errcode_ret, cl_int code) {
  if (errcode_ret != nullptr) *errcode_ret = code;
}

cl_int cl_code(Status s) {
  return static_cast<cl_int>(mocl::status_to_cl_code(s));
}

/// Runs fn, translating runtime exceptions to CL error codes.
template <typename Fn>
cl_int guarded(Fn&& fn) noexcept {
  try {
    return fn();
  } catch (const mcore::Error& e) {
    return cl_code(e.status());
  } catch (const std::bad_alloc&) {
    return CL_OUT_OF_HOST_MEMORY;
  } catch (...) {
    return CL_OUT_OF_RESOURCES;
  }
}

/// clGetXxxInfo return convention: size_ret always reports the full size;
/// a non-null param_value smaller than that is CL_INVALID_VALUE.
cl_int info_bytes(std::size_t param_value_size, void* param_value,
                  std::size_t* param_value_size_ret, const void* src,
                  std::size_t n) {
  if (param_value_size_ret != nullptr) *param_value_size_ret = n;
  if (param_value != nullptr) {
    if (param_value_size < n) return CL_INVALID_VALUE;
    if (n != 0) std::memcpy(param_value, src, n);
  }
  return CL_SUCCESS;
}

template <typename T>
cl_int info_scalar(std::size_t param_value_size, void* param_value,
                   std::size_t* param_value_size_ret, T value) {
  return info_bytes(param_value_size, param_value, param_value_size_ret,
                    &value, sizeof(T));
}

cl_int info_string(std::size_t param_value_size, void* param_value,
                   std::size_t* param_value_size_ret, const char* s) {
  return info_bytes(param_value_size, param_value, param_value_size_ret, s,
                    std::strlen(s) + 1);
}

mocl::NDRange make_range(cl_uint dims, const size_t* v) {
  switch (dims) {
    case 1: return mocl::NDRange(v[0]);
    case 2: return mocl::NDRange(v[0], v[1]);
    default: return mocl::NDRange(v[0], v[1], v[2]);
  }
}

/// Collects and validates an event wait list. (num == 0) must match
/// (list == NULL), and every entry must be a live event.
cl_int gather_wait_list(cl_uint num, const cl_event* list,
                        std::vector<mocl::AsyncEventPtr>* out) {
  if ((num == 0) != (list == nullptr)) return CL_INVALID_EVENT_WAIT_LIST;
  for (cl_uint i = 0; i < num; ++i) {
    if (list[i] == nullptr || !list[i]->event) {
      return CL_INVALID_EVENT_WAIT_LIST;
    }
    out->push_back(list[i]->event);
  }
  return CL_SUCCESS;
}

/// Wraps a runtime event for the caller (when it asked for one), installing
/// the implicit retains that keep the queue and context alive.
void attach_event(cl_event* out, mocl::AsyncEventPtr ev, cl_command_queue q,
                  cl_command_type type) {
  if (out == nullptr) return;
  auto* handle = new _cl_event;
  handle->event = std::move(ev);
  handle->queue = q;
  retain_queue_handle(q);
  handle->context = q->context;
  retain_context_handle(q->context);
  handle->command_type = type;
  *out = handle;
}

/// Synchronously resolves a wait list (for the commands the shim executes
/// eagerly: rect transfers and maps). A failed dependency poisons the
/// command, per clEnqueue* wait-list semantics.
cl_int resolve_wait_list(const std::vector<mocl::AsyncEventPtr>& wait) {
  for (const mocl::AsyncEventPtr& ev : wait) {
    try {
      ev->wait();
    } catch (...) {
      return CL_EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST;
    }
  }
  return CL_SUCCESS;
}

constexpr cl_mem_flags kAccessFlags =
    CL_MEM_READ_WRITE | CL_MEM_WRITE_ONLY | CL_MEM_READ_ONLY;
constexpr cl_mem_flags kHostFlags =
    CL_MEM_USE_HOST_PTR | CL_MEM_ALLOC_HOST_PTR | CL_MEM_COPY_HOST_PTR;

int access_bit_count(cl_mem_flags flags) {
  int n = 0;
  if (flags & CL_MEM_READ_WRITE) ++n;
  if (flags & CL_MEM_WRITE_ONLY) ++n;
  if (flags & CL_MEM_READ_ONLY) ++n;
  return n;
}

/// CL mem-flag bits and mcl::ocl::MemFlags bits differ; translate per bit.
mocl::MemFlags to_mem_flags(cl_mem_flags flags) {
  mocl::MemFlags mf = (flags & CL_MEM_WRITE_ONLY) ? mocl::MemFlags::WriteOnly
                      : (flags & CL_MEM_READ_ONLY)
                          ? mocl::MemFlags::ReadOnly
                          : mocl::MemFlags::ReadWrite;
  if (flags & CL_MEM_ALLOC_HOST_PTR) mf = mf | mocl::MemFlags::AllocHostPtr;
  if (flags & CL_MEM_USE_HOST_PTR) mf = mf | mocl::MemFlags::UseHostPtr;
  if (flags & CL_MEM_COPY_HOST_PTR) mf = mf | mocl::MemFlags::CopyHostPtr;
  return mf;
}

cl_int exec_status_of(const mocl::AsyncEvent& ev) {
  switch (ev.state()) {
    case mocl::CommandState::Queued: return CL_QUEUED;
    case mocl::CommandState::Submitted: return CL_SUBMITTED;
    case mocl::CommandState::Running: return CL_RUNNING;
    case mocl::CommandState::Complete: return CL_COMPLETE;
    case mocl::CommandState::Error: {
      cl_int code = cl_code(ev.status());
      return code != CL_SUCCESS ? code : CL_INVALID_OPERATION;
    }
  }
  return CL_INVALID_OPERATION;
}

/// Extracts the __kernel function names from OpenCL C source text, in
/// source order. This is the "frontend" of the binding build: MiniCL does
/// not compile the bodies, it matches the names against the registered
/// descriptor table.
std::vector<std::string> scan_kernel_names(const std::string& src) {
  auto is_ident = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_';
  };
  std::vector<std::string> names;
  const std::string token = "__kernel";
  for (std::size_t pos = src.find(token); pos != std::string::npos;
       pos = src.find(token, pos + token.size())) {
    // Token boundaries: reject identifiers that merely contain "__kernel".
    if (pos > 0 && is_ident(src[pos - 1])) continue;
    std::size_t after = pos + token.size();
    if (after < src.size() && is_ident(src[after])) continue;
    // The kernel name is the identifier following the "void" return type
    // (qualifiers/attributes between __kernel and void are skipped by the
    // search itself).
    std::size_t v = src.find("void", after);
    if (v == std::string::npos) continue;
    std::size_t p = v + 4;
    while (p < src.size() &&
           (src[p] == ' ' || src[p] == '\t' || src[p] == '\n' ||
            src[p] == '\r')) {
      ++p;
    }
    std::size_t start = p;
    while (p < src.size() && is_ident(src[p])) ++p;
    if (p == start) continue;
    std::string name = src.substr(start, p - start);
    if (std::find(names.begin(), names.end(), name) == names.end()) {
      names.push_back(std::move(name));
    }
  }
  return names;
}

/// Arity of a __kernel function as declared in the source text. The
/// registered native bodies do not declare a parameter count, so the
/// CL-visible signature in the source is the authority for validating
/// clSetKernelArg indices and unset-argument launches. Returns SIZE_MAX
/// when the declaration cannot be parsed (validation is then skipped).
std::size_t count_kernel_params(const std::string& src,
                                const std::string& name) {
  auto is_ident = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_';
  };
  auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  };
  for (std::size_t pos = src.find(name); pos != std::string::npos;
       pos = src.find(name, pos + name.size())) {
    if (pos > 0 && is_ident(src[pos - 1])) continue;
    std::size_t p = pos + name.size();
    while (p < src.size() && is_space(src[p])) ++p;
    if (p >= src.size() || src[p] != '(') continue;
    int depth = 0;
    std::size_t commas = 0;
    std::string body;
    for (std::size_t q = p; q < src.size(); ++q) {
      const char c = src[q];
      if (c == '(') {
        ++depth;
        if (depth == 1) continue;
      } else if (c == ')') {
        if (--depth == 0) {
          while (!body.empty() && is_space(body.back())) body.pop_back();
          if (body.empty() || body == "void") return 0;
          return commas + 1;
        }
      } else if (c == ',' && depth == 1) {
        ++commas;
      }
      if (depth >= 1 && !(body.empty() && is_space(c))) body.push_back(c);
    }
    return SIZE_MAX;  // unbalanced parens
  }
  return SIZE_MAX;
}

}  // namespace

extern "C" {

/* --- platform / device discovery ------------------------------------------ */

cl_int clGetPlatformIDs(cl_uint num_entries, cl_platform_id* platforms,
                        cl_uint* num_platforms) {
  if ((num_entries == 0 && platforms != nullptr) ||
      (platforms == nullptr && num_platforms == nullptr)) {
    return CL_INVALID_VALUE;
  }
  if (platforms != nullptr) platforms[0] = the_platform();
  if (num_platforms != nullptr) *num_platforms = 1;
  return CL_SUCCESS;
}

cl_int clGetPlatformInfo(cl_platform_id platform, cl_platform_info param_name,
                         size_t param_value_size, void* param_value,
                         size_t* param_value_size_ret) {
  if (platform != the_platform()) return CL_INVALID_PLATFORM;
  switch (param_name) {
    case CL_PLATFORM_PROFILE:
      return info_string(param_value_size, param_value, param_value_size_ret,
                         "FULL_PROFILE");
    case CL_PLATFORM_VERSION:
      return info_string(param_value_size, param_value, param_value_size_ret,
                         "OpenCL 1.1 MiniCL");
    case CL_PLATFORM_NAME:
      return info_string(param_value_size, param_value, param_value_size_ret,
                         mocl::Platform::name());
    case CL_PLATFORM_VENDOR:
      return info_string(param_value_size, param_value, param_value_size_ret,
                         "MiniCL project");
    case CL_PLATFORM_EXTENSIONS:
      return info_string(param_value_size, param_value, param_value_size_ret,
                         "");
    default: return CL_INVALID_VALUE;
  }
}

cl_int clGetDeviceIDs(cl_platform_id platform, cl_device_type device_type,
                      cl_uint num_entries, cl_device_id* devices,
                      cl_uint* num_devices) {
  if (platform != nullptr && platform != the_platform()) {
    return CL_INVALID_PLATFORM;
  }
  constexpr cl_device_type kKnown = CL_DEVICE_TYPE_DEFAULT |
                                    CL_DEVICE_TYPE_CPU | CL_DEVICE_TYPE_GPU |
                                    CL_DEVICE_TYPE_ACCELERATOR;
  if (device_type != CL_DEVICE_TYPE_ALL && (device_type & ~kKnown) != 0) {
    return CL_INVALID_DEVICE_TYPE;
  }
  if (device_type == 0) return CL_INVALID_DEVICE_TYPE;
  if ((devices != nullptr && num_entries == 0) ||
      (devices == nullptr && num_devices == nullptr)) {
    return CL_INVALID_VALUE;
  }
  std::vector<cl_device_id> found;
  const bool all = device_type == CL_DEVICE_TYPE_ALL;
  if (all || (device_type & (CL_DEVICE_TYPE_CPU | CL_DEVICE_TYPE_DEFAULT))) {
    found.push_back(cpu_root());
  }
  if (all || (device_type & CL_DEVICE_TYPE_GPU)) found.push_back(gpu_root());
  if (found.empty()) return CL_DEVICE_NOT_FOUND;
  if (devices != nullptr) {
    for (cl_uint i = 0; i < num_entries && i < found.size(); ++i) {
      devices[i] = found[i];
    }
  }
  if (num_devices != nullptr) {
    *num_devices = static_cast<cl_uint>(found.size());
  }
  return CL_SUCCESS;
}

cl_int clGetDeviceInfo(cl_device_id device, cl_device_info param_name,
                       size_t param_value_size, void* param_value,
                       size_t* param_value_size_ret) {
  if (!device_live(device)) return CL_INVALID_DEVICE;
  const auto s = [&](auto v) {
    return info_scalar(param_value_size, param_value, param_value_size_ret, v);
  };
  switch (param_name) {
    case CL_DEVICE_TYPE:
      return s(static_cast<cl_device_type>(
          device->device->type() == mocl::DeviceType::Cpu ? CL_DEVICE_TYPE_CPU
                                                          : CL_DEVICE_TYPE_GPU));
    case CL_DEVICE_VENDOR_ID: return s(static_cast<cl_uint>(0x4D43));
    case CL_DEVICE_MAX_COMPUTE_UNITS:
      return s(static_cast<cl_uint>(device->device->compute_units()));
    case CL_DEVICE_MAX_WORK_ITEM_DIMENSIONS: return s(static_cast<cl_uint>(3));
    case CL_DEVICE_MAX_WORK_GROUP_SIZE:
      return s(static_cast<size_t>(8192));
    case CL_DEVICE_MAX_WORK_ITEM_SIZES: {
      const size_t sizes[3] = {8192, 8192, 8192};
      return info_bytes(param_value_size, param_value, param_value_size_ret,
                        sizes, sizeof(sizes));
    }
    case CL_DEVICE_MAX_CLOCK_FREQUENCY: return s(static_cast<cl_uint>(2300));
    case CL_DEVICE_ADDRESS_BITS:
      return s(static_cast<cl_uint>(sizeof(void*) * 8));
    case CL_DEVICE_MAX_MEM_ALLOC_SIZE:
      return s(static_cast<cl_ulong>(1) << 30);
    case CL_DEVICE_GLOBAL_MEM_SIZE: return s(static_cast<cl_ulong>(1) << 32);
    case CL_DEVICE_LOCAL_MEM_SIZE: return s(static_cast<cl_ulong>(32768));
    case CL_DEVICE_AVAILABLE: return s(static_cast<cl_bool>(CL_TRUE));
    case CL_DEVICE_COMPILER_AVAILABLE:
      // Honest: there is no OpenCL C compiler; clBuildProgram binds names.
      return s(static_cast<cl_bool>(CL_FALSE));
    case CL_DEVICE_QUEUE_PROPERTIES:
      return s(static_cast<cl_command_queue_properties>(
          CL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE | CL_QUEUE_PROFILING_ENABLE));
    case CL_DEVICE_NAME: {
      const std::string name = device->device->name();
      return info_string(param_value_size, param_value, param_value_size_ret,
                         name.c_str());
    }
    case CL_DEVICE_VENDOR:
      return info_string(param_value_size, param_value, param_value_size_ret,
                         "MiniCL project");
    case CL_DRIVER_VERSION:
      return info_string(param_value_size, param_value, param_value_size_ret,
                         "1.0");
    case CL_DEVICE_PROFILE:
      return info_string(param_value_size, param_value, param_value_size_ret,
                         "FULL_PROFILE");
    case CL_DEVICE_VERSION:
      return info_string(param_value_size, param_value, param_value_size_ret,
                         "OpenCL 1.1 MiniCL");
    case CL_DEVICE_EXTENSIONS:
      return info_string(param_value_size, param_value, param_value_size_ret,
                         "");
    case CL_DEVICE_OPENCL_C_VERSION:
      return info_string(param_value_size, param_value, param_value_size_ret,
                         "OpenCL C 1.1 (pre-registered native kernels)");
    case CL_DEVICE_PLATFORM: return s(the_platform());
    case CL_DEVICE_PARENT_DEVICE:
      return s(static_cast<cl_device_id>(device->parent));
    case CL_DEVICE_PARTITION_MAX_SUB_DEVICES:
      return s(static_cast<cl_uint>(
          device == cpu_root() ? device->device->compute_units() : 0));
    case CL_DEVICE_PARTITION_PROPERTIES: {
      if (device != cpu_root()) {
        return info_bytes(param_value_size, param_value, param_value_size_ret,
                          nullptr, 0);
      }
      const cl_device_partition_property props[2] = {
          CL_DEVICE_PARTITION_EQUALLY, CL_DEVICE_PARTITION_BY_COUNTS};
      return info_bytes(param_value_size, param_value, param_value_size_ret,
                        props, sizeof(props));
    }
    case CL_DEVICE_PARTITION_TYPE:
      return info_bytes(
          param_value_size, param_value, param_value_size_ret,
          device->partition_type.data(),
          device->partition_type.size() * sizeof(cl_device_partition_property));
    case CL_DEVICE_REFERENCE_COUNT:
      return s(static_cast<cl_uint>(
          device->refs.load(std::memory_order_relaxed)));
    default: return CL_INVALID_VALUE;
  }
}

cl_int clCreateSubDevices(cl_device_id in_device,
                          const cl_device_partition_property* properties,
                          cl_uint num_devices, cl_device_id* out_devices,
                          cl_uint* num_devices_ret) {
  if (!device_live(in_device)) return CL_INVALID_DEVICE;
  if (in_device != cpu_root()) return CL_INVALID_DEVICE;
  if (properties == nullptr) return CL_INVALID_VALUE;
  auto* cpu = static_cast<mocl::CpuDevice*>(in_device->device);

  std::vector<std::shared_ptr<mocl::CpuSubDevice>> subs;
  std::vector<cl_device_partition_property> recorded;
  if (properties[0] == CL_DEVICE_PARTITION_EQUALLY) {
    const cl_device_partition_property units = properties[1];
    if (units <= 0 || properties[2] != 0) return CL_INVALID_VALUE;
    try {
      subs = cpu->partition_equally(static_cast<std::size_t>(units));
    } catch (const mcore::Error& e) {
      return cl_code(e.status());
    }
    recorded = {CL_DEVICE_PARTITION_EQUALLY, units, 0};
  } else if (properties[0] == CL_DEVICE_PARTITION_BY_COUNTS) {
    std::vector<std::size_t> counts;
    std::size_t i = 1;
    for (; properties[i] != CL_DEVICE_PARTITION_BY_COUNTS_LIST_END; ++i) {
      if (properties[i] < 0) return CL_INVALID_DEVICE_PARTITION_COUNT;
      counts.push_back(static_cast<std::size_t>(properties[i]));
    }
    if (properties[i + 1] != 0) return CL_INVALID_VALUE;
    try {
      subs = cpu->partition_by_counts(counts);
    } catch (const mcore::Error&) {
      // Empty list, zero count, or counts summing past the pool width.
      return CL_INVALID_DEVICE_PARTITION_COUNT;
    }
    recorded.assign(properties, properties + i + 2);
  } else {
    return CL_INVALID_VALUE;
  }

  if (num_devices_ret != nullptr) {
    *num_devices_ret = static_cast<cl_uint>(subs.size());
  }
  if (out_devices != nullptr) {
    if (num_devices < subs.size()) return CL_INVALID_VALUE;
    for (std::size_t k = 0; k < subs.size(); ++k) {
      auto* handle = new _cl_device_id;
      handle->device = subs[k].get();
      handle->sub = subs[k];
      handle->parent = in_device;
      handle->partition_type = recorded;
      {
        std::lock_guard<std::mutex> lock(device_registry_mutex());
        device_registry().insert(handle);
      }
      out_devices[k] = handle;
    }
  }
  return CL_SUCCESS;
}

cl_int clRetainDevice(cl_device_id device) {
  if (!device_live(device)) return CL_INVALID_DEVICE;
  retain_device_handle(device);
  return CL_SUCCESS;
}

cl_int clReleaseDevice(cl_device_id device) {
  if (!device_live(device)) return CL_INVALID_DEVICE;
  release_device_handle(device);
  return CL_SUCCESS;
}

/* --- contexts -------------------------------------------------------------- */

static cl_context create_context_on(std::vector<cl_device_id> handles,
                                    const cl_context_properties* properties,
                                    cl_int* errcode_ret) {
  std::vector<cl_context_properties> stored;
  if (properties != nullptr) {
    for (std::size_t i = 0; properties[i] != 0; i += 2) {
      if (properties[i] != CL_CONTEXT_PLATFORM) {
        set_err(errcode_ret, CL_INVALID_PROPERTY);
        return nullptr;
      }
      if (reinterpret_cast<cl_platform_id>(properties[i + 1]) !=
          the_platform()) {
        set_err(errcode_ret, CL_INVALID_PLATFORM);
        return nullptr;
      }
      stored.push_back(properties[i]);
      stored.push_back(properties[i + 1]);
    }
    stored.push_back(0);
  }
  std::vector<mocl::Device*> devices;
  devices.reserve(handles.size());
  for (cl_device_id h : handles) devices.push_back(h->device);
  try {
    auto* ctx = new _cl_context;
    ctx->context = std::make_unique<mocl::Context>(std::move(devices));
    ctx->devices = std::move(handles);
    ctx->props = std::move(stored);
    for (_cl_device_id* d : ctx->devices) retain_device_handle(d);
    set_err(errcode_ret, CL_SUCCESS);
    return ctx;
  } catch (const mcore::Error& e) {
    set_err(errcode_ret, cl_code(e.status()));
    return nullptr;
  } catch (...) {
    set_err(errcode_ret, CL_OUT_OF_HOST_MEMORY);
    return nullptr;
  }
}

cl_context clCreateContext(const cl_context_properties* properties,
                           cl_uint num_devices, const cl_device_id* devices,
                           void(CL_CALLBACK* pfn_notify)(const char*,
                                                         const void*, size_t,
                                                         void*),
                           void* user_data, cl_int* errcode_ret) {
  if (devices == nullptr || num_devices == 0 ||
      (pfn_notify == nullptr && user_data != nullptr)) {
    set_err(errcode_ret, CL_INVALID_VALUE);
    return nullptr;
  }
  std::vector<cl_device_id> handles;
  for (cl_uint i = 0; i < num_devices; ++i) {
    if (!device_live(devices[i])) {
      set_err(errcode_ret, CL_INVALID_DEVICE);
      return nullptr;
    }
    handles.push_back(devices[i]);
  }
  return create_context_on(std::move(handles), properties, errcode_ret);
}

cl_context clCreateContextFromType(const cl_context_properties* properties,
                                   cl_device_type device_type,
                                   void(CL_CALLBACK* pfn_notify)(const char*,
                                                                 const void*,
                                                                 size_t, void*),
                                   void* user_data, cl_int* errcode_ret) {
  if (pfn_notify == nullptr && user_data != nullptr) {
    set_err(errcode_ret, CL_INVALID_VALUE);
    return nullptr;
  }
  std::vector<cl_device_id> handles;
  switch (device_type) {
    case CL_DEVICE_TYPE_CPU:
    case CL_DEVICE_TYPE_DEFAULT: handles = {cpu_root()}; break;
    case CL_DEVICE_TYPE_GPU: handles = {gpu_root()}; break;
    case CL_DEVICE_TYPE_ALL: handles = {cpu_root(), gpu_root()}; break;
    case CL_DEVICE_TYPE_ACCELERATOR:
      set_err(errcode_ret, CL_DEVICE_NOT_FOUND);
      return nullptr;
    default: set_err(errcode_ret, CL_INVALID_DEVICE_TYPE); return nullptr;
  }
  return create_context_on(std::move(handles), properties, errcode_ret);
}

cl_int clRetainContext(cl_context context) {
  if (context == nullptr) return CL_INVALID_CONTEXT;
  retain_context_handle(context);
  return CL_SUCCESS;
}

cl_int clReleaseContext(cl_context context) {
  if (context == nullptr) return CL_INVALID_CONTEXT;
  release_context_handle(context);
  return CL_SUCCESS;
}

cl_int clGetContextInfo(cl_context context, cl_context_info param_name,
                        size_t param_value_size, void* param_value,
                        size_t* param_value_size_ret) {
  if (context == nullptr) return CL_INVALID_CONTEXT;
  switch (param_name) {
    case CL_CONTEXT_REFERENCE_COUNT:
      return info_scalar(
          param_value_size, param_value, param_value_size_ret,
          static_cast<cl_uint>(context->refs.load(std::memory_order_relaxed)));
    case CL_CONTEXT_NUM_DEVICES:
      return info_scalar(param_value_size, param_value, param_value_size_ret,
                         static_cast<cl_uint>(context->devices.size()));
    case CL_CONTEXT_DEVICES:
      return info_bytes(param_value_size, param_value, param_value_size_ret,
                        context->devices.data(),
                        context->devices.size() * sizeof(cl_device_id));
    case CL_CONTEXT_PROPERTIES:
      return info_bytes(
          param_value_size, param_value, param_value_size_ret,
          context->props.data(),
          context->props.size() * sizeof(cl_context_properties));
    default: return CL_INVALID_VALUE;
  }
}

/* --- command queues -------------------------------------------------------- */

cl_command_queue clCreateCommandQueue(cl_context context, cl_device_id device,
                                      cl_command_queue_properties properties,
                                      cl_int* errcode_ret) {
  if (context == nullptr) {
    set_err(errcode_ret, CL_INVALID_CONTEXT);
    return nullptr;
  }
  if (!device_live(device)) {
    set_err(errcode_ret, CL_INVALID_DEVICE);
    return nullptr;
  }
  if (!context->context->has_device(*device->device)) {
    set_err(errcode_ret, CL_INVALID_DEVICE);
    return nullptr;
  }
  constexpr cl_command_queue_properties kKnown =
      CL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE | CL_QUEUE_PROFILING_ENABLE;
  if ((properties & ~kKnown) != 0) {
    set_err(errcode_ret, CL_INVALID_VALUE);
    return nullptr;
  }
  const mocl::QueueProperties qp =
      (properties & CL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE)
          ? mocl::QueueProperties::OutOfOrder
          : mocl::QueueProperties::Default;
  try {
    auto* q = new _cl_command_queue;
    q->queue = std::make_unique<mocl::CommandQueue>(*context->context,
                                                    *device->device, qp);
    q->context = context;
    retain_context_handle(context);
    q->device = device;
    retain_device_handle(device);
    q->properties = properties;
    set_err(errcode_ret, CL_SUCCESS);
    return q;
  } catch (const mcore::Error& e) {
    set_err(errcode_ret, cl_code(e.status()));
    return nullptr;
  } catch (...) {
    set_err(errcode_ret, CL_OUT_OF_HOST_MEMORY);
    return nullptr;
  }
}

cl_int clRetainCommandQueue(cl_command_queue command_queue) {
  if (command_queue == nullptr) return CL_INVALID_COMMAND_QUEUE;
  retain_queue_handle(command_queue);
  return CL_SUCCESS;
}

cl_int clReleaseCommandQueue(cl_command_queue command_queue) {
  if (command_queue == nullptr) return CL_INVALID_COMMAND_QUEUE;
  release_queue_handle(command_queue);
  return CL_SUCCESS;
}

cl_int clGetCommandQueueInfo(cl_command_queue command_queue,
                             cl_command_queue_info param_name,
                             size_t param_value_size, void* param_value,
                             size_t* param_value_size_ret) {
  if (command_queue == nullptr) return CL_INVALID_COMMAND_QUEUE;
  switch (param_name) {
    case CL_QUEUE_CONTEXT:
      return info_scalar(param_value_size, param_value, param_value_size_ret,
                         command_queue->context);
    case CL_QUEUE_DEVICE:
      return info_scalar(param_value_size, param_value, param_value_size_ret,
                         command_queue->device);
    case CL_QUEUE_REFERENCE_COUNT:
      return info_scalar(param_value_size, param_value, param_value_size_ret,
                         static_cast<cl_uint>(command_queue->refs.load(
                             std::memory_order_relaxed)));
    case CL_QUEUE_PROPERTIES:
      return info_scalar(param_value_size, param_value, param_value_size_ret,
                         command_queue->properties);
    default: return CL_INVALID_VALUE;
  }
}

/* --- memory objects -------------------------------------------------------- */

cl_mem clCreateBuffer(cl_context context, cl_mem_flags flags, size_t size,
                      void* host_ptr, cl_int* errcode_ret) {
  if (context == nullptr) {
    set_err(errcode_ret, CL_INVALID_CONTEXT);
    return nullptr;
  }
  if ((flags & ~(kAccessFlags | kHostFlags)) != 0 ||
      access_bit_count(flags) > 1 ||
      ((flags & CL_MEM_USE_HOST_PTR) &&
       (flags & (CL_MEM_ALLOC_HOST_PTR | CL_MEM_COPY_HOST_PTR)))) {
    set_err(errcode_ret, CL_INVALID_VALUE);
    return nullptr;
  }
  const bool wants_host =
      (flags & (CL_MEM_USE_HOST_PTR | CL_MEM_COPY_HOST_PTR)) != 0;
  if (wants_host != (host_ptr != nullptr)) {
    set_err(errcode_ret, CL_INVALID_HOST_PTR);
    return nullptr;
  }
  if (size == 0) {
    set_err(errcode_ret, CL_INVALID_BUFFER_SIZE);
    return nullptr;
  }
  try {
    auto* m = new _cl_mem;
    m->buffer =
        std::make_unique<mocl::Buffer>(to_mem_flags(flags), size, host_ptr);
    m->context = context;
    retain_context_handle(context);
    m->flags = (flags & kAccessFlags) != 0 ? flags
                                           : (flags | CL_MEM_READ_WRITE);
    m->host_ptr = host_ptr;
    {
      std::lock_guard<std::mutex> lock(mem_registry_mutex());
      mem_registry().insert(m);
    }
    set_err(errcode_ret, CL_SUCCESS);
    return m;
  } catch (const mcore::Error& e) {
    set_err(errcode_ret, cl_code(e.status()));
    return nullptr;
  } catch (...) {
    set_err(errcode_ret, CL_OUT_OF_HOST_MEMORY);
    return nullptr;
  }
}

cl_mem clCreateSubBuffer(cl_mem buffer, cl_mem_flags flags,
                         cl_buffer_create_type buffer_create_type,
                         const void* buffer_create_info, cl_int* errcode_ret) {
  if (!mem_live(buffer) || buffer->parent != nullptr) {
    set_err(errcode_ret, CL_INVALID_MEM_OBJECT);
    return nullptr;
  }
  if (buffer_create_type != CL_BUFFER_CREATE_TYPE_REGION ||
      buffer_create_info == nullptr || (flags & ~kAccessFlags) != 0 ||
      access_bit_count(flags) > 1) {
    set_err(errcode_ret, CL_INVALID_VALUE);
    return nullptr;
  }
  cl_buffer_region region;
  std::memcpy(&region, buffer_create_info, sizeof(region));
  if (region.size == 0) {
    set_err(errcode_ret, CL_INVALID_BUFFER_SIZE);
    return nullptr;
  }
  if (region.origin + region.size > buffer->buffer->size()) {
    set_err(errcode_ret, CL_INVALID_VALUE);
    return nullptr;
  }
  try {
    auto* m = new _cl_mem;
    m->buffer = std::make_unique<mocl::Buffer>(
        buffer->buffer->sub_buffer(region.origin, region.size));
    m->context = buffer->context;
    retain_context_handle(buffer->context);
    m->parent = buffer;
    buffer->refs.fetch_add(1, std::memory_order_relaxed);
    m->origin = region.origin;
    m->flags = flags != 0 ? flags : (buffer->flags & kAccessFlags);
    {
      std::lock_guard<std::mutex> lock(mem_registry_mutex());
      mem_registry().insert(m);
    }
    set_err(errcode_ret, CL_SUCCESS);
    return m;
  } catch (const mcore::Error& e) {
    set_err(errcode_ret, cl_code(e.status()));
    return nullptr;
  } catch (...) {
    set_err(errcode_ret, CL_OUT_OF_HOST_MEMORY);
    return nullptr;
  }
}

cl_int clRetainMemObject(cl_mem memobj) {
  if (!mem_live(memobj)) return CL_INVALID_MEM_OBJECT;
  memobj->refs.fetch_add(1, std::memory_order_relaxed);
  return CL_SUCCESS;
}

cl_int clReleaseMemObject(cl_mem memobj) {
  if (!mem_live(memobj)) return CL_INVALID_MEM_OBJECT;
  release_mem_handle(memobj);
  return CL_SUCCESS;
}

cl_int clGetMemObjectInfo(cl_mem memobj, cl_mem_info param_name,
                          size_t param_value_size, void* param_value,
                          size_t* param_value_size_ret) {
  if (!mem_live(memobj)) return CL_INVALID_MEM_OBJECT;
  const auto s = [&](auto v) {
    return info_scalar(param_value_size, param_value, param_value_size_ret, v);
  };
  switch (param_name) {
    case CL_MEM_TYPE:
      return s(static_cast<cl_mem_object_type>(CL_MEM_OBJECT_BUFFER));
    case CL_MEM_FLAGS: return s(memobj->flags);
    case CL_MEM_SIZE: return s(memobj->buffer->size());
    case CL_MEM_HOST_PTR: return s(memobj->host_ptr);
    case CL_MEM_MAP_COUNT:
      return s(static_cast<cl_uint>(memobj->buffer->map_count()));
    case CL_MEM_REFERENCE_COUNT:
      return s(
          static_cast<cl_uint>(memobj->refs.load(std::memory_order_relaxed)));
    case CL_MEM_CONTEXT: return s(memobj->context);
    case CL_MEM_ASSOCIATED_MEMOBJECT: return s(memobj->parent);
    case CL_MEM_OFFSET: return s(memobj->origin);
    default: return CL_INVALID_VALUE;
  }
}

cl_int clGetSupportedImageFormats(cl_context context, cl_mem_flags flags,
                                  cl_mem_object_type image_type,
                                  cl_uint num_entries,
                                  cl_image_format* image_formats,
                                  cl_uint* num_image_formats) {
  if (context == nullptr) return CL_INVALID_CONTEXT;
  if (image_type != CL_MEM_OBJECT_IMAGE2D &&
      image_type != CL_MEM_OBJECT_IMAGE3D) {
    return CL_INVALID_VALUE;
  }
  (void)flags;
  (void)num_entries;
  (void)image_formats;
  if (num_image_formats != nullptr) *num_image_formats = 0;
  return CL_SUCCESS;
}

/* --- programs --------------------------------------------------------------- */

cl_program clCreateProgramWithSource(cl_context context, cl_uint count,
                                     const char** strings,
                                     const size_t* lengths,
                                     cl_int* errcode_ret) {
  if (context == nullptr) {
    set_err(errcode_ret, CL_INVALID_CONTEXT);
    return nullptr;
  }
  if (count == 0 || strings == nullptr) {
    set_err(errcode_ret, CL_INVALID_VALUE);
    return nullptr;
  }
  std::string source;
  for (cl_uint i = 0; i < count; ++i) {
    if (strings[i] == nullptr) {
      set_err(errcode_ret, CL_INVALID_VALUE);
      return nullptr;
    }
    if (lengths != nullptr && lengths[i] != 0) {
      source.append(strings[i], lengths[i]);
    } else {
      source.append(strings[i]);
    }
  }
  auto* p = new _cl_program;
  p->context = context;
  retain_context_handle(context);
  p->source = std::move(source);
  set_err(errcode_ret, CL_SUCCESS);
  return p;
}

cl_program clCreateProgramWithBinary(cl_context context, cl_uint num_devices,
                                     const cl_device_id* device_list,
                                     const size_t* lengths,
                                     const unsigned char** binaries,
                                     cl_int* binary_status,
                                     cl_int* errcode_ret) {
  // Stub: MiniCL has no program binary format.
  (void)lengths;
  (void)binaries;
  if (context == nullptr) {
    set_err(errcode_ret, CL_INVALID_CONTEXT);
    return nullptr;
  }
  if (binary_status != nullptr && device_list != nullptr) {
    for (cl_uint i = 0; i < num_devices; ++i) {
      binary_status[i] = CL_INVALID_BINARY;
    }
  }
  set_err(errcode_ret, CL_INVALID_BINARY);
  return nullptr;
}

cl_int clRetainProgram(cl_program program) {
  if (program == nullptr) return CL_INVALID_PROGRAM;
  program->refs.fetch_add(1, std::memory_order_relaxed);
  return CL_SUCCESS;
}

cl_int clReleaseProgram(cl_program program) {
  if (program == nullptr) return CL_INVALID_PROGRAM;
  release_program_handle(program);
  return CL_SUCCESS;
}

cl_int clBuildProgram(cl_program program, cl_uint num_devices,
                      const cl_device_id* device_list, const char* options,
                      void(CL_CALLBACK* pfn_notify)(cl_program, void*),
                      void* user_data) {
  if (program == nullptr) return CL_INVALID_PROGRAM;
  if ((num_devices == 0) != (device_list == nullptr) ||
      (pfn_notify == nullptr && user_data != nullptr)) {
    return CL_INVALID_VALUE;
  }
  for (cl_uint i = 0; i < num_devices; ++i) {
    if (!device_live(device_list[i]) ||
        !program->context->context->has_device(*device_list[i]->device)) {
      return CL_INVALID_DEVICE;
    }
  }
  cl_int result = CL_SUCCESS;
  {
    std::lock_guard<std::mutex> lock(program->mutex);
    program->build_options = options != nullptr ? options : "";
    const std::vector<std::string> names = scan_kernel_names(program->source);
    std::vector<std::string> missing;
    for (const std::string& n : names) {
      if (!mocl::Program::builtin().contains(n)) missing.push_back(n);
    }
    if (missing.empty()) {
      program->kernel_names = names;
      program->build_status = CL_BUILD_SUCCESS;
      std::string log = "bound " + std::to_string(names.size()) +
                        " kernel(s) to registered implementations:";
      for (const std::string& n : names) log += " " + n;
      program->build_log = log;
    } else {
      program->kernel_names.clear();
      program->build_status = CL_BUILD_ERROR;
      std::string log =
          "MiniCL binds __kernel names to pre-registered native kernels; no "
          "registered implementation for:";
      for (const std::string& n : missing) log += " " + n;
      log += " (registered: ";
      bool first = true;
      for (const std::string& n : mocl::Program::builtin().kernel_names()) {
        if (!first) log += ", ";
        log += n;
        first = false;
      }
      log += ")";
      program->build_log = log;
      result = CL_BUILD_PROGRAM_FAILURE;
    }
  }
  if (pfn_notify != nullptr) pfn_notify(program, user_data);
  return result;
}

cl_int clUnloadCompiler(void) { return CL_SUCCESS; }

cl_int clGetProgramInfo(cl_program program, cl_program_info param_name,
                        size_t param_value_size, void* param_value,
                        size_t* param_value_size_ret) {
  if (program == nullptr) return CL_INVALID_PROGRAM;
  switch (param_name) {
    case CL_PROGRAM_REFERENCE_COUNT:
      return info_scalar(
          param_value_size, param_value, param_value_size_ret,
          static_cast<cl_uint>(program->refs.load(std::memory_order_relaxed)));
    case CL_PROGRAM_CONTEXT:
      return info_scalar(param_value_size, param_value, param_value_size_ret,
                         program->context);
    case CL_PROGRAM_NUM_DEVICES:
      return info_scalar(
          param_value_size, param_value, param_value_size_ret,
          static_cast<cl_uint>(program->context->devices.size()));
    case CL_PROGRAM_DEVICES:
      return info_bytes(
          param_value_size, param_value, param_value_size_ret,
          program->context->devices.data(),
          program->context->devices.size() * sizeof(cl_device_id));
    case CL_PROGRAM_SOURCE:
      return info_string(param_value_size, param_value, param_value_size_ret,
                         program->source.c_str());
    case CL_PROGRAM_BINARY_SIZES: {
      // No binary format: every device reports size 0.
      const std::vector<size_t> zeros(program->context->devices.size(), 0);
      return info_bytes(param_value_size, param_value, param_value_size_ret,
                        zeros.data(), zeros.size() * sizeof(size_t));
    }
    case CL_PROGRAM_BINARIES:
      return info_bytes(param_value_size, param_value, param_value_size_ret,
                        nullptr, 0);
    default: return CL_INVALID_VALUE;
  }
}

cl_int clGetProgramBuildInfo(cl_program program, cl_device_id device,
                             cl_program_build_info param_name,
                             size_t param_value_size, void* param_value,
                             size_t* param_value_size_ret) {
  if (program == nullptr) return CL_INVALID_PROGRAM;
  if (!device_live(device) ||
      !program->context->context->has_device(*device->device)) {
    return CL_INVALID_DEVICE;
  }
  std::lock_guard<std::mutex> lock(program->mutex);
  switch (param_name) {
    case CL_PROGRAM_BUILD_STATUS:
      return info_scalar(param_value_size, param_value, param_value_size_ret,
                         program->build_status);
    case CL_PROGRAM_BUILD_OPTIONS:
      return info_string(param_value_size, param_value, param_value_size_ret,
                         program->build_options.c_str());
    case CL_PROGRAM_BUILD_LOG:
      return info_string(param_value_size, param_value, param_value_size_ret,
                         program->build_log.c_str());
    default: return CL_INVALID_VALUE;
  }
}

/* --- kernels ----------------------------------------------------------------- */

cl_kernel clCreateKernel(cl_program program, const char* kernel_name,
                         cl_int* errcode_ret) {
  if (program == nullptr) {
    set_err(errcode_ret, CL_INVALID_PROGRAM);
    return nullptr;
  }
  if (kernel_name == nullptr) {
    set_err(errcode_ret, CL_INVALID_VALUE);
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(program->mutex);
  if (program->build_status != CL_BUILD_SUCCESS) {
    set_err(errcode_ret, CL_INVALID_PROGRAM_EXECUTABLE);
    return nullptr;
  }
  if (std::find(program->kernel_names.begin(), program->kernel_names.end(),
                kernel_name) == program->kernel_names.end()) {
    set_err(errcode_ret, CL_INVALID_KERNEL_NAME);
    return nullptr;
  }
  auto* k = new _cl_kernel;
  k->kernel = std::make_unique<mocl::Kernel>(
      mocl::Program::builtin().lookup(kernel_name));
  k->program = program;
  program->refs.fetch_add(1, std::memory_order_relaxed);
  k->name = kernel_name;
  k->num_args = count_kernel_params(program->source, k->name);
  set_err(errcode_ret, CL_SUCCESS);
  return k;
}

cl_int clCreateKernelsInProgram(cl_program program, cl_uint num_kernels,
                                cl_kernel* kernels, cl_uint* num_kernels_ret) {
  if (program == nullptr) return CL_INVALID_PROGRAM;
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(program->mutex);
    if (program->build_status != CL_BUILD_SUCCESS) {
      return CL_INVALID_PROGRAM_EXECUTABLE;
    }
    names = program->kernel_names;
  }
  if (num_kernels_ret != nullptr) {
    *num_kernels_ret = static_cast<cl_uint>(names.size());
  }
  if (kernels != nullptr) {
    if (num_kernels < names.size()) return CL_INVALID_VALUE;
    for (std::size_t i = 0; i < names.size(); ++i) {
      cl_int err = CL_SUCCESS;
      kernels[i] = clCreateKernel(program, names[i].c_str(), &err);
      if (err != CL_SUCCESS) return err;
    }
  }
  return CL_SUCCESS;
}

cl_int clRetainKernel(cl_kernel kernel) {
  if (kernel == nullptr) return CL_INVALID_KERNEL;
  kernel->refs.fetch_add(1, std::memory_order_relaxed);
  return CL_SUCCESS;
}

cl_int clReleaseKernel(cl_kernel kernel) {
  if (kernel == nullptr) return CL_INVALID_KERNEL;
  release_kernel_handle(kernel);
  return CL_SUCCESS;
}

cl_int clSetKernelArg(cl_kernel kernel, cl_uint arg_index, size_t arg_size,
                      const void* arg_value) {
  if (kernel == nullptr) return CL_INVALID_KERNEL;
  std::lock_guard<std::mutex> lock(kernel->mutex);
  if (arg_index >= kernel->num_args) return CL_INVALID_ARG_INDEX;
  try {
    if (arg_value == nullptr) {
      // clSetKernelArg(k, i, bytes, NULL): a local-memory request.
      if (arg_size == 0) return CL_INVALID_ARG_SIZE;
      kernel->kernel->set_arg_local(arg_index, arg_size);
      return CL_SUCCESS;
    }
    if (arg_size == sizeof(cl_mem)) {
      // A pointer-sized argument that names a live cl_mem is a buffer
      // binding; anything else is a scalar of the same size.
      cl_mem m;
      std::memcpy(&m, arg_value, sizeof(m));
      if (mem_live(m)) {
        kernel->kernel->set_arg(arg_index, *m->buffer);
        return CL_SUCCESS;
      }
    }
    kernel->kernel->set_arg_bytes(arg_index, arg_value, arg_size);
    return CL_SUCCESS;
  } catch (const mcore::Error& e) {
    // The runtime folds all argument problems into InvalidKernelArgs; at
    // this entry point the spec-mandated code is CL_INVALID_ARG_SIZE
    // (oversized scalars, zero-sized locals).
    return e.status() == Status::InvalidKernelArgs ? CL_INVALID_ARG_SIZE
                                                   : cl_code(e.status());
  } catch (...) {
    return CL_OUT_OF_HOST_MEMORY;
  }
}

cl_int clGetKernelInfo(cl_kernel kernel, cl_kernel_info param_name,
                       size_t param_value_size, void* param_value,
                       size_t* param_value_size_ret) {
  if (kernel == nullptr) return CL_INVALID_KERNEL;
  switch (param_name) {
    case CL_KERNEL_FUNCTION_NAME:
      return info_string(param_value_size, param_value, param_value_size_ret,
                         kernel->name.c_str());
    case CL_KERNEL_NUM_ARGS: {
      // Deviation: the descriptor table records no arity; report the
      // currently-bound argument count.
      std::lock_guard<std::mutex> lock(kernel->mutex);
      return info_scalar(param_value_size, param_value, param_value_size_ret,
                         static_cast<cl_uint>(kernel->kernel->args().arg_count()));
    }
    case CL_KERNEL_REFERENCE_COUNT:
      return info_scalar(
          param_value_size, param_value, param_value_size_ret,
          static_cast<cl_uint>(kernel->refs.load(std::memory_order_relaxed)));
    case CL_KERNEL_CONTEXT:
      return info_scalar(param_value_size, param_value, param_value_size_ret,
                         kernel->program->context);
    case CL_KERNEL_PROGRAM:
      return info_scalar(param_value_size, param_value, param_value_size_ret,
                         kernel->program);
    default: return CL_INVALID_VALUE;
  }
}

cl_int clGetKernelWorkGroupInfo(cl_kernel kernel, cl_device_id device,
                                cl_kernel_work_group_info param_name,
                                size_t param_value_size, void* param_value,
                                size_t* param_value_size_ret) {
  if (kernel == nullptr) return CL_INVALID_KERNEL;
  if (device == nullptr) {
    if (kernel->program->context->devices.size() != 1) {
      return CL_INVALID_DEVICE;
    }
    device = kernel->program->context->devices.front();
  }
  if (!device_live(device) ||
      !kernel->program->context->context->has_device(*device->device)) {
    return CL_INVALID_DEVICE;
  }
  mocl::KernelWorkGroupInfo wg;
  {
    std::lock_guard<std::mutex> lock(kernel->mutex);
    wg = mocl::kernel_workgroup_info(*kernel->kernel, *device->device);
  }
  switch (param_name) {
    case CL_KERNEL_WORK_GROUP_SIZE:
      return info_scalar(param_value_size, param_value, param_value_size_ret,
                         wg.max_work_group_size);
    case CL_KERNEL_COMPILE_WORK_GROUP_SIZE: {
      const size_t none[3] = {0, 0, 0};
      return info_bytes(param_value_size, param_value, param_value_size_ret,
                        none, sizeof(none));
    }
    case CL_KERNEL_LOCAL_MEM_SIZE:
      return info_scalar(param_value_size, param_value, param_value_size_ret,
                         static_cast<cl_ulong>(wg.local_mem_bytes));
    case CL_KERNEL_PREFERRED_WORK_GROUP_SIZE_MULTIPLE:
      return info_scalar(param_value_size, param_value, param_value_size_ret,
                         wg.preferred_work_group_size_multiple);
    case CL_KERNEL_PRIVATE_MEM_SIZE:
      return info_scalar(param_value_size, param_value, param_value_size_ret,
                         static_cast<cl_ulong>(0));
    default: return CL_INVALID_VALUE;
  }
}

/* --- events ------------------------------------------------------------------ */

cl_int clWaitForEvents(cl_uint num_events, const cl_event* event_list) {
  if (num_events == 0 || event_list == nullptr) return CL_INVALID_VALUE;
  for (cl_uint i = 0; i < num_events; ++i) {
    if (event_list[i] == nullptr || !event_list[i]->event) {
      return CL_INVALID_EVENT;
    }
  }
  cl_int result = CL_SUCCESS;
  for (cl_uint i = 0; i < num_events; ++i) {
    try {
      event_list[i]->event->wait();
    } catch (...) {
      result = CL_EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST;
    }
  }
  return result;
}

cl_int clGetEventInfo(cl_event event, cl_event_info param_name,
                      size_t param_value_size, void* param_value,
                      size_t* param_value_size_ret) {
  if (event == nullptr || !event->event) return CL_INVALID_EVENT;
  switch (param_name) {
    case CL_EVENT_COMMAND_QUEUE:
      return info_scalar(param_value_size, param_value, param_value_size_ret,
                         event->queue);
    case CL_EVENT_COMMAND_TYPE:
      return info_scalar(param_value_size, param_value, param_value_size_ret,
                         event->command_type);
    case CL_EVENT_REFERENCE_COUNT:
      return info_scalar(
          param_value_size, param_value, param_value_size_ret,
          static_cast<cl_uint>(event->refs.load(std::memory_order_relaxed)));
    case CL_EVENT_COMMAND_EXECUTION_STATUS: {
      cl_int status = exec_status_of(*event->event);
      // User events have no queue to progress through: the spec pins their
      // pre-completion status at CL_SUBMITTED.
      if (event->command_type == CL_COMMAND_USER && status == CL_QUEUED) {
        status = CL_SUBMITTED;
      }
      return info_scalar(param_value_size, param_value, param_value_size_ret,
                         status);
    }
    case CL_EVENT_CONTEXT:
      return info_scalar(param_value_size, param_value, param_value_size_ret,
                         event->context);
    default: return CL_INVALID_VALUE;
  }
}

cl_event clCreateUserEvent(cl_context context, cl_int* errcode_ret) {
  if (context == nullptr) {
    set_err(errcode_ret, CL_INVALID_CONTEXT);
    return nullptr;
  }
  auto* e = new _cl_event;
  e->event = mocl::AsyncEvent::create_user();
  e->context = context;
  retain_context_handle(context);
  e->command_type = CL_COMMAND_USER;
  set_err(errcode_ret, CL_SUCCESS);
  return e;
}

cl_int clRetainEvent(cl_event event) {
  if (event == nullptr) return CL_INVALID_EVENT;
  retain_event_handle(event);
  return CL_SUCCESS;
}

cl_int clReleaseEvent(cl_event event) {
  if (event == nullptr) return CL_INVALID_EVENT;
  release_event_handle(event);
  return CL_SUCCESS;
}

cl_int clSetUserEventStatus(cl_event event, cl_int execution_status) {
  if (event == nullptr || !event->event) return CL_INVALID_EVENT;
  if (execution_status != CL_COMPLETE && execution_status >= 0) {
    return CL_INVALID_VALUE;
  }
  return guarded([&] {
    event->event->set_user_status(execution_status == CL_COMPLETE
                                      ? Status::Success
                                      : Status::Cancelled);
    return CL_SUCCESS;
  });
}

cl_int clSetEventCallback(cl_event event, cl_int command_exec_callback_type,
                          void(CL_CALLBACK* pfn_notify)(cl_event, cl_int,
                                                        void*),
                          void* user_data) {
  if (event == nullptr || !event->event) return CL_INVALID_EVENT;
  if (pfn_notify == nullptr || command_exec_callback_type != CL_COMPLETE) {
    return CL_INVALID_VALUE;
  }
  retain_event_handle(event);  // the callback keeps the handle alive
  return guarded([&] {
    event->event->on_complete([event, pfn_notify, user_data](Status s) {
      pfn_notify(event,
                 s == Status::Success ? CL_COMPLETE : cl_code(s),
                 user_data);
      release_event_handle(event);
    });
    return CL_SUCCESS;
  });
}

cl_int clGetEventProfilingInfo(cl_event event, cl_profiling_info param_name,
                               size_t param_value_size, void* param_value,
                               size_t* param_value_size_ret) {
  if (event == nullptr || !event->event) return CL_INVALID_EVENT;
  if (event->command_type == CL_COMMAND_USER) {
    return CL_PROFILING_INFO_NOT_AVAILABLE;
  }
  mocl::ProfilingInfo prof;
  try {
    prof = event->event->profiling_ns();
  } catch (const mcore::Error&) {
    return CL_PROFILING_INFO_NOT_AVAILABLE;  // not terminal yet
  }
  cl_ulong value = 0;
  switch (param_name) {
    case CL_PROFILING_COMMAND_QUEUED: value = prof.queued_ns; break;
    case CL_PROFILING_COMMAND_SUBMIT: value = prof.submitted_ns; break;
    case CL_PROFILING_COMMAND_START: value = prof.started_ns; break;
    case CL_PROFILING_COMMAND_END: value = prof.ended_ns; break;
    default: return CL_INVALID_VALUE;
  }
  return info_scalar(param_value_size, param_value, param_value_size_ret,
                     value);
}

/* --- flush / finish ---------------------------------------------------------- */

cl_int clFlush(cl_command_queue command_queue) {
  // Commands are submitted to the executor eagerly at enqueue time.
  return command_queue != nullptr ? CL_SUCCESS : CL_INVALID_COMMAND_QUEUE;
}

cl_int clFinish(cl_command_queue command_queue) {
  if (command_queue == nullptr) return CL_INVALID_COMMAND_QUEUE;
  return guarded([&] {
    command_queue->queue->finish();
    return CL_SUCCESS;
  });
}

/* --- enqueued commands -------------------------------------------------------- */

cl_int clEnqueueReadBuffer(cl_command_queue command_queue, cl_mem buffer,
                           cl_bool blocking_read, size_t offset, size_t size,
                           void* ptr, cl_uint num_events_in_wait_list,
                           const cl_event* event_wait_list, cl_event* event) {
  if (command_queue == nullptr) return CL_INVALID_COMMAND_QUEUE;
  if (!mem_live(buffer)) return CL_INVALID_MEM_OBJECT;
  if (ptr == nullptr || size == 0) return CL_INVALID_VALUE;
  if (buffer->context != command_queue->context) return CL_INVALID_CONTEXT;
  std::vector<mocl::AsyncEventPtr> wait;
  cl_int err = gather_wait_list(num_events_in_wait_list, event_wait_list,
                                &wait);
  if (err != CL_SUCCESS) return err;
  return guarded([&] {
    mocl::AsyncEventPtr ev = command_queue->queue->enqueue_read_buffer_async(
        *buffer->buffer, offset, size, ptr, std::move(wait));
    if (blocking_read == CL_TRUE) {
      try {
        ev->wait();
      } catch (const mcore::Error& e) {
        return cl_code(e.status());
      }
    }
    attach_event(event, std::move(ev), command_queue, CL_COMMAND_READ_BUFFER);
    return CL_SUCCESS;
  });
}

cl_int clEnqueueWriteBuffer(cl_command_queue command_queue, cl_mem buffer,
                            cl_bool blocking_write, size_t offset, size_t size,
                            const void* ptr, cl_uint num_events_in_wait_list,
                            const cl_event* event_wait_list, cl_event* event) {
  if (command_queue == nullptr) return CL_INVALID_COMMAND_QUEUE;
  if (!mem_live(buffer)) return CL_INVALID_MEM_OBJECT;
  if (ptr == nullptr || size == 0) return CL_INVALID_VALUE;
  if (buffer->context != command_queue->context) return CL_INVALID_CONTEXT;
  std::vector<mocl::AsyncEventPtr> wait;
  cl_int err = gather_wait_list(num_events_in_wait_list, event_wait_list,
                                &wait);
  if (err != CL_SUCCESS) return err;
  return guarded([&] {
    mocl::AsyncEventPtr ev = command_queue->queue->enqueue_write_buffer_async(
        *buffer->buffer, offset, size, ptr, std::move(wait));
    if (blocking_write == CL_TRUE) {
      try {
        ev->wait();
      } catch (const mcore::Error& e) {
        return cl_code(e.status());
      }
    }
    attach_event(event, std::move(ev), command_queue, CL_COMMAND_WRITE_BUFFER);
    return CL_SUCCESS;
  });
}

namespace {

/// Shared body of the rect transfers: they resolve their wait list, run
/// synchronously, and hand back a marker event.
cl_int enqueue_rect(cl_command_queue q, cl_mem buffer, bool is_read,
                    const size_t* buffer_origin, const size_t* host_origin,
                    const size_t* region, size_t buffer_row_pitch,
                    size_t buffer_slice_pitch, size_t host_row_pitch,
                    size_t host_slice_pitch, void* ptr,
                    cl_uint num_events_in_wait_list,
                    const cl_event* event_wait_list, cl_event* event) {
  if (q == nullptr) return CL_INVALID_COMMAND_QUEUE;
  if (!mem_live(buffer)) return CL_INVALID_MEM_OBJECT;
  if (ptr == nullptr || buffer_origin == nullptr || host_origin == nullptr ||
      region == nullptr || region[0] == 0 || region[1] == 0 ||
      region[2] == 0) {
    return CL_INVALID_VALUE;
  }
  if (buffer->context != q->context) return CL_INVALID_CONTEXT;
  std::vector<mocl::AsyncEventPtr> wait;
  cl_int err = gather_wait_list(num_events_in_wait_list, event_wait_list,
                                &wait);
  if (err != CL_SUCCESS) return err;
  err = resolve_wait_list(wait);
  if (err != CL_SUCCESS) return err;
  return guarded([&] {
    mocl::BufferRect brect;
    mocl::BufferRect hrect;
    for (int d = 0; d < 3; ++d) {
      brect.origin[d] = buffer_origin[d];
      hrect.origin[d] = host_origin[d];
      brect.region[d] = region[d];
      hrect.region[d] = region[d];
    }
    brect.row_pitch = buffer_row_pitch;
    brect.slice_pitch = buffer_slice_pitch;
    hrect.row_pitch = host_row_pitch;
    hrect.slice_pitch = host_slice_pitch;
    if (is_read) {
      q->queue->enqueue_read_buffer_rect(*buffer->buffer, brect, hrect, ptr);
    } else {
      q->queue->enqueue_write_buffer_rect(*buffer->buffer, brect, hrect, ptr);
    }
    if (event != nullptr) {
      attach_event(event, q->queue->enqueue_marker_async(), q,
                   is_read ? CL_COMMAND_READ_BUFFER_RECT
                           : CL_COMMAND_WRITE_BUFFER_RECT);
    }
    return CL_SUCCESS;
  });
}

}  // namespace

cl_int clEnqueueReadBufferRect(cl_command_queue command_queue, cl_mem buffer,
                               cl_bool blocking_read,
                               const size_t* buffer_origin,
                               const size_t* host_origin, const size_t* region,
                               size_t buffer_row_pitch,
                               size_t buffer_slice_pitch,
                               size_t host_row_pitch, size_t host_slice_pitch,
                               void* ptr, cl_uint num_events_in_wait_list,
                               const cl_event* event_wait_list,
                               cl_event* event) {
  (void)blocking_read;  // executed synchronously either way
  return enqueue_rect(command_queue, buffer, /*is_read=*/true, buffer_origin,
                      host_origin, region, buffer_row_pitch,
                      buffer_slice_pitch, host_row_pitch, host_slice_pitch,
                      ptr, num_events_in_wait_list, event_wait_list, event);
}

cl_int clEnqueueWriteBufferRect(cl_command_queue command_queue, cl_mem buffer,
                                cl_bool blocking_write,
                                const size_t* buffer_origin,
                                const size_t* host_origin,
                                const size_t* region, size_t buffer_row_pitch,
                                size_t buffer_slice_pitch,
                                size_t host_row_pitch, size_t host_slice_pitch,
                                const void* ptr,
                                cl_uint num_events_in_wait_list,
                                const cl_event* event_wait_list,
                                cl_event* event) {
  (void)blocking_write;
  return enqueue_rect(command_queue, buffer, /*is_read=*/false, buffer_origin,
                      host_origin, region, buffer_row_pitch,
                      buffer_slice_pitch, host_row_pitch, host_slice_pitch,
                      const_cast<void*>(ptr), num_events_in_wait_list,
                      event_wait_list, event);
}

cl_int clEnqueueCopyBuffer(cl_command_queue command_queue, cl_mem src_buffer,
                           cl_mem dst_buffer, size_t src_offset,
                           size_t dst_offset, size_t size,
                           cl_uint num_events_in_wait_list,
                           const cl_event* event_wait_list, cl_event* event) {
  if (command_queue == nullptr) return CL_INVALID_COMMAND_QUEUE;
  if (!mem_live(src_buffer) || !mem_live(dst_buffer)) {
    return CL_INVALID_MEM_OBJECT;
  }
  if (size == 0) return CL_INVALID_VALUE;
  if (src_buffer->context != command_queue->context ||
      dst_buffer->context != command_queue->context) {
    return CL_INVALID_CONTEXT;
  }
  if (src_offset + size <= src_buffer->buffer->size() &&
      dst_offset + size <= dst_buffer->buffer->size()) {
    const char* s =
        static_cast<const char*>(src_buffer->buffer->device_ptr()) +
        src_offset;
    const char* d =
        static_cast<const char*>(dst_buffer->buffer->device_ptr()) +
        dst_offset;
    if (s < d + size && d < s + size) return CL_MEM_COPY_OVERLAP;
  }
  std::vector<mocl::AsyncEventPtr> wait;
  cl_int err = gather_wait_list(num_events_in_wait_list, event_wait_list,
                                &wait);
  if (err != CL_SUCCESS) return err;
  return guarded([&] {
    mocl::AsyncEventPtr ev = command_queue->queue->enqueue_copy_buffer_async(
        *src_buffer->buffer, *dst_buffer->buffer, src_offset, dst_offset, size,
        std::move(wait));
    attach_event(event, std::move(ev), command_queue, CL_COMMAND_COPY_BUFFER);
    return CL_SUCCESS;
  });
}

void* clEnqueueMapBuffer(cl_command_queue command_queue, cl_mem buffer,
                         cl_bool blocking_map, cl_map_flags map_flags,
                         size_t offset, size_t size,
                         cl_uint num_events_in_wait_list,
                         const cl_event* event_wait_list, cl_event* event,
                         cl_int* errcode_ret) {
  (void)blocking_map;  // the map itself is synchronous
  if (command_queue == nullptr) {
    set_err(errcode_ret, CL_INVALID_COMMAND_QUEUE);
    return nullptr;
  }
  if (!mem_live(buffer)) {
    set_err(errcode_ret, CL_INVALID_MEM_OBJECT);
    return nullptr;
  }
  if (size == 0 || (map_flags & ~(CL_MAP_READ | CL_MAP_WRITE)) != 0) {
    set_err(errcode_ret, CL_INVALID_VALUE);
    return nullptr;
  }
  if (buffer->context != command_queue->context) {
    set_err(errcode_ret, CL_INVALID_CONTEXT);
    return nullptr;
  }
  std::vector<mocl::AsyncEventPtr> wait;
  cl_int err = gather_wait_list(num_events_in_wait_list, event_wait_list,
                                &wait);
  if (err == CL_SUCCESS) err = resolve_wait_list(wait);
  if (err != CL_SUCCESS) {
    set_err(errcode_ret, err);
    return nullptr;
  }
  const mocl::MapFlags mf =
      map_flags == CL_MAP_READ
          ? mocl::MapFlags::Read
          : map_flags == CL_MAP_WRITE ? mocl::MapFlags::Write
                                      : mocl::MapFlags::ReadWrite;
  try {
    void* p = command_queue->queue->enqueue_map_buffer(*buffer->buffer, mf,
                                                       offset, size);
    if (event != nullptr) {
      attach_event(event, command_queue->queue->enqueue_marker_async(),
                   command_queue, CL_COMMAND_MAP_BUFFER);
    }
    set_err(errcode_ret, CL_SUCCESS);
    return p;
  } catch (const mcore::Error& e) {
    set_err(errcode_ret, e.status() == Status::MapFailure
                             ? CL_MAP_FAILURE
                             : cl_code(e.status()));
    return nullptr;
  } catch (...) {
    set_err(errcode_ret, CL_OUT_OF_HOST_MEMORY);
    return nullptr;
  }
}

cl_int clEnqueueUnmapMemObject(cl_command_queue command_queue, cl_mem memobj,
                               void* mapped_ptr,
                               cl_uint num_events_in_wait_list,
                               const cl_event* event_wait_list,
                               cl_event* event) {
  if (command_queue == nullptr) return CL_INVALID_COMMAND_QUEUE;
  if (!mem_live(memobj)) return CL_INVALID_MEM_OBJECT;
  if (mapped_ptr == nullptr) return CL_INVALID_VALUE;
  if (memobj->context != command_queue->context) return CL_INVALID_CONTEXT;
  std::vector<mocl::AsyncEventPtr> wait;
  cl_int err = gather_wait_list(num_events_in_wait_list, event_wait_list,
                                &wait);
  if (err == CL_SUCCESS) err = resolve_wait_list(wait);
  if (err != CL_SUCCESS) return err;
  cl_int rc = guarded([&] {
    command_queue->queue->enqueue_unmap(*memobj->buffer, mapped_ptr);
    if (event != nullptr) {
      attach_event(event, command_queue->queue->enqueue_marker_async(),
                   command_queue, CL_COMMAND_UNMAP_MEM_OBJECT);
    }
    return CL_SUCCESS;
  });
  // The runtime reports an unknown mapped_ptr as a map failure; at this
  // entry point the spec-mandated code is CL_INVALID_VALUE.
  return rc == CL_MAP_FAILURE ? CL_INVALID_VALUE : rc;
}

cl_int clEnqueueNDRangeKernel(cl_command_queue command_queue, cl_kernel kernel,
                              cl_uint work_dim,
                              const size_t* global_work_offset,
                              const size_t* global_work_size,
                              const size_t* local_work_size,
                              cl_uint num_events_in_wait_list,
                              const cl_event* event_wait_list,
                              cl_event* event) {
  if (command_queue == nullptr) return CL_INVALID_COMMAND_QUEUE;
  if (kernel == nullptr || !kernel->kernel) return CL_INVALID_KERNEL;
  if (kernel->program->context != command_queue->context) {
    return CL_INVALID_CONTEXT;
  }
  if (work_dim < 1 || work_dim > 3) return CL_INVALID_WORK_DIMENSION;
  if (global_work_size == nullptr) return CL_INVALID_GLOBAL_WORK_SIZE;
  for (cl_uint d = 0; d < work_dim; ++d) {
    if (global_work_size[d] == 0) return CL_INVALID_GLOBAL_WORK_SIZE;
  }
  if (local_work_size != nullptr) {
    for (cl_uint d = 0; d < work_dim; ++d) {
      if (local_work_size[d] == 0 ||
          global_work_size[d] % local_work_size[d] != 0) {
        return CL_INVALID_WORK_GROUP_SIZE;
      }
    }
  }
  std::vector<mocl::AsyncEventPtr> wait;
  cl_int err = gather_wait_list(num_events_in_wait_list, event_wait_list,
                                &wait);
  if (err != CL_SUCCESS) return err;
  const mocl::NDRange global = make_range(work_dim, global_work_size);
  const mocl::NDRange local = local_work_size != nullptr
                                  ? make_range(work_dim, local_work_size)
                                  : mocl::NDRange{};
  const mocl::NDRange offset = global_work_offset != nullptr
                                   ? make_range(work_dim, global_work_offset)
                                   : mocl::NDRange{};
  return guarded([&] {
    mocl::AsyncEventPtr ev;
    {
      // The queue snapshots the argument bindings at enqueue; the lock keeps
      // a concurrent clSetKernelArg from racing that snapshot.
      std::lock_guard<std::mutex> lock(kernel->mutex);
      if (kernel->num_args != SIZE_MAX) {
        for (std::size_t i = 0; i < kernel->num_args; ++i) {
          if (!kernel->kernel->args().is_set(i)) {
            return CL_INVALID_KERNEL_ARGS;
          }
        }
      }
      ev = command_queue->queue->enqueue_ndrange_async(
          *kernel->kernel, global, local, std::move(wait), offset);
    }
    attach_event(event, std::move(ev), command_queue,
                 CL_COMMAND_NDRANGE_KERNEL);
    return CL_SUCCESS;
  });
}

cl_int clEnqueueTask(cl_command_queue command_queue, cl_kernel kernel,
                     cl_uint num_events_in_wait_list,
                     const cl_event* event_wait_list, cl_event* event) {
  const size_t one = 1;
  cl_int err = clEnqueueNDRangeKernel(command_queue, kernel, 1, nullptr, &one,
                                      &one, num_events_in_wait_list,
                                      event_wait_list, event);
  if (err == CL_SUCCESS && event != nullptr) {
    (*event)->command_type = CL_COMMAND_TASK;
  }
  return err;
}

cl_int clEnqueueNativeKernel(cl_command_queue command_queue,
                             void(CL_CALLBACK* user_func)(void*), void* args,
                             size_t cb_args, cl_uint num_mem_objects,
                             const cl_mem* mem_list, const void** args_mem_loc,
                             cl_uint num_events_in_wait_list,
                             const cl_event* event_wait_list, cl_event* event) {
  // Stub: native kernels are not supported (CL_EXEC_NATIVE_KERNEL is not in
  // the device's execution capabilities).
  (void)user_func;
  (void)args;
  (void)cb_args;
  (void)num_mem_objects;
  (void)mem_list;
  (void)args_mem_loc;
  (void)num_events_in_wait_list;
  (void)event_wait_list;
  (void)event;
  if (command_queue == nullptr) return CL_INVALID_COMMAND_QUEUE;
  return CL_INVALID_OPERATION;
}

cl_int clEnqueueMarker(cl_command_queue command_queue, cl_event* event) {
  if (command_queue == nullptr) return CL_INVALID_COMMAND_QUEUE;
  if (event == nullptr) return CL_INVALID_VALUE;
  return guarded([&] {
    attach_event(event, command_queue->queue->enqueue_marker_async(),
                 command_queue, CL_COMMAND_MARKER);
    return CL_SUCCESS;
  });
}

cl_int clEnqueueWaitForEvents(cl_command_queue command_queue,
                              cl_uint num_events, const cl_event* event_list) {
  if (command_queue == nullptr) return CL_INVALID_COMMAND_QUEUE;
  if (num_events == 0 || event_list == nullptr) return CL_INVALID_VALUE;
  std::vector<mocl::AsyncEventPtr> wait;
  for (cl_uint i = 0; i < num_events; ++i) {
    if (event_list[i] == nullptr || !event_list[i]->event) {
      return CL_INVALID_EVENT;
    }
    wait.push_back(event_list[i]->event);
  }
  return guarded([&] {
    // A barrier carrying the wait list: later commands (on either queue
    // flavor) cannot start until these events resolve.
    mocl::AsyncEventPtr ev =
        command_queue->queue->enqueue_barrier_async(std::move(wait));
    (void)ev;
    return CL_SUCCESS;
  });
}

cl_int clEnqueueBarrier(cl_command_queue command_queue) {
  if (command_queue == nullptr) return CL_INVALID_COMMAND_QUEUE;
  return guarded([&] {
    mocl::AsyncEventPtr ev = command_queue->queue->enqueue_barrier_async();
    (void)ev;
    return CL_SUCCESS;
  });
}

void* clGetExtensionFunctionAddress(const char* func_name) {
  (void)func_name;  // no extensions are exported
  return nullptr;
}

}  // extern "C"


