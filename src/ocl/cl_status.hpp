// Shared Status -> OpenCL error-code mapping.
//
// Both C surfaces — the mcl C API (capi.cpp, MCL_* codes) and the
// binary-compatible CL shim (cl_shim.cpp, CL_* codes) — translate runtime
// Status values through this one table. The MCL_* constants deliberately use
// the OpenCL numeric values, so a single function serves both; the CL
// error-matrix test (tests/cl_errors_test.cpp) cross-checks its expectations
// against this function, which is what keeps the shim's returns, the mcl
// API's returns, and the test table from drifting apart.
#pragma once

#include <cstdint>

#include "core/error.hpp"

namespace mcl::ocl {

/// Numeric OpenCL error code for a runtime Status (CL_SUCCESS == 0,
/// CL_INVALID_VALUE == -30, ...). Total over the enum: unknown/new Status
/// values conservatively map to CL_INVALID_VALUE.
[[nodiscard]] constexpr std::int32_t status_to_cl_code(
    core::Status s) noexcept {
  using core::Status;
  switch (s) {
    case Status::Success: return 0;                 // CL_SUCCESS
    case Status::InvalidValue: return -30;          // CL_INVALID_VALUE
    case Status::InvalidBufferSize: return -61;     // CL_INVALID_BUFFER_SIZE
    case Status::InvalidMemFlags: return -30;       // CL_INVALID_VALUE
    case Status::InvalidKernelArgs: return -52;     // CL_INVALID_KERNEL_ARGS
    case Status::InvalidWorkGroupSize: return -54;  // CL_INVALID_WORK_GROUP_SIZE
    case Status::InvalidGlobalWorkSize: return -63; // CL_INVALID_GLOBAL_WORK_SIZE
    case Status::InvalidKernelName: return -46;     // CL_INVALID_KERNEL_NAME
    case Status::InvalidOperation: return -59;      // CL_INVALID_OPERATION
    case Status::InvalidLaunch: return -59;         // CL_INVALID_OPERATION
    case Status::MapFailure: return -12;            // CL_MAP_FAILURE
    case Status::OutOfResources: return -4;  // CL_MEM_OBJECT_ALLOCATION_FAILURE
    case Status::DeviceNotFound: return -1;         // CL_DEVICE_NOT_FOUND
    case Status::BuildProgramFailure: return -11;   // CL_BUILD_PROGRAM_FAILURE
    // mcl-specific terminal states with no CL analogue: a sanitizer finding
    // or a cancelled/timed-out serve request aborts the command, which CL
    // models as an invalid operation on the dependents.
    case Status::SanitizerViolation: return -59;    // CL_INVALID_OPERATION
    case Status::Cancelled: return -59;             // CL_INVALID_OPERATION
    case Status::InternalError: return -30;         // CL_INVALID_VALUE
  }
  return -30;
}

}  // namespace mcl::ocl
