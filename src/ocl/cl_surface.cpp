#include "ocl/cl_surface.hpp"

#include <cstring>

namespace mcl::ocl {

namespace {

using S = ClSurfaceStatus;

// Covering-test shorthands. `kMatrix` is the table-driven negative test
// (tests/cl_errors_test.cpp); the conformance programs are unmodified
// external-style C hosts (examples/conformance/); `kShim` is the C++
// integration suite (tests/cl_shim_test.cpp); `kSubdev` the sub-device
// sharding suite (tests/subdevice_test.cpp).
constexpr const char* kMatrix = "cl_errors_test";
constexpr const char* kHello = "conformance_hello_opencl";
constexpr const char* kMin = "conformance_parallel_min";
constexpr const char* kShim = "cl_shim_test";
constexpr const char* kSubdev = "subdevice_test";

constexpr const char* kMatrixShim = "cl_errors_test,cl_shim_test";
constexpr const char* kCore =
    "cl_errors_test,conformance_hello_opencl,conformance_parallel_min,cl_shim_test";
constexpr const char* kMatrixHello = "cl_errors_test,conformance_hello_opencl";
constexpr const char* kMatrixSubdev = "cl_errors_test,subdevice_test";

// Sorted by name (asserted by the drift-guard test).
constexpr ClSurfaceEntry kSurface[] = {
    {"clBuildProgram", S::Implemented, kCore,
     "binds __kernel names in the source to registered kernel descriptors; "
     "CL_BUILD_PROGRAM_FAILURE + build log when a name has no registered "
     "implementation"},
    {"clCreateBuffer", S::Implemented, kCore,
     "host-memory buffer; CL_MEM_USE_HOST_PTR wraps the caller's storage"},
    {"clCreateCommandQueue", S::Implemented, kCore,
     "in-order or CL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE; profiling always on"},
    {"clCreateContext", S::Implemented, kCore,
     "multi-device contexts supported (CPU + sub-devices + simulated GPU)"},
    {"clCreateContextFromType", S::Implemented, kMatrixShim,
     "CL_DEVICE_TYPE_CPU/GPU/DEFAULT/ALL against the MiniCL platform"},
    {"clCreateImage2D", S::Unsupported, "",
     "no image support in the CL shim (mcl images are C++-API only)"},
    {"clCreateImage3D", S::Unsupported, "", "no image support in the CL shim"},
    {"clCreateKernel", S::Implemented, kCore,
     "resolves against the built program's bound kernel names"},
    {"clCreateKernelsInProgram", S::Implemented, kMatrixShim,
     "one kernel per bound __kernel name, in source order"},
    {"clCreateProgramWithBinary", S::Stubbed, kMatrix,
     "no binary format exists; returns CL_INVALID_BINARY"},
    {"clCreateProgramWithSource", S::Implemented, kCore,
     "stores the concatenated source for clBuildProgram name binding"},
    {"clCreateSampler", S::Unsupported, "", "no sampler support"},
    {"clCreateSubBuffer", S::Implemented, kMatrixShim,
     "CL_BUFFER_CREATE_TYPE_REGION views over the parent's storage"},
    {"clCreateSubDevices", S::Implemented, kMatrixSubdev,
     "CPU pool sharding: CL_DEVICE_PARTITION_EQUALLY / BY_COUNTS (OpenCL 1.2 "
     "entry point provided for device fission)"},
    {"clCreateUserEvent", S::Implemented, kMatrixShim,
     "completes via clSetUserEventStatus; usable in any wait list"},
    {"clEnqueueBarrier", S::Implemented, kMatrixShim,
     "out-of-order fence (implicit on in-order queues)"},
    {"clEnqueueCopyBuffer", S::Implemented, kMatrixShim,
     "device-side copy; overlapping regions rejected"},
    {"clEnqueueMapBuffer", S::Implemented, kMatrixHello,
     "returns the canonical pointer (zero-copy, the paper's Fig 7/8 point)"},
    {"clEnqueueMarker", S::Implemented, kMatrixShim,
     "timestamped no-op event"},
    {"clEnqueueNDRangeKernel", S::Implemented, kCore,
     "up to 3 dims, NULL local supported, global_work_offset supported"},
    {"clEnqueueNativeKernel", S::Stubbed, kMatrix,
     "not supported; returns CL_INVALID_OPERATION"},
    {"clEnqueueReadBuffer", S::Implemented, kCore,
     "blocking and non-blocking; event-graph executor under the hood"},
    {"clEnqueueReadBufferRect", S::Implemented, kMatrixShim,
     "strided 3D buffer -> host copies"},
    {"clEnqueueTask", S::Implemented, kMatrixShim,
     "single work-item clEnqueueNDRangeKernel"},
    {"clEnqueueUnmapMemObject", S::Implemented, kMatrixHello,
     "decrements the map count; no copy"},
    {"clEnqueueWaitForEvents", S::Implemented, kMatrix,
     "in-order wait-list barrier (deprecated 1.1 API kept for compatibility)"},
    {"clEnqueueWriteBuffer", S::Implemented, kCore,
     "blocking and non-blocking host -> buffer copies"},
    {"clEnqueueWriteBufferRect", S::Implemented, kMatrixShim,
     "strided 3D host -> buffer copies"},
    {"clFinish", S::Implemented, kCore,
     "drains the queue's event graph (transitively through callbacks)"},
    {"clFlush", S::Implemented, kMatrixShim,
     "no-op: commands are submitted eagerly at enqueue"},
    {"clGetCommandQueueInfo", S::Implemented, kMatrixShim,
     "context/device/reference-count/properties queries"},
    {"clGetContextInfo", S::Implemented, kMatrixShim,
     "devices, num-devices, reference count"},
    {"clGetDeviceIDs", S::Implemented, kCore,
     "CPU device + simulated-GPU device under one platform"},
    {"clGetDeviceInfo", S::Implemented, kCore,
     "host-relevant subset incl. partition/parent queries for sub-devices"},
    {"clGetEventInfo", S::Implemented, kMatrixShim,
     "execution status, command type, queue/context, reference count"},
    {"clGetEventProfilingInfo", S::Implemented, kCore,
     "QUEUED/SUBMIT/START/END from the shared steady-clock epoch"},
    {"clGetExtensionFunctionAddress", S::Implemented, kMatrix,
     "always NULL: no extensions are exported"},
    {"clGetImageInfo", S::Unsupported, "", "no image support"},
    {"clGetKernelInfo", S::Implemented, kMatrixShim,
     "function name, reference count, context/program"},
    {"clGetKernelWorkGroupInfo", S::Implemented, kMatrixShim,
     "work-group size limits and the preferred SIMD multiple per device"},
    {"clGetMemObjectInfo", S::Implemented, kMatrixShim,
     "type/flags/size/map-count/reference-count/context, sub-buffer origin"},
    {"clGetPlatformIDs", S::Implemented, kCore, "exactly one platform"},
    {"clGetPlatformInfo", S::Implemented, kMatrixHello,
     "profile/version/name/vendor/extensions strings"},
    {"clGetProgramBuildInfo", S::Implemented, kCore,
     "build status and the kernel-binding build log"},
    {"clGetProgramInfo", S::Implemented, kMatrixShim,
     "context, devices, source, reference count"},
    {"clGetSamplerInfo", S::Unsupported, "", "no sampler support"},
    {"clGetSupportedImageFormats", S::Implemented, kMatrix,
     "reports zero supported formats (no image support)"},
    {"clReleaseCommandQueue", S::Implemented, kCore,
     "finishes the queue at the last release"},
    {"clReleaseContext", S::Implemented, kCore,
     "reference-counted; devices outlive the context"},
    {"clReleaseDevice", S::Implemented, kMatrixSubdev,
     "no-op on root devices; sub-devices are refcounted and stay alive while "
     "queues hold them (OpenCL 1.2 entry point)"},
    {"clReleaseEvent", S::Implemented, kMatrixShim, "reference-counted"},
    {"clReleaseKernel", S::Implemented, kCore, "reference-counted"},
    {"clReleaseMemObject", S::Implemented, kCore, "reference-counted"},
    {"clReleaseProgram", S::Implemented, kCore, "reference-counted"},
    {"clRetainCommandQueue", S::Implemented, kMatrixShim, "reference-counted"},
    {"clRetainContext", S::Implemented, kMatrixShim, "reference-counted"},
    {"clRetainDevice", S::Implemented, kMatrixSubdev,
     "no-op on root devices; counts on sub-devices (OpenCL 1.2 entry point)"},
    {"clRetainEvent", S::Implemented, kMatrixShim, "reference-counted"},
    {"clRetainKernel", S::Implemented, kMatrixShim, "reference-counted"},
    {"clRetainMemObject", S::Implemented, kMatrixShim, "reference-counted"},
    {"clRetainProgram", S::Implemented, kMatrixShim, "reference-counted"},
    {"clSetEventCallback", S::Implemented, kMatrixShim,
     "CL_COMPLETE callbacks via the event's on_complete hook"},
    {"clSetKernelArg", S::Implemented, kCore,
     "buffers (by live-handle detection), scalars, and NULL local-memory "
     "requests"},
    {"clSetUserEventStatus", S::Implemented, kMatrixShim,
     "CL_COMPLETE or a negative error, exactly once"},
    {"clUnloadCompiler", S::Implemented, kMatrix,
     "no compiler to unload; returns CL_SUCCESS"},
    {"clWaitForEvents", S::Implemented, kMatrixShim,
     "waits on events from any queue of the context"},
};

}  // namespace

std::span<const ClSurfaceEntry> cl_surface() { return kSurface; }

const ClSurfaceEntry* cl_surface_find(const char* name) {
  if (name == nullptr) return nullptr;
  for (const ClSurfaceEntry& e : kSurface) {
    if (std::strcmp(e.name, name) == 0) return &e;
  }
  return nullptr;
}

const char* to_string(ClSurfaceStatus status) noexcept {
  switch (status) {
    case ClSurfaceStatus::Implemented: return "implemented";
    case ClSurfaceStatus::Stubbed: return "stubbed";
    case ClSurfaceStatus::Unsupported: return "unsupported";
  }
  return "unknown";
}

}  // namespace mcl::ocl
