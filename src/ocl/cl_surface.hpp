// CL 1.1 shim surface table.
//
// One row per CL entry point, recording its implementation status and the
// tests that cover it. This single table drives three consumers so none can
// drift from the shim itself:
//  - the docs matrix in docs/cl_shim.md (reviewed against this table),
//  - the drift-guard tests in tests/cl_errors_test.cpp (the set of names
//    declared in include/CL/cl.h must equal the Implemented+Stubbed rows,
//    and every Implemented row must name at least one covering test),
//  - tools/mclconform, which emits the conformance.json coverage report
//    that plot_results.py --check validates in tier1 (an Implemented entry
//    point with no conformance or matrix test fails the gate).
#pragma once

#include <cstddef>
#include <span>

namespace mcl::ocl {

enum class ClSurfaceStatus {
  Implemented,  ///< full CL 1.1 semantics over the mcl runtime
  Stubbed,      ///< declared; returns the spec-mandated error, no behavior
  Unsupported,  ///< intentionally NOT declared in include/CL/cl.h
};

struct ClSurfaceEntry {
  const char* name;       ///< CL entry point, e.g. "clEnqueueNDRangeKernel"
  ClSurfaceStatus status;
  /// Comma-separated covering test names (ctest targets); empty for
  /// Stubbed/Unsupported rows. The tier1 coverage gate requires every
  /// Implemented row to be non-empty here.
  const char* tests;
  const char* note;  ///< one-line doc string (docs matrix / conformance.json)
};

/// The full surface table, sorted by name.
[[nodiscard]] std::span<const ClSurfaceEntry> cl_surface();

/// Row lookup by entry-point name; nullptr when absent.
[[nodiscard]] const ClSurfaceEntry* cl_surface_find(const char* name);

[[nodiscard]] const char* to_string(ClSurfaceStatus status) noexcept;

}  // namespace mcl::ocl
