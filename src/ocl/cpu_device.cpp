#include <algorithm>
#include <map>
#include <mutex>
#include <thread>

#include "core/sysinfo.hpp"
#include "ocl/detail/checked_runner.hpp"
#include "ocl/detail/group_runner.hpp"
#include "ocl/device.hpp"
#include "threading/affinity.hpp"
#include "threading/thread_pool.hpp"
#include "trace/trace.hpp"

namespace mcl::ocl {

namespace {

/// Rough per-workgroup traffic estimate for trace args: total bytes of all
/// bound buffer arguments, split evenly across workgroups. Computed only
/// when tracing is on.
std::uint64_t estimate_group_bytes(const KernelArgs& args,
                                   std::size_t total_groups) {
  std::uint64_t bytes = 0;
  for (std::size_t i = 0; i < args.arg_count(); ++i) {
    if (args.is_buffer(i)) bytes += args.buffer_object(i)->size();
  }
  return bytes / std::max<std::size_t>(total_groups, 1);
}

}  // namespace

struct CpuDevice::Impl {
  explicit Impl(const CpuDeviceConfig& config)
      : pool(config.threads, config.pin_workers) {}
  threading::ThreadPool pool;
  // Kernel launches are serialized per device: the pool's batch dispatch
  // supports one batch at a time, and the device models a single in-order
  // execution engine (multiple CommandQueues may share it).
  std::mutex launch_mutex;
};

CpuDevice::CpuDevice(CpuDeviceConfig config)
    : impl_(std::make_unique<Impl>(config)), config_(config) {}

CpuDevice::~CpuDevice() = default;

std::string CpuDevice::name() const {
  const core::HostInfo host = core::probe_host();
  return host.cpu_model.empty() ? "MiniCL CPU" : host.cpu_model;
}

int CpuDevice::compute_units() const {
  return static_cast<int>(impl_->pool.thread_count());
}

LaunchResult CpuDevice::launch(const KernelDef& def, const KernelArgs& args,
                               const NDRange& global, const NDRange& local,
                               const NDRange& offset) {
  if (config_.executor == ExecutorKind::Checked) {
    // mclsan dynamic mode: serial, instrumented execution. Throws
    // SanitizerViolation (after the launch completes) on any finding.
    detail::CheckedRunner checked(def, args, global, local,
                                  config_.fiber_stack_bytes, offset);
    LaunchResult result;
    result.local_used = checked.local();
    result.executor_used = ExecutorKind::Checked;
    std::lock_guard launch_lock(impl_->launch_mutex);
    trace::ScopedSpan span(
        trace::enabled() ? trace::intern("launch.checked:" + def.name)
                         : nullptr);
    const core::TimePoint t0 = core::now();
    checked.run();
    result.seconds = core::elapsed_s(t0, core::now());
    return result;
  }
  detail::GroupRunner runner(def, args, global, local, config_.executor,
                             config_.fiber_stack_bytes, offset);
  LaunchResult result;
  result.local_used = runner.local();
  result.executor_used = runner.executor();

  // Workgroups are claimed in chunks (as TBB-based runtimes do) so the
  // shared-counter cost amortizes; per-group and per-item costs remain.
  const std::size_t threads = impl_->pool.thread_count();
  const std::size_t chunk = std::clamp<std::size_t>(
      runner.total_groups() / (threads * 16), 1, 64);

  std::lock_guard launch_lock(impl_->launch_mutex);
  const core::TimePoint t0 = core::now();
  if (!trace::enabled()) {
    result.schedule = impl_->pool.parallel_run(
        runner.total_groups(),
        [&runner](std::size_t g) { runner.run_group(g); }, chunk,
        config_.scheduler);
  } else {
    // Traced launch: a span per workgroup tagged (group id, worker id,
    // estimated bytes touched) under an enclosing per-kernel launch span.
    // Kept off the fast path so the untraced lambda stays capture-light.
    const char* wg_name = trace::intern("wg:" + def.name);
    const std::uint64_t est_bytes =
        estimate_group_bytes(args, runner.total_groups());
    trace::ScopedSpan launch_span(trace::intern("launch:" + def.name),
                                  "groups,threads", runner.total_groups(),
                                  threads);
    result.schedule = impl_->pool.parallel_run(
        runner.total_groups(),
        [&runner, wg_name, est_bytes](std::size_t g) {
          trace::ScopedSpan span(wg_name, "group,worker,est_bytes", g,
                                 trace::current_thread_id(), est_bytes);
          runner.run_group(g);
        },
        chunk, config_.scheduler);
  }
  result.seconds = core::elapsed_s(t0, core::now());
  return result;
}

LaunchResult CpuDevice::launch_pinned(const KernelDef& def,
                                      const KernelArgs& args,
                                      const NDRange& global,
                                      const NDRange& local,
                                      std::span<const int> group_to_cpu) {
  detail::GroupRunner runner(def, args, global, local, config_.executor,
                             config_.fiber_stack_bytes);
  core::check(group_to_cpu.size() == runner.total_groups(),
              core::Status::InvalidValue,
              "group_to_cpu must name a CPU for every workgroup");

  // Bucket workgroups by target CPU; one pinned thread per distinct CPU.
  std::map<int, std::vector<std::size_t>> by_cpu;
  for (std::size_t g = 0; g < group_to_cpu.size(); ++g) {
    core::check(group_to_cpu[g] >= 0, core::Status::InvalidValue,
                "negative CPU id in group_to_cpu");
    by_cpu[group_to_cpu[g]].push_back(g);
  }

  LaunchResult result;
  result.local_used = runner.local();
  result.executor_used = runner.executor();

  // Null when tracing is off; ScopedSpan disarms on a null name.
  const char* wg_name =
      trace::enabled() ? trace::intern("wg:" + def.name) : nullptr;
  const std::uint64_t est_bytes =
      wg_name != nullptr ? estimate_group_bytes(args, runner.total_groups())
                         : 0;

  const core::TimePoint t0 = core::now();
  std::vector<std::thread> threads;
  threads.reserve(by_cpu.size());
  for (const auto& [cpu, groups] : by_cpu) {
    threads.emplace_back([cpu = cpu, &groups, &runner, wg_name, est_bytes] {
      threading::pin_current_thread(cpu);
      for (std::size_t g : groups) {
        trace::ScopedSpan span(wg_name, "group,cpu,est_bytes", g,
                               static_cast<std::uint64_t>(cpu), est_bytes);
        runner.run_group(g);
      }
    });
  }
  for (auto& t : threads) t.join();
  result.seconds = core::elapsed_s(t0, core::now());
  return result;
}

}  // namespace mcl::ocl
