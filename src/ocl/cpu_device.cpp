#include <algorithm>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string_view>
#include <thread>

#include "core/error.hpp"
#include "core/sysinfo.hpp"
#include "ocl/detail/checked_runner.hpp"
#include "ocl/detail/group_runner.hpp"
#include "ocl/device.hpp"
#include "prof/profiler.hpp"
#include "simd/vec.hpp"
#include "threading/affinity.hpp"
#include "threading/thread_pool.hpp"
#include "trace/trace.hpp"
#include "tune/tune.hpp"

namespace mcl::ocl {

namespace {

/// Total bytes of all bound buffer arguments — the traffic estimate behind
/// trace args and KernelProfile::achieved_gbps (each byte counted once per
/// launch, so re-reads are invisible; it is a floor, not a measurement).
std::uint64_t total_arg_bytes(const KernelArgs& args) {
  std::uint64_t bytes = 0;
  for (std::size_t i = 0; i < args.arg_count(); ++i) {
    if (args.is_buffer(i)) bytes += args.buffer_object(i)->size();
  }
  return bytes;
}

/// Rough per-workgroup traffic estimate for trace args: total buffer bytes
/// split evenly across workgroups.
std::uint64_t estimate_group_bytes(const KernelArgs& args,
                                   std::size_t total_groups) {
  return total_arg_bytes(args) / std::max<std::size_t>(total_groups, 1);
}

/// Items executed through the kernel's simd form. The Simd executor batches
/// full lane groups along dim 0 of each local row and runs the remainder
/// scalar, so coverage is (local0 - local0 % W) of every local0-item row.
std::uint64_t simd_items_of(const detail::GroupRunner& runner,
                            ExecutorKind used) {
  if (used != ExecutorKind::Simd) return 0;
  const std::size_t W = static_cast<std::size_t>(simd::kNativeFloatWidth);
  const std::size_t local0 = std::max<std::size_t>(runner.local()[0], 1);
  const std::size_t rows_per_group = runner.local().total() / local0;
  return static_cast<std::uint64_t>(runner.total_groups()) *
         (local0 - local0 % W) * rows_per_group;
}

/// Fault-injection hook for mclcheck's self-test (see docs/mclcheck.md):
/// MCL_CHECK_INJECT=chunker makes the pooled dispatch drop the last
/// workgroup, an off-by-one the differential fuzzer must catch and
/// minimize. Never set outside that acceptance test.
bool inject_chunker_bug() {
  const char* inject = std::getenv("MCL_CHECK_INJECT");
  return inject != nullptr && std::string_view(inject) == "chunker";
}

prof::LaunchMeta launch_meta(const KernelDef& def,
                             const detail::GroupRunner& runner,
                             ExecutorKind used, double seconds,
                             std::uint64_t est_bytes) {
  prof::LaunchMeta meta;
  meta.groups = runner.total_groups();
  meta.items = static_cast<std::uint64_t>(runner.total_groups()) *
               runner.local().total();
  meta.simd_items = simd_items_of(runner, used);
  meta.has_simd_form = def.simd != nullptr && simd::kNativeFloatWidth > 1;
  meta.seconds = seconds;
  meta.est_bytes = est_bytes;
  return meta;
}

}  // namespace

struct CpuDevice::Impl {
  explicit Impl(const CpuDeviceConfig& config)
      : pool(config.threads, config.pin_workers) {}
  threading::ThreadPool pool;
  // Kernel launches are serialized per device: the pool's batch dispatch
  // supports one batch at a time, and the device models a single in-order
  // execution engine (multiple CommandQueues may share it).
  std::mutex launch_mutex;
};

CpuDevice::CpuDevice(CpuDeviceConfig config)
    : impl_(std::make_unique<Impl>(config)), config_(config) {}

CpuDevice::~CpuDevice() = default;

std::string CpuDevice::name() const {
  const core::HostInfo host = core::probe_host();
  return host.cpu_model.empty() ? "MiniCL CPU" : host.cpu_model;
}

int CpuDevice::compute_units() const {
  return static_cast<int>(impl_->pool.thread_count());
}

LaunchResult CpuDevice::launch(const KernelDef& def, const KernelArgs& args,
                               const NDRange& global, const NDRange& local,
                               const NDRange& offset) {
  return launch_core(def, args, global, local, offset,
                     {0, impl_->pool.thread_count()},
                     impl_->pool.thread_count(), impl_->launch_mutex);
}

int CpuDevice::pool_worker_index() const noexcept {
  return impl_->pool.worker_index_here();
}

std::vector<std::shared_ptr<CpuSubDevice>> CpuDevice::partition_equally(
    std::size_t units) {
  const std::size_t total = impl_->pool.thread_count();
  core::check(units > 0 && units <= total, core::Status::InvalidValue,
              "partition_equally: units must be in [1, compute_units]");
  std::vector<std::shared_ptr<CpuSubDevice>> subs;
  subs.reserve(total / units);
  for (std::size_t begin = 0; begin + units <= total; begin += units) {
    subs.push_back(std::make_shared<CpuSubDevice>(
        *this, threading::WorkerSpan{begin, begin + units}, subs.size()));
  }
  return subs;
}

std::vector<std::shared_ptr<CpuSubDevice>> CpuDevice::partition_by_counts(
    std::span<const std::size_t> counts) {
  const std::size_t total = impl_->pool.thread_count();
  core::check(!counts.empty(), core::Status::InvalidValue,
              "partition_by_counts: counts must be non-empty");
  std::size_t sum = 0;
  for (std::size_t c : counts) {
    core::check(c > 0, core::Status::InvalidValue,
                "partition_by_counts: zero-width sub-device");
    sum += c;
  }
  core::check(sum <= total, core::Status::InvalidValue,
              "partition_by_counts: counts exceed compute_units");
  std::vector<std::shared_ptr<CpuSubDevice>> subs;
  subs.reserve(counts.size());
  std::size_t begin = 0;
  for (std::size_t c : counts) {
    subs.push_back(std::make_shared<CpuSubDevice>(
        *this, threading::WorkerSpan{begin, begin + c}, subs.size()));
    begin += c;
  }
  return subs;
}

CpuSubDevice::CpuSubDevice(CpuDevice& parent, threading::WorkerSpan span,
                           std::size_t index)
    : parent_(&parent), span_(span), index_(index) {}

std::string CpuSubDevice::name() const {
  return parent_->name() + " [sub " + std::to_string(index_) + ": workers " +
         std::to_string(span_.begin) + ".." + std::to_string(span_.end) + ")";
}

LaunchResult CpuSubDevice::launch(const KernelDef& def, const KernelArgs& args,
                                  const NDRange& global, const NDRange& local,
                                  const NDRange& offset) {
  return parent_->launch_core(def, args, global, local, offset, span_,
                              span_.size(), launch_mutex_);
}

LaunchResult CpuDevice::launch_core(const KernelDef& def,
                                    const KernelArgs& args,
                                    const NDRange& global, const NDRange& local,
                                    const NDRange& offset,
                                    threading::WorkerSpan span,
                                    std::size_t threads,
                                    std::mutex& launch_mutex) {
  threads = std::max<std::size_t>(threads, 1);
  if (config_.executor == ExecutorKind::Checked) {
    // mclsan dynamic mode: serial, instrumented execution. Throws
    // SanitizerViolation (after the launch completes) on any finding.
    detail::CheckedRunner checked(def, args, global, local,
                                  config_.fiber_stack_bytes, offset);
    LaunchResult result;
    result.local_used = checked.local();
    result.executor_used = ExecutorKind::Checked;
    std::lock_guard launch_lock(launch_mutex);
    trace::ScopedSpan span(
        trace::enabled() ? trace::intern("launch.checked:" + def.name)
                         : nullptr);
    prof::LaunchAcc acc;
    const core::TimePoint t0 = core::now();
    {
      // One scope around the whole serial run: hw counters still attribute
      // to the kernel even though there is no per-group fan-out.
      prof::GroupScope hw(prof::profiling() ? &acc : nullptr);
      checked.run();
    }
    result.seconds = core::elapsed_s(t0, core::now());
    if (prof::profiling()) {
      prof::LaunchMeta meta;
      const std::size_t local_total =
          std::max<std::size_t>(result.local_used.total(), 1);
      meta.items = global.total();
      meta.groups = meta.items / local_total;
      meta.has_simd_form = def.simd != nullptr && simd::kNativeFloatWidth > 1;
      meta.seconds = result.seconds;
      meta.est_bytes = total_arg_bytes(args);
      result.profile = prof::commit_launch(def.name, acc, meta);
    }
    return result;
  }
  // mcltune hook: only launches that leave every knob to the runtime are
  // tunable (an explicit executor config or a dispatch-order override is the
  // caller asserting policy, e.g. the ablation benches' fixed arms). Local
  // size is overridden only when the caller passed NullRange and the kernel
  // binds no local-memory args — their byte counts were sized for the
  // caller's groups. One relaxed load when MCL_TUNE is off.
  ExecutorKind exec_kind = config_.executor;
  NDRange launch_local = local;
  std::size_t chunk_divisor = 16;
  threading::ScheduleStrategy scheduler = config_.scheduler;
  std::optional<tune::Decision> tuned;
  if (tune::enabled() && config_.executor == ExecutorKind::Auto &&
      !config_.dispatch_order) {
    tuned = tune::Tuner::instance().decide(def, global, local,
                                           args.total_local_bytes() > 0,
                                           threads);
    if (tuned) {
      exec_kind = tuned->config.executor;
      // The tuner keys entries on has_local_args, so a local override can
      // only come from a no-local-args entry; re-check here anyway — the
      // caller's local byte counts are sized for its own group size, and a
      // resized group indexing past them is memory corruption, not a tuning
      // regression.
      if (local.is_null() && args.total_local_bytes() == 0 &&
          !tuned->config.local.is_null()) {
        launch_local = tuned->config.local;
      }
      chunk_divisor = tuned->config.chunk_divisor;
      scheduler = tuned->config.scheduler;
    }
  }

  detail::GroupRunner runner(def, args, global, launch_local, exec_kind,
                             config_.fiber_stack_bytes, offset);
  LaunchResult result;
  result.local_used = runner.local();
  result.executor_used = runner.executor();

  if (config_.dispatch_order) {
    // mclcheck's metamorphic dispatch-order transform: execute workgroups
    // serially on this thread in the permuted order. Race-free kernels must
    // be insensitive to it; the pool (and its chunker) is bypassed so the
    // order is exact, not a scheduling hint.
    std::lock_guard launch_lock(launch_mutex);
    const std::size_t total = runner.total_groups();
    const core::TimePoint t0 = core::now();
    for (std::size_t k = 0; k < total; ++k) {
      const std::size_t g = config_.dispatch_order(k, total);
      core::check(g < total, core::Status::InvalidValue,
                  "dispatch_order returned an out-of-range workgroup index");
      runner.run_group(g);
    }
    result.seconds = core::elapsed_s(t0, core::now());
    return result;
  }

  // Workgroups are claimed in chunks (as TBB-based runtimes do) so the
  // shared-counter cost amortizes; per-group and per-item costs remain.
  // `threads` is the shard width: sub-device launches size their chunks for
  // the shard, not the whole pool.
  const std::size_t chunk = std::clamp<std::size_t>(
      runner.total_groups() / (threads * chunk_divisor), 1, 64);
  // Real dispatch extent; diverges from total_groups() only under the
  // MCL_CHECK_INJECT=chunker fault (drops the last group when there are
  // at least two) so mclcheck's catch-and-minimize path can be exercised.
  std::size_t dispatch_groups = runner.total_groups();
  if (dispatch_groups > 1 && inject_chunker_bug()) --dispatch_groups;

  std::lock_guard launch_lock(launch_mutex);
  prof::LaunchAcc acc;
  const core::TimePoint t0 = core::now();
  if (!trace::enabled() && !prof::profiling()) {
    result.schedule = impl_->pool.parallel_run_on(
        span, dispatch_groups,
        [&runner](std::size_t g) { runner.run_group(g); }, chunk, scheduler);
  } else {
    // Instrumented launch: a trace span per workgroup tagged (group id,
    // worker id, estimated bytes touched) under an enclosing per-kernel
    // launch span, and a prof::GroupScope sampling the worker's hardware
    // counters across each workgroup batch. Either side disarms on null
    // (wg_name when tracing is off, the accumulator when not profiling);
    // the fast path above stays capture-light.
    const char* wg_name =
        trace::enabled() ? trace::intern("wg:" + def.name) : nullptr;
    const std::uint64_t est_bytes =
        estimate_group_bytes(args, runner.total_groups());
    prof::LaunchAcc* const accp = prof::profiling() ? &acc : nullptr;
    // Workgroups run on pool threads whose thread-local causal context is
    // not the launcher's; carry it into the lambda so wg: spans stay
    // attributable to the enclosing command (mclobs).
    const std::uint64_t ctx = trace::current_context();
    trace::ScopedSpan launch_span(
        trace::enabled() ? trace::intern("launch:" + def.name) : nullptr,
        "groups,threads", runner.total_groups(), threads);
    result.schedule = impl_->pool.parallel_run_on(
        span, dispatch_groups,
        [&runner, wg_name, est_bytes, accp, ctx](std::size_t g) {
          trace::ContextScope cscope(ctx);
          trace::ScopedSpan span(wg_name, "group,worker,est_bytes", g,
                                 wg_name != nullptr
                                     ? trace::current_thread_id()
                                     : 0,
                                 est_bytes);
          prof::GroupScope hw(accp);
          runner.run_group(g);
        },
        chunk, scheduler);
  }
  result.seconds = core::elapsed_s(t0, core::now());
  if (tuned) tune::Tuner::instance().report(*tuned, result.seconds);
  if (prof::profiling()) {
    result.profile = prof::commit_launch(
        def.name, acc,
        launch_meta(def, runner, result.executor_used, result.seconds,
                    total_arg_bytes(args)));
  }
  return result;
}

LaunchResult CpuDevice::launch_pinned(const KernelDef& def,
                                      const KernelArgs& args,
                                      const NDRange& global,
                                      const NDRange& local,
                                      std::span<const int> group_to_cpu) {
  detail::GroupRunner runner(def, args, global, local, config_.executor,
                             config_.fiber_stack_bytes);
  core::check(group_to_cpu.size() == runner.total_groups(),
              core::Status::InvalidValue,
              "group_to_cpu must name a CPU for every workgroup");

  // Bucket workgroups by target CPU; one pinned thread per distinct CPU.
  std::map<int, std::vector<std::size_t>> by_cpu;
  for (std::size_t g = 0; g < group_to_cpu.size(); ++g) {
    core::check(group_to_cpu[g] >= 0, core::Status::InvalidValue,
                "negative CPU id in group_to_cpu");
    by_cpu[group_to_cpu[g]].push_back(g);
  }

  LaunchResult result;
  result.local_used = runner.local();
  result.executor_used = runner.executor();

  // Null when tracing is off; ScopedSpan disarms on a null name.
  const char* wg_name =
      trace::enabled() ? trace::intern("wg:" + def.name) : nullptr;
  const std::uint64_t est_bytes =
      wg_name != nullptr ? estimate_group_bytes(args, runner.total_groups())
                         : 0;
  prof::LaunchAcc acc;
  prof::LaunchAcc* const accp = prof::profiling() ? &acc : nullptr;

  const core::TimePoint t0 = core::now();
  // Pinned threads are fresh; install the launcher's causal context so
  // their wg: spans attribute like pool-thread launches (mclobs).
  const std::uint64_t ctx = trace::current_context();
  std::vector<std::thread> threads;
  threads.reserve(by_cpu.size());
  for (const auto& [cpu, groups] : by_cpu) {
    threads.emplace_back(
        [cpu = cpu, &groups, &runner, wg_name, est_bytes, accp, ctx] {
          threading::pin_current_thread(cpu);
          trace::ContextScope cscope(ctx);
          for (std::size_t g : groups) {
            trace::ScopedSpan span(wg_name, "group,cpu,est_bytes", g,
                                   static_cast<std::uint64_t>(cpu), est_bytes);
            prof::GroupScope hw(accp);
            runner.run_group(g);
          }
        });
  }
  for (auto& t : threads) t.join();
  result.seconds = core::elapsed_s(t0, core::now());
  if (prof::profiling()) {
    result.profile = prof::commit_launch(
        def.name, acc,
        launch_meta(def, runner, result.executor_used, result.seconds,
                    total_arg_bytes(args)));
  }
  return result;
}

}  // namespace mcl::ocl
