#include "ocl/detail/checked_runner.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "ocl/detail/ctx_access.hpp"
#include "threading/fiber.hpp"
#include "veclegal/kernel_ir.hpp"
#include "verify/verify.hpp"

namespace mcl::ocl::detail {

namespace {

constexpr std::size_t kCanaryBytes = 64;
constexpr std::byte kCanaryPattern{0xCB};
constexpr std::size_t kFindingCap = 16;

[[nodiscard]] std::size_t round64(std::size_t n) noexcept {
  return (n + 63) & ~std::size_t{63};
}

}  // namespace

CheckedRunner::CheckedRunner(const KernelDef& def, const KernelArgs& args,
                             const NDRange& global, const NDRange& local,
                             std::size_t fiber_stack_bytes,
                             const NDRange& offset)
    : def_(def),
      args_(args),
      global_(global),
      offset_(offset),
      fiber_stack_bytes_(fiber_stack_bytes),
      // The GroupRunner constructor performs all launch validation (unset
      // args, divisibility, barrier/executor compatibility) and resolves the
      // NULL local size; Checked degrades inside it to Fiber/Loop, which is
      // exactly the compatibility we need. Its run_group() is never called —
      // execution happens here, instrumented.
      validator_(def, args, global, local, ExecutorKind::Checked,
                 fiber_stack_bytes, offset) {
  local_ = validator_.local();
}

void CheckedRunner::add_finding(std::string line) {
  if (std::find(findings_.begin(), findings_.end(), line) != findings_.end())
    return;
  if (findings_.size() >= kFindingCap) {
    ++suppressed_;
    return;
  }
  findings_.push_back(std::move(line));
}

void CheckedRunner::add_finding_keyed(const std::string& key,
                                      std::string line) {
  if (!finding_keys_.insert(key).second) {
    ++suppressed_;
    return;
  }
  add_finding(std::move(line));
}

// ---- static-shape replay of the registered IR ------------------------------

void CheckedRunner::replay_ir(const veclegal::KernelIr& ir) {
  // The IR models a 1D kernel whose induction variable is the dim-0 global
  // id; higher-dimensional launches are covered by the coarse checks only.
  if (global_.dims != 1) return;
  const auto& stmts = ir.body.stmts;
  const long long n = static_cast<long long>(global_[0]);
  const long long local0 = static_cast<long long>(local_[0]);
  const long long off0 = static_cast<long long>(offset_.offset_component(0));

  // Barrier statements partition the body into epochs; an access in stmt k
  // belongs to the epoch counted before k.
  std::vector<int> epoch(stmts.size(), 0);
  {
    int e = 0;
    for (std::size_t k = 0; k < stmts.size(); ++k) {
      epoch[k] = e;
      if (stmts[k].barrier) ++e;
    }
  }

  // Launches beyond int32 ids would overflow the compact shadow cells; such
  // sizes are far outside what the Checked (serial) executor is for.
  if (n > (1ll << 31) - 2) return;

  // Proof-carrying launch: discharge the kernel's symbolic facts against
  // this launch's shape class. Arrays the proof covers are exempted from
  // shadow replay below; everything unproven is replayed as before. Extents
  // and writability are resolved EXACTLY like the replay's own shadows, so
  // the proof talks about the same obligations the replay would check.
  std::shared_ptr<const verify::KernelFacts> facts;
  std::set<int> proven_ids;
  if (verify::runtime_enabled()) {
    facts = verify::facts_for(def_.name);
  }
  if (facts != nullptr) {
    verify::ShapeClass shape;
    shape.global0 = n;
    shape.local0 = local0;
    shape.offset0 = off0;
    for (const verify::ArrayFacts& af : facts->arrays) {
      long long extent = af.declared_extent;
      bool writable = true;
      if (af.arg_index >= 0) {
        const std::size_t arg = static_cast<std::size_t>(af.arg_index);
        if (extent <= 0 && af.local && args_.is_local(arg)) {
          extent =
              static_cast<long long>(args_.local_bytes(arg) / af.elem_bytes);
        } else if (const Buffer* buf = args_.buffer_object(arg)) {
          if (extent <= 0) {
            extent = static_cast<long long>(buf->size() / af.elem_bytes);
          }
          writable = buf->kernel_writable();
        }
      }
      shape.extents.push_back(extent);
      shape.writable.push_back(writable);
    }
    proof_ = verify::discharge_cached(def_.name, *facts, shape);
    // Under forced full replay (the soundness oracle) the proof is still
    // computed and exposed, but every access is replayed regardless — that
    // is the ground truth proofs are checked against.
    if (!force_full_replay_) {
      for (std::size_t idx = 0; idx < facts->arrays.size(); ++idx) {
        if (proof_->array_proven[idx]) {
          proven_ids.insert(facts->arrays[idx].array);
        }
      }
    }
  }

  // One shadow per array: per-element last writer and last reader. Recording
  // only the most recent access of each kind still reports at least one
  // conflict per racy element, at O(1) per declared access. Cells are kept
  // small (12 bytes) because shadow traffic dominates the mode's overhead;
  // the accessing item's workgroup is derived from its id when needed.
  struct Cell {
    std::int32_t writer = -1, reader = -1;
    std::uint16_t writer_epoch = 0, reader_epoch = 0;
  };
  struct Shadow {
    int id = 0;
    const veclegal::ArrayInfo* info = nullptr;
    long long extent = 0;
    bool writable = true;
    bool local = false;
    std::vector<Cell> cells;
  };
  std::vector<Shadow> shadows;
  auto shadow_index = [&](int id) -> std::size_t {
    for (std::size_t s = 0; s < shadows.size(); ++s) {
      if (shadows[s].id == id) return s;
    }
    Shadow s;
    s.id = id;
    s.info = ir.array_info(id);
    if (s.info != nullptr) {
      s.local = s.info->local;
      long long extent = s.info->extent;
      if (extent <= 0 && s.info->arg_index >= 0) {
        const std::size_t arg = static_cast<std::size_t>(s.info->arg_index);
        if (s.info->local && args_.is_local(arg)) {
          extent = static_cast<long long>(args_.local_bytes(arg) /
                                          s.info->elem_bytes);
        } else if (const Buffer* buf = args_.buffer_object(arg)) {
          extent = static_cast<long long>(buf->size() / s.info->elem_bytes);
        }
      }
      if (s.info->arg_index >= 0) {
        if (const Buffer* buf = args_.buffer_object(
                static_cast<std::size_t>(s.info->arg_index))) {
          s.writable = buf->kernel_writable();
        }
      }
      s.extent = extent;
      if (extent > 0) s.cells.resize(static_cast<std::size_t>(extent));
    }
    shadows.push_back(std::move(s));
    return shadows.size() - 1;
  };

  auto array_label = [&](const Shadow& s) {
    std::string label = "array #" + std::to_string(s.id);
    if (s.info != nullptr && s.info->arg_index >= 0)
      label += " (arg " + std::to_string(s.info->arg_index) + ")";
    return label;
  };

  // Flatten every declared access into a plan resolved once, so the hot
  // per-item loop does no lookups. Per-access "already reported" flags keep
  // one example finding per (rule, statement, array).
  struct Planned {
    std::size_t shadow = 0;
    long long scale = 1, offset = 0;
    bool is_write = false;
    int epoch = 0;
    const veclegal::Stmt* stmt = nullptr;
    bool b1_fired = false, s2_fired = false, s3_fired = false;
  };
  std::vector<Planned> plan;
  bool any_local = false;
  for (std::size_t k = 0; k < stmts.size(); ++k) {
    auto add_access = [&](const veclegal::ArrayRef& ref, bool is_write) {
      if (proven_ids.count(ref.array) != 0) {
        // Every access of this array is statically proven safe for this
        // shape class; its replay (the per-item inner loop) is skipped.
        ++skipped_accesses_;
        return;
      }
      const std::size_t si = shadow_index(ref.array);
      const Shadow& s = shadows[si];
      if (s.info == nullptr || s.extent <= 0) return;  // nothing declared
      if (is_write && !s.writable) {
        flagged_arrays_.insert(s.id);
        add_finding("[W1] kernel '" + def_.name + "': write to read-only " +
                    array_label(s) + " in '" + stmts[k].text + "'");
      }
      any_local = any_local || s.local;
      ++replayed_accesses_;
      plan.push_back({si, ref.subscript.scale, ref.subscript.offset, is_write,
                      epoch[k], &stmts[k], false, false, false});
    };
    for (const veclegal::ArrayRef& r : stmts[k].array_reads)
      add_access(r, false);
    if (stmts[k].array_write) add_access(*stmts[k].array_write, true);
  }
  // A fully proven launch skips the whole per-item replay loop — the
  // measurable Checked-mode speedup of proof-carrying launches.
  if (plan.empty()) return;

  // Barrier-free bodies have a single epoch, so no two accesses are ever
  // barrier-synchronized and the group of the conflicting item is moot.
  const bool multi_epoch = epoch.empty() ? false : epoch.back() > 0 ||
      std::find_if(stmts.begin(), stmts.end(),
                   [](const veclegal::Stmt& s) { return s.barrier; }) !=
          stmts.end();

  const std::int32_t local0_32 = static_cast<std::int32_t>(local0);
  std::int32_t prev_group = -1;
  for (std::int32_t i = 0; i < static_cast<std::int32_t>(n); ++i) {
    const std::int32_t group = i / local0_32;
    if (any_local && group != prev_group) {
      // Local arrays live in a fresh arena each workgroup: their shadow
      // resets at group boundaries (no cross-group aliasing).
      for (Shadow& s : shadows) {
        if (s.local) std::fill(s.cells.begin(), s.cells.end(), Cell{});
      }
      prev_group = group;
    }
    const long long gi = off0 + i;
    for (Planned& p : plan) {
      Shadow& s = shadows[p.shadow];
      const long long idx = p.scale * gi + p.offset;
      if (idx < 0 || idx >= s.extent) {
        if (!p.b1_fired) {
          p.b1_fired = true;
          flagged_arrays_.insert(s.id);
          add_finding("[B1] kernel '" + def_.name + "': out-of-bounds " +
                      (p.is_write ? "write" : "read") + " to " +
                      array_label(s) + " at index " + std::to_string(idx) +
                      " (extent " + std::to_string(s.extent) + ") in '" +
                      p.stmt->text + "' for workitem " + std::to_string(gi));
        }
        continue;
      }
      Cell& c = s.cells[static_cast<std::size_t>(idx)];
      // Two accesses are synchronized only when the same workgroup reaches
      // them in different barrier epochs; distinct groups never synchronize,
      // and same-epoch accesses by distinct items race.
      const std::uint16_t ep = static_cast<std::uint16_t>(p.epoch);
      auto synced = [&](std::int32_t other, std::uint16_t other_ep) {
        return multi_epoch && other / local0_32 == group && other_ep != ep;
      };
      if (p.is_write) {
        if (!p.s2_fired && c.writer >= 0 && c.writer != i &&
            !synced(c.writer, c.writer_epoch)) {
          p.s2_fired = true;
          flagged_arrays_.insert(s.id);
          add_finding("[S2] kernel '" + def_.name +
                      "': write-write race on " + array_label(s) + "[" +
                      std::to_string(idx) + "] between workitems " +
                      std::to_string(c.writer) + " and " + std::to_string(i) +
                      " in '" + p.stmt->text + "'");
        }
        if (!p.s3_fired && c.reader >= 0 && c.reader != i &&
            !synced(c.reader, c.reader_epoch)) {
          p.s3_fired = true;
          flagged_arrays_.insert(s.id);
          add_finding("[S3] kernel '" + def_.name + "': read-write race on " +
                      array_label(s) + "[" + std::to_string(idx) +
                      "] between reader workitem " + std::to_string(c.reader) +
                      " and writer " + std::to_string(i) + " in '" +
                      p.stmt->text + "'");
        }
        c.writer = i;
        c.writer_epoch = ep;
      } else {
        if (!p.s3_fired && c.writer >= 0 && c.writer != i &&
            !synced(c.writer, c.writer_epoch)) {
          p.s3_fired = true;
          flagged_arrays_.insert(s.id);
          add_finding("[S3] kernel '" + def_.name + "': read-write race on " +
                      array_label(s) + "[" + std::to_string(idx) +
                      "] between writer workitem " + std::to_string(c.writer) +
                      " and reader " + std::to_string(i) + " in '" +
                      p.stmt->text + "'");
        }
        c.reader = i;
        c.reader_epoch = ep;
      }
    }
  }
}

// ---- instrumented execution ------------------------------------------------

void CheckedRunner::run_group_checked_loop(std::size_t g0, std::size_t g1,
                                           std::size_t g2,
                                           void* const* local_mem) {
  std::function<void()> barrier_fn = [this] {
    add_finding("[P1] kernel '" + def_.name +
                "': barrier() called but the kernel is registered with "
                "needs_barrier=false");
  };
  WorkItemCtx ctx;
  CtxAccess::set_sizes(ctx, global_, local_, offset_);
  CtxAccess::set_group(ctx, g0, g1, g2);
  CtxAccess::set_local_mem(ctx, local_mem);
  CtxAccess::set_barrier(ctx, &barrier_fn);
  for (std::size_t z = 0; z < local_[2]; ++z) {
    for (std::size_t y = 0; y < local_[1]; ++y) {
      for (std::size_t x = 0; x < local_[0]; ++x) {
        CtxAccess::set_item(ctx, x, y, z);
        def_.scalar(args_, ctx);
      }
    }
  }
}

void CheckedRunner::run_group_checked_fiber(std::size_t g0, std::size_t g1,
                                            std::size_t g2,
                                            void* const* local_mem) {
  const std::size_t items = local_.total();
  std::vector<std::size_t> barrier_counts(items, 0);
  threading::run_fiber_group(
      items,
      [&](std::size_t index, threading::FiberYield& yield) {
        std::function<void()> barrier_fn = [&barrier_counts, index, &yield] {
          ++barrier_counts[index];
          yield.barrier();
        };
        WorkItemCtx ctx;
        CtxAccess::set_sizes(ctx, global_, local_, offset_);
        CtxAccess::set_group(ctx, g0, g1, g2);
        CtxAccess::set_local_mem(ctx, local_mem);
        CtxAccess::set_barrier(ctx, &barrier_fn);
        const std::size_t x = index % local_[0];
        const std::size_t y = (index / local_[0]) % local_[1];
        const std::size_t z = index / (local_[0] * local_[1]);
        CtxAccess::set_item(ctx, x, y, z);
        def_.scalar(args_, ctx);
      },
      fiber_stack_bytes_);
  const auto [lo, hi] =
      std::minmax_element(barrier_counts.begin(), barrier_counts.end());
  if (*lo != *hi) {
    // One example finding; every further divergent group counts as
    // suppressed instead of repeating the line per group.
    add_finding_keyed(
        "P1",
        "[P1] kernel '" + def_.name + "': barrier divergence in workgroup (" +
            std::to_string(g0) + "," + std::to_string(g1) + "," +
            std::to_string(g2) + "): workitems executed between " +
            std::to_string(*lo) + " and " + std::to_string(*hi) +
            " barrier() calls");
  }
}

void CheckedRunner::execute_groups() {
  // Local-memory arena with canary zones around every block: the block a
  // kernel sees at local_mem(arg) is bracketed by kCanaryBytes of 0xCB on
  // each side, checked after every workgroup (rule M1).
  struct LocalBlock {
    std::size_t arg = 0;
    std::size_t data_off = 0;  ///< offset of the usable block in the arena
    std::size_t bytes = 0;     ///< bytes the kernel asked for
  };
  std::vector<LocalBlock> blocks;
  std::size_t arena_bytes = 0;
  std::size_t max_arg = 0;
  for (std::size_t i = 0; i < args_.arg_count(); ++i) {
    if (!args_.is_local(i)) continue;
    const std::size_t bytes = args_.local_bytes(i);
    blocks.push_back({i, arena_bytes + kCanaryBytes, bytes});
    arena_bytes += kCanaryBytes + round64(bytes) + kCanaryBytes;
    max_arg = std::max(max_arg, i);
  }
  std::vector<std::byte> arena(arena_bytes);
  std::vector<void*> ptrs(blocks.empty() ? 0 : max_arg + 1, nullptr);
  for (const LocalBlock& b : blocks) ptrs[b.arg] = arena.data() + b.data_off;
  auto paint_canaries = [&] {
    for (const LocalBlock& b : blocks) {
      std::fill_n(arena.data() + b.data_off - kCanaryBytes, kCanaryBytes,
                  kCanaryPattern);
      std::fill_n(arena.data() + b.data_off + b.bytes,
                  round64(b.bytes) - b.bytes + kCanaryBytes, kCanaryPattern);
    }
  };
  auto check_canaries = [&](std::size_t group) {
    for (const LocalBlock& b : blocks) {
      const std::byte* lo = arena.data() + b.data_off - kCanaryBytes;
      const std::byte* hi = arena.data() + b.data_off + b.bytes;
      const std::size_t hi_len = round64(b.bytes) - b.bytes + kCanaryBytes;
      const bool lo_ok =
          std::all_of(lo, lo + kCanaryBytes,
                      [](std::byte v) { return v == kCanaryPattern; });
      const bool hi_ok = std::all_of(
          hi, hi + hi_len, [](std::byte v) { return v == kCanaryPattern; });
      if (!lo_ok || !hi_ok) {
        add_finding_keyed(
            "M1:" + std::to_string(b.arg),
            "[M1] kernel '" + def_.name + "': local-memory overflow at arg " +
                std::to_string(b.arg) + " (" + std::to_string(b.bytes) +
                " bytes requested, " +
                (lo_ok ? "overrun past the end" : "underrun before the start") +
                ") in workgroup " + std::to_string(group));
      }
    }
  };

  const std::size_t ngroups[3] = {global_[0] / local_[0],
                                  global_[1] / local_[1],
                                  global_[2] / local_[2]};
  void* const* local_mem = ptrs.empty() ? nullptr : ptrs.data();
  for (std::size_t g = 0; g < validator_.total_groups(); ++g) {
    const std::size_t g0 = g % ngroups[0];
    const std::size_t g1 = (g / ngroups[0]) % ngroups[1];
    const std::size_t g2 = g / (ngroups[0] * ngroups[1]);
    paint_canaries();
    if (def_.workgroup != nullptr) {
      WorkGroupCtx ctx;
      CtxAccess::init_group(ctx, global_, local_, local_mem, offset_);
      CtxAccess::set_group_id(ctx, g0, g1, g2);
      def_.workgroup(args_, ctx);
    } else if (def_.needs_barrier) {
      run_group_checked_fiber(g0, g1, g2, local_mem);
    } else {
      run_group_checked_loop(g0, g1, g2, local_mem);
    }
    check_canaries(g);
  }
}

void CheckedRunner::run() {
  findings_.clear();
  finding_keys_.clear();
  suppressed_ = 0;
  proof_.reset();
  flagged_arrays_.clear();
  skipped_accesses_ = 0;
  replayed_accesses_ = 0;

  // Snapshot read-only buffers; any post-launch difference is a write the
  // access flags forbid (rule W1). Catches kernels with no IR descriptor.
  struct Snapshot {
    std::size_t arg;
    const Buffer* buffer;
    std::vector<std::byte> bytes;
  };
  std::vector<Snapshot> snapshots;
  for (std::size_t i = 0; i < args_.arg_count(); ++i) {
    if (!args_.is_buffer(i)) continue;
    const Buffer* buf = args_.buffer_object(i);
    if (buf == nullptr || buf->kernel_writable()) continue;
    const std::byte* p = static_cast<const std::byte*>(buf->device_ptr());
    snapshots.push_back({i, buf, std::vector<std::byte>(p, p + buf->size())});
  }

  if (const veclegal::KernelIr* ir =
          veclegal::KernelIrRegistry::instance().find(def_.name)) {
    replay_ir(*ir);
  }

  execute_groups();

  for (const Snapshot& s : snapshots) {
    if (std::memcmp(s.bytes.data(), s.buffer->device_ptr(), s.bytes.size()) !=
        0) {
      add_finding("[W1] kernel '" + def_.name +
                  "': wrote through read-only buffer at arg " +
                  std::to_string(s.arg));
    }
  }

  if (!findings_.empty()) {
    std::string msg = "mclsan: " + std::to_string(findings_.size()) +
                      " finding(s) for kernel '" + def_.name + "'";
    for (const std::string& f : findings_) msg += "\n  " + f;
    if (suppressed_ > 0)
      msg += "\n  (+" + std::to_string(suppressed_) + " suppressed)";
    throw core::Error(core::Status::SanitizerViolation, msg);
  }
}

}  // namespace mcl::ocl::detail
