// Internal: the mclsan dynamic-mode executor (ExecutorKind::Checked).
//
// Runs a launch serially with instrumentation around it:
//  - IR replay: when the kernel registered a veclegal::KernelIr descriptor,
//    every workitem's declared affine accesses are replayed into a per-array
//    shadow map, reporting inter-workitem races (rules S2/S3) that are not
//    separated by a barrier epoch, and out-of-bounds indices (B1). Replay is
//    O(1) per declared access, which keeps the slowdown bounded — no
//    per-item memory diffing.
//  - Read-only buffers (kernel_writable() == false) are snapshotted before
//    the launch and compared after (W1).
//  - Barrier kernels run on fibers with per-fiber barrier counters;
//    mismatched counts across a workgroup are barrier divergence (P1).
//    Non-barrier kernels run as a plain loop with a violation-recording
//    barrier so an undeclared barrier() is caught instead of crashing.
//  - Workgroup local-memory blocks are surrounded by canary zones checked
//    after every group (M1).
//  - Proof-carrying launches: before replay, the mclverify facts for the
//    kernel are discharged against this launch's shape class; arrays whose
//    every declared access is statically proven in-bounds, race-free and
//    access-flag-clean are exempted from shadow replay (the dominant cost of
//    this mode). MCL_VERIFY=off disables the exemption, and
//    set_force_full_replay() restores full replay for one runner — the
//    mclcheck soundness oracle uses both to cross-check proofs against the
//    dynamic findings.
//
// Any finding makes run() throw core::Error(Status::SanitizerViolation)
// after the launch completes, with all (deduplicated) findings joined into
// the message.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include <memory>

#include "ocl/detail/group_runner.hpp"
#include "ocl/kernel.hpp"
#include "ocl/types.hpp"
#include "verify/facts.hpp"

namespace mcl::veclegal {
struct KernelIr;
}

namespace mcl::ocl::detail {

class CheckedRunner {
 public:
  /// Validates the launch exactly like GroupRunner (and throws the same
  /// errors); `run()` then executes it serially with checking enabled.
  CheckedRunner(const KernelDef& def, const KernelArgs& args,
                const NDRange& global, const NDRange& local,
                std::size_t fiber_stack_bytes,
                const NDRange& offset = NDRange{});

  [[nodiscard]] const NDRange& local() const noexcept { return validator_.local(); }
  [[nodiscard]] std::size_t total_groups() const noexcept {
    return validator_.total_groups();
  }

  /// Executes the whole NDRange (serially, on the calling thread) and throws
  /// core::Error(Status::SanitizerViolation) if any check fired. The launch
  /// itself runs to completion first, so buffers hold the kernel's output
  /// even when the error is thrown.
  void run();

  /// Findings of the last run() (also available when it threw — catch the
  /// error and inspect). One human-readable line per finding.
  [[nodiscard]] const std::vector<std::string>& findings() const noexcept {
    return findings_;
  }

  /// Ignore launch proofs for this runner: every declared access is replayed
  /// even when statically proven safe (the soundness oracle's ground truth).
  void set_force_full_replay(bool force) noexcept {
    force_full_replay_ = force;
  }

  /// The launch proof discharged by the last run(), or nullptr when replay
  /// did not happen (no IR, >1D launch) or proofs were disabled.
  [[nodiscard]] const verify::LaunchProof* launch_proof() const noexcept {
    return proof_.get();
  }

  /// Array ids (ArrayRef::array) on which IR replay flagged any B1/S2/S3/W1
  /// finding during the last run().
  [[nodiscard]] const std::set<int>& flagged_arrays() const noexcept {
    return flagged_arrays_;
  }

  /// Replay-exemption counters for the last run(): declared accesses whose
  /// per-item replay was skipped under proof vs actually replayed.
  [[nodiscard]] std::size_t skipped_accesses() const noexcept {
    return skipped_accesses_;
  }
  [[nodiscard]] std::size_t replayed_accesses() const noexcept {
    return replayed_accesses_;
  }

 private:
  void replay_ir(const veclegal::KernelIr& ir);
  void execute_groups();
  void run_group_checked_loop(std::size_t g0, std::size_t g1, std::size_t g2,
                              void* const* local_mem);
  void run_group_checked_fiber(std::size_t g0, std::size_t g1, std::size_t g2,
                               void* const* local_mem);
  void add_finding(std::string line);
  /// Emits `line` only for the first occurrence of `key` — findings that
  /// would otherwise repeat per workgroup/workitem report one example.
  void add_finding_keyed(const std::string& key, std::string line);

  const KernelDef& def_;
  const KernelArgs& args_;
  NDRange global_;
  NDRange local_;
  NDRange offset_;
  std::size_t fiber_stack_bytes_;
  GroupRunner validator_;  ///< reused for validation + local-size resolution
  std::vector<std::string> findings_;
  std::set<std::string> finding_keys_;
  std::size_t suppressed_ = 0;  ///< findings dropped past the cap
  bool force_full_replay_ = false;
  std::shared_ptr<const verify::LaunchProof> proof_;
  std::set<int> flagged_arrays_;
  std::size_t skipped_accesses_ = 0;
  std::size_t replayed_accesses_ = 0;
};

}  // namespace mcl::ocl::detail
