// Internal: executor-side mutation of the kernel contexts. Not part of the
// public API; device implementations and tests of the execution machinery
// are the only intended includes.
#pragma once

#include <functional>

#include "ocl/kernel.hpp"

namespace mcl::ocl {

struct CtxAccess {
  // ---- WorkItemCtx ----------------------------------------------------------
  static void set_sizes(WorkItemCtx& c, const NDRange& global,
                        const NDRange& local,
                        const NDRange& offset = NDRange{}) noexcept {
    for (std::size_t d = 0; d < 3; ++d) {
      c.global_size_[d] = global[d];
      c.local_size_[d] = local[d];
      c.offset_[d] = offset.offset_component(d);
    }
  }
  static void set_group(WorkItemCtx& c, std::size_t g0, std::size_t g1,
                        std::size_t g2) noexcept {
    c.group_[0] = g0;
    c.group_[1] = g1;
    c.group_[2] = g2;
  }
  /// Sets the local id and derives the global id from the group id.
  static void set_item(WorkItemCtx& c, std::size_t x, std::size_t y,
                       std::size_t z) noexcept {
    c.local_[0] = x;
    c.local_[1] = y;
    c.local_[2] = z;
    c.global_[0] = c.offset_[0] + c.group_[0] * c.local_size_[0] + x;
    c.global_[1] = c.offset_[1] + c.group_[1] * c.local_size_[1] + y;
    c.global_[2] = c.offset_[2] + c.group_[2] * c.local_size_[2] + z;
  }
  static void set_local_mem(WorkItemCtx& c, void* const* base) noexcept {
    c.local_mem_base_ = base;
  }
  static void set_barrier(WorkItemCtx& c, std::function<void()>* fn) noexcept {
    c.barrier_fn_ = fn;
  }
  static std::function<void()>* barrier_fn(const WorkItemCtx& c) noexcept {
    return c.barrier_fn_;
  }

  // ---- SimdItemCtx ----------------------------------------------------------
  static void init_simd(SimdItemCtx& c, const NDRange& global,
                        const NDRange& local, int width) noexcept {
    for (std::size_t d = 0; d < 3; ++d) {
      c.global_size_[d] = global[d];
      c.local_size_[d] = local[d];
    }
    c.width_ = width;
  }
  static void set_simd_pos(SimdItemCtx& c, std::size_t base,
                           std::size_t lane_groups, std::size_t gy,
                           std::size_t gz) noexcept {
    c.global_base_ = base;
    c.lane_groups_ = lane_groups;
    c.higher_[0] = gy;
    c.higher_[1] = gz;
  }

  // ---- WorkGroupCtx ---------------------------------------------------------
  static void init_group(WorkGroupCtx& c, const NDRange& global,
                         const NDRange& local, void* const* local_mem,
                         const NDRange& offset = NDRange{}) noexcept {
    for (std::size_t d = 0; d < 3; ++d) {
      c.global_size_[d] = global[d];
      c.local_size_[d] = local[d];
      c.offset_[d] = offset.offset_component(d);
    }
    c.local_mem_base_ = local_mem;
  }
  static NDRange group_offset(const WorkGroupCtx& c) noexcept {
    return NDRange{c.offset_[0], c.offset_[1], c.offset_[2]};
  }
  static void set_group_id(WorkGroupCtx& c, std::size_t g0, std::size_t g1,
                           std::size_t g2) noexcept {
    c.group_[0] = g0;
    c.group_[1] = g1;
    c.group_[2] = g2;
  }
};

}  // namespace mcl::ocl
