#include "ocl/detail/group_runner.hpp"

#include <algorithm>
#include <functional>

#include "ocl/detail/ctx_access.hpp"
#include "simd/vec.hpp"
#include "threading/fiber.hpp"

namespace mcl::ocl::detail {

namespace {

/// Thread-local scratch backing workgroup local memory. One workgroup runs
/// entirely on one thread (or one fiber group on one thread), so the arena
/// can be reused across groups without synchronization.
struct LocalArena {
  std::vector<std::byte> bytes;
  std::vector<void*> ptrs;
};
thread_local LocalArena t_arena;

}  // namespace

GroupRunner::GroupRunner(const KernelDef& def, const KernelArgs& args,
                         const NDRange& global, const NDRange& local,
                         ExecutorKind kind, std::size_t fiber_stack_bytes,
                         const NDRange& offset)
    : def_(def),
      args_(args),
      global_(global),
      offset_(offset),
      fiber_stack_bytes_(fiber_stack_bytes) {
  core::check(offset.is_null() || offset.dims == global.dims,
              core::Status::InvalidGlobalWorkSize,
              "global offset dimensionality differs from global size");
  core::check(!global.is_null() && global.total() > 0,
              core::Status::InvalidGlobalWorkSize,
              "global work size must be nonzero");

  local_ = local.is_null() ? pick_default_local(global) : local;
  core::check(local_.dims == global.dims, core::Status::InvalidWorkGroupSize,
              "local and global dimensionality differ");
  total_groups_ = 1;
  for (std::size_t d = 0; d < global.dims; ++d) {
    core::check(local_[d] > 0, core::Status::InvalidWorkGroupSize,
                "local size must be nonzero");
    core::check(global[d] % local_[d] == 0, core::Status::InvalidWorkGroupSize,
                "global size must be divisible by local size (OpenCL 1.x rule)");
    ngroups_[d] = global[d] / local_[d];
    total_groups_ *= ngroups_[d];
  }

  // Local-memory layout.
  for (std::size_t i = 0; i < args.arg_count(); ++i) {
    core::check(args.is_set(i), core::Status::InvalidKernelArgs,
                "kernel '" + def.name + "': argument " + std::to_string(i) +
                    " was never set");
    if (args.is_local(i)) {
      local_args_.emplace_back(i, local_total_bytes_);
      local_total_bytes_ += (args.local_bytes(i) + 63) & ~std::size_t{63};
      max_local_arg_index_ = std::max(max_local_arg_index_, i);
    }
  }

  // Resolve the executor. Checked is handled by CheckedRunner, which wraps
  // this class; a bare GroupRunner degrades it to the matching plain kind.
  kind_ = kind;
  if (kind_ == ExecutorKind::Checked) {
    kind_ = def.needs_barrier ? ExecutorKind::Fiber : ExecutorKind::Loop;
  }
  if (kind_ == ExecutorKind::Auto) {
    if (def.workgroup != nullptr) {
      // Workgroup-form kernels run as a whole group per call; reuse the Loop
      // slot to mean "non-fiber, non-simd".
      kind_ = ExecutorKind::Loop;
    } else if (def.needs_barrier) {
      kind_ = ExecutorKind::Fiber;
    } else if (def.simd != nullptr && simd::kNativeFloatWidth > 1) {
      kind_ = ExecutorKind::Simd;
    } else {
      kind_ = ExecutorKind::Loop;
    }
  }
  if (kind_ == ExecutorKind::Simd) {
    core::check(def.simd != nullptr, core::Status::InvalidOperation,
                "kernel '" + def.name + "' has no simd form");
  }
  // A barrier kernel on a barrier-less executor used to surface as UB (a
  // throw from inside the kernel body); reject the launch up front instead.
  // The Checked executor runs barrier kernels on fibers, so it passes.
  if (def.workgroup == nullptr && def.scalar != nullptr && def.needs_barrier &&
      (kind_ == ExecutorKind::Loop || kind_ == ExecutorKind::Simd)) {
    throw core::Error(core::Status::InvalidLaunch,
                      "kernel '" + def.name +
                          "' requires barriers but resolved to a non-fiber "
                          "executor; select Fiber, Checked or Auto");
  }
  if (def.scalar == nullptr) {
    core::check(def.workgroup != nullptr, core::Status::BuildProgramFailure,
                "kernel lacks any body");
    kind_ = ExecutorKind::Loop;  // workgroup form ignores the executor knob
  }
}

void* const* GroupRunner::prepare_local_mem() const {
  if (local_args_.empty()) return nullptr;
  LocalArena& arena = t_arena;
  if (arena.bytes.size() < local_total_bytes_)
    arena.bytes.resize(local_total_bytes_);
  if (arena.ptrs.size() < max_local_arg_index_ + 1)
    arena.ptrs.assign(max_local_arg_index_ + 1, nullptr);
  for (const auto& [arg_index, offset] : local_args_) {
    arena.ptrs[arg_index] = arena.bytes.data() + offset;
  }
  return arena.ptrs.data();
}

void GroupRunner::run_group(std::size_t linear_group) const {
  const std::size_t g0 = linear_group % ngroups_[0];
  const std::size_t g1 = (linear_group / ngroups_[0]) % ngroups_[1];
  const std::size_t g2 = linear_group / (ngroups_[0] * ngroups_[1]);
  void* const* local_mem = prepare_local_mem();

  if (def_.workgroup != nullptr) {
    run_group_wgfn(g0, g1, g2, local_mem);
    return;
  }
  switch (kind_) {
    case ExecutorKind::Loop: run_group_loop(g0, g1, g2, local_mem); break;
    case ExecutorKind::Simd: run_group_simd(g0, g1, g2, local_mem); break;
    case ExecutorKind::Fiber: run_group_fiber(g0, g1, g2, local_mem); break;
    case ExecutorKind::Auto:
    case ExecutorKind::Checked:
      break;  // both resolved to a concrete kind in the constructor
  }
}

void GroupRunner::run_group_loop(std::size_t g0, std::size_t g1, std::size_t g2,
                                 void* const* local_mem) const {
  WorkItemCtx ctx;
  CtxAccess::set_sizes(ctx, global_, local_, offset_);
  CtxAccess::set_group(ctx, g0, g1, g2);
  CtxAccess::set_local_mem(ctx, local_mem);
  for (std::size_t z = 0; z < local_[2]; ++z) {
    for (std::size_t y = 0; y < local_[1]; ++y) {
      for (std::size_t x = 0; x < local_[0]; ++x) {
        CtxAccess::set_item(ctx, x, y, z);
        def_.scalar(args_, ctx);
      }
    }
  }
}

void GroupRunner::run_group_simd(std::size_t g0, std::size_t g1, std::size_t g2,
                                 void* const* local_mem) const {
  constexpr std::size_t W = static_cast<std::size_t>(simd::kNativeFloatWidth);
  SimdItemCtx vctx;
  CtxAccess::init_simd(vctx, global_, local_, simd::kNativeFloatWidth);
  WorkItemCtx ctx;  // scalar remainder
  CtxAccess::set_sizes(ctx, global_, local_, offset_);
  CtxAccess::set_group(ctx, g0, g1, g2);
  CtxAccess::set_local_mem(ctx, local_mem);

  const std::size_t off0 = offset_.offset_component(0);
  const std::size_t lx = local_[0];
  const std::size_t vec_end = lx - lx % W;
  const std::size_t lane_groups = vec_end / W;
  for (std::size_t z = 0; z < local_[2]; ++z) {
    for (std::size_t y = 0; y < local_[1]; ++y) {
      const std::size_t gy = offset_.offset_component(1) + g1 * local_[1] + y;
      const std::size_t gz = offset_.offset_component(2) + g2 * local_[2] + z;
      if (lane_groups > 0) {
        // One call covers every full lane group of the row — the batching a
        // compiled workgroup loop gets, so per-item dispatch cost stays off
        // the vectorized path.
        CtxAccess::set_simd_pos(vctx, off0 + g0 * lx, lane_groups, gy, gz);
        def_.simd(args_, vctx);
      }
      for (std::size_t x = vec_end; x < lx; ++x) {
        CtxAccess::set_item(ctx, x, y, z);
        def_.scalar(args_, ctx);
      }
    }
  }
}

void GroupRunner::run_group_fiber(std::size_t g0, std::size_t g1,
                                  std::size_t g2,
                                  void* const* local_mem) const {
  const std::size_t items = local_.total();
  threading::run_fiber_group(
      items,
      [&](std::size_t index, threading::FiberYield& yield) {
        std::function<void()> barrier_fn = [&yield] { yield.barrier(); };
        WorkItemCtx ctx;
        CtxAccess::set_sizes(ctx, global_, local_, offset_);
        CtxAccess::set_group(ctx, g0, g1, g2);
        CtxAccess::set_local_mem(ctx, local_mem);
        CtxAccess::set_barrier(ctx, &barrier_fn);
        const std::size_t x = index % local_[0];
        const std::size_t y = (index / local_[0]) % local_[1];
        const std::size_t z = index / (local_[0] * local_[1]);
        CtxAccess::set_item(ctx, x, y, z);
        def_.scalar(args_, ctx);
      },
      fiber_stack_bytes_);
}

void GroupRunner::run_group_wgfn(std::size_t g0, std::size_t g1, std::size_t g2,
                                 void* const* local_mem) const {
  WorkGroupCtx ctx;
  CtxAccess::init_group(ctx, global_, local_, local_mem, offset_);
  CtxAccess::set_group_id(ctx, g0, g1, g2);
  def_.workgroup(args_, ctx);
}

}  // namespace mcl::ocl::detail
