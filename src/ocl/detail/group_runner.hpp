// Internal: per-launch execution state shared by the CPU and simulated-GPU
// devices. Validates the launch once, then executes workgroups by linear
// index with the selected executor.
#pragma once

#include <cstddef>
#include <vector>

#include "ocl/kernel.hpp"
#include "ocl/types.hpp"

namespace mcl::ocl::detail {

class GroupRunner {
 public:
  /// Validates (throws core::Error on invalid launches) and resolves the
  /// NULL local size and the Auto executor. `offset` (may be null) shifts
  /// every global id (clEnqueueNDRangeKernel's global_work_offset).
  GroupRunner(const KernelDef& def, const KernelArgs& args,
              const NDRange& global, const NDRange& local, ExecutorKind kind,
              std::size_t fiber_stack_bytes, const NDRange& offset = NDRange{});

  [[nodiscard]] std::size_t total_groups() const noexcept { return total_groups_; }
  [[nodiscard]] const NDRange& local() const noexcept { return local_; }
  [[nodiscard]] ExecutorKind executor() const noexcept { return kind_; }

  /// Executes one workgroup. Thread-safe across distinct `linear_group`
  /// values; uses a thread-local arena for local memory.
  void run_group(std::size_t linear_group) const;

 private:
  void run_group_loop(std::size_t g0, std::size_t g1, std::size_t g2,
                      void* const* local_mem) const;
  void run_group_simd(std::size_t g0, std::size_t g1, std::size_t g2,
                      void* const* local_mem) const;
  void run_group_fiber(std::size_t g0, std::size_t g1, std::size_t g2,
                       void* const* local_mem) const;
  void run_group_wgfn(std::size_t g0, std::size_t g1, std::size_t g2,
                      void* const* local_mem) const;

  /// Fills the thread-local local-memory arena; returns pointer table.
  [[nodiscard]] void* const* prepare_local_mem() const;

  const KernelDef& def_;
  const KernelArgs& args_;
  NDRange global_;
  NDRange local_;
  NDRange offset_;
  ExecutorKind kind_;
  std::size_t fiber_stack_bytes_;
  std::size_t ngroups_[3] = {1, 1, 1};
  std::size_t total_groups_ = 0;
  // Local-memory layout: arg index -> offset into the arena.
  std::vector<std::pair<std::size_t, std::size_t>> local_args_;
  std::size_t local_total_bytes_ = 0;
  std::size_t max_local_arg_index_ = 0;
};

}  // namespace mcl::ocl::detail
