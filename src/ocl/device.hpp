// Compute devices.
//
// MiniCL exposes two devices, mirroring the paper's platform pair:
//  - CpuDevice: executes kernels on host threads (Intel-CPU-runtime
//    analogue); reported kernel time is measured wall time.
//  - SimGpuDevice: executes kernels functionally on the host but reports
//    *simulated* time from the gpusim analytical model (GTX 580 analogue).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/time.hpp"
#include "gpusim/gpusim.hpp"
#include "ocl/kernel.hpp"
#include "ocl/types.hpp"
#include "prof/profiler.hpp"
#include "threading/thread_pool.hpp"

namespace mcl::ocl {

/// Outcome of one NDRange execution.
struct LaunchResult {
  core::Seconds seconds = 0.0;   ///< kernel time (measured or simulated)
  NDRange local_used;            ///< local size after NULL resolution
  ExecutorKind executor_used = ExecutorKind::Loop;
  bool simulated = false;        ///< seconds came from a timing model
  gpusim::SimResult sim;         ///< populated when simulated
  threading::RunStats schedule;  ///< workgroup load balance (CPU device)
  /// Per-launch hardware-counter profile (CPU device, while prof::profiling()
  /// is active; launches == 0 otherwise). Rides the event DAG: AsyncEvent
  /// exposes it as kernel_profile() next to profiling_ns().
  prof::KernelProfile profile;
};

class Device {
 public:
  virtual ~Device() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual DeviceType type() const = 0;
  [[nodiscard]] virtual int compute_units() const = 0;

  /// Validates and executes an NDRange. `local` may be null (NullRange) to
  /// let the device pick (pick_default_local policy); `offset` (null = 0)
  /// shifts every global id, as clEnqueueNDRangeKernel's
  /// global_work_offset does.
  virtual LaunchResult launch(const KernelDef& def, const KernelArgs& args,
                              const NDRange& global, const NDRange& local,
                              const NDRange& offset = NDRange{}) = 0;

  /// Extra seconds a `bytes`-byte explicit copy costs on top of the host
  /// memcpy (PCIe time on the simulated GPU; 0 on the CPU).
  [[nodiscard]] virtual core::Seconds copy_overhead_seconds(
      std::size_t bytes) const {
    (void)bytes;
    return 0.0;
  }

  /// Extra seconds mapping `bytes` of `buffer` costs (0 on the CPU — mapping
  /// returns the canonical pointer; PCIe copy for non-host-visible buffers
  /// on the simulated GPU).
  [[nodiscard]] virtual core::Seconds map_overhead_seconds(
      const Buffer& buffer, std::size_t bytes) const {
    (void)buffer;
    (void)bytes;
    return 0.0;
  }
};

/// Configuration of the CPU device.
struct CpuDeviceConfig {
  std::size_t threads = 0;      ///< 0 = one worker per logical CPU
  bool pin_workers = false;     ///< pin worker i to logical CPU i
  ExecutorKind executor = ExecutorKind::Auto;
  std::size_t fiber_stack_bytes = 64 * 1024;
  /// Workgroup distribution policy (see threading::ScheduleStrategy and
  /// bench/ablation_scheduler).
  threading::ScheduleStrategy scheduler =
      threading::ScheduleStrategy::CentralCounter;
  /// Deterministic dispatch-order hook (mclcheck's metamorphic transform):
  /// when set, launch() bypasses the pool and executes workgroups serially
  /// on the calling thread, running linear group order(k, total) at step k.
  /// `order` must be a bijection on [0, total); a race-free kernel must
  /// produce identical results under every order.
  std::function<std::size_t(std::size_t index, std::size_t total)>
      dispatch_order = nullptr;
};

class CpuSubDevice;

class CpuDevice final : public Device {
 public:
  explicit CpuDevice(CpuDeviceConfig config = {});
  ~CpuDevice() override;

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] DeviceType type() const override { return DeviceType::Cpu; }
  [[nodiscard]] int compute_units() const override;
  [[nodiscard]] const CpuDeviceConfig& config() const noexcept { return config_; }

  LaunchResult launch(const KernelDef& def, const KernelArgs& args,
                      const NDRange& global, const NDRange& local,
                      const NDRange& offset = NDRange{}) override;

  /// MiniCL extension the paper argues for (Sec. III-E): launch with an
  /// explicit workgroup -> logical-CPU map. group_to_cpu[g] names the CPU
  /// that must execute linear workgroup g; its size must equal the group
  /// count. Trades the shared pool for per-launch pinned threads.
  LaunchResult launch_pinned(const KernelDef& def, const KernelArgs& args,
                             const NDRange& global, const NDRange& local,
                             std::span<const int> group_to_cpu);

  /// clCreateSubDevices(CL_DEVICE_PARTITION_EQUALLY) analogue: splits the
  /// worker pool into floor(compute_units / units) sub-devices of `units`
  /// workers each (trailing workers stay with the parent). Sub-devices own
  /// disjoint WorkerSpans of the SAME pool — no threads are created — so
  /// launches on sibling sub-devices run concurrently without sharing a
  /// worker. Throws InvalidValue when units == 0 or units > compute_units.
  /// The parent must outlive every returned sub-device.
  [[nodiscard]] std::vector<std::shared_ptr<CpuSubDevice>> partition_equally(
      std::size_t units);

  /// clCreateSubDevices(CL_DEVICE_PARTITION_BY_COUNTS) analogue: one
  /// sub-device per entry, counts[i] workers wide, assigned consecutive
  /// disjoint spans. Throws InvalidValue when counts is empty, any count is
  /// zero, or the sum exceeds compute_units.
  [[nodiscard]] std::vector<std::shared_ptr<CpuSubDevice>> partition_by_counts(
      std::span<const std::size_t> counts);

  /// Index of the calling thread within this device's worker pool, or -1
  /// when called from any other thread (sub-device shard tests use this to
  /// prove a launch never left its span).
  [[nodiscard]] int pool_worker_index() const noexcept;

 private:
  friend class CpuSubDevice;

  /// Shared launch body: runs the NDRange on the workers of `span` (plus the
  /// calling thread), serialized by `launch_mutex` (the parent and each
  /// sub-device carry their own — sibling shards must not serialize against
  /// each other). `threads` is the shard width the tuner keys entries on and
  /// the chunker divides by: the SUB-device size for sharded launches, never
  /// the parent pool size.
  LaunchResult launch_core(const KernelDef& def, const KernelArgs& args,
                           const NDRange& global, const NDRange& local,
                           const NDRange& offset, threading::WorkerSpan span,
                           std::size_t threads, std::mutex& launch_mutex);

  struct Impl;
  std::unique_ptr<Impl> impl_;
  CpuDeviceConfig config_;
};

/// A fixed-width shard of a CpuDevice (clCreateSubDevices analogue). Shares
/// the parent's pool, kernels and buffers; owns a disjoint WorkerSpan and its
/// own launch serialization, so two sub-devices execute concurrently with
/// disjoint worker sets. Tuner entries for launches here are keyed on the
/// shard width, not the parent pool size.
class CpuSubDevice final : public Device {
 public:
  CpuSubDevice(CpuDevice& parent, threading::WorkerSpan span,
               std::size_t index);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] DeviceType type() const override { return DeviceType::Cpu; }
  [[nodiscard]] int compute_units() const override {
    return static_cast<int>(span_.size());
  }
  [[nodiscard]] CpuDevice& parent() const noexcept { return *parent_; }
  [[nodiscard]] threading::WorkerSpan span() const noexcept { return span_; }

  LaunchResult launch(const KernelDef& def, const KernelArgs& args,
                      const NDRange& global, const NDRange& local,
                      const NDRange& offset = NDRange{}) override;

 private:
  CpuDevice* parent_;
  threading::WorkerSpan span_;
  std::size_t index_;
  std::mutex launch_mutex_;
};

class SimGpuDevice final : public Device {
 public:
  explicit SimGpuDevice(gpusim::GpuSpec spec = gpusim::GpuSpec::gtx580());

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] DeviceType type() const override {
    return DeviceType::SimulatedGpu;
  }
  [[nodiscard]] int compute_units() const override { return spec_.num_sm; }
  [[nodiscard]] const gpusim::GpuSpec& spec() const noexcept { return spec_; }

  /// Functional execution on the host; time from the analytical model when
  /// the kernel registered a gpu_cost (simulated=true), else measured.
  LaunchResult launch(const KernelDef& def, const KernelArgs& args,
                      const NDRange& global, const NDRange& local,
                      const NDRange& offset = NDRange{}) override;

  [[nodiscard]] core::Seconds copy_overhead_seconds(
      std::size_t bytes) const override {
    return gpusim::transfer_seconds(spec_, bytes);
  }
  [[nodiscard]] core::Seconds map_overhead_seconds(
      const Buffer& buffer, std::size_t bytes) const override {
    // Pinned (host-visible) buffers map without a bus crossing; device
    // buffers must be copied over PCIe to be host-accessible.
    return buffer.host_visible() ? 0.0
                                 : gpusim::transfer_seconds(spec_, bytes);
  }

 private:
  gpusim::GpuSpec spec_;
};

/// clGetKernelWorkGroupInfo analogue.
struct KernelWorkGroupInfo {
  std::size_t max_work_group_size = 0;
  /// Lane width the device's vectorizer packs (1 when the kernel has no
  /// SIMD form or the device doesn't coalesce) — size workgroup dim 0 as a
  /// multiple of this.
  std::size_t preferred_work_group_size_multiple = 1;
  std::size_t local_mem_bytes = 0;  ///< currently requested via the args
};

[[nodiscard]] KernelWorkGroupInfo kernel_workgroup_info(const Kernel& kernel,
                                                        const Device& device);

}  // namespace mcl::ocl
