#include "ocl/image.hpp"

namespace mcl::ocl {

Image2D::Image2D(std::size_t width, std::size_t height, std::size_t channels) {
  core::check(width > 0 && height > 0, core::Status::InvalidValue,
              "image extents must be nonzero");
  core::check(channels == 1 || channels == 4, core::Status::InvalidValue,
              "images support 1 (CL_R) or 4 (CL_RGBA) float channels");
  storage_ = std::make_unique<float[]>(width * height * channels);
  view_ = ImageView{storage_.get(), width, height, channels};
}

}  // namespace mcl::ocl
