// 2D image objects (clCreateImage2D analogue, float channels only).
//
// Images are row-major float arrays with 1 (CL_R) or 4 (CL_RGBA) channels.
// Kernels receive an ImageView and sample through read_clamped(), which
// implements CLK_ADDRESS_CLAMP_TO_EDGE — enough image API for the stencil
// workloads (convolution) this repo adds beyond the paper's suite.
#pragma once

#include <cstddef>
#include <memory>

#include "core/error.hpp"

namespace mcl::ocl {

/// Lightweight kernel-side view of an image (fits in a KernelArgs slot).
struct ImageView {
  float* data = nullptr;
  std::size_t width = 0;
  std::size_t height = 0;
  std::size_t channels = 1;

  [[nodiscard]] std::size_t row_floats() const noexcept {
    return width * channels;
  }

  /// Nearest sampling with clamp-to-edge addressing; x/y may be negative or
  /// beyond the extent.
  [[nodiscard]] float read_clamped(long long x, long long y,
                                   std::size_t channel = 0) const noexcept {
    const auto cx = static_cast<std::size_t>(
        x < 0 ? 0 : (x >= static_cast<long long>(width) ? width - 1 : x));
    const auto cy = static_cast<std::size_t>(
        y < 0 ? 0 : (y >= static_cast<long long>(height) ? height - 1 : y));
    return data[(cy * width + cx) * channels + channel];
  }

  void write(std::size_t x, std::size_t y, float value,
             std::size_t channel = 0) const noexcept {
    data[(y * width + x) * channels + channel] = value;
  }
};

class Image2D {
 public:
  /// Allocates a width x height image with `channels` float channels (1 or
  /// 4), zero-initialized.
  Image2D(std::size_t width, std::size_t height, std::size_t channels = 1);

  Image2D(const Image2D&) = delete;
  Image2D& operator=(const Image2D&) = delete;
  Image2D(Image2D&&) noexcept = default;
  Image2D& operator=(Image2D&&) noexcept = default;

  [[nodiscard]] std::size_t width() const noexcept { return view_.width; }
  [[nodiscard]] std::size_t height() const noexcept { return view_.height; }
  [[nodiscard]] std::size_t channels() const noexcept { return view_.channels; }
  [[nodiscard]] std::size_t float_count() const noexcept {
    return view_.width * view_.height * view_.channels;
  }

  [[nodiscard]] float* data() noexcept { return view_.data; }
  [[nodiscard]] const float* data() const noexcept { return view_.data; }
  [[nodiscard]] const ImageView& view() const noexcept { return view_; }

 private:
  std::unique_ptr<float[]> storage_;
  ImageView view_;
};

}  // namespace mcl::ocl
