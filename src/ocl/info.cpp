#include "ocl/device.hpp"
#include "simd/vec.hpp"

namespace mcl::ocl {

KernelWorkGroupInfo kernel_workgroup_info(const Kernel& kernel,
                                          const Device& device) {
  KernelWorkGroupInfo info;
  info.local_mem_bytes = kernel.args().total_local_bytes();

  if (device.type() == DeviceType::Cpu) {
    // Bounded by fiber-stack memory for barrier kernels; generous otherwise.
    info.max_work_group_size = kernel.def().needs_barrier ? 4096 : 1 << 20;
    const bool vectorizes =
        kernel.def().simd != nullptr && simd::kNativeFloatWidth > 1;
    info.preferred_work_group_size_multiple =
        vectorizes ? static_cast<std::size_t>(simd::kNativeFloatWidth) : 1;
  } else {
    const auto& gpu = static_cast<const SimGpuDevice&>(device);
    info.max_work_group_size = 1024;  // GTX 580 limit
    info.preferred_work_group_size_multiple =
        static_cast<std::size_t>(gpu.spec().warp_size);
  }
  return info;
}

}  // namespace mcl::ocl
