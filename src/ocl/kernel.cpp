#include "ocl/kernel.hpp"

#include "ocl/detail/ctx_access.hpp"

namespace mcl::ocl {

void WorkItemCtx::barrier() const {
  core::check(barrier_fn_ != nullptr, core::Status::InvalidOperation,
              "barrier() requires the fiber executor (set needs_barrier on the "
              "kernel, or select ExecutorKind::Fiber)");
  (*barrier_fn_)();
}

WorkItemCtx WorkGroupCtx::make_item_template() const {
  WorkItemCtx ctx;
  CtxAccess::set_sizes(
      ctx, NDRange{global_size_[0], global_size_[1], global_size_[2]},
      NDRange{local_size_[0], local_size_[1], local_size_[2]},
      NDRange{offset_[0], offset_[1], offset_[2]});
  CtxAccess::set_group(ctx, group_[0], group_[1], group_[2]);
  CtxAccess::set_local_mem(ctx, local_mem_base_);
  return ctx;
}

void WorkGroupCtx::set_item(WorkItemCtx& ctx, std::size_t x, std::size_t y,
                            std::size_t z) const {
  CtxAccess::set_item(ctx, x, y, z);
}

void Program::add(KernelDef def) {
  core::check(!def.name.empty(), core::Status::InvalidKernelName,
              "kernel name must be nonempty");
  core::check(def.scalar != nullptr || def.workgroup != nullptr,
              core::Status::BuildProgramFailure,
              "kernel '" + def.name + "' needs a scalar or workgroup body");
  core::check(def.simd == nullptr || def.scalar != nullptr,
              core::Status::BuildProgramFailure,
              "kernel '" + def.name +
                  "': simd form requires a scalar fallback for remainders");
  core::check(!def.needs_barrier || def.scalar != nullptr,
              core::Status::BuildProgramFailure,
              "kernel '" + def.name + "': needs_barrier applies to scalar form");
  kernels_[def.name] = std::move(def);
}

const KernelDef& Program::lookup(const std::string& name) const {
  auto it = kernels_.find(name);
  core::check(it != kernels_.end(), core::Status::InvalidKernelName,
              "no kernel named '" + name + "'");
  return it->second;
}

std::vector<std::string> Program::kernel_names() const {
  std::vector<std::string> names;
  names.reserve(kernels_.size());
  for (const auto& [name, def] : kernels_) names.push_back(name);
  return names;
}

Program& Program::builtin() {
  static Program program;
  return program;
}

}  // namespace mcl::ocl
