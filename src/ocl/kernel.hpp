// Kernel model.
//
// MiniCL has no OpenCL C frontend; a "program build" registers, per kernel
// name, the artifacts a CPU OpenCL compiler would emit:
//   - scalar:    void(const KernelArgs&, WorkItemCtx&)       [required]
//   - simd:      void(const KernelArgs&, SimdItemCtx&)       [optional]
//     The implicit-vectorization module's output: processes
//     simd::kNativeFloatWidth consecutive dim-0 workitems per call.
//   - workgroup: void(const KernelArgs&, WorkGroupCtx&)      [optional]
//     Workgroup-granularity form for kernels that use local memory with
//     barriers structured as phases (the loop-fission shape CPU OpenCL
//     compilers produce).
//   - gpu_cost:  per-workitem cost descriptor for the GPU timing model.
//
// Scalar kernels that call WorkItemCtx::barrier() must set needs_barrier so
// the CPU device selects the fiber executor.
#pragma once

#include <array>
#include <cstddef>
#include <cstring>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "gpusim/gpusim.hpp"
#include "ocl/buffer.hpp"
#include "ocl/image.hpp"
#include "ocl/types.hpp"

namespace mcl::ocl {

/// clSetKernelArg analogue. Slots hold a buffer, a small scalar, or a local
/// memory size request.
class KernelArgs {
 public:
  static constexpr std::size_t kMaxScalarBytes = 32;

  void set_buffer(std::size_t index, Buffer& buffer) {
    slot(index) = Slot{Kind::Buf, &buffer, {}, 0, 0};
  }

  template <typename T>
  void set_scalar(std::size_t index, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(sizeof(T) <= kMaxScalarBytes, "scalar kernel arg too large");
    set_scalar_bytes(index, &value, sizeof(T));
  }

  /// Raw-byte form of set_scalar for callers (the C API, mclserve's
  /// descriptor replay) that carry the argument as (pointer, size) with no
  /// static type: the exact arg_size is preserved in the slot.
  void set_scalar_bytes(std::size_t index, const void* bytes,
                        std::size_t size) {
    core::check(bytes != nullptr, core::Status::InvalidKernelArgs,
                "null scalar arg pointer");
    core::check(size > 0 && size <= kMaxScalarBytes,
                core::Status::InvalidKernelArgs, "scalar arg size unsupported");
    Slot& s = slot(index);
    s.kind = Kind::Scalar;
    s.buffer = nullptr;
    std::memcpy(s.scalar.data(), bytes, size);
    s.scalar_bytes = size;
  }

  /// clSetKernelArg(kernel, i, bytes, nullptr): local memory request.
  void set_local(std::size_t index, std::size_t bytes) {
    core::check(bytes > 0, core::Status::InvalidKernelArgs,
                "local memory size must be nonzero");
    slot(index) = Slot{Kind::Local, nullptr, {}, 0, bytes, {}};
  }

  /// Binds a 2D image object (kernels read it via image()).
  void set_image(std::size_t index, Image2D& img) {
    Slot& s = slot(index);
    s = Slot{};
    s.kind = Kind::Image;
    s.image = img.view();
  }

  // --- kernel-side accessors (hot path: asserts only in debug) -------------

  template <typename T>
  [[nodiscard]] T* buffer(std::size_t index) const {
    return static_cast<T*>(slots_[index].buffer->device_ptr());
  }

  template <typename T>
  [[nodiscard]] T scalar(std::size_t index) const {
    T out;
    std::memcpy(&out, slots_[index].scalar.data(), sizeof(T));
    return out;
  }

  [[nodiscard]] std::size_t local_bytes(std::size_t index) const {
    return slots_[index].local_bytes;
  }

  [[nodiscard]] const ImageView& image(std::size_t index) const {
    return slots_[index].image;
  }

  // --- validation-side accessors --------------------------------------------

  [[nodiscard]] std::size_t arg_count() const noexcept { return slots_.size(); }
  [[nodiscard]] bool is_buffer(std::size_t i) const {
    return i < slots_.size() && slots_[i].kind == Kind::Buf;
  }
  [[nodiscard]] bool is_local(std::size_t i) const {
    return i < slots_.size() && slots_[i].kind == Kind::Local;
  }
  [[nodiscard]] bool is_image(std::size_t i) const {
    return i < slots_.size() && slots_[i].kind == Kind::Image;
  }
  [[nodiscard]] bool is_set(std::size_t i) const {
    return i < slots_.size() && slots_[i].kind != Kind::Unset;
  }
  [[nodiscard]] Buffer* buffer_object(std::size_t i) const {
    return i < slots_.size() ? slots_[i].buffer : nullptr;
  }

  /// Total local memory requested across all Local slots.
  [[nodiscard]] std::size_t total_local_bytes() const noexcept {
    std::size_t total = 0;
    for (const Slot& s : slots_) {
      if (s.kind == Kind::Local) total += (s.local_bytes + 63) & ~std::size_t{63};
    }
    return total;
  }

 private:
  enum class Kind { Unset, Buf, Scalar, Local, Image };
  struct Slot {
    Kind kind = Kind::Unset;
    Buffer* buffer = nullptr;
    std::array<std::byte, kMaxScalarBytes> scalar{};
    std::size_t scalar_bytes = 0;
    std::size_t local_bytes = 0;
    ImageView image{};
  };

  Slot& slot(std::size_t index) {
    if (index >= slots_.size()) slots_.resize(index + 1);
    return slots_[index];
  }

  std::vector<Slot> slots_;
};

/// Per-workitem view (get_global_id & friends). Mutated in place by the
/// executors as they walk the NDRange — kernels must not retain it.
class WorkItemCtx {
 public:
  [[nodiscard]] std::size_t global_id(std::size_t dim = 0) const noexcept {
    return global_[dim];
  }
  [[nodiscard]] std::size_t local_id(std::size_t dim = 0) const noexcept {
    return local_[dim];
  }
  [[nodiscard]] std::size_t group_id(std::size_t dim = 0) const noexcept {
    return group_[dim];
  }
  [[nodiscard]] std::size_t global_size(std::size_t dim = 0) const noexcept {
    return global_size_[dim];
  }
  [[nodiscard]] std::size_t local_size(std::size_t dim = 0) const noexcept {
    return local_size_[dim];
  }
  [[nodiscard]] std::size_t num_groups(std::size_t dim = 0) const noexcept {
    // Round up: with a partial final group, truncation would under-report.
    return (global_size_[dim] + local_size_[dim] - 1) / local_size_[dim];
  }

  /// Pointer to the local-memory block requested at arg `index`.
  template <typename T = void>
  [[nodiscard]] T* local_mem(std::size_t index) const noexcept {
    return static_cast<T*>(local_mem_base_[index]);
  }

  /// barrier(CLK_LOCAL_MEM_FENCE) analogue. Legal only under the fiber
  /// executor (kernels using it must register needs_barrier = true).
  void barrier() const;

 private:
  friend struct CtxAccess;
  std::size_t global_[3] = {0, 0, 0};
  std::size_t local_[3] = {0, 0, 0};
  std::size_t group_[3] = {0, 0, 0};
  std::size_t global_size_[3] = {1, 1, 1};
  std::size_t local_size_[3] = {1, 1, 1};
  std::size_t offset_[3] = {0, 0, 0};
  void* const* local_mem_base_ = nullptr;
  std::function<void()>* barrier_fn_ = nullptr;
};

/// SIMD lane-group view: lane L of group g corresponds to workitem global
/// dim-0 id `global_base() + g*width() + L`. The executor batches all full
/// lane groups of one row into a single call (lane_groups() of them) — the
/// shape a compiled workgroup loop has; kernels must iterate:
///
///   for (std::size_t g = 0; g < ctx.lane_groups(); ++g)
///     process lanes at ctx.global_base() + g * W;
///
/// Remainder items (row length % W) fall back to the scalar kernel.
class SimdItemCtx {
 public:
  [[nodiscard]] std::size_t global_base() const noexcept { return global_base_; }
  [[nodiscard]] std::size_t lane_groups() const noexcept { return lane_groups_; }
  [[nodiscard]] std::size_t global_id(std::size_t dim) const noexcept {
    return dim == 0 ? global_base_ : higher_[dim - 1];
  }
  [[nodiscard]] std::size_t global_size(std::size_t dim = 0) const noexcept {
    return global_size_[dim];
  }
  [[nodiscard]] std::size_t local_size(std::size_t dim = 0) const noexcept {
    return local_size_[dim];
  }
  [[nodiscard]] int width() const noexcept { return width_; }

 private:
  friend struct CtxAccess;
  std::size_t global_base_ = 0;
  std::size_t lane_groups_ = 1;
  std::size_t higher_[2] = {0, 0};
  std::size_t global_size_[3] = {1, 1, 1};
  std::size_t local_size_[3] = {1, 1, 1};
  int width_ = 1;
};

/// Workgroup-granularity view for local-memory kernels written as barrier-
/// separated phases: each for_each_item() call plays the role of the code
/// between two barriers.
class WorkGroupCtx {
 public:
  [[nodiscard]] std::size_t group_id(std::size_t dim = 0) const noexcept {
    return group_[dim];
  }
  [[nodiscard]] std::size_t local_size(std::size_t dim = 0) const noexcept {
    return local_size_[dim];
  }
  [[nodiscard]] std::size_t global_size(std::size_t dim = 0) const noexcept {
    return global_size_[dim];
  }
  [[nodiscard]] std::size_t num_groups(std::size_t dim = 0) const noexcept {
    // Round up: with a partial final group, truncation would under-report.
    return (global_size_[dim] + local_size_[dim] - 1) / local_size_[dim];
  }
  template <typename T = void>
  [[nodiscard]] T* local_mem(std::size_t index) const noexcept {
    return static_cast<T*>(local_mem_base_[index]);
  }

  /// Runs `fn(item)` for every workitem of this group (row-major, x fastest).
  /// Successive calls are separated by an implicit workgroup barrier.
  template <typename Fn>
  void for_each_item(Fn&& fn) const {
    WorkItemCtx ctx = make_item_template();
    for (std::size_t z = 0; z < local_size_[2]; ++z) {
      for (std::size_t y = 0; y < local_size_[1]; ++y) {
        for (std::size_t x = 0; x < local_size_[0]; ++x) {
          set_item(ctx, x, y, z);
          fn(static_cast<const WorkItemCtx&>(ctx));
        }
      }
    }
  }

 private:
  friend struct CtxAccess;
  [[nodiscard]] WorkItemCtx make_item_template() const;
  void set_item(WorkItemCtx& ctx, std::size_t x, std::size_t y,
                std::size_t z) const;

  std::size_t group_[3] = {0, 0, 0};
  std::size_t local_size_[3] = {1, 1, 1};
  std::size_t global_size_[3] = {1, 1, 1};
  std::size_t offset_[3] = {0, 0, 0};
  void* const* local_mem_base_ = nullptr;
};

using ScalarKernelFn = void (*)(const KernelArgs&, const WorkItemCtx&);
using SimdKernelFn = void (*)(const KernelArgs&, const SimdItemCtx&);
using WorkGroupKernelFn = void (*)(const KernelArgs&, const WorkGroupCtx&);
/// Maps (args, global, local) -> per-workitem GPU cost for the simulator.
using GpuCostFn = gpusim::KernelCost (*)(const KernelArgs&, const NDRange&,
                                         const NDRange&);

/// Everything registered for one kernel name.
struct KernelDef {
  std::string name;
  ScalarKernelFn scalar = nullptr;
  SimdKernelFn simd = nullptr;
  WorkGroupKernelFn workgroup = nullptr;
  GpuCostFn gpu_cost = nullptr;
  bool needs_barrier = false;  ///< scalar body calls WorkItemCtx::barrier()
};

/// A "built program": a set of kernel definitions.
class Program {
 public:
  Program() = default;

  void add(KernelDef def);
  [[nodiscard]] const KernelDef& lookup(const std::string& name) const;
  [[nodiscard]] bool contains(const std::string& name) const {
    return kernels_.count(name) != 0;
  }
  [[nodiscard]] std::vector<std::string> kernel_names() const;

  /// The process-wide registry all statically registered kernels land in
  /// (apps register via KernelRegistrar at namespace scope).
  [[nodiscard]] static Program& builtin();

 private:
  std::map<std::string, KernelDef> kernels_;
};

/// Static registration helper:
///   const KernelRegistrar reg{KernelDef{...}};
struct KernelRegistrar {
  explicit KernelRegistrar(KernelDef def) { Program::builtin().add(std::move(def)); }
};

/// A kernel instance = definition + argument bindings (clCreateKernel +
/// clSetKernelArg).
class Kernel {
 public:
  explicit Kernel(const KernelDef& def) : def_(&def) {}

  [[nodiscard]] const KernelDef& def() const noexcept { return *def_; }
  [[nodiscard]] KernelArgs& args() noexcept { return args_; }
  [[nodiscard]] const KernelArgs& args() const noexcept { return args_; }

  void set_arg(std::size_t index, Buffer& buffer) {
    core::check(buffer.kernel_readable() || buffer.kernel_writable(),
                core::Status::InvalidKernelArgs, "buffer disallows all access");
    args_.set_buffer(index, buffer);
  }
  void set_arg(std::size_t index, Image2D& image) {
    args_.set_image(index, image);
  }
  template <typename T>
  void set_arg(std::size_t index, const T& scalar) {
    args_.set_scalar(index, scalar);
  }
  void set_arg_bytes(std::size_t index, const void* bytes, std::size_t size) {
    args_.set_scalar_bytes(index, bytes, size);
  }
  void set_arg_local(std::size_t index, std::size_t bytes) {
    args_.set_local(index, bytes);
  }

 private:
  const KernelDef* def_;
  KernelArgs args_;
};

}  // namespace mcl::ocl
