/* MiniCL C API — an OpenCL-1.1-style C binding over the C++ runtime.
 *
 * Mirrors the subset of the cl.h surface the paper's experiments use, with
 * mcl/MCL_ prefixes: platform/device discovery, contexts, in-order command
 * queues, buffers with allocation flags, kernel argument binding in the
 * clSetKernelArg style, NDRange launches, explicit copies and map/unmap.
 *
 * Semantics notes (documented divergences from OpenCL 1.1):
 *  - Kernels come from the process-wide registered-program set (there is no
 *    runtime compiler), so mclCreateKernel takes only a name.
 *  - mclSetKernelArg distinguishes buffer args the way the ICD loader does
 *    in practice: arg_size == sizeof(mcl_mem) AND *arg_value is a live
 *    mcl_mem handle. NULL arg_value requests local memory of arg_size
 *    bytes. Everything else is copied as a scalar (max 32 bytes).
 *  - The classic enqueue entry points are blocking (the paper's
 *    methodology). The *Async variants return mcl_event handles backed by
 *    the runtime's out-of-order event-graph executor; wait lists, markers,
 *    barriers and clGetEventProfilingInfo-style timestamp queries follow
 *    OpenCL 1.2 semantics.
 *
 * The header compiles as both C and C++.
 */
#ifndef MCL_OCL_MCL_H_
#define MCL_OCL_MCL_H_

#include <stddef.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef int mcl_int;
typedef unsigned int mcl_uint;
typedef unsigned long long mcl_ulong;
typedef unsigned long long mcl_bitfield;

typedef struct mcl_device_obj* mcl_device_id;
typedef struct mcl_context_obj* mcl_context;
typedef struct mcl_queue_obj* mcl_command_queue;
typedef struct mcl_mem_obj* mcl_mem;
typedef struct mcl_kernel_obj* mcl_kernel;
typedef struct mcl_event_obj* mcl_event;

/* Error codes (OpenCL-compatible values where they exist). */
#define MCL_SUCCESS 0
#define MCL_DEVICE_NOT_FOUND (-1)
#define MCL_MEM_OBJECT_ALLOCATION_FAILURE (-4)
#define MCL_MAP_FAILURE (-12)
#define MCL_INVALID_VALUE (-30)
#define MCL_INVALID_DEVICE (-33)
#define MCL_INVALID_CONTEXT (-34)
#define MCL_INVALID_MEM_OBJECT (-38)
#define MCL_INVALID_BUFFER_SIZE (-61)
#define MCL_INVALID_KERNEL_NAME (-46)
#define MCL_INVALID_KERNEL_ARGS (-52)
#define MCL_INVALID_WORK_GROUP_SIZE (-54)
#define MCL_INVALID_GLOBAL_WORK_SIZE (-63)
#define MCL_INVALID_OPERATION (-59)
#define MCL_INVALID_EVENT (-58)
#define MCL_INVALID_EVENT_WAIT_LIST (-57)
#define MCL_PROFILING_INFO_NOT_AVAILABLE (-7)
/* Returned by mclWaitForEvents when a waited event (or one of its
 * dependencies) finished with an error — the CL_EXEC_STATUS_ERROR_FOR_
 * EVENTS_IN_WAIT_LIST analogue. */
#define MCL_EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST (-14)

/* Device types. */
#define MCL_DEVICE_TYPE_CPU (1 << 1)
#define MCL_DEVICE_TYPE_GPU (1 << 2)

/* Buffer flags (OpenCL bit values). */
#define MCL_MEM_READ_WRITE (1 << 0)
#define MCL_MEM_WRITE_ONLY (1 << 1)
#define MCL_MEM_READ_ONLY (1 << 2)
#define MCL_MEM_USE_HOST_PTR (1 << 3)
#define MCL_MEM_ALLOC_HOST_PTR (1 << 4)
#define MCL_MEM_COPY_HOST_PTR (1 << 5)

/* Map flags. */
#define MCL_MAP_READ (1 << 0)
#define MCL_MAP_WRITE (1 << 1)

/* Command-queue properties (mclCreateCommandQueueWithProperties). */
#define MCL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE (1 << 0)

/* mclGetEventProfilingInfo parameter names (OpenCL values). Timestamps are
 * steady-clock nanoseconds; per event queued <= submit <= start <= end. */
#define MCL_PROFILING_COMMAND_QUEUED 0x1280
#define MCL_PROFILING_COMMAND_SUBMIT 0x1281
#define MCL_PROFILING_COMMAND_START 0x1282
#define MCL_PROFILING_COMMAND_END 0x1283

#define MCL_TRUE 1
#define MCL_FALSE 0

/* --- discovery ----------------------------------------------------------- */

/* Fills up to num_entries devices of the requested type(s); *num_devices
 * (optional) receives the total available. Devices are process-global
 * singletons; do not free them. */
mcl_int mclGetDeviceIDs(mcl_bitfield device_type, mcl_uint num_entries,
                        mcl_device_id* devices, mcl_uint* num_devices);

/* Device name into buf (truncated, always NUL-terminated). */
mcl_int mclGetDeviceName(mcl_device_id device, size_t buf_size, char* buf);

/* --- context & queue ------------------------------------------------------ */

mcl_context mclCreateContext(mcl_device_id device, mcl_int* errcode_ret);
mcl_int mclReleaseContext(mcl_context context);

mcl_command_queue mclCreateCommandQueue(mcl_context context,
                                        mcl_int* errcode_ret);
/* Like mclCreateCommandQueue with a properties bitfield
 * (MCL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE). Unknown bits are rejected. */
mcl_command_queue mclCreateCommandQueueWithProperties(mcl_context context,
                                                      mcl_bitfield properties,
                                                      mcl_int* errcode_ret);
mcl_int mclReleaseCommandQueue(mcl_command_queue queue);
mcl_int mclFinish(mcl_command_queue queue);

/* --- events ---------------------------------------------------------------- */

/* Blocks until all num_events events completed. Returns MCL_EXEC_STATUS_
 * ERROR_FOR_EVENTS_IN_WAIT_LIST if any of them finished with an error. */
mcl_int mclWaitForEvents(mcl_uint num_events, const mcl_event* event_list);

/* Profiling timestamp query (see MCL_PROFILING_COMMAND_*). value_size must
 * be >= sizeof(mcl_ulong) when value is non-NULL; *value_size_ret (optional)
 * receives sizeof(mcl_ulong). Returns MCL_PROFILING_INFO_NOT_AVAILABLE until
 * the event reaches a terminal state. */
mcl_int mclGetEventProfilingInfo(mcl_event event, mcl_uint param_name,
                                 size_t value_size, void* value,
                                 size_t* value_size_ret);

/* Releases the handle. The underlying command still runs to completion; it
 * just can no longer be waited on through this handle. */
mcl_int mclReleaseEvent(mcl_event event);

/* --- buffers --------------------------------------------------------------- */

mcl_mem mclCreateBuffer(mcl_context context, mcl_bitfield flags, size_t size,
                        void* host_ptr, mcl_int* errcode_ret);
mcl_int mclReleaseMemObject(mcl_mem mem);

mcl_int mclEnqueueWriteBuffer(mcl_command_queue queue, mcl_mem mem,
                              mcl_int blocking, size_t offset, size_t size,
                              const void* ptr);
mcl_int mclEnqueueReadBuffer(mcl_command_queue queue, mcl_mem mem,
                             mcl_int blocking, size_t offset, size_t size,
                             void* ptr);
/* Non-blocking transfers (blocking_write/read = CL_FALSE analogues). The
 * host pointer and the buffer must stay valid until the returned event
 * completes. `event` may be NULL to enqueue without keeping a handle; a
 * non-empty wait list delays execution until those events complete, and a
 * failed wait-list event propagates its error instead of running this
 * command. Wait-list events may come from any queue. */
mcl_int mclEnqueueWriteBufferAsync(mcl_command_queue queue, mcl_mem mem,
                                   size_t offset, size_t size, const void* ptr,
                                   mcl_uint num_events_in_wait_list,
                                   const mcl_event* event_wait_list,
                                   mcl_event* event);
mcl_int mclEnqueueReadBufferAsync(mcl_command_queue queue, mcl_mem mem,
                                  size_t offset, size_t size, void* ptr,
                                  mcl_uint num_events_in_wait_list,
                                  const mcl_event* event_wait_list,
                                  mcl_event* event);

/* clEnqueueMarkerWithWaitList / clEnqueueBarrierWithWaitList. With an empty
 * wait list both complete once every previously enqueued command has; the
 * barrier additionally orders all subsequently enqueued commands after it
 * (meaningful on out-of-order queues). */
mcl_int mclEnqueueMarkerWithWaitList(mcl_command_queue queue,
                                     mcl_uint num_events_in_wait_list,
                                     const mcl_event* event_wait_list,
                                     mcl_event* event);
mcl_int mclEnqueueBarrierWithWaitList(mcl_command_queue queue,
                                      mcl_uint num_events_in_wait_list,
                                      const mcl_event* event_wait_list,
                                      mcl_event* event);

void* mclEnqueueMapBuffer(mcl_command_queue queue, mcl_mem mem,
                          mcl_bitfield map_flags, size_t offset, size_t size,
                          mcl_int* errcode_ret);
mcl_int mclEnqueueUnmapMemObject(mcl_command_queue queue, mcl_mem mem,
                                 void* mapped_ptr);

/* --- kernels ---------------------------------------------------------------- */

mcl_kernel mclCreateKernel(mcl_context context, const char* kernel_name,
                           mcl_int* errcode_ret);
mcl_int mclReleaseKernel(mcl_kernel kernel);

mcl_int mclSetKernelArg(mcl_kernel kernel, mcl_uint arg_index, size_t arg_size,
                        const void* arg_value);

mcl_int mclEnqueueNDRangeKernel(mcl_command_queue queue, mcl_kernel kernel,
                                mcl_uint work_dim, const size_t* global_size,
                                const size_t* local_size);

/* Non-blocking launch; argument bindings are snapshot at enqueue time. Same
 * wait-list/event contract as the async transfers. */
mcl_int mclEnqueueNDRangeKernelAsync(mcl_command_queue queue, mcl_kernel kernel,
                                     mcl_uint work_dim,
                                     const size_t* global_size,
                                     const size_t* local_size,
                                     mcl_uint num_events_in_wait_list,
                                     const mcl_event* event_wait_list,
                                     mcl_event* event);

/* --- tracing (mcltrace extension) ------------------------------------------- */

/* Annotate host phases on the mcltrace timeline (see docs/tracing.md).
 * Recording is runtime-gated: set MCL_TRACE=path.json in the environment (the
 * trace is exported at process exit) or run a bench binary with --trace. When
 * tracing is off these calls cost one relaxed atomic load. mclTraceBegin
 * opens a span on the calling thread; mclTraceEnd closes the innermost open
 * span; mclTraceCounter samples a named value. The name is copied — it need
 * not outlive the call. */
mcl_int mclTraceBegin(const char* name);
mcl_int mclTraceEnd(const char* name);
mcl_int mclTraceCounter(const char* name, double value);

/* --- profiling (mclprof extension) ------------------------------------------ */

/* Per-launch hardware-counter profile of an NDRangeKernel event. `hardware`
 * is MCL_TRUE when the counters came from perf_event_open; when the PMU is
 * unavailable the software-derived fields (seconds, achieved_gbps) are still
 * populated and the counter fields are zero. */
typedef struct mcl_kernel_profile {
  char kernel[64]; /* kernel name, truncated, NUL-terminated */
  mcl_ulong launches;
  mcl_ulong workgroups;
  mcl_ulong items;
  mcl_ulong cycles;
  mcl_ulong instructions;
  mcl_ulong cache_references;
  mcl_ulong cache_misses;
  mcl_ulong branches;
  mcl_ulong branch_misses;
  double seconds;
  double ipc;
  double cache_miss_rate;
  double bytes_per_cycle;
  double achieved_gbps;
  mcl_int hardware; /* MCL_TRUE when counters came from perf_event_open */
} mcl_kernel_profile;

/* Fills *profile with the event's per-launch kernel profile. A profiling
 * session must have been active at launch time (MCL_PROF=path in the
 * environment, or a bench --profile run). Returns
 * MCL_PROFILING_INFO_NOT_AVAILABLE when the event is not a completed
 * NDRangeKernel command or no session was active. */
mcl_int mclGetEventProfile(mcl_event event, mcl_kernel_profile* profile);

/* Copies the current mclprof metrics registry snapshot as a JSON object
 * ({"counters": ..., "gauges": ..., "histograms": ...}) into buf (truncated,
 * always NUL-terminated when buf_size > 0). *size_ret (optional) receives
 * the full untruncated size including the NUL. buf may be NULL for a pure
 * size query. */
mcl_int mclMetricsSnapshot(char* buf, size_t buf_size, size_t* size_ret);

/* --- self-tuning (mcltune extension) ---------------------------------------- */

/* Tuning modes (mclSetTuning / the MCL_TUNE environment variable).
 *   off:    launches run exactly as configured (zero-overhead default).
 *   seed:   the cost model's top-ranked legal config is applied; no
 *           exploration launches ever happen.
 *   online: seed + bounded explore/exploit refinement from measured launch
 *           times, with a regression guard (see docs/tune.md). */
#define MCL_TUNE_OFF 0
#define MCL_TUNE_SEED 1
#define MCL_TUNE_ONLINE 2

/* Sets the process-wide tuning mode, overriding MCL_TUNE. Takes effect for
 * subsequent launches; already-learned tuning state is kept. */
mcl_int mclSetTuning(mcl_int mode);

/* The tuner's current recommendation for one launch shape. */
typedef struct mcl_tuned_config {
  /* Recommended local size; work_dim == 0 means "no override" (keep the
   * caller's local size or the runtime default). */
  size_t local_size[3];
  mcl_uint work_dim;
  mcl_int executor;       /* 0 auto, 1 loop, 2 fiber, 3 simd */
  mcl_uint chunk_divisor; /* chunk = clamp(groups/(threads*divisor), 1, 64) */
  mcl_int work_stealing;  /* MCL_TRUE: work-stealing dispatch order */
  mcl_int prefer_map;     /* MCL_TRUE: map/unmap beats explicit copies */
} mcl_tuned_config;

/* Fills *config with the best known config for launching `kernel_name` at
 * global_size (NULL local, i.e. runtime-chosen groups): the measured
 * incumbent when the tuner has explored this shape, else the static cost
 * model's seed ranking. Works in every tuning mode and never records
 * state. Returns MCL_INVALID_KERNEL_NAME for unregistered kernels. */
mcl_int mclGetTunedConfig(const char* kernel_name, mcl_uint work_dim,
                          const size_t* global_size, mcl_tuned_config* config);

/* Like mclGetTunedConfig, but keys the lookup on `device`'s compute-unit
 * count instead of the default CPU pool size. Required when the launch
 * targets a partitioned sub-device: tuner entries are keyed on the shard
 * width, so querying with the parent pool size reads the wrong entry.
 * Returns MCL_INVALID_DEVICE for a null/invalid device handle. */
mcl_int mclGetTunedConfigForDevice(mcl_device_id device,
                                   const char* kernel_name, mcl_uint work_dim,
                                   const size_t* global_size,
                                   mcl_tuned_config* config);

#ifdef __cplusplus
}
#endif

#endif /* MCL_OCL_MCL_H_ */
