#include "ocl/platform.hpp"

namespace mcl::ocl {

Platform& Platform::default_instance() {
  static Platform platform;
  return platform;
}

}  // namespace mcl::ocl
