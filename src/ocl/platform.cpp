#include "ocl/platform.hpp"

#include <cstdlib>

namespace mcl::ocl {

namespace {

/// Default CPU config, honoring MCL_CPU_THREADS (pool width override for the
/// shared platform). Exists for sub-device tests on small CI hosts: a 1-core
/// runner defaults to a 1-worker pool, which cannot be partitioned into two
/// shards. Invalid or absent values fall back to one worker per logical CPU.
CpuDeviceConfig default_cpu_config() {
  CpuDeviceConfig config;
  if (const char* env = std::getenv("MCL_CPU_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0 && v <= 1024) {
      config.threads = static_cast<std::size_t>(v);
    }
  }
  return config;
}

}  // namespace

Platform& Platform::default_instance() {
  static Platform platform{default_cpu_config()};
  return platform;
}

}  // namespace mcl::ocl
