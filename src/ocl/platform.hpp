// Platform: device discovery root (clGetPlatformIDs analogue).
//
// A Platform owns one CPU device and one simulated-GPU device, matching the
// paper's two-platform setup (Intel OpenCL on the Xeon, NVIDIA OpenCL on the
// GTX 580). Construct your own for custom configurations, or use
// Platform::default_instance() for the shared one.
#pragma once

#include <vector>

#include "ocl/device.hpp"

namespace mcl::ocl {

class Platform {
 public:
  explicit Platform(CpuDeviceConfig cpu_config = {},
                    gpusim::GpuSpec gpu_spec = gpusim::GpuSpec::gtx580())
      : cpu_(cpu_config), gpu_(gpu_spec) {}

  [[nodiscard]] static const char* name() noexcept { return "MiniCL"; }
  [[nodiscard]] static const char* version() noexcept {
    return "MiniCL 1.0 (OpenCL-1.1-style host API)";
  }

  [[nodiscard]] CpuDevice& cpu() noexcept { return cpu_; }
  [[nodiscard]] SimGpuDevice& gpu() noexcept { return gpu_; }

  [[nodiscard]] std::vector<Device*> devices() {
    return {&cpu_, &gpu_};
  }
  [[nodiscard]] Device* device_by_type(DeviceType type) {
    if (type == DeviceType::Cpu) return &cpu_;
    return &gpu_;
  }

  /// Shared default platform (default CPU config, GTX 580 GPU model). The
  /// CPU pool width honors the MCL_CPU_THREADS environment variable (useful
  /// on small hosts where the default 1-worker pool cannot be partitioned
  /// into sub-devices).
  [[nodiscard]] static Platform& default_instance();

 private:
  CpuDevice cpu_;
  SimGpuDevice gpu_;
};

}  // namespace mcl::ocl
