#include "ocl/queue.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "core/time.hpp"
#include "obs/obs.hpp"
#include "prof/metrics.hpp"
#include "threading/affinity.hpp"
#include "threading/thread_pool.hpp"
#include "trace/trace.hpp"

namespace mcl::ocl {

namespace {

// Profiling timestamps and trace spans share core::steady_now_ns so both
// land on one exported timeline (the shared-epoch contract in docs/tracing.md).
std::uint64_t now_ns() { return core::steady_now_ns(); }

/// Trace-span name of an event-graph node's Running phase.
const char* command_name(CommandType t) {
  switch (t) {
    case CommandType::NDRangeKernel: return "cmd.kernel";
    case CommandType::ReadBuffer: return "cmd.read";
    case CommandType::WriteBuffer: return "cmd.write";
    case CommandType::CopyBuffer: return "cmd.copy";
    case CommandType::FillBuffer: return "cmd.fill";
    case CommandType::ReadBufferRect: return "cmd.read_rect";
    case CommandType::WriteBufferRect: return "cmd.write_rect";
    case CommandType::MapBuffer: return "cmd.map";
    case CommandType::UnmapBuffer: return "cmd.unmap";
    case CommandType::Marker: return "cmd.marker";
    case CommandType::Barrier: return "cmd.barrier";
    case CommandType::User: return "cmd.user";
  }
  return "cmd.unknown";
}

std::size_t checked_add(std::size_t a, std::size_t b) {
  std::size_t r = 0;
  core::check(!__builtin_add_overflow(a, b, &r), core::Status::InvalidValue,
              "rect arithmetic overflows size_t");
  return r;
}

std::size_t checked_mul(std::size_t a, std::size_t b) {
  std::size_t r = 0;
  core::check(!__builtin_mul_overflow(a, b, &r), core::Status::InvalidValue,
              "rect arithmetic overflows size_t");
  return r;
}

/// Registry counters shared by the blocking and async transfer paths.
void note_transfer(std::size_t bytes) {
  MCL_PROF_COUNT("cq.transfers", 1);
  MCL_PROF_HIST("cq.transfer_bytes", bytes);
}

core::Status status_of(const std::exception_ptr& error) noexcept {
  try {
    std::rethrow_exception(error);
  } catch (const core::Error& e) {
    return e.status();
  } catch (...) {
    return core::Status::InternalError;
  }
}

}  // namespace

void CommandQueue::check_range(const Buffer& buffer, std::size_t offset,
                               std::size_t bytes) const {
  // Overflow-safe form: `offset + bytes <= size` wraps for huge offsets and
  // would wave an out-of-bounds range through.
  core::check(bytes <= buffer.size() && offset <= buffer.size() - bytes,
              core::Status::InvalidValue,
              "transfer range exceeds buffer size");
}

Event CommandQueue::enqueue_write_buffer(Buffer& buffer, std::size_t offset,
                                         std::size_t bytes, const void* src) {
  // Validate before the zero-byte shortcut: an out-of-range offset or null
  // pointer is an API error regardless of transfer size.
  check_range(buffer, offset, bytes);
  core::check(src != nullptr, core::Status::InvalidValue, "null source");
  if (bytes == 0) return Event{CommandType::WriteBuffer, 0.0, {}};
  MCL_TRACE_SCOPE("cq.write", "bytes", bytes);
  note_transfer(bytes);
  Event ev{CommandType::WriteBuffer, 0.0, {}};
  const core::TimePoint t0 = core::now();
  std::memcpy(static_cast<std::byte*>(buffer.device_ptr()) + offset, src, bytes);
  ev.seconds = core::elapsed_s(t0, core::now()) +
               device_->copy_overhead_seconds(bytes);
  return ev;
}

Event CommandQueue::enqueue_read_buffer(const Buffer& buffer, std::size_t offset,
                                        std::size_t bytes, void* dst) {
  check_range(buffer, offset, bytes);
  core::check(dst != nullptr, core::Status::InvalidValue, "null destination");
  if (bytes == 0) return Event{CommandType::ReadBuffer, 0.0, {}};
  MCL_TRACE_SCOPE("cq.read", "bytes", bytes);
  note_transfer(bytes);
  Event ev{CommandType::ReadBuffer, 0.0, {}};
  const core::TimePoint t0 = core::now();
  std::memcpy(dst, static_cast<const std::byte*>(buffer.device_ptr()) + offset,
              bytes);
  ev.seconds = core::elapsed_s(t0, core::now()) +
               device_->copy_overhead_seconds(bytes);
  return ev;
}

Event CommandQueue::enqueue_copy_buffer(const Buffer& src, Buffer& dst,
                                        std::size_t src_offset,
                                        std::size_t dst_offset,
                                        std::size_t bytes) {
  check_range(src, src_offset, bytes);
  check_range(dst, dst_offset, bytes);
  if (bytes == 0) return Event{CommandType::CopyBuffer, 0.0, {}};
  const auto* s = static_cast<const std::byte*>(src.device_ptr()) + src_offset;
  auto* d = static_cast<std::byte*>(dst.device_ptr()) + dst_offset;
  core::check(s + bytes <= d || d + bytes <= s, core::Status::InvalidValue,
              "copy regions overlap");
  MCL_TRACE_SCOPE("cq.copy", "bytes", bytes);
  note_transfer(bytes);
  Event ev{CommandType::CopyBuffer, 0.0, {}};
  const core::TimePoint t0 = core::now();
  std::memcpy(d, s, bytes);
  ev.seconds = core::elapsed_s(t0, core::now());
  return ev;
}

Event CommandQueue::enqueue_fill_buffer(Buffer& buffer, const void* pattern,
                                        std::size_t pattern_bytes,
                                        std::size_t offset, std::size_t bytes) {
  core::check(pattern != nullptr && pattern_bytes > 0,
              core::Status::InvalidValue, "null/empty fill pattern");
  core::check(bytes % pattern_bytes == 0, core::Status::InvalidValue,
              "fill size must be a multiple of the pattern size");
  core::check(offset % pattern_bytes == 0, core::Status::InvalidValue,
              "fill offset must be a multiple of the pattern size");
  check_range(buffer, offset, bytes);
  if (bytes == 0) return Event{CommandType::FillBuffer, 0.0, {}};
  MCL_TRACE_SCOPE("cq.fill", "bytes", bytes);
  note_transfer(bytes);
  Event ev{CommandType::FillBuffer, 0.0, {}};
  const core::TimePoint t0 = core::now();
  auto* d = static_cast<std::byte*>(buffer.device_ptr()) + offset;
  for (std::size_t i = 0; i < bytes; i += pattern_bytes) {
    std::memcpy(d + i, pattern, pattern_bytes);
  }
  ev.seconds = core::elapsed_s(t0, core::now());
  return ev;
}

namespace {

struct ResolvedRect {
  std::size_t row_pitch, slice_pitch;
};

ResolvedRect resolve(const BufferRect& r) {
  const std::size_t row = r.row_pitch != 0 ? r.row_pitch : r.region[0];
  const std::size_t slice =
      r.slice_pitch != 0 ? r.slice_pitch : checked_mul(row, r.region[1]);
  core::check(row >= r.region[0] && slice >= checked_mul(row, r.region[1]),
              core::Status::InvalidValue, "rect pitches smaller than region");
  return {row, slice};
}

/// Byte offset of (row y, slice z) start within a rect's memory. Interior
/// offsets are bounded by rect_end, which is computed with overflow checks,
/// so plain arithmetic is safe here.
std::size_t rect_offset(const BufferRect& r, const ResolvedRect& rr,
                        std::size_t y, std::size_t z) {
  return r.origin[0] + (r.origin[1] + y) * rr.row_pitch +
         (r.origin[2] + z) * rr.slice_pitch;
}

/// One-past-the-end byte offset of the rect, with every addition and
/// multiplication overflow-checked (huge origins/pitches must be rejected,
/// not wrapped into a passing bound check).
std::size_t rect_end(const BufferRect& r, const ResolvedRect& rr) {
  core::check(r.region[0] > 0 && r.region[1] > 0 && r.region[2] > 0,
              core::Status::InvalidValue, "empty rect region");
  const std::size_t last_row =
      checked_mul(checked_add(r.origin[1], r.region[1] - 1), rr.row_pitch);
  const std::size_t last_slice =
      checked_mul(checked_add(r.origin[2], r.region[2] - 1), rr.slice_pitch);
  return checked_add(
      checked_add(checked_add(r.origin[0], last_row), last_slice),
      r.region[0]);
}

void copy_rect(const BufferRect& dst_r, std::byte* dst,
               const BufferRect& src_r, const std::byte* src) {
  core::check(dst_r.region[0] == src_r.region[0] &&
                  dst_r.region[1] == src_r.region[1] &&
                  dst_r.region[2] == src_r.region[2],
              core::Status::InvalidValue, "rect regions differ");
  const ResolvedRect rd = resolve(dst_r);
  const ResolvedRect rs = resolve(src_r);
  for (std::size_t z = 0; z < dst_r.region[2]; ++z) {
    for (std::size_t y = 0; y < dst_r.region[1]; ++y) {
      std::memcpy(dst + rect_offset(dst_r, rd, y, z),
                  src + rect_offset(src_r, rs, y, z), dst_r.region[0]);
    }
  }
}

}  // namespace

Event CommandQueue::enqueue_write_buffer_rect(Buffer& buffer,
                                              const BufferRect& buffer_rect,
                                              const BufferRect& host_rect,
                                              const void* src) {
  core::check(src != nullptr, core::Status::InvalidValue, "null source");
  core::check(rect_end(buffer_rect, resolve(buffer_rect)) <= buffer.size(),
              core::Status::InvalidValue, "rect exceeds buffer size");
  (void)rect_end(host_rect, resolve(host_rect));  // overflow audit only
  MCL_TRACE_SCOPE("cq.write_rect", "bytes",
                  buffer_rect.region[0] * buffer_rect.region[1] *
                      buffer_rect.region[2]);
  Event ev{CommandType::WriteBufferRect, 0.0, {}};
  const core::TimePoint t0 = core::now();
  copy_rect(buffer_rect, static_cast<std::byte*>(buffer.device_ptr()),
            host_rect, static_cast<const std::byte*>(src));
  ev.seconds = core::elapsed_s(t0, core::now());
  return ev;
}

Event CommandQueue::enqueue_read_buffer_rect(const Buffer& buffer,
                                             const BufferRect& buffer_rect,
                                             const BufferRect& host_rect,
                                             void* dst) {
  core::check(dst != nullptr, core::Status::InvalidValue, "null destination");
  core::check(rect_end(buffer_rect, resolve(buffer_rect)) <= buffer.size(),
              core::Status::InvalidValue, "rect exceeds buffer size");
  (void)rect_end(host_rect, resolve(host_rect));  // overflow audit only
  MCL_TRACE_SCOPE("cq.read_rect", "bytes",
                  buffer_rect.region[0] * buffer_rect.region[1] *
                      buffer_rect.region[2]);
  Event ev{CommandType::ReadBufferRect, 0.0, {}};
  const core::TimePoint t0 = core::now();
  copy_rect(host_rect, static_cast<std::byte*>(dst), buffer_rect,
            static_cast<const std::byte*>(buffer.device_ptr()));
  ev.seconds = core::elapsed_s(t0, core::now());
  return ev;
}

void* CommandQueue::enqueue_map_buffer(Buffer& buffer, MapFlags flags,
                                       std::size_t offset, std::size_t bytes,
                                       Event* event) {
  (void)flags;  // recorded semantics only; all mappings are coherent here
  check_range(buffer, offset, bytes);
  MCL_TRACE_SCOPE("cq.map", "bytes", bytes);
  const core::TimePoint t0 = core::now();
  void* ptr = static_cast<std::byte*>(buffer.device_ptr()) + offset;
  buffer.note_mapped();
  if (event != nullptr) {
    *event = Event{CommandType::MapBuffer,
                   core::elapsed_s(t0, core::now()) +
                       device_->map_overhead_seconds(buffer, bytes),
                   {}};
  }
  return ptr;
}

Event CommandQueue::enqueue_unmap(Buffer& buffer, void* mapped_ptr) {
  const auto* base = static_cast<const std::byte*>(buffer.device_ptr());
  const auto* p = static_cast<const std::byte*>(mapped_ptr);
  core::check(p >= base && p < base + buffer.size(), core::Status::MapFailure,
              "unmap pointer does not belong to this buffer");
  core::check(buffer.note_unmapped(), core::Status::MapFailure,
              "buffer is not mapped");
  MCL_TRACE_INSTANT("cq.unmap");
  return Event{CommandType::UnmapBuffer, 0.0, {}};
}

Event CommandQueue::enqueue_ndrange(const Kernel& kernel, const NDRange& global,
                                    const NDRange& local,
                                    const NDRange& offset) {
  trace::ScopedSpan span(
      trace::enabled() ? trace::intern("cq.kernel:" + kernel.def().name)
                       : nullptr,
      "global,local", global.total(), local.is_null() ? 0 : local.total());
  MCL_PROF_COUNT("cq.kernel_launches", 1);
  Event ev{CommandType::NDRangeKernel, 0.0, {}};
  ev.launch =
      device_->launch(kernel.def(), kernel.args(), global, local, offset);
  ev.seconds = ev.launch.seconds;
  return ev;
}

Event CommandQueue::enqueue_ndrange_pinned(const Kernel& kernel,
                                           const NDRange& global,
                                           const NDRange& local,
                                           std::span<const int> group_to_cpu) {
  auto* cpu = dynamic_cast<CpuDevice*>(device_);
  core::check(cpu != nullptr, core::Status::InvalidOperation,
              "pinned launches are a CPU-device extension");
  trace::ScopedSpan span(
      trace::enabled() ? trace::intern("cq.kernel_pinned:" + kernel.def().name)
                       : nullptr,
      "global,local", global.total(), local.is_null() ? 0 : local.total());
  MCL_PROF_COUNT("cq.kernel_launches", 1);
  Event ev{CommandType::NDRangeKernel, 0.0, {}};
  ev.launch =
      cpu->launch_pinned(kernel.def(), kernel.args(), global, local, group_to_cpu);
  ev.seconds = ev.launch.seconds;
  return ev;
}


// --- async event ----------------------------------------------------------------

void AsyncEvent::wait() const {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [this] { return finished_locked(); });
  if (error_) std::rethrow_exception(error_);
}

bool AsyncEvent::wait_for(std::chrono::nanoseconds timeout) const {
  std::unique_lock lock(mutex_);
  if (!cv_.wait_for(lock, timeout, [this] { return finished_locked(); })) {
    return false;
  }
  if (error_) std::rethrow_exception(error_);
  return true;
}

bool AsyncEvent::complete() const {
  std::lock_guard lock(mutex_);
  return finished_locked();
}

Event AsyncEvent::result() const {
  wait();
  std::lock_guard lock(mutex_);
  return event_;
}

CommandState AsyncEvent::state() const {
  std::lock_guard lock(mutex_);
  return state_;
}

core::Status AsyncEvent::status() const {
  std::lock_guard lock(mutex_);
  return status_;
}

ProfilingInfo AsyncEvent::profiling_ns() const {
  std::lock_guard lock(mutex_);
  core::check(finished_locked(), core::Status::InvalidOperation,
              "profiling info unavailable before the command completes");
  return prof_;
}

prof::KernelProfile AsyncEvent::kernel_profile() const {
  std::lock_guard lock(mutex_);
  core::check(finished_locked(), core::Status::InvalidOperation,
              "kernel profile unavailable before the command completes");
  core::check(type_ == CommandType::NDRangeKernel,
              core::Status::InvalidOperation,
              "kernel profiles exist only for NDRangeKernel commands");
  return event_.launch.profile;
}

bool AsyncEvent::add_continuation(std::function<void(core::Status)> fn) {
  std::lock_guard lock(mutex_);
  if (finished_locked()) return false;
  continuations_.push_back(std::move(fn));
  return true;
}

void AsyncEvent::on_complete(std::function<void(core::Status)> fn) {
  core::check(fn != nullptr, core::Status::InvalidValue,
              "null completion callback");
  // Terminal already: run inline, never touching the queue (this is also the
  // only safe path once the owning queue may be gone).
  if (complete()) {
    fn(status());
    return;
  }
  // Count the callback toward the queue's drain *before* registering it, so
  // finish() can never observe outstanding_ == 0 while a registered callback
  // that might re-enqueue has yet to run.
  CommandQueue* q = queue_;
  if (q != nullptr) q->note_callback_registered();
  // Shared wrapper: the continuation and the lost-race fallback below both
  // need to be able to invoke it.
  auto shared = std::make_shared<std::function<void(core::Status)>>(std::move(fn));
  const bool registered = add_continuation([shared, q](core::Status s) {
    (*shared)(s);
    if (q != nullptr) q->note_callback_done();
  });
  if (!registered) {
    // Completed between the complete() check and registration.
    (*shared)(status());
    if (q != nullptr) q->note_callback_done();
  }
}

AsyncEventPtr AsyncEvent::create_user() {
  auto ev = std::make_shared<AsyncEvent>();
  ev->type_ = CommandType::User;
  ev->user_ = true;
  ev->prof_.queued_ns = now_ns();
  return ev;
}

void AsyncEvent::set_user_status(core::Status status) {
  std::vector<std::function<void(core::Status)>> continuations;
  ProfilingInfo prof;
  {
    std::lock_guard lock(mutex_);
    core::check(user_, core::Status::InvalidOperation,
                "set_user_status on a non-user event");
    core::check(!finished_locked(), core::Status::InvalidOperation,
                "user event status already set");
    const std::uint64_t ns = now_ns();
    prof_.submitted_ns = ns;
    prof_.started_ns = ns;
    prof_.ended_ns = ns;
    if (status == core::Status::Success) {
      state_ = CommandState::Complete;
      event_ = Event{type_, 0.0, {}};
    } else {
      state_ = CommandState::Error;
      status_ = status;
      error_ = std::make_exception_ptr(
          core::Error(status, "user event completed with failure status"));
    }
    prof = prof_;
    continuations = std::move(continuations_);
    continuations_.clear();
  }
  cv_.notify_all();
  if (trace::enabled()) {
    trace::complete_span("cmd.user", prof.queued_ns,
                         prof.ended_ns - prof.queued_ns, "ok",
                         status == core::Status::Success ? 1 : 0);
  }
  for (const auto& continuation : continuations) continuation(status);
}

// --- event-graph executor -------------------------------------------------------

threading::ThreadPool& CommandQueue::executor_pool() {
  // Shared by every queue in the process. Sized above the core count so
  // independent commands still overlap on small hosts; command bodies never
  // block on other events (dependencies resolve via continuations), so any
  // pool size is deadlock-free.
  static threading::ThreadPool pool(std::max<std::size_t>(
      4, static_cast<std::size_t>(threading::logical_cpu_count())));
  return pool;
}

CommandQueue::~CommandQueue() { finish(); }

void CommandQueue::finish() {
  // Transitive drain: outstanding_ alone is not enough — an on_complete
  // callback registered before the drain predicate ran may still be about to
  // enqueue follow-up work (mclserve's batching does exactly this), so wait
  // for pending callbacks too. Each callback is counted before registration
  // and released only after it ran, so re-enqueued work raises outstanding_
  // before its parent's callback count drops.
  std::unique_lock lock(mutex_);
  drained_cv_.wait(
      lock, [this] { return outstanding_ == 0 && callbacks_in_flight_ == 0; });
}

void CommandQueue::note_callback_registered() {
  std::lock_guard lock(mutex_);
  ++callbacks_in_flight_;
}

void CommandQueue::note_callback_done() {
  std::lock_guard lock(mutex_);
  --callbacks_in_flight_;
  drained_cv_.notify_all();
}

AsyncEventPtr CommandQueue::submit_async(CommandType type,
                                         std::function<Event()> command,
                                         std::vector<AsyncEventPtr> wait_list,
                                         bool gather_outstanding,
                                         bool install_barrier) {
  auto ev = std::make_shared<AsyncEvent>();
  ev->type_ = type;
  ev->queue_ = this;  // written before publication; read-only afterwards
  ev->work_ = std::move(command);
  ev->prof_.queued_ns = now_ns();
  // Causal attribution: inherit the enqueuing thread's context (mclserve
  // sets one around forward()), minting a fresh anonymous id for direct
  // enqueues. One relaxed load when observability is off.
  if (obs::enabled()) ev->ctx_ = obs::ensure_context();
  MCL_PROF_COUNT("cq.async_commands", 1);

  // Edges: explicit wait-list dependencies propagate failure; implicit
  // ordering edges (in-order chain, barriers, marker gathering) only order.
  struct Edge {
    AsyncEventPtr dep;
    bool propagate_failure;
  };
  std::vector<Edge> edges;
  edges.reserve(wait_list.size() + 1);
  for (AsyncEventPtr& w : wait_list) {
    if (w) edges.push_back({std::move(w), true});
  }
  {
    std::lock_guard lock(mutex_);
    ++outstanding_;
    if (!out_of_order()) {
      if (last_) edges.push_back({last_, false});
      last_ = ev;
    } else {
      if (gather_outstanding) {
        for (const std::weak_ptr<AsyncEvent>& weak : live_) {
          if (AsyncEventPtr dep = weak.lock();
              dep && dep.get() != ev.get() && !dep->complete()) {
            edges.push_back({std::move(dep), false});
          }
        }
      } else if (barrier_) {
        edges.push_back({barrier_, false});
      }
      if (install_barrier) barrier_ = ev;
      live_.push_back(ev);
      if (live_.size() > 128) {
        std::erase_if(live_, [](const std::weak_ptr<AsyncEvent>& weak) {
          const AsyncEventPtr e = weak.lock();
          return !e || e->complete();
        });
      }
    }
  }

  // The +1 sentinel keeps the node from firing while edges are still being
  // attached; released at the end.
  {
    std::lock_guard lock(ev->mutex_);
    ev->blocking_deps_ = edges.size() + 1;
  }
  for (Edge& edge : edges) {
    const bool propagate = edge.propagate_failure;
    const bool registered = edge.dep->add_continuation(
        [this, ev, propagate](core::Status dep_status) {
          resolve_dep(ev, propagate ? dep_status : core::Status::Success);
        });
    if (!registered) {
      resolve_dep(ev, propagate ? edge.dep->status() : core::Status::Success);
    }
  }
  resolve_dep(ev, core::Status::Success);
  return ev;
}

void CommandQueue::resolve_dep(const AsyncEventPtr& ev,
                               core::Status dep_status) {
  bool ready = false;
  {
    std::lock_guard lock(ev->mutex_);
    if (dep_status != core::Status::Success &&
        ev->dep_failure_ == core::Status::Success) {
      ev->dep_failure_ = dep_status;
    }
    ready = (--ev->blocking_deps_ == 0);
  }
  if (ready) launch_ready(ev);
}

void CommandQueue::launch_ready(const AsyncEventPtr& ev) {
  core::Status dep_failure = core::Status::Success;
  {
    std::lock_guard lock(ev->mutex_);
    ev->state_ = CommandState::Submitted;
    ev->prof_.submitted_ns = now_ns();
    dep_failure = ev->dep_failure_;
  }
  if (dep_failure != core::Status::Success) {
    // A wait-list dependency failed: propagate its Status without occupying
    // a pool worker — dependents must not hang, they must fail.
    finalize(ev, Event{ev->type_, 0.0, {}},
             std::make_exception_ptr(core::Error(
                 dep_failure, "failed dependency in wait list")),
             dep_failure);
    return;
  }
  executor_pool().submit([this, ev] { run_command(ev); });
}

void CommandQueue::run_command(const AsyncEventPtr& ev) {
  // Pool workers run with the command's context installed so everything the
  // command emits (cq.* spans, wg: workgroup spans, tune.decide instants)
  // carries the same id as its cmd.* lifecycle spans.
  trace::ContextScope cscope(ev->ctx_);
  std::function<Event()> work;
  {
    std::lock_guard lock(ev->mutex_);
    ev->state_ = CommandState::Running;
    ev->prof_.started_ns = now_ns();
    work = std::move(ev->work_);
  }
  Event result{ev->type_, 0.0, {}};
  std::exception_ptr error;
  try {
    result = work();
  } catch (...) {
    error = std::current_exception();
  }
  finalize(ev, result, error, error ? status_of(error) : core::Status::Success);
}

void CommandQueue::finalize(const AsyncEventPtr& ev, Event result,
                            std::exception_ptr error, core::Status status) {
  std::vector<std::function<void(core::Status)>> continuations;
  const core::Status final_status = error ? status : core::Status::Success;
  ProfilingInfo prof;
  {
    std::lock_guard lock(ev->mutex_);
    const std::uint64_t ns = now_ns();
    // Dependency-failure propagation skips Running; keep the timestamps
    // monotonic by stamping the skipped phases with the terminal time.
    if (ev->prof_.started_ns == 0) ev->prof_.started_ns = ns;
    ev->prof_.ended_ns = ns;
    prof = ev->prof_;
    if (error) {
      ev->state_ = CommandState::Error;
      ev->error_ = std::move(error);
      ev->status_ = status;
    } else {
      ev->state_ = CommandState::Complete;
      ev->event_ = result;
    }
    ev->work_ = nullptr;
    continuations = std::move(ev->continuations_);
    ev->continuations_.clear();
  }
  ev->cv_.notify_all();
  // Flight-recorder trigger: a command failing (own error or wait-list
  // propagation) is an anomaly — except Cancelled, which mclserve already
  // records at the source (timeout/cancel) and which fans out to every
  // dependent during shutdown. No locks are held here, so an inline dump
  // (whose sections take subsystem locks) is safe.
  if (error && final_status != core::Status::Cancelled && obs::enabled()) {
    obs::anomaly(obs::Kind::Error, ev->ctx_, command_name(ev->type_),
                 final_status);
  }
  if (trace::enabled()) {
    trace::ContextScope cscope(ev->ctx_);
    // Re-emit the event-graph node's lifecycle as spans that reuse the
    // profiling timestamps exactly (shared steady_now_ns epoch), so the DAG
    // wait/dispatch/run phases appear on the same timeline as workgroup
    // spans. tests/trace_test.cpp asserts the Running-phase span encloses
    // the kernel's workgroup spans.
    // Emit the queued/dispatch phases unconditionally, zero-duration
    // included: dropping sub-tick phases made fast commands invisible in
    // Perfetto and skewed the per-phase p50 tables. Timestamps are monotonic
    // (same clock, stamped in order), so the subtractions cannot underflow.
    trace::complete_span("cmd.queued", prof.queued_ns,
                         prof.submitted_ns - prof.queued_ns);
    trace::complete_span("cmd.dispatch", prof.submitted_ns,
                         prof.started_ns - prof.submitted_ns);
    trace::complete_span(command_name(ev->type_), prof.started_ns,
                         prof.ended_ns - prof.started_ns, "ok",
                         final_status == core::Status::Success ? 1 : 0);
  }
  for (const auto& continuation : continuations) continuation(final_status);
  command_retired();
}

void CommandQueue::command_retired() {
  // Notify under the lock: finish() may return — and the caller destroy the
  // queue — the instant outstanding_ hits zero, so the condition variable
  // must not be touched after the mutex is released.
  std::lock_guard lock(mutex_);
  --outstanding_;
  drained_cv_.notify_all();
}

// --- async entry points ---------------------------------------------------------

AsyncEventPtr CommandQueue::enqueue_ndrange_async(
    const Kernel& kernel, const NDRange& global, const NDRange& local,
    std::vector<AsyncEventPtr> wait_list, const NDRange& offset) {
  // Snapshot the argument bindings so later set_arg calls on the caller's
  // Kernel cannot race the in-flight command.
  return submit_async(
      CommandType::NDRangeKernel,
      [this, def = &kernel.def(), args = kernel.args(), global, local,
       offset] {
        MCL_PROF_COUNT("cq.kernel_launches", 1);
        Event ev{CommandType::NDRangeKernel, 0.0, {}};
        ev.launch = device_->launch(*def, args, global, local, offset);
        ev.seconds = ev.launch.seconds;
        return ev;
      },
      std::move(wait_list));
}

AsyncEventPtr CommandQueue::enqueue_write_buffer_async(
    Buffer& buffer, std::size_t offset, std::size_t bytes, const void* src,
    std::vector<AsyncEventPtr> wait_list) {
  // Validate and snapshot at enqueue time: invalid ranges fail fast at the
  // call site, and the command never touches the (possibly shorter-lived)
  // Buffer object itself — only its storage, which must outlive the event.
  // Validation runs before the zero-byte shortcut so a bad offset or null
  // pointer fails the same way it does on the non-zero path.
  check_range(buffer, offset, bytes);
  core::check(src != nullptr, core::Status::InvalidValue, "null source");
  if (bytes == 0) {
    return submit_async(
        CommandType::WriteBuffer,
        [] { return Event{CommandType::WriteBuffer, 0.0, {}}; },
        std::move(wait_list));
  }
  auto* dst = static_cast<std::byte*>(buffer.device_ptr()) + offset;
  return submit_async(
      CommandType::WriteBuffer,
      [this, dst, bytes, src] {
        MCL_TRACE_SCOPE("cq.write", "bytes", bytes);
        note_transfer(bytes);
        Event ev{CommandType::WriteBuffer, 0.0, {}};
        const core::TimePoint t0 = core::now();
        std::memcpy(dst, src, bytes);
        ev.seconds = core::elapsed_s(t0, core::now()) +
                     device_->copy_overhead_seconds(bytes);
        return ev;
      },
      std::move(wait_list));
}

AsyncEventPtr CommandQueue::enqueue_read_buffer_async(
    const Buffer& buffer, std::size_t offset, std::size_t bytes, void* dst,
    std::vector<AsyncEventPtr> wait_list) {
  check_range(buffer, offset, bytes);
  core::check(dst != nullptr, core::Status::InvalidValue, "null destination");
  if (bytes == 0) {
    return submit_async(
        CommandType::ReadBuffer,
        [] { return Event{CommandType::ReadBuffer, 0.0, {}}; },
        std::move(wait_list));
  }
  const auto* src = static_cast<const std::byte*>(buffer.device_ptr()) + offset;
  return submit_async(
      CommandType::ReadBuffer,
      [this, src, bytes, dst] {
        MCL_TRACE_SCOPE("cq.read", "bytes", bytes);
        note_transfer(bytes);
        Event ev{CommandType::ReadBuffer, 0.0, {}};
        const core::TimePoint t0 = core::now();
        std::memcpy(dst, src, bytes);
        ev.seconds = core::elapsed_s(t0, core::now()) +
                     device_->copy_overhead_seconds(bytes);
        return ev;
      },
      std::move(wait_list));
}

AsyncEventPtr CommandQueue::enqueue_copy_buffer_async(
    const Buffer& src, Buffer& dst, std::size_t src_offset,
    std::size_t dst_offset, std::size_t bytes,
    std::vector<AsyncEventPtr> wait_list) {
  check_range(src, src_offset, bytes);
  check_range(dst, dst_offset, bytes);
  if (bytes == 0) {
    return submit_async(
        CommandType::CopyBuffer,
        [] { return Event{CommandType::CopyBuffer, 0.0, {}}; },
        std::move(wait_list));
  }
  const auto* s = static_cast<const std::byte*>(src.device_ptr()) + src_offset;
  auto* d = static_cast<std::byte*>(dst.device_ptr()) + dst_offset;
  core::check(s + bytes <= d || d + bytes <= s, core::Status::InvalidValue,
              "copy regions overlap");
  return submit_async(
      CommandType::CopyBuffer,
      [s, d, bytes] {
        MCL_TRACE_SCOPE("cq.copy", "bytes", bytes);
        note_transfer(bytes);
        Event ev{CommandType::CopyBuffer, 0.0, {}};
        const core::TimePoint t0 = core::now();
        std::memcpy(d, s, bytes);
        ev.seconds = core::elapsed_s(t0, core::now());
        return ev;
      },
      std::move(wait_list));
}

AsyncEventPtr CommandQueue::enqueue_fill_buffer_async(
    Buffer& buffer, const void* pattern, std::size_t pattern_bytes,
    std::size_t offset, std::size_t bytes,
    std::vector<AsyncEventPtr> wait_list) {
  core::check(pattern != nullptr && pattern_bytes > 0,
              core::Status::InvalidValue, "null/empty fill pattern");
  core::check(bytes % pattern_bytes == 0, core::Status::InvalidValue,
              "fill size must be a multiple of the pattern size");
  core::check(offset % pattern_bytes == 0, core::Status::InvalidValue,
              "fill offset must be a multiple of the pattern size");
  check_range(buffer, offset, bytes);
  if (bytes == 0) {
    return submit_async(
        CommandType::FillBuffer,
        [] { return Event{CommandType::FillBuffer, 0.0, {}}; },
        std::move(wait_list));
  }
  auto* d = static_cast<std::byte*>(buffer.device_ptr()) + offset;
  std::vector<std::byte> pattern_copy(
      static_cast<const std::byte*>(pattern),
      static_cast<const std::byte*>(pattern) + pattern_bytes);
  return submit_async(
      CommandType::FillBuffer,
      [d, bytes, pattern_copy = std::move(pattern_copy)] {
        MCL_TRACE_SCOPE("cq.fill", "bytes", bytes);
        note_transfer(bytes);
        Event ev{CommandType::FillBuffer, 0.0, {}};
        const core::TimePoint t0 = core::now();
        for (std::size_t i = 0; i < bytes; i += pattern_copy.size()) {
          std::memcpy(d + i, pattern_copy.data(), pattern_copy.size());
        }
        ev.seconds = core::elapsed_s(t0, core::now());
        return ev;
      },
      std::move(wait_list));
}

AsyncEventPtr CommandQueue::enqueue_marker_async(
    std::vector<AsyncEventPtr> wait_list) {
  const bool gather = wait_list.empty();
  return submit_async(
      CommandType::Marker, [] { return Event{CommandType::Marker, 0.0, {}}; },
      std::move(wait_list), gather, /*install_barrier=*/false);
}

AsyncEventPtr CommandQueue::enqueue_barrier_async(
    std::vector<AsyncEventPtr> wait_list) {
  const bool gather = wait_list.empty();
  return submit_async(
      CommandType::Barrier, [] { return Event{CommandType::Barrier, 0.0, {}}; },
      std::move(wait_list), gather, /*install_barrier=*/true);
}

}  // namespace mcl::ocl
