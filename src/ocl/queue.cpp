#include "ocl/queue.hpp"

#include <cstring>

namespace mcl::ocl {

void CommandQueue::check_range(const Buffer& buffer, std::size_t offset,
                               std::size_t bytes) const {
  core::check(bytes > 0 && offset + bytes <= buffer.size(),
              core::Status::InvalidValue,
              "transfer range exceeds buffer size");
}

Event CommandQueue::enqueue_write_buffer(Buffer& buffer, std::size_t offset,
                                         std::size_t bytes, const void* src) {
  check_range(buffer, offset, bytes);
  core::check(src != nullptr, core::Status::InvalidValue, "null source");
  Event ev{CommandType::WriteBuffer, 0.0, {}};
  const core::TimePoint t0 = core::now();
  std::memcpy(static_cast<std::byte*>(buffer.device_ptr()) + offset, src, bytes);
  ev.seconds = core::elapsed_s(t0, core::now()) +
               device_->copy_overhead_seconds(bytes);
  return ev;
}

Event CommandQueue::enqueue_read_buffer(const Buffer& buffer, std::size_t offset,
                                        std::size_t bytes, void* dst) {
  check_range(buffer, offset, bytes);
  core::check(dst != nullptr, core::Status::InvalidValue, "null destination");
  Event ev{CommandType::ReadBuffer, 0.0, {}};
  const core::TimePoint t0 = core::now();
  std::memcpy(dst, static_cast<const std::byte*>(buffer.device_ptr()) + offset,
              bytes);
  ev.seconds = core::elapsed_s(t0, core::now()) +
               device_->copy_overhead_seconds(bytes);
  return ev;
}

Event CommandQueue::enqueue_copy_buffer(const Buffer& src, Buffer& dst,
                                        std::size_t src_offset,
                                        std::size_t dst_offset,
                                        std::size_t bytes) {
  check_range(src, src_offset, bytes);
  check_range(dst, dst_offset, bytes);
  const auto* s = static_cast<const std::byte*>(src.device_ptr()) + src_offset;
  auto* d = static_cast<std::byte*>(dst.device_ptr()) + dst_offset;
  core::check(s + bytes <= d || d + bytes <= s, core::Status::InvalidValue,
              "copy regions overlap");
  Event ev{CommandType::CopyBuffer, 0.0, {}};
  const core::TimePoint t0 = core::now();
  std::memcpy(d, s, bytes);
  ev.seconds = core::elapsed_s(t0, core::now());
  return ev;
}

Event CommandQueue::enqueue_fill_buffer(Buffer& buffer, const void* pattern,
                                        std::size_t pattern_bytes,
                                        std::size_t offset, std::size_t bytes) {
  check_range(buffer, offset, bytes);
  core::check(pattern != nullptr && pattern_bytes > 0,
              core::Status::InvalidValue, "null/empty fill pattern");
  core::check(bytes % pattern_bytes == 0, core::Status::InvalidValue,
              "fill size must be a multiple of the pattern size");
  Event ev{CommandType::FillBuffer, 0.0, {}};
  const core::TimePoint t0 = core::now();
  auto* d = static_cast<std::byte*>(buffer.device_ptr()) + offset;
  for (std::size_t i = 0; i < bytes; i += pattern_bytes) {
    std::memcpy(d + i, pattern, pattern_bytes);
  }
  ev.seconds = core::elapsed_s(t0, core::now());
  return ev;
}

namespace {

struct ResolvedRect {
  std::size_t row_pitch, slice_pitch;
};

ResolvedRect resolve(const BufferRect& r) {
  const std::size_t row = r.row_pitch != 0 ? r.row_pitch : r.region[0];
  const std::size_t slice =
      r.slice_pitch != 0 ? r.slice_pitch : row * r.region[1];
  core::check(row >= r.region[0] && slice >= row * r.region[1],
              core::Status::InvalidValue, "rect pitches smaller than region");
  return {row, slice};
}

/// Byte offset of (row y, slice z) start within a rect's memory.
std::size_t rect_offset(const BufferRect& r, const ResolvedRect& rr,
                        std::size_t y, std::size_t z) {
  return r.origin[0] + (r.origin[1] + y) * rr.row_pitch +
         (r.origin[2] + z) * rr.slice_pitch;
}

std::size_t rect_end(const BufferRect& r, const ResolvedRect& rr) {
  return rect_offset(r, rr, r.region[1] - 1, r.region[2] - 1) + r.region[0];
}

void copy_rect(const BufferRect& dst_r, std::byte* dst,
               const BufferRect& src_r, const std::byte* src) {
  core::check(dst_r.region[0] == src_r.region[0] &&
                  dst_r.region[1] == src_r.region[1] &&
                  dst_r.region[2] == src_r.region[2],
              core::Status::InvalidValue, "rect regions differ");
  const ResolvedRect rd = resolve(dst_r);
  const ResolvedRect rs = resolve(src_r);
  for (std::size_t z = 0; z < dst_r.region[2]; ++z) {
    for (std::size_t y = 0; y < dst_r.region[1]; ++y) {
      std::memcpy(dst + rect_offset(dst_r, rd, y, z),
                  src + rect_offset(src_r, rs, y, z), dst_r.region[0]);
    }
  }
}

}  // namespace

Event CommandQueue::enqueue_write_buffer_rect(Buffer& buffer,
                                              const BufferRect& buffer_rect,
                                              const BufferRect& host_rect,
                                              const void* src) {
  core::check(src != nullptr, core::Status::InvalidValue, "null source");
  core::check(rect_end(buffer_rect, resolve(buffer_rect)) <= buffer.size(),
              core::Status::InvalidValue, "rect exceeds buffer size");
  Event ev{CommandType::WriteBufferRect, 0.0, {}};
  const core::TimePoint t0 = core::now();
  copy_rect(buffer_rect, static_cast<std::byte*>(buffer.device_ptr()),
            host_rect, static_cast<const std::byte*>(src));
  ev.seconds = core::elapsed_s(t0, core::now());
  return ev;
}

Event CommandQueue::enqueue_read_buffer_rect(const Buffer& buffer,
                                             const BufferRect& buffer_rect,
                                             const BufferRect& host_rect,
                                             void* dst) {
  core::check(dst != nullptr, core::Status::InvalidValue, "null destination");
  core::check(rect_end(buffer_rect, resolve(buffer_rect)) <= buffer.size(),
              core::Status::InvalidValue, "rect exceeds buffer size");
  Event ev{CommandType::ReadBufferRect, 0.0, {}};
  const core::TimePoint t0 = core::now();
  copy_rect(host_rect, static_cast<std::byte*>(dst), buffer_rect,
            static_cast<const std::byte*>(buffer.device_ptr()));
  ev.seconds = core::elapsed_s(t0, core::now());
  return ev;
}

void* CommandQueue::enqueue_map_buffer(Buffer& buffer, MapFlags flags,
                                       std::size_t offset, std::size_t bytes,
                                       Event* event) {
  (void)flags;  // recorded semantics only; all mappings are coherent here
  check_range(buffer, offset, bytes);
  const core::TimePoint t0 = core::now();
  void* ptr = static_cast<std::byte*>(buffer.device_ptr()) + offset;
  buffer.note_mapped();
  if (event != nullptr) {
    *event = Event{CommandType::MapBuffer,
                   core::elapsed_s(t0, core::now()) +
                       device_->map_overhead_seconds(buffer, bytes),
                   {}};
  }
  return ptr;
}

Event CommandQueue::enqueue_unmap(Buffer& buffer, void* mapped_ptr) {
  const auto* base = static_cast<const std::byte*>(buffer.device_ptr());
  const auto* p = static_cast<const std::byte*>(mapped_ptr);
  core::check(p >= base && p < base + buffer.size(), core::Status::MapFailure,
              "unmap pointer does not belong to this buffer");
  core::check(buffer.note_unmapped(), core::Status::MapFailure,
              "buffer is not mapped");
  return Event{CommandType::UnmapBuffer, 0.0, {}};
}

Event CommandQueue::enqueue_ndrange(const Kernel& kernel, const NDRange& global,
                                    const NDRange& local,
                                    const NDRange& offset) {
  Event ev{CommandType::NDRangeKernel, 0.0, {}};
  ev.launch =
      device_->launch(kernel.def(), kernel.args(), global, local, offset);
  ev.seconds = ev.launch.seconds;
  return ev;
}

Event CommandQueue::enqueue_ndrange_pinned(const Kernel& kernel,
                                           const NDRange& global,
                                           const NDRange& local,
                                           std::span<const int> group_to_cpu) {
  auto* cpu = dynamic_cast<CpuDevice*>(device_);
  core::check(cpu != nullptr, core::Status::InvalidOperation,
              "pinned launches are a CPU-device extension");
  Event ev{CommandType::NDRangeKernel, 0.0, {}};
  ev.launch =
      cpu->launch_pinned(kernel.def(), kernel.args(), global, local, group_to_cpu);
  ev.seconds = ev.launch.seconds;
  return ev;
}


// --- async machinery ------------------------------------------------------------

void AsyncEvent::wait() const {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [this] { return done_; });
  if (error_) std::rethrow_exception(error_);
}

bool AsyncEvent::complete() const {
  std::lock_guard lock(mutex_);
  return done_;
}

Event AsyncEvent::result() const {
  wait();
  std::lock_guard lock(mutex_);
  return event_;
}

void AsyncEvent::fulfill(Event event) noexcept {
  {
    std::lock_guard lock(mutex_);
    event_ = event;
    done_ = true;
  }
  cv_.notify_all();
}

void AsyncEvent::fail(std::exception_ptr error) noexcept {
  {
    std::lock_guard lock(mutex_);
    error_ = std::move(error);
    done_ = true;
  }
  cv_.notify_all();
}

CommandQueue::~CommandQueue() {
  if (dispatcher_.joinable()) {
    {
      std::lock_guard lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    dispatcher_.join();
  }
}

void CommandQueue::dispatcher_loop() {
  for (;;) {
    std::pair<std::function<Event()>, AsyncEventPtr> item;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !pending_.empty(); });
      if (pending_.empty()) {
        if (stop_) return;
        continue;
      }
      item = std::move(pending_.front());
      pending_.pop_front();
    }
    try {
      item.second->fulfill(item.first());
    } catch (...) {
      item.second->fail(std::current_exception());
    }
    cv_.notify_all();  // wake finish() waiters
  }
}

AsyncEventPtr CommandQueue::submit_async(std::function<Event()> command,
                                         std::vector<AsyncEventPtr> wait_list) {
  auto event = std::make_shared<AsyncEvent>();
  // Cross-queue dependencies resolve before the command runs; same-queue
  // ordering is inherent (single dispatcher, FIFO).
  auto gated = [command = std::move(command),
                waits = std::move(wait_list)]() -> Event {
    for (const AsyncEventPtr& w : waits) {
      if (w) w->wait();
    }
    return command();
  };
  {
    std::lock_guard lock(mutex_);
    if (!dispatcher_.joinable()) {
      dispatcher_ = std::thread([this] { dispatcher_loop(); });
    }
    pending_.emplace_back(std::move(gated), event);
  }
  cv_.notify_all();
  return event;
}

AsyncEventPtr CommandQueue::enqueue_ndrange_async(
    const Kernel& kernel, const NDRange& global, const NDRange& local,
    std::vector<AsyncEventPtr> wait_list) {
  // Snapshot the argument bindings so later set_arg calls on the caller's
  // Kernel cannot race the in-flight command.
  return submit_async(
      [this, def = &kernel.def(), args = kernel.args(), global, local] {
        Event ev{CommandType::NDRangeKernel, 0.0, {}};
        ev.launch = device_->launch(*def, args, global, local);
        ev.seconds = ev.launch.seconds;
        return ev;
      },
      std::move(wait_list));
}

AsyncEventPtr CommandQueue::enqueue_write_buffer_async(
    Buffer& buffer, std::size_t offset, std::size_t bytes, const void* src,
    std::vector<AsyncEventPtr> wait_list) {
  return submit_async(
      [this, &buffer, offset, bytes, src] {
        return enqueue_write_buffer(buffer, offset, bytes, src);
      },
      std::move(wait_list));
}

AsyncEventPtr CommandQueue::enqueue_read_buffer_async(
    const Buffer& buffer, std::size_t offset, std::size_t bytes, void* dst,
    std::vector<AsyncEventPtr> wait_list) {
  return submit_async(
      [this, &buffer, offset, bytes, dst] {
        return enqueue_read_buffer(buffer, offset, bytes, dst);
      },
      std::move(wait_list));
}

void CommandQueue::finish() {
  std::unique_lock lock(mutex_);
  if (!dispatcher_.joinable()) return;
  // The dispatcher holds no lock while executing, so "pending empty" can be
  // observed one command early; track in-flight via a drain marker instead:
  // enqueue a no-op and wait for it.
  auto marker = std::make_shared<AsyncEvent>();
  pending_.emplace_back([] { return Event{CommandType::Marker, 0.0, {}}; },
                        marker);
  lock.unlock();
  cv_.notify_all();
  marker->wait();
}

}  // namespace mcl::ocl
