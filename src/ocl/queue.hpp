// Context, command queue and events.
//
// The queue is in-order and executes commands synchronously (the paper's
// methodology uses blocking calls for every measurement, Sec. III-D);
// non-blocking flags are accepted for API compatibility and behave as
// blocking. Every command returns an Event carrying its profiled time,
// which is how the benches obtain kernel vs. transfer time (Eq. 1).
//
// Transfer semantics on a CPU device — the crux of Fig 7/8:
//  - enqueue_read/write_buffer physically copies between the caller's memory
//    and the buffer's storage (one memcpy), exactly what a CPU OpenCL
//    runtime does for the explicit-copy API;
//  - enqueue_map_buffer returns the canonical pointer: no copy, constant
//    cost ("only returning a pointer is needed" — Sec. III-D).
// On the simulated GPU device, events additionally carry modeled PCIe time.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/time.hpp"
#include "ocl/buffer.hpp"
#include "ocl/device.hpp"
#include "ocl/kernel.hpp"

namespace mcl::ocl {

enum class CommandType {
  NDRangeKernel,
  ReadBuffer,
  WriteBuffer,
  CopyBuffer,
  FillBuffer,
  ReadBufferRect,
  WriteBufferRect,
  MapBuffer,
  UnmapBuffer,
  Marker,
};

/// 3D region descriptor for the rect transfer APIs (all units bytes for
/// dim 0, rows/slices for dims 1/2 — as in clEnqueueReadBufferRect).
struct BufferRect {
  std::size_t origin[3] = {0, 0, 0};   ///< byte offset, row, slice
  std::size_t region[3] = {0, 1, 1};   ///< bytes per row, rows, slices
  std::size_t row_pitch = 0;           ///< 0 = region[0]
  std::size_t slice_pitch = 0;         ///< 0 = row_pitch * region[1]
};

/// Completed-command record (blocking commands return these directly; they
/// carry profiling data).
struct Event {
  CommandType type = CommandType::NDRangeKernel;
  core::Seconds seconds = 0.0;  ///< wall time + any modeled device overhead
  LaunchResult launch;          ///< valid for NDRangeKernel events
};

/// Waitable handle for non-blocking commands (clEvent analogue). Produced by
/// the *_async entry points; completion is signaled by the queue's
/// dispatcher thread. Copies share state (shared_ptr semantics via
/// AsyncEventPtr).
class AsyncEvent {
 public:
  /// Blocks until the command completed; rethrows any kernel/API error.
  void wait() const;

  [[nodiscard]] bool complete() const;

  /// wait() + the completed Event record.
  [[nodiscard]] Event result() const;

 private:
  friend class CommandQueue;
  void fulfill(Event event) noexcept;
  void fail(std::exception_ptr error) noexcept;

  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  bool done_ = false;
  Event event_;
  std::exception_ptr error_;
};

using AsyncEventPtr = std::shared_ptr<AsyncEvent>;

/// clContext analogue: a device binding plus buffer factory.
class Context {
 public:
  explicit Context(Device& device) : device_(&device) {}

  [[nodiscard]] Device& device() const noexcept { return *device_; }

  [[nodiscard]] Buffer create_buffer(MemFlags flags, std::size_t bytes,
                                     void* host_ptr = nullptr) const {
    return Buffer(flags, bytes, host_ptr);
  }

  [[nodiscard]] Kernel create_kernel(const Program& program,
                                     const std::string& name) const {
    return Kernel(program.lookup(name));
  }

 private:
  Device* device_;
};

class CommandQueue {
 public:
  explicit CommandQueue(Context& context)
      : context_(&context), device_(&context.device()) {}
  ~CommandQueue();

  CommandQueue(const CommandQueue&) = delete;
  CommandQueue& operator=(const CommandQueue&) = delete;

  [[nodiscard]] Device& device() const noexcept { return *device_; }

  /// clEnqueueWriteBuffer: host memory -> buffer.
  Event enqueue_write_buffer(Buffer& buffer, std::size_t offset,
                             std::size_t bytes, const void* src);

  /// clEnqueueReadBuffer: buffer -> host memory.
  Event enqueue_read_buffer(const Buffer& buffer, std::size_t offset,
                            std::size_t bytes, void* dst);

  /// clEnqueueCopyBuffer: device-side buffer-to-buffer copy. Overlapping
  /// src/dst regions (including via sub-buffers) are rejected.
  Event enqueue_copy_buffer(const Buffer& src, Buffer& dst,
                            std::size_t src_offset, std::size_t dst_offset,
                            std::size_t bytes);

  /// clEnqueueFillBuffer: tile `pattern` (pattern_bytes long) across
  /// [offset, offset+bytes). bytes must be a multiple of pattern_bytes.
  Event enqueue_fill_buffer(Buffer& buffer, const void* pattern,
                            std::size_t pattern_bytes, std::size_t offset,
                            std::size_t bytes);

  /// clEnqueueWriteBufferRect: strided 3D host -> buffer copy. `host_rect`
  /// addresses `src`; `buffer_rect` addresses the buffer. The region fields
  /// of both rects must match.
  Event enqueue_write_buffer_rect(Buffer& buffer, const BufferRect& buffer_rect,
                                  const BufferRect& host_rect, const void* src);

  /// clEnqueueReadBufferRect: strided 3D buffer -> host copy.
  Event enqueue_read_buffer_rect(const Buffer& buffer,
                                 const BufferRect& buffer_rect,
                                 const BufferRect& host_rect, void* dst);

  /// clEnqueueMarker: a timestamped no-op (the queue is synchronous, so the
  /// marker completes immediately).
  Event enqueue_marker() { return Event{CommandType::Marker, 0.0, {}}; }

  /// clEnqueueMapBuffer: returns a host pointer into the buffer. The event
  /// (optional) records the mapping cost.
  [[nodiscard]] void* enqueue_map_buffer(Buffer& buffer, MapFlags flags,
                                         std::size_t offset, std::size_t bytes,
                                         Event* event = nullptr);

  /// clEnqueueUnmapMemObject.
  Event enqueue_unmap(Buffer& buffer, void* mapped_ptr);

  /// clEnqueueNDRangeKernel. Pass a default-constructed NDRange as `local`
  /// for the NULL-local-size behavior; `offset` is the global_work_offset.
  Event enqueue_ndrange(const Kernel& kernel, const NDRange& global,
                        const NDRange& local = NDRange{},
                        const NDRange& offset = NDRange{});

  /// MiniCL affinity extension (CPU device only): workgroup g runs on
  /// logical CPU group_to_cpu[g].
  Event enqueue_ndrange_pinned(const Kernel& kernel, const NDRange& global,
                               const NDRange& local,
                               std::span<const int> group_to_cpu);

  // --- non-blocking commands (in-order, executed by a per-queue dispatcher
  // thread started on first use) ------------------------------------------

  /// Non-blocking clEnqueueNDRangeKernel. The kernel's argument bindings are
  /// snapshot at enqueue time; the buffers they reference must stay alive
  /// until the event completes. Commands of one queue execute in order;
  /// `wait_list` adds cross-queue dependencies.
  [[nodiscard]] AsyncEventPtr enqueue_ndrange_async(
      const Kernel& kernel, const NDRange& global,
      const NDRange& local = NDRange{},
      std::vector<AsyncEventPtr> wait_list = {});

  /// Non-blocking clEnqueueWriteBuffer (blocking_write = CL_FALSE). `src`
  /// must stay valid until the event completes.
  [[nodiscard]] AsyncEventPtr enqueue_write_buffer_async(
      Buffer& buffer, std::size_t offset, std::size_t bytes, const void* src,
      std::vector<AsyncEventPtr> wait_list = {});

  /// Non-blocking clEnqueueReadBuffer.
  [[nodiscard]] AsyncEventPtr enqueue_read_buffer_async(
      const Buffer& buffer, std::size_t offset, std::size_t bytes, void* dst,
      std::vector<AsyncEventPtr> wait_list = {});

  /// clFinish: drains every pending asynchronous command. (Blocking
  /// commands complete before returning, so only async work can be pending.)
  void finish();

 private:
  void check_range(const Buffer& buffer, std::size_t offset,
                   std::size_t bytes) const;
  AsyncEventPtr submit_async(std::function<Event()> command,
                             std::vector<AsyncEventPtr> wait_list);
  void dispatcher_loop();

  Context* context_;
  Device* device_;

  // Dispatcher state (lazy; untouched by purely blocking usage).
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::pair<std::function<Event()>, AsyncEventPtr>> pending_;
  std::thread dispatcher_;
  bool stop_ = false;
};

}  // namespace mcl::ocl
