// Context, command queue and events.
//
// Blocking commands execute synchronously (the paper's methodology uses
// blocking calls for every measurement, Sec. III-D) and return an Event
// carrying the profiled time, which is how the benches obtain kernel vs.
// transfer time (Eq. 1).
//
// Asynchronous commands form an event graph: each *_async call creates a
// node whose edges are its wait list plus, on in-order queues, an implicit
// edge to the previously enqueued command. Nodes whose dependencies have all
// resolved are submitted to a shared threading::ThreadPool, so independent
// commands of an OutOfOrder queue (and commands of different queues) execute
// concurrently — the pocl-style DAG scheduler, not a FIFO dispatcher. Every
// AsyncEvent tracks OpenCL event state (Queued -> Submitted -> Running ->
// Complete/Error) and the four clGetEventProfilingInfo timestamps.
//
// Transfer semantics on a CPU device — the crux of Fig 7/8:
//  - enqueue_read/write_buffer physically copies between the caller's memory
//    and the buffer's storage (one memcpy), exactly what a CPU OpenCL
//    runtime does for the explicit-copy API;
//  - enqueue_map_buffer returns the canonical pointer: no copy, constant
//    cost ("only returning a pointer is needed" — Sec. III-D).
// On the simulated GPU device, events additionally carry modeled PCIe time.
//
// Lifetime contract for asynchronous transfers: ranges are validated and the
// buffer's storage pointer is snapshot at enqueue time (so invalid calls fail
// fast, at the call site). The buffer's storage and the host pointer must
// both stay valid until the returned event completes; destroying either
// earlier is undefined (and is what the ASan tier exists to catch).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/error.hpp"
#include "core/time.hpp"
#include "ocl/buffer.hpp"
#include "ocl/device.hpp"
#include "ocl/kernel.hpp"

namespace mcl::threading {
class ThreadPool;
}  // namespace mcl::threading

namespace mcl::ocl {

enum class CommandType {
  NDRangeKernel,
  ReadBuffer,
  WriteBuffer,
  CopyBuffer,
  FillBuffer,
  ReadBufferRect,
  WriteBufferRect,
  MapBuffer,
  UnmapBuffer,
  Marker,
  Barrier,
  User,  ///< clCreateUserEvent analogue; completed by set_user_status()
};

/// OpenCL command execution status (CL_QUEUED/SUBMITTED/RUNNING/COMPLETE,
/// plus a distinct Error terminal state).
enum class CommandState {
  Queued,     ///< enqueued; waiting on dependencies
  Submitted,  ///< dependencies resolved; handed to the executor pool
  Running,    ///< executing on a pool worker
  Complete,   ///< finished successfully
  Error,      ///< finished with an error (own or propagated from a dependency)
};

/// clGetEventProfilingInfo analogue: steady-clock timestamps in nanoseconds.
/// Monotonic per command: queued <= submitted <= started <= ended.
struct ProfilingInfo {
  std::uint64_t queued_ns = 0;     ///< CL_PROFILING_COMMAND_QUEUED
  std::uint64_t submitted_ns = 0;  ///< CL_PROFILING_COMMAND_SUBMIT
  std::uint64_t started_ns = 0;    ///< CL_PROFILING_COMMAND_START
  std::uint64_t ended_ns = 0;      ///< CL_PROFILING_COMMAND_END
};

/// 3D region descriptor for the rect transfer APIs (all units bytes for
/// dim 0, rows/slices for dims 1/2 — as in clEnqueueReadBufferRect).
struct BufferRect {
  std::size_t origin[3] = {0, 0, 0};   ///< byte offset, row, slice
  std::size_t region[3] = {0, 1, 1};   ///< bytes per row, rows, slices
  std::size_t row_pitch = 0;           ///< 0 = region[0]
  std::size_t slice_pitch = 0;         ///< 0 = row_pitch * region[1]
};

/// Completed-command record (blocking commands return these directly; they
/// carry profiling data).
struct Event {
  CommandType type = CommandType::NDRangeKernel;
  core::Seconds seconds = 0.0;  ///< wall time + any modeled device overhead
  LaunchResult launch;          ///< valid for NDRangeKernel events
};

/// Waitable handle for non-blocking commands (clEvent analogue). Produced by
/// the *_async entry points; doubles as the node of the queue's event graph.
/// Copies share state (shared_ptr semantics via AsyncEventPtr).
class AsyncEvent;
class CommandQueue;
using AsyncEventPtr = std::shared_ptr<AsyncEvent>;

class AsyncEvent {
 public:
  /// Blocks until the command completed; rethrows any kernel/API error
  /// (including a propagated dependency failure).
  void wait() const;

  /// Timed wait() (the mclserve request-deadline path): returns false if the
  /// command has not reached a terminal state within `timeout` — the command
  /// keeps running; a timeout cancels nothing. On completion behaves exactly
  /// like wait(): returns true, rethrowing any error first.
  [[nodiscard]] bool wait_for(std::chrono::nanoseconds timeout) const;

  /// True once the command reached a terminal state (Complete or Error).
  [[nodiscard]] bool complete() const;

  /// Registers `fn` to run exactly once with the final Status. If the event
  /// is already terminal, fn runs inline in the calling thread; otherwise it
  /// runs on the completing thread, before the command retires from its
  /// queue — so follow-up work enqueued inside fn is always covered by that
  /// queue's finish() (the transitive-drain contract; see finish()).
  /// Must not race the owning queue's destruction (same lifetime rule as
  /// enqueueing).
  void on_complete(std::function<void(core::Status)> fn);

  /// clCreateUserEvent analogue: an event in the Queued state that no queue
  /// owns; it completes only when set_user_status() is called. Usable in any
  /// wait list — mclserve gates and cancels pending requests with these.
  [[nodiscard]] static AsyncEventPtr create_user();

  /// clSetUserEventStatus analogue. Completes a create_user() event exactly
  /// once: Success -> Complete; any other Status -> Error, which propagates
  /// to wait-list dependents the same way a failed command does. Throws
  /// InvalidOperation on non-user events or a second call.
  void set_user_status(core::Status status);

  /// wait() + the completed Event record.
  [[nodiscard]] Event result() const;

  /// Current execution status (Queued -> Submitted -> Running -> terminal).
  [[nodiscard]] CommandState state() const;

  /// Status::Success until the command (or a dependency) failed.
  [[nodiscard]] core::Status status() const;

  [[nodiscard]] CommandType type() const noexcept { return type_; }

  /// The four profiling timestamps. Only available once the command reached
  /// a terminal state; throws Status::InvalidOperation before that
  /// (CL_PROFILING_INFO_NOT_AVAILABLE analogue).
  [[nodiscard]] ProfilingInfo profiling_ns() const;

  /// The mclprof per-launch profile (IPC, cache-miss rate, GB/s) of an
  /// NDRangeKernel command. Same availability contract as profiling_ns():
  /// throws Status::InvalidOperation before the terminal state or for
  /// non-kernel commands. The profile has launches == 0 when no profiling
  /// session was active at launch time.
  [[nodiscard]] prof::KernelProfile kernel_profile() const;

  /// mclobs causal context id of this command (0 when observability was off
  /// at enqueue). Written once in submit_async before the event is
  /// published; safe to read without the event lock.
  [[nodiscard]] std::uint64_t context() const noexcept { return ctx_; }

 private:
  friend class CommandQueue;

  [[nodiscard]] bool finished_locked() const noexcept {
    return state_ == CommandState::Complete || state_ == CommandState::Error;
  }
  /// Registers fn to run (with this event's final status) on completion;
  /// returns false — caller must resolve immediately — when already done.
  bool add_continuation(std::function<void(core::Status)> fn);

  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  CommandType type_ = CommandType::Marker;
  bool user_ = false;  ///< created by create_user(); completes via set_user_status
  /// Owning queue (null for user events). Written once at creation, before
  /// the event is published; used only by on_complete() for callback
  /// accounting while the event is live (the queue outlives live events).
  CommandQueue* queue_ = nullptr;
  CommandState state_ = CommandState::Queued;
  Event event_;
  std::exception_ptr error_;
  core::Status status_ = core::Status::Success;
  ProfilingInfo prof_;
  std::uint64_t ctx_ = 0;  ///< mclobs context; written pre-publication
  // Event-graph node state (owned by the queue machinery).
  std::function<Event()> work_;
  std::size_t blocking_deps_ = 0;
  core::Status dep_failure_ = core::Status::Success;
  std::vector<std::function<void(core::Status)>> continuations_;
};

/// clContext analogue: a device-set binding plus buffer factory. One context
/// may hold several devices (the CPU device, its sub-devices, the simulated
/// GPU); queues bind to one device of the set each, so a single context can
/// drive the same kernel on every device (clCreateContext with multiple
/// cl_device_ids).
class Context {
 public:
  explicit Context(Device& device) : devices_{&device} {}
  explicit Context(std::vector<Device*> devices) : devices_(std::move(devices)) {
    core::check(!devices_.empty(), core::Status::InvalidValue,
                "Context requires at least one device");
    for (Device* d : devices_) {
      core::check(d != nullptr, core::Status::InvalidValue,
                  "Context device list contains a null device");
    }
  }

  /// The context's first device (the default queues bind to when no device
  /// is named; single-device contexts behave exactly as before).
  [[nodiscard]] Device& device() const noexcept { return *devices_.front(); }

  [[nodiscard]] const std::vector<Device*>& devices() const noexcept {
    return devices_;
  }
  [[nodiscard]] bool has_device(const Device& device) const noexcept {
    for (const Device* d : devices_) {
      if (d == &device) return true;
    }
    return false;
  }

  [[nodiscard]] Buffer create_buffer(MemFlags flags, std::size_t bytes,
                                     void* host_ptr = nullptr) const {
    return Buffer(flags, bytes, host_ptr);
  }

  [[nodiscard]] Kernel create_kernel(const Program& program,
                                     const std::string& name) const {
    return Kernel(program.lookup(name));
  }

 private:
  std::vector<Device*> devices_;
};

class CommandQueue {
 public:
  explicit CommandQueue(Context& context,
                        QueueProperties properties = QueueProperties::Default)
      : context_(&context),
        device_(&context.device()),
        properties_(properties) {}

  /// clCreateCommandQueue with an explicit device: `device` must be one of
  /// the context's devices (throws DeviceNotFound — CL_INVALID_DEVICE —
  /// otherwise). Queues on different devices of one context execute
  /// concurrently; queues on sibling CPU sub-devices use disjoint worker
  /// spans of the shared pool.
  CommandQueue(Context& context, Device& device,
               QueueProperties properties = QueueProperties::Default)
      : context_(&context), device_(&device), properties_(properties) {
    core::check(context.has_device(device), core::Status::DeviceNotFound,
                "CommandQueue device is not part of the context");
  }
  ~CommandQueue();

  CommandQueue(const CommandQueue&) = delete;
  CommandQueue& operator=(const CommandQueue&) = delete;

  [[nodiscard]] Device& device() const noexcept { return *device_; }
  [[nodiscard]] QueueProperties properties() const noexcept {
    return properties_;
  }
  [[nodiscard]] bool out_of_order() const noexcept {
    return has_flag(properties_, QueueProperties::OutOfOrder);
  }

  /// clEnqueueWriteBuffer: host memory -> buffer. bytes == 0 is a no-op.
  Event enqueue_write_buffer(Buffer& buffer, std::size_t offset,
                             std::size_t bytes, const void* src);

  /// clEnqueueReadBuffer: buffer -> host memory. bytes == 0 is a no-op.
  Event enqueue_read_buffer(const Buffer& buffer, std::size_t offset,
                            std::size_t bytes, void* dst);

  /// clEnqueueCopyBuffer: device-side buffer-to-buffer copy. Overlapping
  /// src/dst regions (including via sub-buffers) are rejected.
  Event enqueue_copy_buffer(const Buffer& src, Buffer& dst,
                            std::size_t src_offset, std::size_t dst_offset,
                            std::size_t bytes);

  /// clEnqueueFillBuffer: tile `pattern` (pattern_bytes long) across
  /// [offset, offset+bytes). bytes and offset must both be multiples of
  /// pattern_bytes (OpenCL 1.2 §5.2.2).
  Event enqueue_fill_buffer(Buffer& buffer, const void* pattern,
                            std::size_t pattern_bytes, std::size_t offset,
                            std::size_t bytes);

  /// clEnqueueWriteBufferRect: strided 3D host -> buffer copy. `host_rect`
  /// addresses `src`; `buffer_rect` addresses the buffer. The region fields
  /// of both rects must match.
  Event enqueue_write_buffer_rect(Buffer& buffer, const BufferRect& buffer_rect,
                                  const BufferRect& host_rect, const void* src);

  /// clEnqueueReadBufferRect: strided 3D buffer -> host copy.
  Event enqueue_read_buffer_rect(const Buffer& buffer,
                                 const BufferRect& buffer_rect,
                                 const BufferRect& host_rect, void* dst);

  /// clEnqueueMarker: a timestamped no-op (blocking commands are synchronous,
  /// so the marker completes immediately).
  Event enqueue_marker() { return Event{CommandType::Marker, 0.0, {}}; }

  /// clEnqueueMapBuffer: returns a host pointer into the buffer. The event
  /// (optional) records the mapping cost.
  [[nodiscard]] void* enqueue_map_buffer(Buffer& buffer, MapFlags flags,
                                         std::size_t offset, std::size_t bytes,
                                         Event* event = nullptr);

  /// clEnqueueUnmapMemObject.
  Event enqueue_unmap(Buffer& buffer, void* mapped_ptr);

  /// clEnqueueNDRangeKernel. Pass a default-constructed NDRange as `local`
  /// for the NULL-local-size behavior; `offset` is the global_work_offset.
  Event enqueue_ndrange(const Kernel& kernel, const NDRange& global,
                        const NDRange& local = NDRange{},
                        const NDRange& offset = NDRange{});

  /// MiniCL affinity extension (CPU device only): workgroup g runs on
  /// logical CPU group_to_cpu[g].
  Event enqueue_ndrange_pinned(const Kernel& kernel, const NDRange& global,
                               const NDRange& local,
                               std::span<const int> group_to_cpu);

  // --- non-blocking commands (event-graph executor over the shared thread
  // pool; see the header comment for ordering and lifetime rules) -----------

  /// Non-blocking clEnqueueNDRangeKernel. The kernel's argument bindings are
  /// snapshot at enqueue time; the buffers they reference must stay alive
  /// until the event completes. `wait_list` adds explicit dependencies (on
  /// events of this or any other queue); a failed wait-list event propagates
  /// its Status to this command instead of running it. `offset` is the
  /// global_work_offset (mclcheck's split-NDRange transform slices one
  /// launch into offset sub-launches chained by wait-list edges).
  [[nodiscard]] AsyncEventPtr enqueue_ndrange_async(
      const Kernel& kernel, const NDRange& global,
      const NDRange& local = NDRange{},
      std::vector<AsyncEventPtr> wait_list = {},
      const NDRange& offset = NDRange{});

  /// Non-blocking clEnqueueWriteBuffer (blocking_write = CL_FALSE). The
  /// range is validated and the destination snapshot at enqueue time; `src`
  /// and the buffer's storage must stay valid until the event completes.
  [[nodiscard]] AsyncEventPtr enqueue_write_buffer_async(
      Buffer& buffer, std::size_t offset, std::size_t bytes, const void* src,
      std::vector<AsyncEventPtr> wait_list = {});

  /// Non-blocking clEnqueueReadBuffer. Same lifetime contract as the write.
  [[nodiscard]] AsyncEventPtr enqueue_read_buffer_async(
      const Buffer& buffer, std::size_t offset, std::size_t bytes, void* dst,
      std::vector<AsyncEventPtr> wait_list = {});

  /// Non-blocking clEnqueueCopyBuffer.
  [[nodiscard]] AsyncEventPtr enqueue_copy_buffer_async(
      const Buffer& src, Buffer& dst, std::size_t src_offset,
      std::size_t dst_offset, std::size_t bytes,
      std::vector<AsyncEventPtr> wait_list = {});

  /// Non-blocking clEnqueueFillBuffer (the pattern is copied at enqueue).
  [[nodiscard]] AsyncEventPtr enqueue_fill_buffer_async(
      Buffer& buffer, const void* pattern, std::size_t pattern_bytes,
      std::size_t offset, std::size_t bytes,
      std::vector<AsyncEventPtr> wait_list = {});

  /// clEnqueueMarkerWithWaitList: completes when the wait list completes —
  /// or, with an empty wait list, when every command enqueued so far has
  /// (on an in-order queue that is simply the previous command).
  [[nodiscard]] AsyncEventPtr enqueue_marker_async(
      std::vector<AsyncEventPtr> wait_list = {});

  /// clEnqueueBarrierWithWaitList: like the marker, but on an OutOfOrder
  /// queue every subsequently enqueued command also waits for it — the
  /// fence that restores ordering between independent command groups.
  [[nodiscard]] AsyncEventPtr enqueue_barrier_async(
      std::vector<AsyncEventPtr> wait_list = {});

  /// clFinish: blocks until every asynchronous command enqueued on this
  /// queue has reached a terminal state. (Blocking commands complete before
  /// returning, so only async work can be pending.) The drain is transitive
  /// through on_complete() callbacks: a callback that enqueues follow-up
  /// work on this queue cannot slip past a concurrent finish() — callback
  /// execution is counted alongside outstanding commands, so finish()
  /// returns only once no registered callback can still enqueue.
  void finish();

 private:
  friend class AsyncEvent;  // on_complete callback accounting

  void note_callback_registered();
  void note_callback_done();
  void check_range(const Buffer& buffer, std::size_t offset,
                   std::size_t bytes) const;

  /// The process-wide executor all queues submit ready commands to.
  static threading::ThreadPool& executor_pool();

  AsyncEventPtr submit_async(CommandType type, std::function<Event()> command,
                             std::vector<AsyncEventPtr> wait_list,
                             bool gather_outstanding = false,
                             bool install_barrier = false);
  void resolve_dep(const AsyncEventPtr& ev, core::Status dep_status);
  void launch_ready(const AsyncEventPtr& ev);
  void run_command(const AsyncEventPtr& ev);
  void finalize(const AsyncEventPtr& ev, Event result,
                std::exception_ptr error, core::Status status);
  void command_retired();

  Context* context_;
  Device* device_;
  QueueProperties properties_;

  // Event-graph bookkeeping. outstanding_ counts enqueued-but-unfinished
  // commands; finish() waits for it to reach zero.
  std::mutex mutex_;
  std::condition_variable drained_cv_;
  std::size_t outstanding_ = 0;
  std::size_t callbacks_in_flight_ = 0;  ///< on_complete callbacks not yet run
  AsyncEventPtr last_;     ///< in-order implicit dependency chain tail
  AsyncEventPtr barrier_;  ///< latest out-of-order barrier, if any
  std::vector<std::weak_ptr<AsyncEvent>> live_;  ///< for marker/barrier edges
};

}  // namespace mcl::ocl
