#include "ocl/detail/group_runner.hpp"
#include "ocl/device.hpp"

namespace mcl::ocl {

SimGpuDevice::SimGpuDevice(gpusim::GpuSpec spec) : spec_(spec) {}

std::string SimGpuDevice::name() const {
  return "Simulated GeForce GTX 580 (Hong-Kim analytical model)";
}

LaunchResult SimGpuDevice::launch(const KernelDef& def, const KernelArgs& args,
                                  const NDRange& global, const NDRange& local,
                                  const NDRange& offset) {
  // Functional execution on the host (single-threaded, barrier-capable so
  // local-memory kernels stay correct). Forcing Fiber for barrier kernels and
  // the workgroup/loop path otherwise mirrors GroupRunner's Auto minus SIMD
  // (lane coalescing is a CPU-compiler concern).
  const ExecutorKind kind =
      def.needs_barrier ? ExecutorKind::Fiber : ExecutorKind::Loop;
  detail::GroupRunner runner(def, args, global, local, kind, 64 * 1024, offset);

  LaunchResult result;
  result.local_used = runner.local();
  result.executor_used = runner.executor();

  const core::TimePoint t0 = core::now();
  for (std::size_t g = 0; g < runner.total_groups(); ++g) runner.run_group(g);
  const core::Seconds measured = core::elapsed_s(t0, core::now());

  if (def.gpu_cost != nullptr) {
    const gpusim::KernelCost cost = def.gpu_cost(args, global, runner.local());
    gpusim::LaunchGeometry geom;
    geom.global_items = global.total();
    geom.local_items = runner.local().total();
    result.sim = gpusim::simulate(spec_, cost, geom);
    result.seconds = result.sim.seconds;
    result.simulated = true;
  } else {
    // No cost model: fall back to (meaningless for comparisons) wall time so
    // correctness tests can still run any kernel on this device.
    result.seconds = measured;
    result.simulated = false;
  }
  return result;
}

}  // namespace mcl::ocl
