#include "ocl/types.hpp"

namespace mcl::ocl {

namespace {

/// Largest divisor of n that is <= target (target >= 1, n >= 1).
std::size_t largest_divisor_below(std::size_t n, std::size_t target) noexcept {
  if (target >= n) return n;
  for (std::size_t d = target; d >= 1; --d) {
    if (n % d == 0) return d;
  }
  return 1;
}

}  // namespace

NDRange pick_default_local(const NDRange& global) noexcept {
  constexpr std::size_t kTarget1D[3] = {64, 1, 1};
  constexpr std::size_t kTarget2D[3] = {8, 8, 1};
  constexpr std::size_t kTarget3D[3] = {4, 4, 4};
  const std::size_t* target = global.dims == 1   ? kTarget1D
                              : global.dims == 2 ? kTarget2D
                                                 : kTarget3D;
  NDRange local;
  local.dims = global.dims;
  for (std::size_t d = 0; d < 3; ++d) {
    local.size[d] = d < global.dims
                        ? largest_divisor_below(global.size[d], target[d])
                        : 1;
  }
  return local;
}

}  // namespace mcl::ocl
