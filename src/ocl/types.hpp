// Shared value types of the MiniCL runtime: memory/map flags, NDRange,
// executor selection.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/error.hpp"

namespace mcl::ocl {

/// clCreateBuffer flags (subset the paper exercises).
enum class MemFlags : std::uint32_t {
  ReadWrite = 1u << 0,      ///< CL_MEM_READ_WRITE (default)
  ReadOnly = 1u << 1,       ///< CL_MEM_READ_ONLY
  WriteOnly = 1u << 2,      ///< CL_MEM_WRITE_ONLY
  AllocHostPtr = 1u << 3,   ///< CL_MEM_ALLOC_HOST_PTR (pinned/host-side)
  UseHostPtr = 1u << 4,     ///< CL_MEM_USE_HOST_PTR
  CopyHostPtr = 1u << 5,    ///< CL_MEM_COPY_HOST_PTR
};

[[nodiscard]] constexpr MemFlags operator|(MemFlags a, MemFlags b) noexcept {
  return static_cast<MemFlags>(static_cast<std::uint32_t>(a) |
                               static_cast<std::uint32_t>(b));
}
[[nodiscard]] constexpr MemFlags operator&(MemFlags a, MemFlags b) noexcept {
  return static_cast<MemFlags>(static_cast<std::uint32_t>(a) &
                               static_cast<std::uint32_t>(b));
}
[[nodiscard]] constexpr MemFlags operator~(MemFlags a) noexcept {
  return static_cast<MemFlags>(~static_cast<std::uint32_t>(a));
}
[[nodiscard]] constexpr bool has_flag(MemFlags flags, MemFlags bit) noexcept {
  return (static_cast<std::uint32_t>(flags) & static_cast<std::uint32_t>(bit)) != 0;
}

/// clEnqueueMapBuffer flags.
enum class MapFlags : std::uint32_t {
  Read = 1u << 0,
  Write = 1u << 1,
  ReadWrite = (1u << 0) | (1u << 1),
};

/// clCreateCommandQueue properties (subset). Default queues are in-order:
/// every asynchronous command implicitly depends on the previously enqueued
/// one. OutOfOrder queues only honor explicit wait lists, markers and
/// barriers (CL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE semantics).
enum class QueueProperties : std::uint32_t {
  Default = 0,
  OutOfOrder = 1u << 0,
};

[[nodiscard]] constexpr QueueProperties operator|(QueueProperties a,
                                                  QueueProperties b) noexcept {
  return static_cast<QueueProperties>(static_cast<std::uint32_t>(a) |
                                      static_cast<std::uint32_t>(b));
}
[[nodiscard]] constexpr bool has_flag(QueueProperties props,
                                      QueueProperties bit) noexcept {
  return (static_cast<std::uint32_t>(props) &
          static_cast<std::uint32_t>(bit)) != 0;
}

enum class DeviceType { Cpu, SimulatedGpu };

/// How the CPU device runs the workitems of one workgroup.
enum class ExecutorKind {
  Auto,     ///< simd when available, fiber when barriers are needed, else loop
  Loop,     ///< plain per-workitem loop; barrier() is an error
  Fiber,    ///< one fiber per workitem; full barrier() support
  Simd,     ///< coalesce kNativeFloatWidth workitems per lane group
  Checked,  ///< mclsan dynamic mode: serial shadow-access executor that
            ///< detects races, read-only-buffer writes, barrier divergence
            ///< and local-memory overflow (see docs/sanitizer.md)
};

/// 1-3 dimensional range (global size, local size, ids).
struct NDRange {
  std::size_t dims = 0;
  std::size_t size[3] = {0, 0, 0};

  constexpr NDRange() = default;  ///< "NullRange": local size left to runtime
  constexpr explicit NDRange(std::size_t x) : dims(1), size{x, 1, 1} {}
  constexpr NDRange(std::size_t x, std::size_t y) : dims(2), size{x, y, 1} {}
  constexpr NDRange(std::size_t x, std::size_t y, std::size_t z)
      : dims(3), size{x, y, z} {}

  [[nodiscard]] constexpr bool is_null() const noexcept { return dims == 0; }
  [[nodiscard]] constexpr std::size_t total() const noexcept {
    return is_null() ? 0 : size[0] * size[1] * size[2];
  }
  [[nodiscard]] constexpr std::size_t operator[](std::size_t d) const noexcept {
    return d < dims ? size[d] : 1;
  }
  /// Component access for offset-like ranges: unused dimensions are 0, not
  /// the implicit 1 that sizes use.
  [[nodiscard]] constexpr std::size_t offset_component(std::size_t d) const noexcept {
    return d < dims ? size[d] : 0;
  }
  [[nodiscard]] constexpr bool operator==(const NDRange& o) const noexcept {
    return dims == o.dims && size[0] == o.size[0] && size[1] == o.size[1] &&
           size[2] == o.size[2];
  }
};

/// The runtime's NULL-local-size policy, shared by device implementations
/// and inspectable by tests/benches: 64 items along x for 1D ranges, 8x8 for
/// 2D, 4x4x4 for 3D, clamped to divide the global size (falling back to the
/// largest divisor <= the target).
[[nodiscard]] NDRange pick_default_local(const NDRange& global) noexcept;

}  // namespace mcl::ocl
