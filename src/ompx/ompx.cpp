#include "ompx/ompx.hpp"

#include <algorithm>
#include <cstdlib>

#include "threading/affinity.hpp"
#include "trace/trace.hpp"

namespace mcl::ompx {

Team::Team(TeamOptions options) : options_(std::move(options)) {
  nthreads_ = options_.threads != 0
                  ? options_.threads
                  : static_cast<std::size_t>(threading::logical_cpu_count());
  if (nthreads_ == 0) nthreads_ = 1;

  if (options_.proc_bind) {
    const int cpu = options_.affinity_list.empty()
                        ? 0
                        : options_.affinity_list[0];
    threading::pin_current_thread(cpu);
  }
  workers_.reserve(nthreads_ - 1);
  for (std::size_t tid = 1; tid < nthreads_; ++tid) {
    workers_.emplace_back([this, tid] { worker_loop(tid); });
  }
}

Team::~Team() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void Team::worker_loop(std::size_t tid) {
  if (options_.proc_bind) {
    const auto& list = options_.affinity_list;
    const int cpu = list.empty()
                        ? static_cast<int>(tid) % threading::logical_cpu_count()
                        : list[tid % list.size()];
    threading::pin_current_thread(cpu);
  }
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(std::size_t)>* body = nullptr;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this, seen_epoch] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      body = body_;
    }
    (*body)(tid);
    join_count_.fetch_add(1, std::memory_order_acq_rel);
  }
}

void Team::run(const std::function<void(std::size_t)>& body) {
  if (!trace::enabled()) {
    run_impl(body);
    return;
  }
  // Traced fork-join: one region span on the forking thread plus a per-tid
  // work span, so ompx timelines line up against OpenCL launches (the
  // paper's Figs 10-11 comparison).
  MCL_TRACE_SCOPE("ompx.region", "threads", nthreads_);
  const std::function<void(std::size_t)> traced = [&body](std::size_t tid) {
    trace::ScopedSpan work("ompx.work", "tid", tid);
    body(tid);
  };
  run_impl(traced);
}

void Team::run_impl(const std::function<void(std::size_t)>& body) {
  if (nthreads_ == 1) {
    body(0);
    return;
  }
  {
    std::lock_guard lock(mutex_);
    body_ = &body;
    ++epoch_;
    join_count_.store(0, std::memory_order_relaxed);
  }
  cv_.notify_all();
  body(0);
  std::size_t spins = 0;
  while (join_count_.load(std::memory_order_acquire) < nthreads_ - 1) {
    if (++spins > 64) std::this_thread::yield();
  }
}

void Team::parallel_for_tid(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body, Schedule schedule,
    std::size_t chunk) {
  const std::size_t n = end > begin ? end - begin : 0;
  if (n == 0) return;

  switch (schedule) {
    case Schedule::Static: {
      // Contiguous blocks, like schedule(static) without a chunk size.
      run([&](std::size_t tid) {
        const std::size_t per = n / nthreads_;
        const std::size_t extra = n % nthreads_;
        const std::size_t my_begin =
            begin + tid * per + std::min<std::size_t>(tid, extra);
        const std::size_t my_len = per + (tid < extra ? 1 : 0);
        for (std::size_t i = my_begin; i < my_begin + my_len; ++i) body(i, tid);
      });
      break;
    }
    case Schedule::Dynamic: {
      const std::size_t c = chunk == 0 ? 1 : chunk;
      std::atomic<std::size_t> next{begin};
      run([&](std::size_t tid) {
        for (;;) {
          const std::size_t b = next.fetch_add(c, std::memory_order_relaxed);
          if (b >= end) return;
          const std::size_t e = std::min(b + c, end);
          for (std::size_t i = b; i < e; ++i) body(i, tid);
        }
      });
      break;
    }
    case Schedule::Guided: {
      const std::size_t min_chunk = chunk == 0 ? 1 : chunk;
      std::atomic<std::size_t> next{begin};
      run([&](std::size_t tid) {
        for (;;) {
          std::size_t b = next.load(std::memory_order_relaxed);
          std::size_t grab;
          do {
            if (b >= end) return;
            grab = std::max((end - b) / (2 * nthreads_), min_chunk);
          } while (!next.compare_exchange_weak(b, b + grab,
                                               std::memory_order_relaxed));
          const std::size_t e = std::min(b + grab, end);
          for (std::size_t i = b; i < e; ++i) body(i, tid);
        }
      });
      break;
    }
  }
}

void Team::parallel_for(std::size_t begin, std::size_t end,
                        const std::function<void(std::size_t)>& body,
                        Schedule schedule, std::size_t chunk) {
  parallel_for_tid(
      begin, end, [&body](std::size_t i, std::size_t) { body(i); }, schedule,
      chunk);
}

void Team::parallel_for_2d(
    std::size_t b0, std::size_t e0, std::size_t b1, std::size_t e1,
    const std::function<void(std::size_t, std::size_t)>& body,
    Schedule schedule, std::size_t chunk) {
  const std::size_t n0 = e0 > b0 ? e0 - b0 : 0;
  const std::size_t n1 = e1 > b1 ? e1 - b1 : 0;
  if (n0 == 0 || n1 == 0) return;
  parallel_for(
      0, n0 * n1,
      [&](std::size_t flat) {
        body(b0 + flat / n1, b1 + flat % n1);
      },
      schedule, chunk);
}

void Team::parallel_for_ranges(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body, Schedule schedule,
    std::size_t chunk) {
  const std::size_t n = end > begin ? end - begin : 0;
  if (n == 0) return;
  switch (schedule) {
    case Schedule::Static: {
      run([&](std::size_t tid) {
        const std::size_t per = n / nthreads_;
        const std::size_t extra = n % nthreads_;
        const std::size_t my_begin =
            begin + tid * per + std::min<std::size_t>(tid, extra);
        const std::size_t my_len = per + (tid < extra ? 1 : 0);
        if (my_len > 0) body(my_begin, my_begin + my_len);
      });
      break;
    }
    case Schedule::Dynamic:
    case Schedule::Guided: {
      const std::size_t c =
          chunk != 0 ? chunk : std::max<std::size_t>(n / (4 * nthreads_), 1);
      std::atomic<std::size_t> next{begin};
      run([&](std::size_t) {
        for (;;) {
          const std::size_t b = next.fetch_add(c, std::memory_order_relaxed);
          if (b >= end) return;
          body(b, std::min(b + c, end));
        }
      });
      break;
    }
  }
}

namespace {

bool env_truthy(const char* value) {
  const std::string v = value;
  return v == "1" || v == "true" || v == "TRUE" || v == "yes" || v == "YES";
}

}  // namespace

TeamOptions options_from_env() {
  TeamOptions opts;
  if (const char* n = std::getenv("OMPX_NUM_THREADS")) {
    const long threads = std::strtol(n, nullptr, 10);
    if (threads > 0) opts.threads = static_cast<std::size_t>(threads);
  }
  if (const char* b = std::getenv("OMPX_PROC_BIND")) {
    opts.proc_bind = env_truthy(b);
  }
  if (const char* a = std::getenv("OMPX_CPU_AFFINITY")) {
    if (auto list = threading::parse_affinity_list(a)) {
      opts.affinity_list = *list;
      opts.proc_bind = true;  // an explicit placement implies binding
    }
  }
  return opts;
}

std::optional<std::pair<Schedule, std::size_t>> parse_schedule(
    const std::string& spec) {
  std::string kind = spec;
  std::size_t chunk = 0;
  if (const auto comma = spec.find(','); comma != std::string::npos) {
    kind = spec.substr(0, comma);
    const std::string chunk_str = spec.substr(comma + 1);
    char* end = nullptr;
    const long v = std::strtol(chunk_str.c_str(), &end, 10);
    if (end == chunk_str.c_str() || *end != '\0' || v <= 0) return std::nullopt;
    chunk = static_cast<std::size_t>(v);
  }
  if (kind == "static") return std::make_pair(Schedule::Static, chunk);
  if (kind == "dynamic") return std::make_pair(Schedule::Dynamic, chunk);
  if (kind == "guided") return std::make_pair(Schedule::Guided, chunk);
  return std::nullopt;
}

Team& default_team() {
  static Team team(options_from_env());
  return team;
}

}  // namespace mcl::ompx
