// ompx — a miniature OpenMP-like fork-join runtime.
//
// This is the "conventional parallel programming model" baseline the paper
// compares OpenCL against. It provides the observable features the paper
// relies on:
//   - fork-join teams with static/dynamic/guided loop scheduling,
//   - thread affinity (OMP_PROC_BIND / GOMP_CPU_AFFINITY analogues),
//   - loop-granularity work distribution (so per-iteration independence is
//     the programmer's contract, unlike OpenCL's per-workitem SIMT model).
//
// A Team owns persistent worker threads; parallel regions are dispatched by
// epoch, so repeated parallel_for calls reuse the same OS threads exactly
// like a warmed-up OpenMP runtime.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace mcl::ompx {

enum class Schedule { Static, Dynamic, Guided };

struct TeamOptions {
  std::size_t threads = 0;       ///< 0 = hardware_concurrency
  bool proc_bind = false;        ///< OMP_PROC_BIND=true analogue
  std::vector<int> affinity_list;  ///< GOMP_CPU_AFFINITY analogue; thread i
                                   ///< pins to affinity_list[i % size]
};

class Team {
 public:
  explicit Team(TeamOptions options = {});
  ~Team();

  Team(const Team&) = delete;
  Team& operator=(const Team&) = delete;

  [[nodiscard]] std::size_t num_threads() const noexcept { return nthreads_; }

  /// The fork-join primitive: body(tid) runs once on each of num_threads()
  /// threads (the caller is tid 0). Everything else builds on this.
  void run(const std::function<void(std::size_t tid)>& body);

  /// `#pragma omp parallel for schedule(...)`: body(i) per iteration.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body,
                    Schedule schedule = Schedule::Static,
                    std::size_t chunk = 0);

  /// Range form: body(i_begin, i_end) per chunk — callers write the inner
  /// loop themselves, which is where the "compiled" (possibly vectorized)
  /// loop bodies plug in.
  void parallel_for_ranges(std::size_t begin, std::size_t end,
                           const std::function<void(std::size_t, std::size_t)>& body,
                           Schedule schedule = Schedule::Static,
                           std::size_t chunk = 0);

  /// `#pragma omp parallel for collapse(2)`: the iteration space
  /// [b0,e0) x [b1,e1) is flattened and scheduled as one loop, so uneven
  /// outer extents still balance.
  void parallel_for_2d(std::size_t b0, std::size_t e0, std::size_t b1,
                       std::size_t e1,
                       const std::function<void(std::size_t, std::size_t)>& body,
                       Schedule schedule = Schedule::Static,
                       std::size_t chunk = 0);

  /// `#pragma omp critical`: body runs under the team-wide mutex.
  template <typename Fn>
  void critical(Fn&& fn) {
    std::lock_guard lock(critical_mutex_);
    fn();
  }

  /// Reduction over [begin, end): per-thread partials combined at the join.
  template <typename T, typename MapFn, typename CombineFn>
  [[nodiscard]] T parallel_reduce(std::size_t begin, std::size_t end, T identity,
                                  MapFn&& map, CombineFn&& combine) {
    std::vector<T> partials(nthreads_, identity);
    parallel_for_tid(
        begin, end,
        [&](std::size_t i, std::size_t tid) {
          partials[tid] = combine(partials[tid], map(i));
        },
        Schedule::Static, 0);
    T acc = identity;
    for (const T& p : partials) acc = combine(acc, p);
    return acc;
  }

 private:
  void worker_loop(std::size_t tid);
  /// run() without the tracing wrapper — the actual epoch dispatch.
  void run_impl(const std::function<void(std::size_t tid)>& body);
  void parallel_for_tid(std::size_t begin, std::size_t end,
                        const std::function<void(std::size_t, std::size_t)>& body,
                        Schedule schedule, std::size_t chunk);

  std::size_t nthreads_;
  TeamOptions options_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::atomic<std::size_t> join_count_{0};
  std::mutex critical_mutex_;
};

/// Builds TeamOptions from the environment, mirroring the OpenMP variables
/// the paper used (Sec. III-E):
///   OMPX_NUM_THREADS   -> threads
///   OMPX_PROC_BIND     -> proc_bind ("true"/"1"/"yes")
///   OMPX_CPU_AFFINITY  -> affinity_list (GOMP_CPU_AFFINITY syntax,
///                         implies proc_bind)
/// Unset/malformed variables leave the corresponding defaults.
[[nodiscard]] TeamOptions options_from_env();

/// Parses an OMPX_SCHEDULE-style string: "static", "dynamic", "dynamic,16",
/// "guided,4". Returns nullopt on malformed input.
[[nodiscard]] std::optional<std::pair<Schedule, std::size_t>> parse_schedule(
    const std::string& spec);

/// Process-wide default team (lazily constructed from options_from_env()).
[[nodiscard]] Team& default_team();

}  // namespace mcl::ompx
