#include "prof/hw.hpp"

#include <mutex>

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define MCL_PROF_HAVE_PERF 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#else
#define MCL_PROF_HAVE_PERF 0
#endif

namespace mcl::prof {

#if MCL_PROF_HAVE_PERF

namespace {

// The six events every group tries to open, leader first. Order defines the
// slot layout of the PERF_FORMAT_GROUP read.
constexpr std::uint64_t kEventConfigs[kHwEventCount] = {
    PERF_COUNT_HW_CPU_CYCLES,      PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_CACHE_REFERENCES, PERF_COUNT_HW_CACHE_MISSES,
    PERF_COUNT_HW_BRANCH_INSTRUCTIONS, PERF_COUNT_HW_BRANCH_MISSES,
};

int open_event(std::uint64_t config, int group_fd) {
  perf_event_attr attr{};
  attr.size = sizeof(attr);
  attr.type = PERF_TYPE_HARDWARE;
  attr.config = config;
  attr.disabled = group_fd < 0 ? 1 : 0;  // leader starts disabled, then ioctl
  // exclude_kernel keeps the group admissible at perf_event_paranoid=2 (the
  // common default); kernel-side work is invisible, which is the right scope
  // for attributing user-space kernels anyway.
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  return static_cast<int>(syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                                  /*cpu=*/-1, group_fd, /*flags=*/0));
}

int read_paranoid() {
  std::FILE* f = std::fopen("/proc/sys/kernel/perf_event_paranoid", "r");
  if (f == nullptr) return -99;
  int level = -99;
  if (std::fscanf(f, "%d", &level) != 1) level = -99;
  std::fclose(f);
  return level;
}

}  // namespace

bool HwCounterGroup::open() {
  close();
  leader_fd_ = open_event(kEventConfigs[0], -1);
  if (leader_fd_ < 0) {
    leader_fd_ = -1;
    return false;
  }
  fds_[0] = leader_fd_;
  for (int i = 1; i < kHwEventCount; ++i) {
    // Siblings that fail to open (unsupported event on this PMU) are simply
    // absent; their slot stays -1 and reads as zero.
    fds_[i] = open_event(kEventConfigs[i], leader_fd_);
  }
  ioctl(leader_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(leader_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  return true;
}

void HwCounterGroup::close() {
  for (int i = kHwEventCount - 1; i >= 0; --i) {
    if (fds_[i] >= 0) ::close(fds_[i]);
    fds_[i] = -1;
  }
  leader_fd_ = -1;
}

HwSample HwCounterGroup::read() const {
  HwSample sample;
  if (leader_fd_ < 0) return sample;
  // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running, value[nr].
  std::uint64_t buf[3 + kHwEventCount] = {};
  const ssize_t n = ::read(leader_fd_, buf, sizeof(buf));
  if (n < static_cast<ssize_t>(3 * sizeof(std::uint64_t))) return sample;
  const std::uint64_t nr = buf[0];
  const std::uint64_t enabled = buf[1];
  const std::uint64_t running = buf[2];
  // Multiplex scaling: when the PMU time-shares this group with others,
  // running < enabled and raw counts must be scaled up to estimates.
  const double scale =
      (running > 0 && enabled > running)
          ? static_cast<double>(enabled) / static_cast<double>(running)
          : 1.0;
  std::uint64_t* const out[kHwEventCount] = {
      &sample.cycles,          &sample.instructions, &sample.cache_references,
      &sample.cache_misses,    &sample.branches,     &sample.branch_misses,
  };
  // Group values appear in sibling-attach order, skipping events that never
  // opened; walk our fd table in the same order to map slots back.
  std::uint64_t slot = 0;
  for (int i = 0; i < kHwEventCount && slot < nr; ++i) {
    if (fds_[i] < 0) continue;
    *out[i] = static_cast<std::uint64_t>(
        static_cast<double>(buf[3 + slot]) * scale);
    ++slot;
  }
  sample.valid = true;
  return sample;
}

const PerfAvailability& availability() {
  static PerfAvailability cached = [] {
    PerfAvailability a;
    a.paranoid = read_paranoid();
    HwCounterGroup probe;
    if (probe.open()) {
      a.usable = probe.read().valid;
      a.events_ok = probe.open_events();
      a.detail = std::string(a.usable ? "ok (" : "opened but unreadable (") +
                 std::to_string(a.events_ok) + "/" +
                 std::to_string(kHwEventCount) + " events, paranoid=" +
                 std::to_string(a.paranoid) + ")";
    } else {
      const int err = errno;
      a.usable = false;
      a.events_ok = 0;
      a.detail = std::string("perf_event_open denied: ") +
                 std::strerror(err) + " (paranoid=" +
                 std::to_string(a.paranoid) + ")";
    }
    return a;
  }();
  return cached;
}

#else  // !MCL_PROF_HAVE_PERF

bool HwCounterGroup::open() { return false; }
void HwCounterGroup::close() { leader_fd_ = -1; }
HwSample HwCounterGroup::read() const { return HwSample{}; }

const PerfAvailability& availability() {
  static const PerfAvailability cached{
      false, -99, 0, "perf_event_open not available on this platform"};
  return cached;
}

#endif  // MCL_PROF_HAVE_PERF

}  // namespace mcl::prof
