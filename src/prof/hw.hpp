// mclprof hardware-counter backend: a per-thread perf_event_open group
// sampling cycles, instructions, cache references/misses, and branch stats.
//
// The group leader is CPU cycles; the other events are siblings read in one
// PERF_FORMAT_GROUP read() so the six values are mutually consistent. Each
// event may fail to open independently (paranoid settings, missing PMU,
// VM without counter passthrough) — failed events are skipped, not fatal,
// and their slots read as zero with `valid` still true for the rest.
//
// Availability is probed once and cached (availability()): it records the
// /proc/sys/kernel/perf_event_paranoid level, how many of the six events
// opened, and a human-readable detail string (errno of the first failure).
// Everything degrades gracefully: on kernels where perf_event_open is denied
// or absent entirely (the syscall returns ENOENT in some containers), open()
// yields a group whose ok() is false and the profiler falls back to
// software-derived metrics — reported as such, never silently zeroed.
//
// Counters are opened with exclude_kernel so paranoid level 2 (the common
// distro default) still admits them, and multiplex scaling
// (time_enabled/time_running) is applied on read.
#pragma once

#include <cstdint>
#include <string>

namespace mcl::prof {

/// Number of hardware events a group tries to open.
inline constexpr int kHwEventCount = 6;

/// One consistent reading of the thread's counter group (deltas are computed
/// by subtracting two samples). Values are multiplex-scaled.
struct HwSample {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_references = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branches = 0;
  std::uint64_t branch_misses = 0;
  bool valid = false;  ///< false when the group is not usable

  HwSample& operator-=(const HwSample& rhs) noexcept {
    auto sub = [](std::uint64_t a, std::uint64_t b) { return a >= b ? a - b : 0; };
    cycles = sub(cycles, rhs.cycles);
    instructions = sub(instructions, rhs.instructions);
    cache_references = sub(cache_references, rhs.cache_references);
    cache_misses = sub(cache_misses, rhs.cache_misses);
    branches = sub(branches, rhs.branches);
    branch_misses = sub(branch_misses, rhs.branch_misses);
    return *this;
  }
};

/// What the probe discovered about perf_event_open on this host.
struct PerfAvailability {
  bool usable = false;   ///< at least the cycles leader opens
  int paranoid = -99;    ///< /proc/sys/kernel/perf_event_paranoid (-99 unknown)
  int events_ok = 0;     ///< how many of the kHwEventCount events opened
  std::string detail;    ///< e.g. "ok (6/6 events)" or "denied: ENOENT"
};

/// Probes once per process (opens and closes a throwaway group) and caches
/// the result. Thread-safe.
[[nodiscard]] const PerfAvailability& availability();

/// A per-thread group of hardware counters. Not thread-safe: open, read,
/// and close on the owning thread.
class HwCounterGroup {
 public:
  HwCounterGroup() = default;
  ~HwCounterGroup() { close(); }
  HwCounterGroup(const HwCounterGroup&) = delete;
  HwCounterGroup& operator=(const HwCounterGroup&) = delete;

  /// Opens the group for the calling thread, enabled immediately. Returns
  /// ok() — false (with every fd closed) when even the leader is denied.
  bool open();
  void close();

  /// True when the cycles leader is live.
  [[nodiscard]] bool ok() const noexcept { return leader_fd_ >= 0; }

  /// How many of the kHwEventCount events are currently open.
  [[nodiscard]] int open_events() const noexcept {
    int n = 0;
    for (int fd : fds_) n += fd >= 0 ? 1 : 0;
    return n;
  }

  /// Reads all counters in one syscall, multiplex-scaled. Returns a sample
  /// with valid=false when the group is not open or the read fails.
  [[nodiscard]] HwSample read() const;

 private:
  int leader_fd_ = -1;
  int fds_[kHwEventCount] = {-1, -1, -1, -1, -1, -1};
};

}  // namespace mcl::prof
