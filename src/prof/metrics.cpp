// mclprof metrics registry: per-thread shards, name registration, snapshot
// merge, and the text/JSON exporters.
#include "prof/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <memory>
#include <mutex>
#include <sstream>

#include "trace/trace.hpp"

namespace mcl::prof {

namespace detail {
std::atomic<bool> g_enabled{false};
}

namespace {

// One writer thread per shard (counters/histograms are only added to by the
// owning thread; snapshot() reads them relaxed from any thread). Shards are
// recycled on thread exit like trace rings, but their counts are retained:
// snapshot() sums across shards, so work done by exited threads must keep
// contributing.
struct alignas(64) Shard {
  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
  std::array<std::array<std::atomic<std::uint64_t>, kHistogramBuckets>,
             kMaxHistograms>
      histograms{};
  std::atomic<bool> in_use{false};
};

class Registry {
 public:
  static Registry& get() {
    // Leaked on purpose: thread_local shard holders may outlive static
    // destruction of a non-leaked singleton.
    static Registry* const r = new Registry;
    return *r;
  }

  Shard* acquire_shard() {
    std::lock_guard lock(mu_);
    for (const std::unique_ptr<Shard>& s : shards_) {
      if (!s->in_use.load(std::memory_order_relaxed)) {
        s->in_use.store(true, std::memory_order_relaxed);
        return s.get();
      }
    }
    shards_.push_back(std::make_unique<Shard>());
    Shard* s = shards_.back().get();
    s->in_use.store(true, std::memory_order_relaxed);
    return s;
  }

  void release_shard(Shard* s) {
    std::lock_guard lock(mu_);
    s->in_use.store(false, std::memory_order_relaxed);
  }

  std::uint32_t register_name(std::vector<std::string>& names,
                              std::size_t capacity, const std::string& name) {
    std::lock_guard lock(mu_);
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) return static_cast<std::uint32_t>(i);
    }
    if (names.size() >= capacity) return detail::kInvalidId;
    names.push_back(name);
    return static_cast<std::uint32_t>(names.size() - 1);
  }

  std::mutex mu_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> histogram_names_;
  std::array<std::atomic<std::uint64_t>, kMaxGauges> gauges_{};  // double bits
};

struct ShardHolder {
  Shard* shard = nullptr;
  ~ShardHolder() {
    if (shard != nullptr) Registry::get().release_shard(shard);
  }
};

Shard& thread_shard() {
  thread_local ShardHolder holder;
  if (holder.shard == nullptr) holder.shard = Registry::get().acquire_shard();
  return *holder.shard;
}

}  // namespace

namespace detail {

void counter_add(std::uint32_t id, std::uint64_t n) noexcept {
  thread_shard().counters[id].fetch_add(n, std::memory_order_relaxed);
}

void gauge_set(std::uint32_t id, double value) noexcept {
  Registry::get().gauges_[id].store(std::bit_cast<std::uint64_t>(value),
                                    std::memory_order_relaxed);
}

void histogram_record(std::uint32_t id, std::uint64_t value) noexcept {
  thread_shard().histograms[id][bucket_index(value)].fetch_add(
      1, std::memory_order_relaxed);
}

}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

Counter counter(const std::string& name) {
  Registry& r = Registry::get();
  Counter c;
  c.id_ = r.register_name(r.counter_names_, kMaxCounters, name);
  return c;
}

Gauge gauge(const std::string& name) {
  Registry& r = Registry::get();
  Gauge g;
  g.id_ = r.register_name(r.gauge_names_, kMaxGauges, name);
  return g;
}

Histogram histogram(const std::string& name) {
  Registry& r = Registry::get();
  Histogram h;
  h.id_ = r.register_name(r.histogram_names_, kMaxHistograms, name);
  return h;
}

std::size_t bucket_index(std::uint64_t value) noexcept {
  return static_cast<std::size_t>(std::bit_width(value));
}

std::uint64_t bucket_lower(std::size_t b) noexcept {
  return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
}

std::uint64_t bucket_upper(std::size_t b) noexcept {
  if (b == 0) return 0;
  if (b >= 64) return UINT64_MAX;
  return (std::uint64_t{1} << b) - 1;
}

std::uint64_t HistogramData::count() const noexcept {
  std::uint64_t n = 0;
  for (std::uint64_t b : buckets) n += b;
  return n;
}

std::uint64_t HistogramData::max() const noexcept {
  for (std::size_t b = buckets.size(); b-- > 0;) {
    if (buckets[b] != 0) return bucket_upper(b);
  }
  return 0;
}

std::uint64_t HistogramData::percentile(double p) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: the k-th smallest sample with k = ceil(p/100 * n),
  // clamped to at least 1 so p=0 answers with the smallest sample's bucket.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(p / 100.0 * static_cast<double>(n))));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (seen >= rank) return bucket_upper(b);
  }
  return bucket_upper(buckets.size() - 1);
}

void HistogramData::merge(const HistogramData& other) noexcept {
  for (std::size_t b = 0; b < buckets.size(); ++b) buckets[b] += other.buckets[b];
}

Snapshot snapshot() {
  Registry& r = Registry::get();
  Snapshot snap;
  std::lock_guard lock(r.mu_);
  snap.counters.resize(r.counter_names_.size());
  for (std::size_t i = 0; i < r.counter_names_.size(); ++i) {
    snap.counters[i].name = r.counter_names_[i];
  }
  snap.gauges.resize(r.gauge_names_.size());
  for (std::size_t i = 0; i < r.gauge_names_.size(); ++i) {
    snap.gauges[i].name = r.gauge_names_[i];
    snap.gauges[i].value = std::bit_cast<double>(
        r.gauges_[i].load(std::memory_order_relaxed));
  }
  snap.histograms.resize(r.histogram_names_.size());
  for (std::size_t i = 0; i < r.histogram_names_.size(); ++i) {
    snap.histograms[i].name = r.histogram_names_[i];
  }
  for (const std::unique_ptr<Shard>& s : r.shards_) {
    for (std::size_t i = 0; i < snap.counters.size(); ++i) {
      snap.counters[i].value +=
          s->counters[i].load(std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        snap.histograms[i].data.buckets[b] +=
            s->histograms[i][b].load(std::memory_order_relaxed);
      }
    }
  }
  // Always-on synthesized counter: surface the tracer's drop count in every
  // snapshot so dropped timelines are visible in metrics exports, not just
  // the atexit stderr line. Lives here (not in trace) because prof sits
  // above trace in the library DAG.
  Snapshot::CounterValue dropped;
  dropped.name = "trace.dropped";
  dropped.value = trace::dropped_events();
  snap.counters.push_back(dropped);
  return snap;
}

void reset() {
  Registry& r = Registry::get();
  std::lock_guard lock(r.mu_);
  for (const std::unique_ptr<Shard>& s : r.shards_) {
    for (auto& c : s->counters) c.store(0, std::memory_order_relaxed);
    for (auto& h : s->histograms) {
      for (auto& b : h) b.store(0, std::memory_order_relaxed);
    }
  }
  for (auto& g : r.gauges_) {
    g.store(std::bit_cast<std::uint64_t>(0.0), std::memory_order_relaxed);
  }
}

std::string metrics_text(const Snapshot& snap) {
  std::ostringstream os;
  if (snap.counters.empty() && snap.gauges.empty() &&
      snap.histograms.empty()) {
    return "mclprof: no metrics registered\n";
  }
  os << "mclprof metrics\n";
  for (const auto& c : snap.counters) {
    os << "  counter  " << c.name << " = " << c.value << "\n";
  }
  for (const auto& g : snap.gauges) {
    os << "  gauge    " << g.name << " = " << g.value << "\n";
  }
  for (const auto& h : snap.histograms) {
    os << "  hist     " << h.name << ": n=" << h.data.count()
       << " p50<=" << h.data.percentile(50) << " p99<=" << h.data.percentile(99)
       << " max<=" << h.data.max() << "\n";
  }
  return os.str();
}

std::string metrics_json(const Snapshot& snap) {
  std::ostringstream os;
  auto quote = [](const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out + "\"";
  };
  os << "{\"counters\":{";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    if (i != 0) os << ",";
    os << quote(snap.counters[i].name) << ":" << snap.counters[i].value;
  }
  os << "},\"gauges\":{";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    if (i != 0) os << ",";
    const double v = snap.gauges[i].value;
    os << quote(snap.gauges[i].name) << ":";
    if (std::isfinite(v)) {
      os << v;
    } else {
      os << "null";
    }
  }
  os << "},\"histograms\":{";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    if (i != 0) os << ",";
    const HistogramData& d = snap.histograms[i].data;
    os << quote(snap.histograms[i].name) << ":{\"count\":" << d.count()
       << ",\"p50\":" << d.percentile(50) << ",\"p99\":" << d.percentile(99)
       << ",\"max\":" << d.max() << "}";
  }
  os << "}}";
  return os.str();
}

}  // namespace mcl::prof
