// mclprof metrics registry — always-compiled, runtime-gated counters,
// gauges, and log-bucketed histograms for MiniCL.
//
// Model: metrics are registered once by name (deduped, stable ids) and
// updated through small value-type handles. Counter and histogram updates
// land in a per-thread shard — a fixed-size block of relaxed atomics owned
// by one writer thread — so hot paths never contend; snapshot() merges every
// shard (including shards of exited threads, whose counts are retained) into
// totals. Gauges are last-value samples and live in one global slot each.
//
// Cost when metrics are off: every instrumentation site performs exactly one
// relaxed atomic load (enabled()) and branches out — the same budget as
// MCL_TRACE_SCOPE, guarded by bench/gbench_micro (BM_MetricsDisabled).
// Registration also only happens on the first *enabled* pass through a site,
// so a binary that never profiles never touches the registry mutex.
//
// Histogram buckets are powers of two: value v lands in bucket
// bit_width(v), i.e. bucket 0 holds only v == 0 and bucket b >= 1 covers
// [2^(b-1), 2^b - 1]. percentile() returns the upper bound of the bucket
// holding the nearest-rank sample — deterministic, and exact to within the
// 2x bucket resolution. Merging histograms is elementwise addition, which
// is associative and commutative (tested in tests/prof_test.cpp).
//
// See docs/metrics.md for the registry model and naming conventions.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mcl::prof {

/// Registry capacity per kind; registrations past these return an invalid
/// (no-op) handle rather than failing — metrics must never throw on a hot
/// path.
inline constexpr std::size_t kMaxCounters = 128;
inline constexpr std::size_t kMaxGauges = 64;
inline constexpr std::size_t kMaxHistograms = 64;

/// One bucket per possible bit_width of a uint64 value (0..64).
inline constexpr std::size_t kHistogramBuckets = 65;

namespace detail {
extern std::atomic<bool> g_enabled;
inline constexpr std::uint32_t kInvalidId = UINT32_MAX;
void counter_add(std::uint32_t id, std::uint64_t n) noexcept;
void gauge_set(std::uint32_t id, double value) noexcept;
void histogram_record(std::uint32_t id, std::uint64_t value) noexcept;
}  // namespace detail

/// True while a metrics session is recording. The only cost paid at an
/// instrumentation site when metrics are off.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Turns recording on/off. start()/stop() of the profiler session call this;
/// it is exposed separately so the registry can be used without hardware
/// counters (tests, gbench guards).
void set_enabled(bool on);

/// Monotonic named counter. Copyable; invalid handles (registry full) no-op.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t n = 1) const noexcept {
    if (id_ != detail::kInvalidId) detail::counter_add(id_, n);
  }
  [[nodiscard]] bool valid() const noexcept { return id_ != detail::kInvalidId; }

 private:
  friend Counter counter(const std::string& name);
  std::uint32_t id_ = detail::kInvalidId;
};

/// Last-value gauge.
class Gauge {
 public:
  Gauge() = default;
  void set(double value) const noexcept {
    if (id_ != detail::kInvalidId) detail::gauge_set(id_, value);
  }
  [[nodiscard]] bool valid() const noexcept { return id_ != detail::kInvalidId; }

 private:
  friend Gauge gauge(const std::string& name);
  std::uint32_t id_ = detail::kInvalidId;
};

/// Log-bucketed value distribution.
class Histogram {
 public:
  Histogram() = default;
  void record(std::uint64_t value) const noexcept {
    if (id_ != detail::kInvalidId) detail::histogram_record(id_, value);
  }
  [[nodiscard]] bool valid() const noexcept { return id_ != detail::kInvalidId; }

 private:
  friend Histogram histogram(const std::string& name);
  std::uint32_t id_ = detail::kInvalidId;
};

/// Registers (or finds, by name) a metric. Thread-safe; stable across the
/// process lifetime. Returns an invalid no-op handle when the per-kind
/// capacity is exhausted.
[[nodiscard]] Counter counter(const std::string& name);
[[nodiscard]] Gauge gauge(const std::string& name);
[[nodiscard]] Histogram histogram(const std::string& name);

// --- bucket math (exposed for tests and exporters) ---------------------------

/// Bucket index of a value: bit_width(v), so 0 -> 0, 1 -> 1, 2..3 -> 2, ...
[[nodiscard]] std::size_t bucket_index(std::uint64_t value) noexcept;
/// Smallest value bucket b holds (0 for b == 0, else 2^(b-1)).
[[nodiscard]] std::uint64_t bucket_lower(std::size_t b) noexcept;
/// Largest value bucket b holds (0 for b == 0, else 2^b - 1).
[[nodiscard]] std::uint64_t bucket_upper(std::size_t b) noexcept;

/// Merged histogram contents.
struct HistogramData {
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  [[nodiscard]] std::uint64_t count() const noexcept;
  /// Sum of per-bucket midpoint-free lower bounds is meaningless; callers
  /// wanting totals should pair the histogram with a counter. max() is the
  /// upper bound of the highest nonempty bucket (0 when empty).
  [[nodiscard]] std::uint64_t max() const noexcept;
  /// Nearest-rank percentile (p in [0, 100]): the upper bound of the bucket
  /// containing the ceil(p/100 * count)-th smallest sample; 0 when empty.
  [[nodiscard]] std::uint64_t percentile(double p) const noexcept;
  /// Elementwise sum — the shard-merge operation (associative/commutative).
  void merge(const HistogramData& other) noexcept;
};

/// Point-in-time merged view of every registered metric.
struct Snapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    HistogramData data;
  };
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
};

/// Merges every thread shard into totals. Safe to call while writers run
/// (relaxed reads; the result is a consistent-enough monotonic view).
[[nodiscard]] Snapshot snapshot();

/// Zeroes every shard, gauge, and histogram. Registered names survive.
void reset();

/// Human-readable table of a snapshot (counters, gauges, histogram p50/p99).
[[nodiscard]] std::string metrics_text(const Snapshot& snap);

/// JSON object {"counters": {...}, "gauges": {...}, "histograms": {...}}.
[[nodiscard]] std::string metrics_json(const Snapshot& snap);

#define MCL_PROF_CAT2(a, b) a##b
#define MCL_PROF_CAT(a, b) MCL_PROF_CAT2(a, b)

/// Bump a named counter by n. One relaxed load when metrics are off; the
/// metric registers itself on the first enabled pass through the site.
#define MCL_PROF_COUNT(name, n)                                      \
  do {                                                               \
    if (::mcl::prof::enabled()) {                                    \
      static const ::mcl::prof::Counter MCL_PROF_CAT(mcl_prof_c_,    \
                                                     __LINE__) =     \
          ::mcl::prof::counter(name);                                \
      MCL_PROF_CAT(mcl_prof_c_, __LINE__).add(n);                    \
    }                                                                \
  } while (0)

/// Sample a named gauge.
#define MCL_PROF_GAUGE(name, value)                                  \
  do {                                                               \
    if (::mcl::prof::enabled()) {                                    \
      static const ::mcl::prof::Gauge MCL_PROF_CAT(mcl_prof_g_,      \
                                                   __LINE__) =       \
          ::mcl::prof::gauge(name);                                  \
      MCL_PROF_CAT(mcl_prof_g_, __LINE__).set(value);                \
    }                                                                \
  } while (0)

/// Record a value into a named log-bucketed histogram.
#define MCL_PROF_HIST(name, value)                                   \
  do {                                                               \
    if (::mcl::prof::enabled()) {                                    \
      static const ::mcl::prof::Histogram MCL_PROF_CAT(mcl_prof_h_,  \
                                                       __LINE__) =   \
          ::mcl::prof::histogram(name);                              \
      MCL_PROF_CAT(mcl_prof_h_, __LINE__).record(value);             \
    }                                                                \
  } while (0)

}  // namespace mcl::prof
