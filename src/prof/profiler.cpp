// mclprof profiler session: per-kernel accumulation, trace bridging, and the
// profile JSON / text exporters.
#include "prof/profiler.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <map>
#include <mutex>
#include <sstream>

#include "core/time.hpp"
#include "prof/metrics.hpp"
#include "trace/trace.hpp"

namespace mcl::prof {

namespace detail {
std::atomic<bool> g_profiling{false};
}

namespace {

// Bumped on every start(); worker threads compare it against their cached
// value and lazily (re)open their counter group on the first workgroup of a
// new session. Keeps perf fds out of threads that never run kernels.
std::atomic<std::uint64_t> g_generation{0};

std::mutex g_mu;
std::map<std::string, KernelProfile>& profile_map() {
  static std::map<std::string, KernelProfile>* const m =
      new std::map<std::string, KernelProfile>;
  return *m;
}

struct ThreadHwCtx {
  HwCounterGroup group;
  std::uint64_t gen = 0;
};

ThreadHwCtx& thread_hw() {
  thread_local ThreadHwCtx ctx;
  return ctx;
}

std::uint64_t sub_sat(std::uint64_t a, std::uint64_t b) noexcept {
  return a >= b ? a - b : 0;
}

void put_double(std::ostream& os, double v) {
  if (std::isfinite(v)) {
    os << v;
  } else {
    os << "null";
  }
}

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out + "\"";
}

}  // namespace

KernelProfile KernelProfile::minus(const KernelProfile& base) const {
  KernelProfile d = *this;
  d.launches = sub_sat(launches, base.launches);
  d.groups = sub_sat(groups, base.groups);
  d.items = sub_sat(items, base.items);
  d.simd_items = sub_sat(simd_items, base.simd_items);
  d.seconds = std::max(0.0, seconds - base.seconds);
  d.est_bytes = sub_sat(est_bytes, base.est_bytes);
  d.cycles = sub_sat(cycles, base.cycles);
  d.instructions = sub_sat(instructions, base.instructions);
  d.cache_references = sub_sat(cache_references, base.cache_references);
  d.cache_misses = sub_sat(cache_misses, base.cache_misses);
  d.branches = sub_sat(branches, base.branches);
  d.branch_misses = sub_sat(branch_misses, base.branch_misses);
  return d;
}

void start() {
  // Probe before workers race into GroupScope; availability() caches.
  (void)availability();
  {
    std::lock_guard lock(g_mu);
    profile_map().clear();
  }
  g_generation.fetch_add(1, std::memory_order_relaxed);
  set_enabled(true);
  // Release pairs with the acquire of g_generation in GroupScope: a worker
  // that observes profiling() == true also observes the bumped generation.
  detail::g_profiling.store(true, std::memory_order_release);
}

void stop() {
  detail::g_profiling.store(false, std::memory_order_relaxed);
  set_enabled(false);
}

void reset_profiles() {
  std::lock_guard lock(g_mu);
  profile_map().clear();
}

GroupScope::GroupScope(LaunchAcc* acc) noexcept {
  if (acc == nullptr || !profiling()) return;
  acc_ = acc;
  ThreadHwCtx& ctx = thread_hw();
  const std::uint64_t gen = g_generation.load(std::memory_order_acquire);
  if (ctx.gen != gen) {
    ctx.group.close();
    if (availability().usable) ctx.group.open();
    ctx.gen = gen;
  }
  t0_ = ctx.group.read();
  t0_ns_ = core::steady_now_ns();
}

GroupScope::~GroupScope() {
  if (acc_ == nullptr) return;
  const std::uint64_t dur = core::steady_now_ns() - t0_ns_;
  MCL_PROF_HIST("prof.wg_ns", dur);
  if (!t0_.valid) return;
  HwSample t1 = thread_hw().group.read();
  if (!t1.valid) return;
  t1 -= t0_;
  acc_->cycles.fetch_add(t1.cycles, std::memory_order_relaxed);
  acc_->instructions.fetch_add(t1.instructions, std::memory_order_relaxed);
  acc_->cache_references.fetch_add(t1.cache_references,
                                   std::memory_order_relaxed);
  acc_->cache_misses.fetch_add(t1.cache_misses, std::memory_order_relaxed);
  acc_->branches.fetch_add(t1.branches, std::memory_order_relaxed);
  acc_->branch_misses.fetch_add(t1.branch_misses, std::memory_order_relaxed);
  acc_->hw_groups.fetch_add(1, std::memory_order_relaxed);
}

KernelProfile commit_launch(const std::string& kernel, const LaunchAcc& acc,
                            const LaunchMeta& meta) {
  KernelProfile launch;
  launch.name = kernel;
  if (!profiling()) return launch;
  launch.launches = 1;
  launch.groups = meta.groups;
  launch.items = meta.items;
  launch.simd_items = meta.simd_items;
  launch.has_simd_form = meta.has_simd_form;
  launch.seconds = meta.seconds;
  launch.est_bytes = meta.est_bytes;
  launch.cycles = acc.cycles.load(std::memory_order_relaxed);
  launch.instructions = acc.instructions.load(std::memory_order_relaxed);
  launch.cache_references =
      acc.cache_references.load(std::memory_order_relaxed);
  launch.cache_misses = acc.cache_misses.load(std::memory_order_relaxed);
  launch.branches = acc.branches.load(std::memory_order_relaxed);
  launch.branch_misses = acc.branch_misses.load(std::memory_order_relaxed);
  launch.hardware = acc.hw_groups.load(std::memory_order_relaxed) > 0;

  MCL_PROF_COUNT("prof.launches", 1);
  {
    std::lock_guard lock(g_mu);
    KernelProfile& cum = profile_map()[kernel];
    cum.name = kernel;
    cum.launches += 1;
    cum.groups += launch.groups;
    cum.items += launch.items;
    cum.simd_items += launch.simd_items;
    cum.has_simd_form = cum.has_simd_form || launch.has_simd_form;
    cum.hardware = cum.hardware || launch.hardware;
    cum.seconds += launch.seconds;
    cum.est_bytes += launch.est_bytes;
    cum.cycles += launch.cycles;
    cum.instructions += launch.instructions;
    cum.cache_references += launch.cache_references;
    cum.cache_misses += launch.cache_misses;
    cum.branches += launch.branches;
    cum.branch_misses += launch.branch_misses;
  }

  if (trace::enabled()) {
    // Stamp IPC/GB/s counter tracks at the launch end so Perfetto lines the
    // samples up with the kernel spans the device emitted.
    const std::uint64_t ts = trace::clock_ns();
    if (launch.hardware) {
      trace::counter_at(trace::intern("prof.ipc:" + kernel), ts, launch.ipc());
    }
    trace::counter_at(trace::intern("prof.gbps:" + kernel), ts,
                      launch.achieved_gbps());
  }
  return launch;
}

std::vector<KernelProfile> kernel_profiles() {
  std::lock_guard lock(g_mu);
  std::vector<KernelProfile> out;
  out.reserve(profile_map().size());
  for (const auto& [name, profile] : profile_map()) out.push_back(profile);
  return out;
}

KernelProfile kernel_profile(const std::string& kernel) {
  std::lock_guard lock(g_mu);
  const auto it = profile_map().find(kernel);
  if (it == profile_map().end()) {
    KernelProfile zero;
    zero.name = kernel;
    return zero;
  }
  return it->second;
}

std::string profiles_text() {
  const std::vector<KernelProfile> profiles = kernel_profiles();
  std::ostringstream os;
  os << "mclprof kernel profiles (perf: " << availability().detail << ")\n";
  if (profiles.empty()) {
    os << "  (no kernels profiled)\n";
    return os.str();
  }
  os << "  " << std::left << std::setw(28) << "kernel" << std::right
     << std::setw(8) << "launch" << std::setw(10) << "groups" << std::setw(12)
     << "items" << std::setw(7) << "simd%" << std::setw(11) << "sec"
     << std::setw(8) << "GB/s" << std::setw(7) << "IPC" << std::setw(7)
     << "miss%" << std::setw(5) << "src" << "\n";
  for (const KernelProfile& p : profiles) {
    os << "  " << std::left << std::setw(28) << p.name << std::right
       << std::setw(8) << p.launches << std::setw(10) << p.groups
       << std::setw(12) << p.items << std::setw(7) << std::fixed
       << std::setprecision(1) << p.simd_item_fraction() * 100.0
       << std::setw(11) << std::setprecision(5) << p.seconds << std::setw(8)
       << std::setprecision(2) << p.achieved_gbps();
    if (p.hardware) {
      os << std::setw(7) << std::setprecision(2) << p.ipc() << std::setw(6)
         << std::setprecision(1) << p.cache_miss_rate() * 100.0 << "%"
         << std::setw(5) << "hw";
    } else {
      os << std::setw(7) << "-" << std::setw(7) << "-" << std::setw(5) << "sw";
    }
    os << "\n";
    os.unsetf(std::ios::fixed);
    os << std::setprecision(6);
  }
  return os.str();
}

std::string profile_json() {
  const PerfAvailability& perf = availability();
  const std::vector<KernelProfile> profiles = kernel_profiles();
  std::ostringstream os;
  os << std::setprecision(12);
  os << "{\"mclprof\":1,\"perf\":{\"usable\":"
     << (perf.usable ? "true" : "false") << ",\"paranoid\":" << perf.paranoid
     << ",\"events_ok\":" << perf.events_ok
     << ",\"detail\":" << quote(perf.detail) << "},\"kernels\":[";
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const KernelProfile& p = profiles[i];
    if (i != 0) os << ",";
    os << "{\"name\":" << quote(p.name) << ",\"launches\":" << p.launches
       << ",\"groups\":" << p.groups << ",\"items\":" << p.items
       << ",\"simd_items\":" << p.simd_items << ",\"has_simd_form\":"
       << (p.has_simd_form ? "true" : "false")
       << ",\"hardware\":" << (p.hardware ? "true" : "false")
       << ",\"seconds\":";
    put_double(os, p.seconds);
    os << ",\"est_bytes\":" << p.est_bytes << ",\"cycles\":" << p.cycles
       << ",\"instructions\":" << p.instructions
       << ",\"cache_references\":" << p.cache_references
       << ",\"cache_misses\":" << p.cache_misses
       << ",\"branches\":" << p.branches
       << ",\"branch_misses\":" << p.branch_misses << ",\"ipc\":";
    put_double(os, p.ipc());
    os << ",\"cache_miss_rate\":";
    put_double(os, p.cache_miss_rate());
    os << ",\"branch_miss_rate\":";
    put_double(os, p.branch_miss_rate());
    os << ",\"bytes_per_cycle\":";
    put_double(os, p.bytes_per_cycle());
    os << ",\"achieved_gbps\":";
    put_double(os, p.achieved_gbps());
    os << ",\"simd_item_fraction\":";
    put_double(os, p.simd_item_fraction());
    os << "}";
  }
  os << "],\"metrics\":" << metrics_json(snapshot()) << "}";
  return os.str();
}

bool write_profile_json(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << profile_json() << "\n";
  return static_cast<bool>(out);
}

namespace {

// MCL_PROF=out.json starts a session at load time and writes the profile at
// exit — the same UX as MCL_TRACE. MCL_PROF=1|-|stderr prints the text
// table to stderr instead of writing JSON.
const char* g_env_path = nullptr;

struct EnvAutoStart {
  EnvAutoStart() {
    const char* path = std::getenv("MCL_PROF");
    if (path == nullptr || *path == '\0') return;
    g_env_path = path;
    start();
    std::atexit([] {
      stop();
      const std::string path_s(g_env_path);
      if (path_s == "1" || path_s == "-" || path_s == "stderr") {
        std::fputs(profiles_text().c_str(), stderr);
        std::fputs(metrics_text(snapshot()).c_str(), stderr);
      } else if (write_profile_json(path_s)) {
        std::fprintf(stderr, "mclprof: wrote %s\n", g_env_path);
      } else {
        std::fprintf(stderr, "mclprof: failed to write %s\n", g_env_path);
      }
    });
  }
};

const EnvAutoStart g_env_autostart;

}  // namespace

}  // namespace mcl::prof
