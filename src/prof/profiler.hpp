// mclprof profiler session: per-kernel hardware-counter profiles attributed
// through the launch path and the queue's event DAG.
//
// Model: bench::Env (--profile), the MCL_PROF env var, or a direct start()
// call opens a profiling session. While it is active, every CPU-device
// kernel launch accumulates per-workgroup deltas of the worker thread's
// perf_event_open counter group (prof::HwCounterGroup) into a LaunchAcc;
// when the launch completes, commit_launch() folds the accumulator into the
// per-kernel cumulative profile and returns the per-launch KernelProfile
// that rides inside ocl::LaunchResult — so every ocl::Event and AsyncEvent
// carries IPC / cache-miss-rate / GB/s next to its profiling_ns().
//
// Graceful degradation: when perf_event_open is unavailable (containers,
// paranoid kernels, VMs without a PMU) the session still profiles — groups,
// items, SIMD coverage, seconds and estimated bytes come from the launch
// path and core::steady_now_ns — and `hardware` stays false so consumers
// report "sw" instead of fabricating zero IPC. availability() says why.
// Cache behavior in degraded mode comes from the cachesim replay benches
// (fig09) rather than the PMU; see docs/metrics.md.
//
// Profiles are also bridged onto the mcltrace timeline: each committed
// launch emits "prof.ipc:<kernel>" / "prof.gbps:<kernel>" counter samples
// when tracing is on, so Perfetto shows IPC over time.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "prof/hw.hpp"

namespace mcl::prof {

/// Per-kernel (or per-launch) counter aggregate with derived rates. A
/// default-constructed profile (launches == 0) means "not profiled".
struct KernelProfile {
  std::string name;
  std::uint64_t launches = 0;
  std::uint64_t groups = 0;      ///< workgroups executed
  std::uint64_t items = 0;       ///< workitems executed
  std::uint64_t simd_items = 0;  ///< items executed through the simd form
  bool has_simd_form = false;    ///< static IR descriptor registered a simd fn
  bool hardware = false;         ///< counters below came from perf_event_open
  double seconds = 0.0;          ///< kernel wall time (core::steady_now_ns)
  std::uint64_t est_bytes = 0;   ///< estimated buffer bytes touched

  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_references = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branches = 0;
  std::uint64_t branch_misses = 0;

  /// Instructions per cycle; 0 when no hardware counts are present.
  [[nodiscard]] double ipc() const noexcept {
    return cycles > 0 ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
  }
  [[nodiscard]] double cache_miss_rate() const noexcept {
    return cache_references > 0 ? static_cast<double>(cache_misses) /
                                      static_cast<double>(cache_references)
                                : 0.0;
  }
  [[nodiscard]] double branch_miss_rate() const noexcept {
    return branches > 0 ? static_cast<double>(branch_misses) /
                              static_cast<double>(branches)
                        : 0.0;
  }
  [[nodiscard]] double bytes_per_cycle() const noexcept {
    return cycles > 0
               ? static_cast<double>(est_bytes) / static_cast<double>(cycles)
               : 0.0;
  }
  /// Achieved bandwidth over the estimated bytes touched (software-derived:
  /// works with or without hardware counters).
  [[nodiscard]] double achieved_gbps() const noexcept {
    return seconds > 0.0
               ? static_cast<double>(est_bytes) / seconds / 1e9
               : 0.0;
  }
  /// Fraction of items that went through the simd form — the measured
  /// vector-lane utilization the P2 lint compares against the IR descriptor.
  [[nodiscard]] double simd_item_fraction() const noexcept {
    return items > 0 ? static_cast<double>(simd_items) /
                           static_cast<double>(items)
                     : 0.0;
  }

  /// Per-interval delta (this - base); used by benches to attribute a
  /// cumulative profile to one measured configuration.
  [[nodiscard]] KernelProfile minus(const KernelProfile& base) const;
};

namespace detail {
extern std::atomic<bool> g_profiling;
}

/// True while a profiling session is active (one relaxed load).
[[nodiscard]] inline bool profiling() noexcept {
  return detail::g_profiling.load(std::memory_order_relaxed);
}

/// Starts (or restarts) profiling: bumps the session generation (worker
/// threads lazily reopen their counter groups), enables the metrics
/// registry, and clears per-kernel profiles.
void start();

/// Stops profiling and disables the metrics registry. Profiles survive
/// until the next start() for inspection.
void stop();

/// Clears per-kernel cumulative profiles (without stopping the session).
void reset_profiles();

/// Per-launch accumulator the device fills through GroupScope instances.
struct LaunchAcc {
  std::atomic<std::uint64_t> cycles{0};
  std::atomic<std::uint64_t> instructions{0};
  std::atomic<std::uint64_t> cache_references{0};
  std::atomic<std::uint64_t> cache_misses{0};
  std::atomic<std::uint64_t> branches{0};
  std::atomic<std::uint64_t> branch_misses{0};
  std::atomic<std::uint64_t> hw_groups{0};  ///< groups with a valid hw delta
};

/// RAII per-workgroup sampler: reads the calling thread's counter group on
/// entry and exit and adds the delta to `acc`. A null acc (or an inactive
/// session) disarms it. Also records the workgroup duration into the
/// "prof.wg_ns" registry histogram.
class GroupScope {
 public:
  explicit GroupScope(LaunchAcc* acc) noexcept;
  ~GroupScope();
  GroupScope(const GroupScope&) = delete;
  GroupScope& operator=(const GroupScope&) = delete;

 private:
  LaunchAcc* acc_ = nullptr;
  HwSample t0_;
  std::uint64_t t0_ns_ = 0;
};

/// Static facts about one launch, provided by the device.
struct LaunchMeta {
  std::uint64_t groups = 0;
  std::uint64_t items = 0;
  std::uint64_t simd_items = 0;
  bool has_simd_form = false;
  double seconds = 0.0;
  std::uint64_t est_bytes = 0;
};

/// Folds one finished launch into the per-kernel cumulative profile and
/// returns the per-launch profile (for LaunchResult / AsyncEvent). Emits
/// trace counter samples when tracing is on. No-op (returns a default
/// profile) when the session is inactive.
[[nodiscard]] KernelProfile commit_launch(const std::string& kernel,
                                          const LaunchAcc& acc,
                                          const LaunchMeta& meta);

/// Cumulative per-kernel profiles of the current session, name-sorted.
[[nodiscard]] std::vector<KernelProfile> kernel_profiles();

/// Cumulative profile of one kernel (default/zero when never profiled).
[[nodiscard]] KernelProfile kernel_profile(const std::string& kernel);

/// Fixed-width per-kernel profile table (the bench::Env teardown report).
[[nodiscard]] std::string profiles_text();

/// The full profile document: {"mclprof": 1, "perf": {...}, "kernels":
/// [...], "metrics": {...}} — validated by tools/plot_results.py --check.
[[nodiscard]] std::string profile_json();

/// Writes profile_json() to `path`; false on IO error.
bool write_profile_json(const std::string& path);

}  // namespace mcl::prof
