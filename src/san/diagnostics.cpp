#include "san/diagnostics.hpp"

#include <sstream>

namespace mcl::san {

std::string_view to_string(Rule rule) noexcept {
  switch (rule) {
    case Rule::S2WriteWriteRace: return "S2";
    case Rule::S3ReadWriteRace: return "S3";
    case Rule::B1OutOfBounds: return "B1";
    case Rule::P1BarrierDivergence: return "P1";
    case Rule::W1ReadOnlyWrite: return "W1";
    case Rule::M1LocalOverflow: return "M1";
    case Rule::H1UnsetArg: return "H1";
    case Rule::H2BarrierExecutor: return "H2";
    case Rule::H3BadNDRange: return "H3";
    case Rule::T1TraceDrop: return "T1";
    case Rule::P2ProfileContradiction: return "P2";
    case Rule::V1DeadStore: return "V1";
    case Rule::V2RedundantBarrier: return "V2";
  }
  return "?";
}

std::string_view to_string(Severity severity) noexcept {
  switch (severity) {
    case Severity::Error: return "error";
    case Severity::Warning: return "warning";
    case Severity::Note: return "note";
  }
  return "?";
}

std::string Diagnostic::to_string() const {
  std::ostringstream os;
  os << "[" << san::to_string(rule) << "] " << san::to_string(severity) << " "
     << kernel << ": " << message;
  return os.str();
}

std::string Report::to_string() const {
  if (diagnostics.empty()) return "clean (no findings)\n";
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += d.to_string();
    out += "\n";
  }
  return out;
}

}  // namespace mcl::san
