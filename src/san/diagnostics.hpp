// Diagnostic model shared by mclsan's static analyzer, host-API lint, and
// the Checked executor.
//
// Rule numbering continues the veclegal scheme (L1-L4 loop-vectorizer rules,
// S1 SPMD write-distinctness — see src/veclegal/analysis.hpp):
//   S2  inter-workitem write-write race on a shared array
//   S3  inter-workitem read-write race on a shared array
//   B1  affine access out of the declared array extent
//   P1  barrier in divergent control flow / mismatched barrier counts
//   W1  write through a read-only array or buffer
//   M1  workgroup-local memory arena overflow
//   H1  launch with an unset kernel argument slot
//   H2  needs_barrier kernel routed to a non-fiber executor
//   H3  NDRange / local-size mismatch
//   T1  mcltrace ring overflow dropped events (timeline is truncated)
//   V1  dead store: an element is overwritten before any item can read it
//   V2  redundant barrier: no potentially communicating accesses in the
//       adjacent epochs (given the other barriers, it separates nothing)
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mcl::san {

enum class Rule {
  S2WriteWriteRace,
  S3ReadWriteRace,
  B1OutOfBounds,
  P1BarrierDivergence,
  W1ReadOnlyWrite,
  M1LocalOverflow,
  H1UnsetArg,
  H2BarrierExecutor,
  H3BadNDRange,
  T1TraceDrop,
  P2ProfileContradiction,
  V1DeadStore,
  V2RedundantBarrier,
};

enum class Severity { Error, Warning, Note };

[[nodiscard]] std::string_view to_string(Rule rule) noexcept;
[[nodiscard]] std::string_view to_string(Severity severity) noexcept;

struct Diagnostic {
  Rule rule = Rule::S2WriteWriteRace;
  Severity severity = Severity::Error;
  std::string kernel;   ///< kernel the finding applies to
  std::string message;  ///< human-readable finding

  [[nodiscard]] std::string to_string() const;
};

/// One checker run's findings.
struct Report {
  std::vector<Diagnostic> diagnostics;

  [[nodiscard]] bool clean() const noexcept { return error_count() == 0; }
  [[nodiscard]] std::size_t error_count() const noexcept {
    std::size_t n = 0;
    for (const Diagnostic& d : diagnostics) {
      if (d.severity == Severity::Error) ++n;
    }
    return n;
  }
  [[nodiscard]] bool has_rule(Rule rule) const noexcept {
    for (const Diagnostic& d : diagnostics) {
      if (d.rule == rule) return true;
    }
    return false;
  }
  [[nodiscard]] std::string to_string() const;

  void add(Rule rule, Severity severity, std::string kernel,
           std::string message) {
    diagnostics.push_back(
        {rule, severity, std::move(kernel), std::move(message)});
  }
};

}  // namespace mcl::san
