#include "san/lint.hpp"

#include <cstdio>
#include <sstream>

namespace mcl::san {

Report lint_launch(const ocl::KernelDef& def, const ocl::KernelArgs& args,
                   const ocl::NDRange& global, const ocl::NDRange& local,
                   ocl::ExecutorKind executor) {
  Report report;

  // H1: every slot in [0, max bound arg] must be set. (Slots past the last
  // one ever bound are invisible here — MiniCL has no arity metadata.)
  for (std::size_t i = 0; i < args.arg_count(); ++i) {
    if (!args.is_set(i)) {
      report.add(Rule::H1UnsetArg, Severity::Error, def.name,
                 "kernel argument " + std::to_string(i) +
                     " was never set (slots up to " +
                     std::to_string(args.arg_count() - 1) + " are bound)");
    }
  }

  // H2: executor routing. Workgroup-form kernels run barrier phases
  // internally; scalar barrier kernels need the fiber (or Checked) executor.
  const bool scalar_barrier =
      def.workgroup == nullptr && def.needs_barrier && def.scalar != nullptr;
  if (scalar_barrier && (executor == ocl::ExecutorKind::Loop ||
                         executor == ocl::ExecutorKind::Simd)) {
    report.add(Rule::H2BarrierExecutor, Severity::Error, def.name,
               "kernel requires barriers but the device routes it to a "
               "non-fiber executor; barrier() would fault mid-kernel");
  }
  if (executor == ocl::ExecutorKind::Simd && def.simd == nullptr) {
    report.add(Rule::H2BarrierExecutor, Severity::Error, def.name,
               "Simd executor selected but the kernel has no simd form");
  }

  // H3: NDRange shape.
  if (global.is_null() || global.total() == 0) {
    report.add(Rule::H3BadNDRange, Severity::Error, def.name,
               "global work size must be nonzero");
  } else if (!local.is_null()) {
    if (local.dims != global.dims) {
      std::ostringstream os;
      os << "local dimensionality (" << local.dims
         << ") differs from global (" << global.dims << ")";
      report.add(Rule::H3BadNDRange, Severity::Error, def.name, os.str());
    } else {
      for (std::size_t d = 0; d < global.dims; ++d) {
        if (local[d] == 0) {
          report.add(Rule::H3BadNDRange, Severity::Error, def.name,
                     "local size is zero in dimension " + std::to_string(d));
        } else if (global[d] % local[d] != 0) {
          std::ostringstream os;
          os << "global size " << global[d] << " is not divisible by local "
             << "size " << local[d] << " in dimension " << d
             << " (OpenCL 1.x rule)";
          report.add(Rule::H3BadNDRange, Severity::Error, def.name, os.str());
        }
      }
    }
  }
  return report;
}

Report lint_trace(std::uint64_t dropped_events) {
  Report report;
  if (dropped_events > 0) {
    report.add(Rule::T1TraceDrop, Severity::Warning, "<trace>",
               std::to_string(dropped_events) +
                   " trace events were dropped on ring overflow; the "
                   "exported timeline is truncated (raise the drain rate or "
                   "trace a shorter window)");
  }
  return report;
}

Report lint_profile(const std::string& kernel, bool claims_vectorized,
                    double simd_item_fraction) {
  Report report;
  constexpr double kMinUtilization = 0.05;
  if (claims_vectorized && simd_item_fraction < kMinUtilization) {
    char pct[32];
    std::snprintf(pct, sizeof(pct), "%.1f%%", simd_item_fraction * 100.0);
    report.add(Rule::P2ProfileContradiction, Severity::Warning, kernel,
               std::string("kernel registered a SIMD form but the measured "
                           "vector-lane utilization is ") +
                   pct +
                   "; the launch ran (nearly) all items scalar — check the "
                   "executor routing and that local size dim 0 covers the "
                   "vector width");
  }
  return report;
}

}  // namespace mcl::san
