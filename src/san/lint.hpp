// mclsan host-API lint: launch-time diagnostics computed without executing
// anything. The runtime enforces the Error-severity subset of these at
// enqueue (core::Status::InvalidKernelArgs / InvalidLaunch); this pass
// exists so tools and tests can surface the same findings as data.
#pragma once

#include <cstdint>

#include "ocl/kernel.hpp"
#include "ocl/types.hpp"
#include "san/diagnostics.hpp"

namespace mcl::san {

/// Lints one prospective launch: argument binding (H1), executor routing for
/// barrier kernels (H2), and NDRange/local-size shape (H3). `executor` is
/// the device-configured kind before Auto resolution.
[[nodiscard]] Report lint_launch(const ocl::KernelDef& def,
                                 const ocl::KernelArgs& args,
                                 const ocl::NDRange& global,
                                 const ocl::NDRange& local,
                                 ocl::ExecutorKind executor);

/// Lints an mcltrace session outcome (T1): a non-zero drop count means the
/// exported timeline is truncated and span/counter aggregates undercount.
/// Takes the count as a value so mcl_san stays independent of mcl_trace;
/// callers pass trace::dropped_events().
[[nodiscard]] Report lint_trace(std::uint64_t dropped_events);

/// Lints a measured kernel profile against the kernel's static IR descriptor
/// (P2): a kernel that registered a SIMD form but whose measured
/// vector-lane utilization is ~0 (simd_item_fraction below ~5%) is claiming
/// vectorization it never delivered — the executor routed it scalar (Fiber
/// fallback for barrier kernels, explicit executor override, or a local
/// size below the lane width). Values instead of prof types so mcl_san
/// stays independent of mcl_prof; callers pass
/// KernelProfile::simd_item_fraction().
[[nodiscard]] Report lint_profile(const std::string& kernel,
                                  bool claims_vectorized,
                                  double simd_item_fraction);

}  // namespace mcl::san
