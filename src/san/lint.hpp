// mclsan host-API lint: launch-time diagnostics computed without executing
// anything. The runtime enforces the Error-severity subset of these at
// enqueue (core::Status::InvalidKernelArgs / InvalidLaunch); this pass
// exists so tools and tests can surface the same findings as data.
#pragma once

#include "ocl/kernel.hpp"
#include "ocl/types.hpp"
#include "san/diagnostics.hpp"

namespace mcl::san {

/// Lints one prospective launch: argument binding (H1), executor routing for
/// barrier kernels (H2), and NDRange/local-size shape (H3). `executor` is
/// the device-configured kind before Auto resolution.
[[nodiscard]] Report lint_launch(const ocl::KernelDef& def,
                                 const ocl::KernelArgs& args,
                                 const ocl::NDRange& global,
                                 const ocl::NDRange& local,
                                 ocl::ExecutorKind executor);

}  // namespace mcl::san
