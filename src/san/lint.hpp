// mclsan host-API lint: launch-time diagnostics computed without executing
// anything. The runtime enforces the Error-severity subset of these at
// enqueue (core::Status::InvalidKernelArgs / InvalidLaunch); this pass
// exists so tools and tests can surface the same findings as data.
#pragma once

#include <cstdint>

#include "ocl/kernel.hpp"
#include "ocl/types.hpp"
#include "san/diagnostics.hpp"

namespace mcl::san {

/// Lints one prospective launch: argument binding (H1), executor routing for
/// barrier kernels (H2), and NDRange/local-size shape (H3). `executor` is
/// the device-configured kind before Auto resolution.
[[nodiscard]] Report lint_launch(const ocl::KernelDef& def,
                                 const ocl::KernelArgs& args,
                                 const ocl::NDRange& global,
                                 const ocl::NDRange& local,
                                 ocl::ExecutorKind executor);

/// Lints an mcltrace session outcome (T1): a non-zero drop count means the
/// exported timeline is truncated and span/counter aggregates undercount.
/// Takes the count as a value so mcl_san stays independent of mcl_trace;
/// callers pass trace::dropped_events().
[[nodiscard]] Report lint_trace(std::uint64_t dropped_events);

}  // namespace mcl::san
