#include "san/static_analysis.hpp"

#include <cstdlib>
#include <set>
#include <sstream>

#include "verify/interval.hpp"
#include "verify/verify.hpp"

namespace mcl::san {

namespace {

using veclegal::ArrayInfo;
using veclegal::ArrayRef;
using veclegal::KernelIr;
using veclegal::Stmt;
using veclegal::Subscript;

/// Pretty name for an array id ("a0", or "a0 (local)" etc. via info).
std::string array_name(const KernelIr& ir, int id) {
  std::ostringstream os;
  os << "array " << id;
  if (const ArrayInfo* info = ir.array_info(id); info != nullptr) {
    if (info->local) os << " (local)";
    if (info->read_only) os << " (read-only)";
  }
  return os.str();
}

std::string subscript_text(const Subscript& s) {
  std::ostringstream os;
  if (s.scale == 0) {
    os << "[" << s.offset << "]";
  } else {
    os << "[";
    if (s.scale != 1) os << s.scale << "*";
    os << "i";
    if (s.offset > 0) os << "+" << s.offset;
    if (s.offset < 0) os << s.offset;
    os << "]";
  }
  return os.str();
}

}  // namespace

bool items_collide(const Subscript& a, const Subscript& b, long long n,
                   long long exact_solve_limit) {
  // All solver arithmetic runs in __int128: every intermediate here is a sum
  // or product of two long long values (scale*i + offset, offset - offset),
  // which can exceed the 64-bit range for LLONG_MAX-adjacent extents and
  // offsets. 128 bits holds any such value exactly, so the solver needs no
  // overflow side-conditions (and no UB — llabs(LLONG_MIN) included).
  using verify::Wide;
  const bool many_items = (n == 0 || n > 1);
  const Wide as = a.scale, ao = a.offset;
  const Wide bs = b.scale, bo = b.offset;
  if (as == 0 && bs == 0) {
    // Every item touches one element through each access.
    return ao == bo && many_items;
  }
  if (as == 0 || bs == 0) {
    // One access pins a single element hit by every item; the other touches
    // it iff some item j maps onto it. Any second item then collides.
    const Wide fixed_off = as == 0 ? ao : bo;
    const Wide scale = as == 0 ? bs : as;
    const Wide base = as == 0 ? bo : ao;
    const Wide num = fixed_off - base;
    if (num % scale != 0) return false;
    const Wide j = num / scale;
    return (n == 0 || (j >= 0 && j < n)) && many_items;
  }
  if (as == bs) {
    // s*i + o1 == s*j + o2  =>  j = i + (o1 - o2) / s.
    const Wide num = ao - bo;
    if (num % as != 0) return false;
    const Wide d = num / as;
    if (d == 0) return false;  // same item only: not an inter-item conflict
    return n == 0 || verify::wide_abs(d) < n;
  }
  // Different nonzero scales: solve exactly when the space is small enough.
  if (n > 0 && n <= exact_solve_limit) {
    for (long long i = 0; i < n; ++i) {
      const Wide num = as * Wide(i) + ao - bo;
      if (num % bs != 0) continue;
      const Wide j = num / bs;
      if (j >= 0 && j < n && j != i) return true;
    }
    return false;
  }
  // Unknown/huge space: the equation a.scale*i - b.scale*j = b.offset -
  // a.offset has integer solutions iff gcd divides the RHS; treat solvable
  // as colliding (conservative, like veclegal's unequal-scale L3 handling).
  return (bo - ao) % verify::wide_gcd(as, bs) == 0;
}

Report analyze_kernel(const std::string& kernel_name, const KernelIr& ir,
                      const StaticOptions& options) {
  Report report;
  const auto& body = ir.body;
  const long long n = body.trip_count;

  // Epoch index per statement: number of barriers strictly before it.
  std::vector<int> epoch(body.stmts.size(), 0);
  {
    int e = 0;
    for (std::size_t k = 0; k < body.stmts.size(); ++k) {
      epoch[k] = e;
      if (body.stmts[k].barrier) ++e;
    }
  }

  // The verify dataflow pass: uniformity (generalizing P1 beyond the blunt
  // `divergent` bit to guard temps proven item-dependent), dead stores (V1)
  // and redundant barriers (V2).
  const verify::KernelFacts facts = verify::analyze(kernel_name, ir);

  // P1: barrier placement.
  for (std::size_t k = 0; k < body.stmts.size(); ++k) {
    const Stmt& s = body.stmts[k];
    if (!s.barrier) continue;
    if (s.divergent) {
      report.add(Rule::P1BarrierDivergence, Severity::Error, kernel_name,
                 "barrier in divergent control flow ('" + s.text +
                     "'): some workitems of a group would skip it");
    } else if (k < facts.stmt_uniform.size() &&
               facts.stmt_uniform[k] == verify::Uniformity::ItemDependent) {
      report.add(Rule::P1BarrierDivergence, Severity::Error, kernel_name,
                 "barrier under an item-dependent guard ('" + s.text +
                     "'): the uniformity dataflow cannot prove every "
                     "workitem of a group reaches it");
    }
  }

  // V1/V2: verify's lint findings, at Warning severity — the kernel still
  // computes the right answer, it just wastes work.
  for (const int k : facts.dead_stores) {
    report.add(Rule::V1DeadStore, Severity::Warning, kernel_name,
               "dead store ('" + body.stmts[static_cast<std::size_t>(k)].text +
                   "'): the element is unconditionally overwritten before "
                   "any workitem can read it");
  }
  for (const int k : facts.redundant_barriers) {
    report.add(Rule::V2RedundantBarrier, Severity::Warning, kernel_name,
               "redundant barrier ('" +
                   body.stmts[static_cast<std::size_t>(k)].text +
                   "'): no potentially communicating accesses in its "
                   "adjacent epochs (given the other barriers, it separates "
                   "nothing)");
  }

  // W1 + B1 per access.
  auto check_access = [&](const Stmt& s, const ArrayRef& r, bool is_write) {
    const ArrayInfo* info = ir.array_info(r.array);
    if (info == nullptr) return;
    if (is_write && info->read_only) {
      report.add(Rule::W1ReadOnlyWrite, Severity::Error, kernel_name,
                 "write to " + array_name(ir, r.array) + " in '" + s.text +
                     "'");
    }
    if (info->extent > 0 && n > 0) {
      // Interval arithmetic in __int128: scale*(n-1) + offset overflows
      // long long for LLONG_MAX-adjacent extents (satellite of ISSUE 6).
      const verify::Interval iv =
          verify::Interval::affine(r.subscript.scale, r.subscript.offset,
                                   /*first=*/0, /*count=*/n);
      if (!iv.within(info->extent)) {
        std::ostringstream os;
        os << (is_write ? "store" : "load") << " " << array_name(ir, r.array)
           << subscript_text(r.subscript) << " spans " << iv.to_string()
           << " but the extent is " << info->extent << " ('" << s.text
           << "')";
        report.add(Rule::B1OutOfBounds, Severity::Error, kernel_name,
                   os.str());
      }
    }
  };
  for (const Stmt& s : body.stmts) {
    if (s.array_write) check_access(s, *s.array_write, true);
    for (const ArrayRef& r : s.array_reads) check_access(s, r, false);
  }

  // S2/S3: inter-workitem conflicts. Barrier epochs clear conflicts only on
  // local (workgroup-scoped) arrays; global arrays are shared across groups.
  std::set<std::string> seen;  // dedup repeated findings
  auto conflict = [&](std::size_t kw, std::size_t ko, const ArrayRef& w,
                      const ArrayRef& other, bool other_is_write) {
    if (w.array != other.array) return;
    const ArrayInfo* info = ir.array_info(w.array);
    const bool local = info != nullptr && info->local;
    if (local && epoch[kw] != epoch[ko]) return;  // barrier-separated
    if (!items_collide(w.subscript, other.subscript, n,
                       options.exact_solve_limit))
      return;
    const Stmt& sw = body.stmts[kw];
    const Stmt& so = body.stmts[ko];
    std::ostringstream os;
    os << (other_is_write ? "write-write" : "read-write")
       << " race: distinct workitems touch one element of "
       << array_name(ir, w.array) << " via '" << sw.text << "'";
    if (&sw != &so) os << " and '" << so.text << "'";
    if (!local) os << " (a barrier would not help: global memory is shared "
                      "across workgroups)";
    const std::string key = os.str();
    if (!seen.insert(key).second) return;
    report.add(other_is_write ? Rule::S2WriteWriteRace : Rule::S3ReadWriteRace,
               Severity::Error, kernel_name, key);
  };
  for (std::size_t kw = 0; kw < body.stmts.size(); ++kw) {
    const Stmt& sw = body.stmts[kw];
    if (!sw.array_write) continue;
    for (std::size_t ko = 0; ko < body.stmts.size(); ++ko) {
      const Stmt& so = body.stmts[ko];
      // Write-write: include the self pair (a scale-0 store races with its
      // own copies in other workitems — the S1 generalization); order pairs
      // once (ko >= kw) to avoid duplicates.
      if (so.array_write && ko >= kw) {
        conflict(kw, ko, *sw.array_write, *so.array_write, true);
      }
      for (const ArrayRef& r : so.array_reads) {
        conflict(kw, ko, *sw.array_write, r, false);
      }
    }
  }

  if (body.stmts.empty()) {
    report.add(Rule::H3BadNDRange, Severity::Note, kernel_name,
               "IR descriptor has no statements; nothing to check");
  }
  return report;
}

std::shared_ptr<const Report> analyze_kernel_cached(
    const std::string& kernel_name, const StaticOptions& options) {
  auto& registry = veclegal::KernelIrRegistry::instance();
  const KernelIr* ir = registry.find(kernel_name);
  if (ir == nullptr) return nullptr;
  return registry.memoize<Report>(
      kernel_name, "san.report:" + std::to_string(options.exact_solve_limit),
      [&] { return analyze_kernel(kernel_name, *ir, options); });
}

}  // namespace mcl::san
