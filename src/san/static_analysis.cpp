#include "san/static_analysis.hpp"

#include <cstdlib>
#include <numeric>
#include <set>
#include <sstream>

namespace mcl::san {

namespace {

using veclegal::ArrayInfo;
using veclegal::ArrayRef;
using veclegal::KernelIr;
using veclegal::Stmt;
using veclegal::Subscript;

/// Pretty name for an array id ("a0", or "a0 (local)" etc. via info).
std::string array_name(const KernelIr& ir, int id) {
  std::ostringstream os;
  os << "array " << id;
  if (const ArrayInfo* info = ir.array_info(id); info != nullptr) {
    if (info->local) os << " (local)";
    if (info->read_only) os << " (read-only)";
  }
  return os.str();
}

std::string subscript_text(const Subscript& s) {
  std::ostringstream os;
  if (s.scale == 0) {
    os << "[" << s.offset << "]";
  } else {
    os << "[";
    if (s.scale != 1) os << s.scale << "*";
    os << "i";
    if (s.offset > 0) os << "+" << s.offset;
    if (s.offset < 0) os << s.offset;
    os << "]";
  }
  return os.str();
}

}  // namespace

bool items_collide(const Subscript& a, const Subscript& b, long long n,
                   long long exact_solve_limit) {
  const bool many_items = (n == 0 || n > 1);
  if (a.scale == 0 && b.scale == 0) {
    // Every item touches one element through each access.
    return a.offset == b.offset && many_items;
  }
  if (a.scale == 0 || b.scale == 0) {
    // One access pins a single element hit by every item; the other touches
    // it iff some item j maps onto it. Any second item then collides.
    const Subscript& fixed = a.scale == 0 ? a : b;
    const Subscript& strided = a.scale == 0 ? b : a;
    const long long num = fixed.offset - strided.offset;
    if (num % strided.scale != 0) return false;
    const long long j = num / strided.scale;
    return (n == 0 || (j >= 0 && j < n)) && many_items;
  }
  if (a.scale == b.scale) {
    // s*i + o1 == s*j + o2  =>  j = i + (o1 - o2) / s.
    const long long num = a.offset - b.offset;
    if (num % a.scale != 0) return false;
    const long long d = num / a.scale;
    if (d == 0) return false;  // same item only: not an inter-item conflict
    return n == 0 || std::llabs(d) < n;
  }
  // Different nonzero scales: solve exactly when the space is small enough.
  if (n > 0 && n <= exact_solve_limit) {
    for (long long i = 0; i < n; ++i) {
      const long long num = a.scale * i + a.offset - b.offset;
      if (num % b.scale != 0) continue;
      const long long j = num / b.scale;
      if (j >= 0 && j < n && j != i) return true;
    }
    return false;
  }
  // Unknown/huge space: the equation a.scale*i - b.scale*j = b.offset -
  // a.offset has integer solutions iff gcd divides the RHS; treat solvable
  // as colliding (conservative, like veclegal's unequal-scale L3 handling).
  const long long g = std::gcd(std::llabs(a.scale), std::llabs(b.scale));
  return (b.offset - a.offset) % g == 0;
}

Report analyze_kernel(const std::string& kernel_name, const KernelIr& ir,
                      const StaticOptions& options) {
  Report report;
  const auto& body = ir.body;
  const long long n = body.trip_count;

  // Epoch index per statement: number of barriers strictly before it.
  std::vector<int> epoch(body.stmts.size(), 0);
  {
    int e = 0;
    for (std::size_t k = 0; k < body.stmts.size(); ++k) {
      epoch[k] = e;
      if (body.stmts[k].barrier) ++e;
    }
  }

  // P1: barrier placement.
  for (const Stmt& s : body.stmts) {
    if (s.barrier && s.divergent) {
      report.add(Rule::P1BarrierDivergence, Severity::Error, kernel_name,
                 "barrier in divergent control flow ('" + s.text +
                     "'): some workitems of a group would skip it");
    }
  }

  // W1 + B1 per access.
  auto check_access = [&](const Stmt& s, const ArrayRef& r, bool is_write) {
    const ArrayInfo* info = ir.array_info(r.array);
    if (info == nullptr) return;
    if (is_write && info->read_only) {
      report.add(Rule::W1ReadOnlyWrite, Severity::Error, kernel_name,
                 "write to " + array_name(ir, r.array) + " in '" + s.text +
                     "'");
    }
    if (info->extent > 0 && n > 0) {
      const long long at0 = r.subscript.offset;
      const long long atN = r.subscript.scale * (n - 1) + r.subscript.offset;
      const long long lo = std::min(at0, atN);
      const long long hi = std::max(at0, atN);
      if (lo < 0 || hi >= info->extent) {
        std::ostringstream os;
        os << (is_write ? "store" : "load") << " " << array_name(ir, r.array)
           << subscript_text(r.subscript) << " spans [" << lo << ", " << hi
           << "] but the extent is " << info->extent << " ('" << s.text
           << "')";
        report.add(Rule::B1OutOfBounds, Severity::Error, kernel_name,
                   os.str());
      }
    }
  };
  for (const Stmt& s : body.stmts) {
    if (s.array_write) check_access(s, *s.array_write, true);
    for (const ArrayRef& r : s.array_reads) check_access(s, r, false);
  }

  // S2/S3: inter-workitem conflicts. Barrier epochs clear conflicts only on
  // local (workgroup-scoped) arrays; global arrays are shared across groups.
  std::set<std::string> seen;  // dedup repeated findings
  auto conflict = [&](std::size_t kw, std::size_t ko, const ArrayRef& w,
                      const ArrayRef& other, bool other_is_write) {
    if (w.array != other.array) return;
    const ArrayInfo* info = ir.array_info(w.array);
    const bool local = info != nullptr && info->local;
    if (local && epoch[kw] != epoch[ko]) return;  // barrier-separated
    if (!items_collide(w.subscript, other.subscript, n,
                       options.exact_solve_limit))
      return;
    const Stmt& sw = body.stmts[kw];
    const Stmt& so = body.stmts[ko];
    std::ostringstream os;
    os << (other_is_write ? "write-write" : "read-write")
       << " race: distinct workitems touch one element of "
       << array_name(ir, w.array) << " via '" << sw.text << "'";
    if (&sw != &so) os << " and '" << so.text << "'";
    if (!local) os << " (a barrier would not help: global memory is shared "
                      "across workgroups)";
    const std::string key = os.str();
    if (!seen.insert(key).second) return;
    report.add(other_is_write ? Rule::S2WriteWriteRace : Rule::S3ReadWriteRace,
               Severity::Error, kernel_name, key);
  };
  for (std::size_t kw = 0; kw < body.stmts.size(); ++kw) {
    const Stmt& sw = body.stmts[kw];
    if (!sw.array_write) continue;
    for (std::size_t ko = 0; ko < body.stmts.size(); ++ko) {
      const Stmt& so = body.stmts[ko];
      // Write-write: include the self pair (a scale-0 store races with its
      // own copies in other workitems — the S1 generalization); order pairs
      // once (ko >= kw) to avoid duplicates.
      if (so.array_write && ko >= kw) {
        conflict(kw, ko, *sw.array_write, *so.array_write, true);
      }
      for (const ArrayRef& r : so.array_reads) {
        conflict(kw, ko, *sw.array_write, r, false);
      }
    }
  }

  if (body.stmts.empty()) {
    report.add(Rule::H3BadNDRange, Severity::Note, kernel_name,
               "IR descriptor has no statements; nothing to check");
  }
  return report;
}

}  // namespace mcl::san
