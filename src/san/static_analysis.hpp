// mclsan static mode: kernel-legality checking on the veclegal affine IR.
//
// Generalizes veclegal rule S1 (write scale must be nonzero) into full
// inter-workitem conflict analysis over arbitrary affine subscript pairs:
//
//   S2  two statements write the same element of one array from two distinct
//       workitems (write-write race);
//   S3  one statement writes an element another workitem reads (read-write
//       race). Intra-item read-modify-write of one element (distance 0) is
//       NOT a race — that is the Fig 11 FMUL shape, legal under SPMD.
//   B1  an affine access s*i + o, i in [0, trip), falls outside the array's
//       declared extent;
//   P1  a barrier statement sits in divergent (item-id-dependent) control
//       flow — some workitems of a group would skip it;
//   W1  a statement writes an array declared read-only.
//
// Barrier statements split the body into epochs. A barrier synchronizes the
// workitems of ONE workgroup, so conflicts on local (workgroup-scoped)
// arrays in different epochs are not races; global arrays are shared across
// groups, which a barrier does not synchronize, so epoch separation does not
// clear global-array conflicts (the runtime Checked executor, which knows
// the group decomposition, is more precise).
#pragma once

#include <memory>

#include "san/diagnostics.hpp"
#include "veclegal/kernel_ir.hpp"

namespace mcl::san {

struct StaticOptions {
  /// Iteration spaces up to this size are solved exactly (brute force over
  /// the Diophantine collision equation); larger/unknown spaces use the
  /// conservative gcd solvability test.
  long long exact_solve_limit = 1 << 16;
};

/// Analyzes one kernel IR descriptor; `kernel_name` labels the diagnostics.
[[nodiscard]] Report analyze_kernel(const std::string& kernel_name,
                                    const veclegal::KernelIr& ir,
                                    const StaticOptions& options = {});

/// Registry-backed memoized form for kernels registered in KernelIrRegistry:
/// the report is computed once per (kernel, exact_solve_limit) and served
/// from the registry's analysis cache on later calls, so per-launch host
/// lint stops re-running the conflict solver. Re-registering the kernel's IR
/// invalidates the entry. Returns nullptr for unregistered kernels.
[[nodiscard]] std::shared_ptr<const Report> analyze_kernel_cached(
    const std::string& kernel_name, const StaticOptions& options = {});

/// True when two affine accesses can touch the same element from two
/// DISTINCT workitems i != j in [0, n) (n = 0 means unknown/unbounded):
/// exists i != j with a.scale*i + a.offset == b.scale*j + b.offset.
/// Exposed for tests.
[[nodiscard]] bool items_collide(const veclegal::Subscript& a,
                                 const veclegal::Subscript& b, long long n,
                                 long long exact_solve_limit = 1 << 16);

}  // namespace mcl::san
