#include "serve/serve.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <utility>

#include <cinttypes>
#include <cstdio>

#include "core/time.hpp"
#include "obs/obs.hpp"
#include "ocl/kernel.hpp"
#include "threading/affinity.hpp"
#include "trace/trace.hpp"
#include "tune/tune.hpp"

namespace mcl::serve {

namespace detail {

struct Request {
  enum class Op { Launch, Write, Read };
  enum class RState { Pending, Forwarded, Done };

  Op op = Op::Launch;

  // Launch payload (kernel resolved at submit through the tenant cache).
  LaunchSpec launch;
  const ocl::KernelDef* def = nullptr;

  // Transfer payload.
  ocl::Buffer* buffer = nullptr;
  std::size_t offset = 0;
  std::size_t bytes = 0;
  const void* src = nullptr;
  void* dst = nullptr;

  std::vector<ocl::AsyncEventPtr> deps;
  ocl::AsyncEventPtr done;        ///< user event completed by the server
  std::uint64_t cost = 1;         ///< WFQ cost units
  std::uint64_t submit_ns = 0;
  std::uint64_t forward_ns = 0;   ///< stamped when dispatched to the queue
  std::uint64_t deadline_ns = 0;  ///< pending-phase deadline; 0 = none
  std::uint64_t ctx = 0;          ///< mclobs context id (0 = obs off)
  TenantState* tenant = nullptr;

  // Guarded by the server mutex.
  RState rstate = RState::Pending;
  bool wake_registered = false;
  bool held = false;  ///< MCL_OBS_INJECT=hang: never dispatch this request
};

struct TenantState {
  TenantConfig cfg;
  std::uint32_t id = 0;  ///< 1-based creation index; packed into context ids
  std::unique_ptr<ocl::CommandQueue> queue;

  // Guarded by the server mutex.
  std::deque<std::shared_ptr<Request>> pending;
  double finish_tag = 0.0;  ///< WFQ virtual finish time of the last dispatch
  std::unordered_map<std::string, const ocl::KernelDef*> kernel_cache;
  SessionStats stats;  ///< name/outstanding kept current; counters cumulative

  std::condition_variable space_cv;  ///< admission + Session::finish waiters
  prof::Histogram latency;
  prof::Histogram admission;  ///< submit -> forward (serve-side wait)
  prof::Histogram service;    ///< forward -> done (queue + execution)
};

}  // namespace detail

namespace {

using detail::Request;
using detail::TenantState;

std::uint64_t now_ns() { return core::steady_now_ns(); }

std::uint64_t launch_cost(const ocl::NDRange& global) {
  return std::max<std::uint64_t>(1, global.total());
}

std::uint64_t transfer_cost(std::size_t bytes) {
  return std::max<std::uint64_t>(1, bytes / 256);
}

std::size_t offset_origin(const ocl::NDRange& offset) {
  return offset.is_null() ? 0 : offset.size[0];
}

bool ndrange_equal(const ocl::NDRange& a, const ocl::NDRange& b) {
  return a.dims == b.dims && a.size[0] == b.size[0] && a.size[1] == b.size[1] &&
         a.size[2] == b.size[2];
}

/// True when `next` continues the 1D id range of the batch started by `head`
/// with identical kernel, bindings, and workgroup shape — the only shape the
/// fuser accepts (see batching notes in serve.hpp).
bool fusable(const Request& head, const Request& next,
             std::size_t accumulated_items) {
  return next.op == Request::Op::Launch && next.def == head.def &&
         head.launch.global.dims == 1 && next.launch.global.dims == 1 &&
         ndrange_equal(next.launch.local, head.launch.local) &&
         next.launch.args == head.launch.args &&
         offset_origin(next.launch.offset) ==
             offset_origin(head.launch.offset) + accumulated_items;
}

}  // namespace

// --- Ticket ---------------------------------------------------------------------

void Ticket::wait() const {
  core::check(valid(), core::Status::InvalidOperation, "empty ticket");
  req_->done->wait();
}

bool Ticket::wait_for(std::chrono::nanoseconds timeout) const {
  core::check(valid(), core::Status::InvalidOperation, "empty ticket");
  return req_->done->wait_for(timeout);
}

bool Ticket::complete() const {
  core::check(valid(), core::Status::InvalidOperation, "empty ticket");
  return req_->done->complete();
}

core::Status Ticket::status() const {
  core::check(valid(), core::Status::InvalidOperation, "empty ticket");
  return req_->done->status();
}

ocl::AsyncEventPtr Ticket::event() const {
  core::check(valid(), core::Status::InvalidOperation, "empty ticket");
  return req_->done;
}

std::uint64_t Ticket::context() const {
  core::check(valid(), core::Status::InvalidOperation, "empty ticket");
  return req_->ctx;
}

// --- Server ---------------------------------------------------------------------

struct Server::ForwardItem {
  TenantState* tenant = nullptr;
  std::vector<std::shared_ptr<Request>> reqs;  ///< head first, fused after
};

struct Server::PassResult {
  std::vector<std::shared_ptr<Request>> expired;
  std::vector<ForwardItem> forwards;
  std::vector<ocl::AsyncEventPtr> watches;  ///< deps to register wakes on
};

Server::Server(ocl::Context& context, ServerConfig config)
    : context_(&context), config_(config) {
  max_in_flight_ =
      config_.max_in_flight != 0
          ? config_.max_in_flight
          : 2 * std::max(1, threading::logical_cpu_count());
  latency_all_ = prof::histogram("serve.latency_ns");
  admission_all_ = prof::histogram("serve.admission_ns");
  service_all_ = prof::histogram("serve.service_ns");
  // Arm any MCL_OBS_INJECT fault once per server (flight-recorder tests).
  const obs::Inject fault = obs::inject();
  hang_pending_ = fault == obs::Inject::Hang;
  error_pending_.store(fault == obs::Inject::Error, std::memory_order_relaxed);
  // Per-tenant queue state rides along in every `.mclobs` anomaly dump.
  // Unregistered at the very end of ~Server, so dumps during teardown still
  // see live (mutex_-serialized) state.
  obs_section_ = obs::register_section(
      "serve", [this] { return obs_section_json(); });
  if (!config_.manual_schedule) {
    scheduler_ = std::thread([this] { scheduler_loop(); });
  }
}

Server::~Server() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
    signal_ = true;
    sched_cv_.notify_all();
    for (auto& tenant : tenants_) tenant->space_cv.notify_all();
  }
  if (scheduler_.joinable()) scheduler_.join();

  // Fail whatever never dispatched, then drain what did. The transitive
  // finish() covers our completion callbacks, so by the time the queues are
  // drained no thread can still touch server state.
  std::vector<std::shared_ptr<Request>> orphaned;
  {
    std::lock_guard lock(mutex_);
    for (auto& tenant : tenants_) {
      for (auto& req : tenant->pending) {
        req->rstate = Request::RState::Done;
        tenant->stats.cancelled++;
        tenant->stats.outstanding--;
        orphaned.push_back(std::move(req));
      }
      tenant->pending.clear();
      tenant->space_cv.notify_all();
    }
  }
  for (const auto& req : orphaned) {
    req->done->set_user_status(core::Status::Cancelled);
  }
  for (auto& tenant : tenants_) tenant->queue->finish();
  obs::unregister_section(obs_section_);
}

std::string Server::obs_section_json() const {
  std::lock_guard lock(mutex_);
  std::string out = "{\"in_flight\":" + std::to_string(in_flight_) +
                    ",\"max_in_flight\":" + std::to_string(max_in_flight_) +
                    ",\"tenants\":[";
  bool first = true;
  for (const auto& tenant : tenants_) {
    if (!first) out += ',';
    first = false;
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "{\"name\":\"%s\",\"id\":%u,\"pending\":%zu,\"outstanding\":%zu,"
        "\"submitted\":%" PRIu64 ",\"completed\":%" PRIu64
        ",\"failed\":%" PRIu64 ",\"cancelled\":%" PRIu64
        ",\"timed_out\":%" PRIu64 "}",
        tenant->cfg.name.c_str(), tenant->id, tenant->pending.size(),
        static_cast<std::size_t>(tenant->stats.outstanding),
        tenant->stats.submitted, tenant->stats.completed, tenant->stats.failed,
        tenant->stats.cancelled, tenant->stats.timed_out);
    out += buf;
  }
  out += "]}";
  return out;
}

Session Server::create_session(TenantConfig config) {
  core::check(!config.name.empty(), core::Status::InvalidValue,
              "tenant name must be nonempty");
  core::check(config.weight > 0.0, core::Status::InvalidValue,
              "tenant weight must be positive");
  core::check(config.max_queue_depth > 0, core::Status::InvalidValue,
              "tenant queue depth must be nonzero");
  auto tenant = std::make_unique<TenantState>();
  tenant->cfg = config;
  const ocl::QueueProperties props = config.in_order
                                         ? ocl::QueueProperties::Default
                                         : ocl::QueueProperties::OutOfOrder;
  // Device-aware sessions: a tenant may pin its queue to one device of the
  // context (e.g. a CPU sub-device shard). Validated by the CommandQueue
  // ctor (DeviceNotFound when the device is not in the context).
  tenant->queue = config.device != nullptr
                      ? std::make_unique<ocl::CommandQueue>(*context_,
                                                            *config.device,
                                                            props)
                      : std::make_unique<ocl::CommandQueue>(*context_, props);
  tenant->stats.name = config.name;
  tenant->latency = prof::histogram("serve.latency_ns." + config.name);
  tenant->admission = prof::histogram("serve.admission_ns." + config.name);
  tenant->service = prof::histogram("serve.service_ns." + config.name);

  Session session;
  session.server_ = this;
  {
    std::lock_guard lock(mutex_);
    core::check(!stop_, core::Status::InvalidOperation,
                "server is shutting down");
    for (const auto& existing : tenants_) {
      core::check(existing->cfg.name != config.name, core::Status::InvalidValue,
                  "duplicate tenant name");
    }
    // New arrivals start at the current virtual time: no retroactive credit
    // for the period before the tenant existed.
    tenant->finish_tag = virtual_time_;
    tenant->id = static_cast<std::uint32_t>(tenants_.size() + 1);
    tenants_.push_back(std::move(tenant));
    session.state_ = tenants_.back().get();
  }
  return session;
}

std::shared_ptr<Request> Server::admit(TenantState& tenant,
                                       std::shared_ptr<Request> req,
                                       bool blocking, bool* rejected) {
  std::unique_lock lock(mutex_);
  core::check(!stop_, core::Status::InvalidOperation,
              "server is shutting down");
  if (tenant.stats.outstanding >= tenant.cfg.max_queue_depth) {
    const bool block = blocking && tenant.cfg.admission == AdmissionPolicy::Block;
    if (!block) {
      tenant.stats.rejected++;
      *rejected = true;
      return nullptr;
    }
    tenant.space_cv.wait(lock, [&] {
      return stop_ || tenant.stats.outstanding < tenant.cfg.max_queue_depth;
    });
    core::check(!stop_, core::Status::InvalidOperation,
                "server is shutting down");
  }
  const std::uint64_t now = now_ns();
  req->submit_ns = now;
  if (tenant.cfg.default_timeout_ns != 0) {
    req->deadline_ns = now + tenant.cfg.default_timeout_ns;
  }
  req->tenant = &tenant;
  // Causal identity is born here: tenant in the top bits, a process-wide
  // sequence below. The Submit record itself is appended by the caller
  // after the lock drops (obs dumps must never run under mutex_).
  if (obs::enabled()) req->ctx = obs::mint_context(tenant.id);
  req->done = ocl::AsyncEvent::create_user();
  tenant.pending.push_back(req);
  tenant.stats.submitted++;
  tenant.stats.outstanding++;
  signal_ = true;
  sched_cv_.notify_one();
  return req;
}

bool Server::cancel(const Ticket& ticket) {
  core::check(ticket.valid(), core::Status::InvalidOperation, "empty ticket");
  const std::shared_ptr<Request>& req = ticket.req_;
  {
    std::lock_guard lock(mutex_);
    if (req->rstate != Request::RState::Pending) return false;
    TenantState& tenant = *req->tenant;
    auto it = std::find(tenant.pending.begin(), tenant.pending.end(), req);
    if (it == tenant.pending.end()) return false;
    tenant.pending.erase(it);
    req->rstate = Request::RState::Done;
    tenant.stats.cancelled++;
    tenant.stats.outstanding--;
    tenant.space_cv.notify_all();
    signal_ = true;
    sched_cv_.notify_one();
  }
  // Record before completing the user event: dependents fail inline below,
  // and the dump (if one fires) should show the cancellation first.
  if (obs::enabled()) {
    obs::anomaly(obs::Kind::Cancel, req->ctx, "ticket cancelled",
                 core::Status::Cancelled);
  }
  req->done->set_user_status(core::Status::Cancelled);
  return true;
}

ServerStats Server::stats() const {
  std::lock_guard lock(mutex_);
  ServerStats out;
  out.in_flight = in_flight_;
  out.forwarded_commands = forwarded_commands_;
  out.fused_requests = fused_requests_;
  out.tenants.reserve(tenants_.size());
  for (const auto& tenant : tenants_) out.tenants.push_back(tenant->stats);
  return out;
}

std::uint64_t Server::nearest_deadline_locked() const {
  std::uint64_t nearest = 0;
  for (const auto& tenant : tenants_) {
    for (const auto& req : tenant->pending) {
      if (req->deadline_ns != 0 &&
          (nearest == 0 || req->deadline_ns < nearest)) {
        nearest = req->deadline_ns;
      }
    }
  }
  return nearest;
}

void Server::run_pass_locked(PassResult& out) {
  const std::uint64_t now = now_ns();

  // Phase 1: expire pending requests whose deadline passed (anywhere in the
  // stream, not just heads — a deep queue must not shield stale work).
  for (auto& tenant : tenants_) {
    for (auto it = tenant->pending.begin(); it != tenant->pending.end();) {
      Request& req = **it;
      if (req.deadline_ns != 0 && now >= req.deadline_ns) {
        req.rstate = Request::RState::Done;
        tenant->stats.timed_out++;
        tenant->stats.outstanding--;
        out.expired.push_back(std::move(*it));
        it = tenant->pending.erase(it);
        tenant->space_cv.notify_all();
      } else {
        ++it;
      }
    }
  }

  // Phase 2: WFQ dispatch while the in-flight window has room. A head is
  // eligible only when all its dependencies are terminal — forwarding a
  // dep-blocked command would occupy a window slot without making progress,
  // and enough of those deadlock the window (the deps may be user events of
  // requests still queued behind it).
  while (in_flight_ + out.forwards.size() < max_in_flight_) {
    TenantState* best = nullptr;
    double best_tag = 0.0;
    for (auto& tenant : tenants_) {
      if (tenant->pending.empty()) continue;
      Request& head = *tenant->pending.front();
      // MCL_OBS_INJECT=hang: park the first eligible head forever. Its
      // pending-phase deadline (if any) still expires in phase 1, driving
      // the timeout -> anomaly-dump path end to end.
      if (head.held) continue;
      if (hang_pending_) {
        hang_pending_ = false;
        head.held = true;
        if (obs::enabled()) {
          obs::Record r;
          r.ts_ns = now_ns();
          r.ctx = head.ctx;
          r.tenant = tenant->id;
          r.kind = obs::Kind::Inject;
          r.detail = "hang: request parked by MCL_OBS_INJECT";
          obs::record(r);
        }
        continue;
      }
      const bool eligible =
          std::all_of(head.deps.begin(), head.deps.end(),
                      [](const ocl::AsyncEventPtr& d) { return d->complete(); });
      if (!eligible) {
        for (const ocl::AsyncEventPtr& d : head.deps) {
          if (!head.wake_registered && !d->complete()) out.watches.push_back(d);
        }
        head.wake_registered = true;
        continue;
      }
      const double start = std::max(virtual_time_, tenant->finish_tag);
      const double tag =
          start + static_cast<double>(head.cost) / tenant->cfg.weight;
      if (best == nullptr || tag < best_tag) {
        best = tenant.get();
        best_tag = tag;
      }
    }
    if (best == nullptr) break;

    ForwardItem item;
    item.tenant = best;
    const double start = std::max(virtual_time_, best->finish_tag);
    virtual_time_ = start;
    best->finish_tag = best_tag;

    auto head = best->pending.front();
    best->pending.pop_front();
    head->rstate = Request::RState::Forwarded;
    std::uint64_t accumulated = head->op == Request::Op::Launch
                                    ? head->launch.global.total()
                                    : 0;
    item.reqs.push_back(std::move(head));
    const Request& h = *item.reqs.front();
    if (h.op == Request::Op::Launch && best->cfg.batch_max_items > 0) {
      while (!best->pending.empty()) {
        Request& next = *best->pending.front();
        if (accumulated + next.launch.global.total() >
                best->cfg.batch_max_items ||
            !fusable(h, next, accumulated) ||
            !std::all_of(
                next.deps.begin(), next.deps.end(),
                [](const ocl::AsyncEventPtr& d) { return d->complete(); })) {
          break;
        }
        accumulated += next.launch.global.total();
        auto fused = best->pending.front();
        best->pending.pop_front();
        fused->rstate = Request::RState::Forwarded;
        best->finish_tag +=
            static_cast<double>(fused->cost) / best->cfg.weight;
        best->stats.batched++;
        fused_requests_++;
        item.reqs.push_back(std::move(fused));
      }
      if (item.reqs.size() > 1) best->stats.batched++;  // the head rode too
    }
    best->stats.forwarded++;
    best->space_cv.notify_all();
    out.forwards.push_back(std::move(item));
  }
}

void Server::forward(ForwardItem& item) {
  Request& head = *item.reqs.front();
  TenantState& tenant = *item.tenant;

  // MCL_OBS_INJECT=error: fail the first forwarded item without touching
  // the queue — exercises the error -> anomaly-dump path deterministically.
  if (error_pending_.exchange(false, std::memory_order_relaxed)) {
    if (obs::enabled()) {
      obs::Record r;
      r.ts_ns = now_ns();
      r.ctx = head.ctx;
      r.tenant = tenant.id;
      r.kind = obs::Kind::Inject;
      r.status = core::Status::InternalError;
      r.detail = "error: request failed by MCL_OBS_INJECT";
      obs::record(r);
    }
    finish_item(item, core::Status::InternalError);
    return;
  }

  const std::uint64_t forward_ns = now_ns();
  for (const auto& req : item.reqs) {
    req->forward_ns = forward_ns;
    if (obs::enabled()) {
      obs::Record r;
      r.ts_ns = forward_ns;
      r.ctx = req->ctx;
      r.tenant = tenant.id;
      r.kind = obs::Kind::Forward;
      obs::record(r);
    }
  }

  // Union of dependencies across the batch. All are terminal (eligibility),
  // so this only matters for failure propagation — a Cancelled dep must fail
  // the command, which the wait-list path already does.
  std::vector<ocl::AsyncEventPtr> wait_list;
  for (const auto& req : item.reqs) {
    wait_list.insert(wait_list.end(), req->deps.begin(), req->deps.end());
  }

  // Enqueue under the head's causal context so the command (and everything
  // it emits downstream — cq.* spans, wg: spans, tune.decide) inherits the
  // request's id instead of minting an anonymous one.
  trace::ContextScope cscope(head.ctx);
  ocl::AsyncEventPtr event;
  try {
    switch (head.op) {
      case Request::Op::Launch: {
        ocl::Kernel kernel(*head.def);
        for (std::size_t i = 0; i < head.launch.args.size(); ++i) {
          const ArgSpec& arg = head.launch.args[i];
          switch (arg.kind) {
            case ArgSpec::Kind::Buffer:
              kernel.set_arg(i, *arg.buffer);
              break;
            case ArgSpec::Kind::Scalar:
              kernel.set_arg_bytes(i, arg.scalar.data(), arg.scalar.size());
              break;
            case ArgSpec::Kind::Local:
              kernel.set_arg_local(i, arg.local_bytes);
              break;
          }
        }
        ocl::NDRange global = head.launch.global;
        if (item.reqs.size() > 1) {
          std::size_t items = 0;
          for (const auto& req : item.reqs) items += req->launch.global.total();
          global = ocl::NDRange(items);
        }
        event = tenant.queue->enqueue_ndrange_async(
            kernel, global, head.launch.local, std::move(wait_list),
            head.launch.offset);
        break;
      }
      case Request::Op::Write:
        event = tenant.queue->enqueue_write_buffer_async(
            *head.buffer, head.offset, head.bytes, head.src,
            std::move(wait_list));
        break;
      case Request::Op::Read:
        event = tenant.queue->enqueue_read_buffer_async(
            *head.buffer, head.offset, head.bytes, head.dst,
            std::move(wait_list));
        break;
    }
  } catch (const core::Error& e) {
    finish_item(item, e.status());
    return;
  } catch (...) {
    finish_item(item, core::Status::InternalError);
    return;
  }

  // The completion event rides into the callback so finish_item can read
  // its ProfilingInfo for the critical-path decomposition. The resulting
  // shared_ptr cycle (event -> continuation -> event) is broken when
  // finalize() moves the continuation list out and drops it after running.
  event->on_complete(
      [this, item = std::move(item), event](core::Status status) mutable {
        finish_item(item, status, event.get());
      });
}

namespace {

std::uint64_t sat_sub(std::uint64_t a, std::uint64_t b) {
  return a > b ? a - b : 0;
}

}  // namespace

void Server::finish_item(const ForwardItem& item, core::Status status,
                         const ocl::AsyncEvent* event) {
  const std::uint64_t now = now_ns();
  const bool record = prof::enabled();
  const bool traced = trace::enabled();
  const bool observed = obs::enabled();
  ocl::ProfilingInfo pinfo;
  bool have_prof = false;
  if (observed && event != nullptr) {
    // on_complete only fires in terminal states, so profiling is available.
    pinfo = event->profiling_ns();
    have_prof = true;
  }
  for (const auto& req : item.reqs) {
    // Exact critical-path decomposition, recorded before the ticket
    // completes so the flight recorder shows Complete before dependents
    // start. Segments and the serve.latency_ns sample share `now`, so the
    // obs total equals the measured end-to-end latency by construction.
    if (observed) {
      obs::RequestTimes t;
      t.submit_ns = req->submit_ns;
      t.forward_ns = req->forward_ns != 0 ? req->forward_ns : now;
      t.done_ns = now;
      t.is_kernel = req->op == Request::Op::Launch;
      if (have_prof) {
        t.queued_ns = pinfo.queued_ns;
        t.submitted_ns = pinfo.submitted_ns;
        t.started_ns = pinfo.started_ns;
        t.ended_ns = pinfo.ended_ns;
      }
      for (const ocl::AsyncEventPtr& dep : req->deps) {
        if (dep->complete()) {
          t.dep_ready_ns =
              std::max(t.dep_ready_ns, dep->profiling_ns().ended_ns);
        }
      }
      obs::note_request_complete(req->ctx, item.tenant->id, obs::decompose(t),
                                 status);
    }
    req->done->set_user_status(status);
    const std::uint64_t latency = now - req->submit_ns;
    if (record) {
      item.tenant->latency.record(latency);
      latency_all_.record(latency);
      // Satellite split: where did the latency go — serve-side wait
      // (submit -> forward) or queue+execution (forward -> done)?
      const std::uint64_t admission_wait =
          sat_sub(req->forward_ns != 0 ? req->forward_ns : now,
                  req->submit_ns);
      item.tenant->admission.record(admission_wait);
      admission_all_.record(admission_wait);
      const std::uint64_t service = sat_sub(latency, admission_wait);
      item.tenant->service.record(service);
      service_all_.record(service);
    }
    if (traced) {
      trace::ContextScope cscope(req->ctx);
      trace::complete_span("serve.request", req->submit_ns, latency, "ok",
                           status == core::Status::Success ? 1 : 0);
    }
  }
  {
    std::lock_guard lock(mutex_);
    in_flight_--;
    TenantState& tenant = *item.tenant;
    for (const auto& req : item.reqs) {
      req->rstate = Request::RState::Done;
      tenant.stats.outstanding--;
      if (status == core::Status::Success) {
        tenant.stats.completed++;
      } else {
        tenant.stats.failed++;
      }
    }
    tenant.space_cv.notify_all();
    signal_ = true;
    sched_cv_.notify_one();
  }
}

std::size_t Server::apply_pass(PassResult& pass) {
  std::size_t forwarded_reqs = 0;
  for (const auto& req : pass.expired) {
    // Anomaly first: the dump should capture the request still unfinished,
    // before dependents start failing inline below. No locks held here.
    if (obs::enabled()) {
      obs::anomaly(obs::Kind::Timeout, req->ctx, "request deadline expired",
                   core::Status::Cancelled);
    }
    req->done->set_user_status(core::Status::Cancelled);
  }
  for (ForwardItem& item : pass.forwards) {
    forwarded_reqs += item.reqs.size();
    forward(item);
  }
  for (const ocl::AsyncEventPtr& dep : pass.watches) {
    // May run inline if the dep completed since the pass — that just sets
    // the signal and the next pass re-evaluates eligibility.
    dep->on_complete([this](core::Status) {
      std::lock_guard lock(mutex_);
      signal_ = true;
      sched_cv_.notify_one();
    });
  }
  return forwarded_reqs;
}

std::size_t Server::step() {
  core::check(config_.manual_schedule, core::Status::InvalidOperation,
              "step() requires ServerConfig::manual_schedule");
  PassResult pass;
  {
    std::lock_guard lock(mutex_);
    run_pass_locked(pass);
    in_flight_ += pass.forwards.size();
    forwarded_commands_ += pass.forwards.size();
  }
  return apply_pass(pass);
}

void Server::scheduler_loop() {
  std::unique_lock lock(mutex_);
  while (!stop_) {
    signal_ = false;
    PassResult pass;
    run_pass_locked(pass);
    if (!pass.expired.empty() || !pass.forwards.empty() ||
        !pass.watches.empty()) {
      in_flight_ += pass.forwards.size();
      forwarded_commands_ += pass.forwards.size();
      lock.unlock();
      apply_pass(pass);
      lock.lock();
      continue;
    }
    const std::uint64_t deadline = nearest_deadline_locked();
    if (deadline == 0) {
      sched_cv_.wait(lock, [this] { return signal_ || stop_; });
    } else {
      const std::uint64_t now = now_ns();
      const std::uint64_t delta = deadline > now ? deadline - now : 1;
      sched_cv_.wait_for(lock, std::chrono::nanoseconds(delta),
                         [this] { return signal_ || stop_; });
    }
  }
}

// --- Session --------------------------------------------------------------------

namespace {

// Flight-recorder Submit entry — after admit() released the server mutex.
void record_submit(const std::shared_ptr<Request>& req) {
  if (req == nullptr || !obs::enabled()) return;
  obs::Record r;
  r.ts_ns = req->submit_ns;
  r.ctx = req->ctx;
  r.tenant = req->tenant->id;
  r.kind = obs::Kind::Submit;
  obs::record(r);
}

}  // namespace

Ticket Server::submit_impl(TenantState& tenant,
                           std::shared_ptr<Request> req) {
  bool rejected = false;
  auto admitted = admit(tenant, std::move(req), /*blocking=*/true, &rejected);
  core::check(!rejected, core::Status::OutOfResources,
              "tenant queue depth exceeded");
  record_submit(admitted);
  Ticket ticket;
  ticket.req_ = std::move(admitted);
  return ticket;
}

namespace {

std::shared_ptr<Request> make_launch_request(TenantState& tenant,
                                             LaunchSpec spec,
                                             std::vector<Ticket>& deps,
                                             std::mutex& mutex) {
  auto req = std::make_shared<Request>();
  req->op = Request::Op::Launch;
  req->cost = launch_cost(spec.global);
  {
    // Kernel resolution goes through the per-tenant descriptor cache so a
    // steady-state tenant never touches the global registry map.
    std::lock_guard lock(mutex);
    auto it = tenant.kernel_cache.find(spec.kernel);
    if (it != tenant.kernel_cache.end()) {
      tenant.stats.cache_hits++;
      req->def = it->second;
    } else {
      tenant.stats.cache_misses++;
      req->def = &ocl::Program::builtin().lookup(spec.kernel);
      tenant.kernel_cache.emplace(spec.kernel, req->def);
      // First sighting of this kernel by this tenant: precompute its tuning
      // feature vector off the launch path. The tuner is process-global, so
      // every tenant's traffic trains (and benefits from) one shared entry
      // per (kernel, shape, device) — tenants never re-explore a shape some
      // other tenant already converged.
      if (tune::enabled()) tune::Tuner::instance().prewarm(*req->def);
    }
  }
  req->launch = std::move(spec);
  req->deps.reserve(deps.size());
  for (const Ticket& dep : deps) {
    core::check(dep.valid(), core::Status::InvalidValue, "empty dep ticket");
    req->deps.push_back(dep.event());
  }
  return req;
}

std::shared_ptr<Request> make_transfer_request(Request::Op op,
                                               ocl::Buffer* buffer,
                                               std::size_t offset,
                                               std::size_t bytes,
                                               const void* src, void* dst,
                                               std::vector<Ticket>& deps) {
  auto req = std::make_shared<Request>();
  req->op = op;
  req->buffer = buffer;
  req->offset = offset;
  req->bytes = bytes;
  req->src = src;
  req->dst = dst;
  req->cost = transfer_cost(bytes);
  req->deps.reserve(deps.size());
  for (const Ticket& dep : deps) {
    core::check(dep.valid(), core::Status::InvalidValue, "empty dep ticket");
    req->deps.push_back(dep.event());
  }
  return req;
}

}  // namespace

Ticket Session::submit(LaunchSpec spec, std::vector<Ticket> deps) {
  core::check(server_ != nullptr, core::Status::InvalidOperation,
              "empty session");
  return server_->submit_impl(
      *state_,
      make_launch_request(*state_, std::move(spec), deps, server_->mutex_));
}

std::optional<Ticket> Session::try_submit(LaunchSpec spec,
                                          std::vector<Ticket> deps) {
  core::check(server_ != nullptr, core::Status::InvalidOperation,
              "empty session");
  auto req =
      make_launch_request(*state_, std::move(spec), deps, server_->mutex_);
  bool rejected = false;
  auto admitted =
      server_->admit(*state_, std::move(req), /*blocking=*/false, &rejected);
  if (rejected) return std::nullopt;
  record_submit(admitted);
  Ticket ticket;
  ticket.req_ = std::move(admitted);
  return ticket;
}

Ticket Session::submit_write(ocl::Buffer& dst, std::size_t offset,
                             std::size_t bytes, const void* src,
                             std::vector<Ticket> deps) {
  core::check(server_ != nullptr, core::Status::InvalidOperation,
              "empty session");
  return server_->submit_impl(
      *state_, make_transfer_request(Request::Op::Write, &dst, offset, bytes,
                                     src, nullptr, deps));
}

Ticket Session::submit_read(const ocl::Buffer& src, std::size_t offset,
                            std::size_t bytes, void* dst,
                            std::vector<Ticket> deps) {
  core::check(server_ != nullptr, core::Status::InvalidOperation,
              "empty session");
  // Reads mutate only host memory; the const_cast mirrors the queue API,
  // which takes the source buffer by const reference.
  return server_->submit_impl(
      *state_,
      make_transfer_request(Request::Op::Read, const_cast<ocl::Buffer*>(&src),
                            offset, bytes, nullptr, dst, deps));
}

void Session::finish() {
  core::check(server_ != nullptr, core::Status::InvalidOperation,
              "empty session");
  std::unique_lock lock(server_->mutex_);
  state_->space_cv.wait(
      lock, [this] { return state_->stats.outstanding == 0; });
}

SessionStats Session::stats() const {
  core::check(server_ != nullptr, core::Status::InvalidOperation,
              "empty session");
  std::lock_guard lock(server_->mutex_);
  return state_->stats;
}

const std::string& Session::tenant_name() const {
  core::check(server_ != nullptr, core::Status::InvalidOperation,
              "empty session");
  return state_->cfg.name;
}

}  // namespace mcl::serve
