// mclserve — multi-tenant compute service over the MiniCL event-graph
// executor.
//
// N client sessions (one per tenant) submit NDRange launches and buffer
// transfers; the server admits them into bounded per-tenant streams and a
// single scheduler thread multiplexes them onto per-tenant CommandQueues
// (all backed by the shared executor thread pool) under weighted fair
// queueing. The pieces:
//
//   - Admission control: each tenant has a max_queue_depth; a full stream
//     either blocks the submitter or rejects (OutOfResources), per policy.
//     Memory per tenant is therefore bounded by depth, never by offered load.
//   - Weighted fair queueing: start-time fair queueing over per-tenant
//     virtual finish tags; a tenant's share of dispatched cost converges to
//     weight_i / sum(weights) whenever it stays backlogged, so a heavy
//     tenant cannot starve a light one (tests/serve_test.cpp).
//   - Kernel caching + batching: kernel descriptors resolve through a
//     per-tenant cache, and tenants may opt in (batch_max_items > 0) to
//     fusing contiguous small 1D launches of the same kernel/args into one
//     NDRange — only valid for kernels whose behavior depends on global id
//     alone, which is why it is opt-in.
//   - Cancellation/timeouts: every request completes a user event
//     (AsyncEvent::create_user); cancel/timeout completes it with
//     Status::Cancelled, which flows to dependents through the event graph's
//     existing failed-dependency propagation. Timeouts cover the *pending*
//     phase (admission -> dispatch); once forwarded, a request runs to
//     completion (use Ticket::wait_for for a client-side timed wait).
//
// Lifetime contract: the Server must outlive its Sessions and Tickets'
// usage, and clients keep argument/transfer buffers alive until the
// corresponding Ticket completes (the usual OpenCL rule). See docs/serve.md.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/error.hpp"
#include "ocl/queue.hpp"
#include "prof/metrics.hpp"

namespace mcl::serve {

namespace detail {
struct Request;
struct TenantState;
}  // namespace detail

/// What happens when a tenant's stream is at max_queue_depth.
enum class AdmissionPolicy {
  Block,   ///< submit() waits for space (backpressure onto the client)
  Reject,  ///< submit() throws OutOfResources; try_submit() returns nullopt
};

struct TenantConfig {
  std::string name;
  double weight = 1.0;                ///< WFQ share; must be > 0
  std::size_t max_queue_depth = 64;   ///< bound on admitted-but-unfinished requests
  AdmissionPolicy admission = AdmissionPolicy::Block;
  bool in_order = false;              ///< serialize this tenant's commands
  std::uint64_t default_timeout_ns = 0;  ///< pending-phase deadline; 0 = none
  std::size_t batch_max_items = 0;    ///< fuse small 1D launches up to this many items; 0 = off
  /// Device the tenant's queue binds to; must be one of the server context's
  /// devices (a CPU sub-device isolates the tenant on its worker shard; the
  /// simulated GPU offloads it entirely). nullptr = the context's default.
  ocl::Device* device = nullptr;
};

struct ServerConfig {
  std::size_t max_in_flight = 0;  ///< forwarded-command window; 0 = 2x logical CPUs
  bool manual_schedule = false;   ///< no scheduler thread; tests drive step()
};

/// One kernel argument, by value: serve requests outlive the caller's stack
/// frame, so bindings are snapshotted at submit.
struct ArgSpec {
  enum class Kind { Buffer, Scalar, Local };

  Kind kind = Kind::Scalar;
  ocl::Buffer* buffer = nullptr;      // Kind::Buffer (non-owning)
  std::vector<std::byte> scalar;      // Kind::Scalar
  std::size_t local_bytes = 0;        // Kind::Local

  [[nodiscard]] static ArgSpec buf(ocl::Buffer& b) {
    ArgSpec a;
    a.kind = Kind::Buffer;
    a.buffer = &b;
    return a;
  }
  [[nodiscard]] static ArgSpec scalar_bytes(const void* p, std::size_t n) {
    core::check(p != nullptr && n > 0, core::Status::InvalidKernelArgs,
                "null/empty scalar arg");
    ArgSpec a;
    a.kind = Kind::Scalar;
    a.scalar.assign(static_cast<const std::byte*>(p),
                    static_cast<const std::byte*>(p) + n);
    return a;
  }
  template <typename T>
  [[nodiscard]] static ArgSpec scalar_of(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    return scalar_bytes(&v, sizeof(T));
  }
  [[nodiscard]] static ArgSpec local(std::size_t bytes) {
    ArgSpec a;
    a.kind = Kind::Local;
    a.local_bytes = bytes;
    return a;
  }

  [[nodiscard]] bool operator==(const ArgSpec& o) const {
    return kind == o.kind && buffer == o.buffer && scalar == o.scalar &&
           local_bytes == o.local_bytes;
  }
};

/// A kernel launch request. The kernel name resolves through the tenant's
/// descriptor cache against Program::builtin() at submit time (fail-fast on
/// unknown kernels).
struct LaunchSpec {
  std::string kernel;
  std::vector<ArgSpec> args;
  ocl::NDRange global;
  ocl::NDRange local;   // null = runtime choice
  ocl::NDRange offset;  // null = zero origin
};

/// Per-tenant view of the server counters (also reused inside ServerStats).
struct SessionStats {
  std::string name;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;   ///< finished with Status::Success
  std::uint64_t failed = 0;      ///< finished with any other status
  std::uint64_t rejected = 0;    ///< bounced at admission
  std::uint64_t cancelled = 0;   ///< Server::cancel before dispatch
  std::uint64_t timed_out = 0;   ///< pending-phase deadline expired
  std::uint64_t batched = 0;     ///< requests that rode in a fused launch
  std::uint64_t forwarded = 0;   ///< commands enqueued on the tenant queue
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::size_t outstanding = 0;   ///< admitted, not yet finished
};

struct ServerStats {
  std::vector<SessionStats> tenants;
  std::size_t in_flight = 0;            ///< forwarded commands not yet retired
  std::uint64_t forwarded_commands = 0;
  std::uint64_t fused_requests = 0;     ///< requests absorbed into a batch mate
};

/// Handle to one submitted request. Completion is a user event, so tickets
/// can be waited on, polled, and used as dependencies of later submissions
/// (including across tenants).
class Ticket {
 public:
  Ticket() = default;

  [[nodiscard]] bool valid() const noexcept { return req_ != nullptr; }
  /// Blocks until the request finished; rethrows its failure (including
  /// Status::Cancelled for cancel/timeout).
  void wait() const;
  /// Timed wait(); false if still running after `timeout`.
  [[nodiscard]] bool wait_for(std::chrono::nanoseconds timeout) const;
  [[nodiscard]] bool complete() const;
  [[nodiscard]] core::Status status() const;
  /// The underlying completion event — usable in raw event-graph wait lists.
  [[nodiscard]] ocl::AsyncEventPtr event() const;
  /// mclobs causal context id minted at admission (0 when observability was
  /// off at submit). Every trace span and flight-recorder entry this request
  /// produced carries the same id.
  [[nodiscard]] std::uint64_t context() const;

 private:
  friend class Server;
  friend class Session;
  std::shared_ptr<detail::Request> req_;
};

class Server;

/// A tenant's submission handle. Copyable value type (all state lives in the
/// Server); safe to use from multiple threads.
class Session {
 public:
  Session() = default;

  /// Admits a launch. Blocks or throws OutOfResources when the stream is
  /// full, per the tenant's AdmissionPolicy; throws InvalidKernelName for
  /// unknown kernels and InvalidOperation once the server is shutting down.
  Ticket submit(LaunchSpec spec, std::vector<Ticket> deps = {});
  /// Non-blocking submit: nullopt when the stream is full (either policy).
  std::optional<Ticket> try_submit(LaunchSpec spec,
                                   std::vector<Ticket> deps = {});
  Ticket submit_write(ocl::Buffer& dst, std::size_t offset, std::size_t bytes,
                      const void* src, std::vector<Ticket> deps = {});
  Ticket submit_read(const ocl::Buffer& src, std::size_t offset,
                     std::size_t bytes, void* dst, std::vector<Ticket> deps = {});
  /// Blocks until every request this tenant admitted has finished.
  void finish();
  [[nodiscard]] SessionStats stats() const;
  [[nodiscard]] const std::string& tenant_name() const;

 private:
  friend class Server;
  Server* server_ = nullptr;
  detail::TenantState* state_ = nullptr;
};

class Server {
 public:
  explicit Server(ocl::Context& context, ServerConfig config = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Registers a tenant and returns its submission handle. Tenant names must
  /// be unique; weight must be positive; depth must be nonzero.
  [[nodiscard]] Session create_session(TenantConfig config);

  /// Cancels a still-pending request: true if it was removed before dispatch
  /// (its ticket finishes with Status::Cancelled), false if it already ran
  /// or was forwarded.
  bool cancel(const Ticket& ticket);

  [[nodiscard]] ServerStats stats() const;

  /// manual_schedule mode: runs one scheduling pass (deadline expiry + WFQ
  /// dispatch) synchronously; returns the number of requests forwarded.
  std::size_t step();

  [[nodiscard]] std::size_t max_in_flight() const noexcept {
    return max_in_flight_;
  }

 private:
  friend class Session;

  struct ForwardItem;
  struct PassResult;

  std::shared_ptr<detail::Request> admit(detail::TenantState& tenant,
                                         std::shared_ptr<detail::Request> req,
                                         bool blocking, bool* rejected);
  Ticket submit_impl(detail::TenantState& tenant,
                     std::shared_ptr<detail::Request> req);
  void run_pass_locked(PassResult& out);
  std::size_t apply_pass(PassResult& pass);
  void finish_item(const ForwardItem& item, core::Status status,
                   const ocl::AsyncEvent* event = nullptr);
  void forward(ForwardItem& item);
  void scheduler_loop();
  [[nodiscard]] std::uint64_t nearest_deadline_locked() const;
  [[nodiscard]] std::string obs_section_json() const;

  ocl::Context* context_ = nullptr;
  ServerConfig config_;
  std::size_t max_in_flight_ = 0;

  mutable std::mutex mutex_;
  std::condition_variable sched_cv_;
  bool stop_ = false;
  bool signal_ = false;
  std::size_t in_flight_ = 0;
  double virtual_time_ = 0.0;
  std::uint64_t forwarded_commands_ = 0;
  std::uint64_t fused_requests_ = 0;
  std::vector<std::unique_ptr<detail::TenantState>> tenants_;
  /// MCL_OBS_INJECT faults, armed once per server: hang parks the first
  /// eligible head forever (its deadline expiry exercises the timeout →
  /// flight-recorder-dump path); error fails the first forwarded item.
  bool hang_pending_ = false;            // guarded by mutex_
  std::atomic<bool> error_pending_{false};
  int obs_section_ = 0;  ///< mclobs dump-section token

  prof::Histogram latency_all_;
  prof::Histogram admission_all_;
  prof::Histogram service_all_;
  std::thread scheduler_;
};

}  // namespace mcl::serve
