#include "simd/vec.hpp"

namespace mcl::simd {

const char* native_isa_name() noexcept {
#if defined(__AVX2__)
  return "AVX2";
#elif defined(__AVX__)
  return "AVX";
#elif defined(__SSE4_2__)
  return "SSE4.2";
#elif defined(__SSE2__)
  return "SSE2";
#else
  return "scalar";
#endif
}

}  // namespace mcl::simd
